(** Per-cycle invariant checking for the simulation engines.

    A sanitizer is a diagnostic collector passed to {!Engine.run} or
    {!Adaptive_engine.run} via their [?sanitizer] argument.  When present,
    the engine re-derives a set of structural invariants from its full state
    at the end of every cycle and reports any violation as a diagnostic:

    - [E101] flit conservation: a message's injected flits all sit in its
      buffers or have been consumed
    - [E102] buffer atomicity: occupied buffers belong to the channel's
      owner, occupancy never exceeds capacity, and owned channels are on the
      owner's path
    - [E103] flit window: flits only occupy the contiguous window between
      the released prefix and the header (faults may punch holes {e inside}
      the window, so only its bounds are invariant)
    - [E104] wait-for consistency: a waiting message's seniority entry
      matches the channel it currently wants
    - [E105] recovery monotonicity: retries never exceed the limit while a
      message is live, and the watchdog bound (the backstop under a
      [Detect] trigger) holds after every abort
    - [E106] wait-edge/hold consistency: a message advertising a wait-for
      edge on the event stream holds at least one channel unless it has
      not injected yet; abandoned messages advertise no edge (a dangling
      edge would send the online detector chasing a ghost)

    The checks are pure observers -- a sanitized run takes the same
    decisions as an unsanitized one, only slower.

    A sanitizer can also be {e installed} process-wide; engines fall back to
    the installed one when no [?sanitizer] argument is given, which is how
    whole experiment campaigns run sanitized without threading a value
    through every call site.  Setting the environment variable
    [WORMHOLE_SANITIZE] (to anything but [0]) installs a fail-fast sanitizer
    at startup, so [WORMHOLE_SANITIZE=1 dune runtest] checks the whole test
    suite's engine runs. *)

type t

exception Violation of Diagnostic.t
(** Raised on the first violation by a [fail_fast] sanitizer. *)

val create : ?fail_fast:bool -> ?limit:int -> unit -> t
(** A fresh collector.  [fail_fast] (default false) raises {!Violation}
    instead of accumulating.  At most [limit] (default 100) diagnostics are
    retained; further violations are counted but dropped. *)

val record : t -> Diagnostic.t -> unit
(** Report a violation (engines call this; tests may too).
    @raise Violation when the sanitizer is fail-fast. *)

val note_run : t -> unit
val note_cycle : t -> unit
(** Engines call these so reports can show how much work was checked. *)

val note_runs_cancelled : t -> int -> unit
(** Report [n] checked runs as cancelled speculative pool work (results
    discarded by early cancellation), so {!runs_checked} minus
    {!runs_cancelled} is the exact canonical total.  The search layer calls
    this after each sweep's reduce. *)

val diagnostics : t -> Diagnostic.t list
(** Collected diagnostics, in report order (capped at [limit]). *)

val violation_count : t -> int
(** Total violations, including any dropped beyond [limit]. *)

val runs_checked : t -> int
val cycles_checked : t -> int

val runs_cancelled : t -> int
(** Checked runs later discarded as cancelled speculative pool work. *)

val ok : t -> bool
(** No violation recorded. *)

val reset : t -> unit
(** Clear diagnostics and counters (keeps [fail_fast] and [limit]). *)

val install : t -> unit
(** Make this sanitizer the process-wide fallback used by engine runs that
    receive no [?sanitizer] argument. *)

val uninstall : unit -> unit
val current : unit -> t option
