(** Injection schedules: the workload of one simulation run.

    A schedule fixes, for every message, its endpoints, its length in flits,
    its injection time, and (for adversarial experiments, Section 6 of the
    paper) extra stalls the "network adversary" imposes on the header at
    given channels even though the output channel is available. *)

type message_spec = {
  ms_label : string;
  ms_src : Topology.node;
  ms_dst : Topology.node;
  ms_length : int;  (** flits; >= 1 *)
  ms_inject_at : int;  (** cycle at which the source starts requesting *)
  ms_holds : (Topology.channel * int) list;
      (** [(c, t)]: after the header enters channel [c], stall it [t] extra
          cycles before it may request its next channel *)
}

type t = message_spec list

val message : ?length:int -> ?at:int -> ?holds:(Topology.channel * int) list ->
  string -> Topology.node -> Topology.node -> message_spec
(** Convenience constructor; [length] defaults to 1, [at] to 0. *)

val validate : Routing.t -> t -> (unit, string) result
(** Labels unique; lengths and times sane; every message routable. *)

val validate_paths : Routing.t -> t -> (Topology.channel array array, string) result
(** As {!validate}, but on success returns each message's computed route (in
    schedule order), so a caller that needs the paths anyway -- the
    switching kernel -- walks the routing exactly once. *)

val pp : Topology.t -> Format.formatter -> t -> unit
