(* Facade over Switch_core's oblivious mode; see engine.mli and
   DESIGN.md section 12 for the kernel split. *)

type arbitration = Switch_core.arbitration = Fifo | Priority of string list

type discipline = Switch_core.discipline =
  | Wormhole
  | Virtual_cut_through
  | Store_and_forward

let discipline_string = Switch_core.discipline_string
let discipline_of_string = Switch_core.discipline_of_string
let set_discipline_override = Switch_core.set_discipline_override
let discipline_override = Switch_core.discipline_override

type deadlock_class = Obs_detect.deadlock_class = Global | Local | Weak

let deadlock_class_string = Obs_detect.deadlock_class_string

type trigger = Switch_core.trigger =
  | Watchdog of int
  | Detect of Obs_detect.config

type recovery = Switch_core.recovery = {
  trigger : trigger;
  retry_limit : int;
  backoff : int;
  reroute : Routing.t option;
}

let default_recovery = Switch_core.default_recovery

type config = Switch_core.config = {
  buffer_capacity : int;
  arbitration : arbitration;
  discipline : discipline;
  max_cycles : int;
  faults : Fault.plan;
  recovery : recovery option;
}

let default_config = Switch_core.default_config

type message_result = Switch_core.message_result = {
  r_label : string;
  r_injected_at : int option;
  r_delivered_at : int option;
}

type blocked_info = Switch_core.blocked_info = {
  b_label : string;
  b_wants : Topology.channel list;
  b_holder : string option;
}

type deadlock_info = Switch_core.deadlock_info = {
  d_cycle : int;
  d_class : deadlock_class;
  d_blocked : blocked_info list;
  d_wait_cycle : string list;
  d_occupancy : (Topology.channel * string * int) list;
}

type fate = Switch_core.fate = Delivered | Dropped | Gave_up

type retry_stat = Switch_core.retry_stat = {
  t_label : string;
  t_retries : int;
  t_fate : fate;
}

type outcome = Switch_core.outcome =
  | All_delivered of { finished_at : int; messages : message_result list }
  | Deadlock of deadlock_info
  | Cutoff of { at : int; messages : message_result list }
  | Recovered of {
      finished_at : int;
      messages : message_result list;
      stats : retry_stat list;
    }

type snapshot = Switch_core.snapshot = {
  s_cycle : int;
  s_occupancy : (Topology.channel * string * int) list;
  s_waiting : (string * Topology.channel * string option) list;
  s_moved : bool;
}

let run ?config ?probe ?sanitizer ?obs ?stats rt sched =
  Switch_core.run ?config ?probe ?sanitizer ?obs ?stats (Switch_core.Oblivious rt) sched

let is_deadlock = Switch_core.is_deadlock
let run_count = Switch_core.run_count
let note_run_started = Switch_core.note_run_started
let cancelled_count = Switch_core.cancelled_count
let note_runs_cancelled = Switch_core.note_runs_cancelled
let outcome_string = Switch_core.outcome_string
let pp_fate = Switch_core.pp_fate
let pp_outcome = Switch_core.pp_outcome
