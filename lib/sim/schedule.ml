type message_spec = {
  ms_label : string;
  ms_src : Topology.node;
  ms_dst : Topology.node;
  ms_length : int;
  ms_inject_at : int;
  ms_holds : (Topology.channel * int) list;
}

type t = message_spec list

let message ?(length = 1) ?(at = 0) ?(holds = []) label src dst =
  { ms_label = label; ms_src = src; ms_dst = dst; ms_length = length; ms_inject_at = at;
    ms_holds = holds }

let validate rt sched =
  let labels = List.map (fun m -> m.ms_label) sched in
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    Error "duplicate message labels"
  else begin
    let rec check = function
      | [] -> Ok ()
      | m :: rest ->
        if m.ms_length < 1 then Error (m.ms_label ^ ": length < 1")
        else if m.ms_inject_at < 0 then Error (m.ms_label ^ ": negative injection time")
        else if m.ms_src = m.ms_dst then Error (m.ms_label ^ ": source equals destination")
        else if List.exists (fun (_, t) -> t < 0) m.ms_holds then
          Error (m.ms_label ^ ": negative hold")
        else
          match Routing.path rt m.ms_src m.ms_dst with
          | Error e -> Error (m.ms_label ^ ": " ^ Routing.error_message e)
          | Ok p ->
            (* the engine's occupancy model needs each channel to appear at
               most once on a message's path *)
            if List.length (List.sort_uniq compare p) <> List.length p then
              Error (m.ms_label ^ ": path visits a channel twice")
            else check rest
    in
    check sched
  end

let pp topo ppf sched =
  List.iter
    (fun m ->
      Format.fprintf ppf "%s: %s->%s len=%d t=%d" m.ms_label
        (Topology.node_name topo m.ms_src) (Topology.node_name topo m.ms_dst) m.ms_length
        m.ms_inject_at;
      List.iter
        (fun (c, t) -> Format.fprintf ppf " hold(%s,%d)" (Topology.channel_name topo c) t)
        m.ms_holds;
      Format.pp_print_newline ppf ())
    sched
