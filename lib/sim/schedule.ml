type message_spec = {
  ms_label : string;
  ms_src : Topology.node;
  ms_dst : Topology.node;
  ms_length : int;
  ms_inject_at : int;
  ms_holds : (Topology.channel * int) list;
}

type t = message_spec list

let message ?(length = 1) ?(at = 0) ?(holds = []) label src dst =
  { ms_label = label; ms_src = src; ms_dst = dst; ms_length = length; ms_inject_at = at;
    ms_holds = holds }

(* label uniqueness via a hash pass (not a sort: comparing every label
   against every other through polymorphic compare shows up in the
   per-run validation cost of the bench hot paths) *)
let has_duplicate_label sched =
  let seen = Hashtbl.create 64 in
  List.exists
    (fun m ->
      Hashtbl.mem seen m.ms_label
      ||
      (Hashtbl.add seen m.ms_label ();
       false))
    sched

(* each channel may appear at most once on a path; paths are node-degree
   short, so the quadratic scan beats building a sorted copy *)
let has_duplicate_channel (a : int array) =
  let k = Array.length a in
  let dup = ref false in
  for x = 0 to k - 1 do
    for y = x + 1 to k - 1 do
      if a.(x) = a.(y) then dup := true
    done
  done;
  !dup

let validate_paths rt sched =
  if has_duplicate_label sched then Error "duplicate message labels"
  else begin
    let paths = Array.make (List.length sched) [||] in
    let rec check i = function
      | [] -> Ok paths
      | m :: rest ->
        if m.ms_length < 1 then Error (m.ms_label ^ ": length < 1")
        else if m.ms_inject_at < 0 then Error (m.ms_label ^ ": negative injection time")
        else if m.ms_src = m.ms_dst then Error (m.ms_label ^ ": source equals destination")
        else if List.exists (fun (_, t) -> t < 0) m.ms_holds then
          Error (m.ms_label ^ ": negative hold")
        else
          match Routing.path rt m.ms_src m.ms_dst with
          | Error e -> Error (m.ms_label ^ ": " ^ Routing.error_message e)
          | Ok p ->
            (* the engine's occupancy model needs each channel to appear at
               most once on a message's path *)
            let row = Array.of_list p in
            if has_duplicate_channel row then
              Error (m.ms_label ^ ": path visits a channel twice")
            else begin
              paths.(i) <- row;
              check (i + 1) rest
            end
    in
    check 0 sched
  end

let validate rt sched =
  match validate_paths rt sched with Ok _ -> Ok () | Error e -> Error e

let pp topo ppf sched =
  List.iter
    (fun m ->
      Format.fprintf ppf "%s: %s->%s len=%d t=%d" m.ms_label
        (Topology.node_name topo m.ms_src) (Topology.node_name topo m.ms_dst) m.ms_length
        m.ms_inject_at;
      List.iter
        (fun (c, t) -> Format.fprintf ppf " hold(%s,%d)" (Topology.channel_name topo c) t)
        m.ms_holds;
      Format.pp_print_newline ppf ())
    sched
