type arbitration = Fifo | Priority of string list

type switching = Wormhole | Store_and_forward

type trigger = Watchdog of int | Detect of Obs_detect.config

type recovery = {
  trigger : trigger;
  retry_limit : int;
  backoff : int;
  reroute : Routing.t option;
}

let default_recovery = { trigger = Watchdog 64; retry_limit = 4; backoff = 8; reroute = None }

(* The stall threshold of the global no-progress sweep.  Under [Detect]
   the detector handles wait-for knots, but an {e acyclic} wedge (a worm
   parked forever behind a failed link, holding channels while waiting in
   no cycle) emits no wait cycle to detect -- the [backstop] keeps the
   sweep alive for those. *)
let watchdog_of r =
  match r.trigger with Watchdog w -> w | Detect c -> c.Obs_detect.backstop

type config = {
  buffer_capacity : int;
  arbitration : arbitration;
  switching : switching;
  max_cycles : int;
  faults : Fault.plan;
  recovery : recovery option;
}

let default_config =
  {
    buffer_capacity = 1;
    arbitration = Fifo;
    switching = Wormhole;
    max_cycles = 100_000;
    faults = Fault.empty;
    recovery = None;
  }

type message_result = {
  r_label : string;
  r_injected_at : int option;
  r_delivered_at : int option;
}

type blocked_info = {
  b_label : string;
  b_wants : Topology.channel list;
  b_holder : string option;
}

type deadlock_info = {
  d_cycle : int;
  d_blocked : blocked_info list;
  d_wait_cycle : string list;
  d_occupancy : (Topology.channel * string * int) list;
}

type fate = Delivered | Dropped | Gave_up

type retry_stat = {
  t_label : string;
  t_retries : int;
  t_fate : fate;
}

type outcome =
  | All_delivered of { finished_at : int; messages : message_result list }
  | Deadlock of deadlock_info
  | Cutoff of { at : int; messages : message_result list }
  | Recovered of {
      finished_at : int;
      messages : message_result list;
      stats : retry_stat list;
    }

type snapshot = {
  s_cycle : int;
  s_occupancy : (Topology.channel * string * int) list;
  s_waiting : (string * Topology.channel * string option) list;
  s_moved : bool;
}

type policy = Oblivious of Routing.t | Adaptive of Adaptive.t

let is_deadlock = function
  | Deadlock _ -> true
  | All_delivered _ | Cutoff _ | Recovered _ -> false

(* Per-message mutable state, shared by both modes.  [path] is the fixed
   route in oblivious mode and the carved route so far in adaptive mode;
   [plen] is the number of valid entries (always the full array length when
   oblivious).  [head] is the path index of the channel whose queue contains
   the header flit; -1 before injection, [plen] once the header has been
   consumed at the destination ([arrived] mirrors that final state).  [path],
   [occ] and [holds] are replaced wholesale when a recovery reroute changes
   an oblivious message's path; an adaptive reroute instead pins [forced]. *)
type msg_state = {
  spec : Schedule.message_spec;
  idx : int;  (* schedule position, used for deterministic tie-breaks *)
  mutable path : Topology.channel array;
  mutable occ : int array;  (* flits currently buffered at each path position *)
  mutable holds : int array;  (* adversarial hold per path position (oblivious) *)
  mutable plen : int;  (* valid prefix of [path]/[occ] *)
  mutable head : int;
  mutable arrived : bool;  (* header consumed at the destination *)
  mutable injected : int;
  mutable consumed : int;
  mutable hold : int;
  mutable hold_fresh : bool;  (* hold was (re)set this cycle; skip one decrement *)
  mutable injected_at : int option;
  mutable delivered_at : int option;
  mutable released_up_to : int;  (* path positions < this have been released *)
  mutable attempt_at : int;  (* earliest cycle the source may (re)start requesting *)
  mutable retries : int;  (* aborts so far *)
  mutable gone : fate option;  (* [Some Dropped | Some Gave_up] once abandoned *)
  mutable last_progress : int;  (* watchdog reference cycle *)
  mutable progressed : bool;  (* this message advanced during the current cycle *)
  mutable waiting_for : int;  (* oblivious: channel being waited on; -1 if none *)
  mutable wait_since : int;
      (* oblivious: first cycle of the current wait (valid when waiting_for
         >= 0); adaptive: sticky first-wait cycle, [max_int] when not
         waiting *)
  mutable awarded_now : int;  (* adaptive: channel awarded this cycle; -1 if none *)
  mutable wait_edge : int;
      (* adaptive: the channel whose wait-for edge is currently advertised
         on the event stream (the header's first option when it last won
         nothing); -1 when no edge is outstanding.  Maintained even with
         the bus off so the sanitizer can check E106. *)
  mutable forced : Topology.channel array;
      (* adaptive: reroute-pinned remaining route; [||] when free *)
}

(* A schedule's holds are an assoc list keyed by channel; resolving that per
   acquisition attempt was O(path) in the innermost loop.  Paths visit each
   channel at most once (Schedule.validate), so the holds are precomputed
   per path position here and rebuilt whenever a reroute replaces the path. *)
let holds_for_path (spec : Schedule.message_spec) path =
  match spec.Schedule.ms_holds with
  | [] -> Array.make (Array.length path) 0
  | hs ->
    Array.map (fun c -> match List.assoc_opt c hs with Some t -> t | None -> 0) path

(* Process-wide count of simulation runs started, for throughput reporting
   (runs/sec in the campaign timing table).  Atomic: runs happen on every
   domain of a parallel sweep. *)
let runs_started = Atomic.make 0
let note_run_started () = Atomic.incr runs_started
let run_count () = Atomic.get runs_started

(* Runs whose results were discarded by a sweep's early cancellation
   (speculative pool work past the canonical winner).  Tracked separately
   so [run_count () - cancelled_count ()] is the exact canonical total; the
   search layer reports its cancellations here. *)
let runs_cancelled = Atomic.make 0
let note_runs_cancelled n = if n > 0 then ignore (Atomic.fetch_and_add runs_cancelled n)
let cancelled_count () = Atomic.get runs_cancelled

let outcome_string = function
  | All_delivered _ -> "all-delivered"
  | Deadlock _ -> "deadlock"
  | Cutoff _ -> "cutoff"
  | Recovered _ -> "recovered"

let run ?(config = default_config) ?probe ?sanitizer ?obs policy sched =
  let oblivious = match policy with Oblivious _ -> true | Adaptive _ -> false in
  let caller = if oblivious then "Engine.run: " else "Adaptive_engine.run: " in
  let inv msg = invalid_arg (caller ^ msg) in
  let topo =
    match policy with
    | Oblivious rt -> Routing.topology rt
    | Adaptive ad -> Adaptive.topology ad
  in
  let algo_name =
    match policy with Oblivious rt -> Routing.name rt | Adaptive ad -> Adaptive.name ad
  in
  if config.buffer_capacity < 1 then inv "buffer_capacity < 1";
  if config.max_cycles < 1 then inv "max_cycles < 1";
  (match config.recovery with
  | None -> ()
  | Some r ->
    (match r.trigger with
    | Watchdog w -> if w < 1 then inv "recovery watchdog < 1"
    | Detect c ->
      if c.Obs_detect.bound < 1 then inv "recovery detect bound < 1";
      if c.Obs_detect.backstop < 1 then inv "recovery detect backstop < 1");
    if r.retry_limit < 0 then inv "recovery retry_limit < 0";
    if r.backoff < 1 then inv "recovery backoff < 1";
    (match r.reroute with
    | Some rt' when Routing.topology rt' != topo ->
      inv "recovery reroute built on a different topology"
    | Some _ | None -> ()));
  (match policy with
  | Oblivious rt -> (
    (match Schedule.validate rt sched with Ok () -> () | Error e -> inv e);
    match config.switching with
    | Store_and_forward ->
      List.iter
        (fun (m : Schedule.message_spec) ->
          if m.ms_length > config.buffer_capacity then
            inv "store-and-forward needs buffer_capacity >= message length")
        sched
    | Wormhole -> ())
  | Adaptive _ ->
    (* no static routability check here: an adaptive function's coverage is
       {!Adaptive.validate}'s concern, and [config.switching] is ignored
       (adaptive runs always switch wormhole) *)
    let labels = List.map (fun (m : Schedule.message_spec) -> m.ms_label) sched in
    if List.length (List.sort_uniq compare labels) <> List.length labels then
      inv "duplicate message labels";
    List.iter
      (fun (m : Schedule.message_spec) ->
        if m.ms_length < 1 then inv "length < 1";
        if m.ms_src = m.ms_dst then inv "source equals destination")
      sched);
  let nchan = Topology.num_channels topo in
  let faults = Fault.compile ~nchan config.faults in
  let cap = config.buffer_capacity in
  note_run_started ();
  (* -- observability: hoist the sink once per run; every emission site is
        guarded by [obs_on] so a disabled bus allocates nothing.  Emission
        is pure observation -- the run takes identical decisions with any
        sink installed (QCheck-checked in test_obs). -- *)
  let user_obs = match obs with Some _ as s -> s | None -> Obs.current () in
  (* -- online detection: a [Detect] trigger instantiates the detector and
        forces event construction for this run (the detector IS engine
        semantics, so unlike user sinks its cost is accepted when chosen);
        with [Watchdog] and no sink, the hot path stays event-free. -- *)
  let det =
    match config.recovery with
    | Some { trigger = Detect dcfg; _ } -> Some (Obs_detect.create dcfg)
    | Some { trigger = Watchdog _; _ } | None -> None
  in
  let obs_on = user_obs <> None || det <> None in
  let emit e =
    (match det with Some d -> Obs_detect.feed d e | None -> ());
    match user_obs with Some s -> s.Obs.emit e | None -> ()
  in
  if obs_on then begin
    emit
      (Obs_event.Run_start
         { engine = (if oblivious then "oblivious" else "adaptive");
           algorithm = algo_name; messages = List.length sched });
    List.iter
      (fun (ev : Fault.event) ->
        emit
          (match ev with
          | Fault.Link_failure { channel; at } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_failure; channel = Some channel;
                label = None; duration = 0 }
          | Fault.Transient_stall { channel; at; duration } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_stall; channel = Some channel;
                label = None; duration }
          | Fault.Message_drop { label; at } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_drop; channel = None;
                label = Some label; duration = 0 }))
      (Fault.events config.faults)
  end;
  let msgs =
    List.mapi
      (fun idx (spec : Schedule.message_spec) ->
        let path =
          match policy with
          | Oblivious rt -> Array.of_list (Routing.path_exn rt spec.ms_src spec.ms_dst)
          | Adaptive _ -> [||]
        in
        {
          spec;
          idx;
          path;
          occ = Array.make (Array.length path) 0;
          holds = holds_for_path spec path;
          plen = Array.length path;
          head = -1;
          arrived = false;
          injected = 0;
          consumed = 0;
          hold = 0;
          hold_fresh = false;
          injected_at = None;
          delivered_at = None;
          released_up_to = 0;
          attempt_at = spec.ms_inject_at;
          retries = 0;
          gone = None;
          last_progress = 0;
          progressed = false;
          waiting_for = -1;
          wait_since = (if oblivious then 0 else max_int);
          awarded_now = -1;
          wait_edge = -1;
          forced = [||];
        })
      sched
  in
  let marr = Array.of_list msgs in
  let nmsg = Array.length marr in
  let owner = Array.make nchan (-1) in
  (* arbitration rank per schedule position, precomputed (the priority
     variant used to hash the label on every award comparison) *)
  let rank_of =
    match config.arbitration with
    | Fifo -> Array.init nmsg (fun i -> i)
    | Priority order ->
      let pos = Hashtbl.create 8 in
      List.iteri (fun i l -> if not (Hashtbl.mem pos l) then Hashtbl.add pos l i) order;
      let worst = List.length order in
      Array.map
        (fun m ->
          match Hashtbl.find_opt pos m.spec.Schedule.ms_label with
          | Some i -> (i * nmsg) + m.idx
          | None -> (worst * nmsg) + m.idx)
        marr
  in
  (* per-cycle scratch, reused across cycles.  Oblivious: [req_stamp.(c) = t]
     marks channel [c] as requested this cycle, [req_list] keeps the
     channels in first-request order.  Adaptive: header option lists and the
     claimant order.  (No per-cycle Hashtbl or list builds.) *)
  let req_stamp = Array.make (if oblivious then nchan else 0) (-1) in
  let req_list = Array.make (if oblivious then nchan else 0) 0 in
  let req_count = ref 0 in
  let opts_now = Array.make (if oblivious then 0 else nmsg) [] in
  let claim_order = Array.make (if oblivious then 0 else nmsg) 0 in
  let moved = ref false in
  let finished = ref 0 in
  (* any fault fired or recovery action taken: the run reports [Recovered] *)
  let perturbed = ref false in
  let results () =
    Array.to_list
      (Array.map
         (fun m ->
           { r_label = m.spec.Schedule.ms_label; r_injected_at = m.injected_at;
             r_delivered_at = m.delivered_at })
         marr)
  in
  let stats () =
    Array.to_list
      (Array.map
         (fun m ->
           {
             t_label = m.spec.Schedule.ms_label;
             t_retries = m.retries;
             t_fate = (match m.gone with Some f -> f | None -> Delivered);
           })
         marr)
  in
  let active m = m.delivered_at = None && m.gone = None in
  (* append channel [c] to an adaptive message's carved path (amortized
     doubling; [occ] grows in lockstep) *)
  let carve m c =
    let n = Array.length m.path in
    if m.plen = n then begin
      let n' = max 4 (2 * n) in
      let path' = Array.make n' 0 and occ' = Array.make n' 0 in
      Array.blit m.path 0 path' 0 n;
      Array.blit m.occ 0 occ' 0 n;
      m.path <- path';
      m.occ <- occ'
    end;
    m.path.(m.plen) <- c;
    m.occ.(m.plen) <- 0;
    m.plen <- m.plen + 1
  in
  let assembled m =
    (* store-and-forward: the whole packet must sit in the header's queue *)
    match config.switching with
    | Wormhole -> true
    | Store_and_forward -> m.head >= 0 && m.occ.(m.head) = m.spec.Schedule.ms_length
  in
  (* oblivious: the fixed next channel, -1 for "wants nothing" (hot-path
     variant with no option allocation) *)
  let wanted_chan m =
    if not (active m) then -1
    else if m.head = -1 then m.path.(0)
    else if m.head < m.plen - 1 && m.hold = 0 && assembled m then m.path.(m.head + 1)
    else -1
  in
  let wanted m =
    let c = wanted_chan m in
    if c < 0 then None else Some c
  in
  let set_hold m pos =
    let h = m.holds.(pos) in
    m.hold <- h;
    m.hold_fresh <- h > 0
  in
  (* adaptive: current option list of a message's header, [] when it cannot
     move.  Channels that are down (failed or stalled) are not offered:
     adaptive routing steers around faults by construction.  A reroute pins
     [forced], restricting the options to exactly its next channel. *)
  let current_options m t =
    if (not (active m)) || m.arrived then []
    else begin
      let offer opts = List.filter (fun c -> not (Fault.down faults c t)) opts in
      let forced_next () =
        (* positions [0 .. plen-1] of a forced route were already carved, so
           the next forced channel sits at index [plen] (= head + 1) *)
        if m.plen < Array.length m.forced then offer [ m.forced.(m.plen) ] else []
      in
      if m.head = -1 then begin
        if m.injected = 0 && t >= m.attempt_at then
          if Array.length m.forced > 0 then forced_next ()
          else
            (match policy with
            | Adaptive ad ->
              offer (Adaptive.options ad (Routing.Inject m.spec.Schedule.ms_src)
                       m.spec.Schedule.ms_dst)
            | Oblivious _ -> [])
        else []
      end
      else begin
        let c = m.path.(m.head) in
        (* the header cannot leave a down channel, so don't let it claim the
           next one either; with Fault.down a pure function of (channel, t)
           an award therefore always implies the hop can complete *)
        if Fault.down faults c t then []
        else if Topology.dst topo c = m.spec.Schedule.ms_dst then []
        else if Array.length m.forced > 0 then forced_next ()
        else
          match policy with
          | Adaptive ad ->
            offer (Adaptive.options ad (Routing.From c) m.spec.Schedule.ms_dst)
          | Oblivious _ -> []
      end
    end
  in
  (* first channel the header is blocked on, mode-dispatched: used by the
     probe snapshot and the deadlock witness *)
  let first_want m t =
    if oblivious then wanted m
    else match current_options m t with c :: _ -> Some c | [] -> None
  in
  (* -- sanitizer: re-derive the structural invariants from the full state
        at the end of every cycle (see Sanitizer's doc for the code table).
        Pure observation; a sanitized run takes the same decisions. -- *)
  let sanitizer = match sanitizer with Some s -> Some s | None -> Sanitizer.current () in
  (match sanitizer with Some s -> Sanitizer.note_run s | None -> ());
  (* oblivious messages have a fixed route ("path position"); adaptive ones
     a carved route ("hop") -- the sanitizer wording tracks the mode *)
  let posw = if oblivious then "path position" else "hop" in
  let sanitize t =
    match sanitizer with
    | None -> ()
    | Some san ->
      Sanitizer.note_cycle san;
      let ctx = [ ("algorithm", algo_name); ("cycle", string_of_int t) ] in
      let viol code m msg =
        Sanitizer.record san
          (Diagnostic.error code (Diagnostic.Message m.spec.Schedule.ms_label) msg ~context:ctx)
      in
      Array.iter
        (fun m ->
          let k = m.plen in
          let buffered = ref 0 in
          for i = 0 to k - 1 do
            let n = m.occ.(i) in
            buffered := !buffered + n;
            if n < 0 || n > cap then
              viol "E102" m
                (Printf.sprintf "buffer occupancy %d outside [0, %d] at %s %d" n cap posw i);
            if n > 0 then begin
              if owner.(m.path.(i)) <> m.idx then
                viol "E102" m
                  (Printf.sprintf "flits buffered on %s which the message does not own"
                     (Topology.channel_name topo m.path.(i)));
              if i < m.released_up_to || i > m.head then
                viol "E103" m
                  (Printf.sprintf "flits at %s %d outside the live window [%d, %d]" posw i
                     m.released_up_to (min m.head (k - 1)))
            end
          done;
          if m.gone = None && m.injected <> m.consumed + !buffered then
            viol "E101" m
              (Printf.sprintf "flit conservation broken: injected %d <> consumed %d + buffered %d"
                 m.injected m.consumed !buffered);
          let release_bound = if m.arrived then k else max m.head 0 in
          if m.released_up_to < 0 || m.released_up_to > release_bound then
            viol "E103" m
              (Printf.sprintf "release watermark %d outside [0, %d]" m.released_up_to
                 release_bound);
          if oblivious then begin
            if m.waiting_for >= 0 then begin
              if m.wait_since < 0 || m.wait_since > t then
                viol "E104" m
                  (Printf.sprintf "waiting for %s with seniority cycle %d outside [0, %d]"
                     (Topology.channel_name topo m.waiting_for)
                     m.wait_since t);
              if wanted m <> Some m.waiting_for then
                viol "E104" m
                  (Printf.sprintf "wait entry on %s but the message no longer wants it"
                     (Topology.channel_name topo m.waiting_for))
            end
          end
          else begin
            if m.wait_since <> max_int && m.wait_since > t then
              viol "E104" m
                (Printf.sprintf "wait timestamp %d is in the future" m.wait_since);
            if m.gone <> None && m.wait_since <> max_int then
              viol "E104" m "abandoned message still has a wait timestamp"
          end;
          match config.recovery with
          | Some r when m.gone = None ->
            if m.retries > r.retry_limit then
              viol "E105" m
                (Printf.sprintf "live message has %d retries, over the limit %d" m.retries
                   r.retry_limit);
            let w = watchdog_of r in
            if active m && t - m.last_progress >= w then
              viol "E105" m
                (Printf.sprintf
                   "watchdog bound broken: no progress since cycle %d (watchdog %d)"
                   m.last_progress w)
          | Some _ | None -> ())
        marr;
      let on_route m c =
        let found = ref false in
        for i = 0 to m.plen - 1 do
          if m.path.(i) = c then found := true
        done;
        !found
      in
      let held = Array.make (Array.length marr) 0 in
      Array.iteri
        (fun c own ->
          if own >= 0 then begin
            held.(own) <- held.(own) + 1;
            let m = marr.(own) in
            if not (on_route m c) then
              viol "E102" m
                (Printf.sprintf "owns %s which is not on its %s"
                   (Topology.channel_name topo c)
                   (if oblivious then "path" else "carved path"))
          end)
        owner;
      (* E106: wait-for stream consistency.  An advertised wait edge from
         a message that holds nothing is a dangling edge the online
         detector would chase into nowhere -- only a not-yet-injected
         source-side waiter may legitimately wait while holding nothing. *)
      Array.iter
        (fun m ->
          let edge = if oblivious then m.waiting_for else m.wait_edge in
          if edge >= 0 then begin
            if m.gone <> None then
              viol "E106" m
                (Printf.sprintf "abandoned message still advertises a wait-for edge on %s"
                   (Topology.channel_name topo edge))
            else if m.injected > 0 && held.(m.idx) = 0 then
              viol "E106" m
                (Printf.sprintf "waits for %s but holds no channel"
                   (Topology.channel_name topo edge))
          end)
        marr
  in
  (* abort-and-drain: release every held channel, drop buffered flits, and
     return the message to its pre-injection state *)
  let drain m t =
    for i = 0 to m.plen - 1 do
      let c = m.path.(i) in
      if owner.(c) = m.idx then begin
        owner.(c) <- -1;
        if obs_on then
          emit
            (Obs_event.Channel_release
               { cycle = t; label = m.spec.Schedule.ms_label; channel = c })
      end
    done;
    if oblivious then begin
      if obs_on && m.waiting_for >= 0 then
        emit
          (Obs_event.Wait_drop
             { cycle = t; label = m.spec.Schedule.ms_label; channel = m.waiting_for;
               waited = t - m.wait_since });
      m.waiting_for <- -1
    end
    else begin
      (* retract the advertised wait-for edge: without this, a message
         aborted mid-wait leaves a dangling edge on the stream that the
         online detector would keep chasing (sanitizer E106) *)
      if obs_on && m.wait_edge >= 0 then
        emit
          (Obs_event.Wait_drop
             { cycle = t; label = m.spec.Schedule.ms_label; channel = m.wait_edge;
               waited = (if m.wait_since = max_int then 0 else t - m.wait_since) });
      m.wait_edge <- -1;
      m.wait_since <- max_int;
      m.plen <- 0  (* the carved route is forgotten; a retry carves afresh *)
    end;
    Array.fill m.occ 0 (Array.length m.occ) 0;
    m.head <- -1;
    m.arrived <- false;
    m.injected <- 0;
    m.consumed <- 0;
    m.hold <- 0;
    m.hold_fresh <- false;
    m.released_up_to <- 0
  in
  let give_up m fate t =
    drain m t;
    m.gone <- Some fate;
    incr finished;
    if obs_on then
      emit
        (Obs_event.Gave_up
           { cycle = t; label = m.spec.Schedule.ms_label;
             fate = (match fate with Dropped -> "dropped" | _ -> "gave-up") })
  in
  let abort_retry m (r : recovery) t ~reason =
    drain m t;
    m.retries <- m.retries + 1;
    if obs_on then
      emit
        (Obs_event.Abort
           { cycle = t; label = m.spec.Schedule.ms_label; retries = m.retries; reason });
    if m.retries > r.retry_limit then give_up m Gave_up t
    else begin
      (match r.reroute with
      | None -> ()
      | Some rt' -> (
        match Routing.path rt' m.spec.Schedule.ms_src m.spec.Schedule.ms_dst with
        | Ok p ->
          if oblivious then begin
            m.path <- Array.of_list p;
            m.occ <- Array.make (Array.length m.path) 0;
            m.holds <- holds_for_path m.spec m.path;
            m.plen <- Array.length m.path
          end
          else
            (* adaptive: pin the remaining route; the retried header claims
               exactly these channels (down ones still refuse it) *)
            m.forced <- Array.of_list p
        | Error _ ->
          (* the degraded network cannot deliver this pair at all *)
          give_up m Gave_up t));
      if m.gone = None then begin
        let delay = r.backoff * (1 lsl min (m.retries - 1) 20) in
        m.attempt_at <- t + delay;
        m.last_progress <- t + delay;
        if obs_on then
          emit
            (Obs_event.Retry
               { cycle = t; label = m.spec.Schedule.ms_label; resume_at = m.attempt_at })
      end
    end
  in
  (* one consumed flit at the destination channel [last] *)
  let consume m t last =
    m.consumed <- m.consumed + 1;
    moved := true;
    m.progressed <- true;
    if obs_on then
      emit
        (Obs_event.Flit
           { cycle = t; label = m.spec.Schedule.ms_label; channel = last;
             kind = Obs_event.Consume });
    if m.consumed = m.spec.Schedule.ms_length then begin
      m.delivered_at <- Some t;
      if obs_on then
        emit
          (Obs_event.Delivered
             { cycle = t; label = m.spec.Schedule.ms_label;
               latency = (match m.injected_at with Some i -> t - i | None -> t) })
    end
  in
  let cycle = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    let t = !cycle in
    moved := false;
    Array.iter (fun m -> m.progressed <- false) marr;
    (match policy with
    | Oblivious _ ->
      (* -- arbitration: register requests, then award each free channel.
            A message's wait_since entry follows the channel it currently
            wants: when the want changes (progress, hold expiry, abort,
            reroute) the stale entry is dropped so seniority cannot leak
            onto a channel the message no longer requests. -- *)
      let eligible m = m.head >= 0 || (m.injected = 0 && t >= m.attempt_at) in
      req_count := 0;
      for j = 0 to nmsg - 1 do
        let m = marr.(j) in
        let c = wanted_chan m in
        if c >= 0 && eligible m && owner.(c) <> m.idx then begin
          if m.waiting_for <> c then begin
            if obs_on then begin
              if m.waiting_for >= 0 then
                emit
                  (Obs_event.Wait_drop
                     { cycle = t; label = m.spec.Schedule.ms_label; channel = m.waiting_for;
                       waited = t - m.wait_since });
              emit
                (Obs_event.Wait_add
                   { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                     holder =
                       (if owner.(c) >= 0 then
                          Some marr.(owner.(c)).spec.Schedule.ms_label
                        else None) })
            end;
            m.waiting_for <- c;
            m.wait_since <- t
          end;
          (* a down channel cannot be acquired, but the waiter keeps its
             seniority for when the stall clears *)
          if not (Fault.down faults c t) && req_stamp.(c) <> t then begin
            req_stamp.(c) <- t;
            req_list.(!req_count) <- c;
            incr req_count
          end
        end
        else begin
          (* not requesting -- including the case where the message already
             owns the channel it wants and its hop is merely fault-deferred:
             an owner is not a waiter, so it must not keep a seniority stamp
             (the sanitizer's E104 check relies on this) *)
          if obs_on && m.waiting_for >= 0 then
            emit
              (Obs_event.Wait_drop
                 { cycle = t; label = m.spec.Schedule.ms_label; channel = m.waiting_for;
                   waited = t - m.wait_since });
          m.waiting_for <- -1
        end
      done;
      (* awards for distinct channels are independent (an award writes only
         [owner.(c)] and the winner's own flags), so the outcome does not
         depend on the order of [req_list] *)
      for ri = 0 to !req_count - 1 do
        let c = req_list.(ri) in
        if owner.(c) = -1 then begin
          let best_j = ref (-1) in
          let best_since = ref 0 in
          let best_rank = ref 0 in
          for j = 0 to nmsg - 1 do
            let m = marr.(j) in
            if wanted_chan m = c && eligible m then begin
              let since = if m.waiting_for = c then m.wait_since else t in
              let r = rank_of.(j) in
              if
                !best_j < 0 || since < !best_since
                || (since = !best_since && r < !best_rank)
              then begin
                best_j := j;
                best_since := since;
                best_rank := r
              end
            end
          done;
          if !best_j >= 0 then begin
            let m = marr.(!best_j) in
            owner.(c) <- m.idx;
            if obs_on then
              emit
                (Obs_event.Channel_acquire
                   { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                     waited = t - !best_since });
            m.waiting_for <- -1;
            m.progressed <- true;
            moved := true
          end
        end
      done
    | Adaptive _ ->
      (* -- allocation: headers claim their first free option; earlier
            waiters first, then priority -- *)
      let nclaim = ref 0 in
      for j = 0 to nmsg - 1 do
        let m = marr.(j) in
        m.awarded_now <- -1;
        let opts = current_options m t in
        opts_now.(j) <- opts;
        if opts <> [] then begin
          if m.wait_since = max_int then m.wait_since <- t;
          claim_order.(!nclaim) <- j;
          incr nclaim
        end
        else if m.wait_edge >= 0 then begin
          (* the header can no longer move at all (arrived, delivered, or
             fault-pinned): its advertised edge is stale *)
          if obs_on then
            emit
              (Obs_event.Wait_drop
                 { cycle = t; label = m.spec.Schedule.ms_label; channel = m.wait_edge;
                   waited = (if m.wait_since = max_int then 0 else t - m.wait_since) });
          m.wait_edge <- -1
        end
      done;
      (* insertion sort of the claimants by (wait_since, rank): keys are
         unique (rank embeds the schedule index), so this matches a
         [List.sort] order exactly, without the per-cycle list build *)
      for a = 1 to !nclaim - 1 do
        let j = claim_order.(a) in
        let kw = marr.(j).wait_since in
        let kr = rank_of.(j) in
        let b = ref (a - 1) in
        while
          !b >= 0
          &&
          let j' = claim_order.(!b) in
          let w' = marr.(j').wait_since in
          w' > kw || (w' = kw && rank_of.(j') > kr)
        do
          claim_order.(!b + 1) <- claim_order.(!b);
          decr b
        done;
        claim_order.(!b + 1) <- j
      done;
      let on_carved m c =
        let found = ref false in
        for i = 0 to m.plen - 1 do
          if m.path.(i) = c then found := true
        done;
        !found
      in
      for a = 0 to !nclaim - 1 do
        let m = marr.(claim_order.(a)) in
        let free =
          List.find_opt (fun c -> owner.(c) = -1 && not (on_carved m c)) opts_now.(m.idx)
        in
        match free with
        | Some c ->
          m.awarded_now <- c;
          owner.(c) <- m.idx;
          if obs_on then
            emit
              (Obs_event.Channel_acquire
                 { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                   waited = (if m.wait_since = max_int then 0 else t - m.wait_since) });
          m.wait_since <- max_int;
          (* the acquisition resolves the advertised edge (Channel_acquire
             implies resolution; no Wait_drop is emitted) *)
          m.wait_edge <- -1;
          m.progressed <- true;
          moved := true
        | None -> ()
      done;
      (* wait-for edge maintenance: a claimant that won nothing advertises
         an edge on its first (preferred) option; when the preference moves
         the old edge is retracted before the new one appears, so the
         stream always carries at most one edge per message *)
      for a = 0 to !nclaim - 1 do
        let m = marr.(claim_order.(a)) in
        if m.awarded_now < 0 then begin
          match opts_now.(m.idx) with
          | c :: _ when c <> m.wait_edge ->
            if obs_on then begin
              if m.wait_edge >= 0 then
                emit
                  (Obs_event.Wait_drop
                     { cycle = t; label = m.spec.Schedule.ms_label; channel = m.wait_edge;
                       waited = (if m.wait_since = max_int then 0 else t - m.wait_since) });
              emit
                (Obs_event.Wait_add
                   { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                     holder =
                       (if owner.(c) >= 0 then Some marr.(owner.(c)).spec.Schedule.ms_label
                        else None) })
            end;
            m.wait_edge <- c
          | _ -> ()
        end
      done);
    (* -- movement: per message, sweep from the front so freed slots are
          visible to the flits behind (wormhole pipelining).  A down channel
          (failed or stalled) neither accepts nor emits flits. -- *)
    Array.iter
      (fun m ->
        let ok i = not (Fault.down faults m.path.(i) t) in
        if active m then begin
          (* consumption at the destination.  Oblivious: the route ends at
             the destination by construction and the last hop honors holds.
             Adaptive: the carved route may not have reached the
             destination yet, and arrival is recorded as soon as the header
             sits in a destination channel (holds are ignored). *)
          (if oblivious then begin
             let k = m.plen in
             if
               (m.arrived || (m.head = k - 1 && m.hold = 0))
               && m.occ.(k - 1) > 0 && ok (k - 1)
             then begin
               m.occ.(k - 1) <- m.occ.(k - 1) - 1;
               if m.head = k - 1 then begin
                 m.head <- k;
                 m.arrived <- true
               end;
               consume m t m.path.(k - 1)
             end
           end
           else begin
             let k = m.plen in
             if k > 0 then begin
               let last = m.path.(k - 1) in
               if Topology.dst topo last = m.spec.Schedule.ms_dst && m.head >= k - 1
               then begin
                 if m.head = k - 1 then begin
                   m.arrived <- true;
                   m.head <- k
                 end;
                 if m.occ.(k - 1) > 0 && ok (k - 1) then begin
                   m.occ.(k - 1) <- m.occ.(k - 1) - 1;
                   consume m t last
                 end
               end
             end
           end);
          (* header advance.  Oblivious: hop into the fixed next channel
             once acquired (award and hop may be cycles apart).  Adaptive:
             push into the channel claimed this very cycle (an award always
             implies the hop completes). *)
          (if oblivious then begin
             let k = m.plen in
             if
               m.head >= 0 && m.head < k - 1 && m.hold = 0
               && owner.(m.path.(m.head + 1)) = m.idx
               && ok m.head && ok (m.head + 1)
             then begin
               m.occ.(m.head) <- m.occ.(m.head) - 1;
               m.occ.(m.head + 1) <- m.occ.(m.head + 1) + 1;
               m.head <- m.head + 1;
               set_hold m m.head;
               moved := true;
               m.progressed <- true;
               if obs_on then
                 emit
                   (Obs_event.Flit
                      { cycle = t; label = m.spec.Schedule.ms_label;
                        channel = m.path.(m.head); kind = Obs_event.Hop })
             end
           end
           else if m.awarded_now >= 0 then begin
             let c = m.awarded_now in
             if m.head = -1 then begin
               (* header injection *)
               carve m c;
               m.occ.(0) <- 1;
               m.head <- 0;
               m.injected <- 1;
               m.injected_at <- Some t;
               moved := true;
               m.progressed <- true;
               if obs_on then
                 emit
                   (Obs_event.Flit
                      { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                        kind = Obs_event.Inject })
             end
             else begin
               carve m c;
               m.occ.(m.head) <- m.occ.(m.head) - 1;
               m.occ.(m.head + 1) <- 1;
               m.head <- m.head + 1;
               moved := true;
               m.progressed <- true;
               if obs_on then
                 emit
                   (Obs_event.Flit
                      { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                        kind = Obs_event.Hop })
             end
           end);
          (* data flits cascade toward the header *)
          let k = m.plen in
          let front = min (m.head - 1) (k - 2) in
          for i = front downto 0 do
            if m.occ.(i) > 0 && m.occ.(i + 1) < cap && ok i && ok (i + 1) then begin
              m.occ.(i) <- m.occ.(i) - 1;
              m.occ.(i + 1) <- m.occ.(i + 1) + 1;
              moved := true;
              m.progressed <- true;
              if obs_on then
                emit
                  (Obs_event.Flit
                     { cycle = t; label = m.spec.Schedule.ms_label; channel = m.path.(i + 1);
                       kind = Obs_event.Cascade })
            end
          done;
          (* injection at the source: the header first (oblivious mode --
             an adaptive header injects in the claim-push above), then at
             most one data flit per cycle; the header push counts as the
             injection-cycle's flit *)
          if oblivious && m.injected = 0 then begin
            if owner.(m.path.(0)) = m.idx && m.head = -1 && ok 0 then begin
              m.occ.(0) <- 1;
              m.injected <- 1;
              m.head <- 0;
              m.injected_at <- Some t;
              set_hold m 0;
              moved := true;
              m.progressed <- true;
              if obs_on then
                emit
                  (Obs_event.Flit
                     { cycle = t; label = m.spec.Schedule.ms_label; channel = m.path.(0);
                       kind = Obs_event.Inject })
            end
          end
          else if
            m.injected > 0 && m.injected < m.spec.Schedule.ms_length
            && (match m.injected_at with Some at0 -> at0 <> t | None -> true)
            && m.occ.(0) < cap
            && owner.(m.path.(0)) = m.idx
            && ok 0
          then begin
            m.occ.(0) <- m.occ.(0) + 1;
            m.injected <- m.injected + 1;
            moved := true;
            m.progressed <- true;
            if obs_on then
              emit
                (Obs_event.Flit
                   { cycle = t; label = m.spec.Schedule.ms_label; channel = m.path.(0);
                     kind = Obs_event.Inject })
          end;
          (* release: channels the whole message has passed through *)
          if m.injected = m.spec.Schedule.ms_length then begin
            let i = ref m.released_up_to in
            let continue = ref true in
            while !continue && !i < m.plen do
              if m.occ.(!i) = 0 && owner.(m.path.(!i)) = m.idx && (!i < m.head || m.arrived)
              then begin
                owner.(m.path.(!i)) <- -1;
                moved := true;
                m.progressed <- true;
                if obs_on then
                  emit
                    (Obs_event.Channel_release
                       { cycle = t; label = m.spec.Schedule.ms_label; channel = m.path.(!i) });
                incr i
              end
              else continue := false
            done;
            m.released_up_to <- !i
          end;
          if m.delivered_at = Some t then incr finished;
          (* hold countdown (skip the cycle the hold was set); expiry is
             progress: the header will act next cycle.  Adaptive mode never
             sets holds, so this is a no-op there. *)
          if m.hold > 0 then begin
            m.progressed <- true;
            if m.hold_fresh then m.hold_fresh <- false
            else begin
              m.hold <- m.hold - 1;
              if m.hold = 0 then moved := true
            end
          end
        end)
      marr;
    (* -- faults and recovery: source-side drops, then the watchdog -- *)
    if not (Fault.is_empty config.faults) then
      Array.iter
        (fun m ->
          if active m && m.injected = 0 && Fault.dropped_now faults m.spec.Schedule.ms_label t
          then begin
            perturbed := true;
            if obs_on then
              emit
                (Obs_event.Fault
                   { cycle = t; kind = Obs_event.Drop_fired; channel = None;
                     label = Some m.spec.Schedule.ms_label; duration = 0 });
            match config.recovery with
            | None -> give_up m Dropped t
            | Some r -> abort_retry m r t ~reason:"drop"
          end)
        marr;
    (* -- online detection: end-of-cycle tick confirms quiescent wait-for
          knots; only the policy-chosen victim is aborted, so the rest of
          the knot unwinds through the freed channels instead of being
          drained wholesale like a watchdog abort. -- *)
    (match (config.recovery, det) with
    | Some r, Some d ->
      let policy_name =
        match r.trigger with
        | Detect c -> Obs_detect.victim_policy_string c.Obs_detect.policy
        | Watchdog _ -> "minimal"
      in
      List.iter
        (fun (dk : Obs_detect.detection) ->
          emit
            (Obs_event.Deadlock_detected
               { cycle = t; members = List.map fst dk.Obs_detect.dk_members;
                 channels = List.map snd dk.Obs_detect.dk_members;
                 victims = dk.Obs_detect.dk_victims });
          List.iter
            (fun v ->
              let vm = ref None in
              Array.iter
                (fun m -> if m.spec.Schedule.ms_label = v then vm := Some m)
                marr;
              match !vm with
              | Some m when active m ->
                perturbed := true;
                emit (Obs_event.Victim_aborted { cycle = t; label = v; policy = policy_name });
                abort_retry m r t ~reason:"deadlock"
              | Some _ | None -> ())
            dk.Obs_detect.dk_victims)
        (Obs_detect.tick d ~now:t)
    | (Some _ | None), _ -> ());
    (match config.recovery with
    | None -> ()
    | Some r ->
      let w = watchdog_of r in
      Array.iter
        (fun m ->
          if active m then begin
            if m.progressed || (m.injected = 0 && t < m.attempt_at) then m.last_progress <- t
            else if t - m.last_progress >= w then begin
              perturbed := true;
              abort_retry m r t ~reason:"watchdog"
            end
          end)
        marr);
    (* -- end of cycle: sanitizer, probe, termination checks -- *)
    sanitize t;
    (match probe with
    | None -> ()
    | Some f ->
      let occupancy =
        let acc = ref [] in
        Array.iter
          (fun m ->
            for i = 0 to m.plen - 1 do
              if m.occ.(i) > 0 then
                acc := (m.path.(i), m.spec.Schedule.ms_label, m.occ.(i)) :: !acc
            done)
          marr;
        List.sort compare !acc
      in
      let waiting =
        Array.to_list marr
        |> List.filter_map (fun m ->
               if m.delivered_at <> None then None
               else
                 match first_want m t with
                 | Some c when m.head >= 0 && owner.(c) <> m.idx ->
                   Some
                     ( m.spec.Schedule.ms_label,
                       c,
                       if owner.(c) >= 0 then Some marr.(owner.(c)).spec.Schedule.ms_label
                       else None )
                 | Some _ | None -> None)
      in
      f { s_cycle = t; s_occupancy = occupancy; s_waiting = waiting; s_moved = !moved });
    if !finished = nmsg then
      outcome :=
        Some
          (if !perturbed then Recovered { finished_at = t; messages = results (); stats = stats () }
           else All_delivered { finished_at = t; messages = results () })
    else if t >= config.max_cycles then outcome := Some (Cutoff { at = t; messages = results () })
    else if not !moved then begin
      let future =
        Array.exists
          (fun m -> active m && ((m.injected = 0 && t < m.attempt_at) || m.hold > 0))
          marr
        (* with recovery on, any live message is future work: the watchdog
           will eventually abort it, so nothing is permanently blocked *)
        || (Option.is_some config.recovery && Array.exists active marr)
        (* a stall window about to close or an unfired event can unblock *)
        || Fault.change_after faults t
      in
      if not future then begin
        (* permanently blocked: build the witness *)
        let label i = marr.(i).spec.Schedule.ms_label in
        let wants m =
          if oblivious then match wanted m with Some c -> [ c ] | None -> []
          else current_options m t
        in
        let blocked =
          Array.to_list marr
          |> List.filter_map (fun m ->
                 if m.delivered_at <> None then None
                 else
                   match wants m with
                   | [] -> None
                   | c :: _ as ws ->
                     Some
                       {
                         b_label = m.spec.Schedule.ms_label;
                         b_wants = ws;
                         b_holder = (if owner.(c) >= 0 then Some (label owner.(c)) else None);
                       })
        in
        (* follow the wait-for edges (through the first option when
           adaptive) from any blocked message to find a cycle *)
        let wait_cycle =
          let next i =
            match first_want marr.(i) t with
            | Some c when owner.(c) >= 0 && owner.(c) <> i -> Some owner.(c)
            | Some _ | None -> None
          in
          let start =
            Array.to_list marr
            |> List.filter_map (fun m -> if m.delivered_at = None then Some m.idx else None)
          in
          let rec chase seen i =
            match next i with
            | None -> None
            | Some j ->
              if List.mem j seen then begin
                (* cut the prefix before the first occurrence of j *)
                let rec drop = function
                  | [] -> []
                  | x :: rest -> if x = j then x :: rest else drop rest
                in
                Some (drop (List.rev (i :: seen)))
              end
              else chase (i :: seen) j
          in
          let rec try_starts = function
            | [] -> []
            | s :: rest -> (
              match chase [] s with Some c -> List.map label c | None -> try_starts rest)
          in
          try_starts start
        in
        let occupancy =
          let acc = ref [] in
          Array.iter
            (fun m ->
              for i = 0 to m.plen - 1 do
                if m.occ.(i) > 0 then
                  acc := (m.path.(i), m.spec.Schedule.ms_label, m.occ.(i)) :: !acc
              done)
            marr;
          List.sort compare !acc
        in
        outcome :=
          Some (Deadlock { d_cycle = t; d_blocked = blocked; d_wait_cycle = wait_cycle;
                           d_occupancy = occupancy })
      end
    end;
    incr cycle
  done;
  let o = match !outcome with Some o -> o | None -> assert false in
  if obs_on then begin
    let final =
      match o with
      | All_delivered { finished_at; _ } | Recovered { finished_at; _ } -> finished_at
      | Deadlock d -> d.d_cycle
      | Cutoff { at; _ } -> at
    in
    emit (Obs_event.Run_end { cycle = final; outcome = outcome_string o })
  end;
  o

let pp_fate ppf = function
  | Delivered -> Format.pp_print_string ppf "delivered"
  | Dropped -> Format.pp_print_string ppf "dropped"
  | Gave_up -> Format.pp_print_string ppf "gave up"

let pp_outcome topo ppf = function
  | All_delivered { finished_at; messages } ->
    Format.fprintf ppf "all %d messages delivered by cycle %d" (List.length messages)
      finished_at
  | Cutoff { at; _ } -> Format.fprintf ppf "cutoff at cycle %d (still moving)" at
  | Recovered { finished_at; stats; _ } ->
    let count f = List.length (List.filter (fun s -> s.t_fate = f) stats) in
    let retries = List.fold_left (fun acc s -> acc + s.t_retries) 0 stats in
    Format.fprintf ppf
      "recovered by cycle %d: %d delivered, %d dropped, %d gave up (%d retries total)"
      finished_at (count Delivered) (count Dropped) (count Gave_up) retries;
    List.iter
      (fun s ->
        if s.t_retries > 0 || s.t_fate <> Delivered then
          Format.fprintf ppf "@\n  %s: %a after %d retr%s" s.t_label pp_fate s.t_fate
            s.t_retries
            (if s.t_retries = 1 then "y" else "ies"))
      stats
  | Deadlock d ->
    Format.fprintf ppf "DEADLOCK at cycle %d; wait cycle: %s@\n" d.d_cycle
      (String.concat " -> " d.d_wait_cycle);
    List.iter
      (fun b ->
        match b.b_wants with
        | [ c ] ->
          Format.fprintf ppf "  %s waits for %s held by %s@\n" b.b_label
            (Topology.channel_name topo c)
            (match b.b_holder with Some h -> h | None -> "(free)")
        | ws ->
          Format.fprintf ppf "  %s blocked on {%s}@\n" b.b_label
            (String.concat ", " (List.map (Topology.channel_name topo) ws)))
      d.d_blocked;
    List.iter
      (fun (c, l, n) ->
        Format.fprintf ppf "  %s holds %s (%d flit%s)@\n" l (Topology.channel_name topo c) n
          (if n > 1 then "s" else ""))
      d.d_occupancy
