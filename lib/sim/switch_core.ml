type arbitration = Fifo | Priority of string list

type discipline = Wormhole | Virtual_cut_through | Store_and_forward

let discipline_string = function
  | Wormhole -> "wormhole"
  | Virtual_cut_through -> "virtual-cut-through"
  | Store_and_forward -> "store-and-forward"

let discipline_of_string = function
  | "wormhole" | "wh" -> Some Wormhole
  | "virtual-cut-through" | "vct" -> Some Virtual_cut_through
  | "store-and-forward" | "saf" -> Some Store_and_forward
  | _ -> None

(* Process-wide discipline override for matrix sweeps (CI, EXP-SW1): rerun
   an existing oblivious campaign under another discipline without touching
   every config construction site.  Same precedent as [Obs_stats.arm] /
   [Sanitizer.install].  Under a [Store_and_forward] override the effective
   buffer capacity is raised to the longest scheduled message so campaigns
   provisioned for wormhole (capacity 1) stay runnable. *)
let discipline_override_cell : discipline option Atomic.t = Atomic.make None
let set_discipline_override d = Atomic.set discipline_override_cell d
let discipline_override () = Atomic.get discipline_override_cell

type trigger = Watchdog of int | Detect of Obs_detect.config

type recovery = {
  trigger : trigger;
  retry_limit : int;
  backoff : int;
  reroute : Routing.t option;
}

let default_recovery = { trigger = Watchdog 64; retry_limit = 4; backoff = 8; reroute = None }

(* The stall threshold of the global no-progress sweep.  Under [Detect]
   the detector handles wait-for knots, but an {e acyclic} wedge (a worm
   parked forever behind a failed link, holding channels while waiting in
   no cycle) emits no wait cycle to detect -- the [backstop] keeps the
   sweep alive for those. *)
let watchdog_of r =
  match r.trigger with Watchdog w -> w | Detect c -> c.Obs_detect.backstop

type config = {
  buffer_capacity : int;
  arbitration : arbitration;
  discipline : discipline;
  max_cycles : int;
  faults : Fault.plan;
  recovery : recovery option;
}

let default_config =
  {
    buffer_capacity = 1;
    arbitration = Fifo;
    discipline = Wormhole;
    max_cycles = 100_000;
    faults = Fault.empty;
    recovery = None;
  }

type message_result = {
  r_label : string;
  r_injected_at : int option;
  r_delivered_at : int option;
}

type blocked_info = {
  b_label : string;
  b_wants : Topology.channel list;
  b_holder : string option;
}

type deadlock_class = Obs_detect.deadlock_class = Global | Local | Weak

let deadlock_class_string = Obs_detect.deadlock_class_string

type deadlock_info = {
  d_cycle : int;
  d_class : deadlock_class;
  d_blocked : blocked_info list;
  d_wait_cycle : string list;
  d_occupancy : (Topology.channel * string * int) list;
}

type fate = Delivered | Dropped | Gave_up

type retry_stat = {
  t_label : string;
  t_retries : int;
  t_fate : fate;
}

type outcome =
  | All_delivered of { finished_at : int; messages : message_result list }
  | Deadlock of deadlock_info
  | Cutoff of { at : int; messages : message_result list }
  | Recovered of {
      finished_at : int;
      messages : message_result list;
      stats : retry_stat list;
    }

type snapshot = {
  s_cycle : int;
  s_occupancy : (Topology.channel * string * int) list;
  s_waiting : (string * Topology.channel * string option) list;
  s_moved : bool;
}

type policy = Oblivious of Routing.t | Adaptive of Adaptive.t

let is_deadlock = function
  | Deadlock _ -> true
  | All_delivered _ | Cutoff _ | Recovered _ -> false

(* -- struct-of-arrays message state --

   The kernel keeps no per-message records: every field lives in a flat
   parallel array indexed by schedule position, so the steady cycle is
   index loops over unboxed ints with zero allocation.  Sentinel
   encodings: [-1] for "none" in channel/cycle-valued fields
   ([head_] -1 = not injected, [injected_at_]/[delivered_at_] -1 = never,
   [waiting_]/[awarded_]/[wait_edge_] -1 = no channel), [max_int] for the
   adaptive "not waiting" wait_since, and fates as small ints below.
   Booleans sit in {!Bitset}s ([arrived_], [hold_fresh_]) or a byte row
   ([progressed_], written for every live message every cycle).  Jagged
   rows ([path_], [occ_], [holds_], [forced_]) are plain int arrays
   replaced wholesale on reroute and grown by doubling when an adaptive
   header carves. *)

(* fate encoding for [fate_] *)
let f_live = 0

let f_dropped = 1

let f_gave_up = 2

(* physically-unique sentinel row marking a not-yet-memoized adaptive
   option set; compared with [!=] *)
let unset_row : int array = [| -1 |]
(* Process-wide count of simulation runs started, for throughput reporting
   (runs/sec in the campaign timing table).  Atomic: runs happen on every
   domain of a parallel sweep. *)
let runs_started = Atomic.make 0
let note_run_started () = Atomic.incr runs_started
let run_count () = Atomic.get runs_started

(* Runs whose results were discarded by a sweep's early cancellation
   (speculative pool work past the canonical winner).  Tracked separately
   so [run_count () - cancelled_count ()] is the exact canonical total; the
   search layer reports its cancellations here. *)
let runs_cancelled = Atomic.make 0
let note_runs_cancelled n = if n > 0 then ignore (Atomic.fetch_and_add runs_cancelled n)
let cancelled_count () = Atomic.get runs_cancelled

let outcome_string = function
  | All_delivered _ -> "all-delivered"
  | Deadlock _ -> "deadlock"
  | Cutoff _ -> "cutoff"
  | Recovered _ -> "recovered"
let run ?(config = default_config) ?probe ?sanitizer ?obs ?stats policy sched =
  let oblivious = match policy with Oblivious _ -> true | Adaptive _ -> false in
  let caller = if oblivious then "Engine.run: " else "Adaptive_engine.run: " in
  let inv msg = invalid_arg (caller ^ msg) in
  let topo =
    match policy with
    | Oblivious rt -> Routing.topology rt
    | Adaptive ad -> Adaptive.topology ad
  in
  let algo_name =
    match policy with Oblivious rt -> Routing.name rt | Adaptive ad -> Adaptive.name ad
  in
  if config.buffer_capacity < 1 then inv "buffer_capacity < 1";
  if config.max_cycles < 1 then inv "max_cycles < 1";
  (* effective discipline: adaptive runs always switch wormhole (carved
     routes have no fixed packet staging point); oblivious runs honor the
     process-wide override, then the config *)
  let override = if oblivious then Atomic.get discipline_override_cell else None in
  let discipline =
    if not oblivious then Wormhole
    else match override with Some d -> d | None -> config.discipline
  in
  let max_len =
    List.fold_left
      (fun acc (m : Schedule.message_spec) -> max acc m.Schedule.ms_length)
      1 sched
  in
  (* effective scalar capacity: an overridden store-and-forward sweep gets
     whole-packet buffers for free (the override's point is re-running
     wormhole-provisioned campaigns); an explicit SAF config must provision
     them itself (validated below, lint E047) *)
  let cap =
    match discipline with
    | Store_and_forward when override <> None -> max config.buffer_capacity max_len
    | Store_and_forward | Wormhole | Virtual_cut_through -> config.buffer_capacity
  in
  (match config.recovery with
  | None -> ()
  | Some r ->
    (match r.trigger with
    | Watchdog w -> if w < 1 then inv "recovery watchdog < 1"
    | Detect c ->
      if c.Obs_detect.bound < 1 then inv "recovery detect bound < 1";
      if c.Obs_detect.backstop < 1 then inv "recovery detect backstop < 1");
    if r.retry_limit < 0 then inv "recovery retry_limit < 0";
    if r.backoff < 1 then inv "recovery backoff < 1";
    (match r.reroute with
    | Some rt' when Routing.topology rt' != topo ->
      inv "recovery reroute built on a different topology"
    | Some _ | None -> ()));
  let ob_paths =
    match policy with
    | Oblivious rt ->
      (* one walk of the routing serves both validation and the kernel's
         route rows ({!Schedule.validate_paths}) *)
      let paths =
        match Schedule.validate_paths rt sched with Ok p -> p | Error e -> inv e
      in
      (match discipline with
      | Store_and_forward ->
        List.iter
          (fun (m : Schedule.message_spec) ->
            if m.ms_length > cap then
              inv "store-and-forward needs buffer_capacity >= message length")
          sched
      | Wormhole | Virtual_cut_through -> ());
      paths
    | Adaptive _ ->
      (* no static routability check here: an adaptive function's coverage is
         {!Adaptive.validate}'s concern, and [config.discipline] is ignored
         (adaptive runs always switch wormhole) *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (m : Schedule.message_spec) ->
          if Hashtbl.mem seen m.ms_label then inv "duplicate message labels"
          else Hashtbl.add seen m.ms_label ())
        sched;
      List.iter
        (fun (m : Schedule.message_spec) ->
          if m.ms_length < 1 then inv "length < 1";
          if m.ms_src = m.ms_dst then inv "source equals destination")
        sched;
      [||]
  in
  let nchan = Topology.num_channels topo in
  let faults = Fault.compile ~nchan config.faults in
  (* per-channel buffer-capacity column (SoA).  Wormhole and SAF fill it
     with the scalar capacity; virtual cut-through provisions every channel
     for the longest scheduled packet, which is exactly what makes a
     blocked message compress into its head channel and free the upstream
     ones (cut-through = wormhole + whole-packet buffers in this
     channel-queue model; see DESIGN.md section 17). *)
  let chan_cap =
    match discipline with
    | Virtual_cut_through -> max cap max_len
    | Wormhole | Store_and_forward -> cap
  in
  let cap_ = Array.make (max nchan 1) chan_cap in
  note_run_started ();
  (* -- observability: hoist the sink once per run; every emission site is
        guarded by [obs_on] so a disabled bus allocates nothing.  Emission
        is pure observation -- the run takes identical decisions with any
        sink installed (QCheck-checked in test_obs). -- *)
  let user_obs = match obs with Some _ as s -> s | None -> Obs.current () in
  (* -- online detection: a [Detect] trigger instantiates the detector and
        forces event construction for this run (the detector IS engine
        semantics, so unlike user sinks its cost is accepted when chosen);
        with [Watchdog] and no sink, the hot path stays event-free. -- *)
  let det =
    match config.recovery with
    | Some { trigger = Detect dcfg; _ } -> Some (Obs_detect.create dcfg)
    | Some { trigger = Watchdog _; _ } | None -> None
  in
  let obs_on = user_obs <> None || det <> None in
  let emit e =
    (match det with Some d -> Obs_detect.feed d e | None -> ());
    match user_obs with Some s -> s.Obs.emit e | None -> ()
  in
  if obs_on then begin
    emit
      (Obs_event.Run_start
         { engine = (if oblivious then "oblivious" else "adaptive");
           algorithm = algo_name; messages = List.length sched });
    List.iter
      (fun (ev : Fault.event) ->
        emit
          (match ev with
          | Fault.Link_failure { channel; at } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_failure; channel = Some channel;
                label = None; duration = 0 }
          | Fault.Transient_stall { channel; at; duration } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_stall; channel = Some channel;
                label = None; duration }
          | Fault.Message_drop { label; at } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_drop; channel = None;
                label = Some label; duration = 0 }))
      (Fault.events config.faults)
  end;
  let have_faults = not (Fault.is_empty config.faults) in
  (* -- telemetry: hoist the stats accumulator once per run.  An explicit
        [?stats] wins; otherwise an armed process ({!Obs_stats.arm}) gets a
        private accumulator whose scalar totals fold into the global armed
        counters at run end.  Every accumulation site is guarded by
        [stats_on], so a disarmed run pays one [Atomic.get] here plus a
        never-taken branch per site -- and like the event bus, stats are
        pure observation (QCheck-checked in test_stats). -- *)
  let stats_auto =
    match stats with None -> Obs_stats.armed () | Some _ -> false
  in
  let st =
    match stats with
    | Some st -> st
    | None -> if stats_auto then Obs_stats.create ~nchan else Obs_stats.none
  in
  let stats_on = stats_auto || (match stats with Some _ -> true | None -> false) in
  if stats_on then begin
    if st.Obs_stats.st_nchan <> nchan then
      inv "stats accumulator sized for a different topology";
    st.Obs_stats.st_runs <- st.Obs_stats.st_runs + 1;
    let di =
      match discipline with
      | Wormhole -> 0
      | Virtual_cut_through -> 1
      | Store_and_forward -> 2
    in
    st.Obs_stats.st_disc_runs.(di) <- st.Obs_stats.st_disc_runs.(di) + 1
  end;
  (* ---- flat message state (see the struct-of-arrays note above) ---- *)
  let specs = Array.of_list sched in
  let nmsg = Array.length specs in
  let label j = specs.(j).Schedule.ms_label in
  let len_ = Array.init nmsg (fun j -> specs.(j).Schedule.ms_length) in
  let dst_ = Array.init nmsg (fun j -> specs.(j).Schedule.ms_dst) in
  (* A schedule's holds are an assoc list keyed by channel; they are
     resolved to a per-path-position array through a channel-indexed
     scratch row (built once per run, cleared after each use), replacing
     the old per-position [List.assoc_opt] scan. *)
  let hold_scratch = Array.make (if oblivious then nchan else 0) 0 in
  let holds_for_path (spec : Schedule.message_spec) path =
    match spec.Schedule.ms_holds with
    | [] -> Array.make (Array.length path) 0
    | hs ->
      (* write later bindings first so the earliest binding for a channel
         wins, exactly as [List.assoc_opt] resolved duplicates *)
      List.iter (fun (c, h) -> hold_scratch.(c) <- h) (List.rev hs);
      let r = Array.map (fun c -> hold_scratch.(c)) path in
      List.iter (fun (c, _) -> hold_scratch.(c) <- 0) hs;
      r
  in
  let path_ = if oblivious then ob_paths else Array.make nmsg [||] in
  let occ_ = Array.init nmsg (fun j -> Array.make (Array.length path_.(j)) 0) in
  let holds_ =
    Array.init nmsg (fun j ->
        if oblivious then holds_for_path specs.(j) path_.(j) else [||])
  in
  let plen_ = Array.init nmsg (fun j -> Array.length path_.(j)) in
  let head_ = Array.make nmsg (-1) in
  let arrived_ = Bitset.create (max nmsg 1) in
  let injected_ = Array.make nmsg 0 in
  let consumed_ = Array.make nmsg 0 in
  let hold_ = Array.make nmsg 0 in
  let hold_fresh_ = Bitset.create (max nmsg 1) in
  let injected_at_ = Array.make nmsg (-1) in
  let delivered_at_ = Array.make nmsg (-1) in
  let released_ = Array.make nmsg 0 in
  let attempt_ = Array.init nmsg (fun j -> specs.(j).Schedule.ms_inject_at) in
  let retries_ = Array.make nmsg 0 in
  let fate_ = Array.make nmsg f_live in
  let last_progress_ = Array.make nmsg 0 in
  let progressed_ = Bytes.make (max nmsg 1) '\000' in
  let waiting_ = Array.make nmsg (-1) in
  let wait_since_ = Array.make nmsg (if oblivious then 0 else max_int) in
  let awarded_ = Array.make nmsg (-1) in
  let wait_edge_ = Array.make nmsg (-1) in
  let forced_ = Array.make nmsg [||] in
  let owner = Array.make nchan (-1) in
  (* arbitration rank per schedule position.  The priority variant used to
     build a per-run Hashtbl and hash every label; a sorted index over the
     order list with a leftmost binary search gives the same
     first-occurrence rank without it. *)
  let rank_of =
    match config.arbitration with
    | Fifo -> Array.init nmsg (fun j -> j)
    | Priority order ->
      let ord = Array.of_list order in
      let n = Array.length ord in
      let sorted = Array.init n (fun i -> i) in
      Array.sort
        (fun a b -> match compare ord.(a) ord.(b) with 0 -> compare a b | c -> c)
        sorted;
      let find l =
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if ord.(sorted.(mid)) < l then lo := mid + 1 else hi := mid
        done;
        if !lo < n && ord.(sorted.(!lo)) = l then sorted.(!lo) else n
      in
      Array.init nmsg (fun j -> (find (label j) * nmsg) + j)
  in
  (* adaptive option sets: destinations are interned to slots, and the raw
     option row of a (channel, destination slot) pair is memoized as an int
     array on first touch -- the steady cycle then only filters it in
     place (down / owned / already-carved checks) without allocating.
     Inject-state options are precomputed per message. *)
  let ad_opt = match policy with Adaptive ad -> Some ad | Oblivious _ -> None in
  let dslot_ = Array.make nmsg 0 in
  let dst_of_slot = Array.make (max nmsg 1) 0 in
  let nd = ref 0 in
  (match ad_opt with
  | None -> ()
  | Some _ ->
    let slot_of = Array.make (Topology.num_nodes topo) (-1) in
    Array.iteri
      (fun j d ->
        if slot_of.(d) < 0 then begin
          slot_of.(d) <- !nd;
          dst_of_slot.(!nd) <- d;
          incr nd
        end;
        dslot_.(j) <- slot_of.(d))
      dst_);
  let nd = max 1 !nd in
  let opt_rows = Array.make (if oblivious then 0 else nchan * nd) unset_row in
  let inject_opts =
    match ad_opt with
    | None -> [||]
    | Some ad ->
      Array.init nmsg (fun j ->
          Array.of_list
            (Adaptive.options ad (Routing.Inject specs.(j).Schedule.ms_src) dst_.(j)))
  in
  let chan_dst_ =
    if oblivious then [||] else Array.init nchan (fun c -> Topology.dst topo c)
  in
  (* per-message carved-channel membership, one byte per channel: [carve]
     sets, [drain] clears, and the claim filter's "not already on my carved
     path" test becomes a single load instead of an O(carved length) rescan *)
  let carved_mark =
    if oblivious then [||] else Array.init nmsg (fun _ -> Bytes.make (max nchan 1) '\000')
  in
  let row_get c slot =
    let i = (c * nd) + slot in
    let r = opt_rows.(i) in
    if r != unset_row then r
    else begin
      let ad = match ad_opt with Some ad -> ad | None -> assert false in
      let row = Array.of_list (Adaptive.options ad (Routing.From c) dst_of_slot.(slot)) in
      opt_rows.(i) <- row;
      row
    end
  in
  (* per-cycle scratch, reused across cycles -- nothing here is allocated
     inside the steady loop.  Oblivious: [req_stamp.(c) = t] marks channel
     [c] as requested this cycle, [req_list] keeps the channels in
     first-request order, and [cand_*] track the per-channel best waiter
     (min over the unique (wait_since, rank) key) during registration, so
     the award pass is O(requested channels) instead of the old
     O(requests x messages) rescan.  Adaptive: the option-source tag and
     first usable option per message, plus the claimant order. *)
  let req_stamp = Array.make (if oblivious then nchan else 0) (-1) in
  let req_list = Array.make (if oblivious then nchan else 0) 0 in
  let req_count = ref 0 in
  let cand_j = Array.make (if oblivious then nchan else 0) (-1) in
  let cand_since = Array.make (if oblivious then nchan else 0) 0 in
  let cand_rank = Array.make (if oblivious then nchan else 0) 0 in
  let opt_tag_ = Array.make (if oblivious then 0 else nmsg) (-1) in
  let first_opt_ = Array.make (if oblivious then 0 else nmsg) (-1) in
  let opt_row_ = Array.make (if oblivious then 0 else nmsg) unset_row in
  (* head position for which [opt_tag_]/[opt_row_] are currently valid:
     on a fault-free run a header that failed to move re-registers with the
     exact same tag, row and first option next cycle, so the recomputation
     (forced-row reads, row lookup, down-filter rescan) is skipped while a
     worm is parked.  [min_int] = invalid; [drain] resets it because a
     retry carves a fresh path through the same head positions. *)
  let opt_h_ = Array.make (if oblivious then 0 else nmsg) min_int in
  let claim_order = Array.make (if oblivious then 0 else nmsg) 0 in
  let claim_count = ref 0 in
  (* pre-allocated cursors for the inner scans below: OCaml refs are heap
     blocks, so hot helpers share these per-run cells instead of minting
     fresh ones every call *)
  let scan_found = ref (-1) in
  let scan_flag = ref false in
  let ins_b = ref 0 in
  let rel_i = ref 0 in
  (* live-message index list in schedule order; delivered and abandoned
     messages are compacted out at end of cycle so steady-state loops only
     touch in-flight work *)
  let live = Array.init nmsg (fun j -> j) in
  let nlive = ref nmsg in
  let last_finished = ref 0 in
  (* With no recovery configured the attempt windows never move, and the
     workload generators emit messages in injection-time order: the
     pre-window messages are then exactly a suffix of the (index-sorted)
     live list, so each cycle's hot loops can stop at a cutoff instead of
     re-testing every sleeping source.  Recovery (attempt windows move on
     abort) or a hand-written out-of-order schedule falls back to the
     per-message window test over the whole live list. *)
  let static_windows =
    (match config.recovery with None -> true | Some _ -> false)
    && (let ok = ref true in
        for j = 1 to nmsg - 1 do
          if attempt_.(j) < attempt_.(j - 1) then ok := false
        done;
        !ok)
  in
  let awake_n = ref 0 in
  let bs_lo = ref 0 and bs_hi = ref 0 in
  let moved = ref false in
  let finished = ref 0 in
  (* any fault fired or recovery action taken: the run reports [Recovered] *)
  let perturbed = ref false in
  let cyc_opt v = if v < 0 then None else Some v in
  let results () =
    List.init nmsg (fun j ->
        { r_label = label j; r_injected_at = cyc_opt injected_at_.(j);
          r_delivered_at = cyc_opt delivered_at_.(j) })
  in
  let stats () =
    List.init nmsg (fun j ->
        {
          t_label = label j;
          t_retries = retries_.(j);
          t_fate =
            (if fate_.(j) = f_dropped then Dropped
             else if fate_.(j) = f_gave_up then Gave_up
             else Delivered);
        })
  in
  let active j = delivered_at_.(j) < 0 && fate_.(j) = f_live in
  (* [chan_down] stays for the cold paths (probe, witness, sanitizer); the
     per-cycle loops below inline the [have_faults &&] short-circuit so a
     fault-free run pays one register test instead of a call per check *)
  let chan_down c t = have_faults && Fault.down faults c t in
  (* wormhole and cut-through headers advance as soon as possible; a
     store-and-forward header only requests the next channel once the whole
     packet is staged in its current one *)
  let header_eager =
    match discipline with
    | Wormhole | Virtual_cut_through -> true
    | Store_and_forward -> false
  in
  (* append channel [c] to an adaptive message's carved path (amortized
     doubling; [occ] grows in lockstep) *)
  let carve j c =
    let path = path_.(j) in
    let n = Array.length path in
    if plen_.(j) = n then begin
      let n' = max 4 (2 * n) in
      let path' = Array.make n' 0 and occ' = Array.make n' 0 in
      Array.blit path 0 path' 0 n;
      Array.blit occ_.(j) 0 occ' 0 n;
      path_.(j) <- path';
      occ_.(j) <- occ'
    end;
    path_.(j).(plen_.(j)) <- c;
    occ_.(j).(plen_.(j)) <- 0;
    plen_.(j) <- plen_.(j) + 1;
    Bytes.unsafe_set carved_mark.(j) c '\001'
  in
  (* oblivious: the fixed next channel, -1 for "wants nothing".  The
     store-and-forward whole-packet check ([assembled] of old) is folded in
     behind the hoisted [header_eager] test. *)
  let wanted_chan j =
    if not (active j) then -1
    else begin
      let h = head_.(j) in
      if h = -1 then path_.(j).(0)
      else if
        h < plen_.(j) - 1 && hold_.(j) = 0 && (header_eager || occ_.(j).(h) = len_.(j))
      then path_.(j).(h + 1)
      else -1
    end
  in
  let set_hold j pos =
    let h = holds_.(j).(pos) in
    hold_.(j) <- h;
    if h > 0 then Bitset.unsafe_add hold_fresh_ j else Bitset.unsafe_remove hold_fresh_ j
  in
  (* adaptive: classify the header's current option source without
     allocating.  -1 = no options (inactive, arrived, fault-pinned or
     source-side before its attempt window); -2 = forced-next (reroute pin,
     the single channel [forced_.(j).(plen_.(j))]); -3 = inject options;
     otherwise the head channel whose (channel, destination) row applies.
     Channels that are down are not offered: adaptive routing steers
     around faults by construction. *)
  let opt_tag_of j t =
    if not (active j) then -1
    else begin
      let h = head_.(j) in
      (* [h >= plen] is exactly the arrived state (the header was consumed
         at the destination), checked here without touching the bitset *)
      if h >= plen_.(j) && h >= 0 then -1
      else if h = -1 then begin
        if injected_.(j) = 0 && t >= attempt_.(j) then
          if Array.length forced_.(j) > 0 then
            if plen_.(j) < Array.length forced_.(j) then -2 else -1
          else -3
        else -1
      end
      else begin (* 0 <= h < plen: in flight *)
        let c = path_.(j).(h) in
        (* the header cannot leave a down channel, so don't let it claim
           the next one either: an award always implies the hop completes *)
        if chan_down c t then -1
        else if chan_dst_.(c) = dst_.(j) then -1
        else if Array.length forced_.(j) > 0 then
          if plen_.(j) < Array.length forced_.(j) then -2 else -1
        else c
      end
    end
  in
  (* first not-down option under a tag, -1 when the filtered set is empty.
     Rows are tiny (node degree), so a reverse full scan into the shared
     cursor stays cheap and closure-free. *)
  let first_opt_of j tag t =
    if tag = -1 then -1
    else if tag = -2 then begin
      let c = forced_.(j).(plen_.(j)) in
      if chan_down c t then -1 else c
    end
    else begin
      let row = if tag = -3 then inject_opts.(j) else row_get tag dslot_.(j) in
      opt_row_.(j) <- row;
      scan_found := -1;
      for i = Array.length row - 1 downto 0 do
        let c = Array.unsafe_get row i in
        if not (chan_down c t) then scan_found := c
      done;
      !scan_found
    end
  in
  let on_carved j c = Bytes.unsafe_get carved_mark.(j) c <> '\000' in
  (* fused [opt_tag_of] + [first_opt_of] for the per-cycle registration
     loop: one pass computes the tag, caches the row and returns the first
     usable option, without re-branching on the tag or re-reading [forced_].
     The split functions above stay for the cold probe/witness paths. *)
  let register_opts j t =
    if not (active j) then begin opt_tag_.(j) <- -1; -1 end
    else begin
      let h = head_.(j) in
      if h >= plen_.(j) && h >= 0 then begin opt_tag_.(j) <- -1; -1 end
      else if (not have_faults) && h >= 0 && opt_h_.(j) = h then begin
        (* memoized: the head has not moved since the tag/row were
           computed, and with no faults the down-filter is static, so the
           first usable option is simply the row's first entry *)
        let tag = opt_tag_.(j) in
        if tag = -1 then -1
        else if tag = -2 then forced_.(j).(plen_.(j))
        else begin
          let row = opt_row_.(j) in
          if Array.length row = 0 then -1 else Array.unsafe_get row 0
        end
      end
      else begin
        let forced = forced_.(j) in
        let nf = Array.length forced in
        if h = -1 then begin
          if injected_.(j) <> 0 || t < attempt_.(j) then begin opt_tag_.(j) <- -1; -1 end
          else if nf > 0 then
            if plen_.(j) < nf then begin
              opt_tag_.(j) <- -2;
              let c = forced.(plen_.(j)) in
              if have_faults && Fault.down faults c t then -1 else c
            end
            else begin opt_tag_.(j) <- -1; -1 end
          else begin
            opt_tag_.(j) <- -3;
            let row = inject_opts.(j) in
            opt_row_.(j) <- row;
            scan_found := -1;
            for i = Array.length row - 1 downto 0 do
              let c = Array.unsafe_get row i in
              if not (have_faults && Fault.down faults c t) then scan_found := c
            done;
            !scan_found
          end
        end
        else begin
          let hc = path_.(j).(h) in
          opt_h_.(j) <- h;
          if (have_faults && Fault.down faults hc t) || chan_dst_.(hc) = dst_.(j) then begin
            opt_tag_.(j) <- -1; -1
          end
          else if nf > 0 then
            if plen_.(j) < nf then begin
              opt_tag_.(j) <- -2;
              let c = forced.(plen_.(j)) in
              if have_faults && Fault.down faults c t then -1 else c
            end
            else begin opt_tag_.(j) <- -1; -1 end
          else begin
            opt_tag_.(j) <- hc;
            let row = row_get hc dslot_.(j) in
            opt_row_.(j) <- row;
            scan_found := -1;
            for i = Array.length row - 1 downto 0 do
              let c = Array.unsafe_get row i in
              if not (have_faults && Fault.down faults c t) then scan_found := c
            done;
            !scan_found
          end
        end
      end
    end
  in
  (* the claim a sorted claimant actually takes: first option that is up,
     unowned and not already on the carved path; -1 when none *)
  let claim_pick j tag t =
    if tag = -2 then begin
      let c = forced_.(j).(plen_.(j)) in
      if (not (have_faults && Fault.down faults c t)) && owner.(c) = -1 && not (on_carved j c) then c else -1
    end
    else begin
      (* the row was cached by [first_opt_of] when this claimant registered *)
      let row = opt_row_.(j) in
      scan_found := -1;
      for i = Array.length row - 1 downto 0 do
        let c = Array.unsafe_get row i in
        if (not (have_faults && Fault.down faults c t)) && owner.(c) = -1 && not (on_carved j c)
        then scan_found := c
      done;
      !scan_found
    end
  in
  (* first channel the header is blocked on, mode-dispatched: used by the
     probe snapshot and the deadlock witness *)
  let first_want_chan j t =
    if oblivious then wanted_chan j else first_opt_of j (opt_tag_of j t) t
  in
  (* full current option list (adaptive), cold: only the deadlock witness
     builds it *)
  let options_list j t =
    let tag = opt_tag_of j t in
    if tag = -1 then []
    else if tag = -2 then begin
      let c = forced_.(j).(plen_.(j)) in
      if chan_down c t then [] else [ c ]
    end
    else begin
      let row = if tag = -3 then inject_opts.(j) else row_get tag dslot_.(j) in
      List.filter (fun c -> not (chan_down c t)) (Array.to_list row)
    end
  in
  (* -- sanitizer: re-derive the structural invariants from the full state
        at the end of every cycle (see Sanitizer's doc for the code table).
        Pure observation; a sanitized run takes the same decisions. -- *)
  let sanitizer = match sanitizer with Some s -> Some s | None -> Sanitizer.current () in
  (match sanitizer with Some s -> Sanitizer.note_run s | None -> ());
  (* oblivious messages have a fixed route ("path position"); adaptive ones
     a carved route ("hop") -- the sanitizer wording tracks the mode *)
  let posw = if oblivious then "path position" else "hop" in
  let sanitize t =
    match sanitizer with
    | None -> ()
    | Some san ->
      Sanitizer.note_cycle san;
      let ctx = [ ("algorithm", algo_name); ("cycle", string_of_int t) ] in
      let viol code j msg =
        Sanitizer.record san
          (Diagnostic.error code (Diagnostic.Message (label j)) msg ~context:ctx)
      in
      for j = 0 to nmsg - 1 do
        let k = plen_.(j) in
        let path = path_.(j) and occ = occ_.(j) in
        let buffered = ref 0 in
        for i = 0 to k - 1 do
          let n = occ.(i) in
          buffered := !buffered + n;
          if n < 0 || n > cap_.(path.(i)) then
            viol "E102" j
              (Printf.sprintf "buffer occupancy %d outside [0, %d] at %s %d" n
                 cap_.(path.(i)) posw i);
          if n > 0 then begin
            if owner.(path.(i)) <> j then
              viol "E102" j
                (Printf.sprintf "flits buffered on %s which the message does not own"
                   (Topology.channel_name topo path.(i)));
            if i < released_.(j) || i > head_.(j) then
              viol "E103" j
                (Printf.sprintf "flits at %s %d outside the live window [%d, %d]" posw i
                   released_.(j)
                   (min head_.(j) (k - 1)))
          end
        done;
        if fate_.(j) = f_live && injected_.(j) <> consumed_.(j) + !buffered then
          viol "E101" j
            (Printf.sprintf "flit conservation broken: injected %d <> consumed %d + buffered %d"
               injected_.(j) consumed_.(j) !buffered);
        let release_bound = if Bitset.mem arrived_ j then k else max head_.(j) 0 in
        if released_.(j) < 0 || released_.(j) > release_bound then
          viol "E103" j
            (Printf.sprintf "release watermark %d outside [0, %d]" released_.(j) release_bound);
        if oblivious then begin
          if waiting_.(j) >= 0 then begin
            if wait_since_.(j) < 0 || wait_since_.(j) > t then
              viol "E104" j
                (Printf.sprintf "waiting for %s with seniority cycle %d outside [0, %d]"
                   (Topology.channel_name topo waiting_.(j))
                   wait_since_.(j) t);
            if wanted_chan j <> waiting_.(j) then
              viol "E104" j
                (Printf.sprintf "wait entry on %s but the message no longer wants it"
                   (Topology.channel_name topo waiting_.(j)))
          end
        end
        else begin
          if wait_since_.(j) <> max_int && wait_since_.(j) > t then
            viol "E104" j (Printf.sprintf "wait timestamp %d is in the future" wait_since_.(j));
          if fate_.(j) <> f_live && wait_since_.(j) <> max_int then
            viol "E104" j "abandoned message still has a wait timestamp"
        end;
        match config.recovery with
        | Some r when fate_.(j) = f_live ->
          if retries_.(j) > r.retry_limit then
            viol "E105" j
              (Printf.sprintf "live message has %d retries, over the limit %d" retries_.(j)
                 r.retry_limit);
          let w = watchdog_of r in
          if active j && t - last_progress_.(j) >= w then
            viol "E105" j
              (Printf.sprintf
                 "watchdog bound broken: no progress since cycle %d (watchdog %d)"
                 last_progress_.(j) w)
        | Some _ | None -> ()
      done;
      let on_route j c =
        let found = ref false in
        for i = 0 to plen_.(j) - 1 do
          if path_.(j).(i) = c then found := true
        done;
        !found
      in
      let held = Array.make nmsg 0 in
      Array.iteri
        (fun c own ->
          if own >= 0 then begin
            held.(own) <- held.(own) + 1;
            if not (on_route own c) then
              viol "E102" own
                (Printf.sprintf "owns %s which is not on its %s"
                   (Topology.channel_name topo c)
                   (if oblivious then "path" else "carved path"))
          end)
        owner;
      (* E106: wait-for stream consistency.  An advertised wait edge from
         a message that holds nothing is a dangling edge the online
         detector would chase into nowhere -- only a not-yet-injected
         source-side waiter may legitimately wait while holding nothing. *)
      for j = 0 to nmsg - 1 do
        let edge = if oblivious then waiting_.(j) else wait_edge_.(j) in
        if edge >= 0 then begin
          if fate_.(j) <> f_live then
            viol "E106" j
              (Printf.sprintf "abandoned message still advertises a wait-for edge on %s"
                 (Topology.channel_name topo edge))
          else if injected_.(j) > 0 && held.(j) = 0 then
            viol "E106" j
              (Printf.sprintf "waits for %s but holds no channel"
                 (Topology.channel_name topo edge))
        end
      done
  in
  (* abort-and-drain: release every held channel, drop buffered flits, and
     return the message to its pre-injection state *)
  let drain j t =
    let path = path_.(j) in
    for i = 0 to plen_.(j) - 1 do
      let c = path.(i) in
      if owner.(c) = j then begin
        owner.(c) <- -1;
        if obs_on then
          emit (Obs_event.Channel_release { cycle = t; label = label j; channel = c })
      end
    done;
    if oblivious then begin
      if obs_on && waiting_.(j) >= 0 then
        emit
          (Obs_event.Wait_drop
             { cycle = t; label = label j; channel = waiting_.(j);
               waited = t - wait_since_.(j) });
      waiting_.(j) <- -1
    end
    else begin
      (* retract the advertised wait-for edge: without this, a message
         aborted mid-wait leaves a dangling edge on the stream that the
         online detector would keep chasing (sanitizer E106) *)
      if obs_on && wait_edge_.(j) >= 0 then
        emit
          (Obs_event.Wait_drop
             { cycle = t; label = label j; channel = wait_edge_.(j);
               waited = (if wait_since_.(j) = max_int then 0 else t - wait_since_.(j)) });
      wait_edge_.(j) <- -1;
      wait_since_.(j) <- max_int;
      plen_.(j) <- 0;  (* the carved route is forgotten; a retry carves afresh *)
      opt_h_.(j) <- min_int;  (* the memoized row belongs to the old path *)
      Bytes.fill carved_mark.(j) 0 (Bytes.length carved_mark.(j)) '\000'
    end;
    Array.fill occ_.(j) 0 (Array.length occ_.(j)) 0;
    head_.(j) <- -1;
    Bitset.unsafe_remove arrived_ j;
    injected_.(j) <- 0;
    consumed_.(j) <- 0;
    hold_.(j) <- 0;
    Bitset.unsafe_remove hold_fresh_ j;
    released_.(j) <- 0
  in
  let give_up j fate t =
    drain j t;
    fate_.(j) <- fate;
    incr finished;
    if obs_on then
      emit
        (Obs_event.Gave_up
           { cycle = t; label = label j;
             fate = (if fate = f_dropped then "dropped" else "gave-up") })
  in
  let abort_retry j (r : recovery) t ~reason =
    drain j t;
    retries_.(j) <- retries_.(j) + 1;
    if obs_on then
      emit (Obs_event.Abort { cycle = t; label = label j; retries = retries_.(j); reason });
    if retries_.(j) > r.retry_limit then give_up j f_gave_up t
    else begin
      (match r.reroute with
      | None -> ()
      | Some rt' -> (
        match Routing.path rt' specs.(j).Schedule.ms_src dst_.(j) with
        | Ok p ->
          if oblivious then begin
            path_.(j) <- Array.of_list p;
            occ_.(j) <- Array.make (Array.length path_.(j)) 0;
            holds_.(j) <- holds_for_path specs.(j) path_.(j);
            plen_.(j) <- Array.length path_.(j)
          end
          else
            (* adaptive: pin the remaining route; the retried header claims
               exactly these channels (down ones still refuse it) *)
            forced_.(j) <- Array.of_list p
        | Error _ ->
          (* the degraded network cannot deliver this pair at all *)
          give_up j f_gave_up t));
      if fate_.(j) = f_live then begin
        let delay = r.backoff * (1 lsl min (retries_.(j) - 1) 20) in
        attempt_.(j) <- t + delay;
        last_progress_.(j) <- t + delay;
        if obs_on then
          emit (Obs_event.Retry { cycle = t; label = label j; resume_at = attempt_.(j) })
      end
    end
  in
  (* one consumed flit at the destination channel [last] *)
  let consume j t last =
    consumed_.(j) <- consumed_.(j) + 1;
    moved := true;
    Bytes.unsafe_set progressed_ j '\001';
    if obs_on then
      emit
        (Obs_event.Flit
           { cycle = t; label = label j; channel = last; kind = Obs_event.Consume });
    if consumed_.(j) = len_.(j) then begin
      delivered_at_.(j) <- t;
      if stats_on then
        Obs_stats.observe_latency st
          (if injected_at_.(j) >= 0 then t - injected_at_.(j) else t);
      if obs_on then
        emit
          (Obs_event.Delivered
             { cycle = t; label = label j;
               latency = (if injected_at_.(j) >= 0 then t - injected_at_.(j) else t) })
    end
  in
  let cycle = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    let t = !cycle in
    moved := false;
    Bytes.fill progressed_ 0 (Bytes.length progressed_) '\000';
    (* live positions >= [nact] hold exactly the still-sleeping sources
       (see [static_windows]); the arbitration and movement loops below do
       not visit them.  The prefix test stays in each loop for the
       fallback mode and never fires in static mode. *)
    let nact =
      if not static_windows then !nlive
      else begin
        while !awake_n < nmsg && attempt_.(!awake_n) <= t do
          incr awake_n
        done;
        bs_lo := 0;
        bs_hi := !nlive;
        while !bs_lo < !bs_hi do
          let mid = (!bs_lo + !bs_hi) / 2 in
          if live.(mid) < !awake_n then bs_lo := mid + 1 else bs_hi := mid
        done;
        !bs_lo
      end
    in
    if oblivious then begin
      (* -- arbitration: register requests and track each channel's best
            waiter, then award.  A message's wait_since entry follows the
            channel it currently wants: when the want changes (progress,
            hold expiry, abort, reroute) the stale entry is dropped so
            seniority cannot leak onto a channel the message no longer
            requests.  The (wait_since, rank) key is unique per message
            (rank embeds the schedule index), so the min tracked during
            registration is scan-order independent and equals the old
            award-time rescan. -- *)
      req_count := 0;
      for li = 0 to nact - 1 do
        let j = live.(li) in
        (* a source still before its attempt window neither requests nor
           waits (its [waiting_] is -1 by construction: every abort drains
           the wait entry) -- skip it outright *)
        if injected_.(j) = 0 && t < attempt_.(j) then ()
        else begin
        let c = wanted_chan j in
        if
          c >= 0
          && (head_.(j) >= 0 || (injected_.(j) = 0 && t >= attempt_.(j)))
          && owner.(c) <> j
        then begin
          if waiting_.(j) <> c then begin
            if obs_on then begin
              if waiting_.(j) >= 0 then
                emit
                  (Obs_event.Wait_drop
                     { cycle = t; label = label j; channel = waiting_.(j);
                       waited = t - wait_since_.(j) });
              emit
                (Obs_event.Wait_add
                   { cycle = t; label = label j; channel = c;
                     holder = (if owner.(c) >= 0 then Some (label owner.(c)) else None) })
            end;
            waiting_.(j) <- c;
            wait_since_.(j) <- t
          end;
          (* a down channel cannot be acquired, but the waiter keeps its
             seniority for when the stall clears *)
          if not (have_faults && Fault.down faults c t) then begin
            if req_stamp.(c) <> t then begin
              req_stamp.(c) <- t;
              req_list.(!req_count) <- c;
              incr req_count;
              cand_j.(c) <- -1
            end;
            let since = wait_since_.(j) in
            let r = rank_of.(j) in
            if
              cand_j.(c) < 0 || since < cand_since.(c)
              || (since = cand_since.(c) && r < cand_rank.(c))
            then begin
              cand_j.(c) <- j;
              cand_since.(c) <- since;
              cand_rank.(c) <- r
            end
          end
        end
        else begin
          (* not requesting -- including the case where the message already
             owns the channel it wants and its hop is merely fault-deferred:
             an owner is not a waiter, so it must not keep a seniority stamp
             (the sanitizer's E104 check relies on this) *)
          if obs_on && waiting_.(j) >= 0 then
            emit
              (Obs_event.Wait_drop
                 { cycle = t; label = label j; channel = waiting_.(j);
                   waited = t - wait_since_.(j) });
          waiting_.(j) <- -1
        end
        end
      done;
      (* awards for distinct channels are independent (an award writes only
         [owner.(c)] and the winner's own flags), so the outcome does not
         depend on the order of [req_list] *)
      for ri = 0 to !req_count - 1 do
        let c = req_list.(ri) in
        if owner.(c) = -1 && cand_j.(c) >= 0 then begin
          let j = cand_j.(c) in
          owner.(c) <- j;
          if stats_on then
            st.Obs_stats.st_acquired.(c) <- st.Obs_stats.st_acquired.(c) + 1;
          if obs_on then
            emit
              (Obs_event.Channel_acquire
                 { cycle = t; label = label j; channel = c; waited = t - cand_since.(c) });
          waiting_.(j) <- -1;
          Bytes.unsafe_set progressed_ j '\001';
          moved := true
        end
      done
    end
    else begin
      (* -- allocation: headers claim their first free option; earlier
            waiters first, then priority -- *)
      claim_count := 0;
      for li = 0 to nact - 1 do
        let j = live.(li) in
        (* pre-window sources have no options, no stale award and no
           advertised edge (aborts drain them): skip without touching state *)
        if injected_.(j) = 0 && t < attempt_.(j) then ()
        else begin
        awarded_.(j) <- -1;
        let fo = register_opts j t in
        first_opt_.(j) <- fo;
        if fo >= 0 then begin
          if wait_since_.(j) = max_int then wait_since_.(j) <- t;
          claim_order.(!claim_count) <- j;
          incr claim_count
        end
        else if wait_edge_.(j) >= 0 then begin
          (* the header can no longer move at all (arrived, delivered, or
             fault-pinned): its advertised edge is stale *)
          if obs_on then
            emit
              (Obs_event.Wait_drop
                 { cycle = t; label = label j; channel = wait_edge_.(j);
                   waited = (if wait_since_.(j) = max_int then 0 else t - wait_since_.(j)) });
          wait_edge_.(j) <- -1
        end
        end
      done;
      (* insertion sort of the claimants by (wait_since, rank): keys are
         unique (rank embeds the schedule index), so this matches a
         [List.sort] order exactly, without the per-cycle list build *)
      for a = 1 to !claim_count - 1 do
        let j = claim_order.(a) in
        let kw = wait_since_.(j) in
        let kr = rank_of.(j) in
        ins_b := a - 1;
        while
          !ins_b >= 0
          &&
          let j' = claim_order.(!ins_b) in
          let w' = wait_since_.(j') in
          w' > kw || (w' = kw && rank_of.(j') > kr)
        do
          claim_order.(!ins_b + 1) <- claim_order.(!ins_b);
          decr ins_b
        done;
        claim_order.(!ins_b + 1) <- j
      done;
      for a = 0 to !claim_count - 1 do
        let j = claim_order.(a) in
        let c = claim_pick j opt_tag_.(j) t in
        if c >= 0 then begin
          awarded_.(j) <- c;
          owner.(c) <- j;
          if stats_on then
            st.Obs_stats.st_acquired.(c) <- st.Obs_stats.st_acquired.(c) + 1;
          if obs_on then
            emit
              (Obs_event.Channel_acquire
                 { cycle = t; label = label j; channel = c;
                   waited = (if wait_since_.(j) = max_int then 0 else t - wait_since_.(j)) });
          wait_since_.(j) <- max_int;
          (* the acquisition resolves the advertised edge (Channel_acquire
             implies resolution; no Wait_drop is emitted) *)
          wait_edge_.(j) <- -1;
          Bytes.unsafe_set progressed_ j '\001';
          moved := true
        end
        else if not obs_on then begin
          (* wait-for edge maintenance, fused into the claim pass: a loser's
             new edge depends only on its own phase-1 preference, never on
             later claims, so updating it here is equivalent to the separate
             post-claim sweep the event stream needs (below) *)
          let c = first_opt_.(j) in
          if c >= 0 && c <> wait_edge_.(j) then wait_edge_.(j) <- c
        end
      done;
      (* wait-for edge maintenance: a claimant that won nothing advertises
         an edge on its first (preferred) option; when the preference moves
         the old edge is retracted before the new one appears, so the
         stream always carries at most one edge per message.  The Wait_add
         holder field snapshots the post-claim owner, so with observability
         on this stays a separate pass after all claims resolve. *)
      if obs_on then
        for a = 0 to !claim_count - 1 do
          let j = claim_order.(a) in
          if awarded_.(j) < 0 then begin
            let c = first_opt_.(j) in
            if c >= 0 && c <> wait_edge_.(j) then begin
              if wait_edge_.(j) >= 0 then
                emit
                  (Obs_event.Wait_drop
                     { cycle = t; label = label j; channel = wait_edge_.(j);
                       waited =
                         (if wait_since_.(j) = max_int then 0 else t - wait_since_.(j)) });
              emit
                (Obs_event.Wait_add
                   { cycle = t; label = label j; channel = c;
                     holder = (if owner.(c) >= 0 then Some (label owner.(c)) else None) });
              wait_edge_.(j) <- c
            end
          end
        done
    end;
    (* -- movement: per message, sweep from the front so freed slots are
          visible to the flits behind (wormhole pipelining).  A down channel
          (failed or stalled) neither accepts nor emits flits. -- *)
    for li = 0 to nact - 1 do
      let j = live.(li) in
      (* a pre-window source holds nothing, buffers nothing and may not
         inject yet: the whole sweep is a no-op for it *)
      if active j && not (injected_.(j) = 0 && t < attempt_.(j)) then begin
        (* consumption at the destination.  Oblivious: the route ends at
           the destination by construction and the last hop honors holds.
           Adaptive: the carved route may not have reached the destination
           yet, and arrival is recorded as soon as the header sits in a
           destination channel (holds are ignored). *)
        (if oblivious then begin
           let path = path_.(j) and occ = occ_.(j) in
           let k = plen_.(j) in
           if
             occ.(k - 1) > 0
             && (Bitset.unsafe_mem arrived_ j || (head_.(j) = k - 1 && hold_.(j) = 0))
             && not (have_faults && Fault.down faults path.(k - 1) t)
           then begin
             occ.(k - 1) <- occ.(k - 1) - 1;
             if head_.(j) = k - 1 then begin
               head_.(j) <- k;
               Bitset.unsafe_add arrived_ j
             end;
             consume j t path.(k - 1)
           end;
           (* header advance: hop into the fixed next channel once acquired
              (award and hop may be cycles apart) *)
           let h = head_.(j) in
           if
             h >= 0 && h < k - 1 && hold_.(j) = 0
             && owner.(path.(h + 1)) = j
             && (not (have_faults && Fault.down faults path.(h) t))
             && not (have_faults && Fault.down faults path.(h + 1) t)
           then begin
             occ.(h) <- occ.(h) - 1;
             occ.(h + 1) <- occ.(h + 1) + 1;
             head_.(j) <- h + 1;
             set_hold j (h + 1);
             moved := true;
             Bytes.unsafe_set progressed_ j '\001';
             if obs_on then
               emit
                 (Obs_event.Flit
                    { cycle = t; label = label j; channel = path.(h + 1);
                      kind = Obs_event.Hop })
           end
         end
         else begin
           let k = plen_.(j) in
           (* head-position test first: it misses in registers, the
              channel-destination test misses in memory *)
           if k > 0 && head_.(j) >= k - 1 then begin
             let last = path_.(j).(k - 1) in
             if chan_dst_.(last) = dst_.(j) then begin
               if head_.(j) = k - 1 then begin
                 Bitset.unsafe_add arrived_ j;
                 head_.(j) <- k
               end;
               if occ_.(j).(k - 1) > 0 && not (have_faults && Fault.down faults last t) then begin
                 occ_.(j).(k - 1) <- occ_.(j).(k - 1) - 1;
                 consume j t last
               end
             end
           end;
           (* header push into the channel claimed this very cycle (an
              award always implies the hop completes).  [carve] may replace
              the path/occ rows, so they are re-read below. *)
           if awarded_.(j) >= 0 then begin
             let c = awarded_.(j) in
             if head_.(j) = -1 then begin
               carve j c;
               occ_.(j).(0) <- 1;
               head_.(j) <- 0;
               injected_.(j) <- 1;
               injected_at_.(j) <- t;
               moved := true;
               Bytes.unsafe_set progressed_ j '\001';
               if obs_on then
                 emit
                   (Obs_event.Flit
                      { cycle = t; label = label j; channel = c; kind = Obs_event.Inject })
             end
             else begin
               carve j c;
               let occ = occ_.(j) in
               let h = head_.(j) in
               occ.(h) <- occ.(h) - 1;
               occ.(h + 1) <- 1;
               head_.(j) <- h + 1;
               moved := true;
               Bytes.unsafe_set progressed_ j '\001';
               if obs_on then
                 emit
                   (Obs_event.Flit
                      { cycle = t; label = label j; channel = c; kind = Obs_event.Hop })
             end
           end
         end);
        let path = path_.(j) and occ = occ_.(j) in
        let k = plen_.(j) in
        (* data flits cascade toward the header *)
        let front = min (head_.(j) - 1) (k - 2) in
        (* positions below the release watermark are empty (E103 window),
           so the sweep stops there instead of walking to 0 *)
        for i = front downto released_.(j) do
          if
            occ.(i) > 0 && occ.(i + 1) < cap_.(path.(i + 1))
            && (not (have_faults && Fault.down faults path.(i) t))
            && not (have_faults && Fault.down faults path.(i + 1) t)
          then begin
            occ.(i) <- occ.(i) - 1;
            occ.(i + 1) <- occ.(i + 1) + 1;
            moved := true;
            Bytes.unsafe_set progressed_ j '\001';
            if obs_on then
              emit
                (Obs_event.Flit
                   { cycle = t; label = label j; channel = path.(i + 1);
                     kind = Obs_event.Cascade })
          end
        done;
        (* injection at the source: the header first (oblivious mode -- an
           adaptive header injects in the claim-push above), then at most
           one data flit per cycle; the header push counts as the
           injection-cycle's flit *)
        if oblivious && injected_.(j) = 0 then begin
          if owner.(path.(0)) = j && head_.(j) = -1 && not (have_faults && Fault.down faults path.(0) t)
          then begin
            occ.(0) <- 1;
            injected_.(j) <- 1;
            head_.(j) <- 0;
            injected_at_.(j) <- t;
            set_hold j 0;
            moved := true;
            Bytes.unsafe_set progressed_ j '\001';
            if obs_on then
              emit
                (Obs_event.Flit
                   { cycle = t; label = label j; channel = path.(0);
                     kind = Obs_event.Inject })
          end
        end
        else if
          injected_.(j) > 0
          && injected_.(j) < len_.(j)
          && injected_at_.(j) <> t
          && occ.(0) < cap_.(path.(0))
          && owner.(path.(0)) = j
          && not (have_faults && Fault.down faults path.(0) t)
        then begin
          occ.(0) <- occ.(0) + 1;
          injected_.(j) <- injected_.(j) + 1;
          moved := true;
          Bytes.unsafe_set progressed_ j '\001';
          if obs_on then
            emit
              (Obs_event.Flit
                 { cycle = t; label = label j; channel = path.(0);
                   kind = Obs_event.Inject })
        end;
        (* release: channels the whole message has passed through *)
        if injected_.(j) = len_.(j) then begin
          rel_i := released_.(j);
          let h = head_.(j) in
          scan_flag := true;
          while !scan_flag && !rel_i < k do
            let i = !rel_i in
            if occ.(i) = 0 && owner.(path.(i)) = j && (i < h || Bitset.unsafe_mem arrived_ j)
            then begin
              owner.(path.(i)) <- -1;
              moved := true;
              Bytes.unsafe_set progressed_ j '\001';
              if obs_on then
                emit
                  (Obs_event.Channel_release
                     { cycle = t; label = label j; channel = path.(i) });
              incr rel_i
            end
            else scan_flag := false
          done;
          released_.(j) <- !rel_i
        end;
        if delivered_at_.(j) = t then incr finished;
        (* hold countdown (skip the cycle the hold was set); expiry is
           progress: the header will act next cycle.  Adaptive mode never
           sets holds, so this is a no-op there. *)
        if hold_.(j) > 0 then begin
          Bytes.unsafe_set progressed_ j '\001';
          if Bitset.unsafe_mem hold_fresh_ j then Bitset.unsafe_remove hold_fresh_ j
          else begin
            hold_.(j) <- hold_.(j) - 1;
            if hold_.(j) = 0 then moved := true
          end
        end
      end
    done;
    (* -- faults and recovery: source-side drops, then the watchdog -- *)
    if have_faults then
      for li = 0 to !nlive - 1 do
        let j = live.(li) in
        if active j && injected_.(j) = 0 && Fault.dropped_now faults (label j) t then begin
          perturbed := true;
          if obs_on then
            emit
              (Obs_event.Fault
                 { cycle = t; kind = Obs_event.Drop_fired; channel = None;
                   label = Some (label j); duration = 0 });
          match config.recovery with
          | None -> give_up j f_dropped t
          | Some r -> abort_retry j r t ~reason:"drop"
        end
      done;
    (* -- online detection: end-of-cycle tick confirms quiescent wait-for
          knots; only the policy-chosen victim is aborted, so the rest of
          the knot unwinds through the freed channels instead of being
          drained wholesale like a watchdog abort. -- *)
    (match (config.recovery, det) with
    | Some r, Some d ->
      let policy_name =
        match r.trigger with
        | Detect c -> Obs_detect.victim_policy_string c.Obs_detect.policy
        | Watchdog _ -> "minimal"
      in
      List.iter
        (fun (dk : Obs_detect.detection) ->
          emit
            (Obs_event.Deadlock_detected
               { cycle = t; members = List.map fst dk.Obs_detect.dk_members;
                 channels = List.map snd dk.Obs_detect.dk_members;
                 victims = dk.Obs_detect.dk_victims });
          List.iter
            (fun v ->
              let vm = ref (-1) in
              for j = 0 to nmsg - 1 do
                if label j = v then vm := j
              done;
              let j = !vm in
              if j >= 0 && active j then begin
                perturbed := true;
                emit (Obs_event.Victim_aborted { cycle = t; label = v; policy = policy_name });
                abort_retry j r t ~reason:"deadlock"
              end)
            dk.Obs_detect.dk_victims)
        (Obs_detect.tick d ~now:t)
    | (Some _ | None), _ -> ());
    (match config.recovery with
    | None -> ()
    | Some r ->
      let w = watchdog_of r in
      for li = 0 to !nlive - 1 do
        let j = live.(li) in
        if active j then begin
          if Bytes.unsafe_get progressed_ j <> '\000' || (injected_.(j) = 0 && t < attempt_.(j))
          then last_progress_.(j) <- t
          else if t - last_progress_.(j) >= w then begin
            perturbed := true;
            abort_retry j r t ~reason:"watchdog"
          end
        end
      done);
    (* -- telemetry accumulation: plain int stores into the preallocated
          accumulator.  The head-of-line walk reuses the kernel's per-run
          scratch cursors ([scan_found]/[ins_b]/[scan_flag] are free at end
          of cycle), so a stats-armed steady cycle allocates nothing. -- *)
    if stats_on then begin
      st.Obs_stats.st_cycles <- st.Obs_stats.st_cycles + 1;
      if oblivious then st.Obs_stats.st_ph_arb <- st.Obs_stats.st_ph_arb + nact
      else st.Obs_stats.st_ph_claim <- st.Obs_stats.st_ph_claim + !claim_count;
      st.Obs_stats.st_ph_advance <- st.Obs_stats.st_ph_advance + nact;
      if have_faults then
        st.Obs_stats.st_ph_fault <- st.Obs_stats.st_ph_fault + !nlive;
      (match det with
      | Some _ -> st.Obs_stats.st_ph_detect <- st.Obs_stats.st_ph_detect + 1
      | None -> ());
      let owned = st.Obs_stats.st_owned in
      for c = 0 to nchan - 1 do
        if owner.(c) >= 0 then owned.(c) <- owned.(c) + 1
      done;
      (* the scans stop at [nact]: positions beyond it are still-sleeping
         sources with no flits in flight and no advertised edge, so they
         cannot contribute to any counter (compaction runs later, so the
         prefix is still exactly the one arbitration used) *)
      let busy = st.Obs_stats.st_busy in
      for li = 0 to nact - 1 do
        let j = live.(li) in
        let path = path_.(j) and occ = occ_.(j) in
        let hi = min head_.(j) (plen_.(j) - 1) in
        for i = released_.(j) to hi do
          if occ.(i) > 0 then busy.(path.(i)) <- busy.(path.(i)) + 1
        done
      done;
      let waited = st.Obs_stats.st_waited and hol = st.Obs_stats.st_hol in
      for li = 0 to nact - 1 do
        let j = live.(li) in
        let e = if oblivious then waiting_.(j) else wait_edge_.(j) in
        if e >= 0 then begin
          waited.(e) <- waited.(e) + 1;
          st.Obs_stats.st_blocked <- st.Obs_stats.st_blocked + 1;
          (* head-of-line attribution: follow wanted channel -> owner ->
             its wanted channel to the head of the chain and charge that
             channel.  The step cap bounds walks around deadlock knots;
             a self-loop (owner waiting on its own channel cannot happen,
             but an owner advertising the same edge can under adaptive
             carving) stops immediately. *)
          scan_found := e;
          ins_b := 0;
          scan_flag := true;
          while !scan_flag && !ins_b < nmsg do
            let o = owner.(!scan_found) in
            if o < 0 then scan_flag := false
            else begin
              let e' = if oblivious then waiting_.(o) else wait_edge_.(o) in
              if e' < 0 || e' = !scan_found then scan_flag := false
              else begin
                scan_found := e';
                incr ins_b
              end
            end
          done;
          hol.(!scan_found) <- hol.(!scan_found) + 1
        end
      done
    end;
    (* -- end of cycle: sanitizer, probe, termination checks -- *)
    sanitize t;
    (match probe with
    | None -> ()
    | Some f ->
      let occupancy =
        let acc = ref [] in
        for j = 0 to nmsg - 1 do
          for i = 0 to plen_.(j) - 1 do
            if occ_.(j).(i) > 0 then acc := (path_.(j).(i), label j, occ_.(j).(i)) :: !acc
          done
        done;
        List.sort compare !acc
      in
      let waiting =
        List.filter_map
          (fun j ->
            if delivered_at_.(j) >= 0 then None
            else begin
              let c = first_want_chan j t in
              if c >= 0 && head_.(j) >= 0 && owner.(c) <> j then
                Some (label j, c, if owner.(c) >= 0 then Some (label owner.(c)) else None)
              else None
            end)
          (List.init nmsg (fun j -> j))
      in
      f { s_cycle = t; s_occupancy = occupancy; s_waiting = waiting; s_moved = !moved });
    if !finished = nmsg then
      outcome :=
        Some
          (if !perturbed then Recovered { finished_at = t; messages = results (); stats = stats () }
           else All_delivered { finished_at = t; messages = results () })
    else if t >= config.max_cycles then outcome := Some (Cutoff { at = t; messages = results () })
    else if not !moved then begin
      scan_flag := false;
      for j = 0 to nmsg - 1 do
        if active j && ((injected_.(j) = 0 && t < attempt_.(j)) || hold_.(j) > 0) then
          scan_flag := true
      done;
      (* with recovery on, any live message is future work: the watchdog
         will eventually abort it, so nothing is permanently blocked *)
      if Option.is_some config.recovery then
        for j = 0 to nmsg - 1 do
          if active j then scan_flag := true
        done;
      (* a stall window about to close or an unfired event can unblock *)
      if Fault.change_after faults t then scan_flag := true;
      if not !scan_flag then begin
        (* permanently blocked: build the witness *)
        let wants j =
          if oblivious then (match wanted_chan j with -1 -> [] | c -> [ c ])
          else options_list j t
        in
        let blocked =
          List.filter_map
            (fun j ->
              if delivered_at_.(j) >= 0 then None
              else
                match wants j with
                | [] -> None
                | c :: _ as ws ->
                  Some
                    {
                      b_label = label j;
                      b_wants = ws;
                      b_holder = (if owner.(c) >= 0 then Some (label owner.(c)) else None);
                    })
            (List.init nmsg (fun j -> j))
        in
        (* follow the wait-for edges (through the first option when
           adaptive) from any blocked message to find a cycle *)
        let wait_cycle =
          let next i =
            let c = first_want_chan i t in
            if c >= 0 && owner.(c) >= 0 && owner.(c) <> i then Some owner.(c) else None
          in
          let start =
            List.filter (fun j -> delivered_at_.(j) < 0) (List.init nmsg (fun j -> j))
          in
          let rec chase seen i =
            match next i with
            | None -> None
            | Some j ->
              if List.mem j seen then begin
                (* cut the prefix before the first occurrence of j *)
                let rec drop = function
                  | [] -> []
                  | x :: rest -> if x = j then x :: rest else drop rest
                in
                Some (drop (List.rev (i :: seen)))
              end
              else chase (i :: seen) j
          in
          let rec try_starts = function
            | [] -> []
            | s :: rest -> (
              match chase [] s with Some c -> List.map label c | None -> try_starts rest)
          in
          try_starts start
        in
        let occupancy =
          let acc = ref [] in
          for j = 0 to nmsg - 1 do
            for i = 0 to plen_.(j) - 1 do
              if occ_.(j).(i) > 0 then acc := (path_.(j).(i), label j, occ_.(j).(i)) :: !acc
            done
          done;
          List.sort compare !acc
        in
        (* Stramaglia-Keiren-Zantema classification from the terminal
           state.  No wait cycle means the blocked set is acyclic -- a
           topological drain order of the held channels exists, so the
           wedge is [Weak] (only faults produce this: a cycle-free waiter
           on a live free channel would have won it).  A genuine cycle is
           [Local] when other messages made it out, [Global] when nothing
           was ever delivered -- the paper's Deadlock. *)
        let d_class =
          if wait_cycle = [] then Weak
          else begin
            scan_flag := false;
            for j = 0 to nmsg - 1 do
              if delivered_at_.(j) >= 0 then scan_flag := true
            done;
            if !scan_flag then Local else Global
          end
        in
        outcome :=
          Some (Deadlock { d_cycle = t; d_class; d_blocked = blocked;
                           d_wait_cycle = wait_cycle; d_occupancy = occupancy })
      end
    end;
    (* compact the live list only on cycles where something finished *)
    if !finished <> !last_finished then begin
      last_finished := !finished;
      let w = ref 0 in
      for i = 0 to !nlive - 1 do
        let j = live.(i) in
        if delivered_at_.(j) < 0 && fate_.(j) = f_live then begin
          live.(!w) <- j;
          incr w
        end
      done;
      nlive := !w
    end;
    incr cycle
  done;
  let o = match !outcome with Some o -> o | None -> assert false in
  (if stats_on then
     match o with
     | Deadlock d ->
       let ci = match d.d_class with Global -> 0 | Local -> 1 | Weak -> 2 in
       st.Obs_stats.st_classes.(ci) <- st.Obs_stats.st_classes.(ci) + 1
     | All_delivered _ | Cutoff _ | Recovered _ -> ());
  if stats_auto then Obs_stats.fold_armed st;
  if obs_on then begin
    let final =
      match o with
      | All_delivered { finished_at; _ } | Recovered { finished_at; _ } -> finished_at
      | Deadlock d -> d.d_cycle
      | Cutoff { at; _ } -> at
    in
    emit (Obs_event.Run_end { cycle = final; outcome = outcome_string o })
  end;
  o
let pp_fate ppf = function
  | Delivered -> Format.pp_print_string ppf "delivered"
  | Dropped -> Format.pp_print_string ppf "dropped"
  | Gave_up -> Format.pp_print_string ppf "gave up"

let pp_outcome topo ppf = function
  | All_delivered { finished_at; messages } ->
    Format.fprintf ppf "all %d messages delivered by cycle %d" (List.length messages)
      finished_at
  | Cutoff { at; _ } -> Format.fprintf ppf "cutoff at cycle %d (still moving)" at
  | Recovered { finished_at; stats; _ } ->
    let count f = List.length (List.filter (fun s -> s.t_fate = f) stats) in
    let retries = List.fold_left (fun acc s -> acc + s.t_retries) 0 stats in
    Format.fprintf ppf
      "recovered by cycle %d: %d delivered, %d dropped, %d gave up (%d retries total)"
      finished_at (count Delivered) (count Dropped) (count Gave_up) retries;
    List.iter
      (fun s ->
        if s.t_retries > 0 || s.t_fate <> Delivered then
          Format.fprintf ppf "@\n  %s: %a after %d retr%s" s.t_label pp_fate s.t_fate
            s.t_retries
            (if s.t_retries = 1 then "y" else "ies"))
      stats
  | Deadlock d ->
    Format.fprintf ppf "DEADLOCK at cycle %d (%s); wait cycle: %s@\n" d.d_cycle
      (deadlock_class_string d.d_class)
      (String.concat " -> " d.d_wait_cycle);
    List.iter
      (fun b ->
        match b.b_wants with
        | [ c ] ->
          Format.fprintf ppf "  %s waits for %s held by %s@\n" b.b_label
            (Topology.channel_name topo c)
            (match b.b_holder with Some h -> h | None -> "(free)")
        | ws ->
          Format.fprintf ppf "  %s blocked on {%s}@\n" b.b_label
            (String.concat ", " (List.map (Topology.channel_name topo) ws)))
      d.d_blocked;
    List.iter
      (fun (c, l, n) ->
        Format.fprintf ppf "  %s holds %s (%d flit%s)@\n" l (Topology.channel_name topo c) n
          (if n > 1 then "s" else ""))
      d.d_occupancy
