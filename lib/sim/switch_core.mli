(** The single flit-switching kernel behind {!Engine} and {!Adaptive_engine}.

    Both engines simulate the same switching model (Section 3 of the paper):
    atomic buffer allocation, at most one hop per flit per cycle, wormhole
    worms spanning the channels the header acquired, starvation-free
    arbitration, one flit consumed per cycle at the destination.  They differ
    only in how the header selects its next channel:

    - {e oblivious} ({!policy} [Oblivious rt]): the path is fixed up front by
      the routing function; the header waits for exactly that channel, and
      wait-seniority arbitration awards each contended channel to the most
      senior waiter (ties by the priority table);
    - {e adaptive} ([Adaptive ad]): each cycle the header claims the first
      {e free} channel among the routing function's permitted options,
      claimants ordered by waiting time and then the priority table.  An
      oblivious routing lifted with {!Adaptive.of_oblivious} is the singleton
      case and behaves identically to [Oblivious] (QCheck-checked in
      [test_qcheck]'s differential suite).

    Everything else -- fault application, watchdog/backoff recovery
    (including [recovery.reroute], honored by {e both} modes), online
    deadlock detection ({!trigger} [Detect]), the sanitizer sweep
    (E101-E106), and [Obs] emission -- lives here exactly once.

    Mode-specific semantics kept intentionally (see DESIGN.md section 12):
    adaptive runs ignore per-message adversarial holds ([ms_holds]) and
    [config.discipline]; validation wording matches the engine the caller
    used; sanitizer messages say "path position" (oblivious, fixed route)
    vs "hop" (adaptive, carved route); adaptive reroute pins the remaining
    route, making the message effectively oblivious for its retries. *)

type arbitration =
  | Fifo  (** earlier waiters first; same-cycle ties by schedule order *)
  | Priority of string list
      (** same-cycle ties broken by this label order (earlier = wins);
          labels absent from the list rank last, in schedule order *)

(** Switching discipline the flit-advance/acquire/release machinery runs
    under (DESIGN.md section 17).  Oblivious mode only; adaptive runs
    always switch wormhole. *)
type discipline =
  | Wormhole
      (** flits advance as soon as possible; a blocked worm spans many
          channels (the paper's model) *)
  | Virtual_cut_through
      (** headers advance as eagerly as wormhole, but the per-channel
          capacity column is provisioned for the longest scheduled packet:
          a blocked message compresses into its head channel's buffer and
          the release-after-tail pipeline then frees every upstream
          channel, so only the channel under the header stays
          resource-locked (cut-through = wormhole + whole-packet buffers
          in this channel-queue model) *)
  | Store_and_forward
      (** the header may only advance once the whole packet is buffered in
          its current channel (requires [buffer_capacity] at least the
          longest message); the classic pre-wormhole discipline *)

val discipline_string : discipline -> string
(** ["wormhole"], ["virtual-cut-through"], ["store-and-forward"]. *)

val discipline_of_string : string -> discipline option
(** Inverse of {!discipline_string}; also accepts ["wh"], ["vct"],
    ["saf"]. *)

val set_discipline_override : discipline option -> unit
(** Process-wide discipline override for matrix sweeps (CI, EXP-SW1):
    while set, every oblivious run switches under the given discipline
    regardless of its [config.discipline].  Under a [Store_and_forward]
    override the effective buffer capacity is raised to the longest
    scheduled message so wormhole-provisioned campaigns stay runnable;
    an explicit SAF config still validates strictly.  [None] restores
    per-config behavior.  Same process-wide-knob precedent as
    {!Obs_stats.arm} and [Sanitizer.install]. *)

val discipline_override : unit -> discipline option

type trigger =
  | Watchdog of int
      (** abort any message that goes this many cycles without progress
          (no flit moved, no channel acquired); >= 1.  Blunt: every
          member of a deadlock knot times out and is drained. *)
  | Detect of Obs_detect.config
      (** online wait-for cycle detection: an {!Obs_detect.t} consumes
          this run's event stream and confirms genuine knots within
          [bound] cycles of quiescence; only the policy-chosen victim is
          aborted, so the rest of the knot unwinds through the freed
          channels.  [backstop] keeps a watchdog sweep alive for acyclic
          wedges (e.g. a worm parked behind a failed link), which emit no
          wait cycle to detect. *)

type recovery = {
  trigger : trigger;
      (** what decides a message must be aborted; see {!trigger} *)
  retry_limit : int;
      (** maximum aborts per message; one more abort abandons it; >= 0 *)
  backoff : int;
      (** re-injection delay after the first abort; doubles per retry
          (exponential backoff); >= 1 *)
  reroute : Routing.t option;
      (** routing used to recompute an aborted message's path, typically a
          {!Routing.avoiding} wrapper around the failed channels that the
          caller has re-certified (see [Degrade.reroute]); [None] retries
          on the original path (oblivious) or with full adaptive freedom
          (adaptive).  In adaptive mode the recomputed path is {e pinned}:
          the retried header claims exactly the reroute's channels. *)
}

val default_recovery : recovery
(** [Watchdog 64], retry_limit 4, backoff 8, no reroute. *)

type config = {
  buffer_capacity : int;  (** flits per channel queue; >= 1 *)
  arbitration : arbitration;
  discipline : discipline;
      (** switching discipline; [Wormhole] with [buffer_capacity >= max
          length] behaves as [Virtual_cut_through], and intermediate
          capacities are the paper's "buffered wormhole" *)
  max_cycles : int;  (** safety cutoff; runs are expected to finish earlier *)
  faults : Fault.plan;  (** injected failures/stalls/drops; default none *)
  recovery : recovery option;
      (** [None] preserves the paper's model exactly: a blocked message
          holds its channels forever and deadlocks are reported with a
          witness.  [Some r] enables watchdog abort-and-drain with
          re-injection. *)
}

val default_config : config
(** capacity 1, FIFO, wormhole, 100_000 cycles, no faults, no recovery. *)

type message_result = {
  r_label : string;
  r_injected_at : int option;  (** cycle the header entered the network *)
  r_delivered_at : int option;  (** cycle the tail flit was consumed *)
}

type blocked_info = {
  b_label : string;
  b_wants : Topology.channel list;
      (** channels the header is blocked on: a singleton in oblivious mode
          (the fixed route's next channel), the full option list in
          adaptive mode *)
  b_holder : string option;
      (** owner of the first wanted channel, if any *)
}

(** The Stramaglia-Keiren-Zantema taxonomy, re-exported from
    {!Obs_detect.deadlock_class} (the dependency-order home shared with
    the detector and the post-mortem). *)
type deadlock_class = Obs_detect.deadlock_class = Global | Local | Weak

val deadlock_class_string : deadlock_class -> string
(** ["global"], ["local"], ["weak"]. *)

type deadlock_info = {
  d_cycle : int;  (** cycle at which the state became permanently blocked *)
  d_class : deadlock_class;
      (** classification of the terminal blocked state: [Weak] when
          [d_wait_cycle] is empty (acyclic wedge -- a drain order exists;
          only faults produce this), else [Local] when some message was
          delivered, else [Global] (the paper's Deadlock) *)
  d_blocked : blocked_info list;
  d_wait_cycle : string list;  (** labels of one cycle in the wait-for graph *)
  d_occupancy : (Topology.channel * string * int) list;
      (** channel, owning message, buffered flit count *)
}

type fate =
  | Delivered  (** reached its destination (possibly after retries) *)
  | Dropped  (** killed at the source by a {!Fault.Message_drop} with recovery off *)
  | Gave_up
      (** abandoned: retry cap exhausted, or no route around the failed
          channels exists *)

type retry_stat = {
  t_label : string;
  t_retries : int;
      (** aborts (watchdog, drop, or deadlock victim) this message went
          through *)
  t_fate : fate;
}

type outcome =
  | All_delivered of { finished_at : int; messages : message_result list }
  | Deadlock of deadlock_info
  | Cutoff of { at : int; messages : message_result list }
      (** [max_cycles] reached with traffic still moving (no deadlock) *)
  | Recovered of {
      finished_at : int;
      messages : message_result list;
      stats : retry_stat list;
    }
      (** the run was perturbed by faults or recovery actions (aborts,
          drops, retries) yet terminated: every message was delivered,
          dropped, or abandoned within its retry budget.  [All_delivered]
          is still returned when faults/recovery were configured but never
          fired. *)

type snapshot = {
  s_cycle : int;
  s_occupancy : (Topology.channel * string * int) list;
      (** channel, owning message, buffered flits (only non-empty queues) *)
  s_waiting : (string * Topology.channel * string option) list;
      (** blocked message, wanted channel (first option when adaptive),
          current holder *)
  s_moved : bool;  (** something advanced this cycle *)
}
(** The observable network state at the end of one cycle, for probes:
    wait-for-graph analysis (Dally-Aoki), tracing, invariant checking. *)

type policy =
  | Oblivious of Routing.t  (** fixed path per message; wait-seniority awards *)
  | Adaptive of Adaptive.t  (** first-free-option claims; carved paths *)

val run :
  ?config:config ->
  ?probe:(snapshot -> unit) ->
  ?sanitizer:Sanitizer.t ->
  ?obs:Obs.sink ->
  ?stats:Obs_stats.t ->
  policy ->
  Schedule.t ->
  outcome
(** Simulate until every message is delivered (or, under faults/recovery,
    dropped or abandoned), the network is permanently blocked, or the cycle
    cutoff fires.  Deterministic: a run is a pure function of
    (policy, schedule, config).

    [stats] accumulates counters-first telemetry into a preallocated
    {!Obs_stats.t} (per-channel utilization and blocking, latency histogram,
    per-phase work) with plain int stores -- the steady cycle allocates
    nothing even with stats on.  Without [stats], a process armed via
    {!Obs_stats.arm} gets a private per-run accumulator whose scalar totals
    fold into {!Obs_stats.armed_totals}; otherwise the stats path costs one
    atomic read per run.  Like [obs], stats are pure observation.
    @raise Invalid_argument when [stats] is sized for a different channel
    count than the policy's topology.

    [obs] attaches a structured-event sink for this run (falling back to the
    process-wide {!Obs.install}ed one); the [Run_start] event reports the
    engine as ["oblivious"] or ["adaptive"].  [sanitizer] arms the per-cycle
    invariant sweep (codes E101-E106), falling back to the process-wide
    {!Sanitizer.install}ed one.  Both are pure observation: the run takes
    identical decisions with any sink or sanitizer attached.  A [Detect]
    recovery trigger is different: the detector is part of the engine's
    semantics, so it is fed the event stream unconditionally (event
    construction is forced for the run even with no sink installed).

    Fault semantics: a channel that is down ({!Fault.down}) accepts no new
    acquisition and moves no flits in or out.  An oblivious header waits for
    its (down) fixed channel, keeping its seniority; an adaptive header is
    simply never offered a down option, steering around the fault.  The
    watchdog (or, under [Detect], the backstop and the detector's victim
    choice) aborts wedged messages either way; aborting releases and drains
    every held channel, then re-injects after exponential backoff -- along
    [recovery.reroute] if provided -- up to [retry_limit] times.  Detection
    emits [Deadlock_detected] / [Victim_aborted] events, and victim aborts
    carry reason ["deadlock"].

    @raise Invalid_argument on malformed schedules or configs, with the
    calling engine's name ("Engine.run:" / "Adaptive_engine.run:") in the
    message. *)

val is_deadlock : outcome -> bool

val outcome_string : outcome -> string
(** Stable one-word form: ["all-delivered"], ["deadlock"], ["cutoff"] or
    ["recovered"] (matches [Obs_event.Run_end]). *)

val pp_fate : Format.formatter -> fate -> unit

val pp_outcome : Topology.t -> Format.formatter -> outcome -> unit
(** Singleton [b_wants] entries render as ["m waits for c held by h"]
    (the oblivious witness format, unchanged); multi-option entries as
    ["m blocked on {c1, c2}"]. *)

val run_count : unit -> int
(** Total simulation runs started in this process (atomic: includes runs on
    helper domains, both modes).  Used for runs/sec throughput reporting in
    the campaign timing table. *)

val note_run_started : unit -> unit
(** Count one run towards {!run_count}.  Called by {!run} itself; exposed
    for engines layered on top of the kernel. *)

val cancelled_count : unit -> int
(** Runs whose results a parallel sweep discarded as cancelled speculative
    work (tasks past the canonical winner).  [run_count () -
    cancelled_count ()] is the exact number of runs that contributed to
    reported results. *)

val note_runs_cancelled : int -> unit
(** Report [n] runs as cancelled speculative work.  Called by the search
    layer after each sweep's canonical reduce. *)
