(** Flit-level simulation of adaptive wormhole routing.

    A thin facade over {!Switch_core}'s adaptive mode: the same switching
    model as {!Engine} (atomic buffer allocation, one hop per cycle,
    wormhole worms, starvation-free arbitration), but the header chooses
    dynamically among the routing function's permitted output channels:
    each cycle every blocked header claims the first {e free} channel in
    its option list, with contention resolved by waiting time and then by
    an explicit priority order.  Data flits follow the path the header
    actually took.

    Since the kernel unification, the outcome type {e is}
    {!Engine.outcome} (an equation on {!Switch_core.outcome}): adaptive
    deadlock witnesses carry the same [deadlock_info] record, with
    [b_wants] listing the full option set the header was blocked on, and
    [Cutoff] now reports per-message results.

    Restricted to adaptive functions whose choices never revisit a channel
    (every minimal algorithm qualifies); {!Adaptive.validate} should be
    checked beforehand. *)

type outcome = Switch_core.outcome =
  | All_delivered of { finished_at : int; messages : Engine.message_result list }
  | Deadlock of Engine.deadlock_info
  | Cutoff of { at : int; messages : Engine.message_result list }
  | Recovered of {
      finished_at : int;
      messages : Engine.message_result list;
      stats : Engine.retry_stat list;
    }
      (** faults or recovery actions perturbed the run, yet it terminated
          with every message delivered, dropped, or abandoned (see
          {!Engine.outcome}) *)

val run :
  ?config:Engine.config ->
  ?sanitizer:Sanitizer.t ->
  ?obs:Obs.sink ->
  ?stats:Obs_stats.t ->
  Adaptive.t ->
  Schedule.t ->
  outcome
(** [run ad sched] is [Switch_core.run (Adaptive ad) sched].

    [stats] accumulates counters-first telemetry exactly as in
    {!Engine.run}; a blocked header's wait/HoL attribution follows its
    advertised first-option edge.

    [sanitizer] behaves exactly as in {!Engine.run} (per-cycle invariant
    checks E101-E105, falling back to the installed process-wide sanitizer).
    [obs] likewise mirrors {!Engine.run}: a structured-event sink for this
    run (falling back to the installed one), emission being pure
    observation; the engine reports itself as ["adaptive"].  Since options
    are one-of-many here, a blocked header's wait-for edge is reported on
    its first (preferred) option.

    Faults and recovery follow {!Engine.run} semantics, with one adaptive
    twist: headers simply never claim a down channel, so adaptive routing
    steers around faults even without a reroute function.  When
    [config.recovery.reroute] {e is} provided, an aborted message's
    recomputed path is pinned: the retried header claims exactly the
    reroute's channels (it no longer explores).  Use wormlint's W044
    diagnostic to flag configurations that set a reroute expecting the old
    ignore-it behavior.

    [config.discipline] and per-message adversarial holds ([ms_holds]) are
    ignored: adaptive runs always switch wormhole.

    @raise Invalid_argument on malformed schedules or configs. *)

val is_deadlock : outcome -> bool
  [@@ocaml.deprecated "use Engine.is_deadlock (same outcome type)"]

val outcome_string : outcome -> string
  [@@ocaml.deprecated "use Engine.outcome_string (same outcome type)"]

val pp_outcome : Topology.t -> Format.formatter -> outcome -> unit
  [@@ocaml.deprecated "use Engine.pp_outcome (same outcome type)"]
