(** Flit-level simulation of adaptive wormhole routing.

    Same switching model as {!Engine} (atomic buffer allocation, one hop
    per cycle, wormhole worms, starvation-free arbitration), but the header
    chooses dynamically among the routing function's permitted output
    channels: each cycle every blocked header claims the first {e free}
    channel in its option list, with contention resolved by waiting time
    and then by an explicit priority order.  Data flits follow the path the
    header actually took.

    Restricted to adaptive functions whose choices never revisit a channel
    (every minimal algorithm qualifies); {!Adaptive.validate} should be
    checked beforehand. *)

type outcome =
  | All_delivered of { finished_at : int; messages : Engine.message_result list }
  | Deadlock of {
      at_cycle : int;
      blocked : (string * Topology.channel list) list;
          (** message, the options it is blocked on *)
      wait_cycle : string list;
    }
  | Cutoff of { at : int }
  | Recovered of {
      finished_at : int;
      messages : Engine.message_result list;
      stats : Engine.retry_stat list;
    }
      (** faults or recovery actions perturbed the run, yet it terminated
          with every message delivered, dropped, or abandoned (see
          {!Engine.outcome}) *)

val run :
  ?config:Engine.config ->
  ?sanitizer:Sanitizer.t ->
  ?obs:Obs.sink ->
  Adaptive.t ->
  Schedule.t ->
  outcome
(** [sanitizer] behaves exactly as in {!Engine.run} (per-cycle invariant
    checks E101-E105, falling back to the installed process-wide sanitizer).
    [obs] likewise mirrors {!Engine.run}: a structured-event sink for this
    run (falling back to the installed one), emission being pure
    observation; the engine reports itself as ["adaptive"].  Since options
    are one-of-many here, a blocked header's wait-for edge is reported on
    its first (preferred) option.
    Faults and recovery follow {!Engine.run} semantics, with one adaptive
    twist: headers simply never claim a down channel, so adaptive routing
    steers around faults without a reroute function —
    [config.recovery.reroute] is ignored here.
    @raise Invalid_argument on malformed schedules or configs. *)

val is_deadlock : outcome -> bool

val outcome_string : outcome -> string
(** Stable one-word form, matching {!Engine.outcome_string}. *)

val pp_outcome : Topology.t -> Format.formatter -> outcome -> unit
