(** Human-readable timelines of simulation runs.

    Built on the engine's per-cycle snapshots: collect a run's history and
    render it as a channel-occupancy timeline, one row per channel, one
    column per cycle -- the pictures wormhole-routing papers draw by hand.

    {[
      let trace, probe = Trace.collector () in
      let outcome = Engine.run ~probe rt sched in
      print_string (Trace.render topo (trace ()))
    ]} *)

type t = Engine.snapshot list
(** Snapshots in cycle order. *)

val collector : unit -> (unit -> t) * (Engine.snapshot -> unit)
(** [let get, probe = collector ()] accumulates snapshots; [get ()] returns
    them in cycle order. *)

val render : ?max_cycles:int -> Topology.t -> t -> string
(** One row per channel that was ever occupied, one column per cycle; the
    cell shows the first letter of the occupying message's label (uppercase
    when the queue holds more than one flit, ['.'] when free).  Rows are
    sorted by first occupancy.  [max_cycles] (default 120) truncates wide
    timelines; a truncated render marks every row with [" …"] and ends with
    an explicit ["… +N cycles"] line, and channels first occupied beyond
    the cutoff still get (empty, marked) rows. *)

val occupancy_of : t -> Topology.channel -> (int * string * int) list
(** The (cycle, owner, flits) history of one channel. *)
