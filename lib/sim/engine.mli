(** Cycle-accurate flit-level wormhole simulation with oblivious routing.

    This is a thin facade over {!Switch_core}, the single switching kernel
    shared with {!Adaptive_engine}; every type here is an equation on the
    kernel's, so [Engine.outcome] and [Switch_core.outcome] interconvert
    freely.  The model (Section 3 of the paper):

    - each unidirectional channel has a FIFO flit queue of configurable
      capacity (default one flit) with {e atomic buffer allocation}
      (assumption 4): a queue holds flits of at most one message, and it
      must transmit the last flit of the current message before it may
      accept the header of the next -- release happens at the end of a
      cycle, acquisition no earlier than the next cycle;
    - flits advance at most one hop per cycle; the header acquires channels,
      data flits follow the header's path (wormhole switching);
    - a header that cannot proceed keeps all channels the message occupies
      (no abort/recovery -- unless an explicit {!recovery} policy is
      configured, which is an extension beyond the paper's model);
    - the destination consumes one flit per cycle once the header arrives
      (assumption 2);
    - arbitration among simultaneous requests for the same channel is
      starvation-free (assumption 5): earlier waiters win, and ties among
      same-cycle requests are broken by an explicit priority order so the
      adversary of the paper's proofs ("the message that can lead to
      deadlock acquires the channel") can be realized by sweeping
      priorities;
    - per-message adversarial holds realize the bounded clock skew /
      prolonged-delay discussion of Sections 3 and 6.

    Because routing is oblivious and the engine deterministic, a run is a
    pure function of (routing, schedule, config). *)

type arbitration = Switch_core.arbitration =
  | Fifo  (** earlier waiters first; same-cycle ties by schedule order *)
  | Priority of string list
      (** same-cycle ties broken by this label order (earlier = wins);
          labels absent from the list rank last, in schedule order *)

type discipline = Switch_core.discipline =
  | Wormhole
      (** flits advance as soon as possible; a blocked worm spans many
          channels (the paper's model) *)
  | Virtual_cut_through
      (** headers advance as eagerly as wormhole, but every channel is
          provisioned with a whole-packet buffer: a blocked message
          compresses into its head channel and releases the upstream ones,
          so only the channel under the header stays resource-locked *)
  | Store_and_forward
      (** the header may only advance once the whole packet is buffered in
          its current channel (requires [buffer_capacity] at least the
          longest message); the classic pre-wormhole discipline *)

val discipline_string : discipline -> string
(** ["wormhole"], ["virtual-cut-through"], ["store-and-forward"]. *)

val discipline_of_string : string -> discipline option
(** Inverse of {!discipline_string}; also accepts the short forms ["wh"],
    ["vct"], ["saf"]. *)

val set_discipline_override : discipline option -> unit
(** Process-wide discipline override for matrix sweeps: while set, every
    oblivious run switches under the given discipline regardless of its
    [config.discipline] (adaptive runs always switch wormhole).  Under a
    [Store_and_forward] override the effective buffer capacity is raised
    to the longest scheduled message, so wormhole-provisioned campaigns
    stay runnable.  [None] restores per-config behavior. *)

val discipline_override : unit -> discipline option

(** The Stramaglia-Keiren-Zantema deadlock taxonomy (arXiv 2101.06015);
    see {!Obs_detect.deadlock_class} for the definitions.  Computed for
    every [Deadlock] witness from the terminal wait-for/holds state:
    [Weak] when the blocked set is acyclic (a drain order exists), else
    [Local] when some message was delivered, else [Global]. *)
type deadlock_class = Obs_detect.deadlock_class = Global | Local | Weak

val deadlock_class_string : deadlock_class -> string
(** ["global"], ["local"], ["weak"]. *)

type trigger = Switch_core.trigger =
  | Watchdog of int
      (** abort any message that goes this many cycles without progress
          (no flit moved, no channel acquired); >= 1.  Blunt: every
          member of a deadlock knot times out and is drained. *)
  | Detect of Obs_detect.config
      (** online wait-for cycle detection over this run's event stream
          ({!Obs_detect}): genuine knots are confirmed within
          [bound] cycles of quiescence and only the policy-chosen victim
          is aborted; [backstop] keeps a watchdog sweep alive for acyclic
          wedges (fault-parked worms emit no wait cycle to detect) *)

type recovery = Switch_core.recovery = {
  trigger : trigger;
      (** what decides a message must be aborted; see {!trigger} *)
  retry_limit : int;
      (** maximum aborts per message; one more abort abandons it; >= 0 *)
  backoff : int;
      (** re-injection delay after the first abort; doubles per retry
          (exponential backoff); >= 1 *)
  reroute : Routing.t option;
      (** routing used to recompute an aborted message's path, typically a
          {!Routing.avoiding} wrapper around the failed channels that the
          caller has re-certified (see [Degrade.reroute]); [None] retries
          on the original path *)
}

val default_recovery : recovery
(** [Watchdog 64], retry_limit 4, backoff 8, no reroute. *)

type config = Switch_core.config = {
  buffer_capacity : int;  (** flits per channel queue; >= 1 *)
  arbitration : arbitration;
  discipline : discipline;
      (** switching discipline; [Virtual_cut_through] raises the
          per-channel capacity to the longest scheduled packet ([Wormhole]
          with [buffer_capacity >= max length] is equivalent; intermediate
          capacities are the paper's "buffered wormhole") *)
  max_cycles : int;  (** safety cutoff; runs are expected to finish earlier *)
  faults : Fault.plan;  (** injected failures/stalls/drops; default none *)
  recovery : recovery option;
      (** [None] preserves the paper's model exactly: a blocked message
          holds its channels forever and deadlocks are reported with a
          witness.  [Some r] enables watchdog abort-and-drain with
          re-injection. *)
}

val default_config : config
(** capacity 1, FIFO, wormhole, 100_000 cycles, no faults, no recovery. *)

type message_result = Switch_core.message_result = {
  r_label : string;
  r_injected_at : int option;  (** cycle the header entered the network *)
  r_delivered_at : int option;  (** cycle the tail flit was consumed *)
}

type blocked_info = Switch_core.blocked_info = {
  b_label : string;
  b_wants : Topology.channel list;
      (** channels the header is blocked on: a singleton under oblivious
          routing (the fixed route's next channel), the full option list
          under adaptive routing *)
  b_holder : string option;  (** owner of the first wanted channel, if any *)
}

type deadlock_info = Switch_core.deadlock_info = {
  d_cycle : int;  (** cycle at which the state became permanently blocked *)
  d_class : deadlock_class;
      (** global/local/weak classification of the terminal blocked state *)
  d_blocked : blocked_info list;
  d_wait_cycle : string list;
      (** labels of one cycle in the wait-for graph; empty exactly when
          [d_class = Weak] (acyclic wedge, faults only) *)
  d_occupancy : (Topology.channel * string * int) list;
      (** channel, owning message, buffered flit count *)
}

type fate = Switch_core.fate =
  | Delivered  (** reached its destination (possibly after retries) *)
  | Dropped  (** killed at the source by a {!Fault.Message_drop} with recovery off *)
  | Gave_up
      (** abandoned: retry cap exhausted, or no route around the failed
          channels exists *)

type retry_stat = Switch_core.retry_stat = {
  t_label : string;
  t_retries : int;
      (** aborts (watchdog, drop, or deadlock victim) this message went
          through *)
  t_fate : fate;
}

type outcome = Switch_core.outcome =
  | All_delivered of { finished_at : int; messages : message_result list }
  | Deadlock of deadlock_info
  | Cutoff of { at : int; messages : message_result list }
      (** [max_cycles] reached with traffic still moving (no deadlock) *)
  | Recovered of {
      finished_at : int;
      messages : message_result list;
      stats : retry_stat list;
    }
      (** the run was perturbed by faults or recovery actions (aborts,
          drops, retries) yet terminated: every message was delivered,
          dropped, or abandoned within its retry budget.  [All_delivered]
          is still returned when faults/recovery were configured but never
          fired. *)

type snapshot = Switch_core.snapshot = {
  s_cycle : int;
  s_occupancy : (Topology.channel * string * int) list;
      (** channel, owning message, buffered flits (only non-empty queues) *)
  s_waiting : (string * Topology.channel * string option) list;
      (** blocked message, wanted channel, current holder *)
  s_moved : bool;  (** something advanced this cycle *)
}
(** The observable network state at the end of one cycle, for probes:
    wait-for-graph analysis (Dally-Aoki), tracing, invariant checking. *)

val run :
  ?config:config ->
  ?probe:(snapshot -> unit) ->
  ?sanitizer:Sanitizer.t ->
  ?obs:Obs.sink ->
  ?stats:Obs_stats.t ->
  Routing.t ->
  Schedule.t ->
  outcome
(** [run rt sched] is [Switch_core.run (Oblivious rt) sched]: simulate until
    every message is delivered (or, under faults/recovery, dropped or
    abandoned), the network is permanently blocked, or the cycle cutoff
    fires.

    [stats] accumulates counters-first telemetry (channel utilization,
    latency histogram, blocking attribution, phase work) into a
    preallocated {!Obs_stats.t} with plain int stores; see
    {!Switch_core.run} for the arming and determinism contract.

    [obs] attaches a structured-event sink for this run (falling back to the
    process-wide {!Obs.install}ed one): run start/end, channel
    acquire/release, wait-for edge add/drop, flit movements, deliveries,
    aborts/retries, and fault firings.  Emission is pure observation — the
    run takes identical decisions with any sink attached — and with no sink
    the event path costs one atomic read per run.

    [sanitizer] arms per-cycle invariant checking (flit conservation, buffer
    atomicity, the flit window, wait-for consistency, recovery monotonicity,
    wait-edge/hold consistency -- codes E101-E106); when omitted, the
    process-wide sanitizer installed via {!Sanitizer.install} (or the
    [WORMHOLE_SANITIZE] environment variable) is used if any.  Sanitizing
    never changes the run's decisions.

    Fault semantics: a channel that is down ({!Fault.down}) accepts no new
    acquisition and moves no flits in or out; a permanently failed channel
    therefore wedges any message still holding it until the watchdog (or,
    under a [Detect] trigger, the backstop or the detector's victim choice)
    aborts it.  Aborting releases and drains every channel the message
    holds, then re-injects it after exponential backoff -- along
    [recovery.reroute] if provided -- up to [retry_limit] times.  With [recovery = None] fault-
    blocked traffic is reported as [Deadlock] (permanently blocked), exactly
    like a protocol deadlock, and existing witnesses are unchanged.

    @raise Invalid_argument when {!Schedule.validate} rejects the schedule
    or the config is malformed (including a [recovery.reroute] built on a
    different topology). *)

val is_deadlock : outcome -> bool

val run_count : unit -> int
(** Total simulation runs started in this process (atomic: includes runs on
    helper domains, and the adaptive engine's runs).  Used for runs/sec
    throughput reporting in the campaign timing table. *)

val note_run_started : unit -> unit
(** Count one run towards {!run_count}.  Called by the kernel itself;
    exposed for engines layered on top of it. *)

val cancelled_count : unit -> int
(** Runs whose results a parallel sweep discarded as cancelled speculative
    work (tasks past the canonical winner).  [run_count () -
    cancelled_count ()] is the exact number of runs that contributed to
    reported results. *)

val note_runs_cancelled : int -> unit
(** Report [n] runs as cancelled speculative work.  Called by the search
    layer after each sweep's canonical reduce. *)

val outcome_string : outcome -> string
(** Stable one-word form: ["all-delivered"], ["deadlock"], ["cutoff"] or
    ["recovered"] (matches [Obs_event.Run_end]). *)

val pp_fate : Format.formatter -> fate -> unit
val pp_outcome : Topology.t -> Format.formatter -> outcome -> unit
