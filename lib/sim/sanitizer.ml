(* Counters are atomic and the diagnostics list is mutex-protected: a single
   installed sanitizer observes engine runs from every domain of a parallel
   sweep concurrently. *)
type t = {
  fail_fast : bool;
  limit : int;
  lock : Mutex.t;
  mutable diags : Diagnostic.t list; (* newest first; guarded by [lock] *)
  count : int Atomic.t;
  runs : int Atomic.t;
  cycles : int Atomic.t;
  cancelled : int Atomic.t;
}

exception Violation of Diagnostic.t

let create ?(fail_fast = false) ?(limit = 100) () =
  if limit < 0 then invalid_arg "Sanitizer.create: limit < 0";
  {
    fail_fast;
    limit;
    lock = Mutex.create ();
    diags = [];
    count = Atomic.make 0;
    runs = Atomic.make 0;
    cycles = Atomic.make 0;
    cancelled = Atomic.make 0;
  }

let record s d =
  (* mirror every trip onto the event bus before a fail-fast raise, so
     traces show what tripped even when the run is torn down *)
  Obs.emit (Obs_event.Sanitizer_trip d);
  if s.fail_fast then raise (Violation d);
  let n = 1 + Atomic.fetch_and_add s.count 1 in
  if n <= s.limit then begin
    Mutex.lock s.lock;
    s.diags <- d :: s.diags;
    Mutex.unlock s.lock
  end

let note_run s = Atomic.incr s.runs
let note_cycle s = Atomic.incr s.cycles

let note_runs_cancelled s n =
  if n > 0 then ignore (Atomic.fetch_and_add s.cancelled n)

let diagnostics s =
  Mutex.lock s.lock;
  let ds = s.diags in
  Mutex.unlock s.lock;
  List.rev ds

let violation_count s = Atomic.get s.count
let runs_checked s = Atomic.get s.runs
let cycles_checked s = Atomic.get s.cycles
let runs_cancelled s = Atomic.get s.cancelled
let ok s = Atomic.get s.count = 0

let reset s =
  Mutex.lock s.lock;
  s.diags <- [];
  Mutex.unlock s.lock;
  Atomic.set s.count 0;
  Atomic.set s.runs 0;
  Atomic.set s.cycles 0;
  Atomic.set s.cancelled 0

let installed : t option ref = ref None

let install s = installed := Some s
let uninstall () = installed := None
let current () = !installed

(* WORMHOLE_SANITIZE=1 in the environment arms a fail-fast sanitizer for the
   whole process, so `WORMHOLE_SANITIZE=1 dune runtest` checks every engine
   run the test suite makes without any code change. *)
let () =
  match Sys.getenv_opt "WORMHOLE_SANITIZE" with
  | None | Some "" | Some "0" -> ()
  | Some _ -> install (create ~fail_fast:true ())
