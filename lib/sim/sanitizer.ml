type t = {
  fail_fast : bool;
  limit : int;
  mutable diags : Diagnostic.t list; (* newest first *)
  mutable count : int;
  mutable runs : int;
  mutable cycles : int;
}

exception Violation of Diagnostic.t

let create ?(fail_fast = false) ?(limit = 100) () =
  if limit < 0 then invalid_arg "Sanitizer.create: limit < 0";
  { fail_fast; limit; diags = []; count = 0; runs = 0; cycles = 0 }

let record s d =
  if s.fail_fast then raise (Violation d);
  s.count <- s.count + 1;
  if s.count <= s.limit then s.diags <- d :: s.diags

let note_run s = s.runs <- s.runs + 1
let note_cycle s = s.cycles <- s.cycles + 1

let diagnostics s = List.rev s.diags
let violation_count s = s.count
let runs_checked s = s.runs
let cycles_checked s = s.cycles
let ok s = s.count = 0

let reset s =
  s.diags <- [];
  s.count <- 0;
  s.runs <- 0;
  s.cycles <- 0

let installed : t option ref = ref None

let install s = installed := Some s
let uninstall () = installed := None
let current () = !installed

(* WORMHOLE_SANITIZE=1 in the environment arms a fail-fast sanitizer for the
   whole process, so `WORMHOLE_SANITIZE=1 dune runtest` checks every engine
   run the test suite makes without any code change. *)
let () =
  match Sys.getenv_opt "WORMHOLE_SANITIZE" with
  | None | Some "" | Some "0" -> ()
  | Some _ -> install (create ~fail_fast:true ())
