(* Facade over Switch_core's adaptive mode; see adaptive_engine.mli and
   DESIGN.md section 12 for the kernel split. *)

type outcome = Switch_core.outcome =
  | All_delivered of { finished_at : int; messages : Engine.message_result list }
  | Deadlock of Engine.deadlock_info
  | Cutoff of { at : int; messages : Engine.message_result list }
  | Recovered of {
      finished_at : int;
      messages : Engine.message_result list;
      stats : Engine.retry_stat list;
    }

let run ?config ?sanitizer ?obs ?stats ad sched =
  Switch_core.run ?config ?sanitizer ?obs ?stats (Switch_core.Adaptive ad) sched

let is_deadlock = Switch_core.is_deadlock
let outcome_string = Switch_core.outcome_string
let pp_outcome = Switch_core.pp_outcome
