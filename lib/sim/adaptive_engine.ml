type outcome =
  | All_delivered of { finished_at : int; messages : Engine.message_result list }
  | Deadlock of {
      at_cycle : int;
      blocked : (string * Topology.channel list) list;
      wait_cycle : string list;
    }
  | Cutoff of { at : int }
  | Recovered of {
      finished_at : int;
      messages : Engine.message_result list;
      stats : Engine.retry_stat list;
    }

let is_deadlock = function
  | Deadlock _ -> true
  | All_delivered _ | Cutoff _ | Recovered _ -> false

(* Message state: [taken] is the path the header has carved so far; flits
   occupy a suffix window of it, exactly as in the oblivious engine. *)
type msg_state = {
  spec : Schedule.message_spec;
  idx : int;
  taken : Topology.channel Vec.t;
  occ : int Vec.t;
  mutable head : int;  (* index into taken; -1 before injection; = length taken when consumed *)
  mutable arrived : bool;  (* header reached the destination node *)
  mutable injected : int;
  mutable consumed : int;
  mutable injected_at : int option;
  mutable delivered_at : int option;
  mutable released_up_to : int;
  mutable wait_since : int;  (* cycle the header last started waiting *)
  mutable attempt_at : int;  (* earliest cycle the source may (re)start requesting *)
  mutable retries : int;
  mutable gone : Engine.fate option;
  mutable last_progress : int;
  mutable progressed : bool;
  mutable awarded_now : int;  (* channel awarded this cycle; -1 if none *)
}

let outcome_string = function
  | All_delivered _ -> "all-delivered"
  | Deadlock _ -> "deadlock"
  | Cutoff _ -> "cutoff"
  | Recovered _ -> "recovered"

let run ?(config = Engine.default_config) ?sanitizer ?obs adaptive sched =
  if config.Engine.buffer_capacity < 1 then invalid_arg "Adaptive_engine.run: buffer_capacity < 1";
  let topo = Adaptive.topology adaptive in
  let labels = List.map (fun (m : Schedule.message_spec) -> m.ms_label) sched in
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    invalid_arg "Adaptive_engine.run: duplicate message labels";
  List.iter
    (fun (m : Schedule.message_spec) ->
      if m.ms_length < 1 then invalid_arg "Adaptive_engine.run: length < 1";
      if m.ms_src = m.ms_dst then invalid_arg "Adaptive_engine.run: source equals destination")
    sched;
  (match config.Engine.recovery with
  | None -> ()
  | Some r ->
    if r.Engine.watchdog < 1 then invalid_arg "Adaptive_engine.run: recovery watchdog < 1";
    if r.Engine.retry_limit < 0 then invalid_arg "Adaptive_engine.run: recovery retry_limit < 0";
    if r.Engine.backoff < 1 then invalid_arg "Adaptive_engine.run: recovery backoff < 1");
  let cap = config.Engine.buffer_capacity in
  let marr =
    Array.of_list
      (List.mapi
         (fun idx (spec : Schedule.message_spec) ->
           {
             spec;
             idx;
             taken = Vec.create ();
             occ = Vec.create ();
             head = -1;
             arrived = false;
             injected = 0;
             consumed = 0;
             injected_at = None;
             delivered_at = None;
             released_up_to = 0;
             wait_since = max_int;
             attempt_at = spec.ms_inject_at;
             retries = 0;
             gone = None;
             last_progress = 0;
             progressed = false;
             awarded_now = -1;
           })
         sched)
  in
  Engine.note_run_started ();
  let nmsg = Array.length marr in
  let nchan = Topology.num_channels topo in
  let faults = Fault.compile ~nchan config.Engine.faults in
  (* -- observability: same contract as the oblivious engine (hoisted sink,
        [obs_on]-guarded emission, pure observation) -- *)
  let obs = match obs with Some _ as s -> s | None -> Obs.current () in
  let obs_on = obs <> None in
  let emit e = match obs with Some s -> s.Obs.emit e | None -> () in
  if obs_on then begin
    emit
      (Obs_event.Run_start
         { engine = "adaptive"; algorithm = Adaptive.name adaptive; messages = nmsg });
    List.iter
      (fun (ev : Fault.event) ->
        emit
          (match ev with
          | Fault.Link_failure { channel; at } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_failure; channel = Some channel;
                label = None; duration = 0 }
          | Fault.Transient_stall { channel; at; duration } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_stall; channel = Some channel;
                label = None; duration }
          | Fault.Message_drop { label; at } ->
            Obs_event.Fault
              { cycle = at; kind = Obs_event.Planned_drop; channel = None;
                label = Some label; duration = 0 }))
      (Fault.events config.Engine.faults)
  end;
  let owner = Array.make nchan (-1) in
  (* arbitration rank per schedule position, precomputed (the priority
     variant used to hash the label on every sort comparison) *)
  let rank_of =
    match config.Engine.arbitration with
    | Engine.Fifo -> Array.init nmsg (fun i -> i)
    | Engine.Priority order ->
      let pos = Hashtbl.create 8 in
      List.iteri (fun i l -> if not (Hashtbl.mem pos l) then Hashtbl.add pos l i) order;
      let worst = List.length order in
      Array.map
        (fun m ->
          match Hashtbl.find_opt pos m.spec.Schedule.ms_label with
          | Some i -> (i * nmsg) + m.idx
          | None -> (worst * nmsg) + m.idx)
        marr
  in
  (* per-cycle scratch, reused: header option lists and the claimant order
     (no per-cycle list build + List.sort + awarded Hashtbl) *)
  let opts_now = Array.make nmsg [] in
  let claim_order = Array.make nmsg 0 in
  let active m = m.delivered_at = None && m.gone = None in
  (* current option list of a message's header, [] when it cannot move.
     Channels that are down (failed or stalled) are not offered: adaptive
     routing steers around faults by construction. *)
  let current_options m t =
    if (not (active m)) || m.arrived then []
    else if m.head = -1 then
      if m.injected = 0 && t >= m.attempt_at then
        Adaptive.options adaptive (Routing.Inject m.spec.ms_src) m.spec.ms_dst
        |> List.filter (fun c -> not (Fault.down faults c t))
      else []
    else begin
      let c = Vec.get m.taken m.head in
      (* the header cannot leave a down channel, so don't let it claim the
         next one either; with Fault.down a pure function of (channel, t)
         an award therefore always implies the hop can complete *)
      if Fault.down faults c t then []
      else if Topology.dst topo c = m.spec.Schedule.ms_dst then []
      else
        Adaptive.options adaptive (Routing.From c) m.spec.ms_dst
        |> List.filter (fun c -> not (Fault.down faults c t))
    end
  in
  let moved = ref false in
  let finished = ref 0 in
  let perturbed = ref false in
  let results () =
    Array.to_list
      (Array.map
         (fun m ->
           {
             Engine.r_label = m.spec.Schedule.ms_label;
             r_injected_at = m.injected_at;
             r_delivered_at = m.delivered_at;
           })
         marr)
  in
  let stats () =
    Array.to_list
      (Array.map
         (fun m ->
           {
             Engine.t_label = m.spec.Schedule.ms_label;
             t_retries = m.retries;
             t_fate = (match m.gone with Some f -> f | None -> Engine.Delivered);
           })
         marr)
  in
  (* abort-and-drain: release the carved path, drop buffered flits, reset *)
  let drain m t =
    Vec.iter
      (fun c ->
        if owner.(c) = m.idx then begin
          owner.(c) <- -1;
          if obs_on then
            emit
              (Obs_event.Channel_release
                 { cycle = t; label = m.spec.Schedule.ms_label; channel = c })
        end)
      m.taken;
    Vec.clear m.taken;
    Vec.clear m.occ;
    m.head <- -1;
    m.arrived <- false;
    m.injected <- 0;
    m.consumed <- 0;
    m.released_up_to <- 0;
    m.wait_since <- max_int
  in
  let give_up m fate t =
    drain m t;
    m.gone <- Some fate;
    incr finished;
    if obs_on then
      emit
        (Obs_event.Gave_up
           { cycle = t; label = m.spec.Schedule.ms_label;
             fate = (match fate with Engine.Dropped -> "dropped" | _ -> "gave-up") })
  in
  let abort_retry m (r : Engine.recovery) t ~reason =
    drain m t;
    m.retries <- m.retries + 1;
    if obs_on then
      emit
        (Obs_event.Abort
           { cycle = t; label = m.spec.Schedule.ms_label; retries = m.retries; reason });
    if m.retries > r.Engine.retry_limit then give_up m Engine.Gave_up t
    else begin
      let delay = r.Engine.backoff * (1 lsl min (m.retries - 1) 20) in
      m.attempt_at <- t + delay;
      m.last_progress <- t + delay;
      if obs_on then
        emit
          (Obs_event.Retry
             { cycle = t; label = m.spec.Schedule.ms_label; resume_at = m.attempt_at })
    end
  in
  (* -- sanitizer: same invariant sweep as the oblivious engine, over the
        carved [taken] path (see Sanitizer's doc for the code table) -- *)
  let sanitizer = match sanitizer with Some s -> Some s | None -> Sanitizer.current () in
  (match sanitizer with Some s -> Sanitizer.note_run s | None -> ());
  let sanitize t =
    match sanitizer with
    | None -> ()
    | Some san ->
      Sanitizer.note_cycle san;
      let ctx = [ ("algorithm", Adaptive.name adaptive); ("cycle", string_of_int t) ] in
      let viol code m msg =
        Sanitizer.record san
          (Diagnostic.error code (Diagnostic.Message m.spec.Schedule.ms_label) msg ~context:ctx)
      in
      Array.iter
        (fun m ->
          let k = Vec.length m.taken in
          let buffered = ref 0 in
          Vec.iter (fun n -> buffered := !buffered + n) m.occ;
          if m.gone = None && m.injected <> m.consumed + !buffered then
            viol "E101" m
              (Printf.sprintf "flit conservation broken: injected %d <> consumed %d + buffered %d"
                 m.injected m.consumed !buffered);
          for i = 0 to k - 1 do
            let n = Vec.get m.occ i in
            if n < 0 || n > cap then
              viol "E102" m
                (Printf.sprintf "buffer occupancy %d outside [0, %d] at hop %d" n cap i);
            if n > 0 && owner.(Vec.get m.taken i) <> m.idx then
              viol "E102" m
                (Printf.sprintf "flits buffered on %s which the message does not own"
                   (Topology.channel_name topo (Vec.get m.taken i)));
            if n > 0 && (i < m.released_up_to || i > m.head) then
              viol "E103" m
                (Printf.sprintf "flits at hop %d outside the live window [%d, %d]" i
                   m.released_up_to (min m.head (k - 1)))
          done;
          let release_bound = if m.arrived then k else max m.head 0 in
          if m.released_up_to < 0 || m.released_up_to > release_bound then
            viol "E103" m
              (Printf.sprintf "release watermark %d outside [0, %d]" m.released_up_to
                 release_bound);
          if m.wait_since <> max_int && m.wait_since > t then
            viol "E104" m
              (Printf.sprintf "wait timestamp %d is in the future" m.wait_since);
          if m.gone <> None && m.wait_since <> max_int then
            viol "E104" m "abandoned message still has a wait timestamp";
          match config.Engine.recovery with
          | Some r when m.gone = None ->
            if m.retries > r.Engine.retry_limit then
              viol "E105" m
                (Printf.sprintf "live message has %d retries, over the limit %d" m.retries
                   r.Engine.retry_limit);
            if active m && t - m.last_progress >= r.Engine.watchdog then
              viol "E105" m
                (Printf.sprintf
                   "watchdog bound broken: no progress since cycle %d (watchdog %d)"
                   m.last_progress r.Engine.watchdog)
          | Some _ | None -> ())
        marr;
      Array.iteri
        (fun c own ->
          if own >= 0 then
            let m = marr.(own) in
            if not (Vec.exists (fun c' -> c' = c) m.taken) then
              viol "E102" m
                (Printf.sprintf "owns %s which is not on its carved path"
                   (Topology.channel_name topo c)))
        owner
  in
  let cycle = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    let t = !cycle in
    moved := false;
    Array.iter (fun m -> m.progressed <- false) marr;
    (* -- allocation: headers claim their first free option; earlier
          waiters first, then priority -- *)
    let nclaim = ref 0 in
    for j = 0 to nmsg - 1 do
      let m = marr.(j) in
      m.awarded_now <- -1;
      let opts = current_options m t in
      opts_now.(j) <- opts;
      if opts <> [] then begin
        if m.wait_since = max_int then m.wait_since <- t;
        claim_order.(!nclaim) <- j;
        incr nclaim
      end
    done;
    (* insertion sort of the claimants by (wait_since, rank): keys are
       unique (rank embeds the schedule index), so this matches the old
       [List.sort] order exactly, without the per-cycle list build *)
    for a = 1 to !nclaim - 1 do
      let j = claim_order.(a) in
      let kw = marr.(j).wait_since in
      let kr = rank_of.(j) in
      let b = ref (a - 1) in
      while
        !b >= 0
        &&
        let j' = claim_order.(!b) in
        let w' = marr.(j').wait_since in
        w' > kw || (w' = kw && rank_of.(j') > kr)
      do
        claim_order.(!b + 1) <- claim_order.(!b);
        decr b
      done;
      claim_order.(!b + 1) <- j
    done;
    for a = 0 to !nclaim - 1 do
      let m = marr.(claim_order.(a)) in
      let free =
        List.find_opt
          (fun c -> owner.(c) = -1 && not (Vec.exists (fun c' -> c' = c) m.taken))
          opts_now.(m.idx)
      in
      match free with
      | Some c ->
        m.awarded_now <- c;
        owner.(c) <- m.idx;
        if obs_on then
          emit
            (Obs_event.Channel_acquire
               { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                 waited = (if m.wait_since = max_int then 0 else t - m.wait_since) });
        m.wait_since <- max_int;
        m.progressed <- true;
        moved := true
      | None -> ()
    done;
    (* a claimant that won nothing and just started waiting contributes a
       wait-for edge on its first (preferred) option *)
    if obs_on then
      for a = 0 to !nclaim - 1 do
        let m = marr.(claim_order.(a)) in
        if m.awarded_now < 0 && m.wait_since = t then begin
          match opts_now.(m.idx) with
          | c :: _ ->
            emit
              (Obs_event.Wait_add
                 { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                   holder =
                     (if owner.(c) >= 0 then Some marr.(owner.(c)).spec.Schedule.ms_label
                      else None) })
          | [] -> ()
        end
      done;
    (* -- movement: a down channel neither accepts nor emits flits -- *)
    Array.iter
      (fun m ->
        if active m then begin
          let ok i = not (Fault.down faults (Vec.get m.taken i) t) in
          let k = Vec.length m.taken in
          (* consumption at the destination *)
          if k > 0 then begin
            let last = Vec.get m.taken (k - 1) in
            if Topology.dst topo last = m.spec.Schedule.ms_dst && m.head >= k - 1 then begin
              if m.head = k - 1 then begin
                m.arrived <- true;
                m.head <- k
              end;
              if Vec.get m.occ (k - 1) > 0 && ok (k - 1) then begin
                Vec.set m.occ (k - 1) (Vec.get m.occ (k - 1) - 1);
                m.consumed <- m.consumed + 1;
                moved := true;
                m.progressed <- true;
                if obs_on then
                  emit
                    (Obs_event.Flit
                       { cycle = t; label = m.spec.Schedule.ms_label; channel = last;
                         kind = Obs_event.Consume });
                if m.consumed = m.spec.Schedule.ms_length then begin
                  m.delivered_at <- Some t;
                  if obs_on then
                    emit
                      (Obs_event.Delivered
                         { cycle = t; label = m.spec.Schedule.ms_label;
                           latency =
                             (match m.injected_at with Some i -> t - i | None -> t) })
                end
              end
            end
          end;
          (* header hop into a channel awarded this cycle *)
          (match (if m.awarded_now >= 0 then Some m.awarded_now else None) with
          | Some c ->
            if m.head = -1 then begin
              (* header injection *)
              Vec.push m.taken c;
              Vec.push m.occ 1;
              m.head <- 0;
              m.injected <- 1;
              m.injected_at <- Some t;
              moved := true;
              m.progressed <- true;
              if obs_on then
                emit
                  (Obs_event.Flit
                     { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                       kind = Obs_event.Inject })
            end
            else begin
              Vec.push m.taken c;
              Vec.push m.occ 0;
              Vec.set m.occ m.head (Vec.get m.occ m.head - 1);
              Vec.set m.occ (m.head + 1) 1;
              m.head <- m.head + 1;
              moved := true;
              m.progressed <- true;
              if obs_on then
                emit
                  (Obs_event.Flit
                     { cycle = t; label = m.spec.Schedule.ms_label; channel = c;
                       kind = Obs_event.Hop })
            end
          | None -> ());
          (* data flits cascade *)
          let k = Vec.length m.taken in
          let front = min (m.head - 1) (k - 2) in
          for i = front downto 0 do
            if Vec.get m.occ i > 0 && Vec.get m.occ (i + 1) < cap && ok i && ok (i + 1) then begin
              Vec.set m.occ i (Vec.get m.occ i - 1);
              Vec.set m.occ (i + 1) (Vec.get m.occ (i + 1) + 1);
              moved := true;
              m.progressed <- true;
              if obs_on then
                emit
                  (Obs_event.Flit
                     { cycle = t; label = m.spec.Schedule.ms_label;
                       channel = Vec.get m.taken (i + 1); kind = Obs_event.Cascade })
            end
          done;
          (* injection of subsequent flits; the source pushes at most one
             flit per cycle, and the header push above already counts as the
             injection-cycle's flit *)
          if
            m.injected > 0 && m.injected < m.spec.Schedule.ms_length
            && m.injected_at <> Some t
            && Vec.get m.occ 0 < cap && ok 0
          then begin
            Vec.set m.occ 0 (Vec.get m.occ 0 + 1);
            m.injected <- m.injected + 1;
            moved := true;
            m.progressed <- true;
            if obs_on then
              emit
                (Obs_event.Flit
                   { cycle = t; label = m.spec.Schedule.ms_label;
                     channel = Vec.get m.taken 0; kind = Obs_event.Inject })
          end;
          (* release fully-traversed channels *)
          if m.injected = m.spec.Schedule.ms_length then begin
            let i = ref m.released_up_to in
            let continue = ref true in
            while !continue && !i < Vec.length m.taken do
              if
                Vec.get m.occ !i = 0
                && owner.(Vec.get m.taken !i) = m.idx
                && (!i < m.head || m.arrived)
              then begin
                owner.(Vec.get m.taken !i) <- -1;
                moved := true;
                m.progressed <- true;
                if obs_on then
                  emit
                    (Obs_event.Channel_release
                       { cycle = t; label = m.spec.Schedule.ms_label;
                         channel = Vec.get m.taken !i });
                incr i
              end
              else continue := false
            done;
            m.released_up_to <- !i
          end;
          if m.delivered_at = Some t then incr finished
        end)
      marr;
    (* -- faults and recovery: source-side drops, then the watchdog -- *)
    if not (Fault.is_empty config.Engine.faults) then
      Array.iter
        (fun m ->
          if active m && m.injected = 0 && Fault.dropped_now faults m.spec.Schedule.ms_label t
          then begin
            perturbed := true;
            if obs_on then
              emit
                (Obs_event.Fault
                   { cycle = t; kind = Obs_event.Drop_fired; channel = None;
                     label = Some m.spec.Schedule.ms_label; duration = 0 });
            match config.Engine.recovery with
            | None -> give_up m Engine.Dropped t
            | Some r -> abort_retry m r t ~reason:"drop"
          end)
        marr;
    (match config.Engine.recovery with
    | None -> ()
    | Some r ->
      Array.iter
        (fun m ->
          if active m then begin
            if m.progressed || (m.injected = 0 && t < m.attempt_at) then m.last_progress <- t
            else if t - m.last_progress >= r.Engine.watchdog then begin
              perturbed := true;
              abort_retry m r t ~reason:"watchdog"
            end
          end)
        marr);
    (* -- end of cycle: sanitizer, then termination -- *)
    sanitize t;
    if !finished = nmsg then
      outcome :=
        Some
          (if !perturbed then
             Recovered { finished_at = t; messages = results (); stats = stats () }
           else All_delivered { finished_at = t; messages = results () })
    else if t >= config.Engine.max_cycles then outcome := Some (Cutoff { at = t })
    else if not !moved then begin
      let future =
        Array.exists (fun m -> active m && m.injected = 0 && t < m.attempt_at) marr
        (* with recovery on, any live message is future work: the watchdog
           will eventually abort it *)
        || (Option.is_some config.Engine.recovery && Array.exists active marr)
        (* a stall window about to close or an unfired event can unblock *)
        || Fault.change_after faults t
      in
      if not future then begin
        let blocked =
          Array.to_list marr
          |> List.filter_map (fun m ->
                 if not (active m) then None
                 else
                   match current_options m t with
                   | [] -> None
                   | opts -> Some (m.spec.Schedule.ms_label, opts))
        in
        (* chase wait-for edges through the first blocked option's owner *)
        let next i =
          match current_options marr.(i) t with
          | c :: _ when owner.(c) >= 0 && owner.(c) <> i -> Some owner.(c)
          | _ -> None
        in
        let wait_cycle =
          let rec chase seen i =
            match next i with
            | None -> None
            | Some j ->
              if List.mem j seen then
                Some
                  (let rec drop = function
                     | [] -> []
                     | x :: rest -> if x = j then x :: rest else drop rest
                   in
                   drop (List.rev (i :: seen)))
              else chase (i :: seen) j
          in
          let starts =
            Array.to_list marr
            |> List.filter_map (fun m -> if active m then Some m.idx else None)
          in
          let rec try_starts = function
            | [] -> []
            | s :: rest -> (
              match chase [] s with
              | Some c -> List.map (fun i -> marr.(i).spec.Schedule.ms_label) c
              | None -> try_starts rest)
          in
          try_starts starts
        in
        outcome := Some (Deadlock { at_cycle = t; blocked; wait_cycle })
      end
    end;
    incr cycle
  done;
  let o = match !outcome with Some o -> o | None -> assert false in
  if obs_on then begin
    let final =
      match o with
      | All_delivered { finished_at; _ } | Recovered { finished_at; _ } -> finished_at
      | Deadlock { at_cycle; _ } -> at_cycle
      | Cutoff { at } -> at
    in
    emit (Obs_event.Run_end { cycle = final; outcome = outcome_string o })
  end;
  o

let pp_outcome topo ppf = function
  | All_delivered { finished_at; messages } ->
    Format.fprintf ppf "all %d messages delivered by cycle %d" (List.length messages)
      finished_at
  | Cutoff { at } -> Format.fprintf ppf "cutoff at cycle %d" at
  | Recovered { finished_at; stats; _ } ->
    let count f = List.length (List.filter (fun s -> s.Engine.t_fate = f) stats) in
    let retries = List.fold_left (fun acc s -> acc + s.Engine.t_retries) 0 stats in
    Format.fprintf ppf
      "recovered by cycle %d: %d delivered, %d dropped, %d gave up (%d retries total)"
      finished_at (count Engine.Delivered) (count Engine.Dropped) (count Engine.Gave_up)
      retries
  | Deadlock { at_cycle; blocked; wait_cycle } ->
    Format.fprintf ppf "ADAPTIVE DEADLOCK at cycle %d; wait cycle: %s@\n" at_cycle
      (String.concat " -> " wait_cycle);
    List.iter
      (fun (l, opts) ->
        Format.fprintf ppf "  %s blocked on {%s}@\n" l
          (String.concat ", " (List.map (Topology.channel_name topo) opts)))
      blocked
