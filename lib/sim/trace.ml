type t = Engine.snapshot list

let collector () =
  let acc = ref [] in
  let probe snap = acc := snap :: !acc in
  ((fun () -> List.rev !acc), probe)

let occupancy_of trace c =
  List.concat_map
    (fun (s : Engine.snapshot) ->
      List.filter_map
        (fun (c', owner, n) -> if c' = c then Some (s.Engine.s_cycle, owner, n) else None)
        s.Engine.s_occupancy)
    trace

let render ?(max_cycles = 120) topo trace =
  let cycles = List.length trace in
  let shown = min cycles max_cycles in
  (* channel -> per-cycle cell *)
  let first_seen = Hashtbl.create 32 in
  let cells = Hashtbl.create 32 in
  List.iteri
    (fun i (s : Engine.snapshot) ->
      List.iter
        (fun (c, owner, n) ->
          (* Track first occupancy over the whole trace, not just the shown
             prefix: a channel first occupied after the cutoff still gets a
             row (all dots plus the truncation marker) instead of silently
             vanishing from the picture. *)
          if not (Hashtbl.mem first_seen c) then Hashtbl.add first_seen c i;
          if i < shown then begin
            let ch = if owner = "" then '?' else owner.[0] in
            let ch = if n > 1 then Char.uppercase_ascii ch else Char.lowercase_ascii ch in
            Hashtbl.replace cells (c, i) ch
          end)
        s.Engine.s_occupancy)
    trace;
  let channels =
    Hashtbl.fold (fun c i acc -> (i, c) :: acc) first_seen []
    |> List.sort compare
    |> List.map snd
  in
  let buf = Buffer.create 1024 in
  let name_width =
    List.fold_left (fun w c -> max w (String.length (Topology.channel_name topo c))) 7 channels
  in
  let truncated = cycles > shown in
  Buffer.add_string buf (Printf.sprintf "%-*s " name_width "channel");
  for i = 0 to shown - 1 do
    Buffer.add_char buf (if i mod 10 = 0 then Char.chr (Char.code '0' + i / 10 mod 10) else ' ')
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "%-*s " name_width (Topology.channel_name topo c));
      for i = 0 to shown - 1 do
        Buffer.add_char buf
          (match Hashtbl.find_opt cells (c, i) with Some ch -> ch | None -> '.')
      done;
      if truncated then Buffer.add_string buf " …";
      Buffer.add_char buf '\n')
    channels;
  if truncated then Buffer.add_string buf (Printf.sprintf "… +%d cycles\n" (cycles - shown));
  Buffer.contents buf
