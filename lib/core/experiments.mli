(** The paper's evaluation artifacts as runnable experiments.

    Each function regenerates one artifact (figure, theorem, corollary or
    the Section-6 family), prints the full report to the formatter, and
    returns one summary row per claim checked so the test suite and
    EXPERIMENTS.md can assert the paper-vs-measured agreement.

    [quick] trims the search dimensions (fewer candidate lengths, fewer
    arbitration permutations) so the suite finishes in seconds; the default
    full spaces are the ones quoted in EXPERIMENTS.md. *)

type row = {
  x_id : string;  (** e.g. "F1/cdg-cyclic" *)
  x_claim : string;  (** what the paper says *)
  x_measured : string;  (** what we observed *)
  x_ok : bool;  (** measured matches the claim *)
}

val exp_f1 : ?quick:bool -> Format.formatter -> row list
(** Figure 1 / Theorem 1: the Cyclic Dependency algorithm has a cyclic CDG
    (exactly one elementary cycle) yet no adversarial schedule deadlocks. *)

val exp_t2 : ?quick:bool -> Format.formatter -> row list
(** Theorem 2 / Corollary 1: on a unidirectional ring with clockwise
    routing every shared channel is within the cycle; the classifier calls
    the cycle reachable and the search produces a deadlock witness. *)

val exp_corollaries : ?quick:bool -> Format.formatter -> row list
(** Corollaries 1-3 over the algorithm suite: suffix-closed / coherent
    algorithms never have unreachable configurations -- their CDG cycles
    (when any) are real deadlock risks; the CD algorithm is the
    non-suffix-closed exception with a false resource cycle. *)

val exp_t3 : ?quick:bool -> Format.formatter -> row list
(** Theorem 3: the minimal algorithms of the suite admit no unreachable
    cycles; the CD algorithm is necessarily nonminimal. *)

val exp_t4 : ?quick:bool -> Format.formatter -> row list
(** Figure 2 / Theorem 4: two messages sharing a channel outside the cycle
    always deadlock; prints the witness schedule. *)

val exp_t5 : ?quick:bool -> Format.formatter -> row list
(** Figure 3 (a)-(f) / Theorem 5: per sub-figure, the eight-condition
    checker's verdict against the exhaustive search and the paper's claim. *)

val exp_g : ?quick:bool -> ?max_p:int -> Format.formatter -> row list
(** Section 6: [family p] is deadlock-free without adversarial delay, and
    the minimum in-network delay that creates a deadlock grows with [p]. *)

val exp_s1 : ?quick:bool -> Format.formatter -> row list
(** Substrate validation (extension): torus e-cube without virtual channels
    deadlocks under permutation traffic; with dateline VCs, and on the mesh,
    it never does. *)

val exp_s2 : ?quick:bool -> Format.formatter -> row list
(** Substrate performance (extension): 8x8 mesh XY latency and throughput
    versus offered load under uniform and transpose traffic. *)

val exp_mfm : ?quick:bool -> Format.formatter -> row list
(** Section-2 discussion, mechanized: the Lin-McKinley-Ni message flow
    model (deadlock-immune channels) proves the acyclic suite deadlock-free
    but gets stuck on the Figure-1 ring -- exactly the incompleteness the
    paper points out for algorithms with unreachable cycles. *)

val exp_a : ?quick:bool -> Format.formatter -> row list
(** Section-7 outlook, mechanized: unrestricted adaptive routing has a
    cyclic adaptive CDG, while Duato's escape-channel condition (connected
    escape subfunction + acyclic extended CDG) certifies the two-class mesh
    design, confirmed under adaptive-engine stress traffic. *)

val exp_sw : ?quick:bool -> Format.formatter -> row list
(** Section-1 discussion, mechanized: the switching continuum.  Latency
    ordering wormhole = cut-through < store-and-forward on an uncontended
    line; cut-through buffering neither rescues a cyclic-CDG substrate nor
    breaks the Figure-1 false resource cycle. *)

val exp_sw1 : ?quick:bool -> Format.formatter -> row list
(** Discipline-matrix extension (EXP-SW1): paper figure networks plus
    mesh/torus/hypercube substrates rerun under all three switching
    disciplines, with every deadlock classified global/local/weak.  The
    Figure-2 witness verdict {e flips} under cut-through and
    store-and-forward (the deadlock needs a worm stretched across the
    shared channel), while true channel cycles (ring tornado, torus
    wrap-around) deadlock under every discipline; a drained early message
    demonstrates a local deadlock and a fault-parked worm a weak one.
    Suspends any process-wide discipline override for the duration --
    every run pins its own [config.discipline]. *)

val exp_mc : ?quick:bool -> Format.formatter -> row list
(** Exhaustive state-space verification of every figure network: the model
    checker explores all injection timings and arbitration choices (one-flit
    buffers, the swept length window) and must agree with the paper on every
    verdict; with the unbounded-delay adversary enabled, Figure 1 deadlocks,
    matching Section 6. *)

val exp_fault : ?quick:bool -> ?detect:bool -> Format.formatter -> row list
(** Robustness extension: seeded fault campaigns on the figure networks
    terminate deterministically with bounded retries under recovery; with
    recovery off a permanent failure reports as a deadlock; a failed mesh
    channel is routed around with a re-certified degraded algorithm.
    [detect] (default false) swaps the plain watchdog for online deadlock
    detection with the same no-progress backstop; the claim verdicts must
    be identical either way. *)

val exp_detect : ?quick:bool -> Format.formatter -> row list
(** Robustness extension (EXP-D1): on the deterministic deadlock workloads
    (the Figure-2 witness and torus tornado traffic) the online detector
    confirms the ground-truth knot within its latency bound, delivers every
    message the watchdog delivers, and aborts strictly fewer messages than
    the watchdog on at least one workload. *)

val exp_lint : ?quick:bool -> Format.formatter -> row list
(** Static-analysis extension: every registered algorithm lints with zero
    E-severity diagnostics, and every seeded defect in the wormlint corpus
    is flagged exactly once by its expected code (with at least 8 distinct
    codes exercised). *)

val exp_synth : ?quick:bool -> Format.formatter -> row list
(** Synthesis extension (EXP-SY1): the routing-existence checker's verdict
    against exhaustive dynamic search.  On every paper figure network a
    routing is synthesized, certified by [Verify] and survives the
    adversarial schedule sweep; on under-provisioned unidirectional rings
    the impossibility witness machine-checks and every member of the
    bounded greedy routing family deadlocks; on pinned random digraphs the
    two verdicts always agree and both occur. *)

val all : ?quick:bool -> Format.formatter -> row list
(** Run everything in order. *)

val summary_table : row list -> string
(** Render rows as the EXPERIMENTS.md summary table. *)

val latency_report : ?quick:bool -> Format.formatter -> unit
(** The [run_experiments --latency] section: per-workload latency
    percentiles (p50/p90/p99/max, as histogram upper bounds), delivery
    counts, peak channel utilization and the top head-of-line blocking
    channels, measured by threading an {!Obs_stats.t} through a fixed
    deterministic workload set (the figure-2 designated messages, seeded
    mesh-8x8 Bernoulli traffic, a transpose permutation and the torus
    tornado).  Per-run accumulators merge in task-index order, so the
    section is byte-identical at any [--domains] count. *)
