(** Certified synthesis: [Wr_analysis.Synth] plus the [Verify] pipeline.

    [Synth] lives below [Verify] in the library stack, so its "exists"
    verdicts are only self-certified (the rank-order audit).  This module
    closes the loop: synthesize, then run the synthesized routing through
    the full {!Verify} pipeline (CDG build, Dally-Seitz numbering,
    Theorem 2-5 classification when cycles appear) so every synthesized
    routing ships with the same certificate the hand-written algorithms
    get.  [wormlint --synth], [wormsim --routing synth] and the EXP-SY1
    campaign all go through here. *)

type t = {
  sc_network : string;
  sc_topology : Topology.t;
  sc_result : (Routing.t * Synth.plan, Synth.witness) result;
  sc_conclusion : Verify.conclusion option;
      (** the [Verify] verdict on the synthesized routing; [None] when the
          network admits no routing *)
  sc_diagnostics : Diagnostic.t list;
      (** severity-sorted union of the synthesis diagnostics (E060 / I061 /
          W062) and the [Verify] diagnostics (E050/W052/I053...) *)
}

val run : ?quick:bool -> ?budget:int -> ?name:string -> Topology.t -> t
(** Synthesize and certify one network.  [quick] (default [true]) is passed
    to {!Verify.analyze}; synthesized routings have acyclic CDGs, so the
    quick pass already produces the full numbering certificate.  [name]
    labels the network in diagnostics (default ["synth"]). *)

val certified : t -> bool
(** A routing was synthesized and [Verify] concluded [Deadlock_free]. *)

val networks : unit -> (string * Topology.t) list
(** The distinct networks underlying the algorithm registry -- every paper
    figure network, the Section-6 family instance, and the classic
    mesh/torus/hypercube/ring substrates -- named independently of the
    routing algorithms that run on them. *)

val run_all : ?quick:bool -> unit -> t list
(** {!run} over {!networks}, fanned over [Wr_pool] (order-preserving, so
    output is byte-identical at any domain count). *)

val json : t -> string
(** [{"network":NAME,"verdict":"exists"|"impossible","diagnostics":[...]}]. *)

val registry_json : ?quick:bool -> unit -> string
(** The JSON array for {!run_all} -- exactly what [wormlint --synth --json]
    prints and what the committed golden file pins. *)
