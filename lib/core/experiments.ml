type row = {
  x_id : string;
  x_claim : string;
  x_measured : string;
  x_ok : bool;
}

let row id claim measured ok = { x_id = id; x_claim = claim; x_measured = measured; x_ok = ok }

let header ppf title = Format.fprintf ppf "@\n=== %s ===@\n" title

(* Search space for a paper network's designated messages. *)
let net_space ?(quick = false) net =
  let extra = if quick then [ -2; -1; 0 ] else [ -2; -1; 0; 1 ] in
  let templates =
    List.map (fun i -> Explorer.intent_template ~extra net i) net.Paper_nets.intents
  in
  let base = Explorer.default_space templates in
  if quick then { base with buffers = [ 1 ] } else base

let search_net ?quick net rt = Explorer.explore rt (net_space ?quick net)

let describe_search topo ppf v =
  Format.fprintf ppf "search: %a@\n" (Explorer.pp_verdict topo) v

(* ---- Figure 1 / Theorem 1 ---- *)

let exp_f1 ?(quick = false) ppf =
  header ppf "EXP-F1: Figure 1 / Theorem 1 (Cyclic Dependency algorithm)";
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let cdg = Cdg.build rt in
  let cycles = Cdg.elementary_cycles cdg in
  Format.fprintf ppf "network: %d nodes, %d channels; routing table valid: %b@\n"
    (Topology.num_nodes net.topo) (Topology.num_channels net.topo)
    (Routing.validate rt = Ok ());
  Format.fprintf ppf "CDG: %d dependencies, acyclic=%b, %d elementary cycle(s)@\n"
    (Cdg.num_edges cdg) (Cdg.is_acyclic cdg) (List.length cycles);
  List.iter (fun c -> Format.fprintf ppf "  cycle: %a@\n" (Cdg.pp_cycle cdg) c) cycles;
  let props = Properties.summary rt in
  List.iter
    (fun (n, v) -> Format.fprintf ppf "  property %s: %a@\n" n Properties.pp_verdict v)
    props;
  let v = search_net ~quick net rt in
  describe_search net.topo ppf v;
  let one_cycle_of_8 =
    match cycles with [ c ] -> List.length c = 8 | _ -> false
  in
  let not_suffix =
    match List.assoc_opt "suffix-closed" props with
    | Some (Properties.Fails _) -> true
    | _ -> false
  in
  [
    row "F1/cdg" "CDG has a cycle (exactly the 8-channel ring)"
      (Printf.sprintf "%d cycle(s), len %s" (List.length cycles)
         (String.concat "," (List.map (fun c -> string_of_int (List.length c)) cycles)))
      one_cycle_of_8;
    row "F1/suffix" "CD algorithm is not suffix-closed (escapes Corollary 2)"
      (if not_suffix then "not suffix-closed" else "suffix-closed") not_suffix;
    row "F1/deadlock-free" "no reachable deadlock (Theorem 1)"
      (match v with
      | Explorer.No_deadlock { runs } -> Printf.sprintf "no deadlock in %d runs" runs
      | Explorer.Deadlock_found { runs; _ } -> Printf.sprintf "DEADLOCK after %d runs" runs)
      (not (Explorer.is_deadlock_found v));
  ]

(* ---- Theorem 2 / Corollary 1 ---- *)

let exp_t2 ?(quick = false) ppf =
  ignore quick;
  header ppf "EXP-T2: Theorem 2 (shared channels within the cycle)";
  let coords = Builders.ring ~unidirectional:true 4 in
  let rt = Ring_routing.clockwise coords in
  let cdg = Cdg.build rt in
  let cycles = Cdg.elementary_cycles cdg in
  let classified =
    List.map (fun c -> Cycle_analysis.classify cdg c) cycles
  in
  List.iteri
    (fun i (_, v) ->
      Format.fprintf ppf "cycle %d: %a@\n" i Cycle_analysis.pp_verdict v)
    classified;
  let all_reachable =
    classified <> []
    && List.for_all
         (fun (_, v) ->
           match v with Cycle_analysis.Deadlock_reachable _ -> true | _ -> false)
         classified
  in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:3 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  let out = Engine.run rt sched in
  Format.fprintf ppf "%a@\n" (Engine.pp_outcome (Routing.topology rt)) out;
  [
    row "T2/classify" "cycles with all shared channels inside are reachable (Theorem 2)"
      (if all_reachable then "all cycles classified reachable" else "unexpected verdict")
      all_reachable;
    row "T2/witness" "simultaneous ring traffic deadlocks"
      (if Engine.is_deadlock out then "deadlock witness at length 3" else "no deadlock")
      (Engine.is_deadlock out);
  ]

(* ---- Corollaries 1-3 over the algorithm suite ---- *)

let suite () =
  let mesh = Builders.mesh [ 4; 4 ] in
  let hc = Builders.hypercube 3 in
  let torus1 = Builders.torus [ 4; 4 ] in
  let torus2 = Builders.torus ~vcs:2 [ 4; 4 ] in
  let ring2 = Builders.ring ~unidirectional:true ~vcs:2 6 in
  [
    ("xy-mesh-4x4", Dimension_order.mesh mesh);
    ("west-first-4x4", Turn_model.west_first mesh);
    ("ecube-hypercube-3", Dimension_order.hypercube hc);
    ("ecube-torus-4x4-novc", Dimension_order.torus torus1);
    ("ecube-torus-4x4-dateline", Dimension_order.torus ~datelines:true torus2);
    ("ring-dateline-6", Ring_routing.dateline ring2);
  ]

let exp_corollaries ?(quick = false) ppf =
  header ppf "EXP-C123: Corollaries 1-3 (property checkers and verdicts)";
  let algorithms = ("cd-figure1", Cd_algorithm.of_net (Paper_nets.figure1 ())) :: suite () in
  let table =
    Table.create
      [ "algorithm"; "minimal"; "suffix-closed"; "coherent"; "CDG"; "conclusion" ]
  in
  let rows =
    List.map
      (fun (name, rt) ->
        let report = Verify.analyze ~quick rt in
        let get p =
          match List.assoc_opt p report.Verify.properties with
          | Some v -> if Properties.is_holds v then "yes" else "no"
          | None -> "?"
        in
        let concl =
          match report.Verify.conclusion with
          | Verify.Deadlock_free _ -> "deadlock-free"
          | Verify.Deadlocks _ -> "deadlocks"
          | Verify.Unknown _ -> "unknown"
        in
        Table.add_row table
          [
            name;
            get "minimal";
            get "suffix-closed";
            get "coherent";
            (if report.Verify.acyclic then "acyclic"
             else Printf.sprintf "%d cycles" (List.length report.Verify.cycles));
            concl;
          ];
        (name, report))
      algorithms
  in
  Format.fprintf ppf "%s" (Table.render table);
  (* Corollary check: every suffix-closed algorithm's cycles (if any) are
     classified reachable, never Unreachable. *)
  let corollary_ok =
    List.for_all
      (fun (_, r) ->
        let suffix =
          match List.assoc_opt "suffix-closed" r.Verify.properties with
          | Some v -> Properties.is_holds v
          | None -> false
        in
        (not suffix)
        || List.for_all
             (fun cr ->
               match cr.Verify.cr_verdict with
               | Cycle_analysis.Unreachable _ -> false
               | _ -> true)
             r.Verify.cycles)
      rows
  in
  let cd_free =
    match List.assoc_opt "cd-figure1" (List.map (fun (n, r) -> (n, r.Verify.conclusion)) rows) with
    | Some (Verify.Deadlock_free _) -> true
    | _ -> false
  in
  [
    row "C2/suffix-closed" "no suffix-closed algorithm has an unreachable cycle (Corollary 2)"
      (if corollary_ok then "holds across the suite" else "violated") corollary_ok;
    row "C/cd-exception"
      "the non-suffix-closed CD algorithm is deadlock-free despite its cycle"
      (if cd_free then "verified deadlock-free" else "not verified")
      cd_free;
  ]

(* ---- Theorem 3 ---- *)

let exp_t3 ?(quick = false) ppf =
  ignore quick;
  header ppf "EXP-T3: Theorem 3 (minimal oblivious routing)";
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let cd_minimal = Properties.is_holds (Properties.minimal rt) in
  Format.fprintf ppf "CD algorithm minimal: %b (Theorem 3 forces nonminimality)@\n" cd_minimal;
  (* Minimal members of the suite: their cycles must all be reachable. *)
  let minimal_ok =
    List.for_all
      (fun (name, rt) ->
        let minimal = Properties.is_holds (Properties.minimal rt) in
        if not minimal then true
        else begin
          let cdg = Cdg.build rt in
          let cycles = Cdg.elementary_cycles cdg in
          let ok =
            List.for_all
              (fun c ->
                match snd (Cycle_analysis.classify ~minimal:true cdg c) with
                | Cycle_analysis.Unreachable _ -> false
                | _ -> true)
              cycles
          in
          Format.fprintf ppf "%s: minimal, %d cycle(s), all reachable: %b@\n" name
            (List.length cycles) ok;
          ok
        end)
      (suite ())
  in
  [
    row "T3/cd-nonminimal" "the CD example cannot be minimal"
      (if cd_minimal then "minimal (!)" else "nonminimal") (not cd_minimal);
    row "T3/minimal-suite" "minimal algorithms have no unreachable cycles"
      (if minimal_ok then "holds across the suite" else "violated") minimal_ok;
  ]

(* ---- Figure 2 / Theorem 4 ---- *)

let exp_t4 ?(quick = false) ppf =
  header ppf "EXP-T4: Figure 2 / Theorem 4 (two sharers outside the cycle)";
  let net = Paper_nets.figure2 () in
  let rt = Cd_algorithm.of_net net in
  let cdg = Cdg.build rt in
  let classified =
    List.map (fun c -> snd (Cycle_analysis.classify cdg c)) (Cdg.elementary_cycles cdg)
  in
  let thm4 =
    List.exists
      (function
        | Cycle_analysis.Deadlock_reachable why ->
          String.length why >= 9 && String.sub why 0 9 = "Theorem 4"
        | _ -> false)
      classified
  in
  List.iter (fun v -> Format.fprintf ppf "classifier: %a@\n" Cycle_analysis.pp_verdict v) classified;
  let v = search_net ~quick net rt in
  describe_search net.topo ppf v;
  [
    row "T4/classify" "classifier applies Theorem 4 (exactly two sharers)"
      (if thm4 then "Theorem 4 fired" else "did not fire") thm4;
    row "T4/deadlock" "the Figure-2 cycle forms a reachable deadlock"
      (match v with
      | Explorer.Deadlock_found { runs; _ } -> Printf.sprintf "witness after %d runs" runs
      | Explorer.No_deadlock { runs } -> Printf.sprintf "no deadlock in %d runs" runs)
      (Explorer.is_deadlock_found v);
  ]

(* ---- Figure 3 / Theorem 5 ---- *)

let exp_t5 ?(quick = false) ppf =
  header ppf "EXP-T5: Figure 3 / Theorem 5 (three sharers: the eight conditions)";
  let cases =
    [ (`A, "a", false); (`B, "b", false); (`C, "c", true); (`D, "d", true); (`E, "e", true);
      (`F, "f", true) ]
  in
  let table =
    Table.create [ "case"; "paper"; "checker"; "search"; "agrees" ]
  in
  let rows =
    List.map
      (fun (case, name, paper_deadlock) ->
        let net = Paper_nets.figure3 case in
        let rt = Cd_algorithm.of_net net in
        let cdg = Cdg.build rt in
        let checker =
          match Cdg.elementary_cycles cdg with
          | [ cycle ] -> (
            match snd (Cycle_analysis.classify cdg cycle) with
            | Cycle_analysis.Unreachable _ -> Some false
            | Cycle_analysis.Deadlock_reachable _ -> Some true
            | Cycle_analysis.Needs_search _ -> None)
          | _ -> None
        in
        let v = search_net ~quick net rt in
        let search_deadlock = Explorer.is_deadlock_found v in
        let ok =
          search_deadlock = paper_deadlock
          && match checker with Some c -> c = paper_deadlock | None -> false
        in
        Table.add_row table
          [
            name;
            (if paper_deadlock then "deadlock" else "false cycle");
            (match checker with
            | Some true -> "deadlock"
            | Some false -> "false cycle"
            | None -> "undecided");
            (if search_deadlock then "deadlock" else "no deadlock");
            (if ok then "yes" else "NO");
          ];
        row (Printf.sprintf "T5/%s" name)
          (if paper_deadlock then "deadlock reachable" else "unreachable (false resource cycle)")
          (Printf.sprintf "checker=%s search=%s"
             (match checker with
             | Some true -> "deadlock"
             | Some false -> "false-cycle"
             | None -> "undecided")
             (if search_deadlock then "deadlock" else "safe"))
          ok)
      cases
  in
  Format.fprintf ppf "%s" (Table.render table);
  rows

(* ---- Section 6 ---- *)

let exp_g ?(quick = false) ?max_p ppf =
  header ppf "EXP-G: Section 6 (delay tolerance of the generalized family)";
  let max_p = match max_p with Some p -> p | None -> if quick then 2 else 3 in
  let table = Table.create [ "p"; "ring"; "safe w/o delay"; "min deadlock delay" ] in
  let results =
    List.map
      (fun p ->
        let net = Paper_nets.family p in
        let max_h = if quick then 4 + (2 * p) else 6 + (3 * p) in
        let r = Min_delay.search ~max_h net in
        Table.add_row table
          [
            string_of_int p;
            string_of_int (Array.length net.ring_channels);
            string_of_bool r.Min_delay.md_no_delay_safe;
            (match r.md_min_delay with
            | Some h -> string_of_int h
            | None -> Printf.sprintf ">%d" max_h);
          ];
        (p, r))
      (List.init max_p (fun i -> i + 1))
  in
  Format.fprintf ppf "%s" (Table.render table);
  let all_safe = List.for_all (fun (_, r) -> r.Min_delay.md_no_delay_safe) results in
  let delays =
    List.map (fun (_, r) -> match r.Min_delay.md_min_delay with Some h -> h | None -> max_int)
      results
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  let growing = strictly_increasing delays in
  [
    row "G/safe" "every family member is deadlock-free without adversarial delay"
      (if all_safe then "safe for all p tested" else "deadlocked without delay") all_safe;
    row "G/growth" "required adversarial delay grows with p (unbounded tolerance)"
      (Printf.sprintf "min delays: %s"
         (String.concat ","
            (List.map (fun d -> if d = max_int then ">max" else string_of_int d) delays)))
      growing;
  ]

(* ---- Substrate experiments (extensions) ---- *)

let exp_s1 ?(quick = false) ppf =
  ignore quick;
  header ppf "EXP-S1: substrate validation (torus/mesh deadlock behaviour)";
  let t1 = Builders.torus [ 5; 5 ] in
  let t2 = Builders.torus ~vcs:2 [ 5; 5 ] in
  let mesh = Builders.mesh [ 5; 5 ] in
  (* independent single runs: fan out on the pool, print in order *)
  let cases =
    [ ("torus-novc ", Dimension_order.torus t1, t1);
      ("torus-vc2  ", Dimension_order.torus ~datelines:true t2, t2);
      ("mesh-xy    ", Dimension_order.mesh mesh, mesh) ]
  in
  let reps =
    Wr_pool.map
      (fun (_, rt, coords) ->
        let pattern = Traffic.tornado coords in
        let sched = Traffic.permutation_schedule pattern ~coords ~length:8 in
        Measure.run rt sched)
      cases
  in
  List.iter2
    (fun (name, _, _) rep -> Format.fprintf ppf "%s: %a@\n" name Measure.pp rep)
    cases reps;
  let novc, dateline, meshrep =
    match reps with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  [
    row "S1/torus-novc" "torus e-cube without VCs deadlocks under tornado permutation"
      (if novc.Measure.deadlocked then "deadlock" else "delivered") novc.Measure.deadlocked;
    row "S1/torus-dateline" "dateline VCs restore deadlock freedom"
      (if dateline.Measure.deadlocked then "deadlock" else "all delivered")
      (not dateline.Measure.deadlocked);
    row "S1/mesh" "mesh XY routing never deadlocks"
      (if meshrep.Measure.deadlocked then "deadlock" else "all delivered")
      (not meshrep.Measure.deadlocked);
  ]

let exp_s2 ?(quick = false) ppf =
  header ppf "EXP-S2: substrate performance (8x8 mesh XY, latency vs offered load)";
  let coords = Builders.mesh [ 8; 8 ] in
  let rt = Dimension_order.mesh coords in
  let horizon = if quick then 300 else 1000 in
  let rates = if quick then [ 0.01; 0.03 ] else [ 0.005; 0.01; 0.02; 0.03; 0.05 ] in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "pattern"; "rate"; "avg lat"; "p95 lat"; "thr (f/c)" ]
  in
  (* every (pattern, rate) run is independent and seeds its own Rng: fan
     out on the pool, then fold sequentially so the monotonicity check and
     the table keep their original order *)
  let jobs =
    List.concat_map
      (fun (pname, mk) -> List.map (fun rate -> (pname, mk, rate)) rates)
      [
        ("uniform", fun rng -> Traffic.uniform rng coords);
        ("transpose", fun _ -> Traffic.transpose coords);
      ]
  in
  let reps =
    Wr_pool.map
      (fun (_, mk, rate) ->
        let rng = Rng.create 42 in
        let pattern = mk rng in
        let sched = Traffic.bernoulli_schedule rng pattern ~coords ~rate ~length:4 ~horizon in
        Measure.run rt sched)
      jobs
  in
  let monotone = ref true in
  let prev = ref 0.0 in
  let last_pattern = ref "" in
  List.iter2
    (fun (pname, _, rate) rep ->
      if pname <> !last_pattern then begin
        last_pattern := pname;
        prev := 0.0
      end;
      if rep.Measure.avg_latency < !prev -. 2.0 then monotone := false;
      prev := rep.Measure.avg_latency;
      Table.add_row table
        [
          pname;
          Printf.sprintf "%.3f" rate;
          Printf.sprintf "%.1f" rep.Measure.avg_latency;
          Printf.sprintf "%.1f" rep.Measure.p95_latency;
          Printf.sprintf "%.3f" rep.Measure.throughput;
        ])
    jobs reps;
  Format.fprintf ppf "%s" (Table.render table);
  [
    row "S2/latency-load" "latency grows (weakly) with offered load"
      (if !monotone then "monotone within tolerance" else "non-monotone") !monotone;
  ]

(* ---- Message flow model (Section-2 discussion) ---- *)

let exp_mfm ?(quick = false) ppf =
  ignore quick;
  header ppf "EXP-MFM: the message flow model on unreachable cycles";
  let rows = ref [] in
  (* sound direction: complete on the acyclic suite *)
  let proves =
    List.for_all
      (fun (name, rt) ->
        let r = Message_flow.analyze rt in
        let cdg_acyclic = Cdg.is_acyclic (Cdg.build rt) in
        Format.fprintf ppf "%s: %a@
" name (Message_flow.pp (Routing.topology rt)) r;
        (not cdg_acyclic) || Message_flow.proves_deadlock_free r)
      (suite ())
  in
  rows :=
    row "MFM/acyclic-suite" "deadlock-immunity fixpoint proves the acyclic algorithms"
      (if proves then "all proven" else "some acyclic algorithm not proven") proves
    :: !rows;
  (* the paper's observation: the technique gets stuck on Figure 1 *)
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let r = Message_flow.analyze rt in
  Format.fprintf ppf "cd-figure1: %a@
" (Message_flow.pp net.topo) r;
  let ring_stuck =
    Array.for_all (fun c -> List.mem c r.Message_flow.stuck) net.ring_channels
  in
  let incomplete = ring_stuck && not (Message_flow.proves_deadlock_free r) in
  rows :=
    row "MFM/figure1-stuck"
      "on Figure 1 the fixpoint never marks the ring channels immune (Section 2: 'no \
       starting point'), although the algorithm is deadlock-free"
      (Printf.sprintf "%d channels stuck, including all %d ring channels"
         (List.length r.Message_flow.stuck)
         (Array.length net.ring_channels))
      incomplete
    :: !rows;
  List.rev !rows

(* ---- State-space model checking ---- *)

let exp_mc ?(quick = false) ppf =
  header ppf "EXP-MC: exhaustive state-space verification (all timings, all arbitrations)";
  let table = Table.create [ "network"; "paper"; "model checker"; "states"; "agrees" ] in
  let extra = if quick then [ -2; -1; 0 ] else [ -2; -1; 0; 1 ] in
  let cases =
    [ ("figure1", Paper_nets.figure1 (), false); ("figure2", Paper_nets.figure2 (), true);
      ("figure3a", Paper_nets.figure3 `A, false); ("figure3b", Paper_nets.figure3 `B, false);
      ("figure3c", Paper_nets.figure3 `C, true); ("figure3d", Paper_nets.figure3 `D, true);
      ("figure3e", Paper_nets.figure3 `E, true); ("figure3f", Paper_nets.figure3 `F, true) ]
  in
  let rows =
    List.map
      (fun (name, net, paper_deadlock) ->
        let v = Model_checker.check_net ~extra net in
        let found, states =
          match v with
          | Model_checker.Deadlock { states; _ } -> (true, states)
          | Model_checker.Safe { states } -> (false, states)
          | Model_checker.Out_of_budget { states } -> (paper_deadlock, states)
        in
        let ok = found = paper_deadlock in
        Table.add_row table
          [ name;
            (if paper_deadlock then "deadlock" else "safe");
            (if found then "deadlock" else "safe");
            string_of_int states;
            (if ok then "yes" else "NO") ];
        row ("MC/" ^ name)
          (if paper_deadlock then "deadlock reachable" else "unreachable for all timings")
          (Format.asprintf "%a" Model_checker.pp v)
          ok)
      cases
  in
  Format.fprintf ppf "%s" (Table.render table);
  (* Section-6 consistency: with the unbounded-delay adversary Figure 1
     DOES deadlock (the paper: delaying M1/M3 one or more cycles suffices) *)
  let v_stall = Model_checker.check_net ~allow_stalls:true ~extra (Paper_nets.figure1 ()) in
  Format.fprintf ppf "figure1 under the unbounded-delay adversary: %a@\n" Model_checker.pp
    v_stall;
  let stall_row =
    row "MC/figure1-stalls"
      "with unbounded in-network delay Figure 1 deadlocks (Section 6)"
      (Format.asprintf "%a" Model_checker.pp v_stall)
      (match v_stall with Model_checker.Deadlock _ -> true | _ -> false)
  in
  rows @ [ stall_row ]

(* ---- Switching-technique continuum (Section-1 discussion) ---- *)

let exp_sw ?(quick = false) ppf =
  header ppf "EXP-SW: wormhole vs buffered wormhole vs virtual cut-through vs SAF";
  (* latency of one message over a 3-hop line under each discipline *)
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let c = Topology.add_node t "c" in
  let d = Topology.add_node t "d" in
  let ab = Topology.add_channel t a b in
  let bc = Topology.add_channel t b c in
  let cd = Topology.add_channel t c d in
  let line =
    Routing.create ~name:"line" t (fun input _ ->
        match input with
        | Routing.Inject n -> if n = a then Some ab else None
        | Routing.From ch -> if ch = ab then Some bc else if ch = bc then Some cd else None)
  in
  let finish config =
    match Engine.run ~config line [ Schedule.message ~length:4 "m" a d ] with
    | Engine.All_delivered { finished_at; _ } -> finished_at
    | _ -> max_int
  in
  let wh = finish Engine.default_config in
  let vct = finish { Engine.default_config with buffer_capacity = 4 } in
  let saf =
    finish
      { Engine.default_config with buffer_capacity = 4; discipline = Engine.Store_and_forward }
  in
  Format.fprintf ppf "3-hop line, 4 flits: wormhole %d, cut-through %d, store-and-forward %d@\n"
    wh vct saf;
  (* a cyclic-CDG substrate deadlocks under every discipline *)
  let r = Builders.ring ~unidirectional:true 4 in
  let rr = Ring_routing.clockwise r in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:3 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  let vct_ring =
    Engine.is_deadlock (Engine.run ~config:{ Engine.default_config with buffer_capacity = 8 } rr sched)
  in
  Format.fprintf ppf "ring-4 under cut-through buffers: %s@\n"
    (if vct_ring then "deadlock (buffer cycle)" else "delivered");
  (* the Figure-1 false resource cycle survives the switch to cut-through *)
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let extra = if quick then [ -2; -1; 0 ] else [ -2; -1; 0; 1 ] in
  let templates = List.map (fun i -> Explorer.intent_template ~extra net i) net.intents in
  let sp =
    { (Explorer.default_space templates) with
      buffers = [ 8 ];
      priorities = (if quick then Explorer.Follow_order else Explorer.All_permutations) }
  in
  let v = Explorer.explore rt sp in
  describe_search net.topo ppf v;
  [
    row "SW/latency-order" "wormhole = cut-through < store-and-forward latency"
      (Printf.sprintf "%d = %d < %d" wh vct saf)
      (wh = vct && vct < saf);
    row "SW/vct-ring" "cut-through buffering does not rescue a cyclic-CDG substrate"
      (if vct_ring then "still deadlocks" else "delivered") vct_ring;
    row "SW/fig1-vct"
      "the Figure-1 cycle remains unreachable under virtual cut-through (the \
       unreachable-configuration theory generalizes beyond wormhole)"
      (match v with
      | Explorer.No_deadlock { runs } -> Printf.sprintf "no deadlock in %d runs" runs
      | Explorer.Deadlock_found { runs; _ } -> Printf.sprintf "DEADLOCK after %d runs" runs)
      (not (Explorer.is_deadlock_found v));
  ]

(* ---- EXP-SW1: the switching-discipline matrix ---- *)

let exp_sw1 ?(quick = false) ppf =
  header ppf "EXP-SW1: discipline matrix (wormhole / cut-through / SAF, deadlock taxonomy)";
  (* every run below pins its own [config.discipline]; the process-wide
     --discipline override (meant for whole-campaign sweeps) would collapse
     the matrix to one column, so it is suspended for the duration *)
  let saved = Engine.discipline_override () in
  Engine.set_discipline_override None;
  Fun.protect ~finally:(fun () -> Engine.set_discipline_override saved) @@ fun () ->
  let disciplines =
    [ Engine.Wormhole; Engine.Virtual_cut_through; Engine.Store_and_forward ]
  in
  let max_len sched =
    List.fold_left
      (fun acc (m : Schedule.message_spec) -> max acc m.Schedule.ms_length)
      1 sched
  in
  (* SAF refuses capacity below the longest message; provision it the way
     the process-wide override does, leaving the other disciplines at the
     workload's own capacity *)
  let config_for d base sched =
    let cap =
      match d with
      | Engine.Store_and_forward -> max base (max_len sched)
      | Engine.Wormhole | Engine.Virtual_cut_through -> base
    in
    { Engine.default_config with buffer_capacity = cap; discipline = d }
  in
  let show = function
    | Engine.All_delivered { finished_at; _ } ->
      Printf.sprintf "all delivered by cycle %d" finished_at
    | Engine.Deadlock d ->
      Printf.sprintf "deadlock (%s) at cycle %d"
        (Engine.deadlock_class_string d.Engine.d_class)
        d.Engine.d_cycle
    | Engine.Cutoff { at; _ } -> Printf.sprintf "cutoff at cycle %d" at
    | Engine.Recovered { finished_at; _ } -> Printf.sprintf "recovered by cycle %d" finished_at
  in
  let delivered = function Engine.All_delivered _ -> true | _ -> false in
  let classed k = function
    | Engine.Deadlock d -> d.Engine.d_class = k
    | _ -> false
  in
  (* one matrix row: run the workload under all three disciplines (the runs
     are independent, so fan out on the pool), print one line each *)
  let sweep name ?faults ?(base = 1) rt sched =
    let outs =
      Wr_pool.map
        (fun d ->
          let config =
            match faults with
            | None -> config_for d base sched
            | Some f -> { (config_for d base sched) with Engine.faults = f }
          in
          Engine.run ~config rt sched)
        disciplines
    in
    List.iter2
      (fun d o ->
        Format.fprintf ppf "%-14s %-19s %s@\n" name (Engine.discipline_string d) (show o))
      disciplines outs;
    match outs with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let matrix3 a b c = Printf.sprintf "wh %s / vct %s / saf %s" (show a) (show b) (show c) in
  (* -- the Figure-2 witness (Theorem 4: a real deadlock through a false
     resource cycle's shared channel) replayed under each discipline -- *)
  let net2 = Paper_nets.figure2 () in
  let rt2 = Cd_algorithm.of_net net2 in
  let w2 =
    match search_net ~quick:true net2 rt2 with
    | Explorer.Deadlock_found { witness; _ } -> witness
    | Explorer.No_deadlock _ -> failwith "EXP-SW1: figure-2 witness sweep found no deadlock"
  in
  let fig2_wh, fig2_vct, fig2_saf =
    let outs =
      Wr_pool.map
        (fun d ->
          let base = w2.Explorer.w_config.Engine.buffer_capacity in
          let cap =
            match d with
            | Engine.Store_and_forward -> max base (max_len w2.Explorer.w_schedule)
            | Engine.Wormhole | Engine.Virtual_cut_through -> base
          in
          Engine.run
            ~config:
              { w2.Explorer.w_config with Engine.discipline = d; buffer_capacity = cap }
            rt2 w2.Explorer.w_schedule)
        disciplines
    in
    List.iter2
      (fun d o ->
        Format.fprintf ppf "%-14s %-19s %s@\n" "fig2-witness" (Engine.discipline_string d)
          (show o))
      disciplines outs;
    match outs with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  (* -- a true channel cycle: the unidirectional ring under tornado -- *)
  let ring = Builders.ring ~unidirectional:true 4 in
  let ring_rt = Ring_routing.clockwise ring in
  let tornado_sched =
    List.init 4 (fun i -> Schedule.message ~length:3 (Printf.sprintf "t%d" i) i ((i + 2) mod 4))
  in
  let ring_wh, ring_vct, ring_saf = sweep "ring-tornado" ring_rt tornado_sched in
  (* -- local deadlock: an early 1-hop message drains before the tornado
     messages (injected at cycle 4) close the knot -- *)
  let local_sched =
    Schedule.message ~length:1 "early" 0 1
    :: List.init 4 (fun i ->
           Schedule.message ~length:3 ~at:4 (Printf.sprintf "t%d" i) i ((i + 2) mod 4))
  in
  let local_wh, local_vct, local_saf = sweep "ring-local" ring_rt local_sched in
  (* -- weak deadlock: a permanently failed channel parks a lone worm with
     no wait cycle at all (recovery off, so it is reported as Deadlock) -- *)
  let lt = Topology.create () in
  let la = Topology.add_node lt "a" in
  let lb = Topology.add_node lt "b" in
  let lc = Topology.add_node lt "c" in
  let lab = Topology.add_channel lt la lb in
  let lbc = Topology.add_channel lt lb lc in
  let line_rt =
    Routing.create ~name:"line3" lt (fun input _ ->
        match input with
        | Routing.Inject n -> if n = la then Some lab else None
        | Routing.From ch -> if ch = lab then Some lbc else None)
  in
  let weak_faults = Fault.make [ Fault.Link_failure { channel = lbc; at = 0 } ] in
  let weak_sched = [ Schedule.message ~length:2 "w" la lc ] in
  let weak_wh, weak_vct, weak_saf =
    sweep "line-fault" ~faults:weak_faults line_rt weak_sched
  in
  (* -- classic substrates: acyclic CDGs deliver everywhere, the torus
     wrap-around cycle deadlocks everywhere -- *)
  let mesh = Builders.mesh [ 4; 4 ] in
  let mesh_sched =
    Traffic.permutation_schedule (Traffic.transpose mesh) ~coords:mesh ~length:4
  in
  let mesh_wh, mesh_vct, mesh_saf =
    sweep "mesh-transpose" (Dimension_order.mesh mesh) mesh_sched
  in
  let torus = Builders.torus [ 5; 5 ] in
  let torus_sched =
    Traffic.permutation_schedule (Traffic.tornado torus) ~coords:torus ~length:8
  in
  let torus_wh, torus_vct, torus_saf =
    sweep "torus-tornado" (Dimension_order.torus torus) torus_sched
  in
  let cube = Builders.hypercube 3 in
  let cube_sched =
    Traffic.permutation_schedule (Traffic.bit_complement cube) ~coords:cube ~length:4
  in
  let cube_wh, cube_vct, cube_saf =
    sweep "hypercube-bc" (Dimension_order.hypercube cube) cube_sched
  in
  (* -- the Figure-1 false resource cycle: its designated messages deliver
     under every discipline (quick check; exp-sw sweeps the adversarial
     space under cut-through provisioning) -- *)
  let net1 = Paper_nets.figure1 () in
  let rt1 = Cd_algorithm.of_net net1 in
  let fig1_sched =
    List.map
      (fun (it : Paper_nets.intent) -> Schedule.message ~length:4 it.i_label it.i_src it.i_dst)
      net1.Paper_nets.intents
  in
  let fig1_wh, fig1_vct, fig1_saf = sweep "fig1-intents" rt1 fig1_sched in
  ignore quick;
  [
    row "SW1/fig2-wormhole" "the Figure-2 witness deadlocks under wormhole (Theorem 4)"
      (show fig2_wh)
      (classed Engine.Global fig2_wh);
    row "SW1/fig2-vct"
      "whole-packet buffers defuse the Figure-2 witness: the deadlock needs a worm \
       stretched across the shared channel (verdict FLIPS)"
      (show fig2_vct) (delivered fig2_vct);
    row "SW1/fig2-saf"
      "store-and-forward also defuses the Figure-2 witness (verdict FLIPS)"
      (show fig2_saf) (delivered fig2_saf);
    row "SW1/ring-tornado"
      "a true channel cycle (Theorem 2) deadlocks globally under every discipline \
       (verdict HOLDS)"
      (matrix3 ring_wh ring_vct ring_saf)
      (classed Engine.Global ring_wh && classed Engine.Global ring_vct
      && classed Engine.Global ring_saf);
    row "SW1/ring-local"
      "an early drained message turns the same wedge into a local deadlock under \
       every discipline"
      (matrix3 local_wh local_vct local_saf)
      (classed Engine.Local local_wh && classed Engine.Local local_vct
      && classed Engine.Local local_saf);
    row "SW1/line-weak"
      "a fault-parked worm is a weak deadlock (no wait cycle: a drain order exists) \
       under every discipline"
      (matrix3 weak_wh weak_vct weak_saf)
      (classed Engine.Weak weak_wh && classed Engine.Weak weak_vct
      && classed Engine.Weak weak_saf);
    row "SW1/mesh-xy" "the acyclic mesh XY CDG delivers under every discipline"
      (matrix3 mesh_wh mesh_vct mesh_saf)
      (delivered mesh_wh && delivered mesh_vct && delivered mesh_saf);
    row "SW1/torus-tornado"
      "the torus wrap-around cycle deadlocks under every discipline: buffers cannot \
       break a genuine cyclic channel dependency (verdict HOLDS)"
      (matrix3 torus_wh torus_vct torus_saf)
      (classed Engine.Global torus_wh && classed Engine.Global torus_vct
      && classed Engine.Global torus_saf);
    row "SW1/hypercube-ecube" "the acyclic hypercube e-cube CDG delivers under every discipline"
      (matrix3 cube_wh cube_vct cube_saf)
      (delivered cube_wh && delivered cube_vct && delivered cube_saf);
    row "SW1/fig1-intents"
      "the Figure-1 designated messages deliver under every discipline (the false \
       resource cycle stays unreachable)"
      (matrix3 fig1_wh fig1_vct fig1_saf)
      (delivered fig1_wh && delivered fig1_vct && delivered fig1_saf);
  ]

(* ---- Adaptive routing (Section-7 outlook) ---- *)

let exp_a ?(quick = false) ppf =
  header ppf "EXP-A: adaptive routing (Section 7: cycles vs. escape channels)";
  let mesh1 = Builders.mesh [ 4; 4 ] in
  let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
  let fully = Adaptive.fully_adaptive_minimal mesh1 in
  let duato = Adaptive.duato_mesh mesh2 in
  let escape = Adaptive.escape_of_duato_mesh mesh2 in
  (* adaptive CDG of the unrestricted algorithm is cyclic *)
  let edges = Adaptive.cdg_edges fully in
  let nchan = Topology.num_channels mesh1.Builders.topo in
  let succs = Array.make nchan [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
  let fully_cyclic = Scc.has_cycle ~n:nchan ~succ:(fun c -> succs.(c)) in
  Format.fprintf ppf "fully-adaptive-minimal: %d adaptive dependencies, cyclic=%b@\n"
    (List.length edges) fully_cyclic;
  let r = Duato.check duato ~escape in
  Format.fprintf ppf "duato-mesh: %a@\n" Duato.pp r;
  (* stress the certified design in the adaptive engine *)
  let rng = Rng.create 9 in
  let pattern = Traffic.uniform rng mesh2 in
  let horizon = if quick then 120 else 400 in
  let sched =
    Traffic.bernoulli_schedule rng pattern ~coords:mesh2 ~rate:0.08 ~length:5 ~horizon
  in
  let delivered =
    match Adaptive_engine.run duato sched with
    | Adaptive_engine.All_delivered { finished_at; messages } ->
      Format.fprintf ppf "stress: %d messages delivered by cycle %d@\n"
        (List.length messages) finished_at;
      true
    | o ->
      Format.fprintf ppf "stress: %a@\n" (Engine.pp_outcome mesh2.Builders.topo) o;
      false
  in
  [
    row "A/fully-cyclic" "unrestricted adaptive routing has a cyclic (adaptive) CDG"
      (if fully_cyclic then "cyclic" else "acyclic") fully_cyclic;
    row "A/duato-certified"
      "Duato escape condition certifies the two-class design (connected escape + acyclic \
       extended CDG)"
      (Printf.sprintf "connected=%b acyclic=%b (%d direct + %d indirect deps)"
         r.Duato.escape_connected r.Duato.extended_acyclic r.Duato.direct_edges
         r.Duato.indirect_edges)
      r.Duato.deadlock_free;
    row "A/stress" "the certified design delivers under heavy adaptive traffic"
      (if delivered then "all delivered" else "failed") delivered;
  ]

(* ---- Fault injection and recovery (robustness extension) ---- *)

let exp_fault ?(quick = false) ?(detect = false) ppf =
  header ppf "EXP-FR: fault injection and recovery (paper networks under faults)";
  (* [detect] swaps the plain watchdog for online detection with the same
     32-cycle no-progress backstop: acyclic fault wedges (a worm parked on a
     failed link emits no wait cycle) time out on the same schedule, so the
     claim verdicts must be preserved; genuine knots are handled by the
     detector instead. *)
  let trigger =
    if detect then Engine.Detect { Obs_detect.default_config with Obs_detect.backstop = 32 }
    else Engine.Watchdog 32
  in
  if detect then
    Format.fprintf ppf "(online detection armed: bound %d, backstop 32, minimal victim)@\n"
      Obs_detect.default_config.Obs_detect.bound;
  let recovery = { Engine.default_recovery with trigger; retry_limit = 4; backoff = 8 } in
  let intents_schedule net =
    List.map
      (fun (it : Paper_nets.intent) -> Schedule.message ~length:4 it.i_label it.i_src it.i_dst)
      net.Paper_nets.intents
  in
  (* one-line outcome summaries for the claims table *)
  let brief = function
    | Engine.All_delivered { finished_at; messages } ->
      Printf.sprintf "all %d delivered by cycle %d" (List.length messages) finished_at
    | Engine.Recovered { finished_at; stats; _ } ->
      let count f = List.length (List.filter (fun s -> s.Engine.t_fate = f) stats) in
      Printf.sprintf "recovered by cycle %d: %d delivered, %d dropped, %d gave up, %d retries"
        finished_at (count Engine.Delivered) (count Engine.Dropped) (count Engine.Gave_up)
        (List.fold_left (fun acc s -> acc + s.Engine.t_retries) 0 stats)
    | Engine.Deadlock d -> Printf.sprintf "deadlock at cycle %d" d.Engine.d_cycle
    | Engine.Cutoff { at; _ } -> Printf.sprintf "cutoff at cycle %d" at
  in
  (* 1. seeded random fault campaigns on the figure networks: recovery with
     a retry cap must terminate every run, deterministically *)
  let nets =
    if quick then [ ("figure1", Paper_nets.figure1 ()) ]
    else
      [ ("figure1", Paper_nets.figure1 ()); ("figure2", Paper_nets.figure2 ());
        ("figure3c", Paper_nets.figure3 `C); ("figure3f", Paper_nets.figure3 `F) ]
  in
  (* each net's seeded campaign is independent: simulate on the pool, then
     print and build the claim rows in order *)
  let campaign =
    Wr_pool.map
      (fun (name, net) ->
        let rt = Cd_algorithm.of_net net in
        let sched = intents_schedule net in
        let rng = Rng.create 7 in
        let faults =
          Fault.random ~link_failures:1 ~stalls:2 ~max_stall:16 ~horizon:15 rng
            net.Paper_nets.topo
        in
        let config = { Engine.default_config with faults; recovery = Some recovery } in
        let out = Engine.run ~config rt sched in
        let replay = Engine.run ~config rt sched in
        (name, net, faults, out, replay))
      nets
  in
  let campaign_rows =
    List.map
      (fun (name, net, faults, out, replay) ->
        Format.fprintf ppf "%s under %a:@\n  %a@\n" name (Fault.pp net.Paper_nets.topo) faults
          (Engine.pp_outcome net.Paper_nets.topo) out;
        let bounded =
          match out with
          | Engine.All_delivered _ -> true
          | Engine.Recovered { stats; _ } ->
            List.for_all
              (fun (s : Engine.retry_stat) -> s.t_retries <= recovery.Engine.retry_limit + 1)
              stats
          | Engine.Deadlock _ | Engine.Cutoff _ -> false
        in
        row (Printf.sprintf "FR/%s" name)
          "seeded faults + recovery terminate deterministically with bounded retries"
          (brief out ^ if out = replay then "" else " [REPLAY DIVERGED]")
          (bounded && out = replay))
      campaign
  in
  (* 2. recovery disabled: a permanent failure on a used channel blocks the
     run permanently, reported exactly like a protocol deadlock.  Failing
     the last hop of M1's path wedges M1 mid-network, holding channels the
     other messages need. *)
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let sched = intents_schedule net in
  let victim_channel =
    match net.Paper_nets.intents with
    | it :: _ -> List.nth it.Paper_nets.i_path (List.length it.Paper_nets.i_path - 1)
    | [] -> assert false
  in
  let kill = Fault.make [ Fault.Link_failure { channel = victim_channel; at = 0 } ] in
  let out_off = Engine.run ~config:{ Engine.default_config with faults = kill } rt sched in
  Format.fprintf ppf "figure1, recovery off, %s failed at 0:@\n  %a@\n"
    (Topology.channel_name net.topo victim_channel)
    (Engine.pp_outcome net.topo) out_off;
  let off_row =
    row "FR/no-recovery"
      "with recovery disabled a permanent failure is reported as a deadlock"
      (brief out_off) (Engine.is_deadlock out_off)
  in
  (* 3. same scenario with recovery but no reroute: the victim retries its
     unusable path, exhausts the cap and gives up; the rest deliver *)
  let out_cap =
    Engine.run
      ~config:{ Engine.default_config with faults = kill; recovery = Some recovery }
      rt sched
  in
  Format.fprintf ppf "figure1, recovery on (no reroute):@\n  %a@\n"
    (Engine.pp_outcome net.topo) out_cap;
  let cap_row =
    row "FR/retry-cap" "without a reroute the victim gives up after the retry cap"
      (brief out_cap)
      (match out_cap with
      | Engine.Recovered { stats; _ } ->
        List.exists
          (fun (s : Engine.retry_stat) ->
            s.t_fate = Engine.Gave_up && s.t_retries = recovery.Engine.retry_limit + 1)
          stats
      | _ -> false)
  in
  (* 4. graceful degradation on a regular substrate: fail one mesh channel,
     re-certify the avoiding routing, and recover all traffic through it *)
  let coords = Builders.mesh [ 4; 4 ] in
  let mrt = Dimension_order.mesh coords in
  let mtopo = coords.Builders.topo in
  let failed = List.hd (Routing.path_exn mrt 0 15) in
  let degrade_rows =
    match Degrade.reroute ~quick ~failed:[ failed ] mrt with
    | Error e ->
      [ row "FR/degrade" "degraded mesh routing is re-certified deadlock-free"
          ("reroute failed: " ^ e) false ]
    | Ok d ->
      Format.fprintf ppf "%a@\n" Degrade.pp d;
      let sched =
        [ Schedule.message ~length:4 "across" 0 15; Schedule.message ~length:4 "back" 15 0 ]
      in
      let config =
        {
          Engine.default_config with
          faults = Fault.make [ Fault.Link_failure { channel = failed; at = 0 } ];
          recovery = Some { recovery with reroute = Some d.Degrade.routing };
        }
      in
      let out = Engine.run ~config mrt sched in
      Format.fprintf ppf "4x4 mesh, %s failed, certified reroute:@\n  %a@\n"
        (Topology.channel_name mtopo failed)
        (Engine.pp_outcome mtopo) out;
      let all_delivered_after_retry =
        match out with
        | Engine.Recovered { stats; _ } ->
          List.for_all (fun (s : Engine.retry_stat) -> s.t_fate = Engine.Delivered) stats
        | Engine.All_delivered _ -> true
        | _ -> false
      in
      [
        row "FR/degrade" "degraded mesh routing is re-certified deadlock-free"
          (Format.asprintf "%a" Degrade.pp d)
          (Degrade.certified d);
        row "FR/reroute" "with a certified reroute every message survives the failure"
          (brief out) all_delivered_after_retry;
      ]
  in
  campaign_rows @ [ off_row; cap_row ] @ degrade_rows

(* ---- Online deadlock detection (robustness extension) ---- *)

let exp_detect ?(quick = false) ppf =
  ignore quick;
  header ppf "EXP-D1: online deadlock detection vs. the no-progress watchdog";
  let dcfg = Obs_detect.default_config in
  let watchdog_recovery = { Engine.default_recovery with trigger = Engine.Watchdog 32 } in
  let detect_recovery = { Engine.default_recovery with trigger = Engine.Detect dcfg } in
  (* Two deterministic ground-truth deadlock workloads: the Figure-2
     explorer witness (the Theorem-4 knot) and tornado permutation traffic
     on the 5x5 torus, whose wrap-around channels close a wait cycle under
     plain dimension-order routing. *)
  let fig2_workload =
    let net = Paper_nets.figure2 () in
    let rt = Cd_algorithm.of_net net in
    let templates =
      List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents
    in
    match Explorer.explore rt (Explorer.default_space templates) with
    | Explorer.No_deadlock _ -> None
    | Explorer.Deadlock_found { witness = w; _ } ->
      Some ("figure2-witness", net.Paper_nets.topo, rt, w.Explorer.w_schedule,
            w.Explorer.w_config)
  in
  let tornado_workload =
    let torus = Builders.torus [ 5; 5 ] in
    let rt = Dimension_order.torus torus in
    let sched = Traffic.permutation_schedule (Traffic.tornado torus) ~coords:torus ~length:8 in
    Some ("torus5x5-tornado", torus.Builders.topo, rt, sched, Engine.default_config)
  in
  let observed_run ~recovery rt sched config =
    let sink, events = Obs.recorder () in
    let out = Engine.run ~config:{ config with Engine.recovery } ~obs:sink rt sched in
    (out, events ())
  in
  let abort_count events =
    List.length (List.filter (function Obs_event.Abort _ -> true | _ -> false) events)
  in
  let first_detection events =
    List.find_map
      (function Obs_event.Deadlock_detected { cycle; _ } -> Some cycle | _ -> None)
      events
  in
  let delivered_labels = function
    | Engine.All_delivered { messages; _ } | Engine.Cutoff { messages; _ } ->
      List.filter_map
        (fun (m : Engine.message_result) ->
          if m.r_delivered_at <> None then Some m.r_label else None)
        messages
    | Engine.Recovered { stats; _ } ->
      List.filter_map
        (fun (s : Engine.retry_stat) ->
          if s.t_fate = Engine.Delivered then Some s.t_label else None)
        stats
    | Engine.Deadlock _ -> []
  in
  let per_workload =
    List.filter_map
      (fun w ->
        match w with
        | None -> None
        | Some (name, topo, rt, sched, config) ->
          (* ground truth: the unrecovered run must deadlock *)
          let truth = Engine.run ~config:{ config with Engine.recovery = None } rt sched in
          let knot_cycle =
            match truth with Engine.Deadlock d -> Some d.Engine.d_cycle | _ -> None
          in
          let det_out, det_events = observed_run ~recovery:(Some detect_recovery) rt sched config in
          let wd_out, wd_events = observed_run ~recovery:(Some watchdog_recovery) rt sched config in
          let detected = first_detection det_events in
          Format.fprintf ppf "%s: ground truth %s@\n" name
            (match truth with
            | Engine.Deadlock d -> Printf.sprintf "deadlock at cycle %d" d.Engine.d_cycle
            | o -> Engine.outcome_string o);
          Format.fprintf ppf "  detect   (bound %d): %a@\n    first detection %s, %d aborts@\n"
            dcfg.Obs_detect.bound (Engine.pp_outcome topo) det_out
            (match detected with Some c -> Printf.sprintf "at cycle %d" c | None -> "NEVER")
            (abort_count det_events);
          Format.fprintf ppf "  watchdog (32 cycles): %a@\n    %d aborts@\n"
            (Engine.pp_outcome topo) wd_out (abort_count wd_events);
          Some (name, knot_cycle, detected, det_out, wd_out, abort_count det_events,
                abort_count wd_events))
      [ fig2_workload; tornado_workload ]
  in
  let bound_rows =
    List.map
      (fun (name, knot_cycle, detected, _, _, _, _) ->
        let measured, ok =
          match (knot_cycle, detected) with
          | Some k, Some d ->
            ( Printf.sprintf "knot quiescent at cycle %d, detected at cycle %d (bound %d)" k d
                dcfg.Obs_detect.bound,
              d <= k + dcfg.Obs_detect.bound )
          | None, _ -> ("ground-truth run did not deadlock", false)
          | Some k, None -> (Printf.sprintf "knot at cycle %d NEVER detected" k, false)
        in
        row
          (Printf.sprintf "D1/%s-bound" name)
          "the detector confirms the ground-truth knot within the latency bound" measured ok)
      per_workload
  in
  let superset_rows =
    List.map
      (fun (name, _, _, det_out, wd_out, _, _) ->
        let det_set = delivered_labels det_out and wd_set = delivered_labels wd_out in
        let superset = List.for_all (fun l -> List.mem l det_set) wd_set in
        row
          (Printf.sprintf "D1/%s-delivery" name)
          "targeted recovery delivers every message the watchdog delivers"
          (Printf.sprintf "watchdog %d delivered, detect %d delivered%s" (List.length wd_set)
             (List.length det_set)
             (if superset then "" else " [LOST MESSAGES]"))
          superset)
      per_workload
  in
  let fewer_row =
    let briefs =
      List.map
        (fun (name, _, _, _, _, da, wa) -> Printf.sprintf "%s %d vs %d" name da wa)
        per_workload
    in
    row "D1/fewer-aborts"
      "minimal-victim recovery aborts strictly fewer messages than the watchdog on at least \
       one deadlocking workload"
      (Printf.sprintf "aborts (detect vs watchdog): %s" (String.concat ", " briefs))
      (per_workload <> []
      && List.exists (fun (_, _, _, _, _, da, wa) -> da < wa) per_workload)
  in
  bound_rows @ superset_rows @ [ fewer_row ]

(* ---- wormlint self-check ---- *)

let exp_lint ?(quick = false) ppf =
  ignore quick;
  header ppf "EXP-LINT: static analysis over the registry and the defect corpus";
  let entries = Registry.entries () in
  let lint_results =
    List.map
      (fun (e : Registry.entry) ->
        let topo = Registry.topology e in
        let diags = Registry.lint e in
        (e, topo, diags))
      entries
  in
  List.iter
    (fun ((e : Registry.entry), topo, diags) ->
      Format.fprintf ppf "%s: %d error(s), %d warning(s), %d info@\n" e.Registry.r_name
        (Diagnostic.count Diagnostic.Error diags)
        (Diagnostic.count Diagnostic.Warning diags)
        (Diagnostic.count Diagnostic.Info diags);
      List.iter
        (fun d ->
          if Diagnostic.is_error d then
            Format.fprintf ppf "  %a@\n" (Diagnostic.pp ~topo ()) d)
        diags)
    lint_results;
  let offending =
    List.filter (fun (_, _, diags) -> Diagnostic.errors diags <> []) lint_results
  in
  let corpus = Corpus.entries () in
  let corpus_failures =
    List.filter_map
      (fun (c : Corpus.entry) ->
        match Corpus.check c with
        | Ok () -> None
        | Error msg -> Some (c.Corpus.c_name, msg))
      corpus
  in
  List.iter
    (fun (name, msg) -> Format.fprintf ppf "corpus %s: FAILED (%s)@\n" name msg)
    corpus_failures;
  let codes =
    List.sort_uniq compare (List.map (fun (c : Corpus.entry) -> c.Corpus.c_expected) corpus)
  in
  Format.fprintf ppf "corpus: %d seeded defects over %d distinct codes (%s)@\n"
    (List.length corpus) (List.length codes) (String.concat " " codes);
  [
    row "LINT/registry" "every shipped algorithm lints with zero E-severity diagnostics"
      (Printf.sprintf "%d algorithms, %d with errors" (List.length lint_results)
         (List.length offending))
      (offending = []);
    row "LINT/corpus" "every seeded defect is flagged exactly once by its expected code"
      (Printf.sprintf "%d/%d corpus entries pass"
         (List.length corpus - List.length corpus_failures)
         (List.length corpus))
      (corpus_failures = []);
    row "LINT/coverage" "the corpus exercises at least 8 distinct lint codes"
      (Printf.sprintf "%d distinct codes" (List.length codes))
      (List.length codes >= 8);
  ]

(* ---- synthesis existence checker vs exhaustive search (EXP-SY1) ---- *)

(* Pinned multiplicative-congruential generator so the random digraphs are
   identical across runs, machines and domain counts (stdlib Random is
   off-limits here: its algorithm is an implementation detail). *)
let sy_rng seed =
  let state = ref (((seed * 2654435761) + 1) land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

(* Unidirectional ring backbone (strong connectivity for free) plus
   [chords] random extra channels: with no chords the network is the
   paper's under-provisioned ring (impossible); chords progressively
   unlock valley orders, so the sample exercises both verdicts. *)
let sy_random_digraph ~seed ~n ~chords =
  let rand = sy_rng seed in
  let t = Topology.create () in
  let nodes = Array.init n (fun i -> Topology.add_node t (Printf.sprintf "v%d" i)) in
  Array.iteri (fun i u -> ignore (Topology.add_channel t u nodes.((i + 1) mod n))) nodes;
  let added = ref 0 and attempts = ref 0 in
  while !added < chords && !attempts < chords * 8 do
    incr attempts;
    let i = rand n in
    let j = rand n in
    if i <> j && Topology.find_channel t nodes.(i) nodes.(j) = None then begin
      ignore (Topology.add_channel t nodes.(i) nodes.(j));
      incr added
    end
  done;
  t

let exp_synth ?(quick = false) ppf =
  header ppf "EXP-SY1: routing-existence checker vs exhaustive search";
  (* one work item per network; every item runs on the pool and returns
     (report text, row), so the printed report and the claim rows keep
     input order at any domain count *)
  let figure_item (name, net) () =
    let buf = Buffer.create 256 in
    let bpf = Format.formatter_of_buffer buf in
    let topo = net.Paper_nets.topo in
    let result =
      match Synth.synthesize ~name:(name ^ "-synth") topo with
      | Error w ->
        Format.fprintf bpf "%s: IMPOSSIBLE (%a) -- but the paper routes it@\n" name
          (Synth.pp_witness topo) w;
        None
      | Ok (rt, plan) ->
        let report = Verify.analyze ~quick:true rt in
        let certified =
          match report.Verify.conclusion with Verify.Deadlock_free _ -> true | _ -> false
        in
        let templates =
          List.map
            (fun (i : Paper_nets.intent) ->
              Explorer.minimal_length_template rt i.Paper_nets.i_label i.Paper_nets.i_src
                i.Paper_nets.i_dst)
            net.Paper_nets.intents
        in
        let space =
          let base = Explorer.default_space templates in
          if quick then
            { base with Explorer.buffers = [ 1 ]; priorities = Explorer.Follow_order }
          else base
        in
        let v = Explorer.explore rt space in
        let runs =
          match v with
          | Explorer.No_deadlock { runs } -> runs
          | Explorer.Deadlock_found { runs; _ } -> runs
        in
        Format.fprintf bpf "%s: exists via %s; Verify %s; sweep %s in %d runs@\n" name
          plan.Synth.p_strategy
          (if certified then "Deadlock_free" else "NOT deadlock-free")
          (if Explorer.is_deadlock_found v then "DEADLOCK" else "no deadlock")
          runs;
        Some (plan, certified, v, runs)
    in
    Format.pp_print_flush bpf ();
    let measured, ok =
      match result with
      | None -> ("checker says impossible", false)
      | Some (plan, certified, v, runs) ->
        ( Printf.sprintf "exists via %s; certified %b; no deadlock in %d runs"
            plan.Synth.p_strategy certified runs,
          certified && not (Explorer.is_deadlock_found v) )
    in
    ( Buffer.contents buf,
      [
        row
          (Printf.sprintf "SY1/%s" name)
          "checker and exhaustive sweep agree: a deadlock-free routing exists and the \
           synthesized one survives the adversary"
          measured ok;
      ] )
  in
  let ring_item n () =
    let buf = Buffer.create 256 in
    let bpf = Format.formatter_of_buffer buf in
    let topo = (Builders.ring ~unidirectional:true n).Builders.topo in
    let impossible_ok, witness_desc =
      match Synth.check topo with
      | Synth.Exists plan -> (false, "EXISTS via " ^ plan.Synth.p_strategy)
      | Synth.Impossible w ->
        Format.fprintf bpf "ring-uni-%d: impossible; %a@\n" n (Synth.pp_witness topo) w;
        let checked = Synth.check_witness topo w in
        let desc =
          match w with
          | Synth.Forced_corner_cycle { w_cycle; _ } ->
            Printf.sprintf "forced corner cycle of %d channels, witness %s"
              (List.length w_cycle)
              (if checked then "checks" else "REJECTED")
          | _ -> "unexpected witness shape"
        in
        (checked && (match w with Synth.Forced_corner_cycle _ -> true | _ -> false), desc)
    in
    let family = Synth.greedy_family topo in
    let sweep_results =
      List.map
        (fun rt ->
          let templates =
            List.init n (fun s ->
                Explorer.minimal_length_template rt (Printf.sprintf "m%d" s) s
                  ((s + n - 1) mod n))
          in
          let v = Explorer.explore rt (Explorer.default_space templates) in
          Format.fprintf bpf "  family member %s: %a@\n" (Routing.name rt)
            (Explorer.pp_verdict topo) v;
          Explorer.is_deadlock_found v)
        family
    in
    Format.pp_print_flush bpf ();
    let all_deadlock = family <> [] && List.for_all Fun.id sweep_results in
    ( Buffer.contents buf,
      [
        row
          (Printf.sprintf "SY1/ring-uni-%d" n)
          "an under-provisioned unidirectional ring admits no deadlock-free routing, and \
           every member of the bounded routing family deadlocks"
          (Printf.sprintf "%s; %d-member family all deadlock: %b" witness_desc
             (List.length family) all_deadlock)
          (impossible_ok && all_deadlock);
      ] )
  in
  let random_specs =
    (* (seed, nodes, chords): chords 0 pins the impossible side, larger
       counts let valley orders succeed; the split below is asserted so a
       checker regression that collapses to one verdict fails the claim *)
    let full =
      [
        (1, 4, 0); (2, 4, 2); (3, 4, 4); (4, 5, 0); (5, 5, 3); (6, 5, 6);
        (7, 6, 2); (8, 6, 5); (9, 6, 8); (10, 5, 1);
      ]
    in
    if quick then [ (1, 4, 0); (2, 4, 2); (5, 5, 3); (9, 6, 8) ] else full
  in
  let random_item (seed, n, chords) () =
    let buf = Buffer.create 256 in
    let bpf = Format.formatter_of_buffer buf in
    let topo = sy_random_digraph ~seed ~n ~chords in
    let label = Printf.sprintf "digraph(seed=%d,n=%d,chords=%d)" seed n chords in
    let verdict_ok, verdict =
      match Synth.synthesize ~name:label topo with
      | Ok (rt, plan) ->
        let report = Verify.analyze ~quick:true rt in
        let certified =
          match report.Verify.conclusion with Verify.Deadlock_free _ -> true | _ -> false
        in
        let clean =
          List.for_all
            (fun d -> not (Diagnostic.is_error d))
            (Synth.diagnostics ~name:label topo (Ok (rt, plan)))
        in
        Format.fprintf bpf "%s: exists via %s; certified %b@\n" label plan.Synth.p_strategy
          certified;
        (certified && clean, `Exists)
      | Error w ->
        let checked = Synth.check_witness topo w in
        (* dynamic counterpart, cheap and sound: with no acyclic connector,
           no valid greedy member may have an acyclic CDG *)
        let family = Synth.greedy_family topo in
        let none_acyclic =
          List.for_all (fun rt -> not (Cdg.is_acyclic (Cdg.build rt))) family
        in
        Format.fprintf bpf "%s: impossible (%a); witness checks %b; %d family members, \
                            none with acyclic CDG: %b@\n"
          label (Synth.pp_witness topo) w checked (List.length family) none_acyclic;
        (checked && none_acyclic, `Impossible)
    in
    Format.pp_print_flush bpf ();
    (Buffer.contents buf, [ (label, verdict_ok, verdict) ])
  in
  let figure_nets =
    [
      ("figure1", Paper_nets.figure1 ());
      ("figure2", Paper_nets.figure2 ());
      ("figure3a", Paper_nets.figure3 `A);
      ("figure3f", Paper_nets.figure3 `F);
      ("family-2", Paper_nets.family 2);
    ]
    @ (if quick then [] else [ ("figure3b", Paper_nets.figure3 `B); ("figure3c", Paper_nets.figure3 `C); ("figure3d", Paper_nets.figure3 `D); ("figure3e", Paper_nets.figure3 `E) ])
  in
  let ring_sizes = if quick then [ 3; 4 ] else [ 3; 4; 5 ] in
  let fig_and_ring_items =
    List.map figure_item figure_nets @ List.map ring_item ring_sizes
  in
  (* one pool fan-out over every network; Wr_pool.map keeps input order *)
  let fig_ring_out = Wr_pool.map (fun item -> item ()) fig_and_ring_items in
  let random_out = Wr_pool.map (fun spec -> random_item spec ()) random_specs in
  List.iter (fun (text, _) -> Format.pp_print_string ppf text) fig_ring_out;
  List.iter (fun (text, _) -> Format.pp_print_string ppf text) random_out;
  let fig_ring_rows = List.concat_map snd fig_ring_out in
  let random_results = List.concat_map snd random_out in
  let n_exists =
    List.length (List.filter (fun (_, _, v) -> v = `Exists) random_results)
  in
  let n_impossible =
    List.length (List.filter (fun (_, _, v) -> v = `Impossible) random_results)
  in
  let bad = List.filter (fun (_, ok, _) -> not ok) random_results in
  Format.fprintf ppf "random digraphs: %d exist, %d impossible, %d disagreements@\n"
    n_exists n_impossible (List.length bad);
  let random_rows =
    [
      row "SY1/random-agreement"
        "on pinned random digraphs the checker verdict always agrees with the \
         certificate (exists) or the cyclic-CDG family sweep (impossible)"
        (Printf.sprintf "%d/%d digraphs agree%s" (List.length random_results - List.length bad)
           (List.length random_results)
           (match bad with [] -> "" | (l, _, _) :: _ -> "; first disagreement " ^ l))
        (bad = []);
      row "SY1/random-coverage" "the pinned sample exercises both verdicts"
        (Printf.sprintf "%d exists, %d impossible" n_exists n_impossible)
        (n_exists > 0 && n_impossible > 0);
    ]
  in
  fig_ring_rows @ random_rows

let all ?quick ppf =
  List.concat
    [
      exp_f1 ?quick ppf;
      exp_t2 ?quick ppf;
      exp_corollaries ?quick ppf;
      exp_t3 ?quick ppf;
      exp_t4 ?quick ppf;
      exp_t5 ?quick ppf;
      exp_g ?quick ppf;
      exp_s1 ?quick ppf;
      exp_s2 ?quick ppf;
      exp_mfm ?quick ppf;
      exp_a ?quick ppf;
      exp_sw ?quick ppf;
      exp_sw1 ?quick ppf;
      exp_mc ?quick ppf;
      exp_fault ?quick ppf;
      exp_detect ?quick ppf;
      exp_lint ?quick ppf;
      exp_synth ?quick ppf;
    ]

let summary_table rows =
  let table = Table.create [ "experiment"; "paper claim"; "measured"; "ok" ] in
  List.iter
    (fun r -> Table.add_row table [ r.x_id; r.x_claim; r.x_measured; (if r.x_ok then "yes" else "NO") ])
    rows;
  Table.render table

(* ---- Latency telemetry report (run_experiments --latency) ---- *)

let latency_report ?(quick = false) ppf =
  header ppf
    (Printf.sprintf "Latency (%s campaign, counters-first telemetry)"
       (if quick then "quick" else "full"));
  let mesh = Builders.mesh [ 8; 8 ] in
  let mesh_rt = Dimension_order.mesh mesh in
  let torus = Builders.torus [ 5; 5 ] in
  let torus_rt = Dimension_order.torus torus in
  let fig2 = Paper_nets.figure2 () in
  let fig2_rt = Cd_algorithm.of_net fig2 in
  let horizon = if quick then 300 else 1000 in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6 ] in
  (* every workload is a list of independent runs, each filling a private
     accumulator; the pool merges them in task-index order, so the whole
     report is byte-identical at any --domains count *)
  let merged nchan runs =
    Wr_pool.map_reduce
      ~map:(fun run ->
        let st = Obs_stats.create ~nchan in
        run st;
        st)
      ~reduce:(fun acc st ->
        Obs_stats.merge ~into:acc st;
        acc)
      ~init:(Obs_stats.create ~nchan) runs
  in
  let bernoulli coords rt pattern_of seed st =
    let rng = Rng.create seed in
    let pattern = pattern_of rng in
    let sched =
      Traffic.bernoulli_schedule rng pattern ~coords ~rate:0.02 ~length:4 ~horizon
    in
    ignore (Engine.run ~stats:st rt sched)
  in
  let workloads =
    [
      ( "figure2-cd",
        fig2.Paper_nets.topo,
        merged
          (Topology.num_channels fig2.Paper_nets.topo)
          [
            (fun st ->
              let sched =
                List.map
                  (fun (it : Paper_nets.intent) ->
                    Schedule.message ~length:4 it.i_label it.i_src it.i_dst)
                  fig2.Paper_nets.intents
              in
              ignore (Engine.run ~stats:st fig2_rt sched));
          ] );
      ( "mesh8x8-xy-uniform",
        mesh.Builders.topo,
        merged
          (Topology.num_channels mesh.Builders.topo)
          (List.map
             (fun seed -> bernoulli mesh mesh_rt (fun rng -> Traffic.uniform rng mesh) seed)
             seeds) );
      ( "mesh8x8-xy-transpose",
        mesh.Builders.topo,
        merged
          (Topology.num_channels mesh.Builders.topo)
          [ bernoulli mesh mesh_rt (fun _ -> Traffic.transpose mesh) 42 ] );
      ( "torus5x5-ecube-tornado",
        torus.Builders.topo,
        merged
          (Topology.num_channels torus.Builders.topo)
          [
            (fun st ->
              let sched =
                Traffic.permutation_schedule (Traffic.tornado torus) ~coords:torus
                  ~length:8
              in
              ignore (Engine.run ~stats:st torus_rt sched));
          ] );
    ]
  in
  let pct st q =
    if st.Obs_stats.st_delivered = 0 then "-"
    else
      let v = Obs_stats.percentile st q in
      if v >= st.Obs_stats.st_lat_max then string_of_int st.Obs_stats.st_lat_max
      else "<=" ^ string_of_int v
  in
  let table =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right ]
      [ "workload"; "runs"; "delivered"; "p50"; "p90"; "p99"; "max"; "max util" ]
  in
  List.iter
    (fun (name, _, st) ->
      let max_util = ref 0.0 in
      for c = 0 to st.Obs_stats.st_nchan - 1 do
        let u = Obs_stats.utilization st c in
        if u > !max_util then max_util := u
      done;
      Table.add_row table
        [
          name;
          string_of_int st.Obs_stats.st_runs;
          string_of_int st.Obs_stats.st_delivered;
          pct st 50.0;
          pct st 90.0;
          pct st 99.0;
          string_of_int st.Obs_stats.st_lat_max;
          Printf.sprintf "%.1f%%" (!max_util *. 100.0);
        ])
    workloads;
  Format.fprintf ppf "%s" (Table.render table);
  Format.fprintf ppf "@\ntop head-of-line blocking channels:@\n";
  let blocking =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "workload"; "channel"; "hol-cycles"; "wait-cycles" ]
  in
  let any = ref false in
  List.iter
    (fun (name, topo, st) ->
      List.iter
        (fun (c, hol) ->
          any := true;
          Table.add_row blocking
            [
              name;
              Topology.channel_name topo c;
              string_of_int hol;
              string_of_int st.Obs_stats.st_waited.(c);
            ])
        (Obs_stats.top_blocking ~k:3 st))
    workloads;
  if !any then Format.fprintf ppf "%s" (Table.render blocking)
  else Format.fprintf ppf "(no blocking recorded)@\n"
