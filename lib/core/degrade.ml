type certification =
  | Acyclic of int array
  | Cyclic_safe of string
  | Uncertified of string

type t = {
  routing : Routing.t;
  failed : Topology.channel list;
  certification : certification;
}

let certified t =
  match t.certification with Acyclic _ | Cyclic_safe _ -> true | Uncertified _ -> false

let reroute ?(quick = true) ?(use_search = true) ~failed base =
  match Routing.avoiding ~failed base with
  | exception Invalid_argument e -> Error e
  | routing -> (
    match Routing.validate routing with
    | Error e -> Error e
    | Ok () ->
      let cdg = Cdg.build routing in
      let certification =
        match Cdg.numbering cdg with
        | Some f -> Acyclic f
        | None -> (
          let report = Verify.analyze ~quick ~use_search routing in
          match report.Verify.conclusion with
          | Verify.Deadlock_free why -> Cyclic_safe why
          | Verify.Deadlocks why -> Uncertified ("confirmed deadlock: " ^ why)
          | Verify.Unknown why -> Uncertified ("undecided: " ^ why))
      in
      Ok { routing; failed; certification })

let pp ppf t =
  let topo = Routing.topology t.routing in
  Format.fprintf ppf "%s avoiding {%s}: " (Routing.name t.routing)
    (String.concat ", " (List.map (Topology.channel_name topo) t.failed));
  match t.certification with
  | Acyclic _ -> Format.pp_print_string ppf "re-certified (acyclic CDG, numbering exists)"
  | Cyclic_safe why -> Format.fprintf ppf "re-certified (cyclic CDG, %s)" why
  | Uncertified why -> Format.fprintf ppf "UNCERTIFIED: %s" why
