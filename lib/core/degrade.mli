(** Graceful degradation: route around failed channels, then re-certify.

    {!Routing.avoiding} produces a fresh oblivious algorithm whose
    deadlock-freedom is {e not} inherited from the base algorithm -- a
    detour can close a dependency cycle the original numbering excluded.
    [reroute] therefore re-runs the paper's verification pipeline on the
    degraded algorithm and attaches the strongest certificate it can find,
    so a recovery policy (see {!Engine.recovery}) only ever re-injects
    along routes that are re-certified deadlock-free or explicitly flagged
    as uncertified. *)

type certification =
  | Acyclic of int array
      (** the degraded CDG is acyclic; Dally-Seitz numbering certificate *)
  | Cyclic_safe of string
      (** cyclic CDG, but the Theorem 2-5 / search pipeline concluded
          deadlock-free; the string says why *)
  | Uncertified of string
      (** a confirmed deadlock, or undecided within budget; do not trust
          the degraded algorithm blindly *)

type t = {
  routing : Routing.t;  (** the {!Routing.avoiding} wrapper *)
  failed : Topology.channel list;
  certification : certification;
}

val reroute :
  ?quick:bool ->
  ?use_search:bool ->
  failed:Topology.channel list ->
  Routing.t ->
  (t, string) result
(** [reroute ~failed base] builds the avoiding wrapper, checks it still
    delivers every source/destination pair of the degraded network
    ({!Routing.validate}), and certifies it.  [Error] means some pair is
    undeliverable (network disconnected by the failures) or the wrapper is
    malformed; the message names the first failing pair.  [quick] and
    [use_search] are passed to {!Verify.analyze} when the CDG is cyclic
    (defaults [true] / [true]: trimmed search keeps reroute cheap enough
    for recovery paths). *)

val certified : t -> bool
(** [true] for [Acyclic] and [Cyclic_safe]. *)

val pp : Format.formatter -> t -> unit
