(** End-to-end deadlock-freedom analysis of an oblivious routing algorithm.

    The pipeline follows the paper's theory:

    + build the channel dependency graph;
    + if it is acyclic, the algorithm is deadlock-free (Dally-Seitz) and a
      numbering certificate is produced;
    + otherwise every elementary cycle is classified with Theorems 2-5 and
      Corollaries 1-3 (via {!Cycle_analysis.classify}), using the
      algorithm's checked properties (minimality, suffix-closure);
    + cycles the theorems call reachable, or leave undecided, are handed to
      the bounded-exhaustive schedule search, which either produces a
      replayable deadlock witness or exhausts the adversarial family.

    The headline of the paper is visible right here: the Cyclic Dependency
    algorithm comes back [Deadlock_free] {e with} a cyclic CDG. *)

type conclusion =
  | Deadlock_free of string  (** why: certificate or exhausted search *)
  | Deadlocks of string  (** a confirmed witness exists *)
  | Unknown of string  (** some cycle could not be decided within budget *)

type cycle_report = {
  cr_cycle : Topology.channel list;
  cr_verdict : Cycle_analysis.verdict;
  cr_searched : bool;
  cr_witness : Explorer.witness option;  (** present iff a deadlock was confirmed *)
  cr_search_runs : int;
}

type report = {
  algorithm : string;
  properties : (string * Properties.verdict) list;
  num_channels : int;
  num_dependencies : int;
  acyclic : bool;
  numbering : int array option;
  cycles : cycle_report list;
  conclusion : conclusion;
}

val analyze :
  ?use_search:bool -> ?quick:bool -> ?max_cycles_enumerated:int -> Routing.t -> report
(** [use_search] (default true) controls whether undecided cycles are
    checked by simulation; with [false] those become [Unknown] /
    theorem-verdict-only.  [quick] (default false) trims the search space
    (single-flit buffers, order-following arbitration) for fast passes.
    [max_cycles_enumerated] (default 100) bounds Johnson enumeration. *)

val diagnostics : report -> Diagnostic.t list
(** The report as structured diagnostics, severity-sorted: the conclusion
    becomes [E050] (deadlocks) / [W052] (undecided) / [I053] (deadlock-free),
    a confirmed per-cycle witness becomes [E051] (context: the witness
    schedule's labels, the search run count, and the witness deadlock's
    global/local/weak class), and a searched-but-clean
    cycle becomes [I054].  Theorem classifications of individual cycles are
    deliberately {e not} duplicated here -- {!Lint.algorithm} owns those
    ([I020]-[I023]). *)

val pp_conclusion : Format.formatter -> conclusion -> unit
val pp_report : Format.formatter -> report -> unit
