type t = {
  sc_network : string;
  sc_topology : Topology.t;
  sc_result : (Routing.t * Synth.plan, Synth.witness) result;
  sc_conclusion : Verify.conclusion option;
  sc_diagnostics : Diagnostic.t list;
}

let run ?(quick = true) ?budget ?(name = "synth") topo =
  let result = Synth.synthesize ?budget ~name topo in
  let synth_diags = Synth.diagnostics ~name topo result in
  match result with
  | Error _ ->
    {
      sc_network = name;
      sc_topology = topo;
      sc_result = result;
      sc_conclusion = None;
      sc_diagnostics = Diagnostic.by_severity synth_diags;
    }
  | Ok (rt, _) ->
    let report = Verify.analyze ~quick rt in
    {
      sc_network = name;
      sc_topology = topo;
      sc_result = result;
      sc_conclusion = Some report.Verify.conclusion;
      sc_diagnostics = Diagnostic.by_severity (synth_diags @ Verify.diagnostics report);
    }

let certified t =
  match (t.sc_result, t.sc_conclusion) with
  | Ok _, Some (Verify.Deadlock_free _) -> true
  | _ -> false

let networks () =
  [
    ("figure1", (Paper_nets.figure1 ()).Paper_nets.topo);
    ("figure2", (Paper_nets.figure2 ()).Paper_nets.topo);
    ("figure3a", (Paper_nets.figure3 `A).Paper_nets.topo);
    ("figure3b", (Paper_nets.figure3 `B).Paper_nets.topo);
    ("figure3c", (Paper_nets.figure3 `C).Paper_nets.topo);
    ("figure3d", (Paper_nets.figure3 `D).Paper_nets.topo);
    ("figure3e", (Paper_nets.figure3 `E).Paper_nets.topo);
    ("figure3f", (Paper_nets.figure3 `F).Paper_nets.topo);
    ("family-2", (Paper_nets.family 2).Paper_nets.topo);
    ("mesh-4x4", (Builders.mesh [ 4; 4 ]).Builders.topo);
    ("mesh-4x4-vc2", (Builders.mesh ~vcs:2 [ 4; 4 ]).Builders.topo);
    ("hypercube-3", (Builders.hypercube 3).Builders.topo);
    ("torus-4x4", (Builders.torus [ 4; 4 ]).Builders.topo);
    ("torus-4x4-vc2", (Builders.torus ~vcs:2 [ 4; 4 ]).Builders.topo);
    ("ring-uni-4", (Builders.ring ~unidirectional:true 4).Builders.topo);
    ("ring-uni-6-vc2", (Builders.ring ~unidirectional:true ~vcs:2 6).Builders.topo);
  ]

let run_all ?quick () =
  Wr_pool.map (fun (name, topo) -> run ?quick ~name topo) (networks ())

let json t =
  let verdict = match t.sc_result with Ok _ -> "exists" | Error _ -> "impossible" in
  Printf.sprintf "{\"network\":%s,\"verdict\":\"%s\",\"diagnostics\":%s}"
    ("\"" ^ Diagnostic.json_escape t.sc_network ^ "\"")
    verdict
    (Diagnostic.list_to_json ~topo:t.sc_topology t.sc_diagnostics)

let registry_json ?quick () =
  "[" ^ String.concat "," (List.map json (run_all ?quick ())) ^ "]"
