type conclusion =
  | Deadlock_free of string
  | Deadlocks of string
  | Unknown of string

type cycle_report = {
  cr_cycle : Topology.channel list;
  cr_verdict : Cycle_analysis.verdict;
  cr_searched : bool;
  cr_witness : Explorer.witness option;
  cr_search_runs : int;
}

type report = {
  algorithm : string;
  properties : (string * Properties.verdict) list;
  num_channels : int;
  num_dependencies : int;
  acyclic : bool;
  numbering : int array option;
  cycles : cycle_report list;
  conclusion : conclusion;
}

(* Build search templates for one cycle from its static analysis: the
   candidate deadlock population is exactly the cycle's supporting
   messages, with lengths swept around their in-cycle spans and injection
   offsets swept for messages that do not pass through the outside shared
   channel (their start times are unconstrained by its serialization). *)
let templates_for (analysis : Cycle_analysis.analysis) =
  let shared_users =
    List.concat_map (fun sc -> sc.Cycle_analysis.sc_users) analysis.a_outside_shared
  in
  List.map
    (fun (cm : Cycle_analysis.cycle_message) ->
      let s, d = cm.cm_msg in
      let span = max 1 cm.cm_span in
      let lengths =
        List.sort_uniq compare (List.map (fun e -> max 1 (span + e)) [ -2; -1; 0; 1 ])
      in
      let offsets = if List.mem cm.cm_msg shared_users then [ 0 ] else [ 0; 2; 4; 6; 8; 10 ] in
      {
        Explorer.t_label = cm.cm_label;
        t_src = s;
        t_dst = d;
        t_lengths = lengths;
        t_holds = [ [] ];
        t_offsets = offsets;
      })
    analysis.a_messages

let search_cycle ~quick rt analysis =
  let templates = templates_for analysis in
  if templates = [] || List.length templates > 6 then None
  else begin
    let base = Explorer.default_space templates in
    let space =
      if quick then { base with buffers = [ 1 ]; priorities = Explorer.Follow_order }
      else { base with buffers = [ 1; 2 ] }
    in
    Some (Explorer.explore rt space)
  end

let analyze ?(use_search = true) ?(quick = false) ?(max_cycles_enumerated = 100) rt =
  let properties = Properties.summary rt in
  let prop name =
    match List.assoc_opt name properties with
    | Some v -> Properties.is_holds v
    | None -> false
  in
  let cdg = Cdg.build rt in
  let acyclic = Cdg.is_acyclic cdg in
  let numbering = Cdg.numbering cdg in
  let cycles =
    if acyclic then []
    else Cdg.elementary_cycles ~max_cycles:max_cycles_enumerated cdg
  in
  let cycle_reports =
    List.map
      (fun cycle ->
        let analysis, verdict =
          Cycle_analysis.classify ~minimal:(prop "minimal")
            ~suffix_closed:(prop "suffix-closed") cdg cycle
        in
        let needs_sim =
          match verdict with
          | Cycle_analysis.Needs_search _ -> true
          | Cycle_analysis.Unreachable _ | Cycle_analysis.Deadlock_reachable _ -> false
        in
        if use_search && needs_sim then begin
          match search_cycle ~quick rt analysis with
          | Some (Explorer.Deadlock_found { runs; witness }) ->
            {
              cr_cycle = cycle;
              cr_verdict = verdict;
              cr_searched = true;
              cr_witness = Some witness;
              cr_search_runs = runs;
            }
          | Some (Explorer.No_deadlock { runs }) ->
            {
              cr_cycle = cycle;
              cr_verdict = verdict;
              cr_searched = true;
              cr_witness = None;
              cr_search_runs = runs;
            }
          | None ->
            {
              cr_cycle = cycle;
              cr_verdict = verdict;
              cr_searched = false;
              cr_witness = None;
              cr_search_runs = 0;
            }
        end
        else
          {
            cr_cycle = cycle;
            cr_verdict = verdict;
            cr_searched = false;
            cr_witness = None;
            cr_search_runs = 0;
          })
      cycles
  in
  let conclusion =
    if acyclic then
      Deadlock_free "acyclic channel dependency graph (Dally-Seitz numbering exists)"
    else begin
      let witnessed = List.exists (fun cr -> cr.cr_witness <> None) cycle_reports in
      let theorem_reachable =
        List.exists
          (fun cr ->
            match cr.cr_verdict with
            | Cycle_analysis.Deadlock_reachable _ -> true
            | _ -> false)
          cycle_reports
      in
      if witnessed then Deadlocks "a replayable deadlock witness was found for some cycle"
      else if theorem_reachable then
        Deadlocks "a theorem (2, 3 or 4, or a Theorem-5 condition violation) certifies a \
                   reachable deadlock configuration"
      else begin
        let undecided =
          List.filter
            (fun cr ->
              match (cr.cr_verdict, cr.cr_searched) with
              | Cycle_analysis.Unreachable _, _ -> false
              | _, true -> false (* searched, no witness: bounded-exhaustively safe *)
              | _, false -> true)
            cycle_reports
        in
        if undecided = [] then
          Deadlock_free
            "every CDG cycle is either a theorem-certified false resource cycle or \
             bounded-exhaustively unreachable"
        else
          Unknown
            (Printf.sprintf "%d cycle(s) could not be decided within budget"
               (List.length undecided))
      end
    end
  in
  {
    algorithm = Routing.name rt;
    properties;
    num_channels = Topology.num_channels (Routing.topology rt);
    num_dependencies = Cdg.num_edges cdg;
    acyclic;
    numbering;
    cycles = cycle_reports;
    conclusion;
  }

let diagnostics r =
  let conclusion_diag =
    match r.conclusion with
    | Deadlocks why -> Diagnostic.error "E050" (Diagnostic.Algorithm r.algorithm) why
    | Unknown why -> Diagnostic.warning "W052" (Diagnostic.Algorithm r.algorithm) why
    | Deadlock_free why -> Diagnostic.info "I053" (Diagnostic.Algorithm r.algorithm) why
  in
  let cycle_diags =
    List.concat_map
      (fun cr ->
        let verdict = Format.asprintf "%a" Cycle_analysis.pp_verdict cr.cr_verdict in
        match cr.cr_witness with
        | Some w ->
          [
            Diagnostic.error "E051"
              ~context:
                [
                  ("algorithm", r.algorithm);
                  ("verdict", verdict);
                  ("class", Engine.deadlock_class_string w.Explorer.w_info.Engine.d_class);
                  ("runs", string_of_int cr.cr_search_runs);
                  ( "schedule",
                    String.concat ", "
                      (List.map (fun s -> s.Schedule.ms_label) w.Explorer.w_schedule) );
                ]
              (Diagnostic.Cycle cr.cr_cycle)
              "schedule search produced a replayable deadlock witness";
          ]
        | None ->
          if cr.cr_searched then
            [
              Diagnostic.info "I054"
                ~context:
                  [
                    ("algorithm", r.algorithm);
                    ("verdict", verdict);
                    ("runs", string_of_int cr.cr_search_runs);
                  ]
                (Diagnostic.Cycle cr.cr_cycle)
                "bounded-exhaustive search found no reachable deadlock on this cycle";
            ]
          else [])
      r.cycles
  in
  Diagnostic.by_severity (conclusion_diag :: cycle_diags)

let pp_conclusion ppf = function
  | Deadlock_free why -> Format.fprintf ppf "DEADLOCK-FREE (%s)" why
  | Deadlocks why -> Format.fprintf ppf "CAN DEADLOCK (%s)" why
  | Unknown why -> Format.fprintf ppf "UNDECIDED (%s)" why

let pp_report ppf r =
  Format.fprintf ppf "algorithm %s: %d channels, %d dependencies, CDG %s@\n" r.algorithm
    r.num_channels r.num_dependencies
    (if r.acyclic then "acyclic" else Printf.sprintf "cyclic (%d cycles)" (List.length r.cycles));
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %s: %a@\n" name Properties.pp_verdict v)
    r.properties;
  List.iteri
    (fun i cr ->
      Format.fprintf ppf "  cycle %d (len %d): %a%s@\n" i (List.length cr.cr_cycle)
        Cycle_analysis.pp_verdict cr.cr_verdict
        (if cr.cr_searched then
           Printf.sprintf " [search: %s in %d runs]"
             (match cr.cr_witness with
             | Some w ->
               Printf.sprintf "witness (%s)"
                 (Engine.deadlock_class_string w.Explorer.w_info.Engine.d_class)
             | None -> "no deadlock")
             cr.cr_search_runs
         else ""))
    r.cycles;
  Format.fprintf ppf "  conclusion: %a@\n" pp_conclusion r.conclusion
