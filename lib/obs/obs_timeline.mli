(** ASCII channel-occupancy timeline reconstructed from the event stream.

    The event-bus successor to [Trace.render]: same picture (one row per
    ever-occupied channel, one column per cycle, first letter of the owning
    label, uppercase when more than one flit queues, ['.'] when free, rows
    sorted by first occupancy) but driven by a recorded {!Obs_event.t}
    list, so it needs no [?probe] plumbing — any run under an
    [Obs.recorder] can be rendered after the fact. *)

val render : ?max_cycles:int -> Topology.t -> Obs_event.t list -> string
(** [max_cycles] (default 120) truncates wide timelines with the same
    explicit [" …"] row markers and ["… +N cycles"] footer as
    [Trace.render].  Returns [""] when the stream carries no cycled
    events. *)
