(* Chrome trace_event exporter.

   Renders a recorded event stream as the JSON Array Format understood by
   chrome://tracing and Perfetto: channel occupancies become "X" complete
   events on pid 0 (one tid per channel), message lifetimes become "X"
   events on pid 1 (one tid per message label), and point phenomena
   (delivery, abort, retry, faults, sanitizer trips) become "i" instant
   events.  Cycles map 1:1 to microseconds, so a 40-cycle run renders as a
   40us trace. *)

let esc = Diagnostic.json_escape

type open_span = { os_start : int; os_label : string }

let to_json ?topo events =
  let chan_name c =
    match topo with
    | Some t -> Topology.channel_name t c
    | None -> Printf.sprintf "channel#%d" c
  in
  let final_cycle =
    List.fold_left
      (fun acc e -> match Obs_event.cycle_of e with Some c when c > acc -> c | _ -> acc)
      0 events
  in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let add_obj fields =
    if not !first then Buffer.add_string buf ",";
    first := false;
    Buffer.add_string buf "{";
    Buffer.add_string buf (String.concat "," fields);
    Buffer.add_string buf "}"
  in
  let str k v = Printf.sprintf "\"%s\":\"%s\"" k (esc v) in
  let num k v = Printf.sprintf "\"%s\":%d" k v in
  let complete ~pid ~tid ~name ~cat ~ts ~dur args =
    add_obj
      ([ str "name" name; str "cat" cat; str "ph" "X"; num "pid" pid; num "tid" tid;
         num "ts" ts; num "dur" dur ]
      @ (if args = [] then [] else [ "\"args\":{" ^ String.concat "," args ^ "}" ]))
  in
  let instant ~pid ~tid ~name ~cat ~ts args =
    add_obj
      ([ str "name" name; str "cat" cat; str "ph" "i"; str "s" "t"; num "pid" pid;
         num "tid" tid; num "ts" ts ]
      @ (if args = [] then [] else [ "\"args\":{" ^ String.concat "," args ^ "}" ]))
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  add_obj [ str "name" "process_name"; str "ph" "M"; num "pid" 0;
            "\"args\":{\"name\":\"channels\"}" ];
  add_obj [ str "name" "process_name"; str "ph" "M"; num "pid" 1;
            "\"args\":{\"name\":\"messages\"}" ];
  (* Message labels get tids in order of first appearance. *)
  let msg_tids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let msg_tid label =
    match Hashtbl.find_opt msg_tids label with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length msg_tids in
      Hashtbl.add msg_tids label tid;
      add_obj [ str "name" "thread_name"; str "ph" "M"; num "pid" 1; num "tid" tid;
                "\"args\":{\"name\":\"" ^ esc label ^ "\"}" ];
      tid
  in
  let named_channels : (Topology.channel, unit) Hashtbl.t = Hashtbl.create 16 in
  let chan_tid c =
    if not (Hashtbl.mem named_channels c) then begin
      Hashtbl.add named_channels c ();
      add_obj [ str "name" "thread_name"; str "ph" "M"; num "pid" 0; num "tid" c;
                "\"args\":{\"name\":\"" ^ esc (chan_name c) ^ "\"}" ]
    end;
    c
  in
  (* Channel occupancy spans: acquire opens, release closes. *)
  let chan_open : (Topology.channel, open_span) Hashtbl.t = Hashtbl.create 16 in
  (* Message lifetime spans: first labelled activity opens, delivery /
     abort / giving up closes (a retry's next activity reopens). *)
  let msg_open : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let touch_msg label cycle =
    if not (Hashtbl.mem msg_open label) then Hashtbl.replace msg_open label cycle
  in
  let close_msg ~name ~cat label cycle args =
    let tid = msg_tid label in
    (match Hashtbl.find_opt msg_open label with
    | Some start ->
      Hashtbl.remove msg_open label;
      complete ~pid:1 ~tid ~name:label ~cat:"message" ~ts:start ~dur:(max 0 (cycle - start)) []
    | None -> ());
    instant ~pid:1 ~tid ~name ~cat ~ts:cycle args
  in
  List.iter
    (fun (e : Obs_event.t) ->
      match e with
      | Run_start _ | Search_start _ | Search_end _ | Task_claim _ | Task_cancel _ -> ()
      | Run_end _ -> ()
      | Channel_acquire { cycle; label; channel; waited } ->
        touch_msg label cycle;
        let tid = chan_tid channel in
        (match Hashtbl.find_opt chan_open channel with
        | Some os ->
          (* A re-acquire without a release closes the stale span. *)
          complete ~pid:0 ~tid ~name:os.os_label ~cat:"channel" ~ts:os.os_start
            ~dur:(max 0 (cycle - os.os_start)) []
        | None -> ());
        Hashtbl.replace chan_open channel { os_start = cycle; os_label = label };
        if waited > 0 then
          instant ~pid:0 ~tid ~name:(label ^ " waited") ~cat:"wait" ~ts:cycle
            [ num "cycles" waited ]
      | Channel_release { cycle; channel; _ } -> (
        let tid = chan_tid channel in
        match Hashtbl.find_opt chan_open channel with
        | Some os ->
          Hashtbl.remove chan_open channel;
          complete ~pid:0 ~tid ~name:os.os_label ~cat:"channel" ~ts:os.os_start
            ~dur:(max 0 (cycle - os.os_start)) []
        | None -> ())
      | Wait_add { cycle; label; channel; holder } ->
        touch_msg label cycle;
        instant ~pid:0 ~tid:(chan_tid channel) ~name:(label ^ " blocked") ~cat:"wait"
          ~ts:cycle
          (match holder with Some h -> [ str "holder" h ] | None -> [])
      | Wait_drop _ -> ()
      | Flit { cycle; label; _ } -> touch_msg label cycle
      | Delivered { cycle; label; latency } ->
        close_msg ~name:"delivered" ~cat:"delivery" label cycle [ num "latency" latency ]
      | Abort { cycle; label; retries; reason } ->
        close_msg ~name:"abort" ~cat:"recovery" label cycle
          [ str "reason" reason; num "retries" retries ]
      | Retry { cycle; label; resume_at } ->
        instant ~pid:1 ~tid:(msg_tid label) ~name:"retry" ~cat:"recovery" ~ts:cycle
          [ num "resume_at" resume_at ]
      | Gave_up { cycle; label; fate } ->
        close_msg ~name:"gave-up" ~cat:"recovery" label cycle [ str "fate" fate ]
      | Fault { cycle; kind; channel; label; duration } ->
        let tid = match channel with Some c -> chan_tid c | None -> 0 in
        instant ~pid:0 ~tid ~name:("fault " ^ Obs_event.fault_kind_string kind) ~cat:"fault"
          ~ts:cycle
          ((match label with Some l -> [ str "message" l ] | None -> [])
          @ if duration > 0 then [ num "duration" duration ] else [])
      | Deadlock_detected { cycle; members; victims; _ } ->
        instant ~pid:0 ~tid:0 ~name:"deadlock detected" ~cat:"detection" ~ts:cycle
          [ str "members" (String.concat " -> " members);
            str "victims" (String.concat ", " victims) ]
      | Victim_aborted { cycle; label; policy } ->
        instant ~pid:1 ~tid:(msg_tid label) ~name:"deadlock victim" ~cat:"detection"
          ~ts:cycle [ str "policy" policy ]
      | Sanitizer_trip d ->
        instant ~pid:0 ~tid:0 ~name:("sanitizer " ^ d.Diagnostic.code) ~cat:"sanitizer"
          ~ts:(match Obs_event.cycle_of e with Some c -> c | None -> final_cycle)
          [ str "message" d.Diagnostic.message ])
    events;
  (* Close anything still open at the end of the stream (deadlocked owners
     never release; deadlocked messages never deliver). *)
  let open_chans =
    Hashtbl.fold (fun c os acc -> (c, os) :: acc) chan_open []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (c, os) ->
      complete ~pid:0 ~tid:(chan_tid c) ~name:os.os_label ~cat:"channel" ~ts:os.os_start
        ~dur:(max 0 (final_cycle - os.os_start))
        [ "\"released\":false" ])
    open_chans;
  let open_msgs =
    Hashtbl.fold (fun l s acc -> (l, s) :: acc) msg_open []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (label, start) ->
      complete ~pid:1 ~tid:(msg_tid label) ~name:label ~cat:"message" ~ts:start
        ~dur:(max 0 (final_cycle - start))
        [ "\"delivered\":false" ])
    open_msgs;
  (* Derived counter series: channels owned, messages in flight, messages
     waiting — one "C" (counter) event per value change, so Perfetto draws
     congestion as stepped area charts above the spans.  Derived in a
     second pass over the stream (viewers order by ts, so appending after
     the spans is fine). *)
  let n_cycles = final_cycle + 1 in
  let samp_owned = Array.make n_cycles (-1)
  and samp_flight = Array.make n_cycles (-1)
  and samp_wait = Array.make n_cycles (-1) in
  let owned_now : (Topology.channel, unit) Hashtbl.t = Hashtbl.create 16 in
  let flight_now : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let wait_now : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let enter tbl k = if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k () in
  let sample samp cycle tbl =
    if cycle >= 0 && cycle < n_cycles then samp.(cycle) <- Hashtbl.length tbl
  in
  List.iter
    (fun (e : Obs_event.t) ->
      match e with
      | Channel_acquire { cycle; label; channel; _ } ->
        enter owned_now channel;
        sample samp_owned cycle owned_now;
        (* an acquisition resolves the waiter's advertised edge *)
        Hashtbl.remove wait_now label;
        sample samp_wait cycle wait_now
      | Channel_release { cycle; channel; _ } ->
        Hashtbl.remove owned_now channel;
        sample samp_owned cycle owned_now
      | Flit { cycle; label; kind = Obs_event.Inject; _ } ->
        enter flight_now label;
        sample samp_flight cycle flight_now
      | Delivered { cycle; label; _ }
      | Abort { cycle; label; _ }
      | Gave_up { cycle; label; _ } ->
        Hashtbl.remove flight_now label;
        sample samp_flight cycle flight_now;
        Hashtbl.remove wait_now label;
        sample samp_wait cycle wait_now
      | Wait_add { cycle; label; _ } ->
        enter wait_now label;
        sample samp_wait cycle wait_now
      | Wait_drop { cycle; label; _ } ->
        Hashtbl.remove wait_now label;
        sample samp_wait cycle wait_now
      | _ -> ())
    events;
  let emit_series name samp =
    let prev = ref (-1) in
    for c = 0 to n_cycles - 1 do
      if samp.(c) >= 0 && samp.(c) <> !prev then begin
        prev := samp.(c);
        add_obj
          [ str "name" name; str "cat" "counter"; str "ph" "C"; num "pid" 0;
            num "tid" 0; num "ts" c;
            "\"args\":{\"value\":" ^ string_of_int samp.(c) ^ "}" ]
      end
    done
  in
  emit_series "channels owned" samp_owned;
  emit_series "messages in flight" samp_flight;
  emit_series "messages waiting" samp_wait;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf
