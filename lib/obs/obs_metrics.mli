(** Domain-safe metrics registry.

    Counters, gauges, and fixed-bucket histograms backed by [Atomic] cells:
    helper domains update instruments without locking, and the registry
    table itself is mutex-protected.  Rendering is sorted by (family name,
    label set), so the text and JSON expositions are pure functions of the
    recorded values — byte-deterministic whenever the recorded values are
    (see DESIGN.md §11 for the multicore determinism contract).

    Registration is upserting: asking for an existing (name, labels) pair
    returns the existing instrument, so call sites need no coordination.
    Re-registering a name with a different kind, or a histogram with
    different buckets, raises [Invalid_argument]. *)

type t
(** A registry: a mutable collection of metric families. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Arbitrary integer that can go up and down. *)

type histogram
(** Fixed integer bucket bounds; cumulative rendering per Prometheus. *)

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter reg name] registers (or finds) a counter series. [help] is
    kept from the first registration of the family. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> buckets:int list -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+Inf]
    overflow bucket is always appended. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val observe : histogram -> int -> unit
val value : counter -> int
(** Current value of a counter or gauge (they share a representation). *)

val to_prometheus : t -> string
(** Prometheus text exposition format, version 0.0.4: [# HELP] / [# TYPE]
    headers, histograms as cumulative [_bucket{le="..."}] plus [_sum] and
    [_count]. Families sorted by name, series by label set. *)

val to_json : t -> string
(** Same content as a single-line JSON document,
    schema ["wormhole-metrics/1"]. *)

val snapshot : t -> (string * int) list
(** Flat [("name{labels}", value)] view for tests and bench reporting;
    histograms contribute ["..._count"] and ["..._sum"] entries. *)
