(* Online deadlock detection; see obs_detect.mli for the contract and
   DESIGN.md section 13 for the bounded-latency argument.

   The wait-for graph is functional (a blocked message wants exactly one
   channel, a channel has exactly one owner), which buys two structural
   facts the whole module leans on:

   - The chronologically last edge of any cycle is a Wait_add: an
     acquisition clears the acquirer's own out-edge, so ownership changes
     alone cannot close a cycle -- the acquirer must block again first.
     Walking from the label of each incoming Wait_add therefore finds
     every cycle exactly when it closes.

   - Distinct cycles are vertex-disjoint, so aborting any one member of a
     knot breaks that knot completely and victims for different knots
     never interfere.  "Minimal victim" is always a single message. *)

type victim_policy = Minimal_victim | Youngest | Oldest

let victim_policy_string = function
  | Minimal_victim -> "minimal"
  | Youngest -> "youngest"
  | Oldest -> "oldest"

let victim_policy_of_string = function
  | "minimal" -> Some Minimal_victim
  | "youngest" -> Some Youngest
  | "oldest" -> Some Oldest
  | _ -> None

(* Stramaglia, Keiren & Zantema's taxonomy (arXiv 2101.06015), shared by
   the kernel witness, the online detector and the post-mortem: the three
   layers classify from different evidence but agree on the vocabulary. *)
type deadlock_class = Global | Local | Weak

let deadlock_class_string = function
  | Global -> "global"
  | Local -> "local"
  | Weak -> "weak"

type config = { bound : int; backstop : int; policy : victim_policy }

let default_config = { bound = 16; backstop = 512; policy = Minimal_victim }

type detection = {
  dk_cycle : int;
  dk_formed : int;
  dk_members : (string * Topology.channel) list;
  dk_held : (string * Topology.channel list) list;
  dk_victims : string list;
  dk_class : deadlock_class;
}

(* A closed wait-for cycle awaiting quiescence confirmation.  [formed] is
   the cycle of the last event touching any member; any member activity
   resets it.  [mset] is the sorted member list used as dedupe key and
   for O(members) membership tests. *)
type candidate = {
  mutable formed : int;
  members : (string * Topology.channel) list;  (* rotated to smallest label *)
  mset : string list;  (* sorted labels *)
}

type t = {
  cfg : config;
  owners : (Topology.channel, string) Hashtbl.t;  (* channel -> holder *)
  waits : (string, Topology.channel * int) Hashtbl.t;  (* label -> wanted, since *)
  mutable candidates : candidate list;
  mutable stall_horizon : int;
  mutable delivered : int;  (* Delivered events seen since Run_start *)
}

let create cfg =
  if cfg.bound < 1 then invalid_arg "Obs_detect.create: bound < 1";
  if cfg.backstop < 1 then invalid_arg "Obs_detect.create: backstop < 1";
  {
    cfg;
    owners = Hashtbl.create 64;
    waits = Hashtbl.create 64;
    candidates = [];
    stall_horizon = 0;
    delivered = 0;
  }

let member label k = List.mem label k.mset
let wants channel k = List.exists (fun (_, c) -> c = channel) k.members

let kill t pred = t.candidates <- List.filter (fun k -> not (pred k)) t.candidates

(* Any event naming a member proves the knot candidate was not yet
   quiescent at [cycle]: restart its silence clock. *)
let touch t label cycle =
  List.iter (fun k -> if member label k then k.formed <- cycle) t.candidates

(* Chase the functional graph from [start].  The walk terminates because
   every visited label lands on [path] and a revisit stops it; on revisit
   of [l] the cycle is the suffix of the walk from [l] -- which also
   covers walks that merely run INTO a cycle not containing [start]. *)
let walk t start =
  let rec go path label =
    match Hashtbl.find_opt t.waits label with
    | None -> None
    | Some (channel, _) -> (
      match Hashtbl.find_opt t.owners channel with
      | None -> None
      | Some holder ->
        let path = (label, channel) :: path in
        if List.mem_assoc holder path then begin
          let rec from = function
            | (l, _) :: _ as xs when l = holder -> xs
            | _ :: tl -> from tl
            | [] -> []
          in
          Some (from (List.rev path))
        end
        else go path holder)
  in
  go [] start

let rotate_to_smallest cycle =
  let smallest =
    List.fold_left (fun acc (l, _) -> min acc l) (fst (List.hd cycle)) cycle
  in
  let rec rot = function
    | (l, _) :: _ as c when l = smallest -> c
    | x :: tl -> rot (tl @ [ x ])
    | [] -> []
  in
  rot cycle

let feed t (e : Obs_event.t) =
  match e with
  | Run_start _ ->
    Hashtbl.reset t.owners;
    Hashtbl.reset t.waits;
    t.candidates <- [];
    t.stall_horizon <- 0;
    t.delivered <- 0
  | Fault { kind = Planned_stall; cycle; duration; _ } ->
    t.stall_horizon <- max t.stall_horizon (cycle + duration)
  | Fault _ -> ()
  | Wait_add { cycle; label; channel; _ } -> (
    (* A retargeted edge invalidates candidates built through the old
       one (defensive: engines emit Wait_drop first). *)
    (match Hashtbl.find_opt t.waits label with
    | Some (c, _) when c <> channel -> kill t (member label)
    | _ -> ());
    Hashtbl.replace t.waits label (channel, cycle);
    match walk t label with
    | None -> ()
    | Some cyc ->
      let members = rotate_to_smallest cyc in
      let mset = List.sort compare (List.map fst members) in
      if not (List.exists (fun k -> k.mset = mset) t.candidates) then
        t.candidates <- { formed = cycle; members; mset } :: t.candidates)
  | Channel_acquire { cycle; label; channel; _ } ->
    Hashtbl.replace t.owners channel label;
    Hashtbl.remove t.waits label;
    (* The acquirer's out-edge is gone and the channel's owner changed:
       both break any candidate routed through them. *)
    kill t (fun k -> member label k || wants channel k);
    touch t label cycle
  | Channel_release { cycle; label; channel } ->
    Hashtbl.remove t.owners channel;
    (* Releasing a wanted channel severs the cycle; releasing any other
       channel (tail cascade) is still member activity. *)
    kill t (wants channel);
    touch t label cycle
  | Wait_drop { label; _ } | Abort { label; _ } | Gave_up { label; _ } ->
    Hashtbl.remove t.waits label;
    kill t (member label)
  | Delivered { label; _ } ->
    t.delivered <- t.delivered + 1;
    Hashtbl.remove t.waits label;
    kill t (member label)
  | Flit { cycle; label; _ } -> touch t label cycle
  | Retry _ | Run_end _ | Deadlock_detected _ | Victim_aborted _ | Sanitizer_trip _
  | Task_claim _ | Task_cancel _ | Search_start _ | Search_end _ -> ()

(* Confirmation-time structural re-check: every member still wants its
   recorded channel and every wanted channel is still held by the next
   member around the cycle. *)
let verify t members =
  let arr = Array.of_list members in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    let l, c = arr.(i) in
    let l', _ = arr.((i + 1) mod n) in
    (match Hashtbl.find_opt t.waits l with
    | Some (c', _) when c' = c -> ()
    | _ -> ok := false);
    match Hashtbl.find_opt t.owners c with
    | Some o when o = l' -> ()
    | _ -> ok := false
  done;
  !ok

let held_sorted t label =
  Hashtbl.fold (fun c o acc -> if o = label then c :: acc else acc) t.owners []
  |> List.sort compare

let wait_since t label =
  match Hashtbl.find_opt t.waits label with Some (_, s) -> s | None -> max_int

(* All policies reduce to "smallest key wins" over a (int, int, label)
   triple, so ties always fall through to the label and the choice is
   independent of member order, hash layout, and domain count. *)
let choose_victim t members =
  let key l =
    let s = wait_since t l in
    match t.cfg.policy with
    | Minimal_victim -> (List.length (held_sorted t l), -s, l)
    | Youngest -> (0, -s, l)
    | Oldest -> (0, s, l)
  in
  match List.map fst members with
  | [] -> []
  | l0 :: rest ->
    [ snd (List.fold_left
             (fun (bk, bl) l ->
               let k = key l in
               if k < bk then (k, l) else (bk, bl))
             (key l0, l0) rest) ]

let tick t ~now =
  let ready, rest =
    List.partition
      (fun k -> now - max k.formed t.stall_horizon >= t.cfg.bound)
      t.candidates
  in
  t.candidates <- rest;
  List.filter_map
    (fun k ->
      if verify t k.members then
        Some
          {
            dk_cycle = now;
            dk_formed = k.formed;
            dk_members = k.members;
            dk_held = List.map (fun (l, _) -> (l, held_sorted t l)) k.members;
            dk_victims = choose_victim t k.members;
            (* a confirmed knot is a genuine wait cycle, never [Weak]; the
               split is whether anyone else made it out before the knot
               locked up (provisional -- the run-end kernel classification
               is authoritative) *)
            dk_class = (if t.delivered > 0 then Local else Global);
          }
      else None)
    ready
  |> List.sort (fun a b -> compare a.dk_members b.dk_members)

(* Offline replay.  Plan-announcement Fault events carry their FUTURE
   fire cycle, so they must not advance the replay clock. *)
let event_now (e : Obs_event.t) =
  match e with
  | Fault { kind = Planned_failure | Planned_stall | Planned_drop; _ } -> None
  | _ -> Obs_event.cycle_of e

let scan cfg events =
  let t = create cfg in
  let dets = ref [] in
  let now = ref 0 in
  let step upto =
    while !now < upto do
      incr now;
      dets := List.rev_append (List.rev (tick t ~now:!now)) !dets
    done
  in
  List.iter
    (fun e ->
      (match event_now e with Some c when c > !now -> step (c - 1); now := c | _ -> ());
      feed t e)
    events;
  (* Trailing ticks: the stream stops at the final event but quiescent
     candidates still need [bound] silent cycles (past any stall) to
     confirm. *)
  step (max !now t.stall_horizon + cfg.bound);
  List.rev !dets

let pp_detection ?topo () ppf d =
  let chan c =
    match topo with
    | Some tp -> Topology.channel_name tp c
    | None -> Printf.sprintf "channel#%d" c
  in
  Format.fprintf ppf "knot confirmed at cycle %d (quiet since %d, %s): %s; victim%s %s"
    d.dk_cycle d.dk_formed
    (deadlock_class_string d.dk_class)
    (String.concat " -> "
       (List.map (fun (l, c) -> Printf.sprintf "%s(%s)" l (chan c)) d.dk_members))
    (if List.length d.dk_victims = 1 then "" else "s")
    (String.concat ", " d.dk_victims)
