(* ASCII channel-occupancy timeline reconstructed from the event stream.

   Same visual language as Trace.render (one row per channel, one column
   per cycle, first letter of the owning label, uppercase when more than
   one flit queues, '.' when free) but built from Obs events instead of
   engine snapshots, so it works wherever a recorder ran -- no ?probe
   plumbing.

   Reconstruction: Channel_acquire/Channel_release bound ownership; Flit
   events move flit counts.  A Hop/Cascade into channel [c] removes a flit
   from the channel immediately before [c] in the owner's acquisition
   order (the worm's body), Inject adds one at the source channel, Consume
   removes one at the destination. *)

type chan_state = {
  mutable owner : string;
  mutable count : int;
  mutable last : int;  (* first cycle not yet rendered into [row] *)
  mutable first_busy : int;  (* max_int until the channel first holds a flit *)
  row : Bytes.t;
}

let render ?(max_cycles = 120) topo events =
  let last_cycle =
    List.fold_left
      (fun acc e -> match Obs_event.cycle_of e with Some c -> max acc c | None -> acc)
      (-1) events
  in
  if last_cycle < 0 then ""
  else begin
    let cycles = last_cycle + 1 in
    let shown = min cycles max_cycles in
    let n = Topology.num_channels topo in
    let states =
      Array.init n (fun _ ->
          { owner = ""; count = 0; last = 0; first_busy = max_int; row = Bytes.make shown '.' })
    in
    let cell st =
      if st.count = 0 then '.'
      else begin
        let ch = if st.owner = "" then '?' else st.owner.[0] in
        if st.count > 1 then Char.uppercase_ascii ch else Char.lowercase_ascii ch
      end
    in
    (* Render the channel's current state into columns [st.last .. t-1];
       events at cycle [t] change what is visible from column [t] on. *)
    let advance c t =
      let st = states.(c) in
      if st.count > 0 && st.last < t then st.first_busy <- min st.first_busy st.last;
      let ch = cell st in
      for i = st.last to min (t - 1) (shown - 1) do
        Bytes.set st.row i ch
      done;
      if t > st.last then st.last <- t;
      st
    in
    (* Channels each label currently holds, in acquisition (path) order. *)
    let held : (string, Topology.channel list ref) Hashtbl.t = Hashtbl.create 16 in
    let held_of label =
      match Hashtbl.find_opt held label with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add held label r;
        r
    in
    let prev_of label c =
      let rec scan = function
        | a :: b :: _ when b = c -> Some a
        | _ :: tl -> scan tl
        | [] -> None
      in
      scan !(held_of label)
    in
    let bump c t d owner =
      if c >= 0 && c < n then begin
        let st = advance c t in
        st.count <- max 0 (st.count + d);
        match owner with Some o -> st.owner <- o | None -> ()
      end
    in
    List.iter
      (fun (e : Obs_event.t) ->
        match e with
        | Channel_acquire { cycle; label; channel; _ } ->
          if channel >= 0 && channel < n then begin
            let r = held_of label in
            if not (List.mem channel !r) then r := !r @ [ channel ];
            (advance channel cycle).owner <- label
          end
        | Channel_release { cycle; channel; _ } ->
          if channel >= 0 && channel < n then begin
            let st = advance channel cycle in
            st.count <- 0;
            st.owner <- "";
            Hashtbl.iter
              (fun _ r -> if List.mem channel !r then r := List.filter (fun c -> c <> channel) !r)
              held
          end
        | Flit { cycle; label; channel; kind } -> (
          match kind with
          | Obs_event.Inject -> bump channel cycle 1 (Some label)
          | Obs_event.Hop | Obs_event.Cascade ->
            (match prev_of label channel with Some p -> bump p cycle (-1) None | None -> ());
            bump channel cycle 1 (Some label)
          | Obs_event.Consume -> bump channel cycle (-1) None)
        | Abort { label; _ } | Gave_up { label; _ } -> (
          match Hashtbl.find_opt held label with Some r -> r := [] | None -> ())
        | _ -> ())
      events;
    let channels = ref [] in
    for c = n - 1 downto 0 do
      ignore (advance c cycles);
      if states.(c).first_busy < max_int then channels := (states.(c).first_busy, c) :: !channels
    done;
    let channels = List.map snd (List.sort compare !channels) in
    let truncated = cycles > shown in
    let buf = Buffer.create 1024 in
    let name_width =
      List.fold_left (fun w c -> max w (String.length (Topology.channel_name topo c))) 7 channels
    in
    Buffer.add_string buf (Printf.sprintf "%-*s " name_width "channel");
    for i = 0 to shown - 1 do
      Buffer.add_char buf
        (if i mod 10 = 0 then Char.chr (Char.code '0' + (i / 10 mod 10)) else ' ')
    done;
    Buffer.add_char buf '\n';
    List.iter
      (fun c ->
        Buffer.add_string buf (Printf.sprintf "%-*s " name_width (Topology.channel_name topo c));
        Buffer.add_bytes buf states.(c).row;
        if truncated then Buffer.add_string buf " …";
        Buffer.add_char buf '\n')
      channels;
    if truncated then Buffer.add_string buf (Printf.sprintf "… +%d cycles\n" (cycles - shown));
    Buffer.contents buf
  end
