(** Chrome [trace_event] exporter.

    Turns a recorded event stream into the JSON Array Format that
    [chrome://tracing] and Perfetto load directly.  Layout:

    - pid 0 ("channels"): one thread per channel; occupancy intervals are
      ["X"] complete events named after the owning message, with
      [args.released = false] when the stream ended with the channel still
      held (a deadlocked owner).  Blocking and faults appear as ["i"]
      instant events on the blocked channel's thread.
    - pid 1 ("messages"): one thread per message label; a lifetime interval
      from first activity to delivery/abort/give-up (re-opened after a
      retry), plus instant events for deliveries, aborts and retries.
    - counter series on pid 0: ["C"] events for channels owned, messages in
      flight and messages waiting, one sample per value change, so viewers
      draw congestion as stepped area charts above the spans.

    Cycles map 1:1 to trace microseconds. *)

val to_json : ?topo:Topology.t -> Obs_event.t list -> string
(** Channel tids carry topology channel names when [topo] is given. *)
