(* Domain-safe metrics registry.

   Instruments are Atomic-backed so concurrent engine runs on helper domains
   can bump them without locks; the registry table itself is mutex-protected
   (registration is rare, updates are hot).  Rendering sorts families by
   name and series by label text, so the output is a pure function of the
   recorded values -- byte-deterministic whenever the values are. *)

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  h_bounds : int array;  (* strictly increasing upper bounds *)
  h_counts : int Atomic.t array;  (* one per bound, plus the +Inf overflow *)
  h_sum : int Atomic.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type series = { s_labels : (string * string) list; s_instrument : instrument }

type family = {
  f_name : string;
  f_kind : string;  (* "counter" | "gauge" | "histogram" *)
  f_help : string;
  mutable f_series : series list;  (* guarded by the registry lock *)
}

type t = {
  lock : Mutex.t;
  families : (string, family) Hashtbl.t;  (* guarded by [lock] *)
}

let create () = { lock = Mutex.create (); families = Hashtbl.create 32 }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       name

let label_text labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (Diagnostic.json_escape v)) labels)
    ^ "}"

let register reg ~kind ~help ~labels name make =
  if not (valid_name name) then invalid_arg ("Obs_metrics: bad metric name " ^ name);
  let labels = List.sort compare labels in
  Mutex.lock reg.lock;
  let fam =
    match Hashtbl.find_opt reg.families name with
    | Some f ->
      if f.f_kind <> kind then begin
        Mutex.unlock reg.lock;
        invalid_arg
          (Printf.sprintf "Obs_metrics: %s already registered as a %s" name f.f_kind)
      end;
      f
    | None ->
      let f = { f_name = name; f_kind = kind; f_help = help; f_series = [] } in
      Hashtbl.add reg.families name f;
      f
  in
  let inst =
    match List.find_opt (fun s -> s.s_labels = labels) fam.f_series with
    | Some s -> s.s_instrument
    | None ->
      let inst = make () in
      fam.f_series <- { s_labels = labels; s_instrument = inst } :: fam.f_series;
      inst
  in
  Mutex.unlock reg.lock;
  inst

let counter reg ?(help = "") ?(labels = []) name =
  match register reg ~kind:"counter" ~help ~labels name (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> assert false

let gauge reg ?(help = "") ?(labels = []) name =
  match register reg ~kind:"gauge" ~help ~labels name (fun () -> Gauge (Atomic.make 0)) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> assert false

let histogram reg ?(help = "") ?(labels = []) ~buckets name =
  if buckets = [] then invalid_arg "Obs_metrics.histogram: empty bucket list";
  let sorted = List.sort_uniq compare buckets in
  if sorted <> buckets then
    invalid_arg "Obs_metrics.histogram: bucket bounds must be strictly increasing";
  let make () =
    Histogram
      {
        h_bounds = Array.of_list buckets;
        h_counts = Array.init (List.length buckets + 1) (fun _ -> Atomic.make 0);
        h_sum = Atomic.make 0;
      }
  in
  match register reg ~kind:"histogram" ~help ~labels name make with
  | Histogram h ->
    if h.h_bounds <> Array.of_list buckets then
      invalid_arg ("Obs_metrics.histogram: " ^ name ^ " re-registered with different buckets");
    h
  | Counter _ | Gauge _ -> assert false

let inc c = Atomic.incr c
let add c n = if n < 0 then invalid_arg "Obs_metrics.add: negative" else ignore (Atomic.fetch_and_add c n)
let set g v = Atomic.set g v
let gauge_add g n = ignore (Atomic.fetch_and_add g n)

let observe h v =
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
  Atomic.incr h.h_counts.(slot 0);
  ignore (Atomic.fetch_and_add h.h_sum v)

let value c = Atomic.get c

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let sorted_families reg =
  Mutex.lock reg.lock;
  let fams = Hashtbl.fold (fun _ f acc -> f :: acc) reg.families [] in
  let fams =
    List.map
      (fun f -> (f, List.sort (fun a b -> compare a.s_labels b.s_labels) f.f_series))
      fams
  in
  Mutex.unlock reg.lock;
  List.sort (fun (a, _) (b, _) -> compare a.f_name b.f_name) fams

let to_prometheus reg =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f, series) ->
      if f.f_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.f_name f.f_help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.f_name f.f_kind);
      List.iter
        (fun s ->
          match s.s_instrument with
          | Counter a | Gauge a ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" f.f_name (label_text s.s_labels) (Atomic.get a))
          | Histogram h ->
            let cum = ref 0 in
            Array.iteri
              (fun i cnt ->
                cum := !cum + Atomic.get cnt;
                if i < Array.length h.h_bounds then
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                       (label_text (s.s_labels @ [ ("le", string_of_int h.h_bounds.(i)) ]))
                       !cum))
              h.h_counts;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                 (label_text (s.s_labels @ [ ("le", "+Inf") ]))
                 !cum);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %d\n" f.f_name (label_text s.s_labels)
                 (Atomic.get h.h_sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" f.f_name (label_text s.s_labels) !cum))
        series)
    (sorted_families reg);
  Buffer.contents buf

let to_json reg =
  let buf = Buffer.create 1024 in
  let labels_json labels =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (Diagnostic.json_escape k)
               (Diagnostic.json_escape v))
           labels)
    ^ "}"
  in
  Buffer.add_string buf "{\"schema\":\"wormhole-metrics/1\",\"metrics\":[";
  let first = ref true in
  List.iter
    (fun (f, series) ->
      List.iter
        (fun s ->
          if not !first then Buffer.add_string buf ",";
          first := false;
          (match s.s_instrument with
          | Counter a | Gauge a ->
            Buffer.add_string buf
              (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"labels\":%s,\"value\":%d}"
                 f.f_name f.f_kind (labels_json s.s_labels) (Atomic.get a))
          | Histogram h ->
            let buckets =
              String.concat ","
                (Array.to_list
                   (Array.mapi
                      (fun i b ->
                        Printf.sprintf "{\"le\":%d,\"count\":%d}" b (Atomic.get h.h_counts.(i)))
                      h.h_bounds))
            in
            let overflow = Atomic.get h.h_counts.(Array.length h.h_bounds) in
            let count = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts in
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"name\":\"%s\",\"kind\":\"histogram\",\"labels\":%s,\"buckets\":[%s],\"overflow\":%d,\"sum\":%d,\"count\":%d}"
                 f.f_name (labels_json s.s_labels) buckets overflow (Atomic.get h.h_sum) count)))
        series)
    (sorted_families reg);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let snapshot reg =
  List.concat_map
    (fun (f, series) ->
      List.concat_map
        (fun s ->
          let tag = f.f_name ^ label_text s.s_labels in
          match s.s_instrument with
          | Counter a | Gauge a -> [ (tag, Atomic.get a) ]
          | Histogram h ->
            let count = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts in
            [ (tag ^ "_count", count); (tag ^ "_sum", Atomic.get h.h_sum) ])
        series)
    (sorted_families reg)
