(** Deadlock post-mortem reports reconstructed from the event stream.

    On a [Deadlock] or [Recovered] outcome, fold the recorded events into
    the terminal wait-for structure: outstanding wait edges, channel
    ownership, the knot (the cycle of waiter → wanted channel → holder),
    full per-channel occupancy history, and abort counts.  Expanding each
    wanted channel into its holder's held chain (worms acquire channels in
    path order, so consecutive held channels are CDG edges, as is last-held
    → wanted) turns the knot into a CDG cycle in dependency order, so when
    a [Routing.t] is supplied the report classifies it against the paper's
    Theorems 2–5 via {!Cycle_analysis.classify}. *)

type wait_edge = {
  we_label : string;
  we_channel : Topology.channel;
  we_since : int;  (** cycle the edge appeared *)
  we_holder : string option;
}

type occupancy = {
  oc_channel : Topology.channel;
  oc_label : string;
  oc_start : int;
  oc_stop : int option;  (** [None]: still held when the stream ended *)
}

type t = {
  pm_outcome : string option;  (** from [Run_end], if present *)
  pm_last_cycle : int;
  pm_waits : wait_edge list;  (** outstanding at end, sorted by label *)
  pm_owners : (Topology.channel * string) list;  (** held at end, sorted *)
  pm_knot : (string * Topology.channel) list;
      (** (waiter, wanted channel) around the wait-for cycle, rotated to
          start at the smallest label; [[]] when no knot exists *)
  pm_cycle : Topology.channel list;
      (** the knot expanded to the full channel dependency cycle: each
          wanted channel followed by the rest of its holder's held chain *)
  pm_occupancy : occupancy list;  (** chronological *)
  pm_aborts : (string * int) list;
  pm_detections : (int * string list) list;
      (** online-detector confirmations: (cycle, knot members),
          chronological *)
  pm_victims : (string * int) list;
      (** detector-chosen victims: (label, cycle aborted), chronological *)
  pm_verdict : (Cycle_analysis.analysis * Cycle_analysis.verdict) option;
      (** present when [rt] was given, a knot exists, and every edge of
          [pm_cycle] is a genuine CDG edge *)
  pm_class : Obs_detect.deadlock_class option;
      (** Stramaglia-Keiren-Zantema classification of a ["deadlock"]
          outcome, [None] otherwise: [Weak] when the terminal wait-for
          graph has no knot (an acyclic wedge -- a drain order exists, so
          only faults produce it), [Local] when some message was delivered
          before the network wedged, [Global] when none was (the paper's
          Deadlock).  Agrees with the kernel's [d_class] on the same run. *)
}

val analyze : ?rt:Routing.t -> Obs_event.t list -> t
(** Deterministic: all result lists are sorted, the knot is found by
    chasing from labels in sorted order. *)

val knot_channels : t -> Topology.channel list
(** [pm_cycle]: the knot's channel dependency cycle (a CDG cycle whenever
    the held chains reflect genuine path order). *)

val pp : ?topo:Topology.t -> unit -> Format.formatter -> t -> unit
val render : ?topo:Topology.t -> t -> string
