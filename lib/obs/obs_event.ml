type flit_kind = Inject | Hop | Cascade | Consume

type fault_kind = Planned_failure | Planned_stall | Planned_drop | Drop_fired

type t =
  | Run_start of { engine : string; algorithm : string; messages : int }
  | Run_end of { cycle : int; outcome : string }
  | Channel_acquire of {
      cycle : int;
      label : string;
      channel : Topology.channel;
      waited : int;
    }
  | Channel_release of { cycle : int; label : string; channel : Topology.channel }
  | Wait_add of {
      cycle : int;
      label : string;
      channel : Topology.channel;
      holder : string option;
    }
  | Wait_drop of {
      cycle : int;
      label : string;
      channel : Topology.channel;
      waited : int;
    }
  | Flit of { cycle : int; label : string; channel : Topology.channel; kind : flit_kind }
  | Delivered of { cycle : int; label : string; latency : int }
  | Abort of { cycle : int; label : string; retries : int; reason : string }
  | Retry of { cycle : int; label : string; resume_at : int }
  | Gave_up of { cycle : int; label : string; fate : string }
  | Fault of {
      cycle : int;
      kind : fault_kind;
      channel : Topology.channel option;
      label : string option;
      duration : int;
    }
  | Deadlock_detected of {
      cycle : int;
      members : string list;
      channels : Topology.channel list;
      victims : string list;
    }
  | Victim_aborted of { cycle : int; label : string; policy : string }
  | Sanitizer_trip of Diagnostic.t
  | Task_claim of { pool : string; first : int; last : int }
  | Task_cancel of { pool : string; index : int }
  | Search_start of { algorithm : string; tasks : int }
  | Search_end of { algorithm : string; runs : int; cancelled : int; witness : bool }

let flit_kind_string = function
  | Inject -> "inject"
  | Hop -> "hop"
  | Cascade -> "cascade"
  | Consume -> "consume"

let fault_kind_string = function
  | Planned_failure -> "failure"
  | Planned_stall -> "stall"
  | Planned_drop -> "drop"
  | Drop_fired -> "drop-fired"

let cycle_of = function
  | Run_start _ | Search_start _ | Search_end _ | Task_claim _ | Task_cancel _ -> None
  | Run_end { cycle; _ }
  | Channel_acquire { cycle; _ }
  | Channel_release { cycle; _ }
  | Wait_add { cycle; _ }
  | Wait_drop { cycle; _ }
  | Flit { cycle; _ }
  | Delivered { cycle; _ }
  | Abort { cycle; _ }
  | Retry { cycle; _ }
  | Gave_up { cycle; _ }
  | Fault { cycle; _ }
  | Deadlock_detected { cycle; _ }
  | Victim_aborted { cycle; _ } -> Some cycle
  | Sanitizer_trip d -> (
    match List.assoc_opt "cycle" d.Diagnostic.context with
    | Some s -> int_of_string_opt s
    | None -> None)

let pp ?topo () ppf e =
  let chan c =
    match topo with
    | Some t -> Topology.channel_name t c
    | None -> Printf.sprintf "channel#%d" c
  in
  match e with
  | Run_start { engine; algorithm; messages } ->
    Format.fprintf ppf "run-start engine=%s algorithm=%s messages=%d" engine algorithm messages
  | Run_end { cycle; outcome } -> Format.fprintf ppf "[%d] run-end %s" cycle outcome
  | Channel_acquire { cycle; label; channel; waited } ->
    Format.fprintf ppf "[%d] %s acquires %s (waited %d)" cycle label (chan channel) waited
  | Channel_release { cycle; label; channel } ->
    Format.fprintf ppf "[%d] %s releases %s" cycle label (chan channel)
  | Wait_add { cycle; label; channel; holder } ->
    Format.fprintf ppf "[%d] %s blocks on %s%s" cycle label (chan channel)
      (match holder with Some h -> " held by " ^ h | None -> "")
  | Wait_drop { cycle; label; channel; waited } ->
    Format.fprintf ppf "[%d] %s stops waiting for %s (waited %d)" cycle label (chan channel)
      waited
  | Flit { cycle; label; channel; kind } ->
    Format.fprintf ppf "[%d] %s flit %s at %s" cycle label (flit_kind_string kind)
      (chan channel)
  | Delivered { cycle; label; latency } ->
    Format.fprintf ppf "[%d] %s delivered (latency %d)" cycle label latency
  | Abort { cycle; label; retries; reason } ->
    Format.fprintf ppf "[%d] %s aborted (%s, retry %d)" cycle label reason retries
  | Retry { cycle; label; resume_at } ->
    Format.fprintf ppf "[%d] %s will retry at cycle %d" cycle label resume_at
  | Gave_up { cycle; label; fate } -> Format.fprintf ppf "[%d] %s %s" cycle label fate
  | Fault { cycle; kind; channel; label; duration } ->
    Format.fprintf ppf "[%d] fault %s%s%s%s" cycle (fault_kind_string kind)
      (match channel with Some c -> " " ^ chan c | None -> "")
      (match label with Some l -> " " ^ l | None -> "")
      (if duration > 0 then Printf.sprintf " +%d" duration else "")
  | Deadlock_detected { cycle; members; channels; victims } ->
    Format.fprintf ppf "[%d] deadlock detected: %s over {%s}; victim%s %s" cycle
      (String.concat " -> " members)
      (String.concat ", " (List.map chan channels))
      (if List.length victims = 1 then "" else "s")
      (String.concat ", " victims)
  | Victim_aborted { cycle; label; policy } ->
    Format.fprintf ppf "[%d] %s aborted as deadlock victim (%s policy)" cycle label policy
  | Sanitizer_trip d -> Format.fprintf ppf "sanitizer-trip %a" (Diagnostic.pp ?topo ()) d
  | Task_claim { pool; first; last } ->
    Format.fprintf ppf "pool %s claims tasks %d..%d" pool first last
  | Task_cancel { pool; index } -> Format.fprintf ppf "pool %s cancels task %d" pool index
  | Search_start { algorithm; tasks } ->
    Format.fprintf ppf "search-start %s (%d tasks)" algorithm tasks
  | Search_end { algorithm; runs; cancelled; witness } ->
    Format.fprintf ppf "search-end %s: %d runs, %d cancelled, witness=%b" algorithm runs
      cancelled witness
