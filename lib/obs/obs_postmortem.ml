(* Deadlock post-mortem: reconstruct the knot from a recorded event stream.

   Works purely on events (plus an optional Routing.t for CDG
   classification), so it has no dependency on engine internals: the final
   wait-for edges come from Wait_add/Wait_drop/Channel_acquire, channel
   ownership and occupancy history from Channel_acquire/Channel_release,
   and the knot is the cycle of the functional graph

     waiter --wants--> channel --held by--> next waiter

   A holder may occupy several channels (a stretched worm), so the wanted
   channels alone are not necessarily CDG-adjacent: the dependency chain
   runs through the holder's held channels.  Worms acquire channels in
   path order, so expanding each wanted channel into its holder's held
   suffix (wanted, then every channel the holder acquired after it) yields
   a channel sequence whose consecutive pairs are all CDG edges -- within
   a worm by path adjacency, across worms by last-held -> wanted.  That
   expanded cycle is what Cycle_analysis.classify (Theorems 2-5) gets. *)

type wait_edge = {
  we_label : string;
  we_channel : Topology.channel;
  we_since : int;
  we_holder : string option;
}

type occupancy = {
  oc_channel : Topology.channel;
  oc_label : string;
  oc_start : int;
  oc_stop : int option;  (* None: still held when the stream ended *)
}

type t = {
  pm_outcome : string option;
  pm_last_cycle : int;
  pm_waits : wait_edge list;  (* outstanding at end, sorted by label *)
  pm_owners : (Topology.channel * string) list;  (* held at end, sorted *)
  pm_knot : (string * Topology.channel) list;
      (* (waiter, wanted channel) around the cycle; [] when no knot *)
  pm_cycle : Topology.channel list;  (* knot expanded through held chains *)
  pm_occupancy : occupancy list;  (* chronological *)
  pm_aborts : (string * int) list;
  pm_detections : (int * string list) list;  (* chronological *)
  pm_victims : (string * int) list;  (* chronological *)
  pm_verdict : (Cycle_analysis.analysis * Cycle_analysis.verdict) option;
  pm_class : Obs_detect.deadlock_class option;
      (* Some only on a "deadlock" outcome: Weak when the terminal wait-for
         graph has no knot (acyclic wedge), Local when some message was
         delivered before the network wedged, Global otherwise. *)
}

let knot_channels t = t.pm_cycle

(* Find the cycle of the partial functional graph [next] (at most one
   successor per label), deterministically: chase from every label in
   sorted order, first cycle found wins, rotated to start at its smallest
   label. *)
let find_knot ~next labels =
  let visited = Hashtbl.create 16 in
  let rec drop_until l = function
    | (l', _) :: _ as xs when l' = l -> xs
    | _ :: tl -> drop_until l tl
    | [] -> []
  in
  (* [path] is the current walk, newest first. *)
  let rec walk path label =
    if List.mem_assoc label path then Some (drop_until label (List.rev path))
    else if Hashtbl.mem visited label then None  (* joins an earlier, cycle-free walk *)
    else begin
      Hashtbl.add visited label ();
      match next label with
      | Some (channel, holder) -> walk ((label, channel) :: path) holder
      | None -> None
    end
  in
  let rec first = function
    | [] -> []
    | l :: rest -> (
      match walk [] l with
      | Some cycle -> cycle
      | None -> first rest)
  in
  match first labels with
  | [] -> []
  | cycle ->
    let smallest = List.fold_left (fun acc (l, _) -> min acc l) (fst (List.hd cycle)) cycle in
    let rec rotate = function
      | (l, _) :: _ as c when l = smallest -> c
      | x :: tl -> rotate (tl @ [ x ])
      | [] -> []
    in
    rotate cycle

let analyze ?rt events =
  let owners : (Topology.channel, string * int) Hashtbl.t = Hashtbl.create 16 in
  let waits : (string, Topology.channel * int * string option) Hashtbl.t = Hashtbl.create 16 in
  let occs = ref [] in
  let aborts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let detections = ref [] in
  let victims = ref [] in
  let outcome = ref None in
  let delivered = ref 0 in
  let last = ref 0 in
  let note_cycle e = match Obs_event.cycle_of e with Some c when c > !last -> last := c | _ -> () in
  List.iter
    (fun (e : Obs_event.t) ->
      note_cycle e;
      match e with
      | Run_start _ -> delivered := 0
      | Run_end { outcome = o; _ } -> outcome := Some o
      | Delivered _ -> incr delivered
      | Channel_acquire { cycle; label; channel; _ } ->
        (match Hashtbl.find_opt owners channel with
        | Some (l, s) ->
          occs := { oc_channel = channel; oc_label = l; oc_start = s; oc_stop = Some cycle } :: !occs
        | None -> ());
        Hashtbl.replace owners channel (label, cycle);
        (* Winning any channel resolves the waiter's outstanding edge (the
           adaptive engine may acquire a different option than the one it
           first blocked on). *)
        Hashtbl.remove waits label
      | Channel_release { cycle; channel; _ } -> (
        match Hashtbl.find_opt owners channel with
        | Some (l, s) ->
          Hashtbl.remove owners channel;
          occs := { oc_channel = channel; oc_label = l; oc_start = s; oc_stop = Some cycle } :: !occs
        | None -> ())
      | Wait_add { cycle; label; channel; holder } ->
        Hashtbl.replace waits label (channel, cycle, holder)
      | Wait_drop { label; channel; _ } -> (
        match Hashtbl.find_opt waits label with
        | Some (c, _, _) when c = channel -> Hashtbl.remove waits label
        | _ -> ())
      | Abort { label; _ } ->
        Hashtbl.remove waits label;
        Hashtbl.replace aborts label (1 + Option.value ~default:0 (Hashtbl.find_opt aborts label))
      | Deadlock_detected { cycle; members; _ } ->
        detections := (cycle, members) :: !detections
      | Victim_aborted { cycle; label; _ } -> victims := (label, cycle) :: !victims
      | _ -> ())
    events;
  let open_occs =
    Hashtbl.fold
      (fun channel (l, s) acc ->
        { oc_channel = channel; oc_label = l; oc_start = s; oc_stop = None } :: acc)
      owners []
  in
  let occupancy =
    List.sort
      (fun a b -> compare (a.oc_start, a.oc_channel) (b.oc_start, b.oc_channel))
      (List.rev_append !occs open_occs)
  in
  let wait_edges =
    Hashtbl.fold
      (fun label (channel, since, holder) acc ->
        (* Prefer the live owner table over the holder recorded at
           Wait_add time: ownership may have moved since. *)
        let holder =
          match Hashtbl.find_opt owners channel with
          | Some (l, _) -> Some l
          | None -> holder
        in
        { we_label = label; we_channel = channel; we_since = since; we_holder = holder } :: acc)
      waits []
    |> List.sort (fun a b -> compare a.we_label b.we_label)
  in
  let next label =
    match Hashtbl.find_opt waits label with
    | None -> None
    | Some (channel, _, _) -> (
      match Hashtbl.find_opt owners channel with
      | Some (holder, _) -> Some (channel, holder)
      | None -> None)
  in
  let knot = find_knot ~next (List.map (fun w -> w.we_label) wait_edges) in
  (* Expand each wanted channel into its holder's held suffix: the
     still-open occupancy entries of a label, in acquisition (= path)
     order, from the wanted channel onward. *)
  let held_in_order label =
    List.filter_map
      (fun o -> if o.oc_stop = None && o.oc_label = label then Some o.oc_channel else None)
      occupancy
  in
  let cycle =
    List.concat_map
      (fun (_, wanted) ->
        match Hashtbl.find_opt owners wanted with
        | None -> [ wanted ]
        | Some (holder, _) ->
          let rec from = function
            | c :: _ as suffix when c = wanted -> suffix
            | _ :: tl -> from tl
            | [] -> [ wanted ]
          in
          from (held_in_order holder))
      knot
  in
  let verdict =
    match (rt, cycle) with
    | None, _ | _, [] -> None
    | Some rt, channels ->
      let cdg = Cdg.build rt in
      let rec edges_ok = function
        | a :: (b :: _ as tl) -> List.mem b (Cdg.succ cdg a) && edges_ok tl
        | [ a ] -> List.mem (List.hd channels) (Cdg.succ cdg a)
        | [] -> false
      in
      if edges_ok channels then Some (Cycle_analysis.classify cdg channels) else None
  in
  {
    pm_outcome = !outcome;
    pm_last_cycle = !last;
    pm_waits = wait_edges;
    pm_owners =
      Hashtbl.fold (fun c (l, _) acc -> (c, l) :: acc) owners [] |> List.sort compare;
    pm_knot = knot;
    pm_cycle = cycle;
    pm_occupancy = occupancy;
    pm_aborts =
      Hashtbl.fold (fun l n acc -> (l, n) :: acc) aborts [] |> List.sort compare;
    pm_detections = List.rev !detections;
    pm_victims = List.rev !victims;
    pm_verdict = verdict;
    pm_class =
      (match !outcome with
      | Some "deadlock" ->
        Some
          (if knot = [] then Obs_detect.Weak
           else if !delivered > 0 then Obs_detect.Local
           else Obs_detect.Global)
      | _ -> None);
  }

let pp ?topo () ppf t =
  let chan c =
    match topo with
    | Some tp -> Topology.channel_name tp c
    | None -> Printf.sprintf "channel#%d" c
  in
  Format.fprintf ppf "=== post-mortem ===@\n";
  Format.fprintf ppf "outcome: %s%s at cycle %d@\n"
    (Option.value ~default:"(no run-end event)" t.pm_outcome)
    (match t.pm_class with
    | Some c -> Printf.sprintf " (%s)" (Obs_detect.deadlock_class_string c)
    | None -> "")
    t.pm_last_cycle;
  (match t.pm_knot with
  | [] -> Format.fprintf ppf "wait-for knot: none@\n"
  | knot ->
    Format.fprintf ppf "wait-for knot (%d messages):@\n" (List.length knot);
    List.iter
      (fun (label, channel) ->
        let held =
          List.filter_map (fun (c, l) -> if l = label then Some (chan c) else None) t.pm_owners
        in
        let since =
          match List.find_opt (fun w -> w.we_label = label) t.pm_waits with
          | Some w -> Printf.sprintf " since cycle %d" w.we_since
          | None -> ""
        in
        let holder =
          match List.assoc_opt channel t.pm_owners with
          | Some h -> " held by " ^ h
          | None -> ""
        in
        Format.fprintf ppf "  %s holds [%s], waits for %s%s%s@\n" label
          (String.concat "; " held) (chan channel) holder since)
      knot;
    Format.fprintf ppf "knot channel cycle: %s@\n"
      (String.concat " -> " (List.map chan t.pm_cycle)));
  (match t.pm_verdict with
  | Some (_, verdict) ->
    Format.fprintf ppf "classification: %a@\n" Cycle_analysis.pp_verdict verdict
  | None ->
    if t.pm_knot <> [] then
      Format.fprintf ppf "classification: unavailable (no routing context)@\n");
  (if t.pm_waits <> [] then begin
     Format.fprintf ppf "outstanding waits:@\n";
     List.iter
       (fun w ->
         Format.fprintf ppf "  %s -> %s%s (since cycle %d)@\n" w.we_label (chan w.we_channel)
           (match w.we_holder with Some h -> " held by " ^ h | None -> "")
           w.we_since)
       t.pm_waits
   end);
  (if t.pm_occupancy <> [] then begin
     Format.fprintf ppf "channel occupancy history:@\n";
     List.iter
       (fun o ->
         match o.oc_stop with
         | Some stop ->
           Format.fprintf ppf "  %s: %s [%d..%d]@\n" (chan o.oc_channel) o.oc_label o.oc_start
             stop
         | None ->
           Format.fprintf ppf "  %s: %s [%d.. never released]@\n" (chan o.oc_channel) o.oc_label
             o.oc_start)
       t.pm_occupancy
   end);
  (if t.pm_detections <> [] then begin
     Format.fprintf ppf "online detections:@\n";
     List.iter
       (fun (cycle, members) ->
         Format.fprintf ppf "  cycle %d: %s@\n" cycle (String.concat " -> " members))
       t.pm_detections
   end);
  (if t.pm_victims <> [] then begin
     Format.fprintf ppf "deadlock victims:@\n";
     List.iter
       (fun (l, cycle) -> Format.fprintf ppf "  %s (aborted cycle %d)@\n" l cycle)
       t.pm_victims
   end);
  if t.pm_aborts <> [] then begin
    Format.fprintf ppf "aborts:@\n";
    List.iter (fun (l, n) -> Format.fprintf ppf "  %s x%d@\n" l n) t.pm_aborts
  end

let render ?topo t = Format.asprintf "%a" (pp ?topo ()) t
