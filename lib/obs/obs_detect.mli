(** Online deadlock detection over the live [Obs_event] stream.

    The detector maintains the message wait-for graph incrementally from
    acquire / release / wait-edge / abort events.  Because a blocked
    message wants exactly one channel at a time and a channel has exactly
    one owner, the graph

      waiter --wants--> channel --held by--> next waiter

    is functional (out-degree at most one per message), so every cycle is
    vertex-disjoint from every other and a single walk from the label of
    each incoming wait edge finds any cycle that edge closes -- no global
    rescan is ever needed.  A freshly closed cycle is only a {e candidate}:
    worm tails may still cascade forward and release the very channel the
    cycle turns on.  A candidate is confirmed as a genuine deadlock knot
    once its members have been silent (no flit, acquire, release, or edge
    change touching them) for [bound] consecutive cycles AND the cycle
    re-verifies structurally against the live tables at confirmation time.
    Resolution of a real wait cycle necessarily emits member events, so
    [bound] cycles of member silence over an intact cycle implies the knot
    is permanent; detection latency is bounded by [bound] cycles past the
    last member activity.

    Planned stalls announced at [Run_start] push out a {e stall horizon}:
    no candidate confirms before every planned stall has expired, which
    prevents false positives from messages parked behind a stalled link.

    Determinism contract: given the same event stream, [tick] returns the
    same detections with the same victims regardless of platform or domain
    count -- candidate order, cycle rotation, and victim tie-breaks all
    resolve through label comparisons, never hash or allocation order. *)

(** How to choose the message(s) to abort out of a confirmed knot.  Every
    cycle of the functional wait-for graph is broken by removing any one
    member, so all policies return exactly one victim per knot; they
    differ in which one. *)
type victim_policy =
  | Minimal_victim
      (** Fewest held channels first (least work lost), then the youngest
          waiter (most recently blocked), then the smallest label.  The
          default. *)
  | Youngest  (** Most recently blocked member, then the smallest label. *)
  | Oldest  (** Longest-blocked member, then the smallest label. *)

val victim_policy_string : victim_policy -> string
(** ["minimal"], ["youngest"], ["oldest"]. *)

val victim_policy_of_string : string -> victim_policy option

(** The Stramaglia-Keiren-Zantema deadlock taxonomy (arXiv 2101.06015),
    shared across the kernel witness ([Engine.deadlock_info.d_class]), the
    online detector ([detection.dk_class]) and the post-mortem
    ([Obs_postmortem.t.pm_class]):

    - [Global]: every undelivered message is permanently blocked and the
      blocked set turns on a genuine wait-for cycle -- the paper's
      [Deadlock].
    - [Local]: a wait-for cycle wedged part of the traffic permanently,
      but other messages progressed to delivery around it.
    - [Weak]: traffic is permanently blocked yet the wait-for graph is
      acyclic (e.g. a worm parked behind a failed link), so a drain order
      exists -- freeing the resources in topological order would unblock
      everyone.  Packet disciplines (VCT/SAF) expose this distinction;
      wormhole conflates it with genuine cycles. *)
type deadlock_class = Global | Local | Weak

val deadlock_class_string : deadlock_class -> string
(** ["global"], ["local"], ["weak"]. *)

type config = {
  bound : int;
      (** Confirm a candidate cycle after this many member-quiet cycles.
          Also the detection-latency guarantee: a genuine knot is flagged
          within [bound] cycles of its last member activity.  Must be
          >= 1. *)
  backstop : int;
      (** Watchdog threshold that still covers {e acyclic} wedges (e.g. a
          worm parked forever behind a failed link holds channels without
          waiting in a cycle).  Must be >= 1; keep it well above [bound]
          or the backstop aborts knots before the detector names a
          victim (lint W046). *)
  policy : victim_policy;
}

val default_config : config
(** [{ bound = 16; backstop = 512; policy = Minimal_victim }]. *)

type detection = {
  dk_cycle : int;  (** Cycle at which the knot was confirmed. *)
  dk_formed : int;  (** Cycle of the last member activity before silence. *)
  dk_members : (string * Topology.channel) list;
      (** (waiter, wanted channel) around the cycle, rotated to start at
          the smallest label. *)
  dk_held : (string * Topology.channel list) list;
      (** Channels each member holds at confirmation, sorted. *)
  dk_victims : string list;
      (** Chosen victim(s); always a single label under the built-in
          policies. *)
  dk_class : deadlock_class;
      (** A confirmed knot is a genuine cycle, so never [Weak]: [Local]
          when any message was delivered before confirmation, [Global]
          otherwise.  Provisional -- messages still in flight at
          confirmation may yet deliver; the run-end classification
          ([Engine.deadlock_info.d_class]) is authoritative. *)
}

type t

val create : config -> t
(** Raises [Invalid_argument] if [bound < 1] or [backstop < 1]. *)

val feed : t -> Obs_event.t -> unit
(** Consume one event.  O(1) except when a [Wait_add] closes a cycle, in
    which case one walk bounded by the number of blocked messages runs.
    [Run_start] resets all detector state. *)

val tick : t -> now:int -> detection list
(** End-of-cycle check: confirm and return every candidate whose members
    have been quiet for [bound] cycles (and past the stall horizon),
    re-verified against the live wait/ownership tables.  Confirmed and
    stale candidates are both retired.  Results are sorted by smallest
    member label. *)

val scan : config -> Obs_event.t list -> detection list
(** Offline replay: feed a recorded stream, ticking at each cycle
    boundary and for [bound] trailing cycles past the final event so
    candidates that were quiescent when the run ended still confirm.
    Plan-announcement [Fault] events do not advance the replay clock. *)

val pp_detection : ?topo:Topology.t -> unit -> Format.formatter -> detection -> unit
