(** Counters-first telemetry plane for the struct-of-arrays kernel.

    The event bus ({!Obs}) materializes one structured event per phenomenon,
    which is exactly what the zero-allocation kernel was built to avoid
    paying for.  This module is the cheap alternative: a preallocated
    accumulator of flat int arrays that {!Switch_core.run} writes into with
    plain stores — per-channel busy/owned/acquisition/wait counters,
    head-of-line blocking attribution, a fixed-bucket latency histogram, and
    per-phase work counters.  The steady cycle stays allocation-free with
    stats on; with stats off the kernel pays one [Atomic.get] per run plus a
    never-taken branch per accumulation site.

    Accumulators are single-domain values (plain ints, no atomics): give
    each run its own [t] and combine per-run accumulators with {!merge} in
    canonical task-index order ({!Wr_pool.map_reduce}) — the merged result
    is then byte-identical at any domain count.  The record is exposed so
    the kernel's accumulation sweep can write fields directly. *)

type t = {
  st_nchan : int;  (** channel count the per-channel rows are sized for *)
  (* -- per-channel accumulators, indexed by channel id -- *)
  st_owned : int array;  (** cycles the channel ended owned by some message *)
  st_busy : int array;  (** cycles the channel ended with >= 1 buffered flit *)
  st_acquired : int array;  (** successful acquisitions (awards/claims) *)
  st_waited : int array;  (** waiter-cycles spent blocked on this channel *)
  st_hol : int array;
      (** waiter-cycles attributed to this channel as the {e head} of the
          wait chain: from each blocked message, follow wanted-channel ->
          owner -> its wanted channel until a non-waiting owner (or a free
          channel, or a chain step cap) and charge the final channel.  The
          top entries are the head-of-line blockers of the run. *)
  (* -- injection-to-delivery latency, fixed power-of-two buckets -- *)
  st_lat_counts : int array;
      (** one slot per {!lat_bounds} entry plus the overflow slot *)
  mutable st_lat_sum : int;
  mutable st_lat_max : int;
  mutable st_delivered : int;
  mutable st_blocked : int;  (** total waiter-cycles (sum of [st_waited]) *)
  mutable st_runs : int;
  mutable st_cycles : int;
  (* -- per-phase work counters (messages scanned, a cost proxy) -- *)
  mutable st_ph_arb : int;  (** oblivious arbitration registrations *)
  mutable st_ph_claim : int;  (** adaptive claimants sorted and served *)
  mutable st_ph_advance : int;  (** movement-sweep message visits *)
  mutable st_ph_fault : int;  (** fault-sweep message visits *)
  mutable st_ph_detect : int;  (** detector ticks *)
  st_disc_runs : int array;
      (** runs per switching discipline, slots in {!disciplines} order *)
  st_classes : int array;
      (** deadlock outcomes per Stramaglia-Keiren-Zantema class, slots in
          {!classes} order *)
}

val disciplines : string array
(** Fixed slot labels for [st_disc_runs]:
    [|"wormhole"; "virtual-cut-through"; "store-and-forward"|]. *)

val classes : string array
(** Fixed slot labels for [st_classes]: [|"global"; "local"; "weak"|]. *)

val lat_bounds : int array
(** Latency histogram upper bounds, in cycles: powers of two 1..4096.
    Shared by every accumulator so {!merge} is slot-wise addition. *)

val create : nchan:int -> t
(** A zeroed accumulator for an [nchan]-channel topology.  The only
    allocation of a stats-armed run: everything after this is int stores. *)

val reset : t -> unit

val merge : into:t -> t -> unit
(** Slot-wise addition of [src] into [into] ([st_lat_max] by max).  Merging
    per-run accumulators in task-index order is the canonical reduction
    that keeps campaign stats byte-identical at any domain count.
    @raise Invalid_argument when the two accumulators' [st_nchan] differ. *)

val none : t
(** A shared zero-channel accumulator, never written: the kernel binds it
    when stats are off so the hot path needs no option match per site. *)

val observe_latency : t -> int -> unit
(** Record one delivery latency (bucket bump + sum + max + delivered). *)

(* -- process-wide arming --------------------------------------------- *)

val arm : unit -> unit
(** Arm stats process-wide: every subsequent run with no explicit [?stats]
    creates a private accumulator at run start (setup-time allocation only)
    and folds its scalar totals into {!armed_totals} at run end.  Pure
    observation: outcomes and claim verdicts are byte-identical armed or
    not (QCheck-checked in [test_stats]). *)

val disarm : unit -> unit

val armed : unit -> bool
(** One [Atomic.get]; the kernel reads it once per run. *)

val armed_totals : unit -> (string * int) list
(** Scalar totals folded from armed auto-created accumulators, in fixed
    order: runs, cycles, delivered, blocked_cycles, latency_sum.  Includes
    speculative runs a parallel sweep later cancelled, so (like wall-clock
    timings) the totals are {e not} domain-count invariant; keep them out
    of byte-diffed output sections. *)

val fold_armed : t -> unit
(** Add an accumulator's scalar totals into {!armed_totals}.  Called by the
    kernel at run end for armed auto-created accumulators. *)

(* -- derived quantities ---------------------------------------------- *)

val utilization : t -> int -> float
(** [st_busy.(c) / st_cycles] (0 when no cycles recorded). *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in [0..100]: the smallest histogram bound
    whose cumulative count reaches [q]% of deliveries — an upper bound,
    as fixed-bucket histograms resolve; the overflow bucket reports the
    exact [st_lat_max].  0 when nothing was delivered. *)

val top_blocking : ?k:int -> t -> (int * int) list
(** The [k] (default 3) channels with the largest head-of-line blocking
    attribution, as [(channel, hol_cycles)] sorted descending (index
    ascending on ties), zero entries omitted. *)

(* -- renderers (byte-deterministic whenever the values are) ----------- *)

val to_prometheus : ?topo:Topology.t -> t -> string
(** Prometheus text format, [Obs_metrics] conventions (HELP/TYPE lines,
    sorted families, cumulative histogram buckets + [_sum] + [_count]).
    Per-channel families emit one series per channel with any nonzero
    counter, labelled [channel="name"] (channel ids without [topo]). *)

val to_json : ?topo:Topology.t -> t -> string
(** One-object JSON document, schema [wormhole-stats/1]. *)

val heatmap : ?width:int -> ?topo:Topology.t -> t -> string
(** ASCII per-channel utilization heatmap in [Obs_timeline] style: one row
    per active channel (index order), a [width]-column (default 40) bar of
    the channel's busy fraction, and the utilization/acquisition/wait/HoL
    numbers.  Empty string when no channel saw traffic. *)

val summary : ?top:int -> ?topo:Topology.t -> t -> string
(** Percentile summary table: p50/p90/p99/max latency, deliveries, runs,
    cycles, max channel utilization, blocked cycles, and the [top]
    (default 3) head-of-line blocking channels. *)
