(** The observability bus: process-wide sink management and the standard
    event consumers.

    A {!sink} receives every {!Obs_event.t} the instrumented subsystems
    emit.  Exactly one sink is installed at a time ({!install} /
    {!uninstall}); the engines read it once per run and guard every
    emission site, so a disabled bus costs one [Atomic.get] per run and
    {e nothing} per cycle — zero-cost-when-off.

    Emitting is observation only: installing any sink must not change any
    engine outcome (enforced by a QCheck property in [test_obs]).  Sinks
    may be called from helper domains during pool sweeps, so they must be
    domain-safe; {!recorder} and {!metrics_sink} both are.

    Determinism contract (DESIGN.md §11): per-run event streams are
    deterministic, but a {e sweep's} interleaved stream is not — speculative
    cancelled tasks run or don't depending on domain count.  Campaign-level
    metrics must therefore be derived from canonically-reduced results
    (claims, canonical run counts), never by folding a sweep's raw event
    stream.  [wormsim] (single run) folds events; [run_experiments] builds
    its registry from reduced results only. *)

module Event = Obs_event
module Metrics = Obs_metrics
module Chrome = Obs_chrome
module Timeline = Obs_timeline
module Postmortem = Obs_postmortem

module Stats = Obs_stats
(** Counters-first telemetry accumulator — the cheap, allocation-free
    alternative to arming the event bus.  See {!Obs_stats}. *)

type sink = { emit : Obs_event.t -> unit }

val install : sink -> unit
val uninstall : unit -> unit

val current : unit -> sink option
(** The installed sink, if any.  Engines call this once per run when no
    explicit [?obs] argument is given. *)

val enabled : unit -> bool

val emit : Obs_event.t -> unit
(** Emit to the installed sink, or do nothing.  Callers on hot paths should
    instead hoist [current ()] and guard emission themselves. *)

val null : sink
(** Swallows everything.  Useful to exercise emission paths in tests. *)

val tee : sink list -> sink
(** Fan one event out to several sinks, in list order. *)

val recorder : unit -> sink * (unit -> Obs_event.t list)
(** [recorder ()] is a mutex-protected accumulating sink and a function
    returning everything recorded so far, in emission order. *)

val metrics_sink : Metrics.t -> sink
(** Fold events into the standard [wormhole_*] metric families (runs,
    outcomes, flits by kind, channel acquisitions/releases, wait edges and
    wait-duration histogram, deliveries and latency histogram, aborts by
    reason, retries, faults by kind, deadlock detections and victim aborts,
    sanitizer trips by severity, pool claims/cancels, search totals).  All instruments are pre-registered, so
    the emit path takes no registry lock. *)

val attach_pool : unit -> unit
(** Bridge {!Wr_pool} observer events onto the bus as [Task_claim] /
    [Task_cancel] (pool ["wr_pool"]).  The bridge reads the installed sink
    per event, so it can be attached once at startup. *)

val detach_pool : unit -> unit
