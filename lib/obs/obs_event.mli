(** Structured simulation events: the vocabulary of the observability layer.

    Every dynamic phenomenon the engines, the search layer, and the work pool
    can exhibit is reported as one of these constructors through an
    {!Obs.sink}.  Events are plain data -- consumers (metrics folds, the
    Chrome-trace exporter, the timeline renderer, the deadlock post-mortem)
    never call back into the emitting subsystem.

    Channels are topology ids; messages are identified by their schedule
    label.  Cycle numbers are the engine's own cycle counter, so an event
    stream from one run is totally ordered by (emission order) and almost
    totally ordered by cycle. *)

type flit_kind =
  | Inject  (** a flit entered the network at the source channel *)
  | Hop  (** the header advanced into a newly acquired channel *)
  | Cascade  (** a data flit followed the header one hop *)
  | Consume  (** the destination consumed a flit *)

type fault_kind =
  | Planned_failure  (** plan declares a permanent link failure at [cycle] *)
  | Planned_stall  (** plan declares a stall window of [duration] at [cycle] *)
  | Planned_drop  (** plan declares a source-side drop at [cycle] *)
  | Drop_fired  (** a planned drop actually killed/aborted the message *)

type t =
  | Run_start of { engine : string; algorithm : string; messages : int }
  | Run_end of { cycle : int; outcome : string }
      (** [outcome] is one of ["all-delivered"], ["deadlock"], ["cutoff"],
          ["recovered"] *)
  | Channel_acquire of {
      cycle : int;
      label : string;
      channel : Topology.channel;
      waited : int;  (** cycles spent blocked on this channel before winning *)
    }
  | Channel_release of { cycle : int; label : string; channel : Topology.channel }
  | Wait_add of {
      cycle : int;
      label : string;
      channel : Topology.channel;
      holder : string option;  (** owner of the wanted channel, if occupied *)
    }
      (** the message started waiting for a channel it does not own (a
          wait-for edge appeared) *)
  | Wait_drop of {
      cycle : int;
      label : string;
      channel : Topology.channel;
      waited : int;
    }
      (** the wait-for edge disappeared {e without} an acquisition (want
          changed, hold expired, abort); acquisitions emit
          {!Channel_acquire} instead *)
  | Flit of { cycle : int; label : string; channel : Topology.channel; kind : flit_kind }
  | Delivered of { cycle : int; label : string; latency : int }
  | Abort of { cycle : int; label : string; retries : int; reason : string }
      (** recovery drained the message; [reason] is ["watchdog"], ["drop"],
          or ["deadlock"] (detector-chosen victim) *)
  | Retry of { cycle : int; label : string; resume_at : int }
  | Gave_up of { cycle : int; label : string; fate : string }
  | Fault of {
      cycle : int;
      kind : fault_kind;
      channel : Topology.channel option;
      label : string option;
      duration : int;  (** stall length; 0 otherwise *)
    }
  | Deadlock_detected of {
      cycle : int;
      members : string list;  (** knot labels around the wait-for cycle *)
      channels : Topology.channel list;  (** the wanted channels, in knot order *)
      victims : string list;  (** labels the recovery will abort *)
    }
      (** the online detector ({!Obs_detect}) confirmed a wait-for knot *)
  | Victim_aborted of { cycle : int; label : string; policy : string }
      (** detection-triggered recovery aborted this knot member; the
          matching {!Abort} event (reason ["deadlock"]) follows *)
  | Sanitizer_trip of Diagnostic.t
  | Task_claim of { pool : string; first : int; last : int }
  | Task_cancel of { pool : string; index : int }
  | Search_start of { algorithm : string; tasks : int }
  | Search_end of { algorithm : string; runs : int; cancelled : int; witness : bool }

val flit_kind_string : flit_kind -> string
val fault_kind_string : fault_kind -> string

val cycle_of : t -> int option
(** The simulation cycle the event belongs to, when it has one. *)

val pp : ?topo:Topology.t -> unit -> Format.formatter -> t -> unit
(** One line per event; channel ids resolve to names when [topo] is given. *)
