(* Counters-first telemetry accumulator.  See obs_stats.mli for the
   contract; the short version is: every field is a plain int (or int
   array) the kernel bumps with direct stores, allocation happens only in
   [create], and determinism comes from merging per-run accumulators in
   canonical task-index order rather than sharing state across domains. *)

type t = {
  st_nchan : int;
  st_owned : int array;
  st_busy : int array;
  st_acquired : int array;
  st_waited : int array;
  st_hol : int array;
  st_lat_counts : int array;
  mutable st_lat_sum : int;
  mutable st_lat_max : int;
  mutable st_delivered : int;
  mutable st_blocked : int;
  mutable st_runs : int;
  mutable st_cycles : int;
  mutable st_ph_arb : int;
  mutable st_ph_claim : int;
  mutable st_ph_advance : int;
  mutable st_ph_fault : int;
  mutable st_ph_detect : int;
  st_disc_runs : int array;
  st_classes : int array;
}

(* fixed slot orders for the two small labelled rows *)
let disciplines = [| "wormhole"; "virtual-cut-through"; "store-and-forward" |]
let classes = [| "global"; "local"; "weak" |]

let lat_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]
let n_buckets = Array.length lat_bounds

let create ~nchan =
  {
    st_nchan = nchan;
    st_owned = Array.make (max nchan 1) 0;
    st_busy = Array.make (max nchan 1) 0;
    st_acquired = Array.make (max nchan 1) 0;
    st_waited = Array.make (max nchan 1) 0;
    st_hol = Array.make (max nchan 1) 0;
    st_lat_counts = Array.make (n_buckets + 1) 0;
    st_lat_sum = 0;
    st_lat_max = 0;
    st_delivered = 0;
    st_blocked = 0;
    st_runs = 0;
    st_cycles = 0;
    st_ph_arb = 0;
    st_ph_claim = 0;
    st_ph_advance = 0;
    st_ph_fault = 0;
    st_ph_detect = 0;
    st_disc_runs = Array.make (Array.length disciplines) 0;
    st_classes = Array.make (Array.length classes) 0;
  }

let reset t =
  Array.fill t.st_owned 0 (Array.length t.st_owned) 0;
  Array.fill t.st_busy 0 (Array.length t.st_busy) 0;
  Array.fill t.st_acquired 0 (Array.length t.st_acquired) 0;
  Array.fill t.st_waited 0 (Array.length t.st_waited) 0;
  Array.fill t.st_hol 0 (Array.length t.st_hol) 0;
  Array.fill t.st_lat_counts 0 (n_buckets + 1) 0;
  t.st_lat_sum <- 0;
  t.st_lat_max <- 0;
  t.st_delivered <- 0;
  t.st_blocked <- 0;
  t.st_runs <- 0;
  t.st_cycles <- 0;
  t.st_ph_arb <- 0;
  t.st_ph_claim <- 0;
  t.st_ph_advance <- 0;
  t.st_ph_fault <- 0;
  t.st_ph_detect <- 0;
  Array.fill t.st_disc_runs 0 (Array.length t.st_disc_runs) 0;
  Array.fill t.st_classes 0 (Array.length t.st_classes) 0

let merge ~into src =
  if into.st_nchan <> src.st_nchan then
    invalid_arg
      (Printf.sprintf "Obs_stats.merge: nchan mismatch (%d vs %d)"
         into.st_nchan src.st_nchan);
  let add dst s =
    for i = 0 to into.st_nchan - 1 do
      dst.(i) <- dst.(i) + s.(i)
    done
  in
  add into.st_owned src.st_owned;
  add into.st_busy src.st_busy;
  add into.st_acquired src.st_acquired;
  add into.st_waited src.st_waited;
  add into.st_hol src.st_hol;
  for i = 0 to n_buckets do
    into.st_lat_counts.(i) <- into.st_lat_counts.(i) + src.st_lat_counts.(i)
  done;
  into.st_lat_sum <- into.st_lat_sum + src.st_lat_sum;
  into.st_lat_max <- max into.st_lat_max src.st_lat_max;
  into.st_delivered <- into.st_delivered + src.st_delivered;
  into.st_blocked <- into.st_blocked + src.st_blocked;
  into.st_runs <- into.st_runs + src.st_runs;
  into.st_cycles <- into.st_cycles + src.st_cycles;
  into.st_ph_arb <- into.st_ph_arb + src.st_ph_arb;
  into.st_ph_claim <- into.st_ph_claim + src.st_ph_claim;
  into.st_ph_advance <- into.st_ph_advance + src.st_ph_advance;
  into.st_ph_fault <- into.st_ph_fault + src.st_ph_fault;
  into.st_ph_detect <- into.st_ph_detect + src.st_ph_detect;
  for i = 0 to Array.length into.st_disc_runs - 1 do
    into.st_disc_runs.(i) <- into.st_disc_runs.(i) + src.st_disc_runs.(i)
  done;
  for i = 0 to Array.length into.st_classes - 1 do
    into.st_classes.(i) <- into.st_classes.(i) + src.st_classes.(i)
  done

let none = create ~nchan:0

let observe_latency t lat =
  t.st_delivered <- t.st_delivered + 1;
  t.st_lat_sum <- t.st_lat_sum + lat;
  if lat > t.st_lat_max then t.st_lat_max <- lat;
  (* linear walk: 13 bounds, delivery is a cold event next to the cycle
     sweeps, and the walk allocates nothing *)
  let i = ref 0 in
  while !i < n_buckets && lat > lat_bounds.(!i) do
    incr i
  done;
  t.st_lat_counts.(!i) <- t.st_lat_counts.(!i) + 1

(* -- process-wide arming ---------------------------------------------- *)

let armed_flag = Atomic.make false
let armed_runs = Atomic.make 0
let armed_cycles = Atomic.make 0
let armed_delivered = Atomic.make 0
let armed_blocked = Atomic.make 0
let armed_lat_sum = Atomic.make 0

let arm () = Atomic.set armed_flag true
let disarm () = Atomic.set armed_flag false
let armed () = Atomic.get armed_flag

let fold_armed t =
  ignore (Atomic.fetch_and_add armed_runs t.st_runs);
  ignore (Atomic.fetch_and_add armed_cycles t.st_cycles);
  ignore (Atomic.fetch_and_add armed_delivered t.st_delivered);
  ignore (Atomic.fetch_and_add armed_blocked t.st_blocked);
  ignore (Atomic.fetch_and_add armed_lat_sum t.st_lat_sum)

let armed_totals () =
  [
    ("runs", Atomic.get armed_runs);
    ("cycles", Atomic.get armed_cycles);
    ("delivered", Atomic.get armed_delivered);
    ("blocked_cycles", Atomic.get armed_blocked);
    ("latency_sum", Atomic.get armed_lat_sum);
  ]

(* -- derived quantities ------------------------------------------------ *)

let utilization t c =
  if t.st_cycles = 0 then 0.0
  else float_of_int t.st_busy.(c) /. float_of_int t.st_cycles

let percentile t q =
  if t.st_delivered = 0 then 0
  else begin
    (* smallest bound whose cumulative count covers q% of deliveries;
       ceil so p100 always lands on a populated bucket *)
    let target =
      let n = float_of_int t.st_delivered *. q /. 100.0 in
      max 1 (int_of_float (ceil n))
    in
    let cum = ref 0 and i = ref 0 in
    while !i < n_buckets && !cum + t.st_lat_counts.(!i) < target do
      cum := !cum + t.st_lat_counts.(!i);
      incr i
    done;
    if !i < n_buckets then lat_bounds.(!i) else t.st_lat_max
  end

let top_blocking ?(k = 3) t =
  let all = ref [] in
  for c = t.st_nchan - 1 downto 0 do
    if t.st_hol.(c) > 0 then all := (c, t.st_hol.(c)) :: !all
  done;
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare b a) !all
  in
  List.filteri (fun i _ -> i < k) sorted

(* -- renderers --------------------------------------------------------- *)

let chan_name topo c =
  match topo with
  | Some t -> Topology.channel_name t c
  | None -> Printf.sprintf "channel#%d" c

(* a channel earns a row/series once any of its counters is nonzero; the
   predicate is a pure function of accumulator values, so the filtered
   output stays byte-deterministic *)
let active t c =
  t.st_owned.(c) > 0 || t.st_busy.(c) > 0 || t.st_acquired.(c) > 0
  || t.st_waited.(c) > 0
  || t.st_hol.(c) > 0

let to_prometheus ?topo t =
  let buf = Buffer.create 4096 in
  let family name kind help value_of =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
    for c = 0 to t.st_nchan - 1 do
      if active t c then
        Buffer.add_string buf
          (Printf.sprintf "%s{channel=\"%s\"} %d\n" name
             (Diagnostic.json_escape (chan_name topo c))
             (value_of c))
    done
  in
  let scalar name kind help v =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
    Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
  in
  (* families in name order, matching Obs_metrics's sorted rendering *)
  family "wormhole_stats_channel_acquisitions_total" "counter"
    "successful channel acquisitions (awards/claims)" (fun c ->
      t.st_acquired.(c));
  family "wormhole_stats_channel_busy_cycles_total" "counter"
    "cycles the channel held at least one buffered flit" (fun c ->
      t.st_busy.(c));
  family "wormhole_stats_channel_hol_blocked_cycles_total" "counter"
    "waiter-cycles attributed to the channel as head of the wait chain"
    (fun c -> t.st_hol.(c));
  family "wormhole_stats_channel_owned_cycles_total" "counter"
    "cycles the channel was owned by some message" (fun c -> t.st_owned.(c));
  family "wormhole_stats_channel_wait_cycles_total" "counter"
    "waiter-cycles spent blocked on the channel" (fun c -> t.st_waited.(c));
  scalar "wormhole_stats_cycles_total" "counter" "kernel cycles accumulated"
    t.st_cycles;
  Buffer.add_string buf
    "# HELP wormhole_stats_deadlocks_total deadlock outcomes by Stramaglia-Keiren-Zantema class\n";
  Buffer.add_string buf "# TYPE wormhole_stats_deadlocks_total counter\n";
  Array.iteri
    (fun i cls ->
      Buffer.add_string buf
        (Printf.sprintf "wormhole_stats_deadlocks_total{class=\"%s\"} %d\n" cls
           t.st_classes.(i)))
    classes;
  scalar "wormhole_stats_delivered_total" "counter" "messages delivered"
    t.st_delivered;
  Buffer.add_string buf
    "# HELP wormhole_stats_latency_cycles injection-to-delivery latency\n";
  Buffer.add_string buf "# TYPE wormhole_stats_latency_cycles histogram\n";
  let cum = ref 0 in
  for i = 0 to n_buckets - 1 do
    cum := !cum + t.st_lat_counts.(i);
    Buffer.add_string buf
      (Printf.sprintf "wormhole_stats_latency_cycles_bucket{le=\"%d\"} %d\n"
         lat_bounds.(i) !cum)
  done;
  cum := !cum + t.st_lat_counts.(n_buckets);
  Buffer.add_string buf
    (Printf.sprintf "wormhole_stats_latency_cycles_bucket{le=\"+Inf\"} %d\n"
       !cum);
  Buffer.add_string buf
    (Printf.sprintf "wormhole_stats_latency_cycles_sum %d\n" t.st_lat_sum);
  Buffer.add_string buf
    (Printf.sprintf "wormhole_stats_latency_cycles_count %d\n" t.st_delivered);
  Buffer.add_string buf
    "# HELP wormhole_stats_phase_work_total per-phase message visits\n";
  Buffer.add_string buf "# TYPE wormhole_stats_phase_work_total counter\n";
  List.iter
    (fun (phase, v) ->
      Buffer.add_string buf
        (Printf.sprintf "wormhole_stats_phase_work_total{phase=\"%s\"} %d\n"
           phase v))
    [
      ("advance", t.st_ph_advance);
      ("arbitration", t.st_ph_arb);
      ("claims", t.st_ph_claim);
      ("detect", t.st_ph_detect);
      ("fault", t.st_ph_fault);
    ];
  Buffer.add_string buf
    "# HELP wormhole_stats_runs_by_discipline_total runs per switching discipline\n";
  Buffer.add_string buf "# TYPE wormhole_stats_runs_by_discipline_total counter\n";
  Array.iteri
    (fun i d ->
      Buffer.add_string buf
        (Printf.sprintf
           "wormhole_stats_runs_by_discipline_total{discipline=\"%s\"} %d\n" d
           t.st_disc_runs.(i)))
    disciplines;
  scalar "wormhole_stats_runs_total" "counter" "simulator runs accumulated"
    t.st_runs;
  Buffer.contents buf

let to_json ?topo t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"wormhole-stats/1\"";
  Buffer.add_string buf
    (Printf.sprintf ",\"nchan\":%d,\"runs\":%d,\"cycles\":%d" t.st_nchan
       t.st_runs t.st_cycles);
  Buffer.add_string buf
    (Printf.sprintf ",\"delivered\":%d,\"blocked_cycles\":%d" t.st_delivered
       t.st_blocked);
  Buffer.add_string buf ",\"latency\":{\"buckets\":[";
  for i = 0 to n_buckets - 1 do
    if i > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "{\"le\":%d,\"count\":%d}" lat_bounds.(i)
         t.st_lat_counts.(i))
  done;
  Buffer.add_string buf
    (Printf.sprintf "],\"overflow\":%d,\"sum\":%d,\"max\":%d}"
       t.st_lat_counts.(n_buckets) t.st_lat_sum t.st_lat_max);
  Buffer.add_string buf
    (Printf.sprintf
       ",\"phases\":{\"arbitration\":%d,\"claims\":%d,\"advance\":%d,\"fault\":%d,\"detect\":%d}"
       t.st_ph_arb t.st_ph_claim t.st_ph_advance t.st_ph_fault t.st_ph_detect);
  Buffer.add_string buf ",\"disciplines\":{";
  Array.iteri
    (fun i d ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\":%d" (if i > 0 then "," else "") d
           t.st_disc_runs.(i)))
    disciplines;
  Buffer.add_string buf "},\"deadlocks\":{";
  Array.iteri
    (fun i cls ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\":%d" (if i > 0 then "," else "") cls
           t.st_classes.(i)))
    classes;
  Buffer.add_char buf '}';
  Buffer.add_string buf ",\"channels\":[";
  let first = ref true in
  for c = 0 to t.st_nchan - 1 do
    if active t c then begin
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":%d,\"name\":\"%s\",\"owned\":%d,\"busy\":%d,\"acquired\":%d,\"wait\":%d,\"hol\":%d}"
           c
           (Diagnostic.json_escape (chan_name topo c))
           t.st_owned.(c) t.st_busy.(c) t.st_acquired.(c) t.st_waited.(c)
           t.st_hol.(c))
    end
  done;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let heatmap ?(width = 40) ?topo t =
  let actives = ref [] in
  for c = t.st_nchan - 1 downto 0 do
    if active t c then actives := c :: !actives
  done;
  match !actives with
  | [] -> ""
  | channels ->
      let name_width =
        List.fold_left
          (fun w c -> max w (String.length (chan_name topo c)))
          7 channels
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %5s  %s  %6s %6s %6s\n" name_width "channel"
           "util" (String.make width ' ') "acq" "wait" "hol");
      List.iter
        (fun c ->
          let u = utilization t c in
          let filled =
            (* ceil so any nonzero utilization shows at least one mark *)
            min width (int_of_float (ceil (u *. float_of_int width)))
          in
          let bar =
            String.make filled '#' ^ String.make (width - filled) '.'
          in
          Buffer.add_string buf
            (Printf.sprintf "%-*s  %4.0f%%  %s  %6d %6d %6d\n" name_width
               (chan_name topo c) (u *. 100.0) bar t.st_acquired.(c)
               t.st_waited.(c) t.st_hol.(c)))
        channels;
      Buffer.contents buf

let summary ?(top = 3) ?topo t =
  let buf = Buffer.create 512 in
  let tbl = Table.create ~aligns:[ Table.Left; Table.Right ] [ "metric"; "value" ] in
  let pct q =
    if t.st_delivered = 0 then "-"
    else
      let v = percentile t q in
      (* a bucket bound at or above the observed max collapses to the
         exact max; anything else is the bucket's upper bound *)
      if v >= t.st_lat_max then string_of_int t.st_lat_max
      else "<=" ^ string_of_int v
  in
  Table.add_row tbl [ "runs"; string_of_int t.st_runs ];
  Table.add_row tbl [ "cycles"; string_of_int t.st_cycles ];
  Table.add_row tbl [ "delivered"; string_of_int t.st_delivered ];
  Table.add_row tbl [ "p50 latency (cycles)"; pct 50.0 ];
  Table.add_row tbl [ "p90 latency (cycles)"; pct 90.0 ];
  Table.add_row tbl [ "p99 latency (cycles)"; pct 99.0 ];
  Table.add_row tbl [ "max latency (cycles)"; string_of_int t.st_lat_max ];
  let max_util = ref 0.0 and max_util_c = ref (-1) in
  for c = 0 to t.st_nchan - 1 do
    let u = utilization t c in
    if u > !max_util then begin
      max_util := u;
      max_util_c := c
    end
  done;
  Table.add_row tbl
    [
      "max channel util";
      (if !max_util_c < 0 then "-"
       else
         Printf.sprintf "%.1f%% (%s)" (!max_util *. 100.0)
           (chan_name topo !max_util_c));
    ];
  Table.add_row tbl [ "blocked cycles"; string_of_int t.st_blocked ];
  Buffer.add_string buf (Table.render tbl);
  Buffer.add_char buf '\n';
  (match top_blocking ~k:top t with
  | [] -> Buffer.add_string buf "no head-of-line blocking recorded\n"
  | tops ->
      let bt =
        Table.create
          ~aligns:[ Table.Left; Table.Right; Table.Right ]
          [ "blocking channel"; "hol-cycles"; "wait-cycles" ]
      in
      List.iter
        (fun (c, hol) ->
          Table.add_row bt
            [
              chan_name topo c; string_of_int hol; string_of_int t.st_waited.(c);
            ])
        tops;
      Buffer.add_string buf (Table.render bt));
  Buffer.contents buf
