(* Process-wide event-sink management plus the standard consumers.

   Mirrors the Sanitizer install/current pattern: one optional sink held in
   an Atomic, read by the engines at run start.  Engines hoist the option
   once per run and guard every emission site with [if obs_on], so a
   disabled bus costs one Atomic read per run and nothing per cycle. *)

module Event = Obs_event
module Metrics = Obs_metrics
module Chrome = Obs_chrome
module Timeline = Obs_timeline
module Postmortem = Obs_postmortem
module Stats = Obs_stats

type sink = { emit : Obs_event.t -> unit }

let installed : sink option Atomic.t = Atomic.make None
let install s = Atomic.set installed (Some s)
let uninstall () = Atomic.set installed None
let current () = Atomic.get installed
let enabled () = Atomic.get installed <> None

let emit e = match Atomic.get installed with None -> () | Some s -> s.emit e

let tee sinks =
  let emit e = List.iter (fun s -> s.emit e) sinks in
  { emit }

let null = { emit = (fun _ -> ()) }

let recorder () =
  let lock = Mutex.create () in
  let events = ref [] in
  let emit e =
    Mutex.lock lock;
    events := e :: !events;
    Mutex.unlock lock
  in
  let contents () =
    Mutex.lock lock;
    let l = List.rev !events in
    Mutex.unlock lock;
    l
  in
  ({ emit }, contents)

(* ------------------------------------------------------------------ *)
(* Metrics fold                                                        *)

(* Standard metric vocabulary.  Every instrument is pre-registered for the
   label values the event stream can produce, so the emit path is pure
   Atomic updates -- no registry lock on the hot path. *)

let cycle_buckets = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]
let wait_buckets = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

let metrics_sink reg =
  let c = Metrics.counter reg in
  let h = Metrics.histogram reg in
  let runs = c ~help:"Engine runs started" "wormhole_runs_total" in
  let outcome =
    let mk o =
      (o, c ~help:"Engine runs finished, by outcome" ~labels:[ ("outcome", o) ]
            "wormhole_run_outcomes_total")
    in
    [ mk "all-delivered"; mk "deadlock"; mk "cutoff"; mk "recovered" ]
  in
  let run_cycles =
    h ~help:"Final cycle count per run" ~buckets:cycle_buckets "wormhole_run_cycles"
  in
  let flits =
    let mk k =
      (k, c ~help:"Flit movements, by kind" ~labels:[ ("kind", Event.flit_kind_string k) ]
            "wormhole_flits_total")
    in
    [ mk Event.Inject; mk Event.Hop; mk Event.Cascade; mk Event.Consume ]
  in
  let acquires = c ~help:"Channel acquisitions" "wormhole_channel_acquisitions_total" in
  let releases = c ~help:"Channel releases" "wormhole_channel_releases_total" in
  let wait_edges = c ~help:"Wait-for edges added" "wormhole_wait_edges_total" in
  let wait_cycles =
    h ~help:"Cycles spent blocked per resolved wait" ~buckets:wait_buckets
      "wormhole_wait_cycles"
  in
  let delivered = c ~help:"Messages delivered" "wormhole_messages_delivered_total" in
  let latency =
    h ~help:"Injection-to-delivery latency" ~buckets:cycle_buckets
      "wormhole_message_latency_cycles"
  in
  let aborts reason =
    c ~help:"Recovery aborts, by reason" ~labels:[ ("reason", reason) ]
      "wormhole_aborts_total"
  in
  let abort_watchdog = aborts "watchdog"
  and abort_drop = aborts "drop"
  and abort_deadlock = aborts "deadlock" in
  let detections =
    c ~help:"Deadlock knots confirmed by the online detector"
      "wormhole_deadlocks_detected_total"
  in
  let victims =
    c ~help:"Messages aborted as deadlock victims" "wormhole_victims_aborted_total"
  in
  let retries = c ~help:"Messages rescheduled after an abort" "wormhole_retries_total" in
  let gave_up = c ~help:"Messages that exhausted their retry budget" "wormhole_gave_up_total" in
  let faults =
    let mk k =
      (k, c ~help:"Fault-plan events, by kind" ~labels:[ ("kind", Event.fault_kind_string k) ]
            "wormhole_faults_total")
    in
    [ mk Event.Planned_failure; mk Event.Planned_stall; mk Event.Planned_drop;
      mk Event.Drop_fired ]
  in
  let trips sev =
    c ~help:"Sanitizer diagnostics, by severity" ~labels:[ ("severity", sev) ]
      "wormhole_sanitizer_trips_total"
  in
  let trip_error = trips "error" and trip_warning = trips "warning" and trip_info = trips "info" in
  let pool_claims = c ~help:"Pool chunk claims" "wormhole_pool_task_claims_total" in
  let pool_tasks = c ~help:"Pool tasks claimed" "wormhole_pool_tasks_claimed_total" in
  let pool_cancels = c ~help:"Pool tasks cancelled" "wormhole_pool_task_cancels_total" in
  let searches = c ~help:"Search invocations" "wormhole_searches_total" in
  let search_runs = c ~help:"Canonical engine runs inside searches" "wormhole_search_runs_total" in
  let search_cancelled =
    c ~help:"Speculative engine runs discarded by search cancellation"
      "wormhole_search_cancelled_total"
  in
  let emit (e : Event.t) =
    match e with
    | Run_start _ -> Metrics.inc runs
    | Run_end { cycle; outcome = o } ->
      (match List.assoc_opt o outcome with Some cc -> Metrics.inc cc | None -> ());
      Metrics.observe run_cycles cycle
    | Channel_acquire { waited; _ } ->
      Metrics.inc acquires;
      if waited > 0 then Metrics.observe wait_cycles waited
    | Channel_release _ -> Metrics.inc releases
    | Wait_add _ -> Metrics.inc wait_edges
    | Wait_drop { waited; _ } -> Metrics.observe wait_cycles waited
    | Flit { kind; _ } -> Metrics.inc (List.assq kind flits)
    | Delivered { latency = l; _ } ->
      Metrics.inc delivered;
      Metrics.observe latency l
    | Abort { reason; _ } ->
      Metrics.inc
        (match reason with
        | "drop" -> abort_drop
        | "deadlock" -> abort_deadlock
        | _ -> abort_watchdog)
    | Deadlock_detected _ -> Metrics.inc detections
    | Victim_aborted _ -> Metrics.inc victims
    | Retry _ -> Metrics.inc retries
    | Gave_up _ -> Metrics.inc gave_up
    | Fault { kind; _ } -> Metrics.inc (List.assq kind faults)
    | Sanitizer_trip d ->
      Metrics.inc
        (match d.Diagnostic.severity with
        | Diagnostic.Error -> trip_error
        | Diagnostic.Warning -> trip_warning
        | Diagnostic.Info -> trip_info)
    | Task_claim { first; last; _ } ->
      Metrics.inc pool_claims;
      Metrics.add pool_tasks (last - first + 1)
    | Task_cancel _ -> Metrics.inc pool_cancels
    | Search_start _ -> Metrics.inc searches
    | Search_end { runs = r; cancelled; _ } ->
      Metrics.add search_runs r;
      Metrics.add search_cancelled cancelled
  in
  { emit }

(* ------------------------------------------------------------------ *)
(* Pool bridge                                                         *)

let attach_pool () =
  Wr_pool.set_observer
    (Some
       (fun ev ->
         match Atomic.get installed with
         | None -> ()
         | Some s -> (
           match ev with
           | Wr_pool.Claim { first; last } ->
             s.emit (Event.Task_claim { pool = "wr_pool"; first; last })
           | Wr_pool.Cancel { index } ->
             s.emit (Event.Task_cancel { pool = "wr_pool"; index }))))

let detach_pool () = Wr_pool.set_observer None
