(** Structured diagnostics: the common currency of the [wormlint] static
    lints, the engines' sanitizer mode, and the [Verify] pipeline.

    Every diagnostic carries a {e stable code} whose first letter encodes its
    severity -- [E0xx]/[E1xx] errors, [W0xx] warnings, [I0xx] informational
    notes -- so scripts and CI can match on codes instead of message text.
    The code table is documented in DESIGN.md ("The wr_analysis layer").

    Code ranges:
    - [E001]-[E005]  routing totality/termination defects
    - [W010]-[E011]  path-shape lints (dead channels, minimality)
    - [W012]-[W014]  Definition 7-9 closure lints
    - [I020]-[I023]  CDG cycle classifications (Theorems 2-5)
    - [E030]-[I032]  Duato escape-coverage lints
    - [E040]-[W046]  fault-plan and recovery-config lints
    - [E050]-[I054]  Verify conclusions
    - [E060]-[W062]  synthesis verdicts (existence, certificate, restriction)
    - [E090]-[E091]  search-layer internal errors (fatal)
    - [E101]-[E106]  simulator sanitizer invariants *)

type severity = Error | Warning | Info

type subject =
  | Algorithm of string  (** whole-algorithm diagnostic *)
  | Node of Topology.node
  | Channel of Topology.channel
  | Message of string  (** a message label *)
  | Pair of Topology.node * Topology.node  (** a source/destination pair *)
  | Cycle of Topology.channel list  (** a CDG cycle *)
  | Event of int  (** index into a fault plan *)

type t = {
  code : string;  (** stable, e.g. ["E011"] *)
  severity : severity;
  subject : subject;
  message : string;
  context : (string * string) list;  (** extra key/value detail (witnesses...) *)
}

val error : ?context:(string * string) list -> string -> subject -> string -> t
val warning : ?context:(string * string) list -> string -> subject -> string -> t
val info : ?context:(string * string) list -> string -> subject -> string -> t
(** Constructors.  @raise Invalid_argument when the code's first letter does
    not match the severity ([E]rror / [W]arning / [I]nfo). *)

val is_error : t -> bool
val severity_string : severity -> string

val count : severity -> t list -> int
val errors : t list -> t list

val by_severity : t list -> t list
(** Stable sort, errors first, then warnings, then infos. *)

val subject_string : ?topo:Topology.t -> subject -> string
(** Human-readable subject; channel and node ids are resolved to names when
    the topology is given, otherwise printed as [channel#4] / [node#2]. *)

val pp : ?topo:Topology.t -> unit -> Format.formatter -> t -> unit
(** One line: [CODE severity subject: message (key=value, ...)]. *)

val to_json : ?topo:Topology.t -> t -> string
(** A single-diagnostic JSON object with fields [code], [severity],
    [subject], [message] and [context] (an object). *)

val list_to_json : ?topo:Topology.t -> t list -> string
(** A JSON array of {!to_json} objects. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal (no quotes
    added).  Exposed for callers assembling larger JSON documents. *)
