(** Seeded-defect corpus: one deliberately broken miniature per lint code.

    Each entry builds a tiny network whose routing (or fault plan) contains
    exactly one planted defect, runs the relevant {!Lint} battery, and
    expects the named code to appear {e exactly once}.  Other codes may ride
    along where the defect forces them (a livelocked pair necessarily leaves
    its direct channel dead, so the E001 entry also carries a W010); the
    check is on the expected code's count only.  The synthesis entries work
    the same way in both directions: impossibility miniatures
    (under-provisioned unidirectional rings, a disconnected pair) must
    raise [E060], and well-provisioned miniatures must earn their [I061]
    certificate or [W062] restriction note.  EXP-LINT and the wormlint
    [--corpus] flag both run {!check_all}. *)

type entry = {
  c_name : string;
  c_expected : string;  (** the diagnostic code the planted defect must raise *)
  c_note : string;  (** what is broken, one line *)
  c_run : unit -> Topology.t * Diagnostic.t list;
      (** build the defective network and lint it *)
}

val entries : unit -> entry list

val check : entry -> (unit, string) result
(** [Ok ()] when the expected code fires exactly once; [Error what] with the
    observed diagnostics otherwise. *)

val check_all : unit -> (string * (unit, string) result) list
