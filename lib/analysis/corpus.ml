type entry = {
  c_name : string;
  c_expected : string;
  c_note : string;
  c_run : unit -> Topology.t * Diagnostic.t list;
}

let entry c_name c_expected c_note c_run = { c_name; c_expected; c_note; c_run }

(* -- tiny topologies ------------------------------------------------- *)

(* a triangle with all six directed channels *)
let triangle () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let c = Topology.add_node t "c" in
  let ab, ba = Topology.add_bidirectional t a b in
  let bc, cb = Topology.add_bidirectional t b c in
  let ca, ac = Topology.add_bidirectional t c a in
  (t, a, b, c, ab, ba, bc, cb, ca, ac)

(* a bidirectional 4-cycle a-b-c-d *)
let square () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let c = Topology.add_node t "c" in
  let d = Topology.add_node t "d" in
  let ab, ba = Topology.add_bidirectional t a b in
  let bc, cb = Topology.add_bidirectional t b c in
  let cd, dc = Topology.add_bidirectional t c d in
  let da, ad = Topology.add_bidirectional t d a in
  (t, (a, b, c, d), (ab, ba, bc, cb, cd, dc, da, ad))

let direct t input dest =
  let here = Routing.current_node t input in
  if here = dest then None else Topology.find_channel t here dest

let lint_simple ?(minimal = false) rt = Lint.algorithm ~declared_minimal:minimal rt

(* -- entries --------------------------------------------------------- *)

let e001 () =
  let (t, a, b, c, ab, ba, _bc, _cb, ca, ac) = triangle () in
  let f input dest =
    match input with
    | Routing.Inject s when s = a && dest = b -> Some ac
    | Routing.Inject s when s = c && dest = b -> Some ca
    | Routing.Inject s when s = a && dest = c -> Some ab (* wrong way *)
    | Routing.From ch when ch = ab && dest = c -> Some ba (* ping *)
    | Routing.From ch when ch = ba && dest = c -> Some ab (* pong *)
    | _ -> direct t input dest
  in
  let rt = Routing.create ~name:"seed-e001" t f in
  (t, lint_simple rt)

let e002 () =
  let (t, a, b, c, ab, _ba, _bc, cb, ca, ac) = triangle () in
  let f input dest =
    match input with
    | Routing.Inject s when s = a && dest = b -> Some ac
    | Routing.Inject s when s = c && dest = b -> Some ca
    | Routing.Inject s when s = a && dest = c -> Some ab
    | Routing.From ch when ch = ab && dest = c -> Some cb (* cb does not leave b *)
    | _ -> direct t input dest
  in
  let rt = Routing.create ~name:"seed-e002" t f in
  (t, lint_simple rt)

let e003 () =
  let (t, a, b, c, ab, _ba, _bc, _cb, ca, ac) = triangle () in
  let f input dest =
    match input with
    | Routing.Inject s when s = a && dest = b -> Some ac
    | Routing.Inject s when s = c && dest = b -> Some ca
    | Routing.Inject s when s = a && dest = c -> Some ab
    | Routing.From ch when ch = ab && dest = c -> None (* consume at b, not c *)
    | _ -> direct t input dest
  in
  let rt = Routing.create ~name:"seed-e003" t f in
  (t, lint_simple rt)

let e004 () =
  let (t, _a, b, _c, ab, _ba, bc, _cb, _ca, _ac) = triangle () in
  let f input dest =
    match input with
    | Routing.From ch when ch = ab && dest = b -> Some bc (* sail past b *)
    | _ -> direct t input dest
  in
  let rt = Routing.create ~name:"seed-e004" t f in
  (t, lint_simple rt)

let e005 () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let _ab, ba = Topology.add_bidirectional t a b in
  let ad =
    Adaptive.create ~name:"seed-e005" t (fun input dest ->
        let here = Routing.current_node t input in
        if here = dest then []
        else if here = a && dest = b then [] (* no option at a reachable state *)
        else [ ba ])
  in
  (t, Lint.adaptive ad)

let w010 () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let ab0 = Topology.add_channel t a b in
  let _ab1 = Topology.add_channel ~vc:1 t a b in
  let ba = Topology.add_channel t b a in
  let f input dest =
    let here = Routing.current_node t input in
    if here = dest then None else if here = a then Some ab0 else Some ba
  in
  let rt = Routing.create ~name:"seed-w010" t f in
  (t, lint_simple rt)

let e011 () =
  let (t, (a, b, c, d), (_ab, ba, bc, cb, cd, dc, da, ad)) = square () in
  let rt =
    Table_routing.of_paths ~name:"seed-e011" ~default:(fun _ _ -> None) t
      [
        (a, b, [ ad; dc; cb ]); (* the long way round: 3 hops, shortest is 1 *)
        (a, c, [ ad; dc ]);
        (a, d, [ ad ]);
        (b, a, [ ba ]);
        (b, c, [ bc ]);
        (b, d, [ ba; ad ]);
        (c, a, [ cd; da ]);
        (c, b, [ cb ]);
        (c, d, [ cd ]);
        (d, a, [ da ]);
        (d, b, [ dc; cb ]);
        (d, c, [ dc ]);
      ]
  in
  (t, lint_simple ~minimal:true rt)

let w012 () =
  let (t, (a, b, c, d), (ab, ba, bc, cb, cd, dc, da, ad)) = square () in
  let rt =
    Table_routing.of_paths ~name:"seed-w012" ~default:(fun _ _ -> None) t
      [
        (b, c, [ ba; ad; dc ]);
        (a, c, [ ab; bc ]); (* != the (b,c) suffix [ad; dc] *)
        (a, b, [ ab ]);
        (a, d, [ ad ]);
        (b, a, [ ba ]);
        (b, d, [ ba; ad ]);
        (c, a, [ cd; da ]);
        (c, b, [ cb ]);
        (c, d, [ cd ]);
        (d, a, [ da ]);
        (d, b, [ da; ab ]);
        (d, c, [ dc ]);
      ]
  in
  (t, lint_simple rt)

let w013 () =
  let (t, (a, b, c, d), (ab, ba, bc, cb, cd, dc, da, ad)) = square () in
  let rt =
    Table_routing.of_paths ~name:"seed-w013" ~default:(fun _ _ -> None) t
      [
        (a, b, [ ad; dc; cb ]); (* != the (a,c) prefix [ab] *)
        (a, c, [ ab; bc ]);
        (a, d, [ ad ]);
        (b, a, [ ba ]);
        (b, c, [ bc ]);
        (b, d, [ ba; ad ]);
        (c, a, [ cd; da ]);
        (c, b, [ cb ]);
        (c, d, [ cd ]);
        (d, a, [ da ]);
        (d, b, [ dc; cb ]);
        (d, c, [ dc ]);
      ]
  in
  (t, lint_simple rt)

let w014 () =
  let (t, (a, b, c, d), (ab, ba, bc, cb, cd, dc, da, ad)) = square () in
  let rt =
    Table_routing.of_paths ~name:"seed-w014" ~default:(fun _ _ -> None) t
      [
        (a, c, [ ab; ba; ad; dc ]); (* visits a twice *)
        (a, b, [ ab ]);
        (a, d, [ ad ]);
        (b, a, [ ba ]);
        (b, c, [ bc ]);
        (b, d, [ ba; ad ]);
        (c, a, [ cd; da ]);
        (c, b, [ cb ]);
        (c, d, [ cd ]);
        (d, a, [ da ]);
        (d, b, [ dc; cb ]);
        (d, c, [ dc ]);
      ]
  in
  (t, lint_simple rt)

let e022 () =
  let ring = Builders.ring ~unidirectional:true 4 in
  let rt = Ring_routing.clockwise ring in
  (ring.Builders.topo, Lint.algorithm ~expect_deadlock_free:true rt)

let e030 () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let ab0 = Topology.add_channel t a b in
  let ab1 = Topology.add_channel ~vc:1 t a b in
  let ba0 = Topology.add_channel t b a in
  let ba1 = Topology.add_channel ~vc:1 t b a in
  let ad =
    Adaptive.create ~name:"seed-e030" t (fun input dest ->
        let here = Routing.current_node t input in
        if here = dest then [] else if here = a then [ ab0 ] else [ ba0 ])
  in
  let escape =
    Routing.create ~name:"seed-e030-escape" t (fun input dest ->
        let here = Routing.current_node t input in
        if here = dest then None else if here = a then Some ab1 else Some ba1)
  in
  (t, Lint.adaptive ~escape ad)

let e031 () =
  let mesh = Builders.mesh [ 4; 4 ] in
  let ad = Adaptive.fully_adaptive_minimal mesh in
  let escape = Dimension_order.mesh mesh in
  (mesh.Builders.topo, Lint.adaptive ~expect_deadlock_free:true ~escape ad)

let fault_topo () = (Builders.line 3).Builders.topo

let e040 () =
  let t = fault_topo () in
  let plan = Fault.make [ Fault.Link_failure { channel = 99; at = 0 } ] in
  (t, Lint.fault_plan t plan)

let e041 () =
  let t = fault_topo () in
  let plan =
    Fault.make
      [
        Fault.Link_failure { channel = 0; at = 2 };
        Fault.Transient_stall { channel = 0; at = 5; duration = 3 };
      ]
  in
  (t, Lint.fault_plan t plan)

let w042 () =
  let t = fault_topo () in
  let plan = Fault.make [ Fault.Message_drop { label = "ghost"; at = 3 } ] in
  (t, Lint.fault_plan ~labels:[ "m1"; "m2" ] t plan)

let w043 () =
  let t = fault_topo () in
  let plan =
    Fault.make
      [
        Fault.Link_failure { channel = 1; at = 0 };
        Fault.Link_failure { channel = 1; at = 7 };
      ]
  in
  (t, Lint.fault_plan t plan)

let w044 () =
  let mesh = Builders.mesh [ 3; 3 ] in
  let ad = Adaptive.fully_adaptive_minimal mesh in
  let reroute = Dimension_order.mesh mesh in
  ( mesh.Builders.topo,
    Lint.reroute ~adaptive:true ~algorithm:(Adaptive.name ad) mesh.Builders.topo reroute )

let e047 () =
  let t = fault_topo () in
  ( t,
    Lint.discipline_config ~algorithm:"seed-e047" ~discipline:"store-and-forward"
      ~buffer_capacity:2 ~max_length:4 )

let w048 () =
  let t = fault_topo () in
  ( t,
    Lint.discipline_config ~algorithm:"seed-w048" ~discipline:"virtual-cut-through"
      ~buffer_capacity:1 ~max_length:4 )

(* -- synthesis verdicts ----------------------------------------------- *)

let synth_diags t = Synth.diagnostics t (Synth.synthesize t)

let e060_ring n () =
  let t = (Builders.ring ~unidirectional:true n).Builders.topo in
  (t, synth_diags t)

let e060_disconnected () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let _ab = Topology.add_channel t a b in
  (t, synth_diags t)

let i061 () =
  let (t, _, _) = square () in
  (t, synth_diags t)

let w062 () =
  (* two nodes, two VCs per direction: any deadlock-free routing needs only
     one channel per pair, so synthesis restricts to a sub-network *)
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let _ab0 = Topology.add_channel t a b in
  let _ab1 = Topology.add_channel ~vc:1 t a b in
  let _ba0 = Topology.add_channel t b a in
  let _ba1 = Topology.add_channel ~vc:1 t b a in
  (t, synth_diags t)

let entries () =
  [
    entry "livelock-triangle" "E001" "the (a,c) walk ping-pongs between a and b" e001;
    entry "misroute-triangle" "E002" "at b the function returns a channel leaving c" e002;
    entry "early-consume-triangle" "E003" "the (a,c) walk consumes at b" e003;
    entry "pass-destination-triangle" "E004" "the (a,b) walk sails through b" e004;
    entry "adaptive-no-option" "E005" "a reachable state offers no output channel" e005;
    entry "dead-vc-line" "W010" "the second a->b virtual channel is never routed on" w010;
    entry "nonminimal-square" "E011" "declared minimal but (a,b) takes 3 hops" e011;
    entry "suffix-break-square" "W012" "the (b,c) suffix from a differs from the (a,c) path"
      w012;
    entry "prefix-break-square" "W013" "the (a,c) prefix to b differs from the (a,b) path"
      w013;
    entry "repeat-node-square" "W014" "the (a,c) path visits a twice" w014;
    entry "ring-deadlock-declared-free" "E022"
      "clockwise 4-ring declared deadlock-free: its cycle is reachable" e022;
    entry "escape-not-offered" "E030" "the escape VC is never among the adaptive options" e030;
    entry "extended-cdg-cycle" "E031"
      "fully adaptive declared deadlock-free: extended escape CDG is cyclic" e031;
    entry "fault-bad-channel" "E040" "fault plan fails channel 99 of a 4-channel line" e040;
    entry "fault-stall-after-fail" "E041" "stall window opens after the permanent failure"
      e041;
    entry "fault-ghost-drop" "W042" "drop references a label no message carries" w042;
    entry "fault-double-fail" "W043" "the same channel fails permanently twice" w043;
    entry "adaptive-pinned-reroute" "W044"
      "a recovery reroute pins retried paths on an adaptive algorithm" w044;
    entry "saf-undersized-buffers" "E047"
      "store-and-forward with 2-flit buffers under a 4-flit message" e047;
    entry "vct-unit-buffers" "W048"
      "virtual cut-through with unit buffers degenerates to wormhole" w048;
    entry "ring-no-df-routing" "E060"
      "under-provisioned unidirectional 4-ring: every connector closes the cycle"
      (e060_ring 4);
    entry "ring5-no-df-routing" "E060"
      "under-provisioned unidirectional 5-ring: no deadlock-free routing exists"
      (e060_ring 5);
    entry "disconnected-no-df-routing" "E060"
      "one-way a->b network: not strongly connected, no routing of any kind" e060_disconnected;
    entry "synth-certified-square" "I061"
      "bidirectional 4-cycle: synthesis succeeds and certifies its rank order" i061;
    entry "synth-restricted-2vc" "W062"
      "two nodes with doubled VCs: the synthesized routing leaves a VC layer unused" w062;
  ]

let check e =
  let topo, diags = e.c_run () in
  let hits = List.filter (fun d -> d.Diagnostic.code = e.c_expected) diags in
  match hits with
  | [ _ ] -> Ok ()
  | _ ->
    let render d = Format.asprintf "%a" (Diagnostic.pp ~topo ()) d in
    Error
      (Printf.sprintf "expected %s exactly once, got %d; diagnostics: %s" e.c_expected
         (List.length hits)
         (String.concat " | " (List.map render diags)))

let check_all () = List.map (fun e -> (e.c_name, check e)) (entries ())
