(** The lintable algorithm registry: every paper network and classic
    algorithm the repo ships, each with its {e declarations} -- whether the
    design claims minimality and deadlock freedom.  [wormlint] and EXP-LINT
    run the {!Lint} battery over this list; the acceptance bar is zero
    E-severity diagnostics, which only works because the deliberately
    deadlocking counterexamples (Figure 2, Figures 3c-f, the no-VC torus,
    the clockwise ring, fully-adaptive routing) declare
    [r_expect_deadlock_free = false] and so classify as [I023]/[I032]
    instead of [E022]/[E031]. *)

type algo =
  | Oblivious of Routing.t
  | Adaptive of Adaptive.t * Routing.t option
      (** adaptive function, with its escape subfunction when Duato
          certification applies *)

type entry = {
  r_name : string;
  r_algo : algo;
  r_declared_minimal : bool;  (** arms the E011 minimality lint *)
  r_expect_deadlock_free : bool;
      (** reachable cycles are E022/E031 when true, I023/I032 when false *)
  r_note : string;  (** one-line provenance, shown by [wormlint --list] *)
}

val entries : unit -> entry list
(** Build the whole registry (construction is cheap; nothing is cached). *)

val names : unit -> string list
val find : string -> entry option

val topology : entry -> Topology.t

val lint : ?max_cycles:int -> entry -> Diagnostic.t list
(** Run {!Lint.algorithm} or {!Lint.adaptive} with the entry's
    declarations. *)

val diagnostic_codes : (string * Diagnostic.severity * string) list
(** Every stable diagnostic code the library can emit, with its severity
    and a one-line description, in code order.  The registry-completeness
    test scans the sources for code literals and fails when a code is
    emitted but missing here (or listed here but emitted nowhere), so this
    table cannot drift silently. *)

val find_code : string -> (string * Diagnostic.severity * string) option
