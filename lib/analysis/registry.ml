type algo =
  | Oblivious of Routing.t
  | Adaptive of Adaptive.t * Routing.t option

type entry = {
  r_name : string;
  r_algo : algo;
  r_declared_minimal : bool;
  r_expect_deadlock_free : bool;
  r_note : string;
}

let oblivious ?(minimal = false) ?(ddf = true) name rt note =
  { r_name = name; r_algo = Oblivious rt; r_declared_minimal = minimal;
    r_expect_deadlock_free = ddf; r_note = note }

let adaptive ?(ddf = true) name ad escape note =
  { r_name = name; r_algo = Adaptive (ad, escape); r_declared_minimal = false;
    r_expect_deadlock_free = ddf; r_note = note }

let paper_net ?(ddf = true) name net note =
  oblivious ~ddf name (Cd_algorithm.of_net net) note

let entries () =
  let mesh = Builders.mesh [ 4; 4 ] in
  let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
  let hc = Builders.hypercube 3 in
  let torus1 = Builders.torus [ 4; 4 ] in
  let torus2 = Builders.torus ~vcs:2 [ 4; 4 ] in
  let ring1 = Builders.ring ~unidirectional:true 4 in
  let ring2 = Builders.ring ~unidirectional:true ~vcs:2 6 in
  [
    (* -- the paper's access-ring networks -- *)
    paper_net "cd-figure1" (Paper_nets.figure1 ())
      "Figure 1: cyclic CDG, deadlock-free by Theorem 2";
    paper_net ~ddf:false "cd-figure2" (Paper_nets.figure2 ())
      "Figure 2: the blocking chain closes, deadlock reachable";
    paper_net "cd-figure3a" (Paper_nets.figure3 `A)
      "Figure 3(a): unreachable cycle (shared access channel)";
    paper_net "cd-figure3b" (Paper_nets.figure3 `B)
      "Figure 3(b): unreachable cycle (suffix overlap)";
    paper_net ~ddf:false "cd-figure3c" (Paper_nets.figure3 `C)
      "Figure 3(c): reachable deadlock variant";
    paper_net ~ddf:false "cd-figure3d" (Paper_nets.figure3 `D)
      "Figure 3(d): reachable deadlock variant";
    paper_net ~ddf:false "cd-figure3e" (Paper_nets.figure3 `E)
      "Figure 3(e): reachable deadlock variant";
    paper_net ~ddf:false "cd-figure3f" (Paper_nets.figure3 `F)
      "Figure 3(f): reachable deadlock variant";
    paper_net "cd-family-2" (Paper_nets.family 2)
      "Section 6 family, k=2: deadlock-free with cyclic CDG";
    (* -- classic oblivious algorithms -- *)
    oblivious ~minimal:true "xy-mesh-4x4" (Dimension_order.mesh mesh)
      "dimension-order XY on the 4x4 mesh (minimal, acyclic CDG)";
    oblivious "west-first-4x4" (Turn_model.west_first mesh)
      "west-first turn model on the 4x4 mesh";
    oblivious "north-last-4x4" (Turn_model.north_last mesh)
      "north-last turn model on the 4x4 mesh";
    oblivious "negative-first-4x4" (Turn_model.negative_first mesh)
      "negative-first turn model on the 4x4 mesh";
    oblivious ~minimal:true "ecube-hypercube-3" (Dimension_order.hypercube hc)
      "e-cube on the 3-cube (minimal, acyclic CDG)";
    oblivious ~ddf:false "ecube-torus-4x4-novc" (Dimension_order.torus torus1)
      "e-cube on the 4x4 torus without virtual channels: wrap cycles deadlock";
    oblivious "ecube-torus-4x4-dateline" (Dimension_order.torus ~datelines:true torus2)
      "e-cube on the 4x4 torus with dateline VCs (Dally-Seitz)";
    oblivious ~ddf:false "ring-clockwise-4" (Ring_routing.clockwise ring1)
      "clockwise unidirectional ring: the canonical deadlocking cycle";
    oblivious "ring-dateline-6" (Ring_routing.dateline ring2)
      "unidirectional ring with dateline VCs";
    (* -- adaptive algorithms -- *)
    adaptive "duato-mesh-4x4" (Adaptive.duato_mesh mesh2)
      (Some (Adaptive.escape_of_duato_mesh mesh2))
      "Duato's protocol on the 4x4 mesh, VC1 escape layer";
    adaptive ~ddf:false "fully-adaptive-4x4"
      (Adaptive.fully_adaptive_minimal mesh)
      (Some (Dimension_order.mesh mesh))
      "fully adaptive minimal on the 4x4 mesh: no escape layer survives";
  ]

let names () = List.map (fun e -> e.r_name) (entries ())

let find name = List.find_opt (fun e -> e.r_name = name) (entries ())

let topology e =
  match e.r_algo with
  | Oblivious rt -> Routing.topology rt
  | Adaptive (ad, _) -> Adaptive.topology ad

(* Every stable diagnostic code the library can emit, in code order.  The
   registry-completeness test greps the sources for code literals and fails
   on drift in either direction, so additions land here in the same PR that
   introduces the code. *)
let diagnostic_codes : (string * Diagnostic.severity * string) list =
  [
    ("E001", Diagnostic.Error, "routing walk exceeds the livelock step cutoff");
    ("E002", Diagnostic.Error, "routing returns a channel that does not leave the current node");
    ("E003", Diagnostic.Error, "routing consumes at a node that is not the destination");
    ("E004", Diagnostic.Error, "routing keeps going after reaching the destination");
    ("E005", Diagnostic.Error, "adaptive function offers no output channel in a reachable state");
    ("W010", Diagnostic.Warning, "channel is never used by any routed pair");
    ("E011", Diagnostic.Error, "algorithm declared minimal but a pair takes a non-shortest path");
    ("W012", Diagnostic.Warning, "path set is not suffix-closed (Definition 8)");
    ("W013", Diagnostic.Warning, "path set is not prefix-closed (Definition 7)");
    ("W014", Diagnostic.Warning, "a routed path repeats a node");
    ("I020", Diagnostic.Info, "CDG cycle is a false resource cycle (Theorem 2/3)");
    ("W021", Diagnostic.Warning, "CDG cycle outside the Theorem 2-5 cases, needs dynamic search");
    ("E022", Diagnostic.Error, "reachable CDG cycle in an algorithm declared deadlock-free");
    ("I023", Diagnostic.Info, "reachable CDG cycle in a declared-deadlocking counterexample");
    ("E030", Diagnostic.Error, "escape channel is never among the adaptive options");
    ("E031", Diagnostic.Error, "extended CDG cycle breaks Duato coverage (declared deadlock-free)");
    ("I032", Diagnostic.Info, "extended CDG cycle in a declared-deadlocking adaptive algorithm");
    ("E040", Diagnostic.Error, "fault plan references a channel outside the topology");
    ("E041", Diagnostic.Error, "stall window opens after the channel permanently failed");
    ("W042", Diagnostic.Warning, "drop event references a message label no message carries");
    ("W043", Diagnostic.Warning, "the same channel fails permanently more than once");
    ("E044", Diagnostic.Error, "recovery reroute is built on a different topology");
    ("W044", Diagnostic.Warning, "adaptive algorithm with a reroute pins retried messages' routes");
    ("E045", Diagnostic.Error, "detection bound and backstop must be >= 1");
    ("W046", Diagnostic.Warning, "backstop at or under the detection bound makes detection dead code");
    ("E047", Diagnostic.Error, "store-and-forward buffer capacity below the longest message");
    ("W048", Diagnostic.Warning, "undersized virtual cut-through buffers are raised to whole-packet");
    ("E050", Diagnostic.Error, "Verify concludes the routing deadlocks");
    ("E051", Diagnostic.Error, "Verify found a reachable cycle with no Theorem 2-5 certificate");
    ("W052", Diagnostic.Warning, "Verify cannot conclude either way within its budget");
    ("I053", Diagnostic.Info, "Verify concludes the routing is deadlock-free");
    ("I054", Diagnostic.Info, "Verify certificate detail for a covered cycle");
    ("E060", Diagnostic.Error, "network admits no deadlock-free oblivious routing");
    ("I061", Diagnostic.Info, "routing synthesized and certified (rank-increasing dependencies)");
    ("W062", Diagnostic.Warning, "synthesized routing restricts itself to a sub-network");
    ("E090", Diagnostic.Error, "search layer: engine reported an inconsistent deadlock cycle");
    ("E091", Diagnostic.Error, "search layer: engine outcome contradicts the replay");
    ("E101", Diagnostic.Error, "sanitizer: flit conservation violated");
    ("E102", Diagnostic.Error, "sanitizer: buffer occupancy out of bounds");
    ("E103", Diagnostic.Error, "sanitizer: channel hold inconsistent with message state");
    ("E104", Diagnostic.Error, "sanitizer: wait-for bookkeeping inconsistent");
    ("E105", Diagnostic.Error, "sanitizer: recovery invariant broken (retries or watchdog bound)");
    ("E106", Diagnostic.Error, "sanitizer: wait-for edge inconsistent with message state");
  ]

let find_code c =
  List.find_opt (fun (code, _, _) -> code = c) diagnostic_codes

let lint ?max_cycles e =
  match e.r_algo with
  | Oblivious rt ->
    Lint.algorithm ?max_cycles ~declared_minimal:e.r_declared_minimal
      ~expect_deadlock_free:e.r_expect_deadlock_free rt
  | Adaptive (ad, escape) ->
    Lint.adaptive ~expect_deadlock_free:e.r_expect_deadlock_free ?escape ad
