(** Existence checker and synthesis pass for deadlock-free oblivious routing.

    Given {e any} [Topology.t] (not just the shipped ones), decide whether
    the network admits a deadlock-free oblivious routing at all, and when it
    does, construct one.  This is the whole-network converse of the
    per-algorithm [Verify] pipeline: instead of "is the routing you wrote
    safe?", the question is "does a safe routing exist, and what is it?"
    (Mendlovic & Matias, arXiv 2503.04583, close this question with a
    necessary-and-sufficient condition; ROADMAP item 3.)

    The decision procedure works on {e corners} -- channel transitions
    [(e, f)] with [dst e = src f], the edges of the channel line graph.  A
    routing with an acyclic CDG uses only corners from an {e acyclic
    connector}: a corner set whose channel digraph is acyclic yet still
    connects every ordered node pair (injection and consumption are free, so
    a pair with a direct channel is always connected).  Conversely, any
    acyclic connector yields a routing by ranking channels in topological
    order and always routing along rank-increasing paths -- strictly
    increasing ranks terminate, and every realized dependency increases the
    rank, so the CDG is acyclic and Dally-Seitz certifies it.  The checker
    therefore decides: {e does an acyclic connector exist?}

    Soundness notes: "exists" verdicts are self-certifying (the synthesized
    routing ships with its rank order; [Verify] re-derives the numbering).
    "Impossible" verdicts rest on the reduction that if {e any}
    deadlock-free oblivious routing exists then one with an acyclic CDG
    exists (the paper shows cyclic-CDG routings are sometimes {e also}
    deadlock-free, but never {e necessary}); the witness shapes below are
    machine-checkable ({!check_witness}).

    Pipeline: (1) strong-connectivity check; (2) fast heuristic channel
    orders (valley orders from BFS node keys, VC-layered dateline orders);
    (3) the {e forced-corner} test -- a corner whose single removal
    disconnects some pair must be in every connector, so a cycle among
    forced corners is an impossibility proof; (4) exhaustive corner-removal
    search with a node budget, complete for small networks: branch on which
    corner of a channel-digraph cycle to exclude, pruning branches whose
    remaining corners no longer connect. *)

type plan = {
  p_order : int array;
      (** rank per channel id: a permutation of [0 .. num_channels-1];
          every realized dependency of the synthesized routing is strictly
          rank-increasing, so [p_order] doubles as the Dally-Seitz
          numbering certificate *)
  p_strategy : string;
      (** which order construction succeeded, e.g. ["valley(from v0)"],
          ["vc-dateline(from v0)"], ["corner-search"] *)
  p_dependencies : int;
      (** realized channel dependencies checked rank-increasing; [0] until
          {!synthesize} has built and audited the routing *)
  p_unused : Topology.channel list;
      (** channels the synthesized routing never routes a pair over --
          non-empty means the routing restricts itself to a sub-network
          (the W062 condition); empty until {!synthesize} *)
}

type witness =
  | Not_strongly_connected of { w_src : Topology.node; w_dst : Topology.node }
      (** no walk from [w_src] to [w_dst]: Definition 1 already fails, no
          routing of any kind can deliver the pair *)
  | Forced_corner_cycle of {
      w_cycle : Topology.channel list;
          (** channels [c0 .. ck-1]: each [(ci, c(i+1 mod k))] is a corner
              forced into every connector *)
      w_pairs : (Topology.node * Topology.node) list;
          (** [w_pairs.(i)] is a pair disconnected when corner
              [(ci, c(i+1))] alone is forbidden -- the forcing evidence *)
    }
      (** every connector contains all the cycle's corners, so no connector
          is acyclic: the offending subgraph of the impossibility proof *)
  | No_acyclic_connector of { w_corners : int; w_explored : int; w_complete : bool }
      (** the corner-removal search exhausted the space ([w_complete]) or
          its node budget (not [w_complete]) without finding an acyclic
          connector; with the default budget this is a complete proof for
          every network small enough that the heuristics did not already
          settle it *)

type verdict = Exists of plan | Impossible of witness

val check : ?budget:int -> Topology.t -> verdict
(** Decide existence.  [budget] (default [200_000]) bounds the nodes of the
    exact corner-removal search; heuristic orders and the forced-corner
    test run first and settle every shipped topology without reaching it. *)

val routing : ?name:string -> Topology.t -> plan -> Routing.t
(** Deterministic routing from a plan: from input channel (or injection)
    toward a destination, among output channels higher-ranked than the
    input from which a rank-increasing path to the destination exists,
    take the one with the fewest remaining hops, breaking ties toward the
    lowest rank -- minimal within the rank discipline.  [name] defaults to
    ["synth"]. *)

val synthesize :
  ?budget:int -> ?name:string -> Topology.t -> (Routing.t * plan, witness) result
(** {!check}, then {!routing}, then the self-audit: validate the routing,
    walk every realized decision, confirm every dependency increases the
    rank, and record the channels left unused.  The returned plan has
    [p_dependencies] and [p_unused] filled in.
    @raise Failure if the constructed routing fails its own audit (an
    internal invariant, never a property of the input network). *)

val check_witness : Topology.t -> witness -> bool
(** Machine-check a witness against the topology: the disconnected pair is
    really unreachable; the forced cycle really closes and each corner's
    forcing pair really disconnects when that corner alone is forbidden.
    [No_acyclic_connector] has no independent certificate (it {e is} the
    exhausted search); it checks as its [w_complete] flag. *)

val diagnostics :
  ?name:string -> Topology.t -> (Routing.t * plan, witness) result -> Diagnostic.t list
(** The verdict as stable-coded diagnostics: [E060] "network admits no
    deadlock-free routing" carrying the witness as context, or [I061]
    "routing synthesized and certified" (strategy, rank certificate,
    audited dependency count) plus [W062] "synth fell back to restricted
    connectivity" when the routing leaves channels unused.  [name] labels
    the subject for the [E060] case (default ["synth"]). *)

val greedy_family : Topology.t -> Routing.t list
(** The bounded oblivious routing family impossibility verdicts are swept
    against: every valid greedy minimal next-hop routing (tie-break toward
    the first, second, and last option in channel order), deduplicated by
    the full realized path set.  On an "impossible" network every member
    must have a cyclic CDG and a reachable deadlock -- the dynamic
    counterpart of the corner-theoretic proof.  Members are returned in
    tie-break order; the list is empty only when the topology is not
    strongly connected. *)

val pp_witness : Topology.t -> Format.formatter -> witness -> unit
