(** Static lints over routing algorithms and fault plans.

    All checks are purely static: they enumerate paths, build the CDG and
    apply the paper's cycle classification theorems, but never run the
    simulator (the dynamic complement lives in [Verify.diagnostics] and in
    the engines' sanitizer mode).

    Lint codes produced here:

    - [E001] livelock: some pair is never delivered within the step cutoff
    - [E002] misroute: the function returns a channel that does not leave
      the current node
    - [E003] premature consumption at a non-destination node
    - [E004] the walk passes through its destination without consuming
    - [E005] adaptive routing fails its reachable-state validation
    - [W010] dead virtual channel: no source/destination path uses it
    - [E011] declared minimal, but some path is longer than the shortest
      (context carries the witness path)
    - [W012] not suffix-closed (Definition 8), witness in the message
    - [W013] not prefix-closed (Definition 7)
    - [W014] some path repeats a node
    - [I020] CDG cycle certified unreachable (false resource cycle)
    - [W021] CDG cycle outside the characterized cases (needs search)
    - [E022] CDG cycle certified deadlock-reachable on an algorithm declared
      deadlock-free
    - [I023] deadlock-reachable cycle on an algorithm {e not} declared
      deadlock-free (the expected result for the paper's counterexamples)
    - [E030] Duato escape subfunction not connected (witness state)
    - [E031] extended escape CDG has a cycle
    - [I032] extended escape CDG cyclic on a design declared non-certified
    - [E040] fault event references a channel outside the topology
    - [E041] unsatisfiable stall window (the channel is already permanently
      failed when the stall begins)
    - [W042] fault drop references a label outside the given schedule
    - [W043] redundant permanent failure (channel already failed earlier)
    - [E044] recovery reroute built on a different topology than the
      algorithm it backs up (the engine rejects this config at run time)
    - [W044] recovery reroute configured for an {e adaptive} algorithm: the
      reroute pins each retried message's remaining route.  Older releases
      silently ignored the reroute in adaptive runs, so configs written
      against that behavior now change meaning -- this warning flags them.
    - [E045] nonpositive detection bound or backstop (the engine rejects
      the config at run time)
    - [W046] detection backstop at or below the detection bound: the
      no-progress sweep preempts the detector, so detection is dead code
    - [E047] store-and-forward with buffer capacity below the longest
      message: a whole packet can never fit in one channel (the engine
      rejects the config at run time)
    - [W048] virtual cut-through with buffer capacity below the longest
      message: undersized cut-through degenerates to wormhole, so the
      kernel silently provisions whole-packet buffers instead *)

val algorithm :
  ?declared_minimal:bool ->
  ?expect_deadlock_free:bool ->
  ?max_cycles:int ->
  Routing.t ->
  Diagnostic.t list
(** Run the full static battery over an oblivious algorithm.
    [declared_minimal] (default false) arms the [E011] minimality lint;
    [expect_deadlock_free] (default true) decides whether a theorem-certified
    reachable cycle is an error ([E022]) or the documented expectation
    ([I023]).  CDG cycle enumeration stops after [max_cycles] (default 64).
    Diagnostics are returned errors-first. *)

val adaptive :
  ?expect_deadlock_free:bool ->
  ?escape:Routing.t ->
  Adaptive.t ->
  Diagnostic.t list
(** Validate an adaptive algorithm and, when [escape] is given, check
    Duato's condition: escape connectivity and extended-CDG acyclicity. *)

val reroute :
  adaptive:bool -> algorithm:string -> Topology.t -> Routing.t -> Diagnostic.t list
(** Lint a recovery reroute function against the algorithm it backs up:
    topology mismatch ([E044]) and the adaptive route-pinning interaction
    ([W044]).  [adaptive] says whether the primary algorithm routes
    adaptively; [algorithm] names it in the diagnostics. *)

val detect_config : algorithm:string -> bound:int -> backstop:int -> Diagnostic.t list
(** Lint an online-detection recovery config (plain ints so this layer
    needs no dependency on the detector's types): nonpositive parameters
    ([E045]) and a backstop that preempts the detector ([W046]).
    [algorithm] names the routing function the config will run under. *)

val discipline_config :
  algorithm:string ->
  discipline:string ->
  buffer_capacity:int ->
  max_length:int ->
  Diagnostic.t list
(** Lint a switching-discipline config against a workload's longest message
    (plain strings/ints so this layer needs no dependency on the engine's
    types; [discipline] is the stable name ["wormhole"],
    ["virtual-cut-through"] or ["store-and-forward"]): store-and-forward
    under-provisioning ([E047], the engine rejects it) and cut-through
    under-provisioning ([W048], silently raised to whole-packet buffers).
    [algorithm] names the routing function the config will run under. *)

val fault_plan : ?labels:string list -> Topology.t -> Fault.plan -> Diagnostic.t list
(** Lint a fault plan against a topology: out-of-range channels,
    unsatisfiable stall windows, redundant failures, and (when [labels]
    lists the schedule's messages) drops that can never fire. *)
