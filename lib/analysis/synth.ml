(* Existence checker and synthesis for deadlock-free oblivious routing.

   Everything here works on *corners*: channel transitions (e, f) with
   dst e = src f, the edges of the channel line graph.  A set of corners
   "connects" the network when every ordered node pair (u, v) has a walk
   u -> ... -> v whose consecutive channel transitions all lie in the set
   (injection at u and consumption at v are free, so a single-channel path
   needs no corner at all).  An *acyclic connector* -- a connecting corner
   set whose channel digraph is acyclic -- is exactly what a deadlock-free
   synthesis needs: rank the channels in topological order and route along
   strictly rank-increasing paths; the walk terminates (ranks increase) and
   every realized dependency increases the rank, so the CDG is acyclic and
   the rank array is its Dally-Seitz numbering.  See synth.mli for the
   soundness discussion of the converse direction. *)

type plan = {
  p_order : int array;
  p_strategy : string;
  p_dependencies : int;
  p_unused : Topology.channel list;
}

type witness =
  | Not_strongly_connected of { w_src : Topology.node; w_dst : Topology.node }
  | Forced_corner_cycle of {
      w_cycle : Topology.channel list;
      w_pairs : (Topology.node * Topology.node) list;
    }
  | No_acyclic_connector of { w_corners : int; w_explored : int; w_complete : bool }

type verdict = Exists of plan | Impossible of witness

(* ---- corner context -------------------------------------------------- *)

type ctx = {
  topo : Topology.t;
  n : int;
  m : int;
  out : Topology.channel array array;  (* per node, insertion order *)
  ch_src : int array;
  ch_dst : int array;
  ch_vc : int array;
  succs : int array array;  (* channel -> outgoing corner ids, adjacency order *)
  corner_from : int array;  (* corner id -> predecessor channel *)
  corner_to : int array;  (* corner id -> successor channel *)
  ncorners : int;
}

let build_ctx topo =
  let n = Topology.num_nodes topo and m = Topology.num_channels topo in
  let out = Array.init n (fun v -> Array.of_list (Topology.out_channels topo v)) in
  let ch_src = Array.init m (Topology.src topo) in
  let ch_dst = Array.init m (Topology.dst topo) in
  let ch_vc = Array.init m (Topology.vc topo) in
  let total = ref 0 in
  for e = 0 to m - 1 do
    total := !total + Array.length out.(ch_dst.(e))
  done;
  let corner_from = Array.make (max 1 !total) 0 in
  let corner_to = Array.make (max 1 !total) 0 in
  let succs = Array.make (max 1 m) [||] in
  let next_id = ref 0 in
  for e = 0 to m - 1 do
    let nbrs = out.(ch_dst.(e)) in
    let ids = Array.make (Array.length nbrs) 0 in
    for i = 0 to Array.length nbrs - 1 do
      let id = !next_id in
      incr next_id;
      corner_from.(id) <- e;
      corner_to.(id) <- nbrs.(i);
      ids.(i) <- id
    done;
    succs.(e) <- ids
  done;
  { topo; n; m; out; ch_src; ch_dst; ch_vc; succs; corner_from; corner_to;
    ncorners = !total }

(* ---- corner-walk reachability ---------------------------------------- *)

exception Pair of int * int

(* First ordered pair (u, v) with no corner walk u -> v using only corners
   satisfying [allowed], or [None] when everything connects.  One channel-
   state BFS per source; stamps avoid reallocation across sources. *)
let first_disconnected ctx allowed =
  if ctx.n <= 1 then None
  else begin
    let seen_ch = Array.make (max 1 ctx.m) (-1) in
    let seen_node = Array.make ctx.n (-1) in
    let queue = Array.make (max 1 ctx.m) 0 in
    try
      for u = 0 to ctx.n - 1 do
        let head = ref 0 and tail = ref 0 in
        let count = ref 1 in
        seen_node.(u) <- u;
        let visit e =
          if seen_ch.(e) <> u then begin
            seen_ch.(e) <- u;
            queue.(!tail) <- e;
            incr tail;
            let d = ctx.ch_dst.(e) in
            if seen_node.(d) <> u then begin
              seen_node.(d) <- u;
              incr count
            end
          end
        in
        Array.iter visit ctx.out.(u);
        while !head < !tail do
          let e = queue.(!head) in
          incr head;
          Array.iter
            (fun cid -> if allowed cid then visit ctx.corner_to.(cid))
            ctx.succs.(e)
        done;
        if !count < ctx.n then begin
          let v = ref (-1) in
          for x = ctx.n - 1 downto 0 do
            if seen_node.(x) <> u then v := x
          done;
          raise (Pair (u, !v))
        end
      done;
      None
    with Pair (u, v) -> Some (u, v)
  end

(* Single-source variant for witness checking. *)
let reaches ctx allowed u v =
  let seen_ch = Array.make (max 1 ctx.m) false in
  let seen_node = Array.make ctx.n false in
  let queue = Array.make (max 1 ctx.m) 0 in
  let head = ref 0 and tail = ref 0 in
  seen_node.(u) <- true;
  let visit e =
    if not seen_ch.(e) then begin
      seen_ch.(e) <- true;
      queue.(!tail) <- e;
      incr tail;
      seen_node.(ctx.ch_dst.(e)) <- true
    end
  in
  Array.iter visit ctx.out.(u);
  while !head < !tail do
    let e = queue.(!head) in
    incr head;
    Array.iter (fun cid -> if allowed cid then visit ctx.corner_to.(cid)) ctx.succs.(e)
  done;
  seen_node.(v)

(* ---- rank-increasing connectivity ------------------------------------ *)

let by_rank_desc rank m =
  let chs = Array.init m (fun i -> i) in
  Array.sort (fun a b -> compare rank.(b) rank.(a)) chs;
  chs

(* cost.(e) <- from the state "just traversed e", the fewest further
   channels needed to reach v along strictly rank-increasing channels
   ([max_int] when unreachable).  One pass in descending rank order:
   every higher-ranked successor is already settled. *)
let fill_cost ctx rank desc v cost =
  Array.fill cost 0 ctx.m max_int;
  Array.iter
    (fun e ->
      if ctx.ch_dst.(e) = v then cost.(e) <- 0
      else
        Array.iter
          (fun cid ->
            let f = ctx.corner_to.(cid) in
            if rank.(f) > rank.(e) && cost.(f) <> max_int && cost.(f) + 1 < cost.(e)
            then cost.(e) <- cost.(f) + 1)
          ctx.succs.(e))
    desc

(* Does routing along strictly increasing ranks deliver every pair? *)
let order_connects ctx rank =
  let desc = by_rank_desc rank ctx.m in
  let cost = Array.make (max 1 ctx.m) max_int in
  try
    for v = 0 to ctx.n - 1 do
      fill_cost ctx rank desc v cost;
      for u = 0 to ctx.n - 1 do
        if u <> v && not (Array.exists (fun e -> cost.(e) <> max_int) ctx.out.(u)) then
          raise Exit
      done
    done;
    true
  with Exit -> false

(* ---- heuristic channel orders ---------------------------------------- *)

(* BFS hop distances from [root], following channels forward or (with
   [rev]) backward.  Strong connectivity is established before these run,
   but unreachable nodes are capped defensively. *)
let bfs_dist ctx ~rev root =
  let dist = Array.make ctx.n max_int in
  let queue = Array.make ctx.n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(root) <- 0;
  queue.(!tail) <- root;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let step e =
      let v = if rev then ctx.ch_src.(e) else ctx.ch_dst.(e) in
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        queue.(!tail) <- v;
        incr tail
      end
    in
    if rev then List.iter step (Topology.in_channels ctx.topo u)
    else Array.iter step ctx.out.(u)
  done;
  dist

(* Distinct per-node keys from hop distances: distance-major, id-minor. *)
let composite_key ctx dist =
  Array.init ctx.n (fun v ->
      let d = if dist.(v) = max_int then ctx.n else dist.(v) in
      (d * ctx.n) + v)

(* Valley order from a node key: "up" channels (toward smaller keys) first,
   ranked by destination key descending, then "down" channels ranked by
   destination key ascending.  Ascent keys strictly decrease and descent
   keys strictly increase along any valley path, so every path of ups
   followed by downs is rank-increasing: the familiar up/down routing
   discipline expressed as a channel order. *)
let valley_rank ctx key =
  let ups = ref [] and downs = ref [] in
  for e = ctx.m - 1 downto 0 do
    if key.(ctx.ch_dst.(e)) < key.(ctx.ch_src.(e)) then ups := e :: !ups
    else downs := e :: !downs
  done;
  let cmp_up a b =
    let c = compare key.(ctx.ch_dst.(b)) key.(ctx.ch_dst.(a)) in
    if c <> 0 then c else compare a b
  in
  let cmp_down a b =
    let c = compare key.(ctx.ch_dst.(a)) key.(ctx.ch_dst.(b)) in
    if c <> 0 then c else compare a b
  in
  let ups = List.sort cmp_up !ups and downs = List.sort cmp_down !downs in
  let rank = Array.make (max 1 ctx.m) 0 in
  List.iteri (fun i e -> rank.(e) <- i) ups;
  let offset = List.length ups in
  List.iteri (fun i e -> rank.(e) <- offset + i) downs;
  rank

(* VC-layered dateline order: VC-major; within VC 0 channels follow the
   source's distance from the root, within higher VCs the destination's.
   On a unidirectional multi-VC ring this is exactly the Dally-Seitz
   dateline discipline (cross the wrap by climbing one VC layer). *)
let dateline_rank ctx dist =
  let cap d = if d = max_int then ctx.n else d in
  let keyof e =
    let d =
      if ctx.ch_vc.(e) = 0 then cap dist.(ctx.ch_src.(e)) else cap dist.(ctx.ch_dst.(e))
    in
    (ctx.ch_vc.(e), d, e)
  in
  let chs = Array.init ctx.m (fun i -> i) in
  Array.sort (fun a b -> compare (keyof a) (keyof b)) chs;
  let rank = Array.make (max 1 ctx.m) 0 in
  Array.iteri (fun i e -> rank.(e) <- i) chs;
  rank

let candidates ctx =
  let deg = Array.make ctx.n 0 in
  for e = 0 to ctx.m - 1 do
    deg.(ctx.ch_src.(e)) <- deg.(ctx.ch_src.(e)) + 1;
    deg.(ctx.ch_dst.(e)) <- deg.(ctx.ch_dst.(e)) + 1
  done;
  let hub = ref 0 in
  for v = 1 to ctx.n - 1 do
    if deg.(v) > deg.(!hub) then hub := v
  done;
  let roots =
    List.sort_uniq compare [ !hub; 0; ctx.n - 1; ctx.n / 2 ]
  in
  let multi_vc = Array.exists (fun v -> v > 0) ctx.ch_vc in
  let name v = Topology.node_name ctx.topo v in
  let per_root r =
    let fwd = bfs_dist ctx ~rev:false r in
    let bwd = bfs_dist ctx ~rev:true r in
    [
      (Printf.sprintf "valley(from %s)" (name r),
       valley_rank ctx (composite_key ctx fwd));
      (Printf.sprintf "valley(to %s)" (name r),
       valley_rank ctx (composite_key ctx bwd));
    ]
    @
    if multi_vc then
      [ (Printf.sprintf "vc-dateline(from %s)" (name r), dateline_rank ctx fwd) ]
    else []
  in
  List.concat_map per_root roots
  @ [
      ("valley(node-id)", valley_rank ctx (Array.init ctx.n (fun v -> v)));
      ("valley(rev-node-id)", valley_rank ctx (Array.init ctx.n (fun v -> ctx.n - 1 - v)));
    ]

(* ---- forced corners and the impossibility cycle ---------------------- *)

(* A corner is *forced* when forbidding it alone disconnects some pair:
   every connecting corner set must then contain it.  A channel cycle whose
   transitions are all forced is therefore contained in every connector,
   so no connector is acyclic -- a complete impossibility proof. *)
let forced_corners ctx =
  let forced = Hashtbl.create 16 in
  for cid = 0 to ctx.ncorners - 1 do
    match first_disconnected ctx (fun c -> c <> cid) with
    | Some pair -> Hashtbl.replace forced cid pair
    | None -> ()
  done;
  forced

(* Any cycle in the channel digraph whose edge set is [corner id list array]
   (indexed by source channel): returns the channel cycle plus the corner
   ids between consecutive channels (last corner closes the cycle). *)
let find_channel_cycle ctx adj =
  let color = Array.make (max 1 ctx.m) 0 in
  let parent = Array.make (max 1 ctx.m) (-1) in
  let result = ref None in
  let rec dfs e =
    color.(e) <- 1;
    List.iter
      (fun cid ->
        if !result = None then begin
          let f = ctx.corner_to.(cid) in
          if color.(f) = 1 then begin
            (* back edge: walk the DFS stack from e up to f *)
            let chans = ref [ e ] and corners = ref [ cid ] in
            let cur = ref e in
            while !cur <> f do
              let pc = parent.(!cur) in
              corners := pc :: !corners;
              cur := ctx.corner_from.(pc);
              chans := !cur :: !chans
            done;
            result := Some (!chans, !corners)
          end
          else if color.(f) = 0 then begin
            parent.(f) <- cid;
            dfs f
          end
        end)
      adj.(e);
    if !result = None then color.(e) <- 2
  in
  (try
     for e = 0 to ctx.m - 1 do
       if color.(e) = 0 && !result = None then dfs e
     done
   with Stack_overflow -> ());
  !result

let forced_cycle ctx forced =
  let adj = Array.make (max 1 ctx.m) [] in
  for cid = ctx.ncorners - 1 downto 0 do
    if Hashtbl.mem forced cid then
      adj.(ctx.corner_from.(cid)) <- cid :: adj.(ctx.corner_from.(cid))
  done;
  match find_channel_cycle ctx adj with
  | None -> None
  | Some (chans, corners) ->
    Some (chans, List.map (fun cid -> Hashtbl.find forced cid) corners)

(* ---- exact corner-removal search ------------------------------------- *)

exception Budget_exhausted

(* Complete search for an acyclic connector: keep the full corner set, and
   while its channel digraph has a cycle, branch on which corner of that
   cycle to exclude (every acyclic connector excludes at least one).
   Branches whose remaining corners no longer connect are pruned -- no
   subset of a non-connecting set connects.  Success returns a topological
   rank of the remaining (acyclic, connecting) corner set. *)
let exact_search ctx budget =
  let alive = Array.make (max 1 ctx.ncorners) true in
  let explored = ref 0 in
  let toposort () =
    let indeg = Array.make (max 1 ctx.m) 0 in
    for cid = 0 to ctx.ncorners - 1 do
      if alive.(cid) then indeg.(ctx.corner_to.(cid)) <- indeg.(ctx.corner_to.(cid)) + 1
    done;
    let rank = Array.make (max 1 ctx.m) 0 in
    let ready = ref [] in
    for e = ctx.m - 1 downto 0 do
      if indeg.(e) = 0 then ready := e :: !ready
    done;
    let next = ref 0 in
    while !ready <> [] do
      match !ready with
      | [] -> ()
      | e :: rest ->
        ready := rest;
        rank.(e) <- !next;
        incr next;
        (* release successors; keep the ready list sorted for determinism *)
        let freed = ref [] in
        Array.iter
          (fun cid ->
            if alive.(cid) then begin
              let f = ctx.corner_to.(cid) in
              indeg.(f) <- indeg.(f) - 1;
              if indeg.(f) = 0 then freed := f :: !freed
            end)
          ctx.succs.(e);
        ready := List.merge compare !ready (List.sort compare !freed)
    done;
    rank
  in
  let adj = Array.make (max 1 ctx.m) [] in
  let rebuild_adj () =
    for e = 0 to ctx.m - 1 do
      adj.(e) <- []
    done;
    for cid = ctx.ncorners - 1 downto 0 do
      if alive.(cid) then adj.(ctx.corner_from.(cid)) <- cid :: adj.(ctx.corner_from.(cid))
    done
  in
  let rec go () =
    incr explored;
    if !explored > budget then raise Budget_exhausted;
    match first_disconnected ctx (fun c -> alive.(c)) with
    | Some _ -> None
    | None -> (
      rebuild_adj ();
      match find_channel_cycle ctx adj with
      | None -> Some (toposort ())
      | Some (_, corners) ->
        let rec branch = function
          | [] -> None
          | cid :: rest -> (
            alive.(cid) <- false;
            match go () with
            | Some r -> Some r
            | None ->
              alive.(cid) <- true;
              branch rest)
        in
        branch corners)
  in
  match go () with
  | Some rank -> `Found rank
  | None -> `None_complete !explored
  | exception Budget_exhausted -> `Exhausted !explored

(* ---- the checker ----------------------------------------------------- *)

let default_budget = 200_000

let check ?(budget = default_budget) topo =
  let ctx = build_ctx topo in
  if ctx.n <= 1 then
    Exists
      {
        p_order = Array.init ctx.m (fun i -> i);
        p_strategy = "trivial";
        p_dependencies = 0;
        p_unused = [];
      }
  else
    match first_disconnected ctx (fun _ -> true) with
    | Some (u, v) -> Impossible (Not_strongly_connected { w_src = u; w_dst = v })
    | None -> (
      let rec try_candidates = function
        | [] -> None
        | (tag, rank) :: rest ->
          if order_connects ctx rank then Some (tag, rank) else try_candidates rest
      in
      match try_candidates (candidates ctx) with
      | Some (tag, rank) ->
        Exists { p_order = rank; p_strategy = tag; p_dependencies = 0; p_unused = [] }
      | None -> (
        let forced = forced_corners ctx in
        match forced_cycle ctx forced with
        | Some (chans, pairs) ->
          Impossible (Forced_corner_cycle { w_cycle = chans; w_pairs = pairs })
        | None -> (
          match exact_search ctx budget with
          | `Found rank ->
            Exists
              {
                p_order = rank;
                p_strategy = "corner-search";
                p_dependencies = 0;
                p_unused = [];
              }
          | `None_complete k ->
            Impossible
              (No_acyclic_connector
                 { w_corners = ctx.ncorners; w_explored = k; w_complete = true })
          | `Exhausted k ->
            Impossible
              (No_acyclic_connector
                 { w_corners = ctx.ncorners; w_explored = k; w_complete = false }))))

(* ---- synthesis ------------------------------------------------------- *)

let routing ?(name = "synth") topo plan =
  let ctx = build_ctx topo in
  let rank = plan.p_order in
  if Array.length rank <> ctx.m then
    invalid_arg "Synth.routing: plan order length does not match the topology";
  let desc = by_rank_desc rank ctx.m in
  let cost = Array.make (max 1 ctx.m) max_int in
  let next_from = Array.make (max 1 (ctx.n * ctx.m)) (-1) in
  let next_inject = Array.make (max 1 (ctx.n * ctx.n)) (-1) in
  (* pick the usable channel with the fewest remaining hops, breaking ties
     toward the lowest rank -- minimal within the rank discipline *)
  let better e best =
    best = -1
    || cost.(e) < cost.(best)
    || (cost.(e) = cost.(best) && rank.(e) < rank.(best))
  in
  for v = 0 to ctx.n - 1 do
    fill_cost ctx rank desc v cost;
    for u = 0 to ctx.n - 1 do
      if u <> v then begin
        let best = ref (-1) in
        Array.iter
          (fun e -> if cost.(e) <> max_int && better e !best then best := e)
          ctx.out.(u);
        next_inject.((v * ctx.n) + u) <- !best
      end
    done;
    for e = 0 to ctx.m - 1 do
      if ctx.ch_dst.(e) <> v then begin
        let best = ref (-1) in
        Array.iter
          (fun cid ->
            let f = ctx.corner_to.(cid) in
            if rank.(f) > rank.(e) && cost.(f) <> max_int && better f !best then
              best := f)
          ctx.succs.(e);
        next_from.((v * ctx.m) + e) <- !best
      end
    done
  done;
  Routing.create ~name topo (fun input dest ->
      let here = Routing.current_node topo input in
      if here = dest then None
      else
        let nx =
          match input with
          | Routing.Inject u -> next_inject.((dest * ctx.n) + u)
          | Routing.From e -> next_from.((dest * ctx.m) + e)
        in
        if nx < 0 then None else Some nx)

let synthesize ?budget ?(name = "synth") topo =
  match check ?budget topo with
  | Impossible w -> Error w
  | Exists plan ->
    let rt = routing ~name topo plan in
    (match Routing.validate rt with
    | Ok () -> ()
    | Error e -> failwith ("Synth.synthesize: constructed routing failed validation: " ^ e));
    let m = Topology.num_channels topo in
    let used = Array.make (max 1 m) false in
    let deps = ref 0 in
    Routing.iter_realized rt (fun input _dest ch ->
        used.(ch) <- true;
        match input with
        | Routing.Inject _ -> ()
        | Routing.From e ->
          incr deps;
          if plan.p_order.(ch) <= plan.p_order.(e) then
            failwith "Synth.synthesize: a realized dependency does not increase the rank");
    let unused = List.filter (fun e -> not used.(e)) (Topology.channels topo) in
    Ok (rt, { plan with p_dependencies = !deps; p_unused = unused })

(* ---- witnesses ------------------------------------------------------- *)

let check_witness topo w =
  let ctx = build_ctx topo in
  match w with
  | Not_strongly_connected { w_src; w_dst } ->
    w_src >= 0 && w_src < ctx.n && w_dst >= 0 && w_dst < ctx.n
    && not (reaches ctx (fun _ -> true) w_src w_dst)
  | Forced_corner_cycle { w_cycle; w_pairs } ->
    let k = List.length w_cycle in
    k >= 1
    && List.length w_pairs = k
    && List.for_all (fun c -> c >= 0 && c < ctx.m) w_cycle
    &&
    let cyc = Array.of_list w_cycle in
    let pairs = Array.of_list w_pairs in
    let ok = ref true in
    for i = 0 to k - 1 do
      let e = cyc.(i) and f = cyc.((i + 1) mod k) in
      (* the corner closes the chain... *)
      if ctx.ch_dst.(e) <> ctx.ch_src.(f) then ok := false
      else begin
        (* ...and forbidding it alone really disconnects the recorded pair *)
        let u, v = pairs.(i) in
        let allowed cid =
          not (ctx.corner_from.(cid) = e && ctx.corner_to.(cid) = f)
        in
        if reaches ctx allowed u v then ok := false
      end
    done;
    !ok
  | No_acyclic_connector { w_complete; _ } -> w_complete

let pp_witness topo ppf = function
  | Not_strongly_connected { w_src; w_dst } ->
    Format.fprintf ppf "not strongly connected: no walk %s -> %s"
      (Topology.node_name topo w_src) (Topology.node_name topo w_dst)
  | Forced_corner_cycle { w_cycle; w_pairs } ->
    Format.fprintf ppf "forced corner cycle (%d channels): %s; forcing pairs: %s"
      (List.length w_cycle)
      (String.concat " -> " (List.map (Topology.channel_name topo) w_cycle))
      (String.concat ", "
         (List.map
            (fun (u, v) ->
              Printf.sprintf "%s->%s" (Topology.node_name topo u)
                (Topology.node_name topo v))
            w_pairs))
  | No_acyclic_connector { w_corners; w_explored; w_complete } ->
    Format.fprintf ppf
      "no acyclic connector among %d corners (%s search, %d nodes explored)" w_corners
      (if w_complete then "complete" else "budget-bounded")
      w_explored

let witness_context topo = function
  | Not_strongly_connected { w_src; w_dst } ->
    [
      ("witness", "not-strongly-connected");
      ( "pair",
        Printf.sprintf "%s->%s" (Topology.node_name topo w_src)
          (Topology.node_name topo w_dst) );
    ]
  | Forced_corner_cycle { w_cycle; w_pairs } ->
    [
      ("witness", "forced-corner-cycle");
      ("cycle", String.concat " -> " (List.map (Topology.channel_name topo) w_cycle));
      ( "forcing_pairs",
        String.concat ", "
          (List.map
             (fun (u, v) ->
               Printf.sprintf "%s->%s" (Topology.node_name topo u)
                 (Topology.node_name topo v))
             w_pairs) );
    ]
  | No_acyclic_connector { w_corners; w_explored; w_complete } ->
    [
      ("witness", "no-acyclic-connector");
      ("corners", string_of_int w_corners);
      ("search_nodes", string_of_int w_explored);
      ("complete", string_of_bool w_complete);
    ]

(* ---- diagnostics ------------------------------------------------------ *)

let diagnostics ?(name = "synth") topo result =
  match result with
  | Error w ->
    let summary = Format.asprintf "%a" (pp_witness topo) w in
    [
      Diagnostic.error "E060"
        (Diagnostic.Algorithm name)
        ("network admits no deadlock-free oblivious routing: " ^ summary)
        ~context:(witness_context topo w);
    ]
  | Ok (rt, plan) ->
    let m = Topology.num_channels topo in
    let cert =
      Diagnostic.info "I061"
        (Diagnostic.Algorithm (Routing.name rt))
        (Printf.sprintf
           "routing synthesized and certified: %d realized dependencies are strictly \
            rank-increasing (the synthesis order is the Dally-Seitz numbering)"
           plan.p_dependencies)
        ~context:
          [
            ("strategy", plan.p_strategy);
            ("channels", string_of_int m);
            ("unused_channels", string_of_int (List.length plan.p_unused));
          ]
    in
    if plan.p_unused = [] then [ cert ]
    else
      [
        cert;
        Diagnostic.warning "W062"
          (Diagnostic.Algorithm (Routing.name rt))
          (Printf.sprintf
             "synth fell back to restricted connectivity: %d of %d channels carry no \
              synthesized route"
             (List.length plan.p_unused) m)
          ~context:
            [
              ( "unused",
                String.concat ", "
                  (List.map (Topology.channel_name topo) plan.p_unused) );
            ];
      ]

(* The bounded routing family impossibility verdicts are dynamically
   cross-checked against: greedy minimal next-hop with three tie-break
   policies, keeping only members that validate (every pair delivered,
   no routing loop).  Policies coincide wherever the next hop is forced,
   so distinct members are counted by their full realized path set. *)
let greedy_family topo =
  let dist = Topology.distance_matrix topo in
  let pickers =
    [
      ("greedy-first", fun opts -> List.nth_opt opts 0);
      ("greedy-second", fun opts -> List.nth_opt opts (min 1 (List.length opts - 1)));
      ("greedy-last", fun opts -> List.nth_opt opts (List.length opts - 1));
    ]
  in
  let members =
    List.filter_map
      (fun (name, pick) ->
        let rt =
          Routing.create ~name topo (fun input dest ->
              let here = Routing.current_node topo input in
              if here = dest then None
              else
                pick
                  (List.filter
                     (fun c -> dist.(Topology.dst topo c).(dest) < dist.(here).(dest))
                     (Topology.out_channels topo here)))
        in
        if Routing.validate rt = Ok () then Some rt else None)
      pickers
  in
  let fingerprint rt =
    let n = Topology.num_nodes topo in
    List.concat_map
      (fun s ->
        List.filter_map
          (fun d -> if s = d then None else Some (Routing.path_exn rt s d))
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let seen = ref [] in
  List.filter
    (fun rt ->
      let fp = fingerprint rt in
      if List.mem fp !seen then false
      else begin
        seen := fp :: !seen;
        true
      end)
    members
