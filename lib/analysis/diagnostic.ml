type severity = Error | Warning | Info

type subject =
  | Algorithm of string
  | Node of Topology.node
  | Channel of Topology.channel
  | Message of string
  | Pair of Topology.node * Topology.node
  | Cycle of Topology.channel list
  | Event of int

type t = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
  context : (string * string) list;
}

let severity_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let code_letter = function Error -> 'E' | Warning -> 'W' | Info -> 'I'

let make severity ?(context = []) code subject message =
  if String.length code < 2 || code.[0] <> code_letter severity then
    invalid_arg
      (Printf.sprintf "Diagnostic: code %S does not match severity %s" code
         (severity_string severity));
  { code; severity; subject; message; context }

let error ?context code subject message = make Error ?context code subject message
let warning ?context code subject message = make Warning ?context code subject message
let info ?context code subject message = make Info ?context code subject message

let is_error d = d.severity = Error

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let errors ds = List.filter is_error ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity ds =
  List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity)) ds

let subject_string ?topo s =
  let node v =
    match topo with Some t -> Topology.node_name t v | None -> Printf.sprintf "node#%d" v
  in
  let channel c =
    match topo with
    | Some t -> Topology.channel_name t c
    | None -> Printf.sprintf "channel#%d" c
  in
  match s with
  | Algorithm name -> Printf.sprintf "algorithm %s" name
  | Node v -> node v
  | Channel c -> channel c
  | Message l -> Printf.sprintf "message %s" l
  | Pair (a, b) -> Printf.sprintf "%s->%s" (node a) (node b)
  | Cycle cs -> Printf.sprintf "cycle [%s]" (String.concat " " (List.map channel cs))
  | Event i -> Printf.sprintf "fault event %d" i

let pp ?topo () ppf d =
  Format.fprintf ppf "%s %s %s: %s" d.code (severity_string d.severity)
    (subject_string ?topo d.subject) d.message;
  if d.context <> [] then
    Format.fprintf ppf " (%s)"
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) d.context))

(* ---- JSON (hand-rolled: the repo deliberately has no JSON dependency) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

let to_json ?topo d =
  let context =
    d.context
    |> List.map (fun (k, v) -> Printf.sprintf "%s:%s" (jstr k) (jstr v))
    |> String.concat ","
  in
  Printf.sprintf "{\"code\":%s,\"severity\":%s,\"subject\":%s,\"message\":%s,\"context\":{%s}}"
    (jstr d.code)
    (jstr (severity_string d.severity))
    (jstr (subject_string ?topo d.subject))
    (jstr d.message) context

let list_to_json ?topo ds = "[" ^ String.concat "," (List.map (to_json ?topo) ds) ^ "]"
