let route_error_diag (e : Routing.error) =
  let code =
    match e.Routing.e_kind with
    | Routing.Livelock _ -> "E001"
    | Routing.Not_leaving _ -> "E002"
    | Routing.Consumed_early _ -> "E003"
    | Routing.Passed_destination -> "E004"
  in
  Diagnostic.error code
    (Diagnostic.Pair (e.Routing.e_src, e.Routing.e_dst))
    e.Routing.e_message
    ~context:[ ("algorithm", e.Routing.e_algorithm) ]

let algorithm ?(declared_minimal = false) ?(expect_deadlock_free = true) ?(max_cycles = 64) rt =
  let topo = Routing.topology rt in
  let n = Topology.num_nodes topo in
  let nchan = Topology.num_channels topo in
  let name = Routing.name rt in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let used = Array.make nchan false in
  let dist = lazy (Topology.distance_matrix topo) in
  let total = ref true in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        match Routing.path rt s d with
        | Error e ->
          total := false;
          add (route_error_diag e)
        | Ok p ->
          List.iter (fun c -> used.(c) <- true) p;
          if declared_minimal then begin
            let shortest = (Lazy.force dist).(s).(d) in
            let hops = List.length p in
            if shortest < max_int && hops > shortest then
              add
                (Diagnostic.error "E011" (Diagnostic.Pair (s, d))
                   (Printf.sprintf
                      "declared minimal, but the %s->%s path takes %d hops (shortest is %d)"
                      (Topology.node_name topo s) (Topology.node_name topo d) hops shortest)
                   ~context:
                     [
                       ("algorithm", name);
                       ("witness", Format.asprintf "%a" (Routing.pp_path rt) p);
                     ])
          end
    done
  done;
  Array.iteri
    (fun c u ->
      if not u then
        add
          (Diagnostic.warning "W010" (Diagnostic.Channel c)
             "dead virtual channel: no source/destination path uses it"
             ~context:[ ("algorithm", name) ]))
    used;
  (* Closure lints and CDG classification need every path to exist; when the
     routing is not total the totality errors above already tell the story. *)
  (if !total then begin
    let closure code prop what =
      match prop rt with
      | Properties.Holds -> ()
      | Properties.Fails why ->
        add
          (Diagnostic.warning code (Diagnostic.Algorithm name) (what ^ ": " ^ why))
    in
    closure "W012" Properties.suffix_closed "not suffix-closed (Definition 8)";
    closure "W013" Properties.prefix_closed "not prefix-closed (Definition 7)";
    closure "W014" Properties.no_repeated_nodes "a path repeats a node";
    let cdg = Cdg.build rt in
    if not (Cdg.is_acyclic cdg) then begin
      let minimal = Properties.is_holds (Properties.minimal rt) in
      let suffix = Properties.is_holds (Properties.suffix_closed rt) in
      List.iter
        (fun cycle ->
          let _, verdict = Cycle_analysis.classify ~minimal ~suffix_closed:suffix cdg cycle in
          let subject = Diagnostic.Cycle cycle in
          let ctx = [ ("algorithm", name) ] in
          match verdict with
          | Cycle_analysis.Unreachable why ->
            add (Diagnostic.info "I020" subject ("false resource cycle: " ^ why) ~context:ctx)
          | Cycle_analysis.Needs_search why ->
            add
              (Diagnostic.warning "W021" subject
                 ("cycle outside the characterized cases, needs dynamic search: " ^ why)
                 ~context:ctx)
          | Cycle_analysis.Deadlock_reachable why ->
            if expect_deadlock_free then
              add
                (Diagnostic.error "E022" subject
                   ("reachable deadlock on an algorithm declared deadlock-free: " ^ why)
                   ~context:ctx)
            else
              add
                (Diagnostic.info "I023" subject
                   ("deadlock-reachable cycle (expected for this network): " ^ why)
                   ~context:ctx))
        (Cdg.elementary_cycles ~max_cycles cdg)
    end
  end);
  Diagnostic.by_severity (List.rev !diags)

let adaptive ?(expect_deadlock_free = true) ?escape ad =
  let name = Adaptive.name ad in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (match Adaptive.validate ad with
  | Ok () -> ()
  | Error why ->
    add
      (Diagnostic.error "E005" (Diagnostic.Algorithm name)
         ("adaptive routing fails reachable-state validation: " ^ why)));
  (match escape with
  | None -> ()
  | Some esc ->
    let r = Duato.check ad ~escape:esc in
    if not r.Duato.escape_connected then
      add
        (Diagnostic.error "E030" (Diagnostic.Algorithm name)
           "Duato escape subfunction is not connected: some reachable state offers no escape \
            channel"
           ~context:
             (match r.Duato.connected_witness with
             | Some w -> [ ("witness", w); ("escape", Routing.name esc) ]
             | None -> [ ("escape", Routing.name esc) ]));
    if not r.Duato.extended_acyclic then begin
      let msg =
        Printf.sprintf "extended escape CDG has a cycle (%d direct + %d indirect dependencies)"
          r.Duato.direct_edges r.Duato.indirect_edges
      in
      if expect_deadlock_free then
        add
          (Diagnostic.error "E031" (Diagnostic.Algorithm name) msg
             ~context:[ ("escape", Routing.name esc) ])
      else
        add
          (Diagnostic.info "I032" (Diagnostic.Algorithm name)
             (msg ^ "; expected for this non-certified design")
             ~context:[ ("escape", Routing.name esc) ])
    end);
  Diagnostic.by_severity (List.rev !diags)

let reroute ~adaptive ~algorithm topo rt' =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ctx = [ ("reroute", Routing.name rt') ] in
  if Routing.topology rt' != topo then
    add
      (Diagnostic.error "E044" (Diagnostic.Algorithm algorithm)
         "recovery reroute is built on a different topology; the engine rejects this config"
         ~context:ctx);
  if adaptive then
    add
      (Diagnostic.warning "W044" (Diagnostic.Algorithm algorithm)
         "adaptive algorithm with a recovery reroute: the reroute pins each retried \
          message's remaining route (older releases silently ignored it); drop the reroute \
          to keep full adaptive freedom on retries"
         ~context:ctx);
  Diagnostic.by_severity (List.rev !diags)

let detect_config ~algorithm ~bound ~backstop =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ctx = [ ("bound", string_of_int bound); ("backstop", string_of_int backstop) ] in
  if bound < 1 || backstop < 1 then
    add
      (Diagnostic.error "E045" (Diagnostic.Algorithm algorithm)
         (Printf.sprintf
            "detection bound and backstop must be >= 1 (bound %d, backstop %d); the engine \
             rejects this config"
            bound backstop)
         ~context:ctx)
  else if backstop <= bound then
    add
      (Diagnostic.warning "W046" (Diagnostic.Algorithm algorithm)
         (Printf.sprintf
            "backstop %d <= detection bound %d: the no-progress sweep aborts every knot \
             member before the detector can confirm a victim, making detection dead code; \
             raise the backstop well above the bound"
            backstop bound)
         ~context:ctx);
  Diagnostic.by_severity (List.rev !diags)

let discipline_config ~algorithm ~discipline ~buffer_capacity ~max_length =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ctx =
    [
      ("discipline", discipline);
      ("buffer_capacity", string_of_int buffer_capacity);
      ("max_length", string_of_int max_length);
    ]
  in
  (match discipline with
  | "store-and-forward" ->
    if buffer_capacity < max_length then
      add
        (Diagnostic.error "E047" (Diagnostic.Algorithm algorithm)
           (Printf.sprintf
              "store-and-forward with %d-flit buffers under a %d-flit message: a whole \
               packet can never fit in one channel; the engine rejects this config -- \
               raise buffer_capacity to at least the longest message"
              buffer_capacity max_length)
           ~context:ctx)
  | "virtual-cut-through" ->
    if buffer_capacity < max_length then
      add
        (Diagnostic.warning "W048" (Diagnostic.Algorithm algorithm)
           (Printf.sprintf
              "virtual cut-through with %d-flit buffers under a %d-flit message: \
               undersized cut-through buffers degenerate to wormhole, so the kernel \
               silently provisions every channel with a whole-packet buffer instead; \
               set buffer_capacity >= the longest message to make that explicit"
              buffer_capacity max_length)
           ~context:ctx)
  | _ -> ());
  Diagnostic.by_severity (List.rev !diags)

let fault_plan ?labels topo plan =
  let nchan = Topology.num_channels topo in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let events = Fault.events plan in
  let in_range c = c >= 0 && c < nchan in
  (* earliest permanent failure per (valid) channel, for the stall lint *)
  let fail_at = Hashtbl.create 8 in
  List.iter
    (function
      | Fault.Link_failure { channel; at } when in_range channel -> (
        match Hashtbl.find_opt fail_at channel with
        | Some t when t <= at -> ()
        | _ -> Hashtbl.replace fail_at channel at)
      | _ -> ())
    events;
  let seen_failures = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let subject = Diagnostic.Event i in
      match ev with
      | Fault.Link_failure { channel; at } ->
        if not (in_range channel) then
          add
            (Diagnostic.error "E040" subject
               (Printf.sprintf "link failure references channel %d outside the topology (%d \
                                channels)"
                  channel nchan))
        else if Hashtbl.mem seen_failures channel then
          add
            (Diagnostic.warning "W043" subject
               (Printf.sprintf "redundant permanent failure: %s already fails at cycle %d"
                  (Topology.channel_name topo channel)
                  (Hashtbl.find fail_at channel))
               ~context:[ ("at", string_of_int at) ])
        else Hashtbl.replace seen_failures channel ()
      | Fault.Transient_stall { channel; at; duration } ->
        if not (in_range channel) then
          add
            (Diagnostic.error "E040" subject
               (Printf.sprintf "stall references channel %d outside the topology (%d channels)"
                  channel nchan))
        else (
          match Hashtbl.find_opt fail_at channel with
          | Some fat when fat <= at ->
            add
              (Diagnostic.error "E041" subject
                 (Printf.sprintf
                    "unsatisfiable stall window: %s is permanently failed from cycle %d, \
                     before the stall at %d+%d begins"
                    (Topology.channel_name topo channel) fat at duration))
          | _ -> ())
      | Fault.Message_drop { label; at } -> (
        match labels with
        | Some ls when not (List.mem label ls) ->
          add
            (Diagnostic.warning "W042" subject
               (Printf.sprintf "drop references label %S, which no scheduled message carries"
                  label)
               ~context:[ ("at", string_of_int at) ])
        | _ -> ()))
    events;
  Diagnostic.by_severity (List.rev !diags)
