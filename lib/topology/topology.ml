

type node = int
type channel = int

type channel_info = {
  c_src : node;
  c_dst : node;
  c_vc : int;
  c_name : string option;
}

type t = {
  names : string Vec.t;
  by_name : (string, node) Hashtbl.t;
  chans : channel_info Vec.t;
  outs : channel Vec.t Vec.t; (* per node, outgoing channels *)
  ins : channel Vec.t Vec.t;
  intern : (int, channel) Hashtbl.t;
      (* (src, dst, vc) packed into one int -> channel id.  Maintained by
         [add_channel]; read-only afterwards, so concurrent queries from
         parallel sweep domains are safe.  Keys channel lookup at O(1)
         instead of scanning the out-channel list on every routing query. *)
}

(* Node ids are dense and small (<= num_nodes), vc counts tiny: pack the
   triple into a single immediate int so interning allocates nothing. *)
let intern_key a b vc = (((a * 0x40000) + b) * 0x40) + vc

let create () =
  {
    names = Vec.create ();
    by_name = Hashtbl.create 16;
    chans = Vec.create ();
    outs = Vec.create ();
    ins = Vec.create ();
    intern = Hashtbl.create 64;
  }

let num_nodes t = Vec.length t.names

let num_channels t = Vec.length t.chans

let add_node t name =
  if Hashtbl.mem t.by_name name then invalid_arg ("Topology.add_node: duplicate name " ^ name);
  let id = num_nodes t in
  if id >= 0x40000 then invalid_arg "Topology.add_node: too many nodes";
  Vec.push t.names name;
  Hashtbl.add t.by_name name id;
  Vec.push t.outs (Vec.create ());
  Vec.push t.ins (Vec.create ());
  id

let check_node t v =
  if v < 0 || v >= num_nodes t then invalid_arg "Topology: unknown node"

let find_channel ?(vc = 0) t a b =
  check_node t a;
  if b < 0 || b >= num_nodes t || vc < 0 || vc >= 0x40 then None
  else Hashtbl.find_opt t.intern (intern_key a b vc)

let add_channel ?(vc = 0) ?name t a b =
  check_node t a;
  check_node t b;
  if a = b then invalid_arg "Topology.add_channel: self-loop";
  if vc < 0 || vc >= 0x40 then invalid_arg "Topology.add_channel: vc outside [0, 63]";
  (match find_channel ~vc t a b with
  | Some _ -> invalid_arg "Topology.add_channel: duplicate channel (same src/dst/vc)"
  | None -> ());
  let id = num_channels t in
  Vec.push t.chans { c_src = a; c_dst = b; c_vc = vc; c_name = name };
  Vec.push (Vec.get t.outs a) id;
  Vec.push (Vec.get t.ins b) id;
  Hashtbl.replace t.intern (intern_key a b vc) id;
  id

let add_bidirectional ?(vc = 0) t a b =
  let f = add_channel ~vc t a b in
  let r = add_channel ~vc t b a in
  (f, r)

let node_name t v =
  check_node t v;
  Vec.get t.names v

let node_of_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some v -> v
  | None -> raise Not_found

let info t c =
  if c < 0 || c >= num_channels t then invalid_arg "Topology: unknown channel";
  Vec.get t.chans c

let src t c = (info t c).c_src

let dst t c = (info t c).c_dst

let vc t c = (info t c).c_vc

let channel_name t c =
  let i = info t c in
  match i.c_name with
  | Some n -> n
  | None ->
    let base = Printf.sprintf "%s->%s" (node_name t i.c_src) (node_name t i.c_dst) in
    if i.c_vc = 0 then base else Printf.sprintf "%s#%d" base i.c_vc

let out_channels t v =
  check_node t v;
  Vec.to_list (Vec.get t.outs v)

let in_channels t v =
  check_node t v;
  Vec.to_list (Vec.get t.ins v)

let nodes t = List.init (num_nodes t) Fun.id

let channels t = List.init (num_channels t) Fun.id

let iter_channels f t =
  for c = 0 to num_channels t - 1 do
    f c
  done

let strongly_connected t =
  let n = num_nodes t in
  n = 0
  ||
  let succ v = List.map (dst t) (out_channels t v) in
  let _, count = Scc.tarjan ~n ~succ in
  count = 1

(* Single-source BFS recording the channel that first reached each node. *)
let bfs t s =
  let n = num_nodes t in
  let dist = Array.make n max_int in
  let via = Array.make n (-1) in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun c ->
        let v = dst t c in
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          via.(v) <- c;
          Queue.add v q
        end)
      (out_channels t u)
  done;
  (dist, via)

let distance t a b =
  check_node t b;
  let dist, _ = bfs t a in
  dist.(b)

let distance_matrix t =
  Array.init (num_nodes t) (fun s -> fst (bfs t s))

let shortest_path t a b =
  check_node t b;
  let dist, via = bfs t a in
  if dist.(b) = max_int then None
  else begin
    let rec collect v acc = if v = a then acc else collect (src t via.(v)) (via.(v) :: acc) in
    Some (collect b [])
  end
