(** Oblivious routing algorithms (Definitions 2 and 3 of the paper).

    A routing function has the form [C x N -> C]: the output channel depends
    on the input channel the message arrived on and on its destination.
    Injection at the source is modeled by the [Inject] input, so the routing
    algorithm [R(src, dst)] of Definition 3 is recovered by iterating the
    function from [Inject src].

    The function only needs to be defined along {e realized} inputs: pairs
    [(input, dest)] that actually occur while routing some message from some
    source to [dest].  [validate] checks totality and termination over all
    source/destination pairs. *)

type input =
  | Inject of Topology.node  (** message being injected at this node *)
  | From of Topology.channel  (** message arrived on this channel *)

type t

val create :
  name:string -> Topology.t -> (input -> Topology.node -> Topology.channel option) -> t
(** [create ~name topo f] wraps routing function [f].  [f input dest] returns
    the output channel, or [None] to consume (legal only when the current
    node {e is} [dest]). *)

val name : t -> string
val topology : t -> Topology.t

val current_node : Topology.t -> input -> Topology.node
(** The node at which a routing decision for this input is made. *)

val next : t -> input -> Topology.node -> Topology.channel option
(** One routing step. *)

(** Typed routing failures, the raw material of the [E001]-[E004] wormlint
    diagnostics (see [Wr_analysis.Lint]). *)
type error_kind =
  | Livelock of { limit : int }
      (** the walk did not deliver within the step cutoff *)
  | Consumed_early of { at : Topology.node }
      (** the function consumed at a node that is not the destination *)
  | Not_leaving of { channel : Topology.channel; at : Topology.node }
      (** the returned channel does not leave the current node *)
  | Passed_destination
      (** the walk reached the destination but kept routing *)

type error = {
  e_algorithm : string;
  e_src : Topology.node;
  e_dst : Topology.node;
  e_kind : error_kind;
  e_message : string;  (** pre-rendered human-readable description *)
}

exception Route_error of error

val error_message : error -> string

val path : t -> Topology.node -> Topology.node -> (Topology.channel list, error) result
(** The unique path from source to destination, or a typed error describing
    the failure (livelock, broken channel chain, premature consumption...).
    The walk is cut off after [4 * num_channels + 4] steps. *)

val path_exn : t -> Topology.node -> Topology.node -> Topology.channel list
(** @raise Route_error when [path] returns an error. *)

val validate : t -> (unit, string) result
(** Check every ordered pair of distinct nodes is delivered. *)

val iter_realized : t -> (input -> Topology.node -> Topology.channel -> unit) -> unit
(** Iterate all realized routing decisions: for every source/destination
    pair, every step of the path, including the injection step.  This is the
    enumeration the CDG builder and the property checkers consume.
    Decisions are deduplicated. *)

val avoiding : ?name:string -> failed:Topology.channel list -> t -> t
(** [avoiding ~failed base] is the graceful-degradation wrapper: an
    oblivious routing function on the same topology that never uses a
    channel in [failed].  Wherever the base algorithm's remaining path
    already avoids every failed channel the wrapper follows it unchanged;
    otherwise it detours along a deterministic shortest path of the
    degraded network (failed channels removed) until a clean base suffix is
    reached.  Pairs disconnected by the failures are reported by {!path} /
    {!validate} as routing errors.

    The result is a fresh algorithm: its deadlock-freedom is {e not}
    inherited from [base].  Re-run the CDG / verification pipeline on it
    (see [Degrade.reroute]) before trusting it.
    @raise Invalid_argument when a failed channel id is out of range. *)

val pp_path : t -> Format.formatter -> Topology.channel list -> unit
(** Render a path as ["Src -cs-> N* -...-> D1"]. *)
