type input = Inject of Topology.node | From of Topology.channel

type t = {
  name : string;
  topo : Topology.t;
  f : input -> Topology.node -> Topology.channel option;
}

let create ~name topo f = { name; topo; f }

let name t = t.name

let topology t = t.topo

let current_node topo = function
  | Inject v -> v
  | From c -> Topology.dst topo c

let next t input dest = t.f input dest

type error_kind =
  | Livelock of { limit : int }
  | Consumed_early of { at : Topology.node }
  | Not_leaving of { channel : Topology.channel; at : Topology.node }
  | Passed_destination

type error = {
  e_algorithm : string;
  e_src : Topology.node;
  e_dst : Topology.node;
  e_kind : error_kind;
  e_message : string;
}

exception Route_error of error

let error_message e = e.e_message

let path t s d =
  if s = d then Ok []
  else begin
    let limit = (4 * Topology.num_channels t.topo) + 4 in
    let err kind msg = Error { e_algorithm = t.name; e_src = s; e_dst = d; e_kind = kind; e_message = msg } in
    let rec walk input acc steps =
      if steps > limit then
        err (Livelock { limit })
          (Printf.sprintf "%s: no delivery from %s to %s within %d steps (livelock?)" t.name
             (Topology.node_name t.topo s) (Topology.node_name t.topo d) limit)
      else begin
        let here = current_node t.topo input in
        match t.f input d with
        | None ->
          if here = d then Ok (List.rev acc)
          else
            err (Consumed_early { at = here })
              (Printf.sprintf "%s: consumed at %s but destination is %s" t.name
                 (Topology.node_name t.topo here) (Topology.node_name t.topo d))
        | Some c ->
          if Topology.src t.topo c <> here then
            err (Not_leaving { channel = c; at = here })
              (Printf.sprintf "%s: routed onto %s which does not leave %s" t.name
                 (Topology.channel_name t.topo c) (Topology.node_name t.topo here))
          else if here = d then
            err Passed_destination
              (Printf.sprintf "%s: passed through destination %s without consuming" t.name
                 (Topology.node_name t.topo d))
          else walk (From c) (c :: acc) (steps + 1)
      end
    in
    walk (Inject s) [] 0
  end

let path_exn t s d =
  match path t s d with Ok p -> p | Error e -> raise (Route_error e)

let validate t =
  let n = Topology.num_nodes t.topo in
  let rec pairs s d =
    if s >= n then Ok ()
    else if d >= n then pairs (s + 1) 0
    else if s = d then pairs s (d + 1)
    else
      match path t s d with
      | Ok _ -> pairs s (d + 1)
      | Error e -> Error e.e_message
  in
  pairs 0 0

let iter_realized t k =
  let seen = Hashtbl.create 256 in
  let emit input dest c =
    let key = (input, dest) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key c;
      k input dest c
    end
  in
  let n = Topology.num_nodes t.topo in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        match path t s d with
        | Error _ -> () (* validate reports these; nothing to enumerate *)
        | Ok chans ->
          let rec steps input = function
            | [] -> ()
            | c :: rest ->
              emit input d c;
              steps (From c) rest
          in
          steps (Inject s) chans
    done
  done

let avoiding ?name ~failed base =
  let topo = base.topo in
  let name = match name with Some n -> n | None -> base.name ^ "+avoid" in
  let nchan = Topology.num_channels topo in
  let n = Topology.num_nodes topo in
  let bad = Array.make nchan false in
  List.iter
    (fun c ->
      if c < 0 || c >= nchan then invalid_arg "Routing.avoiding: channel out of range";
      bad.(c) <- true)
    failed;
  (* all-pairs hop distances in the degraded network (failed channels cut) *)
  let dist = Array.make_matrix n n max_int in
  for s = 0 to n - 1 do
    dist.(s).(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun c ->
          if not bad.(c) then begin
            let v = Topology.dst topo c in
            if dist.(s).(v) = max_int then begin
              dist.(s).(v) <- dist.(s).(u) + 1;
              Queue.add v q
            end
          end)
        (Topology.out_channels topo u)
    done
  done;
  (* does the base algorithm's continuation from [input] reach [dest]
     without touching a failed channel?  Precomputed eagerly for every
     (input, dest) pair: the routing's query function must be read-only,
     because parallel sweep domains share it.  0 = unknown, 1 = clean,
     2 = dirty. *)
  let limit = (4 * nchan) + 4 in
  let memo_inject = Array.make_matrix n n 0 in
  let memo_from = Array.make_matrix (max nchan 1) n 0 in
  let memo input dest =
    match input with
    | Inject v -> memo_inject.(v).(dest)
    | From c -> memo_from.(c).(dest)
  in
  let set_memo input dest b =
    let v = if b then 1 else 2 in
    match input with
    | Inject x -> memo_inject.(x).(dest) <- v
    | From c -> memo_from.(c).(dest) <- v
  in
  let rec clean input dest steps =
    if steps > limit then false
    else
      match memo input dest with
      | 1 -> true
      | 2 -> false
      | _ ->
        let here = current_node topo input in
        let b =
          match base.f input dest with
          | None -> here = dest
          | Some c ->
            here <> dest && not bad.(c)
            && Topology.src topo c = here
            && clean (From c) dest (steps + 1)
        in
        set_memo input dest b;
        b
  in
  for dest = 0 to n - 1 do
    for v = 0 to n - 1 do
      ignore (clean (Inject v) dest 0)
    done;
    for c = 0 to nchan - 1 do
      ignore (clean (From c) dest 0)
    done
  done;
  let clean input dest = clean input dest 0 in
  let f input dest =
    let here = current_node topo input in
    if here = dest then None
    else if clean input dest then base.f input dest
    else if dist.(here).(dest) = max_int then None (* unreachable: let [path] report it *)
    else
      (* first outgoing channel (insertion order) on a shortest degraded
         path -- deterministic, and each hop strictly shrinks the distance,
         so mixing these detour steps with clean base suffixes terminates *)
      Topology.out_channels topo here
      |> List.find_opt (fun c ->
             (not bad.(c)) && dist.(Topology.dst topo c).(dest) = dist.(here).(dest) - 1)
  in
  create ~name topo f

let pp_path t ppf = function
  | [] -> Format.pp_print_string ppf "(empty)"
  | first :: _ as chans ->
    Format.pp_print_string ppf (Topology.node_name t.topo (Topology.src t.topo first));
    List.iter
      (fun c ->
        Format.fprintf ppf " -> %s" (Topology.node_name t.topo (Topology.dst t.topo c)))
      chans
