type verdict = Holds | Fails of string

let is_holds = function Holds -> true | Fails _ -> false

let pp_verdict ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Fails w -> Format.fprintf ppf "fails (%s)" w

(* Run [check s d path] over all pairs; first failure wins. *)
let over_pairs rt check =
  let topo = Routing.topology rt in
  let n = Topology.num_nodes topo in
  let rec loop s d =
    if s >= n then Holds
    else if d >= n then loop (s + 1) 0
    else if s = d then loop s (d + 1)
    else
      match Routing.path rt s d with
      | Error e -> Fails (Routing.error_message e)
      | Ok p -> (
        match check s d p with
        | None -> loop s (d + 1)
        | Some why -> Fails why)
  in
  loop 0 0

let node_name rt = Topology.node_name (Routing.topology rt)

let minimal rt =
  let topo = Routing.topology rt in
  let dist = Topology.distance_matrix topo in
  over_pairs rt (fun s d p ->
      let len = List.length p in
      if len = dist.(s).(d) then None
      else
        Some
          (Printf.sprintf "path %s->%s has %d hops, shortest is %d" (node_name rt s)
             (node_name rt d) len dist.(s).(d)))

(* The sequence of nodes visited by a path starting at [s]. *)
let visited topo s p = s :: List.map (Topology.dst topo) p

let no_repeated_nodes rt =
  let topo = Routing.topology rt in
  over_pairs rt (fun s d p ->
      let nodes = visited topo s p in
      let sorted = List.sort compare nodes in
      let rec dup = function
        | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
        | _ -> None
      in
      match dup sorted with
      | None -> None
      | Some v ->
        Some
          (Printf.sprintf "path %s->%s visits %s twice" (node_name rt s) (node_name rt d)
             (node_name rt v)))

(* Prefix of [p] (channel list) up to the first arrival at node [x]. *)
let prefix_to topo s x p =
  if s = x then Some []
  else begin
    let rec scan acc = function
      | [] -> None
      | c :: rest ->
        if Topology.dst topo c = x then Some (List.rev (c :: acc)) else scan (c :: acc) rest
    in
    scan [] p
  end

let suffix_from topo s x p =
  if s = x then Some p
  else begin
    let rec scan = function
      | [] -> None
      | c :: rest -> if Topology.dst topo c = x then Some rest else scan rest
    in
    scan p
  end

let prefix_closed rt =
  let topo = Routing.topology rt in
  over_pairs rt (fun s d p ->
      let inner = List.filter (fun x -> x <> s && x <> d) (visited topo s p) in
      let rec each = function
        | [] -> None
        | x :: rest -> (
          match prefix_to topo s x p with
          | None -> each rest
          | Some expected -> (
            match Routing.path rt s x with
            | Error e -> Some (Routing.error_message e)
            | Ok q ->
              if q = expected then each rest
              else
                Some
                  (Printf.sprintf
                     "path %s->%s passes %s but the %s->%s path is not its prefix"
                     (node_name rt s) (node_name rt d) (node_name rt x) (node_name rt s)
                     (node_name rt x))))
      in
      each inner)

let suffix_closed rt =
  let topo = Routing.topology rt in
  over_pairs rt (fun s d p ->
      let inner = List.filter (fun x -> x <> s && x <> d) (visited topo s p) in
      let rec each = function
        | [] -> None
        | x :: rest -> (
          match suffix_from topo s x p with
          | None -> each rest
          | Some expected -> (
            match Routing.path rt x d with
            | Error e -> Some (Routing.error_message e)
            | Ok q ->
              if q = expected then each rest
              else
                Some
                  (Printf.sprintf
                     "path %s->%s passes %s but the %s->%s path is not its suffix"
                     (node_name rt s) (node_name rt d) (node_name rt x) (node_name rt x)
                     (node_name rt d))))
      in
      each inner)

let coherent rt =
  match no_repeated_nodes rt with
  | Fails w -> Fails w
  | Holds -> (
    match prefix_closed rt with
    | Fails w -> Fails w
    | Holds -> suffix_closed rt)

let input_independent rt =
  let topo = Routing.topology rt in
  (* collect every realized decision, grouped by (current node, dest) *)
  let decisions = Hashtbl.create 256 in
  let conflict = ref None in
  Routing.iter_realized rt (fun input dest out ->
      let here = Routing.current_node topo input in
      match Hashtbl.find_opt decisions (here, dest) with
      | None -> Hashtbl.add decisions (here, dest) out
      | Some out' ->
        if out <> out' && !conflict = None then
          conflict :=
            Some
              (Printf.sprintf
                 "at %s toward %s the output depends on the input channel (%s vs %s)"
                 (Topology.node_name topo here) (Topology.node_name topo dest)
                 (Topology.channel_name topo out') (Topology.channel_name topo out)));
  match !conflict with None -> Holds | Some w -> Fails w

let summary rt =
  [
    ("minimal", minimal rt);
    ("no-repeated-nodes", no_repeated_nodes rt);
    ("prefix-closed", prefix_closed rt);
    ("suffix-closed", suffix_closed rt);
    ("coherent", coherent rt);
    ("input-independent", input_independent rt);
  ]
