type report = {
  total : int;
  delivered : int;
  finished_at : int;
  deadlocked : bool;
  deadlock_class : Engine.deadlock_class option;
  recovered : bool;
  retries : int;
  avg_latency : float;
  p95_latency : float;
  max_latency : float;
  throughput : float;
}

let run ?config ?stats rt sched =
  let outcome = Engine.run ?config ?stats rt sched in
  let by_label = Hashtbl.create 64 in
  List.iter (fun (m : Schedule.message_spec) -> Hashtbl.replace by_label m.ms_label m) sched;
  let stats = Stats.create () in
  let flits = ref 0 in
  let collect (results : Engine.message_result list) =
    List.iter
      (fun (r : Engine.message_result) ->
        match r.r_delivered_at with
        | None -> ()
        | Some fin ->
          let spec = Hashtbl.find by_label r.r_label in
          flits := !flits + spec.Schedule.ms_length;
          Stats.add stats (float_of_int (fin - spec.Schedule.ms_inject_at + 1)))
      results
  in
  let finished_at, deadlocked, deadlock_class, recovered, retries =
    match outcome with
    | Engine.All_delivered { finished_at; messages } ->
      collect messages;
      (finished_at, false, None, false, 0)
    | Engine.Cutoff { at; messages } ->
      collect messages;
      (at, false, None, false, 0)
    | Engine.Deadlock d -> (d.Engine.d_cycle, true, Some d.Engine.d_class, false, 0)
    | Engine.Recovered { finished_at; messages; stats = rstats } ->
      collect messages;
      ( finished_at,
        false,
        None,
        true,
        List.fold_left (fun acc (s : Engine.retry_stat) -> acc + s.t_retries) 0 rstats )
  in
  {
    total = List.length sched;
    delivered = Stats.count stats;
    finished_at;
    deadlocked;
    deadlock_class;
    recovered;
    retries;
    avg_latency = Stats.mean stats;
    p95_latency = Stats.percentile stats 95.0;
    max_latency = (if Stats.count stats = 0 then 0.0 else Stats.max_value stats);
    throughput =
      (if finished_at <= 0 then 0.0 else float_of_int !flits /. float_of_int (finished_at + 1));
  }

let pp ppf r =
  Format.fprintf ppf
    "%d/%d delivered%s in %d cycles; latency avg %.1f p95 %.1f max %.0f; throughput %.3f \
     flits/cycle"
    r.delivered r.total
    (if r.deadlocked then
       match r.deadlock_class with
       | Some c -> Printf.sprintf " (DEADLOCK, %s)" (Engine.deadlock_class_string c)
       | None -> " (DEADLOCK)"
     else if r.recovered then Printf.sprintf " (recovered, %d retries)" r.retries
     else "")
    r.finished_at r.avg_latency r.p95_latency r.max_latency r.throughput
