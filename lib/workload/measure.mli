(** Latency/throughput measurement of a simulated workload. *)

type report = {
  total : int;  (** messages in the schedule *)
  delivered : int;
  finished_at : int;  (** last simulated cycle *)
  deadlocked : bool;
  deadlock_class : Engine.deadlock_class option;
      (** global/local/weak classification when [deadlocked] *)
  recovered : bool;  (** run was perturbed by faults/recovery yet terminated *)
  retries : int;  (** total aborts across all messages (0 unless recovered) *)
  avg_latency : float;  (** injection-request to tail-consumption, cycles *)
  p95_latency : float;
  max_latency : float;
  throughput : float;  (** delivered flits per cycle, network-wide *)
}

val run : ?config:Engine.config -> ?stats:Obs_stats.t -> Routing.t -> Schedule.t -> report
(** Simulate and aggregate.  Latency for a message counts from its scheduled
    injection time (so source queueing is included).  A deadlocked run
    reports [deadlocked = true] with zero delivery statistics.  [stats]
    threads a telemetry accumulator through to {!Engine.run}. *)

val pp : Format.formatter -> report -> unit
