(** Deterministic Domain-based work pool for sweep workloads.

    Every entry point is {e canonically reduced}: the result is byte-identical
    for any domain count, including [1], including under early cancellation.
    Determinism comes from three rules:

    - tasks are claimed in ascending index order (chunked atomic counter);
    - a task is cancelled only when some {e lower-indexed} task has already
      hit, so every task up to the eventual winner runs to completion;
    - results are reduced in task-index order, never in completion order.

    Helper domains come from a process-wide budget initialized to
    [default_domains () - 1], so nested pool calls run inline instead of
    oversubscribing the machine.  There are no persistent workers: each call
    spawns and joins its own helpers, and exceptions raised by tasks are
    re-raised in the caller after all domains are joined. *)

val default_domains : unit -> int
(** Domain count used when [?domains] is omitted: the value given to
    {!set_default_domains} if any, else the [WORMHOLE_DOMAINS] environment
    variable (ignored unless a positive integer), else
    [Domain.recommended_domain_count ()]. *)

val set_default_domains : int -> unit
(** Override the process-wide default (e.g. from a [--domains] flag).  Call
    before the first parallel call: the helper budget is sized on first use.
    @raise Invalid_argument on values < 1. *)

type event =
  | Claim of { first : int; last : int }
      (** a worker claimed the inclusive task-index range [first..last] *)
  | Cancel of { index : int }
      (** a claimed task was skipped because a lower-indexed task already hit *)

val set_observer : (event -> unit) option -> unit
(** Install (or with [None] remove) a process-wide pool observer.  The
    observer runs on whichever domain claims or cancels, so it must be
    domain-safe.  Observation only: the pool's results are unaffected.
    Used by [wr_obs] to bridge pool activity onto the event bus; note the
    event stream is inherently schedule-dependent (claims race), unlike the
    pool's canonically-reduced results. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f l] = [List.map f l], computed on up to [domains] domains.
    [f] must be safe to call from any domain (no shared mutable state). *)

val mapi_array : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Array/indexed variant of {!map}. *)

val map_reduce :
  ?domains:int ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** [map_reduce ~map ~reduce ~init l] = [List.fold_left reduce init
    (List.map map l)], with the map fanned out on up to [domains] domains
    and the fold applied sequentially in task-index order — the canonical
    reduction that keeps accumulator merges (e.g. {!Obs_stats.merge})
    byte-identical at any domain count.  [reduce] runs on the calling
    domain only, so it may freely mutate [init]. *)

val map_until :
  ?domains:int ->
  hit:('b -> bool) ->
  (stop:(unit -> bool) -> int -> 'a -> 'b) ->
  'a array ->
  'b option array
(** [map_until ~hit f tasks] runs [f ~stop i tasks.(i)] for ascending [i]
    until the first [i] whose result satisfies [hit], exactly like the
    sequential loop

    {[
      try for i = 0 to n-1 do r.(i) <- Some (f i tasks.(i));
          if hit r.(i) then raise Exit done with Exit -> ()
    ]}

    but on up to [domains] domains.  The returned array holds [Some] for
    every index up to and including the first hit (or all of them when
    nothing hits) and [None] beyond it — byte-identical to the sequential
    loop for any domain count.

    [stop ()] becomes true once a lower-indexed task has hit; long-running
    tasks should poll it and return early with any value (the winner's
    prefix never observes [stop () = true], so cancelled garbage is always
    discarded by the reduce). *)

val find_mapi :
  ?domains:int ->
  (stop:(unit -> bool) -> int -> 'a -> 'b option) ->
  'a array ->
  (int * 'b) option
(** First-match search: [find_mapi f tasks] returns [Some (i, v)] for the
    least [i] with [f ~stop i tasks.(i) = Some v], else [None].  Same
    cancellation contract as {!map_until}. *)
