(** Fixed-capacity bitsets over integers [0..n-1].

    Used for visited sets in graph algorithms and channel-occupancy masks in
    the search layer. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val copy : t -> t
val equal : t -> t -> bool
val union_into : t -> t -> unit
(** [union_into dst src] adds all of [src] into [dst]; capacities must match. *)

val hash : t -> int

(** {2 Unchecked access}

    Bounds-unchecked variants of {!mem}/{!add}/{!remove} for hot loops that
    already guarantee [0 <= i < capacity t] (e.g. the simulator's
    struct-of-arrays switching kernel, which indexes by validated message
    ids every cycle).  Out-of-range indices are undefined behaviour. *)

val unsafe_mem : t -> int -> bool
val unsafe_add : t -> int -> unit
val unsafe_remove : t -> int -> unit
