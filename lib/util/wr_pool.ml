(* Deterministic Domain-based work pool.

   Design goals, in priority order:

   1. Determinism: every entry point produces byte-identical results for any
      domain count, including under early cancellation.  See the canonical
      reduce argument on [map_until].
   2. No oversubscription: helper domains are drawn from a process-wide
      budget, so nested pool calls degrade to the inline sequential path
      instead of multiplying domains.
   3. [domains = 1] is the exact sequential code path (no domains spawned,
      no atomics on the task path), so single-core behaviour is the old
      behaviour.

   There are no persistent workers: each parallel call spawns its helpers
   and joins them before returning.  Spawn cost (~10-30us each) is noise
   against the sweep workloads this pool exists for. *)

(* ------------------------------------------------------------------ *)
(* Domain-count policy                                                 *)

let parse_env () =
  match Sys.getenv_opt "WORMHOLE_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let forced_default : int option ref = ref None

let set_default_domains n =
  if n < 1 then invalid_arg "Wr_pool.set_default_domains: need >= 1";
  forced_default := Some n

let default_domains () =
  match !forced_default with
  | Some n -> n
  | None -> (
    match parse_env () with
    | Some n -> n
    | None -> Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Helper budget                                                       *)

(* Process-wide count of helper domains that may still be spawned.
   Initialized on first use to [default_domains () - 1] (the caller's own
   domain is the implicit worker).  An explicit [~domains] request is
   authoritative and may drive the balance negative; a defaulted request
   only takes what is available.  Either way a nested call observes a
   drained budget and runs inline, so the total number of live domains
   stays bounded. *)
let uninitialized = min_int
let budget = Atomic.make uninitialized

let budget_ref () =
  if Atomic.get budget = uninitialized then
    ignore
      (Atomic.compare_and_set budget uninitialized
         (max 0 (default_domains () - 1)));
  budget

let reserve ~forced k =
  if k <= 0 then 0
  else begin
    let b = budget_ref () in
    if forced then begin
      ignore (Atomic.fetch_and_add b (-k));
      k
    end
    else begin
      let rec take () =
        let old = Atomic.get b in
        let got = min k (max old 0) in
        if got = 0 then 0
        else if Atomic.compare_and_set b old (old - got) then got
        else take ()
      in
      take ()
    end
  end

let release k = if k > 0 then ignore (Atomic.fetch_and_add (budget_ref ()) k)

(* ------------------------------------------------------------------ *)
(* Observer hook                                                       *)

(* wr_util sits below the observability library, so the pool cannot emit
   Obs events directly; instead it exposes a tiny hook that wr_obs bridges.
   The observer runs on whichever domain claims/cancels, so it must be
   domain-safe.  Held in an Atomic so installation from the main domain is
   visible to helpers spawned afterwards. *)

type event = Claim of { first : int; last : int } | Cancel of { index : int }

let observer : (event -> unit) option Atomic.t = Atomic.make None
let set_observer f = Atomic.set observer f
let notify ev = match Atomic.get observer with None -> () | Some f -> f ev

(* ------------------------------------------------------------------ *)
(* Task execution                                                      *)

(* Run [body 0 .. body (n-1)], each exactly once, on [helpers + 1] domains.
   Indices are claimed in ascending chunks from a shared atomic counter, so
   lower indices are always claimed no later than higher ones.  All helpers
   are joined before returning; the first exception (caller's first, then
   helpers in domain order) is re-raised after the join, so no domain ever
   outlives the call. *)
let run_tasks ~helpers ~chunk n body =
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        notify (Claim { first = start; last = stop - 1 });
        for i = start to stop - 1 do
          body i
        done;
        loop ()
      end
    in
    loop ()
  in
  if helpers = 0 then worker ()
  else begin
    let doms = Array.init helpers (fun _ -> Domain.spawn worker) in
    let first_exn = ref None in
    let note e = match !first_exn with None -> first_exn := Some e | Some _ -> () in
    (try worker () with e -> note e);
    Array.iter (fun d -> try Domain.join d with e -> note e) doms;
    match !first_exn with None -> () | Some e -> raise e
  end

(* ------------------------------------------------------------------ *)
(* Canonical-order primitives                                          *)

let map_until ?domains ~hit f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  if n = 0 then results
  else begin
    let explicit = domains <> None in
    let want =
      match domains with
      | Some d ->
        if d < 1 then invalid_arg "Wr_pool.map_until: domains < 1";
        d
      | None -> default_domains ()
    in
    let want = min want n in
    let sequential () =
      (try
         for i = 0 to n - 1 do
           let r = f ~stop:(fun () -> false) i arr.(i) in
           results.(i) <- Some r;
           if hit r then raise Exit
         done
       with Exit -> ());
      results
    in
    if want <= 1 then sequential ()
    else begin
      let helpers = reserve ~forced:explicit (want - 1) in
      if helpers = 0 then sequential ()
      else begin
        (* [best] is the least task index observed to hit so far.  A task
           is skipped (or told to stop early) only when its index is
           strictly greater than [best]; since [best] only decreases and
           ends at the least hitting index overall, every task with index
           <= the final winner runs to its own natural end.  Scanning
           [results] in ascending order therefore reproduces exactly the
           prefix the sequential loop would have produced. *)
        let best = Atomic.make max_int in
        let rec lower i =
          let cur = Atomic.get best in
          if i < cur && not (Atomic.compare_and_set best cur i) then lower i
        in
        let body i =
          if Atomic.get best < i then notify (Cancel { index = i })
          else begin
            let r = f ~stop:(fun () -> Atomic.get best < i) i arr.(i) in
            results.(i) <- Some r;
            if hit r then lower i
          end
        in
        let chunk = max 1 (n / ((helpers + 1) * 8)) in
        Fun.protect
          ~finally:(fun () -> release helpers)
          (fun () -> run_tasks ~helpers ~chunk n body);
        (* Discard results past the winner: the sequential path never
           computed them, and partial stop-interrupted results must not
           leak. *)
        let w = Atomic.get best in
        if w < max_int then
          for i = w + 1 to n - 1 do
            results.(i) <- None
          done;
        results
      end
    end
  end

let mapi_array ?domains f arr =
  let res = map_until ?domains ~hit:(fun _ -> false) (fun ~stop:_ i x -> f i x) arr in
  Array.map (function Some r -> r | None -> assert false) res

let map ?domains f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | l -> Array.to_list (mapi_array ?domains (fun _ x -> f x) (Array.of_list l))

let map_reduce ?domains ~map:f ~reduce ~init l =
  (* the parallel map already yields results in task-index order, so a
     sequential left fold over it IS the canonical reduction *)
  List.fold_left reduce init (map ?domains f l)

let find_mapi ?domains f arr =
  let res =
    map_until ?domains
      ~hit:(fun r -> r <> None)
      (fun ~stop i x -> f ~stop i x)
      arr
  in
  let n = Array.length res in
  let rec scan i =
    if i >= n then None
    else
      match res.(i) with
      | Some (Some v) -> Some (i, v)
      | Some None | None -> scan (i + 1)
  in
  scan 0
