type t = {
  n : int;
  words : int array; (* 62 usable bits per word keeps everything in immediates *)
}

let bits_per_word = 62

let create n =
  let words = ((max n 1) + bits_per_word - 1) / bits_per_word in
  { n; words = Array.make words 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (if mem t i then i :: acc else acc) in
  loop (t.n - 1) []

let copy t = { n = t.n; words = Array.copy t.words }

let equal a b = a.n = b.n && a.words = b.words

let union_into dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let hash t = Hashtbl.hash t.words

(* Unchecked variants for hot loops that maintain their own bounds (the
   simulator's struct-of-arrays kernel indexes by a validated message id
   every cycle; re-checking the range there is pure overhead). *)
let unsafe_mem t i =
  Array.unsafe_get t.words (i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let unsafe_add t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl (i mod bits_per_word)))

let unsafe_remove t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w land lnot (1 lsl (i mod bits_per_word)))
