type event =
  | Link_failure of { channel : Topology.channel; at : int }
  | Transient_stall of { channel : Topology.channel; at : int; duration : int }
  | Message_drop of { label : string; at : int }

type plan = event list

let empty = []

let make events =
  List.iter
    (fun e ->
      match e with
      | Link_failure { at; _ } ->
        if at < 0 then invalid_arg "Fault.make: failure time < 0"
      | Transient_stall { at; duration; _ } ->
        if at < 0 then invalid_arg "Fault.make: stall time < 0";
        if duration < 1 then invalid_arg "Fault.make: stall duration < 1"
      | Message_drop { at; _ } ->
        if at < 0 then invalid_arg "Fault.make: drop time < 0")
    events;
  events

let events p = p

let is_empty p = p = []

let failed_channels p =
  List.filter_map (function Link_failure { channel; _ } -> Some channel | _ -> None) p
  |> List.sort_uniq compare

(* ---- compiled form ---- *)

type compiled = {
  fail_at : int array;  (* per channel, first permanent-failure cycle; max_int if none *)
  stalls : (int * int) list array;  (* per channel, [(start, end_exclusive)] *)
  drops : (string, int list) Hashtbl.t;  (* label -> drop cycles *)
  last_change : int;  (* no event boundary strictly after this cycle *)
}

let compile ~nchan p =
  let fail_at = Array.make nchan max_int in
  let stalls = Array.make nchan [] in
  let drops = Hashtbl.create 8 in
  let last_change = ref (-1) in
  let chan c =
    if c < 0 || c >= nchan then invalid_arg "Fault.compile: channel out of range";
    c
  in
  List.iter
    (fun e ->
      match e with
      | Link_failure { channel; at } ->
        let c = chan channel in
        if at < fail_at.(c) then fail_at.(c) <- at;
        last_change := max !last_change at
      | Transient_stall { channel; at; duration } ->
        let c = chan channel in
        stalls.(c) <- (at, at + duration) :: stalls.(c);
        last_change := max !last_change (at + duration)
      | Message_drop { label; at } ->
        let prev = match Hashtbl.find_opt drops label with Some l -> l | None -> [] in
        Hashtbl.replace drops label (at :: prev);
        last_change := max !last_change at)
    p;
  { fail_at; stalls; drops; last_change = !last_change }

let perm_failed c ch t = ch >= 0 && ch < Array.length c.fail_at && c.fail_at.(ch) <= t

let down c ch t =
  perm_failed c ch t
  || (ch >= 0 && ch < Array.length c.stalls
      && List.exists (fun (s, e) -> s <= t && t < e) c.stalls.(ch))

let dropped_now c label t =
  match Hashtbl.find_opt c.drops label with Some l -> List.mem t l | None -> false

let change_after c t = c.last_change > t

(* ---- generation ---- *)

let random ?(link_failures = 1) ?(stalls = 2) ?(max_stall = 8) ?(drops = []) ~horizon rng
    topo =
  if horizon < 1 then invalid_arg "Fault.random: horizon < 1";
  let nchan = Topology.num_channels topo in
  if nchan = 0 then invalid_arg "Fault.random: topology has no channels";
  let chans = Array.of_list (Topology.channels topo) in
  Rng.shuffle rng chans;
  let failures =
    List.init (min link_failures nchan) (fun i ->
        Link_failure { channel = chans.(i); at = Rng.int rng horizon })
  in
  let stall_events =
    List.init stalls (fun _ ->
        Transient_stall
          {
            channel = Rng.pick rng chans;
            at = Rng.int rng horizon;
            duration = 1 + Rng.int rng max_stall;
          })
  in
  let drop_events =
    List.map (fun label -> Message_drop { label; at = Rng.int rng horizon }) drops
  in
  make (failures @ stall_events @ drop_events)

(* ---- parsing ---- *)

let parse_channel topo s =
  match String.index_opt s '>' with
  | None -> Error (Printf.sprintf "bad channel %S (want SRC>DST[#VC])" s)
  | Some i -> (
    (* accept both "a>b" and the printed form "a->b" *)
    let src_name = String.trim (String.sub s 0 i) in
    let src_name =
      let n = String.length src_name in
      if n > 0 && src_name.[n - 1] = '-' then String.sub src_name 0 (n - 1) else src_name
    in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let dst_name, vc =
      match String.index_opt rest '#' with
      | None -> (String.trim rest, 0)
      | Some j ->
        ( String.trim (String.sub rest 0 j),
          int_of_string (String.trim (String.sub rest (j + 1) (String.length rest - j - 1)))
        )
    in
    match
      ( (try Some (Topology.node_of_name topo src_name) with Not_found -> None),
        try Some (Topology.node_of_name topo dst_name) with Not_found -> None )
    with
    | None, _ -> Error (Printf.sprintf "unknown node %S" src_name)
    | _, None -> Error (Printf.sprintf "unknown node %S" dst_name)
    | Some u, Some v -> (
      match Topology.find_channel ~vc topo u v with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "no channel %s>%s#%d" src_name dst_name vc)))

let parse_event topo s =
  let s = String.trim s in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad fault event %S (want KIND:...)" s)
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest '@' with
    | None -> Error (Printf.sprintf "bad fault event %S (missing @TIME)" s)
    | Some j -> (
      let target = String.sub rest 0 j in
      let time_s = String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) in
      let int_of s =
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "bad time %S" s)
      in
      match kind with
      | "fail" -> (
        match (parse_channel topo target, int_of time_s) with
        | Ok channel, Ok at -> Ok (Link_failure { channel; at })
        | (Error e, _ | _, Error e) -> Error e)
      | "stall" -> (
        match String.index_opt time_s '+' with
        | None -> Error (Printf.sprintf "bad stall %S (want @TIME+DURATION)" s)
        | Some k -> (
          let at_s = String.sub time_s 0 k in
          let dur_s = String.sub time_s (k + 1) (String.length time_s - k - 1) in
          match (parse_channel topo target, int_of at_s, int_of dur_s) with
          | Ok channel, Ok at, Ok duration when duration >= 1 ->
            Ok (Transient_stall { channel; at; duration })
          | Ok _, Ok _, Ok _ -> Error (Printf.sprintf "bad stall duration in %S" s)
          | (Error e, _, _ | _, Error e, _ | _, _, Error e) -> Error e))
      | "drop" -> (
        match int_of time_s with
        | Ok at -> Ok (Message_drop { label = String.trim target; at })
        | Error e -> Error e)
      | k -> Error (Printf.sprintf "unknown fault kind %S (fail, stall or drop)" k)))

(* split on commas, but not inside parentheses: mesh node names are
   "n(0,0)" so channel names themselves contain commas *)
let split_events s =
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun ch ->
      match ch with
      | '(' ->
        incr depth;
        Buffer.add_char buf ch
      | ')' ->
        decr depth;
        Buffer.add_char buf ch
      | ',' when !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | ch -> Buffer.add_char buf ch)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let parse topo s =
  let parts = split_events s |> List.map String.trim |> List.filter (fun p -> p <> "") in
  let rec go acc = function
    | [] -> Ok (make (List.rev acc))
    | p :: rest -> ( match parse_event topo p with Ok e -> go (e :: acc) rest | Error e -> Error e)
  in
  go [] parts

let pp topo ppf p =
  let pp_event ppf = function
    | Link_failure { channel; at } ->
      Format.fprintf ppf "fail:%s@@%d" (Topology.channel_name topo channel) at
    | Transient_stall { channel; at; duration } ->
      Format.fprintf ppf "stall:%s@@%d+%d" (Topology.channel_name topo channel) at duration
    | Message_drop { label; at } -> Format.fprintf ppf "drop:%s@@%d" label at
  in
  match p with
  | [] -> Format.pp_print_string ppf "(no faults)"
  | events ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_event ppf events
