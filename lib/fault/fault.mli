(** Deterministic fault schedules for the wormhole simulator.

    A {!plan} is a finite list of timed events the engine injects while it
    runs: permanent link failures, transient channel stalls, and source-side
    message drops.  Plans are plain data -- replaying the same plan against
    the same schedule and config reproduces the same run bit for bit, and
    {!random} derives plans from a {!Rng.t} so whole fault campaigns are
    replayable from a single integer seed.

    Semantics (enforced by the engines):

    - a {e failed} channel accepts no new acquisition and transmits no flits
      from its failure cycle onward; flits already buffered on it are stuck
      until their message aborts (recovery) or the run ends;
    - a {e stalled} channel behaves like a failed one for the duration of the
      stall window, then resumes;
    - a {e dropped} message is killed at the source at the drop cycle if its
      header has not yet entered the network: with recovery enabled the drop
      consumes one retry, otherwise the message is abandoned. *)

type event =
  | Link_failure of { channel : Topology.channel; at : int }
      (** the channel is down for every cycle [>= at] *)
  | Transient_stall of { channel : Topology.channel; at : int; duration : int }
      (** the channel is down for cycles [at .. at + duration - 1] *)
  | Message_drop of { label : string; at : int }
      (** kill the labeled message at its source at cycle [at] *)

type plan

val empty : plan
val make : event list -> plan
(** @raise Invalid_argument on negative times or non-positive durations. *)

val events : plan -> event list
val is_empty : plan -> bool

val failed_channels : plan -> Topology.channel list
(** Channels with a permanent failure anywhere in the plan (deduplicated),
    i.e. the channel set a degraded routing must avoid. *)

(** {1 Compiled queries}

    The engines compile a plan once per run so the per-cycle checks are a
    couple of array reads. *)

type compiled

val compile : nchan:int -> plan -> compiled
(** @raise Invalid_argument when an event names a channel [>= nchan]. *)

val down : compiled -> Topology.channel -> int -> bool
(** The channel can neither be acquired nor move flits at this cycle
    (permanently failed by now, or inside a stall window). *)

val perm_failed : compiled -> Topology.channel -> int -> bool
(** Permanently failed at or before this cycle. *)

val dropped_now : compiled -> string -> int -> bool
(** A drop event for this label fires at exactly this cycle. *)

val change_after : compiled -> int -> bool
(** Some event after cycle [t] can still change the network: a stall window
    that ends later, or a failure or drop that has not fired yet.  The
    engines use this to avoid declaring a permanent block during a window
    that is about to close. *)

(** {1 Generation and parsing} *)

val random :
  ?link_failures:int ->
  ?stalls:int ->
  ?max_stall:int ->
  ?drops:string list ->
  horizon:int ->
  Rng.t ->
  Topology.t ->
  plan
(** A seeded random plan: [link_failures] (default 1) distinct channels fail
    at uniform cycles in \[0, horizon); [stalls] (default 2) windows of
    uniform duration in \[1, max_stall\] (default 8) hit uniform channels;
    each label in [drops] (default none) is dropped at a uniform cycle.
    Deterministic in the generator state. *)

val parse : Topology.t -> string -> (plan, string) result
(** Parse a comma-separated event list, e.g.
    ["fail:a>b@10, stall:b>c@5+8, drop:m1@0"]:

    - [fail:SRC>DST\[#VC\]@T] -- permanent failure of the named channel;
    - [stall:SRC>DST\[#VC\]@T+D] -- stall for [D] cycles starting at [T];
    - [drop:LABEL@T] -- source-side drop of message [LABEL] at [T].

    Node names are the topology's; [#VC] selects among parallel channels
    (default 0).  Whitespace around entries is ignored. *)

val pp : Topology.t -> Format.formatter -> plan -> unit
