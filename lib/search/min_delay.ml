type result = {
  md_no_delay_safe : bool;
  md_min_delay : int option;
  md_witness : Explorer.witness option;
  md_runs : int;
}

(* The ring channel on which a message enters the cycle: holding the header
   there realizes the paper's "delayed in the network even though the output
   channel is always free". *)
let entry_channel net (intent : Paper_nets.intent) =
  match Paper_nets.in_cycle_channels net intent with
  | c :: _ -> c
  | [] -> invalid_arg "Min_delay: message never enters the cycle"

let space_for net h =
  let templates =
    List.map
      (fun intent ->
        let holds = if h = 0 then [ [] ] else [ []; [ (entry_channel net intent, h) ] ] in
        Explorer.intent_template ~extra:[ -2; -1 ] ~holds ~offsets:[ 0 ] net intent)
      net.Paper_nets.intents
  in
  {
    (Explorer.default_space templates) with
    gaps = [ 0 ];
    buffers = [ 1 ];
  }

let search ?max_h ?domains net =
  let rt = Cd_algorithm.of_net net in
  let max_h =
    match max_h with
    | Some m -> m
    | None -> max 2 (Array.length net.Paper_nets.ring_channels / 4)
  in
  let runs = ref 0 in
  let base =
    match Explorer.explore ?domains rt (space_for net 0) with
    | Explorer.No_deadlock { runs = r } ->
      runs := !runs + r;
      true
    | Explorer.Deadlock_found { runs = r; _ } ->
      runs := !runs + r;
      false
  in
  let rec sweep h =
    if h > max_h then (None, None)
    else
      match Explorer.explore ?domains rt (space_for net h) with
      | Explorer.Deadlock_found { runs = r; witness } ->
        runs := !runs + r;
        (Some h, Some witness)
      | Explorer.No_deadlock { runs = r } ->
        runs := !runs + r;
        sweep (h + 1)
  in
  let md_min_delay, md_witness = if base then sweep 1 else (Some 0, None) in
  { md_no_delay_safe = base; md_min_delay; md_witness; md_runs = !runs }
