type msg = {
  mc_label : string;
  mc_src : Topology.node;
  mc_dst : Topology.node;
  mc_length : int;
}

type verdict =
  | Safe of { states : int }
  | Deadlock of { states : int; depth : int; cycle : string list }
  | Out_of_budget of { states : int }

(* State: for each message, [head; injected; consumed].  With one-flit
   buffers a worm's flits occupy the contiguous cells
   [top - n + 1 .. top] of its path, where top = min(head, k-1) and
   n = injected - consumed, so this triple determines the whole network
   occupancy. *)

let check ?(max_states = 2_000_000) ?(allow_stalls = false) rt msgs =
  if msgs = [] then invalid_arg "Model_checker.check: empty message set";
  let labels = List.map (fun m -> m.mc_label) msgs in
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    invalid_arg "Model_checker.check: duplicate labels";
  let marr = Array.of_list msgs in
  let nmsg = Array.length marr in
  let paths =
    Array.map (fun m -> Array.of_list (Routing.path_exn rt m.mc_src m.mc_dst)) marr
  in
  let init = Array.make (3 * nmsg) 0 in
  Array.iteri (fun i _ -> init.(3 * i) <- -1) marr;
  let head s i = s.((3 * i) + 0)
  and injected s i = s.((3 * i) + 1)
  and consumed s i = s.((3 * i) + 2) in
  let k i = Array.length paths.(i) in
  let len i = marr.(i).mc_length in
  let delivered s i = consumed s i = len i in
  let inflight s i = injected s i - consumed s i in
  (* channel -> owning message, from the compressed occupancy *)
  let owners s =
    let tbl = Hashtbl.create 16 in
    for i = 0 to nmsg - 1 do
      let h = head s i and n = inflight s i in
      if h >= 0 && n > 0 then begin
        let top = min h (k i - 1) in
        for cell = top - n + 1 to top do
          Hashtbl.replace tbl paths.(i).(cell) i
        done
      end
    done;
    tbl
  in
  (* the channel message i requests in state s, if any *)
  let request s i =
    if delivered s i then None
    else begin
      let h = head s i in
      if h = -1 then if injected s i = 0 then Some paths.(i).(0) else None
      else if h < k i - 1 then Some paths.(i).(h + 1)
      else None
    end
  in
  (* circular wait among in-network blocked messages = deadlock *)
  let wait_cycle s own =
    let next i =
      if head s i < 0 then None
      else
        match request s i with
        | Some c -> (
          match Hashtbl.find_opt own c with Some j when j <> i -> Some j | _ -> None)
        | None -> None
    in
    let rec chase seen i =
      match next i with
      | None -> None
      | Some j ->
        if List.mem j seen then
          Some
            (let rec drop = function
               | [] -> []
               | x :: rest -> if x = j then x :: rest else drop rest
             in
             drop (List.rev (i :: seen)))
        else chase (i :: seen) j
    in
    let rec scan i =
      if i >= nmsg then None
      else if head s i >= 0 && not (delivered s i) then
        match chase [] i with Some c -> Some c | None -> scan (i + 1)
      else scan (i + 1)
    in
    scan 0
  in
  (* deterministic step given an award assignment (message -> awarded?) *)
  let step s awards =
    let s' = Array.copy s in
    for i = 0 to nmsg - 1 do
      if not (delivered s i) then begin
        let was_pending = head s i = -1 in
        (* consumption at the destination *)
        if head s' i >= k i - 1 && inflight s' i >= 1 then begin
          s'.((3 * i) + 2) <- consumed s' i + 1;
          if head s' i = k i - 1 then s'.((3 * i) + 0) <- k i
        end;
        (* header hop / header injection *)
        (match awards.(i) with
        | false -> ()
        | true ->
          if was_pending then begin
            s'.((3 * i) + 0) <- 0;
            s'.((3 * i) + 1) <- 1
          end
          else s'.((3 * i) + 0) <- head s' i + 1);
        (* data-flit injection at the source *)
        if (not was_pending) && head s' i >= 0 && injected s' i < len i then begin
          let top = min (head s' i) (k i - 1) in
          if inflight s' i < top + 1 then s'.((3 * i) + 1) <- injected s' i + 1
        end
      end
    done;
    s'
  in
  (* Enumerate award assignments.  The paper's base model forwards a header
     as soon as an output channel is available, so a free channel with an
     in-network requester MUST be granted (the adversary only picks which
     requester wins).  Channels wanted only by still-pending messages may
     also be granted to nobody: a node chooses when its message starts
     (assumption 1).  With [allow_stalls] every channel may be withheld --
     the Section-6 unbounded-delay adversary. *)
  let successors s =
    let own = owners s in
    let by_channel = Hashtbl.create 8 in
    for i = 0 to nmsg - 1 do
      match request s i with
      | Some c when not (Hashtbl.mem own c) ->
        Hashtbl.replace by_channel c (i :: (try Hashtbl.find by_channel c with Not_found -> []))
      | Some _ | None -> ()
    done;
    let contended =
      Hashtbl.fold
        (fun _ rs acc ->
          let stallable =
            allow_stalls || List.for_all (fun i -> head s i = -1) rs
          in
          (rs, stallable) :: acc)
        by_channel []
    in
    let results = ref [] in
    let awards = Array.make nmsg false in
    let rec assign = function
      | [] -> results := step s awards :: !results
      | (requesters, stallable) :: rest ->
        if stallable then assign rest;
        List.iter
          (fun i ->
            awards.(i) <- true;
            assign rest;
            awards.(i) <- false)
          requesters
    in
    assign contended;
    !results
  in
  (* BFS *)
  let visited = Hashtbl.create 4096 in
  let queue = Queue.create () in
  Hashtbl.replace visited init ();
  Queue.add (init, 0) queue;
  let states = ref 1 in
  let outcome = ref None in
  while !outcome = None && not (Queue.is_empty queue) do
    let s, depth = Queue.pop queue in
    let own = owners s in
    (match wait_cycle s own with
    | Some cyc ->
      outcome :=
        Some
          (Deadlock
             { states = !states; depth; cycle = List.map (fun i -> marr.(i).mc_label) cyc })
    | None ->
      List.iter
          (fun s' ->
            if s' <> s && not (Hashtbl.mem visited s') then begin
              if !states >= max_states then outcome := Some (Out_of_budget { states = !states })
              else begin
                Hashtbl.replace visited s' ();
                incr states;
                Queue.add (s', depth + 1) queue
              end
            end)
          (successors s))
  done;
  match !outcome with
  | Some v -> v
  | None -> Safe { states = !states }

let check_net ?max_states ?allow_stalls ?(extra = [ -2; -1; 0; 1 ]) ?domains
    (net : Paper_nets.net) =
  let rt = Cd_algorithm.of_net net in
  let candidates =
    List.map
      (fun (i : Paper_nets.intent) ->
        let span = max 1 (List.length (Paper_nets.in_cycle_channels net i)) in
        let lengths = List.sort_uniq compare (List.map (fun e -> max 1 (span + e)) extra) in
        List.map (fun l -> { mc_label = i.i_label; mc_src = i.i_src; mc_dst = i.i_dst; mc_length = l })
          lengths)
      net.intents
  in
  let combos = Array.of_list (Combinat.cartesian candidates) in
  (* One length combo per pool task, stopping at the first non-Safe verdict.
     The canonical reduce accumulates state counts in combo order up to and
     including the winner, byte-identical to the sequential sweep for any
     domain count. *)
  let results =
    Wr_pool.map_until ?domains
      ~hit:(function Safe _ -> false | Deadlock _ | Out_of_budget _ -> true)
      (fun ~stop:_ _ msgs -> check ?max_states ?allow_stalls rt msgs)
      combos
  in
  let total_states = ref 0 in
  let verdict = ref None in
  (try
     Array.iter
       (function
         | None -> raise Exit
         | Some (Safe { states }) -> total_states := !total_states + states
         | Some v ->
           verdict := Some v;
           raise Exit)
       results
   with Exit -> ());
  match !verdict with
  | Some (Deadlock d) -> Deadlock { d with states = !total_states + d.states }
  | Some (Out_of_budget b) -> Out_of_budget { states = !total_states + b.states }
  | Some (Safe _) | None -> Safe { states = !total_states }

let pp ppf = function
  | Safe { states } -> Format.fprintf ppf "safe (%d states explored)" states
  | Deadlock { states; depth; cycle } ->
    Format.fprintf ppf "DEADLOCK at depth %d after %d states: %s" depth states
      (String.concat " -> " cycle)
  | Out_of_budget { states } -> Format.fprintf ppf "out of budget (%d states)" states
