type msg_template = {
  t_label : string;
  t_src : Topology.node;
  t_dst : Topology.node;
  t_lengths : int list;
  t_holds : (Topology.channel * int) list list;
  t_offsets : int list;
}

type priority_mode = Fifo_only | Follow_order | All_permutations

type space = {
  messages : msg_template list;
  gaps : int list;
  buffers : int list;
  try_all_orders : bool;
  priorities : priority_mode;
  max_cycles : int;
}

let default_space messages =
  {
    messages;
    gaps = [ 0; 1 ];
    buffers = [ 1; 2 ];
    try_all_orders = true;
    priorities = All_permutations;
    max_cycles = 10_000;
  }

let wide_space messages = { (default_space messages) with gaps = [ 0; 1; 2; 3 ] }

let minimal_length_template rt ?(extra = [ 0; 1 ]) ?(holds = [ [] ]) ?(offsets = [ 0 ]) label
    src dst =
  let hops = List.length (Routing.path_exn rt src dst) in
  {
    t_label = label;
    t_src = src;
    t_dst = dst;
    t_lengths = List.map (fun e -> max 1 (hops + e)) extra;
    t_holds = holds;
    t_offsets = offsets;
  }

let intent_template ?(extra = [ -2; -1; 0; 1 ]) ?(holds = [ [] ]) ?offsets net
    (intent : Paper_nets.intent) =
  let span = List.length (Paper_nets.in_cycle_channels net intent) in
  let base = max 1 span in
  let offsets =
    match offsets with
    | Some l -> l
    | None ->
      (* own-source messages do not contend for the shared channel, so the
         interesting injection times are not captured by the serial order;
         sweep a window of extra delays for them *)
      if intent.i_src = net.Paper_nets.source then [ 0 ] else [ 0; 2; 4; 6; 8; 10 ]
  in
  {
    t_label = intent.i_label;
    t_src = intent.i_src;
    t_dst = intent.i_dst;
    t_lengths = List.map (fun e -> max 1 (base + e)) extra;
    t_holds = holds;
    t_offsets = offsets;
  }

type witness = {
  w_schedule : Schedule.t;
  w_config : Engine.config;
  w_info : Engine.deadlock_info;
}

type verdict =
  | No_deadlock of { runs : int }
  | Deadlock_found of { runs : int; witness : witness }

let is_deadlock_found = function Deadlock_found _ -> true | No_deadlock _ -> false

let fact n =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let pow b e =
  let rec go acc k = if k = 0 then acc else go (acc * b) (k - 1) in
  go 1 e

let space_size sp =
  let n = List.length sp.messages in
  let orders = if sp.try_all_orders then fact n else 1 in
  let prios = match sp.priorities with All_permutations -> fact n | Fifo_only | Follow_order -> 1 in
  let gaps = pow (List.length sp.gaps) (max 0 (n - 1)) in
  let lengths = List.fold_left (fun acc t -> acc * List.length t.t_lengths) 1 sp.messages in
  let holds = List.fold_left (fun acc t -> acc * List.length t.t_holds) 1 sp.messages in
  let offsets = List.fold_left (fun acc t -> acc * List.length t.t_offsets) 1 sp.messages in
  orders * prios * gaps * lengths * holds * offsets * List.length sp.buffers

exception Engine_bug of Diagnostic.t

let engine_bug code ~rt ~sched ~cycle msg =
  let context =
    [
      ("algorithm", Routing.name rt);
      ("cycle", string_of_int cycle);
      ( "schedule",
        String.concat ", " (List.map (fun s -> s.Schedule.ms_label) sched) );
    ]
  in
  raise (Engine_bug (Diagnostic.error ~context code (Diagnostic.Algorithm (Routing.name rt)) msg))

(* One task of the parallel sweep: a single (order, priority) cell of the
   outer product, with the whole gap/length/offset/hold/buffer enumeration
   run inside it.  [t_started] counts every [Engine.run] call the task
   issued (including determinism-confirm replays), as opposed to [t_runs]
   which is the sweep's reported tally; the difference between the global
   start count and the canonical-prefix sum of [t_started] is exactly the
   speculative work a parallel sweep discarded. *)
type task_result = { t_runs : int; t_started : int; t_witness : witness option }

let explore ?(stop_at_first = true) ?domains rt sp =
  let n = List.length sp.messages in
  if n = 0 then invalid_arg "Explorer.explore: empty message set";
  List.iter
    (fun t ->
      if t.t_lengths = [] || t.t_holds = [] || t.t_offsets = [] then
        invalid_arg "Explorer.explore: template with empty candidate list")
    sp.messages;
  let templates = Array.of_list sp.messages in
  let gap_arr = Array.of_list sp.gaps in
  (* All permutations of 0..n-1 in [Combinat.iter_permutations] order, so a
     task index maps to exactly the (order, priority) pair the sequential
     nesting would visit at that position. *)
  let perms =
    let acc = ref [] in
    Combinat.iter_permutations (fun p -> acc := Array.copy p :: !acc) (Array.init n Fun.id);
    Array.of_list (List.rev !acc)
  in
  let orders = if sp.try_all_orders then perms else [| Array.init n Fun.id |] in
  let prios_per_order =
    match sp.priorities with
    | All_permutations -> Array.length perms
    | Fifo_only | Follow_order -> 1
  in
  let ntasks = Array.length orders * prios_per_order in
  (* Every Engine.run call across all tasks and domains, whether or not its
     task's result survives the canonical reduce. *)
  let started = Atomic.make 0 in
  let emit e = match Obs.current () with Some s -> s.Obs.emit e | None -> () in
  let exception Task_done in
  let run_task ~stop ti =
    let order = orders.(ti / prios_per_order) in
    let priority =
      match sp.priorities with
      | Fifo_only -> None
      | Follow_order -> Some order
      | All_permutations -> Some perms.(ti mod prios_per_order)
    in
    let runs = ref 0 in
    let my_started = ref 0 in
    let witness = ref None in
    let note_start () =
      incr my_started;
      ignore (Atomic.fetch_and_add started 1)
    in
    let run ~gap_choice ~len_choice ~hold_choice ~off_choice ~buffer =
      (* a lower-indexed task has already found a witness: this task's
         partial tally is discarded by the reduce, so just bail out *)
      if stop () then raise Task_done;
      let inject_time = Array.make n 0 in
      let t = ref 0 in
      Array.iteri
        (fun j mi ->
          if j > 0 then t := !t + gap_choice.(j - 1);
          inject_time.(mi) <- !t + List.nth templates.(mi).t_offsets off_choice.(mi))
        order;
      let sched =
        List.init n (fun mi ->
            let tpl = templates.(mi) in
            {
              Schedule.ms_label = tpl.t_label;
              ms_src = tpl.t_src;
              ms_dst = tpl.t_dst;
              ms_length = List.nth tpl.t_lengths len_choice.(mi);
              ms_inject_at = inject_time.(mi);
              ms_holds = List.nth tpl.t_holds hold_choice.(mi);
            })
      in
      let arbitration =
        match priority with
        | None -> Engine.Fifo
        | Some p ->
          Engine.Priority (Array.to_list (Array.map (fun mi -> templates.(mi).t_label) p))
      in
      let config =
        { Engine.buffer_capacity = buffer; arbitration; discipline = Engine.Wormhole;
          max_cycles = sp.max_cycles; faults = Fault.empty; recovery = None }
      in
      incr runs;
      note_start ();
      match Engine.run ~config rt sched with
      | Engine.Deadlock info ->
        (* replay to confirm determinism before reporting *)
        let confirmed =
          note_start ();
          match Engine.run ~config rt sched with
          | Engine.Deadlock info' -> info'.Engine.d_cycle = info.Engine.d_cycle
          | _ -> false
        in
        if not confirmed then
          engine_bug "E090" ~rt ~sched ~cycle:info.Engine.d_cycle
            "deadlock witness failed to replay: the engine is not deterministic";
        if info.Engine.d_wait_cycle = [] then
          engine_bug "E091" ~rt ~sched ~cycle:info.Engine.d_cycle
            "reported deadlock has no wait-for cycle";
        let w = { w_schedule = sched; w_config = config; w_info = info } in
        witness := Some w;
        if stop_at_first then raise Task_done
      | Engine.All_delivered _ | Engine.Cutoff _ | Engine.Recovered _ -> ()
    in
    let gap_choice = Array.make (max 0 (n - 1)) 0 in
    let len_choice = Array.make n 0 in
    let hold_choice = Array.make n 0 in
    let off_choice = Array.make n 0 in
    let rec gaps j =
      if j = Array.length gap_choice then lens 0
      else
        for g = 0 to Array.length gap_arr - 1 do
          gap_choice.(j) <- gap_arr.(g);
          gaps (j + 1)
        done
    and lens mi =
      if mi = n then offs 0
      else
        for l = 0 to List.length templates.(mi).t_lengths - 1 do
          len_choice.(mi) <- l;
          lens (mi + 1)
        done
    and offs mi =
      if mi = n then holds 0
      else
        for o = 0 to List.length templates.(mi).t_offsets - 1 do
          off_choice.(mi) <- o;
          offs (mi + 1)
        done
    and holds mi =
      if mi = n then
        List.iter
          (fun b -> run ~gap_choice ~len_choice ~hold_choice ~off_choice ~buffer:b)
          sp.buffers
      else
        for h = 0 to List.length templates.(mi).t_holds - 1 do
          hold_choice.(mi) <- h;
          holds (mi + 1)
        done
    in
    (try gaps 0 with Task_done -> ());
    { t_runs = !runs; t_started = !my_started; t_witness = !witness }
  in
  emit (Obs_event.Search_start { algorithm = Routing.name rt; tasks = ntasks });
  let results =
    Wr_pool.map_until ?domains
      ~hit:(fun r -> stop_at_first && r.t_witness <> None)
      (fun ~stop ti () -> run_task ~stop ti)
      (Array.make ntasks ())
  in
  (* Canonical reduce in task-index order.  With [stop_at_first] the pool
     guarantees every task up to (and including) the least-indexed hit ran
     to its natural end and everything beyond is [None], so the totals and
     the selected witness are byte-identical to the sequential sweep. *)
  let total = ref 0 in
  let canonical_started = ref 0 in
  let last_witness = ref None in
  (try
     Array.iter
       (function
         | None -> raise Exit
         | Some r ->
           total := !total + r.t_runs;
           canonical_started := !canonical_started + r.t_started;
           (match r.t_witness with Some w -> last_witness := Some w | None -> ()))
       results
   with Exit -> ());
  (* Everything started beyond the canonical prefix was speculative work
     whose results the reduce above discarded; report it so run totals
     elsewhere (Engine.run_count, sanitizer summaries) stay exact. *)
  let cancelled = Atomic.get started - !canonical_started in
  Engine.note_runs_cancelled cancelled;
  (match Sanitizer.current () with
  | Some s -> Sanitizer.note_runs_cancelled s cancelled
  | None -> ());
  emit
    (Obs_event.Search_end
       {
         algorithm = Routing.name rt;
         runs = !total;
         cancelled;
         witness = !last_witness <> None;
       });
  match !last_witness with
  | Some w -> Deadlock_found { runs = !total; witness = w }
  | None -> No_deadlock { runs = !total }

let pp_verdict topo ppf = function
  | No_deadlock { runs } -> Format.fprintf ppf "no deadlock in %d runs" runs
  | Deadlock_found { runs; witness } ->
    Format.fprintf ppf "deadlock found after %d runs:@\n" runs;
    Format.fprintf ppf "%a" (Engine.pp_outcome topo) (Engine.Deadlock witness.w_info);
    Format.fprintf ppf "schedule:@\n%a" (Schedule.pp topo) witness.w_schedule
