(** Section-6 experiment: how much adversarial in-network delay does it take
    to turn the family's false resource cycle into a real deadlock?

    The paper's generalized construction ([Paper_nets.family p]) tolerates
    any delay below a threshold that grows with [p]: a deadlock can only
    form if some message is stalled at a router for at least ~[p] cycles
    even though its output channel is free.  This module sweeps the hold
    duration [h] and, for each, searches injection schedules where any
    subset of the messages is held [h] cycles at its ring entry channel. *)

type result = {
  md_no_delay_safe : bool;  (** no deadlock with h = 0 (Theorem-1 style check) *)
  md_min_delay : int option;  (** smallest h in 1..max_h that admits a deadlock *)
  md_witness : Explorer.witness option;
  md_runs : int;  (** total simulator runs across the sweep *)
}

val search : ?max_h:int -> ?domains:int -> Paper_nets.net -> result
(** [max_h] defaults to twice the family parameter implied by the ring
    (ring length / 4), which comfortably brackets the expected threshold.
    The space per [h] is trimmed to the worst case the paper's analysis
    identifies: minimal lengths, simultaneous starts (gap 0), one-flit
    buffers, all injection orders and arbitration priorities. *)
