(** Exhaustive state-space exploration of the wormhole network.

    Where {!Explorer} enumerates concrete schedules (bounded injection gaps,
    explicit arbitration priority lists), this module explores the network's
    state graph with {e full} nondeterminism: at every cycle the adversary
    chooses, independently and without bounds,

    - whether each still-pending message starts requesting (so all injection
      timings are covered, not just bounded gaps), and
    - which requester each free channel is granted to.

    In the paper's base model a header is forwarded as soon as an output
    channel is available, so a free channel with an in-network requester is
    always granted -- the adversary only picks the winner.  Passing
    [allow_stalls:true] additionally lets any grant be withheld for any
    number of cycles: the unbounded-delay adversary of Section 6, under
    which the constructions ARE expected to deadlock.

    A state is deadlocked when the wait-for graph of in-network blocked
    messages contains a cycle: with oblivious single-path routing and no
    preemption, a circular wait can never clear.

    The exploration is exact for one-flit buffers (the paper's worst case,
    Section 4), where a worm's occupancy is determined by its head position
    and flit counts; message lengths are fixed per run, so callers sweep the
    length combinations separately (as {!Explorer.intent_template} does). *)

type msg = {
  mc_label : string;
  mc_src : Topology.node;
  mc_dst : Topology.node;
  mc_length : int;
}

type verdict =
  | Safe of { states : int }
      (** full exploration: no reachable state has a circular wait *)
  | Deadlock of { states : int; depth : int; cycle : string list }
      (** a reachable deadlocked state at BFS depth [depth] *)
  | Out_of_budget of { states : int }

val check : ?max_states:int -> ?allow_stalls:bool -> Routing.t -> msg list -> verdict
(** [max_states] defaults to 2_000_000; [allow_stalls] to [false].
    @raise Invalid_argument for empty or malformed message sets (duplicate
    labels, unroutable pairs). *)

val check_net :
  ?max_states:int -> ?allow_stalls:bool -> ?extra:int list -> ?domains:int ->
  Paper_nets.net -> verdict
(** Sweep a paper network's designated messages over the usual length window
    ([extra] defaults to [[-2; -1; 0; 1]] around each in-cycle span, as in
    {!Explorer.intent_template}), model-checking each combination on a
    {!Wr_pool}; the first deadlock (least combo index, not wall clock) wins,
    otherwise the sum of explored states is reported.  The verdict is
    byte-identical for any domain count. *)

val pp : Format.formatter -> verdict -> unit
