(** Exhaustive reachability search over adversarial injection schedules.

    This is the computational counterpart of the paper's hand proofs: a
    deadlock configuration is {e reachable} iff some combination of
    - injection order of the messages,
    - inter-injection gaps,
    - message lengths,
    - flit-buffer capacity,
    - arbitration tie-breaks (the paper's adversary: "the message that can
      lead to deadlock acquires the channel"), and
    - adversarial in-network holds (Section 6)
    drives the simulator into a permanently blocked state.  The search
    enumerates a bounded but worst-case-containing portion of that space --
    the paper's own arguments (Section 4) establish that one-flit buffers
    and messages just long enough to hold their in-cycle channels are the
    hardest case; larger gaps and lengths only let earlier messages drain
    further before the blockers arrive.

    Every witness is replayed before being reported. *)

type msg_template = {
  t_label : string;
  t_src : Topology.node;
  t_dst : Topology.node;
  t_lengths : int list;  (** candidate flit lengths (non-empty) *)
  t_holds : (Topology.channel * int) list list;
      (** candidate adversarial hold assignments; [[]] = only "no holds" *)
  t_offsets : int list;
      (** extra injection delays added on top of the order-derived time;
          [[0]] for messages serialized by a shared channel, a window for
          own-source messages whose interesting start times are unrelated to
          the serial order *)
}

type priority_mode =
  | Fifo_only  (** ties broken by schedule order only *)
  | Follow_order  (** ties favour the current injection order *)
  | All_permutations
      (** sweep every priority permutation independently of injection order
          -- the sound encoding of the paper's adversary *)

type space = {
  messages : msg_template list;
  gaps : int list;  (** candidate inter-injection gaps (cycles), e.g. [0;1] *)
  buffers : int list;  (** candidate flit-buffer capacities, e.g. [1;2] *)
  try_all_orders : bool;  (** permute the injection order *)
  priorities : priority_mode;
  max_cycles : int;  (** per-run safety cutoff *)
}

val default_space : msg_template list -> space
(** gaps [0;1], buffers [1;2], all orders, all priority permutations,
    10_000-cycle cutoff. *)

val wide_space : msg_template list -> space
(** A larger confirmation sweep: gaps [0;1;2;3], buffers [1;2]. *)

val minimal_length_template :
  Routing.t -> ?extra:int list -> ?holds:(Topology.channel * int) list list ->
  ?offsets:int list -> string -> Topology.node -> Topology.node -> msg_template
(** Template whose base length is the message's hop count; [extra]
    (default [[0; 1]]) lists additions to sweep. *)

val intent_template :
  ?extra:int list -> ?holds:(Topology.channel * int) list list -> ?offsets:int list ->
  Paper_nets.net -> Paper_nets.intent -> msg_template
(** Template for a paper-network message whose base length is its {e
    in-cycle span} -- the paper's "just long enough to hold the channels in
    the cycle", the worst case for deadlock formation.  [extra] defaults to
    [[-2; -1; 0; 1]]: spans below the nominal value matter because a message
    blocks its successor at the successor's ring entry, so the minimum
    blocking length is the inter-entry gap, up to two below the span. *)

type witness = {
  w_schedule : Schedule.t;
  w_config : Engine.config;
  w_info : Engine.deadlock_info;
}

type verdict =
  | No_deadlock of { runs : int }
  | Deadlock_found of { runs : int; witness : witness }

exception Engine_bug of Diagnostic.t
(** Raised -- deliberately fatal -- when the engine violates its own
    contract during a search: [E090] a deadlock witness failed to replay
    (the engine is not deterministic), [E091] a reported deadlock carries no
    wait-for cycle.  The diagnostic's context records the algorithm, the
    cycle, and the schedule's message labels.  These are engine bugs, never
    properties of the routing under test, so they are not folded into a
    verdict. *)

val explore : ?stop_at_first:bool -> ?domains:int -> Routing.t -> space -> verdict
(** Enumerate the space in a deterministic order.  With [stop_at_first]
    (default true) stop at the first confirmed witness; otherwise the last
    witness found is returned and [runs] counts the full space.

    The outer order x priority product is partitioned into tasks run on a
    {!Wr_pool} ([domains] defaults to [Wr_pool.default_domains ()]).  The
    reduce is canonical: the verdict -- witness identity and the [runs]
    count included -- is byte-identical for every domain count.  A witness
    is selected by least task index, never by wall clock, and is replayed
    before being reported.

    Speculative runs beyond the canonical prefix (work a parallel sweep
    started but whose results the reduce discarded) are reported to
    {!Engine.note_runs_cancelled} and, when a sanitizer is installed, to
    {!Sanitizer.note_runs_cancelled}, so global run totals stay exact at
    any domain count.  When an {!Obs} sink is installed, each call emits
    [Search_start]/[Search_end] events carrying the task count, canonical
    run tally, cancelled-run count, and whether a witness was found.
    @raise Engine_bug on [E090]/[E091] internal-consistency failures. *)

val space_size : space -> int
(** Number of simulator runs [explore] would perform without early exit. *)

val is_deadlock_found : verdict -> bool

val pp_verdict : Topology.t -> Format.formatter -> verdict -> unit
