(* Static-analysis CLI over the algorithm registry.

   Examples:
     wormlint                          lint every registered algorithm
     wormlint xy-mesh-4x4 cd-figure1   lint a selection
     wormlint --json                   machine-readable output for CI
     wormlint --faults 'fail:a>b@3' cd-figure1
     wormlint --corpus                 run the seeded-defect corpus
     wormlint --list                   show the registry

   Exit status: 0 clean, 1 when any E-severity diagnostic (or corpus
   failure) is found. *)

open Cmdliner

let list_registry () =
  List.iter
    (fun e ->
      let kind =
        match e.Registry.r_algo with
        | Registry.Oblivious _ -> "oblivious"
        | Registry.Adaptive (_, Some _) -> "adaptive+escape"
        | Registry.Adaptive (_, None) -> "adaptive"
      in
      let flags =
        (if e.Registry.r_declared_minimal then [ "minimal" ] else [])
        @ (if e.Registry.r_expect_deadlock_free then [ "deadlock-free" ] else [ "deadlocks" ])
      in
      Printf.printf "%-26s %-16s %-22s %s\n" e.Registry.r_name kind
        (String.concat "," flags) e.Registry.r_note)
    (Registry.entries ());
  0

let run_corpus json =
  let results = Corpus.check_all () in
  let failed = List.filter (fun (_, r) -> r <> Ok ()) results in
  if json then begin
    let item (name, r) =
      let ok, detail = match r with Ok () -> (true, "") | Error e -> (false, e) in
      Printf.sprintf "{\"entry\":%s,\"ok\":%b,\"detail\":%s}"
        ("\"" ^ Diagnostic.json_escape name ^ "\"")
        ok
        ("\"" ^ Diagnostic.json_escape detail ^ "\"")
    in
    print_endline ("[" ^ String.concat "," (List.map item results) ^ "]")
  end
  else
    List.iter
      (fun (name, r) ->
        match r with
        | Ok () -> Printf.printf "corpus %-28s ok\n" name
        | Error e -> Printf.printf "corpus %-28s FAIL %s\n" name e)
      results;
  if failed = [] then 0 else 1

(* Synthesis mode: run the existence checker + certified synthesis over
   every distinct registry network.  Exit 1 when any E-severity diagnostic
   fires -- the registry deliberately includes the under-provisioned
   unidirectional ring, so a full --synth run exits 1 by design (CI pins
   the exact output instead of the exit code). *)
let run_synth json =
  let results = Synth_cert.run_all () in
  let num_errors =
    List.fold_left
      (fun n t -> n + List.length (Diagnostic.errors t.Synth_cert.sc_diagnostics))
      0 results
  in
  if json then
    print_endline ("[" ^ String.concat "," (List.map Synth_cert.json results) ^ "]")
  else
    List.iter
      (fun t ->
        let verdict =
          match t.Synth_cert.sc_result with
          | Ok (_, plan) -> "exists via " ^ plan.Synth.p_strategy
          | Error _ -> "impossible"
        in
        Format.printf "%s: %s@." t.Synth_cert.sc_network verdict;
        List.iter
          (fun d ->
            Format.printf "  %a@." (Diagnostic.pp ~topo:t.Synth_cert.sc_topology ()) d)
          t.Synth_cert.sc_diagnostics)
      results;
  if num_errors = 0 then 0 else 1

(* Prometheus text file with the full (algorithm x severity) count matrix;
   every cell is pre-registered so CI thresholds can distinguish "linted
   clean" (0) from "not linted" (series absent). *)
let write_metrics path results =
  let reg = Obs.Metrics.create () in
  let severities = [ Diagnostic.Error; Diagnostic.Warning; Diagnostic.Info ] in
  let total s =
    Obs.Metrics.counter reg ~help:"Lint diagnostics by severity"
      ~labels:[ ("severity", Diagnostic.severity_string s) ]
      "wormlint_diagnostics_total"
  in
  let per_algo name s =
    Obs.Metrics.counter reg ~help:"Lint diagnostics by algorithm and severity"
      ~labels:[ ("algorithm", name); ("severity", Diagnostic.severity_string s) ]
      "wormlint_algorithm_diagnostics_total"
  in
  let algos =
    Obs.Metrics.counter reg ~help:"Algorithms linted" "wormlint_algorithms_total"
  in
  List.iter (fun s -> ignore (total s)) severities;
  List.iter
    (fun (e, _, ds) ->
      Obs.Metrics.inc algos;
      List.iter
        (fun s ->
          let n = Diagnostic.count s ds in
          Obs.Metrics.add (total s) n;
          Obs.Metrics.add (per_algo e.Registry.r_name s) n)
        severities)
    results;
  let oc = open_out path in
  output_string oc (Obs.Metrics.to_prometheus reg);
  close_out oc

let lint_entries json fault_spec reroute_name all_flag metrics selection =
  let all = Registry.entries () in
  (if all_flag && selection <> [] then begin
     Printf.eprintf "--all and an explicit selection are mutually exclusive\n";
     exit 2
   end);
  (* resolve the reroute inside the same registry instantiation as the
     entries being linted: Registry.entries builds fresh topologies per
     call, and the E044 topology check is physical identity (exactly what
     the engine checks on its config) *)
  let reroute_rt =
    match reroute_name with
    | None -> None
    | Some n -> (
      match List.find_opt (fun e -> e.Registry.r_name = n) all with
      | Some { Registry.r_algo = Registry.Oblivious rt; _ } -> Some rt
      | Some _ ->
        Printf.eprintf "--reroute must name an oblivious algorithm (adaptive reroutes are \
                        pinned static routes)\n";
        exit 2
      | None ->
        Printf.eprintf "unknown reroute algorithm %s (try --list)\n" n;
        exit 2)
  in
  let chosen =
    match selection with
    | [] -> all
    | names ->
      List.map
        (fun n ->
          match List.find_opt (fun e -> e.Registry.r_name = n) all with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown algorithm %s (try --list)\n" n;
            exit 2)
        names
  in
  let lint_one e =
    let topo = Registry.topology e in
    let diags = Registry.lint e in
    let fault_diags =
      match fault_spec with
      | None -> []
      | Some spec -> (
        match Fault.parse topo spec with
        | Ok plan -> Lint.fault_plan topo plan
        | Error msg ->
          [
            Diagnostic.error "E040" (Diagnostic.Algorithm e.Registry.r_name)
              ("fault plan does not parse: " ^ msg);
          ])
    in
    let reroute_diags =
      match reroute_rt with
      | None -> []
      | Some rt' ->
        let adaptive =
          match e.Registry.r_algo with
          | Registry.Adaptive _ -> true
          | Registry.Oblivious _ -> false
        in
        Lint.reroute ~adaptive ~algorithm:e.Registry.r_name topo rt'
    in
    (e, topo, Diagnostic.by_severity (diags @ fault_diags @ reroute_diags))
  in
  (* fan the per-algorithm lints over the pool; Wr_pool.map returns results
     in input order, so diagnostics print in registry-index order for any
     domain count *)
  let results = Wr_pool.map lint_one chosen in
  let num_errors =
    List.fold_left (fun n (_, _, ds) -> n + List.length (Diagnostic.errors ds)) 0 results
  in
  if json then begin
    let item (e, topo, ds) =
      Printf.sprintf "{\"algorithm\":%s,\"diagnostics\":%s}"
        ("\"" ^ Diagnostic.json_escape e.Registry.r_name ^ "\"")
        (Diagnostic.list_to_json ~topo ds)
    in
    print_endline ("[" ^ String.concat "," (List.map item results) ^ "]")
  end
  else
    List.iter
      (fun (e, topo, ds) ->
        Format.printf "%s: %d error(s), %d warning(s), %d info@." e.Registry.r_name
          (Diagnostic.count Diagnostic.Error ds)
          (Diagnostic.count Diagnostic.Warning ds)
          (Diagnostic.count Diagnostic.Info ds);
        List.iter (fun d -> Format.printf "  %a@." (Diagnostic.pp ~topo ()) d) ds)
      results;
  (match metrics with None -> () | Some path -> write_metrics path results);
  if num_errors = 0 then 0 else 1

let main list corpus synth json fault_spec reroute_name all_flag domains metrics selection =
  (match domains with None -> () | Some d -> Wr_pool.set_default_domains d);
  if list then list_registry ()
  else if corpus then run_corpus json
  else if synth then run_synth json
  else lint_entries json fault_spec reroute_name all_flag metrics selection

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List the registered algorithms and exit.")

let all_flag =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Lint the whole registry (the default when no algorithms are named), fanning the \
              per-algorithm lints over the parallel pool; diagnostics keep registry order.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Domains for the lint fan-out (default: WORMHOLE_DOMAINS, else the machine's \
              recommended domain count).  Output is identical for every value.")

let corpus_flag =
  Arg.(
    value & flag
    & info [ "corpus" ]
        ~doc:"Run the seeded-defect corpus: each entry must raise its expected code exactly \
              once.")

let synth_flag =
  Arg.(
    value & flag
    & info [ "synth" ]
        ~doc:"Run the deadlock-free-routing existence checker and certified synthesis over \
              every distinct registry network: E060 with a machine-checkable witness where \
              no deadlock-free routing exists, I061 with the Verify certificate where one \
              was synthesized, W062 where the synthesized routing leaves channels unused.")

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:"Also lint this fault plan (Fault.parse syntax) against each selected \
              algorithm's topology.")

let reroute_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "reroute" ] ~docv:"ALGORITHM"
        ~doc:"Also lint each selected algorithm's interaction with this registry entry used \
              as a recovery reroute: topology mismatches (E044) and the adaptive \
              route-pinning note (W044).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write diagnostic counts per severity (total and per algorithm) to $(docv) in \
              Prometheus text format, for CI thresholding.  Every (algorithm, severity) \
              series is present, zero-valued when clean.  Lint mode only.")

let selection_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ALGORITHM" ~doc:"Registry entries to lint \
                                                                   (default: all).")

let cmd =
  let doc = "static lints for wormhole routing algorithms and fault plans" in
  Cmd.v
    (Cmd.info "wormlint" ~doc)
    Term.(
      const main $ list_flag $ corpus_flag $ synth_flag $ json_flag $ faults_arg
      $ reroute_arg $ all_flag $ domains_arg $ metrics_arg $ selection_arg)

let () = exit (Cmd.eval' cmd)
