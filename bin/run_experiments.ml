(* Regenerate every paper artifact (EXPERIMENTS.md is the captured output).

   Usage: experiments [EXPERIMENT...] [--quick] [--max-p N]

   With no arguments, runs the full suite. *)

open Cmdliner

let known =
  [
    ("exp-f1", `F1);
    ("exp-t2", `T2);
    ("exp-corollaries", `C);
    ("exp-t3", `T3);
    ("exp-t4", `T4);
    ("exp-t5", `T5);
    ("exp-g", `G);
    ("exp-s1", `S1);
    ("exp-s2", `S2);
    ("exp-mfm", `MFM);
    ("exp-a", `A);
    ("exp-sw", `SW);
    ("exp-mc", `MC);
    ("exp-fault", `Fault);
    ("exp-lint", `Lint);
  ]

let run_one ~quick ~max_p ppf = function
  | `F1 -> Experiments.exp_f1 ~quick ppf
  | `T2 -> Experiments.exp_t2 ~quick ppf
  | `C -> Experiments.exp_corollaries ~quick ppf
  | `T3 -> Experiments.exp_t3 ~quick ppf
  | `T4 -> Experiments.exp_t4 ~quick ppf
  | `T5 -> Experiments.exp_t5 ~quick ppf
  | `G -> Experiments.exp_g ~quick ?max_p ppf
  | `S1 -> Experiments.exp_s1 ~quick ppf
  | `S2 -> Experiments.exp_s2 ~quick ppf
  | `MFM -> Experiments.exp_mfm ~quick ppf
  | `A -> Experiments.exp_a ~quick ppf
  | `SW -> Experiments.exp_sw ~quick ppf
  | `MC -> Experiments.exp_mc ~quick ppf
  | `Fault -> Experiments.exp_fault ~quick ppf
  | `Lint -> Experiments.exp_lint ~quick ppf

let main names quick max_p sanitize =
  let ppf = Format.std_formatter in
  let sanitizer =
    if sanitize then begin
      let s = Sanitizer.create () in
      Sanitizer.install s;
      Some s
    end
    else None
  in
  let selected =
    match names with
    | [] -> List.map snd known
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n known with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %s (known: %s)\n" n
              (String.concat ", " (List.map fst known));
            exit 2)
        names
  in
  let rows = List.concat_map (run_one ~quick ~max_p ppf) selected in
  Format.fprintf ppf "@\n=== Summary ===@\n%s@?" (Experiments.summary_table rows);
  let failed = List.filter (fun r -> not r.Experiments.x_ok) rows in
  if failed <> [] then begin
    Format.fprintf ppf "@\n%d claim(s) FAILED@." (List.length failed);
    exit 1
  end;
  (match sanitizer with
  | None -> ()
  | Some s ->
    Format.fprintf ppf "@\nsanitizer: %d runs, %d cycles checked@." (Sanitizer.runs_checked s)
      (Sanitizer.cycles_checked s);
    if not (Sanitizer.ok s) then begin
      Format.fprintf ppf "%d invariant violation(s):@." (Sanitizer.violation_count s);
      List.iter
        (fun d -> Format.fprintf ppf "  %a@." (Diagnostic.pp ()) d)
        (Sanitizer.diagnostics s);
      exit 1
    end);
  Format.fprintf ppf "@\nall %d claims reproduced@." (List.length rows)

let names_arg =
  let doc = "Experiments to run (default: all).  One of exp-f1, exp-t2, exp-corollaries, \
             exp-t3, exp-t4, exp-t5, exp-g, exp-s1, exp-s2, exp-mfm, exp-a, exp-sw, exp-mc, \
             exp-fault, exp-lint." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Trim search spaces for a fast pass (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let max_p_arg =
  let doc = "Largest Section-6 family parameter for exp-g." in
  Arg.(value & opt (some int) None & info [ "max-p" ] ~docv:"N" ~doc)

let sanitize_arg =
  let doc = "Run every simulation under the engine sanitizer (per-cycle invariant \
             checks E101-E105); report violations at the end and exit nonzero on any." in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let cmd =
  let doc = "regenerate the paper's figures and theorem checks" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const main $ names_arg $ quick_arg $ max_p_arg $ sanitize_arg)

let () = exit (Cmd.eval cmd)
