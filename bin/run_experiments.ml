(* Regenerate every paper artifact (EXPERIMENTS.md is the captured output).

   Usage: experiments [EXPERIMENT...] [--quick] [--max-p N] [--domains N]
                      [--json FILE]

   With no arguments, runs the full suite.  The claim output is byte-
   identical for any --domains value; the timing table at the end is the
   only wall-clock-dependent section. *)

open Cmdliner

let known =
  [
    ("exp-f1", `F1);
    ("exp-t2", `T2);
    ("exp-corollaries", `C);
    ("exp-t3", `T3);
    ("exp-t4", `T4);
    ("exp-t5", `T5);
    ("exp-g", `G);
    ("exp-s1", `S1);
    ("exp-s2", `S2);
    ("exp-mfm", `MFM);
    ("exp-a", `A);
    ("exp-sw", `SW);
    ("exp-sw1", `SW1);
    ("exp-mc", `MC);
    ("exp-fault", `Fault);
    ("exp-detect", `Detect);
    ("exp-lint", `Lint);
    ("exp-synth", `Synth);
  ]

let run_one ~quick ~max_p ~detect ppf = function
  | `F1 -> Experiments.exp_f1 ~quick ppf
  | `T2 -> Experiments.exp_t2 ~quick ppf
  | `C -> Experiments.exp_corollaries ~quick ppf
  | `T3 -> Experiments.exp_t3 ~quick ppf
  | `T4 -> Experiments.exp_t4 ~quick ppf
  | `T5 -> Experiments.exp_t5 ~quick ppf
  | `G -> Experiments.exp_g ~quick ?max_p ppf
  | `S1 -> Experiments.exp_s1 ~quick ppf
  | `S2 -> Experiments.exp_s2 ~quick ppf
  | `MFM -> Experiments.exp_mfm ~quick ppf
  | `A -> Experiments.exp_a ~quick ppf
  | `SW -> Experiments.exp_sw ~quick ppf
  | `SW1 -> Experiments.exp_sw1 ~quick ppf
  | `MC -> Experiments.exp_mc ~quick ppf
  | `Fault -> Experiments.exp_fault ~quick ~detect ppf
  | `Detect -> Experiments.exp_detect ~quick ppf
  | `Lint -> Experiments.exp_lint ~quick ppf
  | `Synth -> Experiments.exp_synth ~quick ppf

type timing = {
  tm_name : string;
  tm_wall : float;  (* seconds *)
  tm_runs : int;  (* engine runs started by this experiment *)
  tm_cancelled : int;
      (* of those, runs a parallel sweep started speculatively and then
         discarded; tm_runs - tm_cancelled is the canonical tally, byte-
         identical at any --domains *)
}

let runs_per_sec tm = if tm.tm_wall > 0. then float_of_int tm.tm_runs /. tm.tm_wall else 0.

let timing_table timings =
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "experiment"; "wall (s)"; "engine runs"; "cancelled"; "runs/sec" ]
  in
  List.iter
    (fun tm ->
      Table.add_row table
        [
          tm.tm_name;
          Printf.sprintf "%.2f" tm.tm_wall;
          string_of_int tm.tm_runs;
          string_of_int tm.tm_cancelled;
          Printf.sprintf "%.0f" (runs_per_sec tm);
        ])
    timings;
  let total_wall = List.fold_left (fun acc tm -> acc +. tm.tm_wall) 0. timings in
  let total_runs = List.fold_left (fun acc tm -> acc + tm.tm_runs) 0 timings in
  let total_cancelled = List.fold_left (fun acc tm -> acc + tm.tm_cancelled) 0 timings in
  Table.add_row table
    [
      "total";
      Printf.sprintf "%.2f" total_wall;
      string_of_int total_runs;
      string_of_int total_cancelled;
      Printf.sprintf "%.0f"
        (if total_wall > 0. then float_of_int total_runs /. total_wall else 0.);
    ];
  Table.render table

let write_json path ~quick ~domains ~claims ~failed timings =
  let buf = Buffer.create 1024 in
  let total_wall = List.fold_left (fun acc tm -> acc +. tm.tm_wall) 0. timings in
  let total_runs = List.fold_left (fun acc tm -> acc + tm.tm_runs) 0 timings in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"wormhole-campaign/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf (Printf.sprintf "  \"claims\": %d,\n" claims);
  Buffer.add_string buf (Printf.sprintf "  \"failed\": %d,\n" failed);
  let total_cancelled = List.fold_left (fun acc tm -> acc + tm.tm_cancelled) 0 timings in
  Buffer.add_string buf (Printf.sprintf "  \"wall_s\": %.3f,\n" total_wall);
  Buffer.add_string buf (Printf.sprintf "  \"engine_runs\": %d,\n" total_runs);
  Buffer.add_string buf (Printf.sprintf "  \"engine_runs_cancelled\": %d,\n" total_cancelled);
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i tm ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"wall_s\": %.3f, \"runs\": %d, \"cancelled\": %d, \
            \"runs_per_s\": %.0f}%s\n"
           tm.tm_name tm.tm_wall tm.tm_runs tm.tm_cancelled (runs_per_sec tm)
           (if i = List.length timings - 1 then "" else ",")))
    timings;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* The campaign metrics file is built from canonically-reduced quantities
   only (claim verdicts, canonical run tallies), never from event-stream
   folds: interleaved event streams from parallel sweeps are schedule-
   dependent, so folding them would break the byte-determinism contract
   (DESIGN.md §11).  Everything written here is identical at any --domains. *)
let write_metrics path ~quick ~rows timings =
  let reg = Obs.Metrics.create () in
  let quick_g =
    Obs.Metrics.gauge reg ~help:"1 when the campaign ran with --quick" "wormhole_campaign_quick"
  in
  Obs.Metrics.set quick_g (if quick then 1 else 0);
  let claims status =
    Obs.Metrics.counter reg ~help:"Campaign claims by verdict"
      ~labels:[ ("status", status) ]
      "wormhole_campaign_claims_total"
  in
  let ok_c = claims "ok" and failed_c = claims "failed" in
  List.iter
    (fun r -> Obs.Metrics.inc (if r.Experiments.x_ok then ok_c else failed_c))
    rows;
  List.iter
    (fun tm ->
      let c =
        Obs.Metrics.counter reg
          ~help:"Canonical engine runs per experiment (speculative cancelled runs excluded)"
          ~labels:[ ("experiment", tm.tm_name) ]
          "wormhole_campaign_experiment_runs_total"
      in
      Obs.Metrics.add c (tm.tm_runs - tm.tm_cancelled))
    timings;
  let total =
    Obs.Metrics.counter reg ~help:"Canonical engine runs across the campaign"
      "wormhole_campaign_runs_total"
  in
  Obs.Metrics.add total
    (List.fold_left (fun acc tm -> acc + (tm.tm_runs - tm.tm_cancelled)) 0 timings);
  let oc = open_out path in
  output_string oc (Obs.Metrics.to_prometheus reg);
  close_out oc

let main names quick max_p sanitize detect discipline domains json metrics verdicts latency =
  (match domains with None -> () | Some d -> Wr_pool.set_default_domains d);
  (match discipline with
  | None -> ()
  | Some spec -> (
    match Engine.discipline_of_string spec with
    | Some d -> Engine.set_discipline_override (Some d)
    | None ->
      Printf.eprintf
        "unknown --discipline %s (wormhole/wh, virtual-cut-through/vct, store-and-forward/saf)\n"
        spec;
      exit 2));
  let ppf = Format.std_formatter in
  (* --latency arms the counters-first stats plane for the whole campaign:
     every engine run gets a private accumulator, proving stats-on changes
     no claim verdict (CI diffs the --verdicts files armed vs not) *)
  if latency then Obs.Stats.arm ();
  let sanitizer =
    if sanitize then begin
      let s = Sanitizer.create () in
      Sanitizer.install s;
      Some s
    end
    else None
  in
  let selected =
    match names with
    | [] -> known
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n known with
          | Some e -> (n, e)
          | None ->
            Printf.eprintf "unknown experiment %s (known: %s)\n" n
              (String.concat ", " (List.map fst known));
            exit 2)
        names
  in
  let timings = ref [] in
  let rows =
    List.concat_map
      (fun (name, e) ->
        let t0 = Unix.gettimeofday () in
        let runs0 = Engine.run_count () in
        let cancelled0 = Engine.cancelled_count () in
        let rows = run_one ~quick ~max_p ~detect ppf e in
        Format.pp_print_flush ppf ();
        let tm =
          {
            tm_name = name;
            tm_wall = Unix.gettimeofday () -. t0;
            tm_runs = Engine.run_count () - runs0;
            tm_cancelled = Engine.cancelled_count () - cancelled0;
          }
        in
        timings := tm :: !timings;
        rows)
      selected
  in
  let timings = List.rev !timings in
  Format.fprintf ppf "@\n=== Summary ===@\n%s@?" (Experiments.summary_table rows);
  (match verdicts with
  | None -> ()
  | Some path ->
    (* one "id ok|FAIL" line per claim: a canonical, domain-independent
       reduction CI can diff across configurations (e.g. --detect on/off) *)
    let oc = open_out path in
    List.iter
      (fun r ->
        Printf.fprintf oc "%s %s\n" r.Experiments.x_id
          (if r.Experiments.x_ok then "ok" else "FAIL"))
      rows;
    close_out oc;
    Format.fprintf ppf "@\nclaim verdicts written to %s@\n" path);
  let failed = List.filter (fun r -> not r.Experiments.x_ok) rows in
  if failed <> [] then begin
    Format.fprintf ppf "@\n%d claim(s) FAILED@." (List.length failed);
    exit 1
  end;
  (match sanitizer with
  | None -> ()
  | Some s ->
    Format.fprintf ppf "@\nsanitizer: %d runs (%d canonical, %d cancelled), %d cycles checked@."
      (Sanitizer.runs_checked s)
      (Sanitizer.runs_checked s - Sanitizer.runs_cancelled s)
      (Sanitizer.runs_cancelled s) (Sanitizer.cycles_checked s);
    if not (Sanitizer.ok s) then begin
      Format.fprintf ppf "%d invariant violation(s):@." (Sanitizer.violation_count s);
      List.iter
        (fun d -> Format.fprintf ppf "  %a@." (Diagnostic.pp ()) d)
        (Sanitizer.diagnostics s);
      exit 1
    end);
  Format.fprintf ppf "@\nall %d claims reproduced@." (List.length rows);
  (match metrics with
  | None -> ()
  | Some path ->
    write_metrics path ~quick ~rows timings;
    Format.fprintf ppf "@\ncampaign metrics written to %s@." path);
  (* the latency section runs a fixed workload set with explicit per-run
     accumulators merged in task-index order: byte-identical at any
     --domains, so it prints before the wall-clock-dependent sections *)
  if latency then begin
    Experiments.latency_report ~quick ppf;
    Format.pp_print_flush ppf ()
  end;
  (* wall-clock-dependent section last, so everything above stays byte-
     identical across runs and domain counts *)
  Format.fprintf ppf "@\n=== Timing (domains=%d) ===@\n%s@?" (Wr_pool.default_domains ())
    (timing_table timings);
  (* armed totals count speculative (later-cancelled) sweep runs too, so
     like the timing table they stay out of the byte-diffed region *)
  if latency then begin
    Obs.Stats.disarm ();
    Format.fprintf ppf "@\nstats (armed campaign totals): %s@."
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            (Obs.Stats.armed_totals ())))
  end;
  match json with
  | None -> ()
  | Some path ->
    write_json path ~quick
      ~domains:(Wr_pool.default_domains ())
      ~claims:(List.length rows) ~failed:(List.length failed) timings;
    Format.fprintf ppf "@\ntiming JSON written to %s@." path

let names_arg =
  let doc = "Experiments to run (default: all).  One of exp-f1, exp-t2, exp-corollaries, \
             exp-t3, exp-t4, exp-t5, exp-g, exp-s1, exp-s2, exp-mfm, exp-a, exp-sw, exp-sw1, \
             exp-mc, exp-fault, exp-detect, exp-lint, exp-synth." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Trim search spaces for a fast pass (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let max_p_arg =
  let doc = "Largest Section-6 family parameter for exp-g." in
  Arg.(value & opt (some int) None & info [ "max-p" ] ~docv:"N" ~doc)

let sanitize_arg =
  let doc = "Run every simulation under the engine sanitizer (per-cycle invariant \
             checks E101-E105); report violations at the end and exit nonzero on any." in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let detect_arg =
  let doc = "Run exp-fault's campaigns with online deadlock detection instead of the plain \
             watchdog (same no-progress backstop; claim verdicts must not change)." in
  Arg.(value & flag & info [ "detect" ] ~doc)

let discipline_arg =
  let doc = "Run every oblivious simulation under this switching discipline (wormhole, \
             virtual-cut-through/vct, store-and-forward/saf) via the process-wide override: \
             a campaign-level what-if that shows which deadlock verdicts flip when the \
             switching changes.  Store-and-forward raises each run's effective buffer \
             capacity to its longest message so wormhole-provisioned campaigns stay \
             runnable.  exp-sw1 (the discipline matrix) pins its own disciplines and \
             ignores the override." in
  Arg.(value & opt (some string) None & info [ "discipline" ] ~docv:"D" ~doc)

let domains_arg =
  let doc = "Domains for the parallel sweeps (default: the WORMHOLE_DOMAINS environment \
             variable, else the machine's recommended domain count).  1 selects the exact \
             sequential path; claim output is byte-identical for every value." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Write per-experiment wall-clock and runs/sec timing to $(docv) as JSON \
             (schema wormhole-campaign/1)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write campaign metrics (claim verdicts, canonical per-experiment engine-run \
             tallies) to $(docv) in Prometheus text format.  Built only from canonically \
             reduced quantities, so the file is byte-identical at any --domains." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let verdicts_arg =
  let doc = "Write one 'claim-id ok|FAIL' line per claim to $(docv): a canonical reduction \
             that is byte-identical at any --domains, for diffing across configurations." in
  Arg.(value & opt (some string) None & info [ "verdicts" ] ~docv:"FILE" ~doc)

let latency_arg =
  let doc = "Arm the counters-first stats plane for the whole campaign (claim verdicts must \
             not change) and append a latency section: p50/p90/p99/max percentiles, peak \
             channel utilization and top head-of-line blocking channels over a fixed \
             deterministic workload set, byte-identical at any --domains." in
  Arg.(value & flag & info [ "latency" ] ~doc)

let cmd =
  let doc = "regenerate the paper's figures and theorem checks" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info
    Term.(
      const main $ names_arg $ quick_arg $ max_p_arg $ sanitize_arg $ detect_arg
      $ discipline_arg $ domains_arg $ json_arg $ metrics_arg $ verdicts_arg $ latency_arg)

let () = exit (Cmd.eval cmd)
