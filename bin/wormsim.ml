(* Flit-level wormhole simulation CLI.

   Examples:
     wormsim --topology mesh --dims 8x8 --routing xy --pattern uniform --rate 0.02
     wormsim --topology torus --dims 5x5 --routing ecube --pattern tornado --permutation
     wormsim --topology ring --dims 6 --routing clockwise --permutation
     wormsim --topology figure1 --faults 'stall:s0>r0@3+20' --recovery
     wormsim --topology mesh --dims 4x4 --faults random --recovery --retry-limit 3 *)

open Cmdliner

type built = {
  coords : Builders.coords;
  routing : [ `Oblivious of Routing.t | `Adaptive of Adaptive.t ];
}

let paper_net = function
  | "figure1" -> Some (Paper_nets.figure1 ())
  | "figure2" -> Some (Paper_nets.figure2 ())
  | "figure3a" -> Some (Paper_nets.figure3 `A)
  | "figure3b" -> Some (Paper_nets.figure3 `B)
  | "figure3c" -> Some (Paper_nets.figure3 `C)
  | "figure3d" -> Some (Paper_nets.figure3 `D)
  | "figure3e" -> Some (Paper_nets.figure3 `E)
  | "figure3f" -> Some (Paper_nets.figure3 `F)
  | _ -> None

(* The paper networks replay their designated messages under the CD
   algorithm by default; --routing synth swaps in a synthesized certified
   routing on the same network (same message set, deadlock-free paths). *)
let paper_rt topology routing net =
  if routing = "synth" then (
    match Synth.synthesize ~name:(topology ^ "-synth") net.Paper_nets.topo with
    | Ok (rt, plan) ->
      Format.printf "synthesized routing via %s: %d dependencies rank-increasing@."
        plan.Synth.p_strategy plan.Synth.p_dependencies;
      rt
    | Error w ->
      failwith
        (Format.asprintf "network admits no deadlock-free routing (E060): %a"
           (Synth.pp_witness net.Paper_nets.topo) w))
  else Cd_algorithm.of_net net

let build topology dims routing =
  let dims_list =
    String.split_on_char 'x' dims
    |> List.map (fun s ->
           match int_of_string_opt (String.trim s) with
           | Some n -> n
           | None -> failwith ("bad dimension: " ^ s))
  in
  match (topology, routing) with
  | "mesh", "xy" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Dimension_order.mesh coords) }
  | "mesh", "west-first" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Turn_model.west_first coords) }
  | "mesh", "north-last" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Turn_model.north_last coords) }
  | "mesh", "negative-first" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Turn_model.negative_first coords) }
  | "mesh", "adaptive" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Adaptive (Adaptive.fully_adaptive_minimal coords) }
  | "mesh", "duato" ->
    let coords = Builders.mesh ~vcs:2 dims_list in
    { coords; routing = `Adaptive (Adaptive.duato_mesh coords) }
  | "torus", "ecube" ->
    let coords = Builders.torus dims_list in
    { coords; routing = `Oblivious (Dimension_order.torus coords) }
  | "torus", "dateline" ->
    let coords = Builders.torus ~vcs:2 dims_list in
    { coords; routing = `Oblivious (Dimension_order.torus ~datelines:true coords) }
  | "hypercube", "ecube" ->
    let coords = Builders.hypercube (List.hd dims_list) in
    { coords; routing = `Oblivious (Dimension_order.hypercube coords) }
  | "ring", "clockwise" ->
    let coords = Builders.ring ~unidirectional:true (List.hd dims_list) in
    { coords; routing = `Oblivious (Ring_routing.clockwise coords) }
  | "ring", "dateline" ->
    let coords = Builders.ring ~unidirectional:true ~vcs:2 (List.hd dims_list) in
    { coords; routing = `Oblivious (Ring_routing.dateline coords) }
  | t, "synth" ->
    (* synthesize the routing from the topology alone; the unidirectional
       ring gets dateline VCs so synthesis has a deadlock-free design to
       find (the 1-VC ring admits none and would be refused with E060) *)
    let coords =
      match t with
      | "mesh" -> Builders.mesh dims_list
      | "torus" -> Builders.torus dims_list
      | "hypercube" -> Builders.hypercube (List.hd dims_list)
      | "ring" -> Builders.ring ~unidirectional:true ~vcs:2 (List.hd dims_list)
      | _ -> failwith (Printf.sprintf "unsupported topology/routing combination %s/synth" t)
    in
    let topo = coords.Builders.topo in
    (match Synth.synthesize ~name:(t ^ "-synth") topo with
    | Ok (rt, plan) ->
      Format.printf "synthesized routing via %s: %d dependencies rank-increasing@."
        plan.Synth.p_strategy plan.Synth.p_dependencies;
      { coords; routing = `Oblivious rt }
    | Error w ->
      failwith
        (Format.asprintf "network admits no deadlock-free routing (E060): %a"
           (Synth.pp_witness topo) w))
  | t, r -> failwith (Printf.sprintf "unsupported topology/routing combination %s/%s" t r)

let pattern_of coords rng = function
  | "uniform" -> Traffic.uniform rng coords
  | "transpose" -> Traffic.transpose coords
  | "bit-complement" -> Traffic.bit_complement coords
  | "bit-reverse" -> Traffic.bit_reverse coords
  | "tornado" -> Traffic.tornado coords
  | "neighbor" -> Traffic.neighbor coords
  | "hotspot" -> Traffic.hotspot rng coords 0
  | p -> failwith ("unknown pattern: " ^ p)

(* --faults: "random" for a seeded random plan, otherwise the Fault.parse
   format, e.g. "fail:a>b@10,stall:c>d@0+25,drop:m3@2" *)
let fault_plan topo rng horizon = function
  | "" -> Fault.empty
  | "random" -> Fault.random ~link_failures:1 ~stalls:2 ~max_stall:20 ~horizon rng topo
  | spec -> (
    match Fault.parse topo spec with
    | Ok plan -> plan
    | Error e -> failwith ("bad --faults spec: " ^ e))

(* Recovery policy from the CLI flags; when permanent failures are planned
   and the routing is oblivious, recompute paths around them and re-certify
   the degraded algorithm before handing it to the engine. *)
let recovery_of faults recovery_on retry_limit watchdog detect detect_bound victim_policy
    algo =
  if not (recovery_on || detect) then None
  else
    let reroute =
      match algo with
      | `Adaptive ad -> (
        (* adaptive headers already steer around down channels; a reroute
           additionally pins each retried message to a re-certified static
           route carved from the adaptive function's first choices *)
        match Fault.failed_channels faults with
        | [] -> None
        | failed -> (
          match
            Degrade.reroute ~quick:true ~failed (Adaptive.restrict_to_first ad)
          with
          | Error e ->
            Format.printf "degraded routing unavailable: %s@." e;
            None
          | Ok d ->
            Format.printf "%a@." Degrade.pp d;
            if Degrade.certified d then begin
              let topo = Adaptive.topology ad in
              List.iter
                (fun diag -> Format.printf "%a@." (Diagnostic.pp ~topo ()) diag)
                (Lint.reroute ~adaptive:true ~algorithm:(Adaptive.name ad) topo
                   d.Degrade.routing);
              Some d.Degrade.routing
            end
            else begin
              Format.printf "uncertified degraded routing: retrying with adaptive freedom@.";
              None
            end))
      | `Oblivious rt -> (
        match Fault.failed_channels faults with
        | [] -> None
        | failed -> (
          match Degrade.reroute ~quick:true ~failed rt with
          | Error e ->
            Format.printf "degraded routing unavailable: %s@." e;
            None
          | Ok d ->
            Format.printf "%a@." Degrade.pp d;
            if Degrade.certified d then Some d.Degrade.routing
            else begin
              Format.printf "uncertified degraded routing: retrying on original paths@.";
              None
            end))
    in
    let trigger =
      if not detect then Engine.Watchdog watchdog
      else begin
        (* --watchdog doubles as the backstop: the no-progress sweep that
           still covers acyclic wedges the detector cannot see *)
        let algorithm =
          match algo with
          | `Adaptive ad -> Adaptive.name ad
          | `Oblivious rt -> Routing.name rt
        in
        let diags = Lint.detect_config ~algorithm ~bound:detect_bound ~backstop:watchdog in
        List.iter (fun d -> Format.printf "%a@." (Diagnostic.pp ()) d) diags;
        if List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags then
          failwith "invalid --detect configuration";
        let policy =
          match Obs_detect.victim_policy_of_string victim_policy with
          | Some p -> p
          | None ->
            failwith
              ("unknown --victim-policy: " ^ victim_policy ^ " (minimal, youngest, oldest)")
        in
        Engine.Detect { Obs_detect.bound = detect_bound; backstop = watchdog; policy }
      end
    in
    Some { Engine.default_recovery with retry_limit; trigger; reroute }

(* --discipline lint (E047/W048): SAF under-provisioning is rejected before
   the engine does, cut-through under-provisioning gets the whole-packet
   provisioning note.  Adaptive runs skip this: they always switch wormhole. *)
let lint_discipline ~algorithm discipline sched buffer =
  let max_length =
    List.fold_left
      (fun acc (m : Schedule.message_spec) -> max acc m.Schedule.ms_length)
      1 sched
  in
  let diags =
    Lint.discipline_config ~algorithm
      ~discipline:(Engine.discipline_string discipline)
      ~buffer_capacity:buffer ~max_length
  in
  List.iter (fun d -> Format.printf "%a@." (Diagnostic.pp ()) d) diags;
  if List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags then
    failwith "invalid --discipline/--buffer configuration (E047)"

(* Observability wiring for --trace-out/--metrics-out: a recorder (events
   feed the Chrome exporter and the deadlock post-mortem) teed with a
   metrics fold when requested.  wormsim is a single run, so folding the
   event stream into metrics is deterministic here (DESIGN.md §11). *)
type obs_ctx = {
  oc_events : unit -> Obs.Event.t list;
  oc_reg : Obs.Metrics.t;
  oc_trace : string option;
  oc_metrics : string option;
}

let setup_obs trace_out metrics_out =
  if trace_out = None && metrics_out = None then None
  else begin
    let sink, events = Obs.recorder () in
    let reg = Obs.Metrics.create () in
    let sinks =
      match metrics_out with None -> [ sink ] | Some _ -> [ sink; Obs.metrics_sink reg ]
    in
    Obs.install (Obs.tee sinks);
    Some { oc_events = events; oc_reg = reg; oc_trace = trace_out; oc_metrics = metrics_out }
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* [post_mortem] when the run deadlocked or went through recovery: print the
   reconstructed wait-for knot, occupancy history and (given [rt]) the
   Theorem 2-5 classification of the knot's channel cycle. *)
let finalize_obs ?rt ~topo ~post_mortem = function
  | None -> ()
  | Some ctx ->
    Obs.uninstall ();
    let events = ctx.oc_events () in
    if post_mortem then
      Format.printf "%s@?" (Obs.Postmortem.render ~topo (Obs.Postmortem.analyze ?rt events));
    (match ctx.oc_trace with
    | Some path ->
      write_file path (Obs.Chrome.to_json ~topo events);
      Format.printf "chrome trace written to %s@." path
    | None -> ());
    (match ctx.oc_metrics with
    | Some path ->
      write_file path (Obs.Metrics.to_prometheus ctx.oc_reg);
      Format.printf "metrics written to %s@." path
    | None -> ())

(* Counters-first telemetry for --stats-out: one preallocated accumulator
   threaded through the run, rendered as Prometheus text (or JSON when the
   file ends in .json) plus a summary table and utilization heatmap on
   stdout.  Unlike --trace-out/--metrics-out this never arms the event
   bus, so it also works on runs too hot to trace. *)
let setup_stats topo = function
  | None -> None
  | Some path -> Some (Obs.Stats.create ~nchan:(Topology.num_channels topo), path)

let stats_acc = function None -> None | Some (st, _) -> Some st

let finalize_stats ~topo = function
  | None -> ()
  | Some (st, path) ->
    let doc =
      if Filename.check_suffix path ".json" then Obs.Stats.to_json ~topo st
      else Obs.Stats.to_prometheus ~topo st
    in
    write_file path doc;
    Format.printf "%s" (Obs.Stats.summary ~topo st);
    (match Obs.Stats.heatmap ~topo st with
    | "" -> ()
    | hm -> Format.printf "%s" hm);
    Format.printf "stats written to %s@." path

let run_oblivious ?stats topo rt sched config =
  let out = Engine.run ~config ?stats rt sched in
  Format.printf "%a@." (Engine.pp_outcome topo) out;
  let pm = match out with Engine.Deadlock _ | Engine.Recovered _ -> true | _ -> false in
  (Engine.is_deadlock out, pm)

let main topology dims routing pattern rate length horizon permutation seed buffer
    discipline_spec faults_spec recovery_on retry_limit watchdog detect detect_bound
    victim_policy witness trace_out metrics_out stats_out =
  try
    let rng = Rng.create seed in
    let discipline =
      match Engine.discipline_of_string discipline_spec with
      | Some d -> d
      | None ->
        failwith
          ("unknown --discipline: " ^ discipline_spec
         ^ " (wormhole/wh, virtual-cut-through/vct, store-and-forward/saf)")
    in
    match paper_net topology with
    | Some net when witness ->
      (* sweep the intent schedule space for a deadlock witness, then
         replay only the witness under observation (sweeping under the
         sink would record thousands of unrelated runs) *)
      let rt = paper_rt topology routing net in
      let templates =
        List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents
      in
      Printf.printf "network=%s messages=%d (witness sweep)\n" topology
        (List.length net.Paper_nets.intents);
      (match Explorer.explore rt (Explorer.default_space templates) with
      | Explorer.No_deadlock { runs } ->
        Format.printf "no deadlock witness in %d runs@." runs;
        finalize_obs ~rt ~topo:net.Paper_nets.topo ~post_mortem:false
          (setup_obs trace_out metrics_out)
      | Explorer.Deadlock_found { runs; witness = w } ->
        Format.printf "deadlock witness found after %d runs; replaying under observation@."
          runs;
        let obs = setup_obs trace_out metrics_out in
        (* stats cover only the witness replay, not the sweep *)
        let sctx = setup_stats net.Paper_nets.topo stats_out in
        (* replay under --discipline: the sweep searches wormhole, but the
           witness can be re-switched to see whether the verdict flips.
           SAF gets whole-packet provisioning, like the campaign override *)
        let cap =
          let base = w.Explorer.w_config.Engine.buffer_capacity in
          match discipline with
          | Engine.Store_and_forward ->
            List.fold_left
              (fun acc (m : Schedule.message_spec) -> max acc m.Schedule.ms_length)
              base w.Explorer.w_schedule
          | Engine.Wormhole | Engine.Virtual_cut_through -> base
        in
        let deadlocked, pm =
          run_oblivious ?stats:(stats_acc sctx) net.Paper_nets.topo rt
            w.Explorer.w_schedule
            { w.Explorer.w_config with Engine.discipline; buffer_capacity = cap }
        in
        finalize_obs ~rt ~topo:net.Paper_nets.topo ~post_mortem:pm obs;
        finalize_stats ~topo:net.Paper_nets.topo sctx;
        if deadlocked then exit 3)
    | Some net ->
      (* the paper's CD networks replay their designated messages *)
      let obs = setup_obs trace_out metrics_out in
      let rt = paper_rt topology routing net in
      let sched =
        List.map
          (fun (it : Paper_nets.intent) ->
            Schedule.message ~length it.i_label it.i_src it.i_dst)
          net.Paper_nets.intents
      in
      let faults = fault_plan net.Paper_nets.topo rng horizon faults_spec in
      let recovery =
        recovery_of faults recovery_on retry_limit watchdog detect detect_bound
          victim_policy (`Oblivious rt)
      in
      Printf.printf "network=%s messages=%d\n" topology (List.length sched);
      lint_discipline ~algorithm:(Routing.name rt) discipline sched buffer;
      if not (Fault.is_empty faults) then
        Format.printf "faults: %a@." (Fault.pp net.Paper_nets.topo) faults;
      let sctx = setup_stats net.Paper_nets.topo stats_out in
      let deadlocked, pm =
        run_oblivious ?stats:(stats_acc sctx) net.Paper_nets.topo rt sched
          { Engine.default_config with buffer_capacity = buffer; discipline; faults; recovery }
      in
      finalize_obs ~rt ~topo:net.Paper_nets.topo ~post_mortem:pm obs;
      finalize_stats ~topo:net.Paper_nets.topo sctx;
      if deadlocked then exit 3
    | None ->
      if witness then failwith "--witness only applies to paper networks (figure1, figure2, ...)";
      let obs = setup_obs trace_out metrics_out in
      let { coords; routing = algo } = build topology dims routing in
      (match algo with
      | `Oblivious rt -> (
        match Routing.validate rt with
        | Ok () -> ()
        | Error e -> failwith ("routing invalid: " ^ e))
      | `Adaptive ad -> (
        match Adaptive.validate ad with
        | Ok () -> ()
        | Error e -> failwith ("adaptive routing invalid: " ^ e)));
      let pat = pattern_of coords rng pattern in
      let sched =
        if permutation then Traffic.permutation_schedule pat ~coords ~length
        else Traffic.bernoulli_schedule rng pat ~coords ~rate ~length ~horizon
      in
      Printf.printf "topology=%s dims=%s routing=%s pattern=%s messages=%d\n" topology dims
        routing pat.Traffic.name (List.length sched);
      (match algo with
      | `Oblivious rt -> lint_discipline ~algorithm:(Routing.name rt) discipline sched buffer
      | `Adaptive _ -> ());
      let faults = fault_plan coords.Builders.topo rng horizon faults_spec in
      if not (Fault.is_empty faults) then
        Format.printf "faults: %a@." (Fault.pp coords.Builders.topo) faults;
      let recovery =
        recovery_of faults recovery_on retry_limit watchdog detect detect_bound victim_policy
          algo
      in
      let config =
        { Engine.default_config with buffer_capacity = buffer; discipline; faults; recovery }
      in
      (match (algo, discipline) with
      | `Adaptive _, (Engine.Virtual_cut_through | Engine.Store_and_forward) ->
        Format.printf "note: adaptive runs always switch wormhole; --discipline ignored@."
      | _ -> ());
      let sctx = setup_stats coords.Builders.topo stats_out in
      (match algo with
      | `Oblivious rt ->
        let report = Measure.run ~config ?stats:(stats_acc sctx) rt sched in
        Format.printf "%a@." Measure.pp report;
        finalize_obs ~rt ~topo:coords.Builders.topo
          ~post_mortem:(report.Measure.deadlocked || report.Measure.recovered)
          obs;
        finalize_stats ~topo:coords.Builders.topo sctx;
        if report.Measure.deadlocked then exit 3
      | `Adaptive ad ->
        let out = Adaptive_engine.run ~config ?stats:(stats_acc sctx) ad sched in
        (match out with
        | Adaptive_engine.All_delivered { finished_at; messages } ->
          Format.printf "%d/%d delivered in %d cycles (adaptive)@." (List.length messages)
            (List.length sched) finished_at
        | o -> Format.printf "%a@." (Engine.pp_outcome coords.Builders.topo) o);
        let pm =
          match out with
          | Adaptive_engine.Deadlock _ | Adaptive_engine.Recovered _ -> true
          | _ -> false
        in
        (* adaptive: no oblivious routing function, so the post-mortem skips
           the CDG classification *)
        finalize_obs ~topo:coords.Builders.topo ~post_mortem:pm obs;
        finalize_stats ~topo:coords.Builders.topo sctx;
        if Engine.is_deadlock out then exit 3)
  with Failure msg | Invalid_argument msg ->
    Printf.eprintf "wormsim: %s\n" msg;
    exit 2

let topo_arg =
  Arg.(value & opt string "mesh" & info [ "topology" ] ~docv:"T" ~doc:"mesh, torus, hypercube, ring, or a paper network: figure1, figure2, figure3a..figure3f")

let dims_arg =
  Arg.(value & opt string "8x8" & info [ "dims" ] ~docv:"DxD" ~doc:"dimensions, e.g. 8x8 (hypercube/ring take one number)")

let routing_arg =
  Arg.(value & opt string "xy" & info [ "routing" ] ~docv:"R" ~doc:"xy, west-first, north-last, negative-first, adaptive, duato, ecube, dateline, clockwise, or synth (synthesize a certified deadlock-free routing from the topology; also valid on paper networks)")

let pattern_arg =
  Arg.(value & opt string "uniform" & info [ "pattern" ] ~docv:"P" ~doc:"uniform, transpose, bit-complement, bit-reverse, tornado, neighbor, hotspot")

let rate_arg =
  Arg.(value & opt float 0.02 & info [ "rate" ] ~docv:"R" ~doc:"per-node injection probability per cycle")

let length_arg =
  Arg.(value & opt int 4 & info [ "length" ] ~docv:"FLITS" ~doc:"message length in flits")

let horizon_arg =
  Arg.(value & opt int 1000 & info [ "horizon" ] ~docv:"CYCLES" ~doc:"injection horizon")

let permutation_arg =
  Arg.(value & flag & info [ "permutation" ] ~doc:"one message per node at cycle 0 instead of Bernoulli traffic")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (also seeds --faults random)")

let buffer_arg =
  Arg.(value & opt int 1 & info [ "buffer" ] ~docv:"FLITS" ~doc:"flit buffer capacity per channel")

let discipline_arg =
  Arg.(value & opt string "wormhole"
    & info [ "discipline" ] ~docv:"D"
        ~doc:"switching discipline: wormhole (wh), virtual-cut-through (vct: every channel \
              is provisioned with a whole-packet buffer, so a blocked message compresses \
              into its head channel), or store-and-forward (saf: the header only advances \
              once the whole packet is buffered; needs $(b,--buffer) >= message length).  \
              With $(b,--witness) the sweep searches wormhole and the witness replays \
              under $(docv).  Adaptive routings always switch wormhole.")

let faults_arg =
  Arg.(value & opt string "" & info [ "faults" ] ~docv:"SPEC"
    ~doc:"fault plan: 'random' for a seeded plan, or comma-separated events \
          'fail:SRC>DST[#VC]\\@T', 'stall:SRC>DST[#VC]\\@T+D', 'drop:LABEL\\@T'")

let recovery_arg =
  Arg.(value & flag & info [ "recovery" ]
    ~doc:"enable watchdog abort-and-retry recovery; with permanent failures a \
          re-certified degraded routing is used for retries")

let retry_limit_arg =
  Arg.(value & opt int Engine.default_recovery.Engine.retry_limit
    & info [ "retry-limit" ] ~docv:"N" ~doc:"maximum aborts per message before it gives up")

let watchdog_arg =
  Arg.(value & opt int 64
    & info [ "watchdog" ] ~docv:"CYCLES"
        ~doc:"cycles without progress before a message is aborted; under $(b,--detect) this \
              is the backstop that still catches acyclic (fault-wedged) stalls")

let detect_arg =
  Arg.(value & flag
    & info [ "detect" ]
        ~doc:"enable online deadlock detection (implies $(b,--recovery)): wait-for knots are \
              confirmed within $(b,--detect-bound) cycles of quiescence and only the \
              $(b,--victim-policy)-chosen victim is aborted, instead of every timed-out \
              member as under the plain watchdog")

let detect_bound_arg =
  Arg.(value & opt int Obs_detect.default_config.Obs_detect.bound
    & info [ "detect-bound" ] ~docv:"CYCLES"
        ~doc:"cycles a wait-for knot must stay quiescent before the detector confirms it")

let victim_policy_arg =
  Arg.(value & opt string "minimal"
    & info [ "victim-policy" ] ~docv:"P"
        ~doc:"which knot member a detection aborts: minimal (fewest held channels), \
              youngest, or oldest")

let witness_arg =
  Arg.(value & flag
    & info [ "witness" ]
        ~doc:"for paper networks: sweep the intents' schedule space (lengths, gaps, orders, \
              priorities) for a deadlock witness and replay it; combine with --trace-out or \
              --metrics-out to observe the deadlock and get a post-mortem")

let trace_out_arg =
  Arg.(value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"record the run's structured events and write a Chrome trace_event JSON to \
              $(docv) (load in chrome://tracing or Perfetto); on deadlock or recovery a \
              post-mortem of the wait-for knot is printed too")

let metrics_out_arg =
  Arg.(value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"fold the run's events into the standard wormhole_* metric families and write \
              them to $(docv) in Prometheus text format")

let stats_out_arg =
  Arg.(value & opt (some string) None
    & info [ "stats-out" ] ~docv:"FILE"
        ~doc:"thread a counters-first telemetry accumulator through the run (no event bus: \
              the steady cycle stays allocation-free) and write wormhole_stats_* families \
              to $(docv) in Prometheus text format (JSON when $(docv) ends in .json); a \
              latency percentile summary and per-channel utilization heatmap print to \
              stdout; with --witness, stats cover only the witness replay")

let cmd =
  let doc = "simulate wormhole routing on a classic topology" in
  Cmd.v (Cmd.info "wormsim" ~doc)
    Term.(
      const main $ topo_arg $ dims_arg $ routing_arg $ pattern_arg $ rate_arg $ length_arg
      $ horizon_arg $ permutation_arg $ seed_arg $ buffer_arg $ discipline_arg $ faults_arg
      $ recovery_arg
      $ retry_limit_arg $ watchdog_arg $ detect_arg $ detect_bound_arg $ victim_policy_arg
      $ witness_arg $ trace_out_arg $ metrics_out_arg $ stats_out_arg)

let () = exit (Cmd.eval cmd)
