lib/workload/traffic.mli: Builders Rng Schedule Topology
