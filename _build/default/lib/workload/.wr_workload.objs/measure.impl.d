lib/workload/measure.ml: Engine Format Hashtbl List Schedule Stats
