lib/workload/traffic.ml: Array Builders Fun List Printf Rng Schedule Topology
