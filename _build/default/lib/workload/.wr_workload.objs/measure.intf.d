lib/workload/measure.mli: Engine Format Routing Schedule
