type report = {
  total : int;
  delivered : int;
  finished_at : int;
  deadlocked : bool;
  avg_latency : float;
  p95_latency : float;
  max_latency : float;
  throughput : float;
}

let run ?config rt sched =
  let outcome = Engine.run ?config rt sched in
  let by_label = Hashtbl.create 64 in
  List.iter (fun (m : Schedule.message_spec) -> Hashtbl.replace by_label m.ms_label m) sched;
  let stats = Stats.create () in
  let flits = ref 0 in
  let collect (results : Engine.message_result list) =
    List.iter
      (fun (r : Engine.message_result) ->
        match r.r_delivered_at with
        | None -> ()
        | Some fin ->
          let spec = Hashtbl.find by_label r.r_label in
          flits := !flits + spec.Schedule.ms_length;
          Stats.add stats (float_of_int (fin - spec.Schedule.ms_inject_at + 1)))
      results
  in
  let finished_at, deadlocked =
    match outcome with
    | Engine.All_delivered { finished_at; messages } ->
      collect messages;
      (finished_at, false)
    | Engine.Cutoff { at; messages } ->
      collect messages;
      (at, false)
    | Engine.Deadlock d -> (d.Engine.d_cycle, true)
  in
  {
    total = List.length sched;
    delivered = Stats.count stats;
    finished_at;
    deadlocked;
    avg_latency = Stats.mean stats;
    p95_latency = Stats.percentile stats 95.0;
    max_latency = (if Stats.count stats = 0 then 0.0 else Stats.max_value stats);
    throughput =
      (if finished_at <= 0 then 0.0 else float_of_int !flits /. float_of_int (finished_at + 1));
  }

let pp ppf r =
  Format.fprintf ppf
    "%d/%d delivered%s in %d cycles; latency avg %.1f p95 %.1f max %.0f; throughput %.3f \
     flits/cycle"
    r.delivered r.total
    (if r.deadlocked then " (DEADLOCK)" else "")
    r.finished_at r.avg_latency r.p95_latency r.max_latency r.throughput
