(** Synthetic traffic patterns for substrate benchmarks (EXP-S1/S2).

    A pattern maps each source node to a destination (or None for sources
    that stay silent under the pattern, e.g. fixed points of a permutation).
    The classic patterns are defined on the coordinate schemes produced by
    {!Builders}. *)

type t = {
  name : string;
  dest : Topology.node -> Topology.node option;
}

val uniform : Rng.t -> Builders.coords -> t
(** Fresh uniformly random destination per query (stateful). *)

val transpose : Builders.coords -> t
(** 2-D: (x, y) -> (y, x).  Requires a square 2-D scheme. *)

val bit_complement : Builders.coords -> t
(** Destination coordinates are radix-mirrored: c -> k-1-c per dimension. *)

val bit_reverse : Builders.coords -> t
(** Hypercube-style: reverse the bit/coordinate vector. *)

val tornado : Builders.coords -> t
(** Each dimension shifted by (almost) half the radix. *)

val hotspot : ?fraction:float -> Rng.t -> Builders.coords -> Topology.node -> t
(** Uniform traffic, except a [fraction] (default 0.2) of messages target
    the given hotspot node. *)

val neighbor : Builders.coords -> t
(** +1 in dimension 0 (wrapping). *)

(** {1 Schedule generation} *)

val bernoulli_schedule :
  Rng.t -> t -> coords:Builders.coords -> rate:float -> length:int -> horizon:int ->
  Schedule.t
(** Open-loop injection: each node flips a coin with probability [rate]
    every cycle of [0, horizon) and emits a [length]-flit message to the
    pattern's destination.  Messages are labeled ["<node>/<seq>"]. *)

val permutation_schedule :
  t -> coords:Builders.coords -> length:int -> Schedule.t
(** One message per node (skipping fixed points), all injected at cycle 0 --
    the classic permutation stress test. *)
