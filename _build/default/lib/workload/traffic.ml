open Builders

type t = {
  name : string;
  dest : Topology.node -> Topology.node option;
}

let num_nodes coords = Topology.num_nodes coords.topo

let uniform rng coords =
  let n = num_nodes coords in
  {
    name = "uniform";
    dest =
      (fun src ->
        (* resample until the destination differs from the source *)
        let rec pick () =
          let d = Rng.int rng n in
          if d = src then pick () else Some d
        in
        if n < 2 then None else pick ());
  }

let permutation name f coords =
  {
    name;
    dest =
      (fun src ->
        let d = f (coords.coord src) in
        let dnode = coords.node_at d in
        if dnode = src then None else Some dnode);
  }

let transpose coords =
  if Array.length coords.dims <> 2 || coords.dims.(0) <> coords.dims.(1) then
    invalid_arg "Traffic.transpose: square 2-D scheme required";
  permutation "transpose" (fun c -> [| c.(1); c.(0) |]) coords

let bit_complement coords =
  permutation "bit-complement"
    (fun c -> Array.mapi (fun d x -> coords.dims.(d) - 1 - x) c)
    coords

let bit_reverse coords =
  permutation "bit-reverse"
    (fun c ->
      let n = Array.length c in
      Array.init n (fun i -> c.(n - 1 - i)))
    coords

let tornado coords =
  permutation "tornado"
    (fun c -> Array.mapi (fun d x -> (x + (((coords.dims.(d) + 1) / 2) - 1)) mod coords.dims.(d)) c)
    coords

let hotspot ?(fraction = 0.2) rng coords spot =
  let base = uniform rng coords in
  {
    name = "hotspot";
    dest =
      (fun src ->
        if src <> spot && Rng.bernoulli rng fraction then Some spot else base.dest src);
  }

let neighbor coords =
  permutation "neighbor" (fun c ->
      let c' = Array.copy c in
      c'.(0) <- (c.(0) + 1) mod coords.dims.(0);
      c')
    coords

let bernoulli_schedule rng pattern ~coords ~rate ~length ~horizon =
  let n = num_nodes coords in
  let sched = ref [] in
  let seq = Array.make n 0 in
  for t = 0 to horizon - 1 do
    for src = 0 to n - 1 do
      if Rng.bernoulli rng rate then
        match pattern.dest src with
        | None -> ()
        | Some dst ->
          let label = Printf.sprintf "n%d/%d" src seq.(src) in
          seq.(src) <- seq.(src) + 1;
          sched := Schedule.message ~length ~at:t label src dst :: !sched
    done
  done;
  List.rev !sched

let permutation_schedule pattern ~coords ~length =
  let n = num_nodes coords in
  List.filter_map
    (fun src ->
      match pattern.dest src with
      | None -> None
      | Some dst -> Some (Schedule.message ~length (Printf.sprintf "n%d" src) src dst))
    (List.init n Fun.id)
