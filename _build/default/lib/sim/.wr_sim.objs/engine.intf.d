lib/sim/engine.mli: Format Routing Schedule Topology
