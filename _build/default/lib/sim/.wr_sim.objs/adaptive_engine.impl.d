lib/sim/adaptive_engine.ml: Adaptive Array Engine Format Hashtbl List Routing Schedule String Topology Vec
