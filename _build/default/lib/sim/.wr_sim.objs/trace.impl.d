lib/sim/trace.ml: Buffer Char Engine Hashtbl List Printf String Topology
