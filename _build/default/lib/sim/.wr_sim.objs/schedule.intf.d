lib/sim/schedule.mli: Format Routing Topology
