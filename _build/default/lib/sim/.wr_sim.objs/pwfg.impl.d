lib/sim/pwfg.ml: Engine Hashtbl List
