lib/sim/trace.mli: Engine Topology
