lib/sim/pwfg.mli: Engine
