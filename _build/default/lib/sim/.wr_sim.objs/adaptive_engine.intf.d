lib/sim/adaptive_engine.mli: Adaptive Engine Format Schedule Topology
