lib/sim/engine.ml: Array Format Hashtbl List Routing Schedule String Topology
