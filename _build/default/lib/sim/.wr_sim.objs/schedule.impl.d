lib/sim/schedule.ml: Format List Routing Topology
