type t = {
  edges : (string * string) list;
  cyclic : bool;
}

let of_snapshot (snap : Engine.snapshot) =
  let edges =
    List.filter_map
      (fun (waiter, _c, holder) ->
        match holder with Some h when h <> waiter -> Some (waiter, h) | _ -> None)
      snap.Engine.s_waiting
  in
  (* detect a cycle by following the (functional) waiter -> holder edges *)
  let next = Hashtbl.create 8 in
  List.iter (fun (w, h) -> Hashtbl.replace next w h) edges;
  let cyclic =
    List.exists
      (fun (start, _) ->
        let rec chase seen m =
          if List.mem m seen then true
          else
            match Hashtbl.find_opt next m with
            | None -> false
            | Some m' -> chase (m :: seen) m'
        in
        chase [] start)
      edges
  in
  { edges; cyclic }

let monitor () =
  let first = ref None in
  let probe snap =
    if !first = None && (of_snapshot snap).cyclic then first := Some snap.Engine.s_cycle
  in
  (probe, fun () -> !first)
