(** Packet wait-for graphs (Dally-Aoki, discussed in Section 2 of the
    paper).

    The wait-for graph at an instant has an edge from message [m] to message
    [m'] when [m] is blocked on a channel held by [m'].  Dally and Aoki
    prove deadlock freedom for algorithms that keep this {e dynamic} graph
    acyclic; a deadlock is exactly a cycle that can never clear.

    This module evaluates wait-for graphs over the engine's per-cycle
    snapshots, so tests can assert the invariant "the PWFG stays acyclic
    until the run deadlocks" on live traffic. *)

type t = {
  edges : (string * string) list;  (** waiter -> holder *)
  cyclic : bool;
}

val of_snapshot : Engine.snapshot -> t
(** Build the wait-for graph of one instant. *)

val monitor : unit -> (Engine.snapshot -> unit) * (unit -> int option)
(** [let probe, first_cyclic = monitor ()] returns an engine probe and a
    query: after the run, [first_cyclic ()] is the first cycle at which the
    wait-for graph contained a cycle, if any. *)
