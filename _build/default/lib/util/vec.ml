type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let d = Array.make ncap x in
  Array.blit t.data 0 d 0 t.len;
  t.data <- d

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let map f t =
  let r = create () in
  iter (fun x -> push r (f x)) t;
  r

let filter p t =
  let r = create () in
  iter (fun x -> if p x then push r x) t;
  r
