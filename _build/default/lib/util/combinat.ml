let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: ys -> (x :: y :: ys) :: List.map (fun zs -> y :: zs) (insert_everywhere x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insert_everywhere x) (permutations xs)

(* Heap's algorithm: generates each permutation with a single swap. *)
let iter_permutations f a =
  let n = Array.length a in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec go k =
    if k <= 1 then f a
    else begin
      for i = 0 to k - 1 do
        go (k - 1);
        if i < k - 1 then if k mod 2 = 0 then swap i (k - 1) else swap 0 (k - 1)
      done
    end
  in
  if n = 0 then f a else go n

let rec tuples k xs =
  if k = 0 then [ [] ]
  else
    let rest = tuples (k - 1) xs in
    List.concat_map (fun x -> List.map (fun t -> x :: t) rest) xs

let iter_tuples f k bound =
  let a = Array.make k 0 in
  if bound <= 0 && k > 0 then ()
  else begin
    let rec go i = if i = k then f a else for v = 0 to bound - 1 do a.(i) <- v; go (i + 1) done in
    go 0
  end

let rec choose k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun x -> List.map (fun t -> x :: t) tails) choices
