type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  samples : float Vec.t; (* retained for percentile queries *)
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity; samples = Vec.create () }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  Vec.push t.samples x

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = t.minv

let max_value t = t.maxv

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let a = Vec.to_array t.samples in
    Array.sort compare a;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let idx = max 0 (min (t.n - 1) (rank - 1)) in
    a.(idx)
  end

let merge a b =
  let r = create () in
  Vec.iter (add r) a.samples;
  Vec.iter (add r) b.samples;
  r

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t) (stddev t)
    (if t.n = 0 then 0.0 else t.minv)
    (if t.n = 0 then 0.0 else t.maxv)
