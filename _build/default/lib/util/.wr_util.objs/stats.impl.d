lib/util/stats.ml: Array Format Vec
