lib/util/vec.mli:
