lib/util/bitset.mli:
