lib/util/table.mli:
