lib/util/combinat.mli:
