lib/util/bitset.ml: Array Hashtbl
