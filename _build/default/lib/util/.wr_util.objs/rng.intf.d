lib/util/rng.mli:
