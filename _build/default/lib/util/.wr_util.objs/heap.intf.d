lib/util/heap.mli:
