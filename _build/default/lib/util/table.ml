type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  rows : string list Vec.t;
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then invalid_arg "Table.create: aligns length";
      a
    | None -> List.map (fun _ -> Left) headers
  in
  { headers; aligns; rows = Vec.create () }

let add_row t row =
  if List.length row <> List.length t.headers then invalid_arg "Table.add_row: row length";
  Vec.push t.rows row

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let widths = Array.of_list (List.map String.length t.headers) in
  Vec.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    t.rows;
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i (cell, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(i) cell))
      (List.combine cells t.aligns);
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  Vec.iter emit_row t.rows;
  Buffer.contents buf

let print t = print_string (render t)
