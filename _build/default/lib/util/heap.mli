(** Binary min-heap keyed by integer priorities.

    Used by the simulator's event bookkeeping and by shortest-path search in
    the topology layer. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> int -> 'a -> unit
(** [add h key v] inserts [v] with priority [key] (smaller pops first). *)

val peek : 'a t -> (int * 'a) option
val pop : 'a t -> (int * 'a) option
val clear : 'a t -> unit
