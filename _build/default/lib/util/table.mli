(** Aligned ASCII tables for experiment reports.

    All experiment binaries print their results through this module so that
    EXPERIMENTS.md rows can be regenerated verbatim. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table; [aligns] defaults to all [Left]. *)

val add_row : t -> string list -> unit
(** Row length must match the header length. *)

val render : t -> string
(** Render with a header separator; rows in insertion order. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
