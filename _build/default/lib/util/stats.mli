(** Running statistics accumulators for simulation measurements. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance (Welford); 0 for fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in \[0,100\]; nearest-rank over retained
    samples.  0 when empty. *)

val merge : t -> t -> t
val pp : Format.formatter -> t -> unit
