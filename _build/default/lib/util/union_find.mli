(** Disjoint sets over integers [0..n-1] with path compression and
    union by rank. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val count_sets : t -> int
