type 'a t = (int * 'a) Vec.t

let create () = Vec.create ()

let length = Vec.length

let is_empty = Vec.is_empty

let swap h i j =
  let tmp = Vec.get h i in
  Vec.set h i (Vec.get h j);
  Vec.set h j tmp

let key h i = fst (Vec.get h i)

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if key h i < key h parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < n && key h l < key h i then l else i in
  let smallest = if r < n && key h r < key h smallest then r else smallest in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let add h k v =
  Vec.push h (k, v);
  sift_up h (Vec.length h - 1)

let peek h = if Vec.is_empty h then None else Some (Vec.get h 0)

let pop h =
  if Vec.is_empty h then None
  else begin
    let top = Vec.get h 0 in
    let n = Vec.length h in
    swap h 0 (n - 1);
    ignore (Vec.pop h);
    if not (Vec.is_empty h) then sift_down h 0;
    Some top
  end

let clear = Vec.clear
