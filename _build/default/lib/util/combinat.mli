(** Exhaustive enumeration helpers used by the schedule-space search. *)

val permutations : 'a list -> 'a list list
(** All permutations of the input (n! results; callers bound n). *)

val iter_permutations : ('a array -> unit) -> 'a array -> unit
(** [iter_permutations f a] calls [f] on every permutation of [a] in place
    (Heap's algorithm); [f] must not retain the array. *)

val tuples : int -> 'a list -> 'a list list
(** [tuples k xs] is all length-[k] sequences over [xs] (|xs|^k results). *)

val iter_tuples : (int array -> unit) -> int -> int -> unit
(** [iter_tuples f k bound] calls [f] on every array of length [k] with
    entries in \[0, bound); the array is reused between calls. *)

val choose : int -> 'a list -> 'a list list
(** [choose k xs] is all k-element subsets of [xs] in order. *)

val cartesian : 'a list list -> 'a list list
(** Cartesian product of a list of choice lists. *)
