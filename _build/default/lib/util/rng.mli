(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (splitmix64).  Every stochastic
    component of the library threads an explicit [t] so that experiments and
    tests are replayable from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator; useful to give sub-components their own streams. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
