lib/core/verify.mli: Cycle_analysis Explorer Format Properties Routing Topology
