lib/core/verify.ml: Cdg Cycle_analysis Explorer Format List Printf Properties Routing Topology
