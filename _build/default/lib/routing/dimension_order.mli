(** Dimension-order (e-cube) oblivious routing on meshes, tori and
    hypercubes.  These are the classic coherent, suffix-closed baselines the
    paper contrasts with the Cyclic Dependency algorithm (Corollaries 1-3
    apply to them: they can have no unreachable cyclic configurations). *)

val mesh : Builders.coords -> Routing.t
(** XY(Z...) routing: correct dimension 0 fully, then dimension 1, etc.
    Acyclic channel dependency graph; deadlock-free. *)

val hypercube : Builders.coords -> Routing.t
(** E-cube: fix differing address bits from the highest dimension down.
    Acyclic CDG. *)

val torus : ?datelines:bool -> Builders.coords -> Routing.t
(** Shortest-direction dimension-order routing on a torus (ties go the
    positive way).  With [datelines:false] (default) every hop uses virtual
    channel 0: the wraparound links close cycles in the CDG and the
    algorithm can deadlock -- the textbook baseline.  With [datelines:true]
    the topology must have been built with [~vcs:2]; a message switches from
    vc 0 to vc 1 when it crosses the wrap link of a dimension, which cuts
    every cycle (Dally-Seitz numbering exists). *)
