(** Adaptive routing functions (Section 7 of the paper: the extension of
    the unreachable-configuration theory to adaptive routing).

    An adaptive routing function has the form [C x N -> P(C)]: from an input
    channel and a destination it permits a {e set} of output channels; the
    router picks dynamically among them.  The oblivious functions of
    {!Routing} are exactly the singleton case.

    [validate] checks a safety invariant strong enough for the adaptive
    engine: from every reachable routing state the option set is non-empty
    until the destination is reached, every offered channel leaves the
    current node, and every choice sequence terminates (no livelock) --
    verified by exhaustive walk of the reachable (channel, destination)
    state graph. *)

type t

val create :
  name:string -> Topology.t -> (Routing.input -> Topology.node -> Topology.channel list) -> t
(** [create ~name topo f] wraps option function [f].  [f input dest] lists
    the permitted output channels; [[]] means consume (legal only at the
    destination). *)

val name : t -> string
val topology : t -> Topology.t

val options : t -> Routing.input -> Topology.node -> Topology.channel list
(** The permitted output channels for this input and destination. *)

val of_oblivious : Routing.t -> t
(** Lift an oblivious algorithm (singleton option sets). *)

val restrict_to_first : t -> Routing.t
(** The oblivious algorithm that always takes the first option -- useful to
    reuse the oblivious analyses on one deterministic selection. *)

val validate : t -> (unit, string) result
(** Exhaustively check delivery along {e every} adaptive choice. *)

val cdg_edges : t -> (Topology.channel * Topology.channel) list
(** All dependencies [c1 -> c2] realizable by some adaptive choice sequence
    (the adaptive CDG of Duato's theory), computed over the reachable state
    graph. *)

(** {1 Algorithms} *)

val fully_adaptive_minimal : Builders.coords -> t
(** On a mesh: every productive channel (vc 0) is permitted.  Its CDG has
    cycles and the algorithm can deadlock -- the textbook motivation for
    escape channels. *)

val duato_mesh : Builders.coords -> t
(** Duato's methodology on a mesh built with [~vcs:2]: adaptive class =
    every productive vc-1 channel, escape class = dimension-order routing
    on vc 0, always offered.  Deadlock-free: the escape subfunction's CDG
    is acyclic and reachable from every state. *)

val escape_of_duato_mesh : Builders.coords -> Routing.t
(** The escape subfunction used by {!duato_mesh} (XY on vc 0), for the
    Duato condition checker. *)

val west_first_adaptive : Builders.coords -> t
(** The Glass-Ni west-first turn model, genuinely adaptive: west hops are
    forced first; afterwards any productive east/north/south channel is
    permitted.  Deadlock-free on a single virtual channel. *)
