open Builders

let west_first coords =
  let { topo; dims; coord; node_at } = coords in
  if Array.length dims <> 2 then invalid_arg "Turn_model.west_first: 2-D mesh required";
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None
    else begin
      let hc = coord here and dc = coord dest in
      let nc = Array.copy hc in
      if dc.(0) < hc.(0) then nc.(0) <- hc.(0) - 1 (* west *)
      else if dc.(1) <> hc.(1) then
        nc.(1) <- (if dc.(1) > hc.(1) then hc.(1) + 1 else hc.(1) - 1)
      else nc.(0) <- hc.(0) + 1 (* east *);
      match Topology.find_channel topo here (node_at nc) with
      | Some c -> Some c
      | None -> invalid_arg "Turn_model.west_first: missing mesh channel"
    end
  in
  Routing.create ~name:"west-first" topo f

let north_last coords =
  let { topo; dims; coord; node_at } = coords in
  if Array.length dims <> 2 then invalid_arg "Turn_model.north_last: 2-D mesh required";
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None
    else begin
      let hc = coord here and dc = coord dest in
      let nc = Array.copy hc in
      if dc.(0) <> hc.(0) then nc.(0) <- (if dc.(0) > hc.(0) then hc.(0) + 1 else hc.(0) - 1)
      else if dc.(1) < hc.(1) then nc.(1) <- hc.(1) - 1 (* south before north *)
      else nc.(1) <- hc.(1) + 1 (* north hops last *);
      match Topology.find_channel topo here (node_at nc) with
      | Some c -> Some c
      | None -> invalid_arg "Turn_model.north_last: missing mesh channel"
    end
  in
  Routing.create ~name:"north-last" topo f

let negative_first coords =
  let { topo; dims; coord; node_at } = coords in
  if Array.length dims <> 2 then invalid_arg "Turn_model.negative_first: 2-D mesh required";
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None
    else begin
      let hc = coord here and dc = coord dest in
      let nc = Array.copy hc in
      if dc.(0) < hc.(0) then nc.(0) <- hc.(0) - 1
      else if dc.(1) < hc.(1) then nc.(1) <- hc.(1) - 1
      else if dc.(0) > hc.(0) then nc.(0) <- hc.(0) + 1
      else nc.(1) <- hc.(1) + 1;
      match Topology.find_channel topo here (node_at nc) with
      | Some c -> Some c
      | None -> invalid_arg "Turn_model.negative_first: missing mesh channel"
    end
  in
  Routing.create ~name:"negative-first" topo f
