(** Table-backed oblivious routing: explicit paths override a default rule.

    This is how the paper-figure algorithms are expressed: the handful of
    exceptional source/destination pairs follow their drawn paths, everything
    else follows the default (e.g. "via the hub"). *)

val of_paths :
  name:string ->
  default:(Routing.input -> Topology.node -> Topology.channel option) ->
  Topology.t ->
  (Topology.node * Topology.node * Topology.channel list) list ->
  Routing.t
(** [of_paths ~name ~default topo paths] compiles [(src, dst, channels)]
    triples into routing-table entries keyed by [(input, dst)] and falls back
    to [default] elsewhere.

    @raise Invalid_argument if a path is not a connected channel chain from
    its source to its destination, or if two paths disagree on the output
    channel for the same [(input, destination)] key (the algorithm would not
    be oblivious). *)
