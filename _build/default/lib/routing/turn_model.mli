(** An oblivious instantiation of the Glass-Ni west-first turn model on a 2-D
    mesh: all west (x-) hops first, then the vertical hops, then the east
    (x+) hops.  Only turns out of the west direction are taken, so both
    prohibited turns (north-to-west, south-to-west) are avoided and the CDG
    is acyclic.  Unlike XY routing the vertical phase happens in the middle,
    giving the test-suite a second, structurally different coherent
    algorithm. *)

val west_first : Builders.coords -> Routing.t
(** @raise Invalid_argument if the coordinate scheme is not 2-dimensional. *)

val north_last : Builders.coords -> Routing.t
(** North-last: the two prohibited turns are out of north, so all north
    (y+) hops are deferred to the end; before that the message routes west
    or east first, then south.  Oblivious instantiation; acyclic CDG. *)

val negative_first : Builders.coords -> Routing.t
(** Negative-first: all negative-direction hops (x-, y-) happen before any
    positive-direction hop; the prohibited turns are from a positive to a
    negative direction.  Oblivious instantiation; acyclic CDG. *)
