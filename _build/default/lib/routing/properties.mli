(** Structural properties of oblivious routing algorithms
    (Definitions 7-9 of the paper and the minimality notion of Section 1).

    All checkers are brute force over every ordered pair of nodes, which is
    exact and fast enough for the networks this library studies.  Each
    returns a witness describing the first violation, so test failures and
    experiment reports are self-explanatory. *)

type verdict = Holds | Fails of string

val is_holds : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val minimal : Routing.t -> verdict
(** Every path has shortest-path length. *)

val no_repeated_nodes : Routing.t -> verdict
(** No path visits the same node twice. *)

val prefix_closed : Routing.t -> verdict
(** Definition 7: if the path from [s] to [d] passes through [x], the
    algorithm's path from [s] to [x] is the prefix of that path up to the
    first occurrence of [x]. *)

val suffix_closed : Routing.t -> verdict
(** Definition 8: if the path from [s] to [d] passes through [x], the
    algorithm's path from [x] to [d] is the suffix of that path from the
    first occurrence of [x]. *)

val coherent : Routing.t -> verdict
(** Definition 9: prefix-closed, suffix-closed, and no repeated nodes. *)

val input_independent : Routing.t -> verdict
(** The routing function has the restricted form [N x N -> C] of
    Corollary 1: the output channel at a node depends only on the current
    node and the destination, never on the input channel.  Such algorithms
    can have no unreachable cyclic configurations. *)

val summary : Routing.t -> (string * verdict) list
(** All six properties, labeled, for report tables. *)
