open Builders

let channel_to ?(vc = 0) topo a b =
  match Topology.find_channel ~vc topo a b with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Dimension_order: missing channel %s -> %s (vc %d)"
         (Topology.node_name topo a) (Topology.node_name topo b) vc)

let mesh coords =
  let { topo; dims; coord; node_at } = coords in
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None
    else begin
      let hc = coord here and dc = coord dest in
      let rec first_diff d =
        if d >= Array.length dims then None
        else if hc.(d) <> dc.(d) then Some d
        else first_diff (d + 1)
      in
      match first_diff 0 with
      | None -> None
      | Some d ->
        let nc = Array.copy hc in
        nc.(d) <- (if hc.(d) < dc.(d) then hc.(d) + 1 else hc.(d) - 1);
        Some (channel_to topo here (node_at nc))
    end
  in
  Routing.create ~name:"dimension-order-mesh" topo f

let hypercube coords =
  let { topo; dims; coord; node_at } = coords in
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None
    else begin
      let hc = coord here and dc = coord dest in
      let rec first_diff d =
        if d >= Array.length dims then None
        else if hc.(d) <> dc.(d) then Some d
        else first_diff (d + 1)
      in
      match first_diff 0 with
      | None -> None
      | Some d ->
        let nc = Array.copy hc in
        nc.(d) <- 1 - hc.(d);
        Some (channel_to topo here (node_at nc))
    end
  in
  Routing.create ~name:"e-cube-hypercube" topo f

(* Shortest-direction e-cube on a torus.  Positive ties.  With datelines, a
   hop that crosses the wraparound link of its dimension switches to vc 1 and
   the message stays on vc 1 for the rest of that dimension; this cuts every
   ring cycle (a Dally-Seitz numbering exists). *)
let torus ?(datelines = false) coords =
  let { topo; dims; coord; node_at } = coords in
  let direction k cur target =
    let fwd = ((target - cur) mod k + k) mod k in
    if fwd <= k - fwd then 1 else -1
  in
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None
    else begin
      let hc = coord here and dc = coord dest in
      let rec first_diff d =
        if d >= Array.length dims then None
        else if hc.(d) <> dc.(d) then Some d
        else first_diff (d + 1)
      in
      match first_diff 0 with
      | None -> None
      | Some d ->
        let k = dims.(d) in
        let nc = Array.copy hc in
        if k = 2 then begin
          (* one bidirectional link, no wrap channels, no cycle to cut *)
          nc.(d) <- dc.(d);
          Some (channel_to topo here (node_at nc))
        end
        else begin
          let dir = direction k hc.(d) dc.(d) in
          let wrap_hop = (dir = 1 && hc.(d) = k - 1) || (dir = -1 && hc.(d) = 0) in
          nc.(d) <- ((hc.(d) + dir) mod k + k) mod k;
          let vc =
            if not datelines then 0
            else if wrap_hop then 1
            else begin
              (* stay on vc 1 if we already crossed this dimension's
                 dateline, i.e. we arrived on a vc-1 channel of the same
                 dimension and direction *)
              match input with
              | Routing.Inject _ -> 0
              | Routing.From c ->
                if Topology.vc topo c = 1 then begin
                  let pc = coord (Topology.src topo c) and cc = coord (Topology.dst topo c) in
                  let rec hop_dim i =
                    if i >= Array.length dims then None
                    else if pc.(i) <> cc.(i) then Some i
                    else hop_dim (i + 1)
                  in
                  match hop_dim 0 with
                  | Some pd when pd = d ->
                    let step = (((cc.(d) - pc.(d)) mod k) + k) mod k in
                    if (dir = 1 && step = 1) || (dir = -1 && step = k - 1) then 1 else 0
                  | Some _ | None -> 0
                end
                else 0
            end
          in
          Some (channel_to ~vc topo here (node_at nc))
        end
    end
  in
  let name = if datelines then "e-cube-torus-dateline" else "e-cube-torus" in
  Routing.create ~name topo f
