let check_chain topo s d chans =
  let rec walk here = function
    | [] ->
      if here <> d then invalid_arg "Table_routing: path does not end at its destination"
    | c :: rest ->
      if Topology.src topo c <> here then
        invalid_arg "Table_routing: path is not a connected channel chain";
      walk (Topology.dst topo c) rest
  in
  if chans = [] then invalid_arg "Table_routing: empty path";
  walk s chans

let of_paths ~name ~default topo paths =
  let table : (Routing.input * Topology.node, Topology.channel option) Hashtbl.t =
    Hashtbl.create 64
  in
  let bind key value =
    match Hashtbl.find_opt table key with
    | Some existing when existing <> value ->
      invalid_arg
        (Printf.sprintf
           "Table_routing %s: conflicting entries for the same (input, destination) key" name)
    | Some _ -> ()
    | None -> Hashtbl.add table key value
  in
  List.iter
    (fun (s, d, chans) ->
      check_chain topo s d chans;
      let rec steps input = function
        | [] -> bind (input, d) None
        | c :: rest ->
          bind (input, d) (Some c);
          steps (Routing.From c) rest
      in
      steps (Routing.Inject s) chans)
    paths;
  Routing.create ~name topo (fun input dest ->
      match Hashtbl.find_opt table (input, dest) with
      | Some decision -> decision
      | None ->
        if Routing.current_node topo input = dest then None else default input dest)
