open Builders

let next_hop ?(vc = 0) topo here n =
  let nxt = (here + 1) mod n in
  match Topology.find_channel ~vc topo here nxt with
  | Some c -> c
  | None -> invalid_arg "Ring_routing: ring channel missing (wrong vcs?)"

let clockwise coords =
  let { topo; dims; _ } = coords in
  let n = dims.(0) in
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None else Some (next_hop topo here n)
  in
  Routing.create ~name:"ring-clockwise" topo f

let dateline coords =
  let { topo; dims; _ } = coords in
  let n = dims.(0) in
  let f input dest =
    let here = Routing.current_node topo input in
    if here = dest then None
    else begin
      let vc =
        match input with
        | Routing.Inject _ -> if here = n - 1 then 1 else 0
        | Routing.From c ->
          (* once on vc 1 stay on vc 1; switch when crossing n-1 -> 0 *)
          if Topology.vc topo c = 1 then 1 else if here = n - 1 then 1 else 0
      in
      Some (next_hop ~vc topo here n)
    end
  in
  Routing.create ~name:"ring-dateline" topo f
