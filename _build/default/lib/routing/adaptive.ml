type t = {
  name : string;
  topo : Topology.t;
  f : Routing.input -> Topology.node -> Topology.channel list;
}

let create ~name topo f = { name; topo; f }

let name t = t.name

let topology t = t.topo

let options t input dest = t.f input dest

let of_oblivious rt =
  {
    name = Routing.name rt;
    topo = Routing.topology rt;
    f =
      (fun input dest ->
        match Routing.next rt input dest with Some c -> [ c ] | None -> []);
  }

let restrict_to_first t =
  Routing.create ~name:(t.name ^ "-first") t.topo (fun input dest ->
      match t.f input dest with c :: _ -> Some c | [] -> None)

(* Exhaustive walk of the reachable (input, destination) state graph.
   [on_state] is called once per reachable state with its option list. *)
let walk_states t on_state =
  let n = Topology.num_nodes t.topo in
  let seen = Hashtbl.create 1024 in
  let error = ref None in
  let rec visit input dest depth =
    if !error = None && not (Hashtbl.mem seen (input, dest)) then begin
      Hashtbl.add seen (input, dest) ();
      let here = Routing.current_node t.topo input in
      let opts = t.f input dest in
      on_state input dest opts;
      if here = dest then begin
        if opts <> [] then
          error :=
            Some
              (Printf.sprintf "%s: options offered at the destination %s" t.name
                 (Topology.node_name t.topo dest))
      end
      else if opts = [] then
        error :=
          Some
            (Printf.sprintf "%s: no option at %s toward %s" t.name
               (Topology.node_name t.topo here) (Topology.node_name t.topo dest))
      else if depth > 4 * Topology.num_channels t.topo then
        error := Some (t.name ^ ": choice sequence does not terminate (livelock?)")
      else
        List.iter
          (fun c ->
            if Topology.src t.topo c <> here then
              error :=
                Some
                  (Printf.sprintf "%s: option %s does not leave %s" t.name
                     (Topology.channel_name t.topo c) (Topology.node_name t.topo here))
            else visit (Routing.From c) dest (depth + 1))
          opts
    end
  in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then visit (Routing.Inject s) d 0
    done
  done;
  !error

(* Termination needs more than per-state nonemptiness: check there is no
   cycle in the reachable state graph (a message could be routed around
   forever).  For minimal algorithms distance strictly decreases so this
   holds; we verify it generically. *)
let validate t =
  match walk_states t (fun _ _ _ -> ()) with
  | Some e -> Error e
  | None ->
    (* cycle detection over reachable (channel, dest) states *)
    let nchan = Topology.num_channels t.topo in
    let n = Topology.num_nodes t.topo in
    let id c dest = (c * n) + dest in
    let succ v =
      let c = v / n and dest = v mod n in
      if Topology.dst t.topo c = dest then []
      else List.map (fun c' -> id c' dest) (t.f (Routing.From c) dest)
    in
    if Scc.has_cycle ~n:(nchan * n) ~succ then
      Error (t.name ^ ": a destination admits a routing loop (livelock)")
    else Ok ()

let cdg_edges t =
  let edges = Hashtbl.create 256 in
  ignore
    (walk_states t (fun input dest opts ->
         match input with
         | Routing.Inject _ -> ()
         | Routing.From c ->
           ignore dest;
           List.iter (fun c' -> Hashtbl.replace edges (c, c') ()) opts));
  Hashtbl.fold (fun e () acc -> e :: acc) edges []

(* ---- algorithms ---- *)

open Builders

let productive_channels ?(vc = 0) coords here dest =
  let { topo; dims; coord; node_at } = coords in
  let hc = coord here and dc = coord dest in
  let acc = ref [] in
  for d = Array.length dims - 1 downto 0 do
    if hc.(d) <> dc.(d) then begin
      let nc = Array.copy hc in
      nc.(d) <- (if hc.(d) < dc.(d) then hc.(d) + 1 else hc.(d) - 1);
      match Topology.find_channel ~vc topo here (node_at nc) with
      | Some c -> acc := c :: !acc
      | None -> ()
    end
  done;
  !acc

let fully_adaptive_minimal coords =
  create ~name:"fully-adaptive-minimal" coords.topo (fun input dest ->
      let here = Routing.current_node coords.topo input in
      if here = dest then [] else productive_channels coords here dest)

let escape_of_duato_mesh coords = Dimension_order.mesh coords

let duato_mesh coords =
  let escape = escape_of_duato_mesh coords in
  create ~name:"duato-mesh" coords.topo (fun input dest ->
      let here = Routing.current_node coords.topo input in
      if here = dest then []
      else begin
        let adaptive = productive_channels ~vc:1 coords here dest in
        let esc = match Routing.next escape input dest with Some c -> [ c ] | None -> [] in
        adaptive @ esc
      end)

let west_first_adaptive coords =
  let { topo; dims; coord; node_at } = coords in
  if Array.length dims <> 2 then invalid_arg "Adaptive.west_first_adaptive: 2-D mesh required";
  create ~name:"west-first-adaptive" topo (fun input dest ->
      let here = Routing.current_node topo input in
      if here = dest then []
      else begin
        let hc = coord here and dc = coord dest in
        if dc.(0) < hc.(0) then begin
          (* west hops are forced first (the prohibited turns are into west) *)
          let nc = Array.copy hc in
          nc.(0) <- hc.(0) - 1;
          match Topology.find_channel topo here (node_at nc) with
          | Some c -> [ c ]
          | None -> []
        end
        else productive_channels coords here dest
      end)
