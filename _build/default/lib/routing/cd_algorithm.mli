(** The paper's Cyclic Dependency routing algorithm (Section 4), generalized
    to every access-ring network produced by {!Paper_nets}.

    Routing rule (quoting the paper): if the hub [N*] is the source, send the
    message directly to the destination.  Otherwise route the message to
    [N*], which forwards it directly to the destination -- {e except} for the
    network's designated messages (e.g. [Src -> D1..D4] in Figure 1), which
    follow their drawn access-plus-ring paths.

    The resulting algorithm is oblivious, not suffix-closed, and has exactly
    one cycle in its channel dependency graph: the ring. *)

val of_net : Paper_nets.net -> Routing.t
(** Compile the network's routing algorithm. *)

val hub_default : Paper_nets.net -> Routing.input -> Topology.node -> Topology.channel option
(** Just the default rule (everything via the hub), exposed for building
    variants of the algorithm in tests and experiments. *)
