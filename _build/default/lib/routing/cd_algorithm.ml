let hub_default (net : Paper_nets.net) input dest =
  let topo = net.topo in
  let here = Routing.current_node topo input in
  if here = dest then None
  else if here = net.hub then Topology.find_channel topo net.hub dest
  else Topology.find_channel topo here net.hub

let of_net (net : Paper_nets.net) =
  let paths =
    List.map
      (fun (i : Paper_nets.intent) -> (i.i_src, i.i_dst, i.i_path))
      net.intents
  in
  Table_routing.of_paths
    ~name:("cd-" ^ net.n_spec.s_name)
    ~default:(hub_default net) net.topo paths
