(** Routing on a unidirectional ring.

    The clockwise algorithm is the canonical deadlocking example (its CDG is
    the ring itself, the cycle is reachable -- Theorem 2 territory: every
    message enters the cycle at its source, so there is no shared channel
    outside the cycle).  The dateline variant needs [~vcs:2] and is the
    canonical Dally-Seitz fix. *)

val clockwise : Builders.coords -> Routing.t
(** Always forward on vc 0.  Cyclic CDG; deadlock reachable. *)

val dateline : Builders.coords -> Routing.t
(** Forward on vc 0 until the message crosses node 0, then on vc 1.
    Acyclic CDG; deadlock-free. *)
