lib/routing/dimension_order.mli: Builders Routing
