lib/routing/ring_routing.mli: Builders Routing
