lib/routing/routing.ml: Format Hashtbl List Printf Topology
