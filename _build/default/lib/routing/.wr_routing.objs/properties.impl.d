lib/routing/properties.ml: Array Format Hashtbl List Printf Routing Topology
