lib/routing/routing.mli: Format Topology
