lib/routing/properties.mli: Format Routing
