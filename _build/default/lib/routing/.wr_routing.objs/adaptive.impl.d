lib/routing/adaptive.ml: Array Builders Dimension_order Hashtbl List Printf Routing Scc Topology
