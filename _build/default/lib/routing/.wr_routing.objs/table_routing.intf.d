lib/routing/table_routing.mli: Routing Topology
