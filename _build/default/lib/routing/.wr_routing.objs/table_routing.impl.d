lib/routing/table_routing.ml: Hashtbl List Printf Routing Topology
