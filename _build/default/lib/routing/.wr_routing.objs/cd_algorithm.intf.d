lib/routing/cd_algorithm.mli: Paper_nets Routing Topology
