lib/routing/dimension_order.ml: Array Builders Printf Routing Topology
