lib/routing/ring_routing.ml: Array Builders Routing Topology
