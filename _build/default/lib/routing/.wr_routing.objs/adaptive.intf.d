lib/routing/adaptive.mli: Builders Routing Topology
