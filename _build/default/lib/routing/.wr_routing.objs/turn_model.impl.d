lib/routing/turn_model.ml: Array Builders Routing Topology
