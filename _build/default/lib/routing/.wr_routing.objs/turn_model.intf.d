lib/routing/turn_model.mli: Builders Routing
