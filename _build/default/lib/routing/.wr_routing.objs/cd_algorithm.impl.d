lib/routing/cd_algorithm.ml: List Paper_nets Routing Table_routing Topology
