lib/search/model_checker.ml: Array Cd_algorithm Combinat Format Hashtbl List Paper_nets Queue Routing String Topology
