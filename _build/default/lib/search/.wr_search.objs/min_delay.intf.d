lib/search/min_delay.mli: Explorer Paper_nets
