lib/search/model_checker.mli: Format Paper_nets Routing Topology
