lib/search/explorer.ml: Array Combinat Engine Format Fun List Paper_nets Routing Schedule Topology
