lib/search/min_delay.ml: Array Cd_algorithm Explorer List Paper_nets
