lib/search/explorer.mli: Engine Format Paper_nets Routing Schedule Topology
