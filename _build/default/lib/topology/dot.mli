(** Graphviz export of topologies, optionally highlighting a set of channels
    (e.g. the channels of a dependency cycle, as in the paper's figures). *)

val to_dot : ?highlight:Topology.channel list -> ?label:string -> Topology.t -> string
(** Render as a [digraph].  Highlighted channels are drawn bold red. *)

val write_file : ?highlight:Topology.channel list -> ?label:string -> string -> Topology.t -> unit
(** Write the dot rendering to a file path. *)
