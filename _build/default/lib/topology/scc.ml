(* Iterative Tarjan SCC.  The explicit stack holds (vertex, remaining
   successors) frames so deep graphs cannot overflow the call stack. *)

let tarjan ~n ~succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let frames = ref [] in
  let push_frame v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    frames := (v, ref (succ v)) :: !frames
  in
  let finish v =
    if lowlink.(v) = index.(v) then begin
      let rec popc () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !comp_count;
          if w <> v then popc ()
      in
      popc ();
      incr comp_count
    end
  in
  let run root =
    push_frame root;
    let continue = ref true in
    while !continue do
      match !frames with
      | [] -> continue := false
      | (v, rest) :: tail -> (
        match !rest with
        | [] ->
          finish v;
          frames := tail;
          (match tail with
          | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ())
        | w :: ws ->
          rest := ws;
          if index.(w) = -1 then push_frame w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then run v
  done;
  (comp, !comp_count)

let has_cycle ~n ~succ =
  let comp, count = tarjan ~n ~succ in
  let size = Array.make count 0 in
  for v = 0 to n - 1 do
    size.(comp.(v)) <- size.(comp.(v)) + 1
  done;
  Array.exists (fun c -> c > 1) size
  ||
  let rec self v = v < n && (List.mem v (succ v) || self (v + 1)) in
  self 0
