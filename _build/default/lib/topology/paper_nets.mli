(** The paper's example networks, produced by one parameterized generator.

    All of Figures 1-3 and the Section-6 generalization share a shape we call
    an {e access-ring network}:

    - a source node [Src] and a hub node [N*], joined by the shared channel
      [cs : Src -> N*];
    - a directed ring of [ring_len] nodes (the highlighted cycle of the
      figures);
    - per message, an {e access path} of [access] channels from the hub (or
      from a dedicated source node, for messages that do not use [cs]) to its
      ring entry position, followed by [dist] ring channels to its
      destination;
    - hub connectivity ([v -> N*] and [N* -> v] for every node) so the
      network is strongly connected and the default route of the CD
      algorithm ("go to [N*], then straight to the destination") exists for
      every pair.

    The generator also computes each message's full intended path, which the
    routing layer compiles into an oblivious routing table. *)

type source_kind =
  | Shared  (** message is injected at [Src] and uses the shared channel [cs] *)
  | Own of string  (** message has its own source node with the given name *)

type msg_spec = {
  m_label : string;
  m_source : source_kind;
  m_access : int;  (** channels from hub (or own source) to the ring entry; >= 1 *)
  m_entry : int;  (** ring position where the message enters the cycle *)
  m_dist : int;  (** ring channels traversed; destination = entry + dist (mod ring) *)
}

type spec = {
  s_name : string;
  s_ring_len : int;
  s_msgs : msg_spec list;
}

type intent = {
  i_label : string;
  i_src : Topology.node;
  i_dst : Topology.node;
  i_path : Topology.channel list;  (** full path, first channel = injection channel *)
}

type net = {
  n_spec : spec;
  topo : Topology.t;
  source : Topology.node;  (** [Src] *)
  hub : Topology.node;  (** [N*] *)
  cs : Topology.channel;  (** the shared channel [Src -> N*] *)
  ring_nodes : Topology.node array;
  ring_channels : Topology.channel array;  (** index [i] is the channel [r_i -> r_i+1] *)
  intents : intent list;  (** one per message spec, same order *)
}

val build : spec -> net
(** Construct the network.  @raise Invalid_argument on malformed specs
    (bad ring positions, [dist] not in \[1, ring_len\], [access < 1],
    duplicate labels). *)

val check_blocking_chain : net -> (string, string) result
(** Verify the cyclic blocking structure the paper's deadlock configurations
    need: for consecutive messages [Mi], [Mi+1] (cyclically, in spec order)
    the channel into [Mi]'s destination lies strictly inside [Mi+1]'s
    in-cycle path.  [Ok desc] describes the chain; [Error why] explains the
    first violation. *)

val in_cycle_channels : net -> intent -> Topology.channel list
(** The suffix of the intent's path that lies on the ring. *)

val access_channel_count : net -> intent -> int
(** Number of channels from the shared channel (exclusive) to the ring
    (exclusive), i.e. the paper's "channels from [cs] to the cycle". *)

(** {1 The paper's concrete instances} *)

val family : int -> net
(** Section 6 generalization: [family p] has access distances [p+1]/[p+2],
    in-cycle distances [2p+1]/[2p+2] and ring length [8p].  [family 1] is
    exactly the Figure-1 network. *)

val figure1 : unit -> net
(** The Cyclic Dependency network of Figure 1 (= [family 1]). *)

val figure2 : unit -> net
(** Theorem 4 / Figure 2: a cycle whose outside shared channel is used by
    only two messages (a reachable deadlock). *)

val figure3 : [ `A | `B | `C | `D | `E | `F ] -> net
(** The six three-sharer networks of Figure 3.  Cases [`A] and [`B] are
    false resource cycles; [`C]-[`F] admit deadlock.  [`F] adds a fourth
    message from a dedicated source that does not use the shared channel. *)
