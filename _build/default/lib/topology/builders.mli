(** Standard interconnection topologies.

    Every builder returns the topology together with a coordinate scheme so
    routing algorithms can recover node positions without re-parsing names.
    [vcs] is the number of virtual channels per unidirectional physical link
    (parallel arcs with vc indices [0..vcs-1]); default 1. *)

type coords = {
  topo : Topology.t;
  dims : int array;  (** radix per dimension, e.g. [| 4; 4 |] for a 4x4 grid *)
  coord : Topology.node -> int array;  (** node -> coordinates *)
  node_at : int array -> Topology.node;  (** coordinates -> node *)
}

val line : ?vcs:int -> int -> coords
(** 1-D mesh with [n] nodes, bidirectional links. *)

val ring : ?vcs:int -> ?unidirectional:bool -> int -> coords
(** [n]-node ring.  [unidirectional] (default false) gives a directed cycle
    only, which is the textbook deadlocking substrate. *)

val mesh : ?vcs:int -> int list -> coords
(** k-ary n-dimensional mesh; [mesh [4;4]] is a 4x4 grid. *)

val torus : ?vcs:int -> int list -> coords
(** Same, with wraparound links in every dimension. *)

val hypercube : ?vcs:int -> int -> coords
(** [hypercube d] is the d-cube on [2^d] nodes. *)

val complete : ?vcs:int -> int -> coords
(** Fully connected network on [n] nodes. *)

val star : ?vcs:int -> int -> coords
(** Hub node 0 connected bidirectionally to [n] leaves. *)
