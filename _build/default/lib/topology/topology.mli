(** Interconnection networks as strongly connected directed multigraphs
    (Definition 1 of the paper).

    Vertices are processing nodes; arcs are unidirectional channels.  A
    physical channel with several virtual channels is represented as parallel
    arcs distinguished by their [vc] index.  Nodes and channels are dense
    integer ids, suitable as array indices throughout the library. *)

type node = int
type channel = int

type t

(** {1 Construction} *)

val create : unit -> t

val add_node : t -> string -> node
(** [add_node t name] registers a node; names must be unique. *)

val add_channel : ?vc:int -> ?name:string -> t -> node -> node -> channel
(** [add_channel t src dst] adds a unidirectional channel.  Parallel channels
    between the same pair must carry distinct [vc] indices (default [0]).
    Self-loops are rejected. *)

val add_bidirectional : ?vc:int -> t -> node -> node -> channel * channel
(** Both directions, sharing the [vc] index. *)

(** {1 Inspection} *)

val num_nodes : t -> int
val num_channels : t -> int
val node_name : t -> node -> string
val node_of_name : t -> string -> node
(** @raise Not_found if no node has this name. *)

val channel_name : t -> channel -> string
(** Human-readable, e.g. ["a->b#1"]. *)

val src : t -> channel -> node
val dst : t -> channel -> node
val vc : t -> channel -> int

val out_channels : t -> node -> channel list
(** In insertion order. *)

val in_channels : t -> node -> channel list

val find_channel : ?vc:int -> t -> node -> node -> channel option
(** Channel from [src] to [dst] with the given [vc] index, if any. *)

val nodes : t -> node list
val channels : t -> channel list
val iter_channels : (channel -> unit) -> t -> unit

(** {1 Graph queries} *)

val strongly_connected : t -> bool
(** Definition 1 requires the network to be strongly connected. *)

val distance : t -> node -> node -> int
(** Hop count of a shortest directed path; [max_int] when unreachable. *)

val distance_matrix : t -> int array array
(** [m.(u).(v)] = hop distance; [max_int] when unreachable. *)

val shortest_path : t -> node -> node -> channel list option
(** Channels of one shortest path (BFS order tie-break). *)
