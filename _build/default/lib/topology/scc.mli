(** Tarjan's strongly connected components over an implicit graph.

    Shared by the topology layer (strong connectivity of networks) and the
    CDG layer (cyclicity of dependency graphs). *)

val tarjan : n:int -> succ:(int -> int list) -> int array * int
(** [tarjan ~n ~succ] returns [(comp, count)]: [comp.(v)] is the component id
    of vertex [v] (ids are in reverse topological order of the condensation:
    a component only has edges into components with {e smaller} ids), and
    [count] is the number of components.  Iterative, safe on large graphs. *)

val has_cycle : n:int -> succ:(int -> int list) -> bool
(** True iff some component has more than one vertex or a self-loop exists. *)
