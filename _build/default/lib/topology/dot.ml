let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(highlight = []) ?label t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph network {\n";
  (match label with
  | Some l -> Buffer.add_string buf (Printf.sprintf "  label=\"%s\";\n" (escape l))
  | None -> ());
  Buffer.add_string buf "  node [shape=circle];\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape (Topology.node_name t v))))
    (Topology.nodes t);
  Topology.iter_channels
    (fun c ->
      let attrs =
        if List.mem c highlight then " [color=red, penwidth=2.0]"
        else if Topology.vc t c > 0 then
          Printf.sprintf " [style=dashed, label=\"vc%d\"]" (Topology.vc t c)
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d%s;\n" (Topology.src t c) (Topology.dst t c) attrs))
    t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?highlight ?label path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight ?label t))
