type coords = {
  topo : Topology.t;
  dims : int array;
  coord : Topology.node -> int array;
  node_at : int array -> Topology.node;
}

let coord_name prefix c =
  prefix ^ "(" ^ String.concat "," (List.map string_of_int (Array.to_list c)) ^ ")"

(* Generic k-ary n-dim grid; [wrap] adds the wraparound links of a torus. *)
let grid ?(vcs = 1) ~wrap dims_list =
  let dims = Array.of_list dims_list in
  if Array.length dims = 0 then invalid_arg "Builders.grid: no dimensions";
  Array.iter (fun k -> if k < 2 then invalid_arg "Builders.grid: radix < 2") dims;
  let n = Array.fold_left ( * ) 1 dims in
  let topo = Topology.create () in
  let coord_of_id id =
    let c = Array.make (Array.length dims) 0 in
    let rest = ref id in
    for d = Array.length dims - 1 downto 0 do
      c.(d) <- !rest mod dims.(d);
      rest := !rest / dims.(d)
    done;
    c
  in
  let id_of_coord c =
    let id = ref 0 in
    for d = 0 to Array.length dims - 1 do
      if c.(d) < 0 || c.(d) >= dims.(d) then invalid_arg "Builders: coordinate out of range";
      id := (!id * dims.(d)) + c.(d)
    done;
    !id
  in
  for id = 0 to n - 1 do
    ignore (Topology.add_node topo (coord_name "n" (coord_of_id id)))
  done;
  for id = 0 to n - 1 do
    let c = coord_of_id id in
    for d = 0 to Array.length dims - 1 do
      let link nc =
        let other = id_of_coord nc in
        for v = 0 to vcs - 1 do
          ignore (Topology.add_channel ~vc:v topo id other)
        done
      in
      if c.(d) + 1 < dims.(d) then begin
        let nc = Array.copy c in
        nc.(d) <- c.(d) + 1;
        link nc
      end;
      if c.(d) > 0 then begin
        let nc = Array.copy c in
        nc.(d) <- c.(d) - 1;
        link nc
      end;
      if wrap && dims.(d) > 2 then begin
        if c.(d) = dims.(d) - 1 then begin
          let nc = Array.copy c in
          nc.(d) <- 0;
          link nc
        end;
        if c.(d) = 0 then begin
          let nc = Array.copy c in
          nc.(d) <- dims.(d) - 1;
          link nc
        end
      end
    done
  done;
  { topo; dims; coord = coord_of_id; node_at = id_of_coord }

let mesh ?vcs dims = grid ?vcs ~wrap:false dims

let torus ?vcs dims = grid ?vcs ~wrap:true dims

let line ?vcs n = mesh ?vcs [ n ]

let ring ?(vcs = 1) ?(unidirectional = false) n =
  if n < 3 then invalid_arg "Builders.ring: need at least 3 nodes";
  if unidirectional then begin
    let topo = Topology.create () in
    for i = 0 to n - 1 do
      ignore (Topology.add_node topo (coord_name "n" [| i |]))
    done;
    for i = 0 to n - 1 do
      for v = 0 to vcs - 1 do
        ignore (Topology.add_channel ~vc:v topo i ((i + 1) mod n))
      done
    done;
    {
      topo;
      dims = [| n |];
      coord = (fun id -> [| id |]);
      node_at = (fun c -> c.(0));
    }
  end
  else torus ~vcs [ n ]

let hypercube ?(vcs = 1) d =
  if d < 1 then invalid_arg "Builders.hypercube: dimension < 1";
  let n = 1 lsl d in
  let topo = Topology.create () in
  let coord_of_id id = Array.init d (fun b -> (id lsr (d - 1 - b)) land 1) in
  let id_of_coord c =
    let id = ref 0 in
    Array.iter (fun bit -> id := (!id lsl 1) lor (bit land 1)) c;
    !id
  in
  for id = 0 to n - 1 do
    ignore (Topology.add_node topo (coord_name "h" (coord_of_id id)))
  done;
  for id = 0 to n - 1 do
    for b = 0 to d - 1 do
      let other = id lxor (1 lsl b) in
      for v = 0 to vcs - 1 do
        ignore (Topology.add_channel ~vc:v topo id other)
      done
    done
  done;
  { topo; dims = Array.make d 2; coord = coord_of_id; node_at = id_of_coord }

let complete ?(vcs = 1) n =
  if n < 2 then invalid_arg "Builders.complete: need at least 2 nodes";
  let topo = Topology.create () in
  for i = 0 to n - 1 do
    ignore (Topology.add_node topo (coord_name "n" [| i |]))
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        for v = 0 to vcs - 1 do
          ignore (Topology.add_channel ~vc:v topo i j)
        done
    done
  done;
  { topo; dims = [| n |]; coord = (fun id -> [| id |]); node_at = (fun c -> c.(0)) }

let star ?(vcs = 1) n =
  if n < 2 then invalid_arg "Builders.star: need at least 2 leaves";
  let topo = Topology.create () in
  let hub = Topology.add_node topo "hub" in
  for i = 1 to n do
    let leaf = Topology.add_node topo (coord_name "leaf" [| i |]) in
    for v = 0 to vcs - 1 do
      ignore (Topology.add_channel ~vc:v topo hub leaf);
      ignore (Topology.add_channel ~vc:v topo leaf hub)
    done
  done;
  { topo; dims = [| n + 1 |]; coord = (fun id -> [| id |]); node_at = (fun c -> c.(0)) }
