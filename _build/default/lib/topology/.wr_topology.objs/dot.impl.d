lib/topology/dot.ml: Buffer Fun List Printf String Topology
