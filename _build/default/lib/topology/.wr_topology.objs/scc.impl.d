lib/topology/scc.ml: Array List
