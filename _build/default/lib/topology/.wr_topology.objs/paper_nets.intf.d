lib/topology/paper_nets.mli: Topology
