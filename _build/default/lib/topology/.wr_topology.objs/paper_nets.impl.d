lib/topology/paper_nets.ml: Array List Printf String Topology
