lib/topology/builders.ml: Array List String Topology
