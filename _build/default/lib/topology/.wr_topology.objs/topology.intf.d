lib/topology/topology.mli:
