lib/topology/dot.mli: Topology
