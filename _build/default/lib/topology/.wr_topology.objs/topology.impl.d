lib/topology/topology.ml: Array Fun Hashtbl List Printf Queue Scc Vec
