lib/topology/builders.mli: Topology
