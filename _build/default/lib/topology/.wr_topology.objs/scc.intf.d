lib/topology/scc.mli:
