type source_kind = Shared | Own of string

type msg_spec = {
  m_label : string;
  m_source : source_kind;
  m_access : int;
  m_entry : int;
  m_dist : int;
}

type spec = {
  s_name : string;
  s_ring_len : int;
  s_msgs : msg_spec list;
}

type intent = {
  i_label : string;
  i_src : Topology.node;
  i_dst : Topology.node;
  i_path : Topology.channel list;
}

type net = {
  n_spec : spec;
  topo : Topology.t;
  source : Topology.node;
  hub : Topology.node;
  cs : Topology.channel;
  ring_nodes : Topology.node array;
  ring_channels : Topology.channel array;
  intents : intent list;
}

let validate spec =
  let l = spec.s_ring_len in
  if l < 3 then invalid_arg "Paper_nets: ring_len < 3";
  if spec.s_msgs = [] then invalid_arg "Paper_nets: no messages";
  let labels = List.map (fun m -> m.m_label) spec.s_msgs in
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    invalid_arg "Paper_nets: duplicate message labels";
  List.iter
    (fun m ->
      if m.m_access < 1 then invalid_arg "Paper_nets: access < 1";
      if m.m_entry < 0 || m.m_entry >= l then invalid_arg "Paper_nets: entry out of range";
      if m.m_dist < 1 || m.m_dist > l then invalid_arg "Paper_nets: dist out of range")
    spec.s_msgs

(* Ring node names reflect their roles in the figures: entry positions are
   P<i>, destination positions D<i>, plain positions R<pos>. *)
let ring_node_names spec =
  let l = spec.s_ring_len in
  let names = Array.make l "" in
  List.iteri
    (fun i m -> names.(m.m_entry) <- names.(m.m_entry) ^ Printf.sprintf "P%d" (i + 1))
    spec.s_msgs;
  List.iteri
    (fun i m ->
      let d = (m.m_entry + m.m_dist) mod l in
      names.(d) <- names.(d) ^ Printf.sprintf "D%d" (i + 1))
    spec.s_msgs;
  Array.mapi (fun pos n -> if n = "" then Printf.sprintf "R%d" pos else n) names

let build spec =
  validate spec;
  let l = spec.s_ring_len in
  let topo = Topology.create () in
  let source = Topology.add_node topo "Src" in
  let hub = Topology.add_node topo "N*" in
  let names = ring_node_names spec in
  let ring_nodes = Array.map (Topology.add_node topo) names in
  let ring_channels =
    Array.init l (fun i -> Topology.add_channel topo ring_nodes.(i) ring_nodes.((i + 1) mod l))
  in
  let cs = Topology.add_channel topo source hub in
  (* Access chains.  The first channel out of the chain's origin is reused if
     it already exists (several messages may share an access prefix). *)
  let ensure_channel a b =
    match Topology.find_channel topo a b with
    | Some c -> c
    | None -> Topology.add_channel topo a b
  in
  let access_chain origin label access entry =
    let target = ring_nodes.(entry) in
    if access = 1 then [ ensure_channel origin target ]
    else begin
      let rec chain prev k acc =
        if k = access - 1 then List.rev (ensure_channel prev target :: acc)
        else begin
          let mid = Topology.add_node topo (Printf.sprintf "a%s_%d" label (k + 1)) in
          chain mid (k + 1) (ensure_channel prev mid :: acc)
        end
      in
      chain origin 0 []
    end
  in
  let intents =
    List.map
      (fun m ->
        let dest_pos = (m.m_entry + m.m_dist) mod l in
        let ring_part = List.init m.m_dist (fun k -> ring_channels.((m.m_entry + k) mod l)) in
        match m.m_source with
        | Shared ->
          let chain = access_chain hub m.m_label m.m_access m.m_entry in
          {
            i_label = m.m_label;
            i_src = source;
            i_dst = ring_nodes.(dest_pos);
            i_path = (cs :: chain) @ ring_part;
          }
        | Own name ->
          let own = Topology.add_node topo name in
          let chain = access_chain own m.m_label m.m_access m.m_entry in
          {
            i_label = m.m_label;
            i_src = own;
            i_dst = ring_nodes.(dest_pos);
            i_path = chain @ ring_part;
          })
      spec.s_msgs
  in
  (* Hub connectivity for strong connectivity and default routes. *)
  List.iter
    (fun v ->
      if v <> hub then begin
        ignore (ensure_channel v hub);
        ignore (ensure_channel hub v)
      end)
    (Topology.nodes topo);
  { n_spec = spec; topo; source; hub; cs; ring_nodes; ring_channels; intents }

let in_cycle_channels net intent =
  let on_ring c = Array.exists (fun r -> r = c) net.ring_channels in
  List.filter on_ring intent.i_path

let access_channel_count net intent =
  let on_ring c = Array.exists (fun r -> r = c) net.ring_channels in
  let rec count n = function
    | [] -> n
    | c :: rest -> if on_ring c then n else count (n + if c = net.cs then 0 else 1) rest
  in
  count 0 intent.i_path

let check_blocking_chain net =
  let intents = Array.of_list net.intents in
  let n = Array.length intents in
  let l = Array.length net.ring_channels in
  let spec_msgs = Array.of_list net.n_spec.s_msgs in
  let errors = ref [] in
  let descs = ref [] in
  for i = 0 to n - 1 do
    let mi = spec_msgs.(i) and mj = spec_msgs.((i + 1) mod n) in
    (* Channel into Mi's destination is ring channel at position dest-1. *)
    let dest = (mi.m_entry + mi.m_dist) mod l in
    let into_dest = (dest - 1 + l) mod l in
    (* Mj's in-cycle channels are positions entry .. entry+dist-1. *)
    let covers =
      let rec scan k = k < mj.m_dist && ((mj.m_entry + k) mod l = into_dest || scan (k + 1)) in
      scan 0
    in
    if covers then
      descs :=
        Printf.sprintf "%s blocked by %s at ring channel %d" mi.m_label mj.m_label into_dest
        :: !descs
    else
      errors :=
        Printf.sprintf "%s's destination channel (ring %d) is not on %s's in-cycle path"
          mi.m_label into_dest mj.m_label
        :: !errors
  done;
  match !errors with
  | [] -> Ok (String.concat "; " (List.rev !descs))
  | e :: _ -> Error e

(* Section-6 family.  [family 1] reproduces the Figure-1 geometry: ring
   P1(0) D4(1) P2(2) D1(3) P3(4) P4(5) D2(6) D3(7), access distances 2/3,
   in-cycle distances 3/4. *)
let family p =
  if p < 1 then invalid_arg "Paper_nets.family: p < 1";
  let l = 8 * p in
  let spec =
    {
      s_name = Printf.sprintf "family-%d" p;
      s_ring_len = l;
      s_msgs =
        [
          { m_label = "M1"; m_source = Shared; m_access = p + 1; m_entry = 0; m_dist = (2 * p) + 1 };
          { m_label = "M2"; m_source = Shared; m_access = p + 2; m_entry = 2 * p; m_dist = (2 * p) + 2 };
          { m_label = "M3"; m_source = Shared; m_access = p + 1; m_entry = 4 * p; m_dist = (2 * p) + 1 };
          {
            m_label = "M4";
            m_source = Shared;
            m_access = p + 2;
            m_entry = (6 * p) - 1;
            m_dist = (2 * p) + 2;
          };
        ];
    }
  in
  build spec

let figure1 () =
  let net = family 1 in
  { net with n_spec = { net.n_spec with s_name = "figure1" } }

let figure2 () =
  build
    {
      s_name = "figure2";
      s_ring_len = 6;
      s_msgs =
        [
          { m_label = "M1"; m_source = Shared; m_access = 2; m_entry = 0; m_dist = 4 };
          { m_label = "M2"; m_source = Shared; m_access = 3; m_entry = 3; m_dist = 4 };
        ];
    }

(* Figure-3 instances.  The OCR of the paper loses the exact drawn
   geometries, so these are concrete networks constructed (and calibrated
   against the exhaustive schedule search) to exhibit the behaviour the
   text ascribes to each sub-figure: (a) and (b) are false resource cycles,
   (c)-(f) admit deadlock, each via the mechanism the paper describes.
   Sharer accesses are 2/3/4 throughout; entries are listed in ring order. *)
let figure3 case =
  let mk name msgs ring_len = build { s_name = name; s_ring_len = ring_len; s_msgs = msgs } in
  let shared label access entry dist =
    { m_label = label; m_source = Shared; m_access = access; m_entry = entry; m_dist = dist }
  in
  match case with
  | `A ->
    (* All three sharers use more channels within the cycle (5) than from cs
       to the cycle (2/3/4), and cyclically the longest-access message (M3)
       is followed by the shortest (M1).  Unreachable: the serial order
       through cs can never let every blocker arrive in time. *)
    mk "figure3a" [ shared "M1" 2 0 5; shared "M2" 3 3 5; shared "M3" 4 6 5 ] 9
  | `B ->
    (* The shortest-access sharer (M1) uses no more channels within the
       cycle (2) than from cs to the cycle (2), so it could be parked
       outside the cycle -- but every message that could hold its entry
       channel also uses cs and hence cannot block it long enough.  Still
       unreachable. *)
    mk "figure3b" [ shared "M1" 2 0 2; shared "M2" 3 1 4; shared "M3" 4 4 5 ] 8
  | `C ->
    (* Condition-4 mechanism: the longest-access sharer (M3) uses no more
       channels within the cycle (3) than from cs to the cycle (4), and its
       cyclic predecessor MX does NOT use cs.  A long MX parks M3 outside
       the cycle indefinitely, reducing the situation to two cs-sharers
       (Theorem 4) -> deadlock. *)
    mk "figure3c"
      [
        { m_label = "MX"; m_source = Own "SX"; m_access = 2; m_entry = 0; m_dist = 6 };
        shared "M3" 4 2 3;
        shared "M1" 2 5 4;
        shared "M2" 3 8 5;
      ]
      12
  | `D ->
    (* Ordering mechanism: cyclically the longest-access sharer (M2, access
       4) is followed by the middle one (M3, access 3) -- the paper's
       condition 1 fails.  Injecting in cycle order with minimal lengths
       lets every blocker arrive exactly in time -> deadlock. *)
    mk "figure3d" [ shared "M1" 2 0 4; shared "M2" 4 3 4; shared "M3" 3 6 4 ] 9
  | `E ->
    (* Interposition mechanism (condition 7): a non-cs message MX interposed
       between the longest-access sharer (M3) and the shortest (M1) spans
       deep into the ring, providing the slack the cs serialization denies
       -> deadlock. *)
    mk "figure3e"
      [
        shared "M3" 4 0 4;
        { m_label = "MX"; m_source = Own "SX"; m_access = 2; m_entry = 3; m_dist = 7 };
        shared "M1" 2 5 4;
        shared "M2" 3 8 5;
      ]
      12
  | `F ->
    (* The paper's fourth-message case: S4->D4 does not use the shared
       channel; injected late, it bridges M1 and M2 (condition 8 fails)
       -> deadlock. *)
    mk "figure3f"
      [
        shared "M3" 4 0 4;
        shared "M1" 2 3 3;
        { m_label = "M4"; m_source = Own "S4"; m_access = 2; m_entry = 5; m_dist = 4 };
        shared "M2" 3 8 5;
      ]
      12
