(** Static analysis of a CDG cycle: which messages could populate it, which
    channels they share, and which of the paper's theorems decides whether
    the cycle is a genuine deadlock risk or a false resource cycle.

    A message {e supports} the cycle when its path uses at least one cycle
    channel.  For a deadlock configuration each participating message must
    occupy a contiguous run of cycle channels, so messages whose
    intersection with the cycle is not one contiguous run are flagged. *)

type cycle_message = {
  cm_msg : Cdg.message;
  cm_label : string;  (** "src->dst" with node names *)
  cm_entry : int;  (** index into the cycle of the first cycle channel used *)
  cm_span : int;  (** number of consecutive cycle channels used *)
  cm_access : int;  (** channels strictly between the shared channel (or the source if none) and the cycle *)
  cm_pre_cycle : Topology.channel list;  (** the path prefix before the cycle *)
  cm_contiguous : bool;
}

type shared_channel = {
  sc_channel : Topology.channel;
  sc_users : Cdg.message list;  (** cycle messages using it *)
  sc_inside : bool;  (** the channel is itself on the cycle *)
}

type analysis = {
  a_cycle : Topology.channel list;
  a_messages : cycle_message list;
  a_shared : shared_channel list;  (** channels used by >= 2 cycle messages *)
  a_outside_shared : shared_channel list;  (** the subset outside the cycle *)
}

type verdict =
  | Deadlock_reachable of string
      (** a theorem guarantees the cycle can be populated into a deadlock *)
  | Unreachable of string  (** a theorem guarantees a false resource cycle *)
  | Needs_search of string  (** outside the characterized cases; defer to simulation *)

val analyze : Cdg.t -> Topology.channel list -> analysis

val classify : ?minimal:bool -> ?suffix_closed:bool -> Cdg.t -> Topology.channel list -> analysis * verdict
(** Apply Theorems 2-5 and Corollaries 1-3 in order.  [minimal] and
    [suffix_closed] are the routing algorithm's properties (pass the checker
    results; they default to [false] = make no assumption). *)

val pp_verdict : Format.formatter -> verdict -> unit
