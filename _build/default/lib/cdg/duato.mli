(** Duato's sufficient condition for deadlock-free adaptive routing
    (the adaptive-side theory the paper builds on, Section 2).

    An adaptive algorithm is deadlock-free if it has a {e routing
    subfunction} (the escape channels) that is connected -- offered in every
    reachable routing state -- and whose {e extended} channel dependency
    graph is acyclic.  The extended CDG contains, besides the direct
    dependencies between consecutive escape channels, the {e indirect}
    dependencies: escape channel [c1] to escape channel [c2] when some
    message can use [c1], then one or more adaptive channels, then [c2].

    This module checks both parts mechanically over the reachable state
    graph of the adaptive function. *)

type report = {
  escape_connected : bool;
      (** the escape next-channel is offered in every reachable state *)
  connected_witness : string option;  (** a state where it is not *)
  direct_edges : int;  (** escape-to-escape direct dependencies *)
  indirect_edges : int;  (** escape-to-escape dependencies through adaptive channels *)
  extended_acyclic : bool;
  deadlock_free : bool;  (** both conditions hold *)
}

val check : Adaptive.t -> escape:Routing.t -> report
(** The escape subfunction must be defined on the same topology; it is
    queried as a node-based function ([Routing.next] on the adaptive
    state's input). *)

val pp : Format.formatter -> report -> unit
