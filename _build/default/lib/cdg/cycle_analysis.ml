type cycle_message = {
  cm_msg : Cdg.message;
  cm_label : string;
  cm_entry : int;
  cm_span : int;
  cm_access : int;
  cm_pre_cycle : Topology.channel list;
  cm_contiguous : bool;
}

type shared_channel = {
  sc_channel : Topology.channel;
  sc_users : Cdg.message list;
  sc_inside : bool;
}

type analysis = {
  a_cycle : Topology.channel list;
  a_messages : cycle_message list;
  a_shared : shared_channel list;
  a_outside_shared : shared_channel list;
}

type verdict =
  | Deadlock_reachable of string
  | Unreachable of string
  | Needs_search of string

let pp_verdict ppf = function
  | Deadlock_reachable why -> Format.fprintf ppf "deadlock reachable: %s" why
  | Unreachable why -> Format.fprintf ppf "unreachable (false resource cycle): %s" why
  | Needs_search why -> Format.fprintf ppf "needs search: %s" why

(* A message's use of the cycle: split its path into the prefix before the
   first cycle channel and the cycle channels themselves; check the cycle
   channels form one contiguous run both on the path and around the cycle. *)
let message_view topo cycle_index cycle_len path msg =
  let label (s, d) =
    Printf.sprintf "%s->%s" (Topology.node_name topo s) (Topology.node_name topo d)
  in
  let on_cycle c = cycle_index c >= 0 in
  let pre, rest =
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | c :: tl when on_cycle c -> (List.rev acc, c :: tl)
      | c :: tl -> split (c :: acc) tl
    in
    split [] path
  in
  let cycle_part, tail_after =
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | c :: tl when on_cycle c -> split (c :: acc) tl
      | rest -> (List.rev acc, rest)
    in
    split [] rest
  in
  (* contiguous along the cycle: each next channel is the cyclic successor *)
  let rec consecutive = function
    | c1 :: (c2 :: _ as tl) ->
      (cycle_index c2 = (cycle_index c1 + 1) mod cycle_len) && consecutive tl
    | _ -> true
  in
  let contiguous =
    cycle_part <> []
    && (not (List.exists on_cycle tail_after))
    && consecutive cycle_part
  in
  match cycle_part with
  | [] -> None
  | first :: _ ->
    Some
      {
        cm_msg = msg;
        cm_label = label msg;
        cm_entry = cycle_index first;
        cm_span = List.length cycle_part;
        cm_access = List.length pre;
        cm_pre_cycle = pre;
        cm_contiguous = contiguous;
      }

let analyze cdg cycle =
  let topo = Cdg.topology cdg in
  let cycle_arr = Array.of_list cycle in
  let cycle_len = Array.length cycle_arr in
  let index_tbl = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace index_tbl c i) cycle_arr;
  let cycle_index c = match Hashtbl.find_opt index_tbl c with Some i -> i | None -> -1 in
  (* candidate messages: users of any cycle channel *)
  let candidates =
    List.sort_uniq compare (List.concat_map (fun c -> Cdg.channel_users cdg c) cycle)
  in
  let messages =
    List.filter_map
      (fun msg -> message_view topo cycle_index cycle_len (Cdg.path_of cdg msg) msg)
      candidates
  in
  (* channels used by at least two cycle messages *)
  let usage = Hashtbl.create 64 in
  List.iter
    (fun cm ->
      List.iter
        (fun c ->
          let cur = match Hashtbl.find_opt usage c with Some l -> l | None -> [] in
          Hashtbl.replace usage c (cm.cm_msg :: cur))
        (Cdg.path_of cdg cm.cm_msg))
    messages;
  let shared =
    Hashtbl.fold
      (fun c users acc ->
        if List.length users >= 2 then
          { sc_channel = c; sc_users = List.rev users; sc_inside = cycle_index c >= 0 } :: acc
        else acc)
      usage []
    |> List.sort (fun a b -> compare a.sc_channel b.sc_channel)
  in
  let outside = List.filter (fun sc -> not sc.sc_inside) shared in
  { a_cycle = cycle; a_messages = messages; a_shared = shared; a_outside_shared = outside }

(* Access distance of a cycle message relative to a given shared channel:
   number of pre-cycle channels strictly after the shared channel. *)
let access_after_shared cm sc =
  let rec count seen n = function
    | [] -> if seen then Some n else None
    | c :: rest ->
      if c = sc.sc_channel then count true 0 rest
      else count seen (if seen then n + 1 else n) rest
  in
  count false 0 cm.cm_pre_cycle

let classify ?(minimal = false) ?(suffix_closed = false) cdg cycle =
  let analysis = analyze cdg cycle in
  let verdict =
    if suffix_closed then
      Deadlock_reachable
        "Corollary 2: a suffix-closed oblivious algorithm has no unreachable configurations"
    else if List.exists (fun cm -> not cm.cm_contiguous) analysis.a_messages then
      Needs_search "a supporting message enters the cycle more than once"
    else
      match analysis.a_outside_shared with
      | [] ->
        Deadlock_reachable
          "Theorem 2: every shared channel is within the cycle, so the configuration is \
           reachable"
      | [ sc ] -> begin
        let sharers =
          List.filter
            (fun cm -> List.mem cm.cm_msg sc.sc_users)
            analysis.a_messages
        in
        let all_use = List.length sharers = List.length analysis.a_messages in
        match List.length sharers with
        | 0 | 1 ->
          Deadlock_reachable
            "Theorem 2: no channel outside the cycle is shared by two or more cycle messages"
        | 2 ->
          Deadlock_reachable
            "Theorem 4: a channel outside the cycle shared by only two messages always \
             yields a deadlock"
        | 3 ->
          if minimal && all_use then
            Deadlock_reachable
              "Theorem 3: minimal routing with a single shared channel used by all cycle \
               messages cannot form an unreachable configuration"
          else begin
            let to_sharer cm =
              match access_after_shared cm sc with
              | Some a ->
                {
                  Theorem5.sh_label = cm.cm_label;
                  sh_access = a;
                  sh_entry = cm.cm_entry;
                  sh_span = cm.cm_span;
                }
              | None ->
                {
                  Theorem5.sh_label = cm.cm_label;
                  sh_access = cm.cm_access;
                  sh_entry = cm.cm_entry;
                  sh_span = cm.cm_span;
                }
            in
            let others =
              List.filter_map
                (fun cm ->
                  if List.mem cm.cm_msg sc.sc_users then None
                  else
                    Some
                      {
                        Theorem5.ot_entry = cm.cm_entry;
                        ot_span = cm.cm_span;
                        ot_uses_shared = false;
                      })
                analysis.a_messages
            in
            let input =
              {
                Theorem5.cycle_len = List.length cycle;
                sharers = List.map to_sharer sharers;
                others;
              }
            in
            let conditions, unreachable = Theorem5.check input in
            let failed =
              List.filter_map
                (fun (c : Theorem5.condition) ->
                  if c.c_holds then None else Some (string_of_int c.c_index))
                conditions
            in
            if unreachable then
              Unreachable "Theorem 5: the eight conditions hold (three sharers)"
            else
              Deadlock_reachable
                (Printf.sprintf "Theorem 5: condition(s) %s violated (three sharers)"
                   (String.concat "," failed))
          end
        | _ ->
          if minimal && all_use then
            Deadlock_reachable
              "Theorem 3: minimal routing with a single shared channel used by all cycle \
               messages cannot form an unreachable configuration"
          else
            Needs_search
              "four or more messages share the outside channel: beyond Theorem 5 (Figure-1 \
               territory)"
      end
      | _ -> Needs_search "multiple shared channels outside the cycle"
  in
  (analysis, verdict)
