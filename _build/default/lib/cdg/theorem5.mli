(** The eight conditions of Theorem 5: when exactly three messages of a CDG
    cycle share a channel outside the cycle, the cycle is an unreachable
    configuration iff all eight hold.

    The available text of the paper loses the message subscripts inside the
    condition statements to OCR, so this module encodes a careful
    reconstruction stated in terms of the three sharers ordered by access
    distance -- [Mmax] (most channels from the shared channel to the cycle),
    [Mmid], [Mmin] (fewest) -- and is cross-validated against the exhaustive
    schedule search on the Figure-3 networks by the experiment suite
    (EXP-T5).  Each condition is reported individually so disagreements are
    visible. *)

type sharer = {
  sh_label : string;
  sh_access : int;  (** channels from the shared channel (exclusive) to the cycle *)
  sh_entry : int;  (** cycle index of its first cycle channel *)
  sh_span : int;  (** cycle channels on its path *)
}

type other = {
  ot_entry : int;
  ot_span : int;
  ot_uses_shared : bool;
}

type input = {
  cycle_len : int;
  sharers : sharer list;  (** exactly three *)
  others : other list;  (** remaining cycle messages *)
}

type condition = {
  c_index : int;  (** 1..8, the paper's numbering *)
  c_text : string;
  c_holds : bool;
}

val check : input -> condition list * bool
(** The eight reconstructed conditions, individually reported, and the
    checker's verdict ([true] = unreachable configuration, i.e. false
    resource cycle).  The verdict evaluates conditions 1 and 3 jointly --
    unreachability requires that no rotation of the sharers' cyclic entry
    order has strictly decreasing access distances (with pairwise-distinct
    accesses this is exactly "Mmax followed by Mmin") -- conjoined with
    conditions 2 and 4-8. *)
