(** The Lin-McKinley-Ni message flow model (discussed in Section 2 of the
    paper).

    A channel is {e deadlock-immune} when every message that uses it is
    guaranteed to reach its destination.  The model proves deadlock freedom
    by starting from the sink channels (channels from which every message is
    consumed immediately) and working backward: a channel becomes immune
    when, for every message that can occupy it, every channel the message
    may need {e next} is already immune.  If all channels used by the
    routing algorithm become immune, the algorithm is deadlock-free.

    The paper's observation -- reproduced by experiment EXP-MFM -- is that
    this technique is {e incomplete} in the presence of unreachable cyclic
    configurations: on the Figure-1 network the ring channels wait on one
    another circularly, so the fixpoint never marks them immune, even
    though the algorithm is deadlock-free.  (The converse direction is
    sound: if all channels are immune, no deadlock exists.) *)

type result = {
  immune : bool array;  (** indexed by channel *)
  rounds : int;  (** fixpoint iterations *)
  used : bool array;  (** channels used by at least one message *)
  stuck : Topology.channel list;  (** used channels that never became immune *)
}

val analyze : Routing.t -> result
(** Run the backward fixpoint. *)

val proves_deadlock_free : result -> bool
(** True iff every used channel is immune. *)

val pp : Topology.t -> Format.formatter -> result -> unit
