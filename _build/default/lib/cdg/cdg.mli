(** Channel dependency graphs (Dally-Seitz).

    Vertices are the channels of the network.  There is a directed edge from
    channel [c1] to [c2] when some message is permitted to use [c2]
    immediately after [c1]; for an oblivious algorithm this means some
    source/destination pair's unique path uses [c1] then [c2] consecutively.
    The builder walks every pair's path, so each edge carries the list of
    {e supporting messages} -- the pairs whose path realizes it -- which the
    unreachability analysis consumes. *)

type message = Topology.node * Topology.node
(** A message class: (source, destination). *)

type t

val build : Routing.t -> t
(** Walk all source/destination paths and record dependencies.  Pairs whose
    path is invalid are skipped ({!Routing.validate} reports those). *)

val routing : t -> Routing.t
val topology : t -> Topology.t

val num_edges : t -> int
val succ : t -> Topology.channel -> Topology.channel list
val edge_support : t -> Topology.channel -> Topology.channel -> message list
(** Messages realizing the given dependency ([[]] if the edge is absent). *)

val channel_users : t -> Topology.channel -> message list
(** All messages whose path uses the channel (anywhere on the path). *)

val path_of : t -> message -> Topology.channel list
(** The cached path of a message class. *)

val is_acyclic : t -> bool

val numbering : t -> int array option
(** [Some f] iff acyclic: a Dally-Seitz certificate assigning each channel a
    number such that [f.(c1) < f.(c2)] for every dependency [c1 -> c2]
    (channels are used in strictly increasing order). *)

val elementary_cycles : ?max_cycles:int -> ?max_len:int -> t -> Topology.channel list list
(** Johnson's algorithm.  Each cycle is a channel list in dependency order
    (the edge from the last element back to the first closes it).
    Enumeration stops after [max_cycles] (default 10_000); cycles longer
    than [max_len] (default unlimited) are pruned. *)

val pp_cycle : t -> Format.formatter -> Topology.channel list -> unit
