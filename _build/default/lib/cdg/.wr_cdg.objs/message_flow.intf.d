lib/cdg/message_flow.mli: Format Routing Topology
