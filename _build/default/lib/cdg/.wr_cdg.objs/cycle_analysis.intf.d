lib/cdg/cycle_analysis.mli: Cdg Format Topology
