lib/cdg/theorem5.ml: Array List
