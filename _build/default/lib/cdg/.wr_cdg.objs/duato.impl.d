lib/cdg/duato.ml: Adaptive Array Format Hashtbl List Printf Queue Routing Scc Topology
