lib/cdg/message_flow.ml: Array Cdg Format List Routing Topology
