lib/cdg/duato.mli: Adaptive Format Routing
