lib/cdg/cycle_analysis.ml: Array Cdg Format Hashtbl List Printf String Theorem5 Topology
