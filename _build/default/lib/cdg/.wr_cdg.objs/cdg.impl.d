lib/cdg/cdg.ml: Array Format Hashtbl List Routing Scc String Topology
