lib/cdg/cdg.mli: Format Routing Topology
