lib/cdg/theorem5.mli:
