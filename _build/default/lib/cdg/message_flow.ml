type result = {
  immune : bool array;
  rounds : int;
  used : bool array;
  stuck : Topology.channel list;
}

let analyze rt =
  let topo = Routing.topology rt in
  let nchan = Topology.num_channels topo in
  let cdg = Cdg.build rt in
  (* per channel, the list of successor channels demanded by the messages
     that use it: None = the message is consumed right after this channel *)
  let demands = Array.make nchan [] in
  let used = Array.make nchan false in
  let n = Topology.num_nodes topo in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then begin
        let rec scan = function
          | [] -> ()
          | [ last ] ->
            used.(last) <- true;
            demands.(last) <- None :: demands.(last)
          | c1 :: (c2 :: _ as rest) ->
            used.(c1) <- true;
            demands.(c1) <- Some c2 :: demands.(c1);
            scan rest
        in
        scan (Cdg.path_of cdg (s, d))
      end
    done
  done;
  let immune = Array.make nchan false in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    for c = 0 to nchan - 1 do
      if used.(c) && not immune.(c) then begin
        let ok =
          List.for_all
            (function None -> true | Some c' -> immune.(c'))
            demands.(c)
        in
        if ok then begin
          immune.(c) <- true;
          changed := true
        end
      end
    done
  done;
  let stuck = ref [] in
  for c = nchan - 1 downto 0 do
    if used.(c) && not immune.(c) then stuck := c :: !stuck
  done;
  { immune; rounds = !rounds; used; stuck = !stuck }

let proves_deadlock_free r = r.stuck = []

let pp topo ppf r =
  let used_count = Array.fold_left (fun a u -> if u then a + 1 else a) 0 r.used in
  let immune_count = Array.fold_left (fun a i -> if i then a + 1 else a) 0 r.immune in
  Format.fprintf ppf "message-flow model: %d/%d used channels immune after %d rounds"
    immune_count used_count r.rounds;
  if r.stuck <> [] then begin
    Format.fprintf ppf "; stuck:";
    List.iter (fun c -> Format.fprintf ppf " %s" (Topology.channel_name topo c)) r.stuck
  end
