type report = {
  escape_connected : bool;
  connected_witness : string option;
  direct_edges : int;
  indirect_edges : int;
  extended_acyclic : bool;
  deadlock_free : bool;
}

(* Enumerate the adaptive function's reachable (input, dest) states. *)
let reachable_states adaptive =
  let topo = Adaptive.topology adaptive in
  let n = Topology.num_nodes topo in
  let seen = Hashtbl.create 1024 in
  let order = ref [] in
  let rec visit input dest =
    if not (Hashtbl.mem seen (input, dest)) then begin
      Hashtbl.add seen (input, dest) ();
      order := (input, dest) :: !order;
      let here = Routing.current_node topo input in
      if here <> dest then
        List.iter (fun c -> visit (Routing.From c) dest) (Adaptive.options adaptive input dest)
    end
  in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then visit (Routing.Inject s) d
    done
  done;
  List.rev !order

let check adaptive ~escape =
  let topo = Adaptive.topology adaptive in
  let states = reachable_states adaptive in
  (* the set of escape channels = every channel the escape subfunction can
     produce in a reachable state *)
  let is_escape = Hashtbl.create 64 in
  let connected = ref true in
  let witness = ref None in
  List.iter
    (fun (input, dest) ->
      let here = Routing.current_node topo input in
      if here <> dest then begin
        match Routing.next escape input dest with
        | Some esc ->
          Hashtbl.replace is_escape esc ();
          if not (List.mem esc (Adaptive.options adaptive input dest)) then begin
            if !witness = None then
              witness :=
                Some
                  (Printf.sprintf "escape %s not offered at %s toward %s"
                     (Topology.channel_name topo esc) (Topology.node_name topo here)
                     (Topology.node_name topo dest));
            connected := false
          end
        | None ->
          if !witness = None then
            witness :=
              Some
                (Printf.sprintf "escape subfunction undefined at %s toward %s"
                   (Topology.node_name topo here) (Topology.node_name topo dest));
          connected := false
      end)
    states;
  (* Extended dependencies between escape channels, per destination: from
     escape channel c1 toward dest, walk all adaptive continuations; any
     escape channel reached is a dependency (directly adjacent = direct,
     through >= 1 non-escape channel = indirect). *)
  let direct = Hashtbl.create 256 in
  let indirect = Hashtbl.create 256 in
  let n = Topology.num_nodes topo in
  List.iter
    (fun (input, dest) ->
      match input with
      | Routing.Inject _ -> ()
      | Routing.From c1 when Hashtbl.mem is_escape c1 ->
        if Topology.dst topo c1 <> dest then begin
          (* BFS over non-escape continuations *)
          let visited = Hashtbl.create 16 in
          let q = Queue.create () in
          List.iter
            (fun c2 -> Queue.add (c2, true) q)
            (Adaptive.options adaptive input dest);
          while not (Queue.is_empty q) do
            let c, is_first = Queue.pop q in
            if not (Hashtbl.mem visited c) then begin
              Hashtbl.add visited c ();
              if Hashtbl.mem is_escape c then
                Hashtbl.replace (if is_first then direct else indirect) (c1, c) ()
              else if Topology.dst topo c <> dest then
                List.iter
                  (fun c' -> Queue.add (c', false) q)
                  (Adaptive.options adaptive (Routing.From c) dest)
            end
          done
        end
      | Routing.From _ -> ())
    states;
  ignore n;
  (* acyclicity of the union graph over escape channels *)
  let nchan = Topology.num_channels topo in
  let succs = Array.make nchan [] in
  let add (c1, c2) = succs.(c1) <- c2 :: succs.(c1) in
  Hashtbl.iter (fun e () -> add e) direct;
  Hashtbl.iter (fun e () -> if not (Hashtbl.mem direct e) then add e) indirect;
  let acyclic = not (Scc.has_cycle ~n:nchan ~succ:(fun c -> succs.(c))) in
  {
    escape_connected = !connected;
    connected_witness = !witness;
    direct_edges = Hashtbl.length direct;
    indirect_edges = Hashtbl.length indirect;
    extended_acyclic = acyclic;
    deadlock_free = !connected && acyclic;
  }

let pp ppf r =
  Format.fprintf ppf
    "Duato: escape connected=%b, extended CDG %d direct + %d indirect edges, acyclic=%b -> %s"
    r.escape_connected r.direct_edges r.indirect_edges r.extended_acyclic
    (if r.deadlock_free then "deadlock-free" else "not certified");
  match r.connected_witness with
  | Some w -> Format.fprintf ppf " (%s)" w
  | None -> ()
