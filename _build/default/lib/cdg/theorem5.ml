type sharer = {
  sh_label : string;
  sh_access : int;
  sh_entry : int;
  sh_span : int;
}

type other = {
  ot_entry : int;
  ot_span : int;
  ot_uses_shared : bool;
}

type input = {
  cycle_len : int;
  sharers : sharer list;
  others : other list;
}

type condition = {
  c_index : int;
  c_text : string;
  c_holds : bool;
}

(* Forward distance around the cycle. *)
let fwd l a b = (((b - a) mod l) + l) mod l

let check input =
  let l = input.cycle_len in
  let by_access =
    List.sort (fun a b -> compare b.sh_access a.sh_access) input.sharers
  in
  let mmax, mmid, mmin =
    match by_access with
    | [ a; b; c ] -> (a, b, c)
    | _ -> invalid_arg "Theorem5.check: exactly three sharers required"
  in
  (* Interposed others strictly between two sharers' entries (going forward
     around the cycle) and the cycle channels they use. *)
  let between a b =
    let da = fwd l a.sh_entry b.sh_entry in
    List.filter
      (fun o ->
        let d = fwd l a.sh_entry o.ot_entry in
        d > 0 && d < da)
      input.others
  in
  let interposed_span a b = List.fold_left (fun acc o -> acc + o.ot_span) 0 (between a b) in
  (* Immediate cyclic predecessor (by entry position) among all cycle
     messages: the message whose in-cycle stretch ends at this entry, i.e.
     the one that could park this sharer at its entry channel. *)
  let all_entries =
    List.map (fun s -> (`Sharer s.sh_label, s.sh_entry, true)) input.sharers
    @ List.map (fun o -> (`Other, o.ot_entry, o.ot_uses_shared)) input.others
  in
  let predecessor_of entry =
    let best = ref None in
    List.iter
      (fun (tag, e, shared) ->
        if e <> entry then begin
          let d = fwd l e entry in
          match !best with
          | Some (_, bd, _) when bd <= d -> ()
          | _ -> best := Some (tag, d, shared)
        end)
      all_entries;
    !best
  in
  let pred_shares entry =
    match predecessor_of entry with
    | Some (_, _, shared) -> shared
    | None -> true
  in
  (* Conditions 1 and 3 jointly: the deadlock's serial construction through
     the shared channel needs the sharers' accesses to decrease strictly
     along the cyclic entry order (each later message must clear the shared
     channel and still catch its victim).  Unreachability therefore demands
     that no rotation of the cyclic order is strictly decreasing. *)
  let in_entry_order =
    List.sort (fun a b -> compare a.sh_entry b.sh_entry) input.sharers
  in
  let decreasing_rotation_exists =
    let arr = Array.of_list in_entry_order in
    let a i = arr.(i mod 3).sh_access in
    let rec scan i =
      i < 3 && ((a i > a (i + 1) && a (i + 1) > a (i + 2)) || scan (i + 1))
    in
    scan 0
  in
  let cond1 =
    (* cyclically, Mmax is followed by Mmin before Mmid (ties in access make
       the labeling ambiguous; the joint encoding below is what the verdict
       uses) *)
    let to_min = fwd l mmax.sh_entry mmin.sh_entry in
    let to_mid = fwd l mmax.sh_entry mmid.sh_entry in
    to_min < to_mid
  in
  let cond2 = true (* structural: the three sharers use the channel outside the cycle *) in
  let cond3 =
    mmax.sh_access <> mmid.sh_access
    && mmid.sh_access <> mmin.sh_access
    && mmax.sh_access <> mmin.sh_access
  in
  let cond4 =
    (* Mmax must not be parkable outside the cycle by a non-sharer: either
       it uses more channels within the cycle than from cs to the cycle, or
       every message that could hold its entry channel also uses cs (and so
       cannot block it indefinitely). *)
    mmax.sh_span > mmax.sh_access || pred_shares mmax.sh_entry
  in
  let cond5 =
    (* same parking argument for Mmin *)
    mmin.sh_span > mmin.sh_access || pred_shares mmin.sh_entry
  in
  let cond6 =
    (* and for Mmid *)
    mmid.sh_span > mmid.sh_access || pred_shares mmid.sh_entry
  in
  let cond7 =
    (* interposed non-sharers between Mmax and Mmin must not bridge the gap
       the cs serialization creates *)
    mmax.sh_access + interposed_span mmax mmin <= mmin.sh_span + mmin.sh_access
  in
  let cond8 =
    (* likewise between Mmin and Mmid *)
    mmin.sh_access + interposed_span mmin mmid <= mmax.sh_access
  in
  let conds =
    [
      (1, "cyclically, Mmax is followed by Mmin (Mmid is not between them)", cond1);
      (2, "all three sharers use the shared channel outside the cycle", cond2);
      (3, "the three access distances are pairwise distinct", cond3);
      ( 4,
        "Mmax uses more channels within the cycle than from cs to the cycle, or its cyclic \
         predecessor also uses cs",
        cond4 );
      ( 5,
        "Mmin uses more channels within the cycle than from cs to the cycle, or its cyclic \
         predecessor also uses cs",
        cond5 );
      ( 6,
        "Mmid uses more channels within the cycle than from cs to the cycle, or its cyclic \
         predecessor also uses cs",
        cond6 );
      ( 7,
        "Mmax's access plus interposed spans (Mmax..Mmin) is at most Mmin's span plus Mmin's \
         access",
        cond7 );
      ( 8,
        "Mmin's access plus interposed spans (Mmin..Mmid) is at most Mmax's access",
        cond8 );
    ]
  in
  let conditions = List.map (fun (i, t, h) -> { c_index = i; c_text = t; c_holds = h }) conds in
  let unreachable =
    (not decreasing_rotation_exists) && cond2 && cond4 && cond5 && cond6 && cond7 && cond8
  in
  (conditions, unreachable)
