type message = Topology.node * Topology.node

type t = {
  rt : Routing.t;
  nchan : int;
  succs : Topology.channel list array;
  support : (Topology.channel * Topology.channel, message list) Hashtbl.t;
  users : message list array;
  paths : (message, Topology.channel list) Hashtbl.t;
}

let build rt =
  let topo = Routing.topology rt in
  let n = Topology.num_nodes topo in
  let nchan = Topology.num_channels topo in
  let succ_sets = Array.make nchan [] in
  let support = Hashtbl.create 256 in
  let users = Array.make nchan [] in
  let paths = Hashtbl.create 256 in
  let add_edge c1 c2 msg =
    let key = (c1, c2) in
    match Hashtbl.find_opt support key with
    | None ->
      Hashtbl.add support key [ msg ];
      succ_sets.(c1) <- c2 :: succ_sets.(c1)
    | Some msgs -> if not (List.mem msg msgs) then Hashtbl.replace support key (msg :: msgs)
  in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        match Routing.path rt s d with
        | Error _ -> ()
        | Ok chans ->
          let msg = (s, d) in
          Hashtbl.add paths msg chans;
          List.iter (fun c -> users.(c) <- msg :: users.(c)) chans;
          let rec edges = function
            | c1 :: (c2 :: _ as rest) ->
              add_edge c1 c2 msg;
              edges rest
            | _ -> ()
          in
          edges chans
    done
  done;
  (* Keep successor lists in a stable order for reproducible enumeration. *)
  Array.iteri (fun i l -> succ_sets.(i) <- List.sort_uniq compare l) succ_sets;
  Array.iteri (fun i l -> users.(i) <- List.rev l) users;
  { rt; nchan; succs = succ_sets; support; users; paths }

let routing t = t.rt

let topology t = Routing.topology t.rt

let num_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let succ t c = t.succs.(c)

let edge_support t c1 c2 =
  match Hashtbl.find_opt t.support (c1, c2) with Some l -> List.rev l | None -> []

let channel_users t c = t.users.(c)

let path_of t msg = match Hashtbl.find_opt t.paths msg with Some p -> p | None -> []

let is_acyclic t = not (Scc.has_cycle ~n:t.nchan ~succ:(fun c -> t.succs.(c)))

let numbering t =
  if not (is_acyclic t) then None
  else begin
    let comp, count = Scc.tarjan ~n:t.nchan ~succ:(fun c -> t.succs.(c)) in
    (* Tarjan numbers components in reverse topological order: every edge
       goes into a component with a smaller id, so [count - 1 - comp] grows
       strictly along each dependency. *)
    Some (Array.map (fun c -> count - 1 - c) comp)
  end

(* Johnson's elementary-circuit algorithm, bounded. *)
exception Done

let elementary_cycles ?(max_cycles = 10_000) ?(max_len = max_int) t =
  let n = t.nchan in
  let results = ref [] in
  let count = ref 0 in
  let comp, _ = Scc.tarjan ~n ~succ:(fun c -> t.succs.(c)) in
  let blocked = Array.make n false in
  let b_sets = Array.make n [] in
  let stack = ref [] in
  let stack_len = ref 0 in
  let emit () =
    results := List.rev !stack :: !results;
    incr count;
    if !count >= max_cycles then raise Done
  in
  let rec unblock v =
    blocked.(v) <- false;
    let bs = b_sets.(v) in
    b_sets.(v) <- [];
    List.iter (fun w -> if blocked.(w) then unblock w) bs
  in
  let rec circuit start v =
    (* explore only vertices >= start inside start's SCC *)
    let found = ref false in
    stack := v :: !stack;
    incr stack_len;
    blocked.(v) <- true;
    List.iter
      (fun w ->
        if w >= start && comp.(w) = comp.(start) then begin
          if w = start then begin
            if !stack_len <= max_len then emit ();
            found := true
          end
          else if (not blocked.(w)) && !stack_len < max_len then
            if circuit start w then found := true
        end)
      t.succs.(v);
    if !found then unblock v
    else
      List.iter
        (fun w ->
          if w >= start && comp.(w) = comp.(start) then
            if not (List.mem v b_sets.(w)) then b_sets.(w) <- v :: b_sets.(w))
        t.succs.(v);
    stack := List.tl !stack;
    decr stack_len;
    !found
  in
  (try
     for s = 0 to n - 1 do
       Array.fill blocked 0 n false;
       Array.fill b_sets 0 n [];
       ignore (circuit s s)
     done
   with Done -> ());
  List.rev !results

let pp_cycle t ppf cycle =
  let topo = topology t in
  Format.pp_print_string ppf
    (String.concat " => " (List.map (Topology.channel_name topo) cycle))
