(* Bechamel benchmarks: one test per reproduced artifact family, so the cost
   of every machine in the pipeline is tracked.

   - cdg/*        building dependency graphs and enumerating cycles
                  (the static machinery behind Figures 1-3)
   - classify/*   the Theorem-2..5 classifiers
   - sim/*        the flit-level engine on substrate workloads (EXP-S1/S2)
   - search/*     the adversarial schedule searches (EXP-F1, EXP-T4, EXP-T5)
   - family/*     the Section-6 minimum-delay probe (EXP-G)

   Run with: dune exec bench/main.exe *)

module Sim_measure = Measure (* keep wr_workload's Measure reachable under open Bechamel *)

open Bechamel
open Toolkit

(* ---- prebuilt inputs (construction cost is not what we measure) ---- *)

let mesh8 = Builders.mesh [ 8; 8 ]
let mesh8_rt = Dimension_order.mesh mesh8
let torus5 = Builders.torus [ 5; 5 ]
let torus5_rt = Dimension_order.torus torus5
let fig1 = Paper_nets.figure1 ()
let fig1_rt = Cd_algorithm.of_net fig1
let fig1_cdg = Cdg.build fig1_rt
let fig2 = Paper_nets.figure2 ()
let fig2_rt = Cd_algorithm.of_net fig2
let fig3c = Paper_nets.figure3 `C
let fig3c_rt = Cd_algorithm.of_net fig3c
let fig3c_cdg = Cdg.build fig3c_rt

let mesh_schedule =
  let rng = Rng.create 11 in
  let pattern = Traffic.uniform rng mesh8 in
  Traffic.bernoulli_schedule rng pattern ~coords:mesh8 ~rate:0.02 ~length:4 ~horizon:300

let tornado_schedule =
  Traffic.permutation_schedule (Traffic.tornado torus5) ~coords:torus5 ~length:8

(* Trimmed Figure-1 search: injection orders under the order-following
   adversary -- a deterministic, meaningful slice of EXP-F1. *)
let fig1_quick_space =
  let templates = List.map (fun i -> Explorer.intent_template ~extra:[ -1 ] fig1 i) fig1.intents in
  {
    (Explorer.default_space templates) with
    gaps = [ 0 ];
    buffers = [ 1 ];
    priorities = Explorer.Follow_order;
  }

let fig2_space =
  let templates = List.map (fun i -> Explorer.intent_template fig2 i) fig2.intents in
  Explorer.default_space templates

let tests =
  Test.make_grouped ~name:"wormhole"
    [
      Test.make ~name:"cdg/build-mesh8x8" (Staged.stage (fun () -> Cdg.build mesh8_rt));
      Test.make ~name:"cdg/build-figure1" (Staged.stage (fun () -> Cdg.build fig1_rt));
      Test.make ~name:"cdg/cycles-figure1"
        (Staged.stage (fun () -> Cdg.elementary_cycles fig1_cdg));
      Test.make ~name:"cdg/cycles-torus5x5"
        (Staged.stage
           (let cdg = Cdg.build torus5_rt in
            fun () -> Cdg.elementary_cycles cdg));
      Test.make ~name:"classify/figure1-cycle"
        (Staged.stage
           (let cycle = List.hd (Cdg.elementary_cycles fig1_cdg) in
            fun () -> Cycle_analysis.classify fig1_cdg cycle));
      Test.make ~name:"classify/theorem5-figure3c"
        (Staged.stage
           (let cycle = List.hd (Cdg.elementary_cycles fig3c_cdg) in
            fun () -> Cycle_analysis.classify fig3c_cdg cycle));
      Test.make ~name:"properties/coherent-mesh8x8"
        (Staged.stage (fun () -> Properties.coherent mesh8_rt));
      Test.make ~name:"sim/mesh8x8-uniform-300c"
        (Staged.stage (fun () -> Sim_measure.run mesh8_rt mesh_schedule));
      Test.make ~name:"sim/torus5x5-tornado-deadlock"
        (Staged.stage (fun () -> Engine.run torus5_rt tornado_schedule));
      Test.make ~name:"search/figure1-order-sweep"
        (Staged.stage (fun () -> Explorer.explore fig1_rt fig1_quick_space));
      Test.make ~name:"search/figure2-witness"
        (Staged.stage (fun () -> Explorer.explore fig2_rt fig2_space));
      Test.make ~name:"family/min-delay-p1"
        (Staged.stage
           (let net = Paper_nets.family 1 in
            fun () -> Min_delay.search ~max_h:2 net));
      Test.make ~name:"classify/message-flow-figure1"
        (Staged.stage (fun () -> Message_flow.analyze fig1_rt));
      Test.make ~name:"classify/duato-mesh4x4"
        (Staged.stage
           (let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
            let ad = Adaptive.duato_mesh mesh2 in
            let escape = Adaptive.escape_of_duato_mesh mesh2 in
            fun () -> Duato.check ad ~escape));
      Test.make ~name:"sim/adaptive-duato-stress"
        (Staged.stage
           (let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ] in
            let ad = Adaptive.duato_mesh mesh2 in
            let rng = Rng.create 13 in
            let pattern = Traffic.uniform rng mesh2 in
            let sched =
              Traffic.bernoulli_schedule rng pattern ~coords:mesh2 ~rate:0.05 ~length:4
                ~horizon:150
            in
            fun () -> Adaptive_engine.run ad sched));
      Test.make ~name:"search/model-check-figure1"
        (Staged.stage
           (let net = Paper_nets.figure1 () in
            fun () -> Model_checker.check_net ~extra:[ 0 ] net));
      (* ablation: the arbitration-adversary dimension of the search *)
      Test.make ~name:"search/figure2-fifo-only"
        (Staged.stage
           (let templates =
              List.map (fun i -> Explorer.intent_template fig2 i) fig2.intents
            in
            let sp = { (Explorer.default_space templates) with priorities = Explorer.Fifo_only } in
            fun () -> Explorer.explore fig2_rt sp));
    ]

let benchmark () =
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let () =
  let results = benchmark () in
  let table = Table.create ~aligns:[ Table.Left; Table.Right ] [ "benchmark"; "time/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | _ -> nan
          in
          rows := (name, est) :: !rows)
        tbl)
    results;
  let human ns =
    if Float.is_nan ns then "n/a"
    else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)
  in
  List.iter
    (fun (name, est) -> Table.add_row table [ name; human est ])
    (List.sort compare !rows);
  Table.print table
