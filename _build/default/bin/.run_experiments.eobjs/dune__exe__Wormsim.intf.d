bin/wormsim.mli:
