bin/cdg_tool.ml: Arg Array Builders Cd_algorithm Cmd Cmdliner Dimension_order Dot Format List Model_checker Paper_nets Printf Ring_routing Routing String Term Topology Turn_model Verify
