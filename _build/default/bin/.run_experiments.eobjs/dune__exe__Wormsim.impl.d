bin/wormsim.ml: Adaptive Adaptive_engine Arg Builders Cmd Cmdliner Dimension_order Engine Format List Measure Printf Ring_routing Rng Routing String Term Traffic Turn_model
