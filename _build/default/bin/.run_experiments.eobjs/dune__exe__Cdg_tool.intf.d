bin/cdg_tool.mli:
