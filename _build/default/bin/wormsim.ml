(* Flit-level wormhole simulation CLI.

   Examples:
     wormsim --topology mesh --dims 8x8 --routing xy --pattern uniform --rate 0.02
     wormsim --topology torus --dims 5x5 --routing ecube --pattern tornado --permutation
     wormsim --topology ring --dims 6 --routing clockwise --permutation *)

open Cmdliner

type built = {
  coords : Builders.coords;
  routing : [ `Oblivious of Routing.t | `Adaptive of Adaptive.t ];
}

let build topology dims routing =
  let dims_list =
    String.split_on_char 'x' dims
    |> List.map (fun s ->
           match int_of_string_opt (String.trim s) with
           | Some n -> n
           | None -> failwith ("bad dimension: " ^ s))
  in
  match (topology, routing) with
  | "mesh", "xy" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Dimension_order.mesh coords) }
  | "mesh", "west-first" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Turn_model.west_first coords) }
  | "mesh", "north-last" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Turn_model.north_last coords) }
  | "mesh", "negative-first" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Oblivious (Turn_model.negative_first coords) }
  | "mesh", "adaptive" ->
    let coords = Builders.mesh dims_list in
    { coords; routing = `Adaptive (Adaptive.fully_adaptive_minimal coords) }
  | "mesh", "duato" ->
    let coords = Builders.mesh ~vcs:2 dims_list in
    { coords; routing = `Adaptive (Adaptive.duato_mesh coords) }
  | "torus", "ecube" ->
    let coords = Builders.torus dims_list in
    { coords; routing = `Oblivious (Dimension_order.torus coords) }
  | "torus", "dateline" ->
    let coords = Builders.torus ~vcs:2 dims_list in
    { coords; routing = `Oblivious (Dimension_order.torus ~datelines:true coords) }
  | "hypercube", "ecube" ->
    let coords = Builders.hypercube (List.hd dims_list) in
    { coords; routing = `Oblivious (Dimension_order.hypercube coords) }
  | "ring", "clockwise" ->
    let coords = Builders.ring ~unidirectional:true (List.hd dims_list) in
    { coords; routing = `Oblivious (Ring_routing.clockwise coords) }
  | "ring", "dateline" ->
    let coords = Builders.ring ~unidirectional:true ~vcs:2 (List.hd dims_list) in
    { coords; routing = `Oblivious (Ring_routing.dateline coords) }
  | t, r -> failwith (Printf.sprintf "unsupported topology/routing combination %s/%s" t r)

let pattern_of coords rng = function
  | "uniform" -> Traffic.uniform rng coords
  | "transpose" -> Traffic.transpose coords
  | "bit-complement" -> Traffic.bit_complement coords
  | "bit-reverse" -> Traffic.bit_reverse coords
  | "tornado" -> Traffic.tornado coords
  | "neighbor" -> Traffic.neighbor coords
  | "hotspot" -> Traffic.hotspot rng coords 0
  | p -> failwith ("unknown pattern: " ^ p)

let main topology dims routing pattern rate length horizon permutation seed buffer =
  try
    let { coords; routing = algo } = build topology dims routing in
    (match algo with
    | `Oblivious rt -> (
      match Routing.validate rt with
      | Ok () -> ()
      | Error e -> failwith ("routing invalid: " ^ e))
    | `Adaptive ad -> (
      match Adaptive.validate ad with
      | Ok () -> ()
      | Error e -> failwith ("adaptive routing invalid: " ^ e)));
    let rng = Rng.create seed in
    let pat = pattern_of coords rng pattern in
    let sched =
      if permutation then Traffic.permutation_schedule pat ~coords ~length
      else Traffic.bernoulli_schedule rng pat ~coords ~rate ~length ~horizon
    in
    Printf.printf "topology=%s dims=%s routing=%s pattern=%s messages=%d\n" topology dims
      routing pat.Traffic.name (List.length sched);
    let config = { Engine.default_config with buffer_capacity = buffer } in
    (match algo with
    | `Oblivious rt ->
      let report = Measure.run ~config rt sched in
      Format.printf "%a@." Measure.pp report;
      if report.Measure.deadlocked then exit 3
    | `Adaptive ad -> (
      match Adaptive_engine.run ~config ad sched with
      | Adaptive_engine.All_delivered { finished_at; messages } ->
        Format.printf "%d/%d delivered in %d cycles (adaptive)@." (List.length messages)
          (List.length sched) finished_at
      | o ->
        Format.printf "%a@." (Adaptive_engine.pp_outcome coords.Builders.topo) o;
        if Adaptive_engine.is_deadlock o then exit 3))
  with Failure msg ->
    Printf.eprintf "wormsim: %s\n" msg;
    exit 2

let topo_arg =
  Arg.(value & opt string "mesh" & info [ "topology" ] ~docv:"T" ~doc:"mesh, torus, hypercube or ring")

let dims_arg =
  Arg.(value & opt string "8x8" & info [ "dims" ] ~docv:"DxD" ~doc:"dimensions, e.g. 8x8 (hypercube/ring take one number)")

let routing_arg =
  Arg.(value & opt string "xy" & info [ "routing" ] ~docv:"R" ~doc:"xy, west-first, north-last, negative-first, adaptive, duato, ecube, dateline or clockwise")

let pattern_arg =
  Arg.(value & opt string "uniform" & info [ "pattern" ] ~docv:"P" ~doc:"uniform, transpose, bit-complement, bit-reverse, tornado, neighbor, hotspot")

let rate_arg =
  Arg.(value & opt float 0.02 & info [ "rate" ] ~docv:"R" ~doc:"per-node injection probability per cycle")

let length_arg =
  Arg.(value & opt int 4 & info [ "length" ] ~docv:"FLITS" ~doc:"message length in flits")

let horizon_arg =
  Arg.(value & opt int 1000 & info [ "horizon" ] ~docv:"CYCLES" ~doc:"injection horizon")

let permutation_arg =
  Arg.(value & flag & info [ "permutation" ] ~doc:"one message per node at cycle 0 instead of Bernoulli traffic")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")

let buffer_arg =
  Arg.(value & opt int 1 & info [ "buffer" ] ~docv:"FLITS" ~doc:"flit buffer capacity per channel")

let cmd =
  let doc = "simulate wormhole routing on a classic topology" in
  Cmd.v (Cmd.info "wormsim" ~doc)
    Term.(
      const main $ topo_arg $ dims_arg $ routing_arg $ pattern_arg $ rate_arg $ length_arg
      $ horizon_arg $ permutation_arg $ seed_arg $ buffer_arg)

let () = exit (Cmd.eval cmd)
