(* Channel-dependency-graph analysis CLI.

   Examples:
     cdg_tool --net figure1
     cdg_tool --net figure3c --dot /tmp/net.dot
     cdg_tool --net torus-5x5 *)

open Cmdliner

let nets =
  [
    "figure1"; "figure2"; "figure3a"; "figure3b"; "figure3c"; "figure3d"; "figure3e";
    "figure3f"; "family2"; "family3"; "ring-4"; "ring-dateline-6"; "mesh-4x4"; "torus-4x4";
    "torus-5x5"; "torus-dateline-4x4"; "hypercube-3"; "west-first-4x4";
  ]

let routing_of = function
  | "figure1" -> Cd_algorithm.of_net (Paper_nets.figure1 ())
  | "figure2" -> Cd_algorithm.of_net (Paper_nets.figure2 ())
  | "figure3a" -> Cd_algorithm.of_net (Paper_nets.figure3 `A)
  | "figure3b" -> Cd_algorithm.of_net (Paper_nets.figure3 `B)
  | "figure3c" -> Cd_algorithm.of_net (Paper_nets.figure3 `C)
  | "figure3d" -> Cd_algorithm.of_net (Paper_nets.figure3 `D)
  | "figure3e" -> Cd_algorithm.of_net (Paper_nets.figure3 `E)
  | "figure3f" -> Cd_algorithm.of_net (Paper_nets.figure3 `F)
  | "family2" -> Cd_algorithm.of_net (Paper_nets.family 2)
  | "family3" -> Cd_algorithm.of_net (Paper_nets.family 3)
  | "ring-4" -> Ring_routing.clockwise (Builders.ring ~unidirectional:true 4)
  | "ring-dateline-6" -> Ring_routing.dateline (Builders.ring ~unidirectional:true ~vcs:2 6)
  | "mesh-4x4" -> Dimension_order.mesh (Builders.mesh [ 4; 4 ])
  | "torus-4x4" -> Dimension_order.torus (Builders.torus [ 4; 4 ])
  | "torus-5x5" -> Dimension_order.torus (Builders.torus [ 5; 5 ])
  | "torus-dateline-4x4" ->
    Dimension_order.torus ~datelines:true (Builders.torus ~vcs:2 [ 4; 4 ])
  | "hypercube-3" -> Dimension_order.hypercube (Builders.hypercube 3)
  | "west-first-4x4" -> Turn_model.west_first (Builders.mesh [ 4; 4 ])
  | n ->
    Printf.eprintf "unknown net %s (known: %s)\n" n (String.concat ", " nets);
    exit 2

let paper_net_of = function
  | "figure1" -> Some (Paper_nets.figure1 ())
  | "figure2" -> Some (Paper_nets.figure2 ())
  | "figure3a" -> Some (Paper_nets.figure3 `A)
  | "figure3b" -> Some (Paper_nets.figure3 `B)
  | "figure3c" -> Some (Paper_nets.figure3 `C)
  | "figure3d" -> Some (Paper_nets.figure3 `D)
  | "figure3e" -> Some (Paper_nets.figure3 `E)
  | "figure3f" -> Some (Paper_nets.figure3 `F)
  | "family2" -> Some (Paper_nets.family 2)
  | "family3" -> Some (Paper_nets.family 3)
  | _ -> None

let main net dot no_search model_check =
  let rt = routing_of net in
  let report = Verify.analyze ~use_search:(not no_search) rt in
  Format.printf "%a@?" Verify.pp_report report;
  (if model_check then
     match paper_net_of net with
     | Some pnet ->
       Format.printf "model checker (all timings, all arbitrations): %a@?" Model_checker.pp
         (Model_checker.check_net pnet);
       Format.print_newline ()
     | None ->
       Format.printf "model checking is only wired up for the paper networks@.");
  (match report.Verify.numbering with
  | Some f ->
    let topo = Routing.topology rt in
    Format.printf "Dally-Seitz numbering (first 10 channels):@.";
    List.iteri
      (fun i c ->
        if i < 10 then Format.printf "  %s -> %d@." (Topology.channel_name topo c) f.(c))
      (Topology.channels topo)
  | None -> ());
  (match dot with
  | Some path ->
    let topo = Routing.topology rt in
    let highlight = List.concat_map (fun cr -> cr.Verify.cr_cycle) report.Verify.cycles in
    Dot.write_file ~highlight ~label:net path topo;
    Format.printf "wrote %s@." path
  | None -> ());
  match report.Verify.conclusion with
  | Verify.Deadlock_free _ -> ()
  | Verify.Deadlocks _ -> exit 3
  | Verify.Unknown _ -> exit 4

let net_arg =
  Arg.(value & opt string "figure1" & info [ "net" ] ~docv:"NET" ~doc:"network/algorithm to analyze")

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PATH" ~doc:"write a Graphviz rendering (cycles highlighted)")

let no_search_arg =
  Arg.(value & flag & info [ "no-search" ] ~doc:"skip the schedule-space search (static analysis only)")

let model_check_arg =
  Arg.(value & flag & info [ "model-check" ] ~doc:"also run the exhaustive state-space model checker (paper networks only)")

let cmd =
  let doc = "analyze a routing algorithm's channel dependency graph" in
  Cmd.v (Cmd.info "cdg_tool" ~doc)
    Term.(const main $ net_arg $ dot_arg $ no_search_arg $ model_check_arg)

let () = exit (Cmd.eval cmd)
