(* Unit tests for the topology layer: multigraph, builders, SCC, dot export
   and the paper's example networks. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

(* ---- core multigraph ---- *)

let test_add_nodes_channels () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" and b = Topology.add_node t "b" in
  let c = Topology.add_channel t a b in
  check ci "nodes" 2 (Topology.num_nodes t);
  check ci "channels" 1 (Topology.num_channels t);
  check ci "src" a (Topology.src t c);
  check ci "dst" b (Topology.dst t c);
  check ci "vc" 0 (Topology.vc t c);
  check cs "name" "a->b" (Topology.channel_name t c);
  check ci "by name" a (Topology.node_of_name t "a")

let test_duplicate_node_rejected () =
  let t = Topology.create () in
  ignore (Topology.add_node t "x");
  Alcotest.check_raises "dup" (Invalid_argument "Topology.add_node: duplicate name x")
    (fun () -> ignore (Topology.add_node t "x"))

let test_self_loop_rejected () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  Alcotest.check_raises "loop" (Invalid_argument "Topology.add_channel: self-loop") (fun () ->
      ignore (Topology.add_channel t a a))

let test_duplicate_channel_rejected () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" and b = Topology.add_node t "b" in
  ignore (Topology.add_channel t a b);
  Alcotest.check_raises "dup chan"
    (Invalid_argument "Topology.add_channel: duplicate channel (same src/dst/vc)") (fun () ->
      ignore (Topology.add_channel t a b));
  (* distinct vc is fine: virtual channels are parallel arcs *)
  let c1 = Topology.add_channel ~vc:1 t a b in
  check ci "vc1" 1 (Topology.vc t c1);
  check cs "vc name" "a->b#1" (Topology.channel_name t c1)

let test_find_channel () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" and b = Topology.add_node t "b" in
  let c0 = Topology.add_channel t a b in
  let c1 = Topology.add_channel ~vc:1 t a b in
  check (Alcotest.option ci) "vc0" (Some c0) (Topology.find_channel t a b);
  check (Alcotest.option ci) "vc1" (Some c1) (Topology.find_channel ~vc:1 t a b);
  check (Alcotest.option ci) "absent" None (Topology.find_channel t b a)

let test_adjacency () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" and b = Topology.add_node t "b" and c = Topology.add_node t "c" in
  let ab = Topology.add_channel t a b in
  let ac = Topology.add_channel t a c in
  let ca = Topology.add_channel t c a in
  check (Alcotest.list ci) "out a" [ ab; ac ] (Topology.out_channels t a);
  check (Alcotest.list ci) "in a" [ ca ] (Topology.in_channels t a);
  check (Alcotest.list ci) "channels" [ ab; ac; ca ] (Topology.channels t)

let test_strong_connectivity () =
  let ring = Builders.ring ~unidirectional:true 5 in
  check cb "ring SC" true (Topology.strongly_connected ring.topo);
  let t = Topology.create () in
  let a = Topology.add_node t "a" and b = Topology.add_node t "b" in
  ignore (Topology.add_channel t a b);
  check cb "one-way not SC" false (Topology.strongly_connected t)

let test_distance_and_paths () =
  let m = Builders.mesh [ 4; 4 ] in
  let a = m.node_at [| 0; 0 |] and b = m.node_at [| 3; 3 |] in
  check ci "manhattan" 6 (Topology.distance m.topo a b);
  (match Topology.shortest_path m.topo a b with
  | Some p ->
    check ci "path length" 6 (List.length p);
    (* the path is a connected chain from a to b *)
    let rec walk here = function
      | [] -> check ci "ends at b" b here
      | c :: rest ->
        check ci "chain" here (Topology.src m.topo c);
        walk (Topology.dst m.topo c) rest
    in
    walk a p
  | None -> Alcotest.fail "no path");
  let dm = Topology.distance_matrix m.topo in
  check ci "matrix agrees" 6 dm.(a).(b);
  check ci "self distance" 0 dm.(a).(a)

let test_unreachable_distance () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" and b = Topology.add_node t "b" in
  ignore (Topology.add_channel t a b);
  check ci "unreachable" max_int (Topology.distance t b a);
  check (Alcotest.option (Alcotest.list ci)) "no path" None (Topology.shortest_path t b a)

(* ---- builders ---- *)

let test_mesh_counts () =
  let m = Builders.mesh [ 4; 4 ] in
  check ci "nodes" 16 (Topology.num_nodes m.topo);
  (* 2 * (links): 4 rows * 3 + 4 cols * 3 = 24 links, 48 channels *)
  check ci "channels" 48 (Topology.num_channels m.topo);
  check cb "SC" true (Topology.strongly_connected m.topo)

let test_torus_counts () =
  let t = Builders.torus [ 4; 4 ] in
  (* every node has 4 out-channels: 16 * 4 = 64 *)
  check ci "channels" 64 (Topology.num_channels t.topo);
  let t2 = Builders.torus ~vcs:2 [ 4; 4 ] in
  check ci "vcs double" 128 (Topology.num_channels t2.topo);
  (* radix-2 dimensions have no wrap links *)
  let t3 = Builders.torus [ 2; 2 ] in
  check ci "2x2 torus = 2x2 mesh" (Topology.num_channels (Builders.mesh [ 2; 2 ]).topo)
    (Topology.num_channels t3.topo)

let test_hypercube () =
  let h = Builders.hypercube 3 in
  check ci "nodes" 8 (Topology.num_nodes h.topo);
  check ci "channels" 24 (Topology.num_channels h.topo);
  (* coordinate scheme round-trips *)
  for id = 0 to 7 do
    check ci "roundtrip" id (h.node_at (h.coord id))
  done

let test_coords_roundtrip () =
  List.iter
    (fun (c : Builders.coords) ->
      for id = 0 to Topology.num_nodes c.topo - 1 do
        check ci "roundtrip" id (c.node_at (c.coord id))
      done)
    [ Builders.mesh [ 3; 4 ]; Builders.torus [ 3; 3; 3 ]; Builders.line 5;
      Builders.ring 6; Builders.complete 5; Builders.star 4 ]

let test_ring_unidirectional () =
  let r = Builders.ring ~unidirectional:true 6 in
  check ci "channels" 6 (Topology.num_channels r.topo);
  check cb "SC" true (Topology.strongly_connected r.topo);
  check ci "distance around" 5 (Topology.distance r.topo 0 5)

let test_complete_and_star () =
  let c = Builders.complete 4 in
  check ci "complete channels" 12 (Topology.num_channels c.topo);
  check ci "complete distance" 1 (Topology.distance c.topo 0 3);
  let s = Builders.star 5 in
  check ci "star nodes" 6 (Topology.num_nodes s.topo);
  check ci "leaf-to-leaf" 2 (Topology.distance s.topo 1 2)

let test_builder_validation () =
  Alcotest.check_raises "radix<2" (Invalid_argument "Builders.grid: radix < 2") (fun () ->
      ignore (Builders.mesh [ 1 ]));
  Alcotest.check_raises "ring<3" (Invalid_argument "Builders.ring: need at least 3 nodes")
    (fun () -> ignore (Builders.ring 2))

(* ---- SCC ---- *)

let test_scc_components () =
  (* two 2-cycles joined by a one-way edge: 2 components *)
  let succ = function 0 -> [ 1 ] | 1 -> [ 0; 2 ] | 2 -> [ 3 ] | 3 -> [ 2 ] | _ -> [] in
  let comp, count = Scc.tarjan ~n:4 ~succ in
  check ci "count" 2 count;
  check cb "0~1" true (comp.(0) = comp.(1));
  check cb "2~3" true (comp.(2) = comp.(3));
  check cb "0!~2" true (comp.(0) <> comp.(2));
  (* edges go into smaller component ids *)
  check cb "topo order" true (comp.(1) > comp.(2))

let test_scc_acyclic () =
  let succ = function 0 -> [ 1; 2 ] | 1 -> [ 2 ] | _ -> [] in
  let _, count = Scc.tarjan ~n:3 ~succ in
  check ci "all singleton" 3 count;
  check cb "no cycle" false (Scc.has_cycle ~n:3 ~succ);
  check cb "cycle" true (Scc.has_cycle ~n:2 ~succ:(function 0 -> [ 1 ] | _ -> [ 0 ]))

let test_scc_deep_no_overflow () =
  (* a 100k-node path must not blow the stack (iterative Tarjan) *)
  let n = 100_000 in
  let succ v = if v + 1 < n then [ v + 1 ] else [] in
  let _, count = Scc.tarjan ~n ~succ in
  check ci "all singleton" n count

(* ---- dot ---- *)

let test_dot_output () =
  let r = Builders.ring ~unidirectional:true 3 in
  let dot = Dot.to_dot ~label:"tiny" ~highlight:[ 0 ] r.topo in
  check cb "digraph" true (String.length dot > 20);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  check cb "has label" true (contains "tiny" dot);
  check cb "has highlight" true (contains "color=red" dot);
  check cb "has edge" true (contains "n0 -> n1" dot)

(* ---- paper networks ---- *)

let test_figure1_structure () =
  let net = Paper_nets.figure1 () in
  check ci "ring length" 8 (Array.length net.ring_channels);
  check ci "intents" 4 (List.length net.intents);
  check cb "strongly connected" true (Topology.strongly_connected net.topo);
  (* the paper's parameters: accesses 2/3/2/3, in-cycle spans 3/4/3/4 *)
  let accesses = List.map (Paper_nets.access_channel_count net) net.intents in
  check (Alcotest.list ci) "accesses" [ 2; 3; 2; 3 ] accesses;
  let spans =
    List.map (fun i -> List.length (Paper_nets.in_cycle_channels net i)) net.intents
  in
  check (Alcotest.list ci) "spans" [ 3; 4; 3; 4 ] spans;
  (* all four messages start at Src and share cs *)
  List.iter
    (fun (i : Paper_nets.intent) ->
      check ci "src" net.source i.i_src;
      check cb "uses cs" true (List.mem net.cs i.i_path))
    net.intents;
  match Paper_nets.check_blocking_chain net with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_figure1_node_names () =
  let net = Paper_nets.figure1 () in
  (* the ring node naming of the paper: P1 D4 P2 D1 P3 P4 D2 D3 *)
  let names = Array.map (Topology.node_name net.topo) net.ring_nodes in
  check (Alcotest.array cs) "ring names"
    [| "P1"; "D4"; "P2"; "D1"; "P3"; "P4"; "D2"; "D3" |] names

let test_family_scales () =
  List.iter
    (fun p ->
      let net = Paper_nets.family p in
      check ci "ring 8p" (8 * p) (Array.length net.ring_channels);
      let accesses = List.map (Paper_nets.access_channel_count net) net.intents in
      check (Alcotest.list ci) "accesses" [ p + 1; p + 2; p + 1; p + 2 ] accesses;
      match Paper_nets.check_blocking_chain net with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 2; 3; 4 ]

let test_figure2_structure () =
  let net = Paper_nets.figure2 () in
  check ci "two messages" 2 (List.length net.intents);
  check ci "ring 6" 6 (Array.length net.ring_channels);
  match Paper_nets.check_blocking_chain net with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_figure3_all_build () =
  List.iter
    (fun case ->
      let net = Paper_nets.figure3 case in
      check cb "strongly connected" true (Topology.strongly_connected net.topo);
      (* every intent's path is a connected chain ending at its destination *)
      List.iter
        (fun (i : Paper_nets.intent) ->
          let rec walk here = function
            | [] -> check ci "reaches dest" i.i_dst here
            | c :: rest ->
              check ci "chain" here (Topology.src net.topo c);
              walk (Topology.dst net.topo c) rest
          in
          walk i.i_src i.i_path)
        net.intents)
    [ `A; `B; `C; `D; `E; `F ]

let test_figure3_own_sources () =
  let net = Paper_nets.figure3 `F in
  let own = List.filter (fun (i : Paper_nets.intent) -> i.i_src <> net.source) net.intents in
  check ci "one own-source message" 1 (List.length own);
  List.iter
    (fun (i : Paper_nets.intent) -> check cb "no cs" false (List.mem net.cs i.i_path))
    own

let test_paper_net_validation () =
  let bad_entry =
    {
      Paper_nets.s_name = "bad";
      s_ring_len = 6;
      s_msgs =
        [ { m_label = "M"; m_source = Paper_nets.Shared; m_access = 2; m_entry = 6; m_dist = 2 } ];
    }
  in
  Alcotest.check_raises "entry range" (Invalid_argument "Paper_nets: entry out of range")
    (fun () -> ignore (Paper_nets.build bad_entry));
  let dup =
    {
      Paper_nets.s_name = "dup";
      s_ring_len = 6;
      s_msgs =
        [
          { m_label = "M"; m_source = Paper_nets.Shared; m_access = 2; m_entry = 0; m_dist = 2 };
          { m_label = "M"; m_source = Paper_nets.Shared; m_access = 2; m_entry = 1; m_dist = 2 };
        ];
    }
  in
  Alcotest.check_raises "dup labels" (Invalid_argument "Paper_nets: duplicate message labels")
    (fun () -> ignore (Paper_nets.build dup))

let () =
  Alcotest.run "topology"
    [
      ( "multigraph",
        [
          Alcotest.test_case "add nodes/channels" `Quick test_add_nodes_channels;
          Alcotest.test_case "duplicate node" `Quick test_duplicate_node_rejected;
          Alcotest.test_case "self loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "duplicate channel / vcs" `Quick test_duplicate_channel_rejected;
          Alcotest.test_case "find_channel" `Quick test_find_channel;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "strong connectivity" `Quick test_strong_connectivity;
          Alcotest.test_case "distance/shortest path" `Quick test_distance_and_paths;
          Alcotest.test_case "unreachable" `Quick test_unreachable_distance;
        ] );
      ( "builders",
        [
          Alcotest.test_case "mesh counts" `Quick test_mesh_counts;
          Alcotest.test_case "torus counts/vcs/k=2" `Quick test_torus_counts;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
          Alcotest.test_case "unidirectional ring" `Quick test_ring_unidirectional;
          Alcotest.test_case "complete/star" `Quick test_complete_and_star;
          Alcotest.test_case "validation" `Quick test_builder_validation;
        ] );
      ( "scc",
        [
          Alcotest.test_case "components" `Quick test_scc_components;
          Alcotest.test_case "acyclic" `Quick test_scc_acyclic;
          Alcotest.test_case "deep graph no overflow" `Quick test_scc_deep_no_overflow;
        ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_output ]);
      ( "paper_nets",
        [
          Alcotest.test_case "figure1 structure" `Quick test_figure1_structure;
          Alcotest.test_case "figure1 node names" `Quick test_figure1_node_names;
          Alcotest.test_case "family scales" `Quick test_family_scales;
          Alcotest.test_case "figure2 structure" `Quick test_figure2_structure;
          Alcotest.test_case "figure3 builds" `Quick test_figure3_all_build;
          Alcotest.test_case "figure3f own source" `Quick test_figure3_own_sources;
          Alcotest.test_case "spec validation" `Quick test_paper_net_validation;
        ] );
    ]
