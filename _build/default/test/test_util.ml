(* Unit tests for the wr_util foundation library. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check ci "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let child = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int r 1000) in
  let ys = List.init 20 (fun _ -> Rng.int child 1000) in
  check cb "streams differ" true (xs <> ys)

let test_rng_copy () =
  let r = Rng.create 9 in
  ignore (Rng.int r 10);
  let c = Rng.copy r in
  check ci "copy continues identically" (Rng.int r 1000) (Rng.int c 1000)

let test_rng_bernoulli_extremes () =
  let r = Rng.create 3 in
  for _ = 1 to 50 do
    check cb "p=0 never" false (Rng.bernoulli r 0.0)
  done;
  for _ = 1 to 50 do
    check cb "p=1 always" true (Rng.bernoulli r 1.0)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 17 in
  let a = Array.init 30 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check cb "same multiset" true (sorted = Array.init 30 Fun.id)

(* ---- Vec ---- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check ci "length" 100 (Vec.length v);
  check ci "get" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  check ci "set" (-1) (Vec.get v 7)

let test_vec_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check (Alcotest.option ci) "last" (Some 3) (Vec.last v);
  check (Alcotest.option ci) "pop" (Some 3) (Vec.pop v);
  check ci "after pop" 2 (Vec.length v);
  Vec.clear v;
  check (Alcotest.option ci) "pop empty" None (Vec.pop v);
  check cb "is_empty" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check ci "fold sum" 10 (Vec.fold ( + ) 0 v);
  check (Alcotest.list ci) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v);
  check (Alcotest.list ci) "map" [ 2; 4; 6; 8 ] (Vec.to_list (Vec.map (fun x -> 2 * x) v));
  check (Alcotest.list ci) "filter" [ 2; 4 ] (Vec.to_list (Vec.filter (fun x -> x mod 2 = 0) v));
  check cb "exists" true (Vec.exists (fun x -> x = 3) v);
  check cb "not exists" false (Vec.exists (fun x -> x = 7) v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check ci "iteri count" 4 (List.length !seen)

let test_vec_make () =
  let v = Vec.make 5 'x' in
  check ci "make length" 5 (Vec.length v);
  check cb "all x" true (List.for_all (fun c -> c = 'x') (Vec.to_list v))

(* ---- Heap ---- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h k (string_of_int k)) [ 5; 1; 9; 3; 7; 2; 8 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      order := k :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list ci) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !order)

let test_heap_peek () =
  let h = Heap.create () in
  check cb "empty" true (Heap.is_empty h);
  Heap.add h 10 "a";
  Heap.add h 2 "b";
  (match Heap.peek h with
  | Some (2, "b") -> ()
  | _ -> Alcotest.fail "peek should be min");
  check ci "length" 2 (Heap.length h);
  Heap.clear h;
  check cb "cleared" true (Heap.is_empty h)

let test_heap_random_sorts () =
  let r = Rng.create 99 in
  let h = Heap.create () in
  let keys = List.init 500 (fun _ -> Rng.int r 10_000) in
  List.iter (fun k -> Heap.add h k ()) keys;
  let rec drain acc =
    match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
  in
  let drained = drain [] in
  check (Alcotest.list ci) "heap sort" (List.sort compare keys) drained

(* ---- Bitset ---- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check ci "capacity" 100 (Bitset.capacity b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  check cb "mem 0" true (Bitset.mem b 0);
  check cb "mem 63" true (Bitset.mem b 63);
  check cb "mem 50" false (Bitset.mem b 50);
  check ci "cardinal" 3 (Bitset.cardinal b);
  Bitset.remove b 63;
  check cb "removed" false (Bitset.mem b 63);
  check (Alcotest.list ci) "to_list" [ 0; 99 ] (Bitset.to_list b)

let test_bitset_union_copy () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  Bitset.add a 1;
  Bitset.add b 2;
  let c = Bitset.copy a in
  Bitset.union_into c b;
  check (Alcotest.list ci) "union" [ 1; 2 ] (Bitset.to_list c);
  check (Alcotest.list ci) "a untouched" [ 1 ] (Bitset.to_list a);
  check cb "equal" true (Bitset.equal a (Bitset.copy a));
  check cb "not equal" false (Bitset.equal a c)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: out of range") (fun () ->
      Bitset.add b 10)

(* ---- Combinat ---- *)

let fact n =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let test_permutations_count () =
  List.iter
    (fun n ->
      let perms = Combinat.permutations (List.init n Fun.id) in
      check ci (Printf.sprintf "%d! perms" n) (fact n) (List.length perms);
      check ci "all distinct" (fact n) (List.length (List.sort_uniq compare perms)))
    [ 0; 1; 2; 3; 4; 5 ]

let test_iter_permutations () =
  let count = ref 0 in
  let seen = Hashtbl.create 16 in
  Combinat.iter_permutations
    (fun a ->
      incr count;
      Hashtbl.replace seen (Array.to_list a) ())
    [| 1; 2; 3; 4 |];
  check ci "24 visits" 24 !count;
  check ci "24 distinct" 24 (Hashtbl.length seen)

let test_tuples () =
  check ci "3^2" 9 (List.length (Combinat.tuples 2 [ 1; 2; 3 ]));
  check ci "k=0" 1 (List.length (Combinat.tuples 0 [ 1; 2 ]));
  let count = ref 0 in
  Combinat.iter_tuples (fun _ -> incr count) 3 4;
  check ci "4^3 iter" 64 !count

let test_choose () =
  check ci "5C2" 10 (List.length (Combinat.choose 2 [ 1; 2; 3; 4; 5 ]));
  check ci "nC0" 1 (List.length (Combinat.choose 0 [ 1; 2 ]));
  check ci "nCn" 1 (List.length (Combinat.choose 2 [ 1; 2 ]));
  check ci "k>n" 0 (List.length (Combinat.choose 3 [ 1; 2 ]))

let test_cartesian () =
  let prod = Combinat.cartesian [ [ 1; 2 ]; [ 3 ]; [ 4; 5; 6 ] ] in
  check ci "2*1*3" 6 (List.length prod);
  check cb "member" true (List.mem [ 2; 3; 5 ] prod)

(* ---- Stats ---- *)

let cf = Alcotest.float 1e-9

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check ci "count" 8 (Stats.count s);
  check cf "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-6) "variance" (32.0 /. 7.0) (Stats.variance s);
  check cf "min" 2.0 (Stats.min_value s);
  check cf "max" 9.0 (Stats.max_value s)

let test_stats_percentile () =
  let s = Stats.create () in
  List.iter (fun i -> Stats.add s (float_of_int i)) (List.init 100 (fun i -> i + 1));
  check cf "p50" 50.0 (Stats.percentile s 50.0);
  check cf "p95" 95.0 (Stats.percentile s 95.0);
  check cf "p100" 100.0 (Stats.percentile s 100.0)

let test_stats_empty_and_merge () =
  let s = Stats.create () in
  check cf "empty mean" 0.0 (Stats.mean s);
  check cf "empty var" 0.0 (Stats.variance s);
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.0;
  Stats.add b 3.0;
  let m = Stats.merge a b in
  check cf "merged mean" 2.0 (Stats.mean m);
  check ci "merged count" 2 (Stats.count m)

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "22" ];
  let out = Table.render t in
  check cb "has header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  check ci "4 lines + trailing" 5 (List.length lines);
  (* right-aligned values line up at the same column *)
  let value_col s = String.rindex_opt s '2' in
  (match (List.nth lines 2, List.nth lines 3) with
  | a, b ->
    let ca = String.rindex_opt a '1' and cb_ = value_col b in
    check (Alcotest.option ci) "aligned" ca cb_)

let test_table_errors () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "row length" (Invalid_argument "Table.add_row: row length") (fun () ->
      Table.add_row t [ "only-one" ])

(* ---- Union_find ---- *)

let test_union_find () =
  let u = Union_find.create 10 in
  check ci "initial sets" 10 (Union_find.count_sets u);
  Union_find.union u 0 1;
  Union_find.union u 1 2;
  check cb "same" true (Union_find.same u 0 2);
  check cb "diff" false (Union_find.same u 0 3);
  check ci "sets after" 8 (Union_find.count_sets u)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "pop/last/clear" `Quick test_vec_pop_last;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          Alcotest.test_case "make" `Quick test_vec_make;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek/clear" `Quick test_heap_peek;
          Alcotest.test_case "random sorts" `Quick test_heap_random_sorts;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "union/copy/equal" `Quick test_bitset_union_copy;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "permutations count" `Quick test_permutations_count;
          Alcotest.test_case "iter_permutations" `Quick test_iter_permutations;
          Alcotest.test_case "tuples" `Quick test_tuples;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "cartesian" `Quick test_cartesian;
        ] );
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty/merge" `Quick test_stats_empty_and_merge;
        ] );
      ( "table",
        [
          Alcotest.test_case "render/alignment" `Quick test_table_render;
          Alcotest.test_case "errors" `Quick test_table_errors;
        ] );
      ("union_find", [ Alcotest.test_case "basic" `Quick test_union_find ]);
    ]
