(* Unit tests for channel dependency graphs, cycle enumeration, the
   Dally-Seitz certificate, and the theorem classifiers. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---- construction and acyclicity ---- *)

let test_xy_mesh_acyclic () =
  let rt = Dimension_order.mesh (Builders.mesh [ 4; 4 ]) in
  let cdg = Cdg.build rt in
  check cb "acyclic" true (Cdg.is_acyclic cdg);
  check ci "no cycles" 0 (List.length (Cdg.elementary_cycles cdg));
  (* Dally-Seitz numbering: strictly increasing along every dependency *)
  match Cdg.numbering cdg with
  | None -> Alcotest.fail "expected a numbering"
  | Some f ->
    Topology.iter_channels
      (fun c ->
        List.iter
          (fun c' ->
            if f.(c) >= f.(c') then
              Alcotest.failf "numbering not increasing: %d -> %d" f.(c) f.(c'))
          (Cdg.succ cdg c))
      (Routing.topology rt)

let test_numbering_absent_when_cyclic () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let cdg = Cdg.build rt in
  check cb "cyclic" false (Cdg.is_acyclic cdg);
  check cb "no numbering" true (Cdg.numbering cdg = None)

let test_ring_cycle_enumeration () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 5) in
  let cdg = Cdg.build rt in
  let cycles = Cdg.elementary_cycles cdg in
  check ci "one cycle" 1 (List.length cycles);
  check ci "full ring" 5 (List.length (List.hd cycles))

let test_dateline_ring_acyclic () =
  let rt = Ring_routing.dateline (Builders.ring ~unidirectional:true ~vcs:2 6) in
  check cb "acyclic" true (Cdg.is_acyclic (Cdg.build rt))

let test_torus_cycles () =
  (* each of the 5 rows and 5 columns contributes a +ring and a -ring *)
  let rt = Dimension_order.torus (Builders.torus [ 5; 5 ]) in
  let cdg = Cdg.build rt in
  check cb "cyclic" false (Cdg.is_acyclic cdg);
  let cycles = Cdg.elementary_cycles cdg in
  check ci "20 ring cycles" 20 (List.length cycles);
  List.iter (fun c -> check ci "each of length 5" 5 (List.length c)) cycles

let test_torus_dateline_acyclic () =
  let rt = Dimension_order.torus ~datelines:true (Builders.torus ~vcs:2 [ 5; 5 ]) in
  check cb "acyclic" true (Cdg.is_acyclic (Cdg.build rt))

let test_edge_support_and_users () =
  let rt = Dimension_order.mesh (Builders.mesh [ 3; 1 + 2 ]) in
  let cdg = Cdg.build rt in
  let topo = Routing.topology rt in
  (* every consecutive channel pair of every path is an edge with that
     message in its support (CDG soundness) *)
  let n = Topology.num_nodes topo in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then begin
        let p = Routing.path_exn rt s d in
        let rec chk = function
          | c1 :: (c2 :: _ as rest) ->
            if not (List.mem c2 (Cdg.succ cdg c1)) then Alcotest.fail "missing edge";
            if not (List.mem (s, d) (Cdg.edge_support cdg c1 c2)) then
              Alcotest.fail "missing support";
            chk rest
          | _ -> ()
        in
        chk p;
        List.iter
          (fun c ->
            if not (List.mem (s, d) (Cdg.channel_users cdg c)) then
              Alcotest.fail "missing user")
          p;
        check (Alcotest.list ci) "path cached" p (Cdg.path_of cdg (s, d))
      end
    done
  done

let test_cdg_completeness () =
  (* every CDG edge is realized by at least one supporting path *)
  let rt = Dimension_order.hypercube (Builders.hypercube 3) in
  let cdg = Cdg.build rt in
  Topology.iter_channels
    (fun c1 ->
      List.iter
        (fun c2 ->
          match Cdg.edge_support cdg c1 c2 with
          | [] -> Alcotest.fail "edge without support"
          | (s, d) :: _ ->
            let p = Routing.path_exn rt s d in
            let rec consecutive = function
              | a :: (b :: _ as rest) -> (a = c1 && b = c2) || consecutive rest
              | _ -> false
            in
            check cb "support realizes edge" true (consecutive p))
        (Cdg.succ cdg c1))
    (Routing.topology rt)

(* ---- figure-1 analysis ---- *)

let fig1_cdg () =
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  (net, Cdg.build rt)

let test_figure1_single_cycle () =
  let net, cdg = fig1_cdg () in
  let cycles = Cdg.elementary_cycles cdg in
  check ci "one cycle" 1 (List.length cycles);
  let cycle = List.hd cycles in
  check ci "length 8" 8 (List.length cycle);
  (* the cycle is exactly the highlighted ring *)
  let ring = Array.to_list net.ring_channels in
  check cb "same channels" true (List.sort compare cycle = List.sort compare ring)

let test_figure1_analysis () =
  let net, cdg = fig1_cdg () in
  let cycle = List.hd (Cdg.elementary_cycles cdg) in
  let analysis = Cycle_analysis.analyze cdg cycle in
  check ci "four supporting messages" 4 (List.length analysis.Cycle_analysis.a_messages);
  List.iter
    (fun (cm : Cycle_analysis.cycle_message) ->
      check cb "contiguous" true cm.cm_contiguous)
    analysis.Cycle_analysis.a_messages;
  (* cs is the unique outside shared channel, used by all four *)
  (match analysis.Cycle_analysis.a_outside_shared with
  | [ sc ] ->
    check ci "cs" net.cs sc.Cycle_analysis.sc_channel;
    check ci "four sharers" 4 (List.length sc.Cycle_analysis.sc_users)
  | l -> Alcotest.failf "expected one outside shared channel, got %d" (List.length l));
  (* four sharers is beyond Theorem 5: the classifier defers to search *)
  match snd (Cycle_analysis.classify cdg cycle) with
  | Cycle_analysis.Needs_search _ -> ()
  | v -> Alcotest.failf "expected Needs_search, got %s" (Format.asprintf "%a" Cycle_analysis.pp_verdict v)

let test_figure2_classify_theorem4 () =
  let net = Paper_nets.figure2 () in
  let cdg = Cdg.build (Cd_algorithm.of_net net) in
  match Cdg.elementary_cycles cdg with
  | [ cycle ] -> (
    match snd (Cycle_analysis.classify cdg cycle) with
    | Cycle_analysis.Deadlock_reachable why ->
      check cb "mentions theorem 4" true (String.sub why 0 9 = "Theorem 4")
    | v -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Cycle_analysis.pp_verdict v))
  | l -> Alcotest.failf "expected one cycle, got %d" (List.length l)

let test_ring_classify_theorem2 () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let cdg = Cdg.build rt in
  match Cdg.elementary_cycles cdg with
  | [ cycle ] -> (
    match snd (Cycle_analysis.classify cdg cycle) with
    | Cycle_analysis.Deadlock_reachable why ->
      check cb "mentions theorem 2" true (String.sub why 0 9 = "Theorem 2")
    | v -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Cycle_analysis.pp_verdict v))
  | l -> Alcotest.failf "expected one cycle, got %d" (List.length l)

let test_suffix_closed_shortcut () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let cdg = Cdg.build rt in
  let cycle = List.hd (Cdg.elementary_cycles cdg) in
  match snd (Cycle_analysis.classify ~suffix_closed:true cdg cycle) with
  | Cycle_analysis.Deadlock_reachable why ->
    check cb "mentions corollary 2" true (String.length why > 0 && String.sub why 0 11 = "Corollary 2")
  | v -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Cycle_analysis.pp_verdict v)

let figure3_verdict case =
  let net = Paper_nets.figure3 case in
  let cdg = Cdg.build (Cd_algorithm.of_net net) in
  match Cdg.elementary_cycles cdg with
  | [ cycle ] -> snd (Cycle_analysis.classify cdg cycle)
  | l -> Alcotest.failf "expected one cycle, got %d" (List.length l)

let test_figure3_classifications () =
  (match figure3_verdict `A with
  | Cycle_analysis.Unreachable _ -> ()
  | v -> Alcotest.failf "a: %s" (Format.asprintf "%a" Cycle_analysis.pp_verdict v));
  (match figure3_verdict `B with
  | Cycle_analysis.Unreachable _ -> ()
  | v -> Alcotest.failf "b: %s" (Format.asprintf "%a" Cycle_analysis.pp_verdict v));
  List.iter
    (fun (case, name) ->
      match figure3_verdict case with
      | Cycle_analysis.Deadlock_reachable _ -> ()
      | v -> Alcotest.failf "%s: %s" name (Format.asprintf "%a" Cycle_analysis.pp_verdict v))
    [ (`C, "c"); (`D, "d"); (`E, "e"); (`F, "f") ]

(* ---- theorem 5 unit tests on synthetic inputs ---- *)

let sharer label access entry span =
  { Theorem5.sh_label = label; sh_access = access; sh_entry = entry; sh_span = span }

let test_theorem5_pure_three () =
  (* max followed by min, distinct accesses, generous spans: unreachable *)
  let input =
    { Theorem5.cycle_len = 9;
      sharers = [ sharer "a" 2 0 5; sharer "b" 3 3 5; sharer "c" 4 6 5 ];
      others = [] }
  in
  let conds, unreachable = Theorem5.check input in
  check cb "unreachable" true unreachable;
  check ci "eight conditions" 8 (List.length conds)

let test_theorem5_decreasing_rotation () =
  (* accesses decreasing along the cyclic order: the serial construction
     works, so the cycle is reachable *)
  let input =
    { Theorem5.cycle_len = 9;
      sharers = [ sharer "a" 4 0 5; sharer "b" 3 3 5; sharer "c" 2 6 5 ];
      others = [] }
  in
  let _, unreachable = Theorem5.check input in
  check cb "reachable" false unreachable

let test_theorem5_equal_accesses () =
  (* ties forbid a strictly decreasing rotation: unreachable *)
  let input =
    { Theorem5.cycle_len = 9;
      sharers = [ sharer "a" 3 0 5; sharer "b" 3 3 5; sharer "c" 3 6 5 ];
      others = [] }
  in
  let conds, unreachable = Theorem5.check input in
  check cb "unreachable" true unreachable;
  (* but condition 3 (distinctness) itself is reported violated *)
  let c3 = List.find (fun (c : Theorem5.condition) -> c.c_index = 3) conds in
  check cb "cond3 violated" false c3.Theorem5.c_holds

let test_theorem5_parking () =
  (* a non-sharer immediately before Mmax with k(max) <= a(max):
     condition 4 is violated and the cycle is reachable *)
  let input =
    { Theorem5.cycle_len = 12;
      sharers = [ sharer "max" 4 2 3; sharer "min" 2 5 4; sharer "mid" 3 8 5 ];
      others = [ { Theorem5.ot_entry = 0; ot_span = 6; ot_uses_shared = false } ] }
  in
  let conds, unreachable = Theorem5.check input in
  let c4 = List.find (fun (c : Theorem5.condition) -> c.c_index = 4) conds in
  check cb "cond4 violated" false c4.Theorem5.c_holds;
  check cb "reachable" false unreachable

let test_theorem5_interposed_bridge () =
  (* a long non-sharer between min and mid violates condition 8 *)
  let input =
    { Theorem5.cycle_len = 12;
      sharers = [ sharer "max" 4 0 4; sharer "min" 2 3 3; sharer "mid" 3 8 5 ];
      others = [ { Theorem5.ot_entry = 5; ot_span = 4; ot_uses_shared = false } ] }
  in
  let conds, unreachable = Theorem5.check input in
  let c8 = List.find (fun (c : Theorem5.condition) -> c.c_index = 8) conds in
  check cb "cond8 violated" false c8.Theorem5.c_holds;
  check cb "reachable" false unreachable

let test_theorem5_wrong_arity () =
  Alcotest.check_raises "two sharers"
    (Invalid_argument "Theorem5.check: exactly three sharers required") (fun () ->
      ignore
        (Theorem5.check
           { Theorem5.cycle_len = 6; sharers = [ sharer "a" 2 0 3; sharer "b" 3 3 3 ];
             others = [] }))

let () =
  Alcotest.run "cdg"
    [
      ( "construction",
        [
          Alcotest.test_case "xy mesh acyclic + numbering" `Quick test_xy_mesh_acyclic;
          Alcotest.test_case "cyclic has no numbering" `Quick test_numbering_absent_when_cyclic;
          Alcotest.test_case "ring cycle enumeration" `Quick test_ring_cycle_enumeration;
          Alcotest.test_case "dateline ring acyclic" `Quick test_dateline_ring_acyclic;
          Alcotest.test_case "torus 20 ring cycles" `Quick test_torus_cycles;
          Alcotest.test_case "torus dateline acyclic" `Quick test_torus_dateline_acyclic;
          Alcotest.test_case "soundness (support/users)" `Quick test_edge_support_and_users;
          Alcotest.test_case "completeness" `Quick test_cdg_completeness;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "single 8-cycle" `Quick test_figure1_single_cycle;
          Alcotest.test_case "analysis" `Quick test_figure1_analysis;
        ] );
      ( "classification",
        [
          Alcotest.test_case "figure2 theorem 4" `Quick test_figure2_classify_theorem4;
          Alcotest.test_case "ring theorem 2" `Quick test_ring_classify_theorem2;
          Alcotest.test_case "suffix-closed corollary 2" `Quick test_suffix_closed_shortcut;
          Alcotest.test_case "figure3 verdicts" `Quick test_figure3_classifications;
        ] );
      ( "theorem5",
        [
          Alcotest.test_case "pure three sharers unreachable" `Quick test_theorem5_pure_three;
          Alcotest.test_case "decreasing rotation reachable" `Quick
            test_theorem5_decreasing_rotation;
          Alcotest.test_case "equal accesses unreachable" `Quick test_theorem5_equal_accesses;
          Alcotest.test_case "parking violates cond 4" `Quick test_theorem5_parking;
          Alcotest.test_case "interposed bridge violates cond 8" `Quick
            test_theorem5_interposed_bridge;
          Alcotest.test_case "wrong arity" `Quick test_theorem5_wrong_arity;
        ] );
    ]
