(* Tests for synthetic traffic patterns and workload measurement. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let mesh4 = Builders.mesh [ 4; 4 ]

let test_transpose () =
  let p = Traffic.transpose mesh4 in
  let src = mesh4.node_at [| 1; 3 |] in
  check (Alcotest.option ci) "swap" (Some (mesh4.node_at [| 3; 1 |])) (p.Traffic.dest src);
  (* diagonal nodes are fixed points and stay silent *)
  check (Alcotest.option ci) "fixed point" None (p.Traffic.dest (mesh4.node_at [| 2; 2 |]))

let test_transpose_requires_square () =
  let rect = Builders.mesh [ 2; 4 ] in
  Alcotest.check_raises "square only"
    (Invalid_argument "Traffic.transpose: square 2-D scheme required") (fun () ->
      ignore (Traffic.transpose rect))

let test_bit_complement () =
  let p = Traffic.bit_complement mesh4 in
  check (Alcotest.option ci) "mirror" (Some (mesh4.node_at [| 3; 0 |]))
    (p.Traffic.dest (mesh4.node_at [| 0; 3 |]))

let test_bit_reverse () =
  let h = Builders.hypercube 3 in
  let p = Traffic.bit_reverse h in
  (* node 001 -> 100 *)
  check (Alcotest.option ci) "reverse" (Some (h.node_at [| 1; 0; 0 |]))
    (p.Traffic.dest (h.node_at [| 0; 0; 1 |]))

let test_tornado () =
  let t5 = Builders.torus [ 5 ] in
  let p = Traffic.tornado t5 in
  (* radix 5: shift by ceil(5/2)-1 = 2 *)
  check (Alcotest.option ci) "shift 2" (Some 2) (p.Traffic.dest 0);
  check (Alcotest.option ci) "wraps" (Some 1) (p.Traffic.dest 4)

let test_neighbor () =
  let p = Traffic.neighbor mesh4 in
  check (Alcotest.option ci) "+1 dim0" (Some (mesh4.node_at [| 1; 0 |]))
    (p.Traffic.dest (mesh4.node_at [| 0; 0 |]))

let test_uniform_never_self () =
  let rng = Rng.create 4 in
  let p = Traffic.uniform rng mesh4 in
  for src = 0 to 15 do
    for _ = 1 to 50 do
      match p.Traffic.dest src with
      | Some d -> if d = src then Alcotest.fail "self-destination"
      | None -> Alcotest.fail "uniform always has a destination"
    done
  done

let test_hotspot_bias () =
  let rng = Rng.create 4 in
  let spot = mesh4.node_at [| 0; 0 |] in
  let p = Traffic.hotspot ~fraction:0.5 rng mesh4 spot in
  let hits = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    match p.Traffic.dest (mesh4.node_at [| 3; 3 |]) with
    | Some d when d = spot -> incr hits
    | _ -> ()
  done;
  (* ~50% + uniform share; far more than the uniform 1/15 *)
  check cb "biased" true (!hits > n / 3)

let test_permutation_schedule () =
  let sched = Traffic.permutation_schedule (Traffic.transpose mesh4) ~coords:mesh4 ~length:5 in
  (* 16 nodes minus the 4 diagonal fixed points *)
  check ci "12 messages" 12 (List.length sched);
  List.iter
    (fun (m : Schedule.message_spec) ->
      check ci "length" 5 m.ms_length;
      check ci "at zero" 0 m.ms_inject_at)
    sched

let test_bernoulli_schedule_deterministic () =
  let mk () =
    let rng = Rng.create 123 in
    let p = Traffic.uniform rng mesh4 in
    Traffic.bernoulli_schedule rng p ~coords:mesh4 ~rate:0.05 ~length:3 ~horizon:100
  in
  let a = mk () and b = mk () in
  check cb "same schedule from same seed" true (a = b);
  check cb "labels unique" true
    (let labels = List.map (fun (m : Schedule.message_spec) -> m.ms_label) a in
     List.length (List.sort_uniq compare labels) = List.length labels);
  List.iter
    (fun (m : Schedule.message_spec) ->
      check cb "time in horizon" true (m.ms_inject_at >= 0 && m.ms_inject_at < 100))
    a

let test_bernoulli_rate_scales () =
  let count rate =
    let rng = Rng.create 7 in
    let p = Traffic.uniform rng mesh4 in
    List.length (Traffic.bernoulli_schedule rng p ~coords:mesh4 ~rate ~length:1 ~horizon:200)
  in
  let low = count 0.01 and high = count 0.1 in
  check cb "more traffic at higher rate" true (high > 3 * low)

let test_measure_delivery () =
  let rt = Dimension_order.mesh mesh4 in
  let sched = Traffic.permutation_schedule (Traffic.transpose mesh4) ~coords:mesh4 ~length:4 in
  let rep = Measure.run rt sched in
  check ci "all delivered" rep.Measure.total rep.Measure.delivered;
  check cb "not deadlocked" false rep.Measure.deadlocked;
  check cb "positive latency" true (rep.Measure.avg_latency > 0.0);
  check cb "p95 >= avg intuition" true (rep.Measure.p95_latency >= 1.0);
  check cb "throughput positive" true (rep.Measure.throughput > 0.0)

let test_measure_deadlock () =
  let t5 = Builders.torus [ 5; 5 ] in
  let rt = Dimension_order.torus t5 in
  let sched = Traffic.permutation_schedule (Traffic.tornado t5) ~coords:t5 ~length:8 in
  let rep = Measure.run rt sched in
  check cb "deadlocked" true rep.Measure.deadlocked

let test_measure_pp () =
  let rt = Dimension_order.mesh mesh4 in
  let sched = [ Schedule.message ~length:2 "m" 0 5 ] in
  let rep = Measure.run rt sched in
  let s = Format.asprintf "%a" Measure.pp rep in
  check cb "renders" true (String.length s > 20)

let () =
  Alcotest.run "workload"
    [
      ( "patterns",
        [
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "transpose square-only" `Quick test_transpose_requires_square;
          Alcotest.test_case "bit complement" `Quick test_bit_complement;
          Alcotest.test_case "bit reverse" `Quick test_bit_reverse;
          Alcotest.test_case "tornado" `Quick test_tornado;
          Alcotest.test_case "neighbor" `Quick test_neighbor;
          Alcotest.test_case "uniform no self" `Quick test_uniform_never_self;
          Alcotest.test_case "hotspot bias" `Quick test_hotspot_bias;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "permutation" `Quick test_permutation_schedule;
          Alcotest.test_case "bernoulli deterministic" `Quick test_bernoulli_schedule_deterministic;
          Alcotest.test_case "rate scales" `Quick test_bernoulli_rate_scales;
        ] );
      ( "measure",
        [
          Alcotest.test_case "delivery stats" `Quick test_measure_delivery;
          Alcotest.test_case "deadlock reported" `Quick test_measure_deadlock;
          Alcotest.test_case "pp" `Quick test_measure_pp;
        ] );
    ]
