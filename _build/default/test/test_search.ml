(* Tests for the schedule-space explorer and the Section-6 min-delay probe. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let fig2_templates net =
  List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents

let test_space_size () =
  let net = Paper_nets.figure2 () in
  let templates = fig2_templates net in
  let sp = Explorer.default_space templates in
  (* 2 msgs: 2! orders x 2! priorities x 2 gaps x 4 lengths each x 2 buffers *)
  check ci "size" (2 * 2 * 2 * (4 * 4) * 2) (Explorer.space_size sp);
  let sp2 = { sp with try_all_orders = false; priorities = Explorer.Fifo_only } in
  check ci "trimmed" (2 * 16 * 2) (Explorer.space_size sp2)

let test_templates () =
  let net = Paper_nets.figure2 () in
  match fig2_templates net with
  | [ t1; t2 ] ->
    (* spans are 4; candidates span-2..span+1 *)
    check (Alcotest.list ci) "lengths" [ 2; 3; 4; 5 ] t1.Explorer.t_lengths;
    check (Alcotest.list ci) "lengths" [ 2; 3; 4; 5 ] t2.Explorer.t_lengths;
    check (Alcotest.list ci) "shared-source offsets" [ 0 ] t1.Explorer.t_offsets
  | _ -> Alcotest.fail "expected two templates"

let test_own_source_offsets () =
  let net = Paper_nets.figure3 `F in
  let own =
    List.find (fun (i : Paper_nets.intent) -> i.i_src <> net.source) net.intents
  in
  let t = Explorer.intent_template net own in
  check cb "offset window" true (List.length t.Explorer.t_offsets > 1)

let test_minimal_length_template () =
  let coords = Builders.ring ~unidirectional:true 5 in
  let rt = Ring_routing.clockwise coords in
  let t = Explorer.minimal_length_template rt "m" 0 3 in
  check (Alcotest.list ci) "hops+extra" [ 3; 4 ] t.Explorer.t_lengths

let test_figure2_witness_found () =
  let net = Paper_nets.figure2 () in
  let rt = Cd_algorithm.of_net net in
  match Explorer.explore rt (Explorer.default_space (fig2_templates net)) with
  | Explorer.Deadlock_found { witness; runs } ->
    check cb "ran some" true (runs > 0);
    (* the witness must replay to the same deadlock *)
    let replay =
      Engine.run ~config:witness.Explorer.w_config rt witness.Explorer.w_schedule
    in
    (match replay with
    | Engine.Deadlock d ->
      check ci "same cycle" witness.Explorer.w_info.Engine.d_cycle d.Engine.d_cycle;
      check cb "wait cycle closes" true (List.length d.Engine.d_wait_cycle >= 2)
    | _ -> Alcotest.fail "witness does not replay");
    (* lengths in the witness are within the candidate sets *)
    List.iter
      (fun (m : Schedule.message_spec) ->
        check cb "length in range" true (m.ms_length >= 2 && m.ms_length <= 5))
      witness.Explorer.w_schedule
  | Explorer.No_deadlock { runs } -> Alcotest.failf "no deadlock in %d runs" runs

let test_figure1_trimmed_safe () =
  (* the full sweep lives in the experiments; here a representative slice *)
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let templates =
    List.map (fun i -> Explorer.intent_template ~extra:[ -2; -1; 0 ] net i) net.intents
  in
  let sp =
    { (Explorer.default_space templates) with
      buffers = [ 1 ];
      priorities = Explorer.Follow_order;
      gaps = [ 0; 1 ] }
  in
  match Explorer.explore rt sp with
  | Explorer.No_deadlock { runs } -> check ci "exhausted" (Explorer.space_size sp) runs
  | Explorer.Deadlock_found _ -> Alcotest.fail "figure 1 must be deadlock-free"

let test_stop_at_first_false_counts_all () =
  let net = Paper_nets.figure2 () in
  let rt = Cd_algorithm.of_net net in
  let sp = Explorer.default_space (fig2_templates net) in
  match Explorer.explore ~stop_at_first:false rt sp with
  | Explorer.Deadlock_found { runs; _ } -> check ci "full space" (Explorer.space_size sp) runs
  | Explorer.No_deadlock _ -> Alcotest.fail "expected witnesses"

let test_empty_space_rejected () =
  let net = Paper_nets.figure2 () in
  let rt = Cd_algorithm.of_net net in
  Alcotest.check_raises "no messages"
    (Invalid_argument "Explorer.explore: empty message set") (fun () ->
      ignore (Explorer.explore rt (Explorer.default_space [])));
  let bad =
    { (List.hd (fig2_templates net)) with Explorer.t_lengths = [] }
  in
  Alcotest.check_raises "empty candidates"
    (Invalid_argument "Explorer.explore: template with empty candidate list") (fun () ->
      ignore (Explorer.explore rt (Explorer.default_space [ bad ])))

let test_min_delay_family1 () =
  let net = Paper_nets.family 1 in
  let r = Min_delay.search ~max_h:3 net in
  check cb "safe without delay" true r.Min_delay.md_no_delay_safe;
  check (Alcotest.option ci) "threshold 2" (Some 2) r.Min_delay.md_min_delay;
  check cb "witness present" true (r.Min_delay.md_witness <> None)

let test_min_delay_none_within_budget () =
  let net = Paper_nets.family 2 in
  let r = Min_delay.search ~max_h:1 net in
  check cb "safe" true r.Min_delay.md_no_delay_safe;
  check (Alcotest.option ci) "none within 1" None r.Min_delay.md_min_delay

(* ---- model checker ---- *)

let test_mc_ring_deadlock () =
  let r = Builders.ring ~unidirectional:true 4 in
  let rt = Ring_routing.clockwise r in
  let msgs =
    List.init 4 (fun i ->
        { Model_checker.mc_label = Printf.sprintf "m%d" i; mc_src = i; mc_dst = (i + 2) mod 4;
          mc_length = 2 })
  in
  match Model_checker.check rt msgs with
  | Model_checker.Deadlock { cycle; _ } -> check ci "cycle of four" 4 (List.length cycle)
  | v -> Alcotest.failf "expected deadlock: %s" (Format.asprintf "%a" Model_checker.pp v)

let test_mc_agrees_with_explorer_on_fig2 () =
  let net = Paper_nets.figure2 () in
  match Model_checker.check_net net with
  | Model_checker.Deadlock { cycle; _ } -> check ci "two-cycle" 2 (List.length cycle)
  | v -> Alcotest.failf "expected deadlock: %s" (Format.asprintf "%a" Model_checker.pp v)

let test_mc_fig3a_safe_but_stalls_deadlock () =
  let net = Paper_nets.figure3 `A in
  (match Model_checker.check_net net with
  | Model_checker.Safe { states } -> check cb "explored some" true (states > 1000)
  | v -> Alcotest.failf "expected safe: %s" (Format.asprintf "%a" Model_checker.pp v));
  match Model_checker.check_net ~allow_stalls:true net with
  | Model_checker.Deadlock _ -> ()
  | v -> Alcotest.failf "expected stall deadlock: %s" (Format.asprintf "%a" Model_checker.pp v)

let test_mc_figure1_safe () =
  match Model_checker.check_net (Paper_nets.figure1 ()) with
  | Model_checker.Safe { states } -> check cb "large exploration" true (states > 100_000)
  | v -> Alcotest.failf "expected safe: %s" (Format.asprintf "%a" Model_checker.pp v)

let test_mc_budget () =
  let net = Paper_nets.figure1 () in
  match Model_checker.check_net ~max_states:100 net with
  | Model_checker.Out_of_budget { states } -> check cb "stopped at budget" true (states >= 100)
  | v -> Alcotest.failf "expected out-of-budget: %s" (Format.asprintf "%a" Model_checker.pp v)

let test_mc_validation () =
  let r = Builders.ring ~unidirectional:true 4 in
  let rt = Ring_routing.clockwise r in
  Alcotest.check_raises "empty" (Invalid_argument "Model_checker.check: empty message set")
    (fun () -> ignore (Model_checker.check rt []));
  Alcotest.check_raises "dup labels" (Invalid_argument "Model_checker.check: duplicate labels")
    (fun () ->
      ignore
        (Model_checker.check rt
           [ { Model_checker.mc_label = "m"; mc_src = 0; mc_dst = 1; mc_length = 1 };
             { Model_checker.mc_label = "m"; mc_src = 1; mc_dst = 2; mc_length = 1 } ]))

let () =
  Alcotest.run "search"
    [
      ( "spaces",
        [
          Alcotest.test_case "space size" `Quick test_space_size;
          Alcotest.test_case "intent templates" `Quick test_templates;
          Alcotest.test_case "own-source offsets" `Quick test_own_source_offsets;
          Alcotest.test_case "minimal-length template" `Quick test_minimal_length_template;
          Alcotest.test_case "empty spaces rejected" `Quick test_empty_space_rejected;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "figure2 witness + replay" `Quick test_figure2_witness_found;
          Alcotest.test_case "figure1 slice safe" `Slow test_figure1_trimmed_safe;
          Alcotest.test_case "full enumeration" `Quick test_stop_at_first_false_counts_all;
        ] );
      ( "min_delay",
        [
          Alcotest.test_case "family 1 threshold" `Slow test_min_delay_family1;
          Alcotest.test_case "budget respected" `Slow test_min_delay_none_within_budget;
        ] );
      ( "model_checker",
        [
          Alcotest.test_case "ring deadlock" `Quick test_mc_ring_deadlock;
          Alcotest.test_case "figure2 deadlock" `Quick test_mc_agrees_with_explorer_on_fig2;
          Alcotest.test_case "fig3a safe / stalls deadlock" `Quick
            test_mc_fig3a_safe_but_stalls_deadlock;
          Alcotest.test_case "figure1 safe" `Slow test_mc_figure1_safe;
          Alcotest.test_case "budget" `Quick test_mc_budget;
          Alcotest.test_case "validation" `Quick test_mc_validation;
        ] );
    ]
