test/test_util.ml: Alcotest Array Bitset Combinat Fun Hashtbl Heap List Printf Rng Stats String Table Union_find Vec
