test/test_routing.ml: Alcotest Array Builders Cd_algorithm Cdg Dimension_order Format Hashtbl List Paper_nets Properties Ring_routing Routing String Table_routing Topology Turn_model
