test/test_topology.ml: Alcotest Array Builders Dot List Paper_nets Scc String Topology
