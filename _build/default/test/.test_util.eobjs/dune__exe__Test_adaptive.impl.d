test/test_adaptive.ml: Adaptive Adaptive_engine Alcotest Array Builders Dimension_order Duato Engine Format List Option Printf Ring_routing Rng Routing Scc Schedule Topology Traffic
