test/test_integration.ml: Alcotest Builders Cd_algorithm Dimension_order Experiments Format List Paper_nets Ring_routing String Turn_model Verify
