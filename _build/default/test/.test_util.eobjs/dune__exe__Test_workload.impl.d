test/test_workload.ml: Alcotest Builders Dimension_order Format List Measure Rng Schedule String Traffic
