test/test_sim.ml: Alcotest Builders Engine Format List Option Printf Ring_routing Routing Schedule String Topology
