test/test_search.ml: Alcotest Builders Cd_algorithm Engine Explorer Format List Min_delay Model_checker Paper_nets Printf Ring_routing Schedule
