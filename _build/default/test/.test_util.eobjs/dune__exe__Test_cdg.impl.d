test/test_cdg.ml: Alcotest Array Builders Cd_algorithm Cdg Cycle_analysis Dimension_order Format List Paper_nets Ring_routing Routing String Theorem5 Topology
