(* Quickstart: build a network, pick a routing algorithm, inspect its
   channel dependency graph, and simulate some messages.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 4x4 mesh with XY (dimension-order) routing. *)
  let coords = Builders.mesh [ 4; 4 ] in
  let rt = Dimension_order.mesh coords in

  (* Every routing algorithm can be validated: all pairs must deliver. *)
  (match Routing.validate rt with
  | Ok () -> print_endline "routing algorithm delivers between all pairs"
  | Error e -> failwith e);

  (* Look at one path. *)
  let src = coords.node_at [| 0; 0 |] and dst = coords.node_at [| 3; 2 |] in
  let path = Routing.path_exn rt src dst in
  Format.printf "path (0,0) -> (3,2): %a@." (Routing.pp_path rt) path;

  (* Static deadlock analysis: the CDG of XY routing is acyclic, so the
     Dally-Seitz numbering certificate exists. *)
  let cdg = Cdg.build rt in
  Format.printf "CDG: %d channels, %d dependencies, acyclic: %b@."
    (Topology.num_channels coords.topo) (Cdg.num_edges cdg) (Cdg.is_acyclic cdg);

  (* Simulate three concurrent messages, flit by flit. *)
  let sched =
    [
      Schedule.message ~length:6 "a" (coords.node_at [| 0; 0 |]) (coords.node_at [| 3; 3 |]);
      Schedule.message ~length:6 "b" (coords.node_at [| 3; 0 |]) (coords.node_at [| 0; 3 |]);
      Schedule.message ~length:6 ~at:2 "c" (coords.node_at [| 1; 1 |]) (coords.node_at [| 2; 2 |]);
    ]
  in
  match Engine.run rt sched with
  | Engine.All_delivered { finished_at; messages } ->
    Format.printf "all delivered by cycle %d:@." finished_at;
    List.iter
      (fun (r : Engine.message_result) ->
        Format.printf "  %s: injected %s, delivered %s@." r.r_label
          (match r.r_injected_at with Some t -> string_of_int t | None -> "-")
          (match r.r_delivered_at with Some t -> string_of_int t | None -> "-"))
      messages
  | outcome -> Format.printf "%a@." (Engine.pp_outcome coords.topo) outcome
