(* Deadlock in the wild, and the classic fix.

   E-cube routing on a torus closes dependency cycles through the
   wraparound links: under a saturating permutation the simulator runs
   straight into a deadlock, and the wait-for cycle is printed.  Adding a
   second virtual channel with the dateline discipline cuts every cycle
   (the CDG becomes acyclic) and the same traffic delivers.

   Run with: dune exec examples/torus_dateline.exe *)

let run name rt coords =
  Format.printf "@.--- %s ---@." name;
  let cdg = Cdg.build rt in
  Format.printf "CDG acyclic: %b@." (Cdg.is_acyclic cdg);
  let pattern = Traffic.tornado coords in
  let sched = Traffic.permutation_schedule pattern ~coords ~length:8 in
  match Engine.run rt sched with
  | Engine.Deadlock d ->
    Format.printf "%a@." (Engine.pp_outcome coords.Builders.topo) (Engine.Deadlock d)
  | outcome -> Format.printf "%a@." (Engine.pp_outcome coords.Builders.topo) outcome

let () =
  let t1 = Builders.torus [ 5; 5 ] in
  run "torus 5x5, e-cube, no virtual channels" (Dimension_order.torus t1) t1;
  let t2 = Builders.torus ~vcs:2 [ 5; 5 ] in
  run "torus 5x5, e-cube, dateline virtual channels"
    (Dimension_order.torus ~datelines:true t2) t2;
  print_newline ();
  print_endline "the dateline discipline is the Dally-Seitz fix: break each ring's cycle";
  print_endline "by switching to virtual channel 1 at the wraparound link.  The paper's";
  print_endline "point is that such acyclicity is SUFFICIENT but -- contrary to folklore --";
  print_endline "NOT NECESSARY, even for oblivious routing (see cyclic_dependency.exe)."
