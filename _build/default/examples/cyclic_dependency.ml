(* The paper's headline example, end to end.

   Builds the Figure-1 network, compiles the Cyclic Dependency routing
   algorithm, shows that its channel dependency graph contains a cycle, and
   then demonstrates -- by exhaustive adversarial search -- that no
   injection schedule can turn that cycle into a deadlock: it is a false
   resource cycle (an unreachable configuration).

   Run with: dune exec examples/cyclic_dependency.exe *)

let () =
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let topo = net.topo in

  Format.printf "=== The Figure-1 network ===@.";
  Format.printf "nodes: %d, channels: %d, shared channel cs = %s@."
    (Topology.num_nodes topo) (Topology.num_channels topo)
    (Topology.channel_name topo net.cs);
  List.iter
    (fun (i : Paper_nets.intent) ->
      Format.printf "  %s: %a@." i.i_label (Routing.pp_path rt) i.i_path)
    net.intents;

  Format.printf "@.=== The cycle in the channel dependency graph ===@.";
  let cdg = Cdg.build rt in
  let cycles = Cdg.elementary_cycles cdg in
  List.iter (fun c -> Format.printf "  %a@." (Cdg.pp_cycle cdg) c) cycles;
  Format.printf "acyclic: %b -- Dally-Seitz does not apply!@." (Cdg.is_acyclic cdg);

  Format.printf "@.=== Why Corollaries 1-3 do not apply ===@.";
  List.iter
    (fun (name, v) -> Format.printf "  %s: %a@." name Properties.pp_verdict v)
    (Properties.summary rt);

  Format.printf "@.=== Exhaustive adversarial search (Theorem 1) ===@.";
  let templates = List.map (fun i -> Explorer.intent_template net i) net.intents in
  let space = Explorer.default_space templates in
  Format.printf "sweeping %d schedules (orders x priorities x gaps x lengths x buffers)...@."
    (Explorer.space_size space);
  (match Explorer.explore rt space with
  | Explorer.No_deadlock { runs } ->
    Format.printf "no deadlock in %d runs: the cycle is a FALSE RESOURCE CYCLE@." runs
  | Explorer.Deadlock_found { witness; _ } ->
    Format.printf "unexpected witness!@.%a@." (Engine.pp_outcome topo)
      (Engine.Deadlock witness.Explorer.w_info));

  Format.printf "@.=== Contrast: what a real deadlock looks like (Figure 2) ===@.";
  let net2 = Paper_nets.figure2 () in
  let rt2 = Cd_algorithm.of_net net2 in
  let templates2 = List.map (fun i -> Explorer.intent_template net2 i) net2.intents in
  match Explorer.explore rt2 (Explorer.default_space templates2) with
  | Explorer.Deadlock_found { runs; witness } ->
    Format.printf "deadlock witness after %d runs:@.%a@." runs
      (Engine.pp_outcome net2.topo) (Engine.Deadlock witness.Explorer.w_info);
    Format.printf "schedule:@.%a@." (Schedule.pp net2.topo) witness.Explorer.w_schedule
  | Explorer.No_deadlock { runs } -> Format.printf "no deadlock in %d runs (?)@." runs
