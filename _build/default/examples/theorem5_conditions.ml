(* Theorem 5, condition by condition.

   For each Figure-3 network, print the eight conditions of the theorem
   with their truth values, the resulting checker verdict, and -- as ground
   truth -- the verdicts of the bounded-exhaustive schedule search and the
   full state-space model checker.

   Run with: dune exec examples/theorem5_conditions.exe *)

let case_name = function
  | `A -> "figure 3(a)"
  | `B -> "figure 3(b)"
  | `C -> "figure 3(c)"
  | `D -> "figure 3(d)"
  | `E -> "figure 3(e)"
  | `F -> "figure 3(f)"

let () =
  List.iter
    (fun case ->
      let net = Paper_nets.figure3 case in
      let rt = Cd_algorithm.of_net net in
      let cdg = Cdg.build rt in
      Format.printf "@.=== %s (%s) ===@." (case_name case) net.n_spec.s_name;
      (match Cdg.elementary_cycles cdg with
      | [ cycle ] -> (
        let analysis, verdict = Cycle_analysis.classify cdg cycle in
        (* recover the Theorem-5 input to print conditions individually *)
        (match analysis.Cycle_analysis.a_outside_shared with
        | [ sc ] ->
          let sharers, others =
            List.partition
              (fun (cm : Cycle_analysis.cycle_message) ->
                List.mem cm.cm_msg sc.Cycle_analysis.sc_users)
              analysis.Cycle_analysis.a_messages
          in
          Format.printf "sharers of %s:@."
            (Topology.channel_name net.topo sc.Cycle_analysis.sc_channel);
          List.iter
            (fun (cm : Cycle_analysis.cycle_message) ->
              Format.printf "  %-12s access=%d entry=%d span=%d@." cm.cm_label
                (cm.cm_access - 1) (* exclude cs itself *)
                cm.cm_entry cm.cm_span)
            sharers;
          List.iter
            (fun (cm : Cycle_analysis.cycle_message) ->
              Format.printf "  %-12s (own source) entry=%d span=%d@." cm.cm_label cm.cm_entry
                cm.cm_span)
            others;
          if List.length sharers = 3 then begin
            let input =
              {
                Theorem5.cycle_len = List.length cycle;
                sharers =
                  List.map
                    (fun (cm : Cycle_analysis.cycle_message) ->
                      {
                        Theorem5.sh_label = cm.cm_label;
                        sh_access = cm.cm_access - 1;
                        sh_entry = cm.cm_entry;
                        sh_span = cm.cm_span;
                      })
                    sharers;
                others =
                  List.map
                    (fun (cm : Cycle_analysis.cycle_message) ->
                      {
                        Theorem5.ot_entry = cm.cm_entry;
                        ot_span = cm.cm_span;
                        ot_uses_shared = false;
                      })
                    others;
              }
            in
            let conditions, unreachable = Theorem5.check input in
            List.iter
              (fun (c : Theorem5.condition) ->
                Format.printf "  %d. [%s] %s@." c.c_index
                  (if c.c_holds then "holds  " else "VIOLATED")
                  c.c_text)
              conditions;
            Format.printf "checker verdict: %s@."
              (if unreachable then "unreachable (false resource cycle)" else "deadlock reachable")
          end
        | _ -> Format.printf "(not a single-shared-channel cycle)@.");
        Format.printf "classifier: %a@." Cycle_analysis.pp_verdict verdict)
      | l -> Format.printf "unexpected: %d cycles@." (List.length l));
      let mc = Model_checker.check_net net in
      Format.printf "model checker: %a@." Model_checker.pp mc)
    [ `A; `B; `C; `D; `E; `F ]
