(* Substrate workload study: latency/throughput of XY routing on an 8x8
   mesh under uniform and transpose traffic, across offered loads.

   Run with: dune exec examples/mesh_traffic.exe *)

let () =
  let coords = Builders.mesh [ 8; 8 ] in
  let rt = Dimension_order.mesh coords in
  let horizon = 600 in
  let length = 4 in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "pattern"; "rate"; "msgs"; "avg lat"; "p95 lat"; "thr (f/c)" ]
  in
  List.iter
    (fun (name, make) ->
      List.iter
        (fun rate ->
          let rng = Rng.create 7 in
          let pattern = make rng in
          let sched = Traffic.bernoulli_schedule rng pattern ~coords ~rate ~length ~horizon in
          let rep = Measure.run rt sched in
          Table.add_row table
            [
              name;
              Printf.sprintf "%.3f" rate;
              string_of_int rep.Measure.total;
              Printf.sprintf "%.1f" rep.Measure.avg_latency;
              Printf.sprintf "%.1f" rep.Measure.p95_latency;
              Printf.sprintf "%.3f" rep.Measure.throughput;
            ])
        [ 0.005; 0.01; 0.02; 0.04 ])
    [
      ("uniform", fun rng -> Traffic.uniform rng coords);
      ("transpose", fun _rng -> Traffic.transpose coords);
      ("bit-complement", fun _rng -> Traffic.bit_complement coords);
    ];
  Table.print table;
  print_endline "\n(transpose and bit-complement load the bisection harder than uniform,";
  print_endline " so their latencies climb faster -- the classic mesh result)"
