(* Section 6 of the paper: unreachable cycles that tolerate arbitrary delay.

   The Figure-1 construction is delicate: delaying one message a single
   cycle creates a deadlock.  The generalized family scales the geometry so
   that the minimum adversarial in-network delay needed for a deadlock
   grows with the parameter p -- so clock skew of any bounded magnitude
   cannot break deadlock freedom.

   Run with: dune exec examples/generalized_family.exe *)

let () =
  let table =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "p"; "ring len"; "channels"; "safe w/o delay"; "min deadlock delay" ]
  in
  List.iter
    (fun p ->
      let net = Paper_nets.family p in
      let r = Min_delay.search ~max_h:(6 + (3 * p)) net in
      Table.add_row table
        [
          string_of_int p;
          string_of_int (Array.length net.ring_channels);
          string_of_int (Topology.num_channels net.topo);
          string_of_bool r.Min_delay.md_no_delay_safe;
          (match r.Min_delay.md_min_delay with
          | Some h -> string_of_int h
          | None -> Printf.sprintf ">%d" (6 + (3 * p)));
        ])
    [ 1; 2; 3 ];
  Table.print table;
  print_newline ();
  print_endline "the adversary may stall any message at its ring entry for h cycles";
  print_endline "(even though its output channel is free); the threshold h grows with p,";
  print_endline "reproducing the paper's claim that configurations can be built that";
  print_endline "tolerate any fixed amount of delay"
