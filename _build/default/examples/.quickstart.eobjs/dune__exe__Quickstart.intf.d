examples/quickstart.mli:
