examples/generalized_family.mli:
