examples/generalized_family.ml: Array List Min_delay Paper_nets Printf Table Topology
