examples/mesh_traffic.ml: Builders Dimension_order List Measure Printf Rng Table Traffic
