examples/mesh_traffic.mli:
