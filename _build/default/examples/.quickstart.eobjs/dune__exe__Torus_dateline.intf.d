examples/torus_dateline.mli:
