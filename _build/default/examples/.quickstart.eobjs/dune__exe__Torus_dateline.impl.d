examples/torus_dateline.ml: Builders Cdg Dimension_order Engine Format Traffic
