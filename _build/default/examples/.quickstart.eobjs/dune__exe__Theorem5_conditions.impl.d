examples/theorem5_conditions.ml: Cd_algorithm Cdg Cycle_analysis Format List Model_checker Paper_nets Theorem5 Topology
