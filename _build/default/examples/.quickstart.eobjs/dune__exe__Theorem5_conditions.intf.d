examples/theorem5_conditions.mli:
