examples/quickstart.ml: Builders Cdg Dimension_order Engine Format List Routing Schedule Topology
