examples/adaptive_routing.mli:
