examples/adaptive_routing.ml: Adaptive Adaptive_engine Array Builders Dimension_order Duato Engine Format List Scc Schedule Topology Trace
