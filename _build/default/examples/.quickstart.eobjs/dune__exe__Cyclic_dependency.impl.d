examples/cyclic_dependency.ml: Cd_algorithm Cdg Engine Explorer Format List Paper_nets Properties Routing Schedule Topology
