examples/cyclic_dependency.mli:
