#!/usr/bin/env python3
"""Bench-regression smoke gate.

Compares a freshly produced wormhole-bench/1 JSON against a committed
baseline and fails (exit 1) when any gated benchmark regresses by more
than the threshold.  Gated cases are the pooled-sweep pair and the engine
hot path -- the perf surfaces past PRs optimized deliberately; everything
else is reported but not enforced (micro-benchmarks on shared CI runners
are too noisy to gate wholesale).

Usage:
    scripts/bench_gate.py BASELINE.json FRESH.json [--threshold 0.20]

Exit status: 0 within threshold, 1 regression, 2 usage/schema error.
"""

import json
import sys

GATED = [
    "wormhole/sweep/figure2-seq",
    "wormhole/sweep/figure2-parallel",
    "wormhole/sim/engine-hotpath",
]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")
    if doc.get("schema") != "wormhole-bench/1":
        sys.exit(f"bench_gate: {path} is not a wormhole-bench/1 document")
    return doc


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 0.20
    it = iter(argv[1:])
    for a in it:
        if a == "--threshold":
            try:
                threshold = float(next(it))
            except (StopIteration, ValueError):
                sys.exit("bench_gate: --threshold needs a float")
    if len(args) != 2:
        sys.exit(__doc__.strip())
    base_doc, fresh_doc = load(args[0]), load(args[1])
    base = base_doc.get("benchmarks", {})
    fresh = fresh_doc.get("benchmarks", {})

    failures = []
    for name in GATED:
        b, f = base.get(name), fresh.get(name)
        if b is None or f is None or not b:
            # a gated case missing from either side is itself a failure:
            # silently skipping would let a renamed case escape the gate
            failures.append(f"{name}: missing ({'baseline' if b is None else 'fresh'})")
            continue
        ratio = f / b
        marker = "FAIL" if ratio > 1.0 + threshold else "ok"
        print(f"{marker:4} {name}: {b:.0f} ns -> {f:.0f} ns ({ratio:+.1%})".replace("+", ""))
        if ratio > 1.0 + threshold:
            failures.append(f"{name}: {ratio - 1.0:.1%} slower (threshold {threshold:.0%})")

    ungated = sorted(set(base) & set(fresh) - set(GATED))
    for name in ungated:
        b, f = base[name], fresh[name]
        if b:
            print(f"info {name}: {b:.0f} ns -> {f:.0f} ns ({f / b - 1.0:+.1%})")

    if failures:
        print("\nbench_gate: regression over threshold:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: all {len(GATED)} gated cases within {threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
