#!/usr/bin/env python3
"""Bench-regression smoke gate.

Compares a freshly produced wormhole-bench/1 JSON against a committed
baseline and fails (exit 1) when any gated benchmark regresses by more
than the threshold.  Gated cases are the pooled-sweep pair, the engine
hot path and the detection-off overhead case -- the perf surfaces past
PRs optimized deliberately; everything else is reported but not enforced
(micro-benchmarks on shared CI runners are too noisy to gate wholesale).

A gated case present in the baseline but missing from the fresh run is a
failure (a renamed case must not silently escape the gate).  A gated
case missing from the *baseline* is only reported: that is the expected
state right after a new case lands, before the baseline is refreshed.
Cases added or removed relative to the baseline are listed informationally
so a stale baseline is visible in the CI log.  When both documents carry
an "alloc" section (per-case GC minor/major word deltas), allocation
growth beyond 10% is reported informationally as well -- allocation
counts are exact, so the report has no noise threshold to fight, but
machine-to-machine GC differences keep it out of the exit status.

With --alloc-threshold the allocation report becomes a hard gate for the
zero-allocation kernel cases (ALLOC_GATED): minor-word growth beyond the
given fraction fails the run.  Those cases' steady cycles allocate
nothing by construction, so their deltas are pure per-run setup cost --
deterministic on a single machine, which is what makes a hard gate
sound where the general alloc report is not.  Major words stay
informational even for gated cases (promotion depends on GC pacing).

Usage:
    scripts/bench_gate.py BASELINE.json FRESH.json [--threshold 0.20]
        [--alloc-threshold 0.10]

Exit status: 0 within threshold, 1 regression, 2 usage/schema error.
"""

import json
import sys

GATED = [
    "wormhole/sweep/figure2-seq",
    "wormhole/sweep/figure2-parallel",
    "wormhole/sim/engine-hotpath",
    "wormhole/sim/vct-hotpath",
    "wormhole/sim/saf-hotpath",
    "wormhole/sim/adaptive-hotpath",
    "wormhole/sim/mesh8x8-uniform-300c",
    "wormhole/sim/detect-overhead",
    "wormhole/sim/stats-overhead",
]

# Cases whose steady cycle is allocation-free by construction: their GC
# deltas are deterministic per-run setup cost, so --alloc-threshold can
# gate them hard without fighting noise.  (Alloc-section keys carry no
# "wormhole/" group prefix -- they come from the case list, not bechamel.)
ALLOC_GATED = [
    "sim/engine-hotpath",
    "sim/adaptive-hotpath",
    "sim/mesh8x8-uniform-300c",
]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")
    if doc.get("schema") != "wormhole-bench/1":
        sys.exit(f"bench_gate: {path} is not a wormhole-bench/1 document")
    return doc


def main(argv):
    args = []
    threshold = 0.20
    alloc_threshold = None
    it = iter(argv[1:])
    for a in it:
        if a == "--threshold":
            try:
                threshold = float(next(it))
            except (StopIteration, ValueError):
                sys.exit("bench_gate: --threshold needs a float")
        elif a == "--alloc-threshold":
            try:
                alloc_threshold = float(next(it))
            except (StopIteration, ValueError):
                sys.exit("bench_gate: --alloc-threshold needs a float")
        elif a.startswith("--"):
            sys.exit(f"bench_gate: unknown option {a}")
        else:
            args.append(a)
    if len(args) != 2:
        sys.exit(__doc__.strip())
    base_doc, fresh_doc = load(args[0]), load(args[1])
    base = base_doc.get("benchmarks", {})
    fresh = fresh_doc.get("benchmarks", {})

    failures = []
    gated_compared = 0
    for name in GATED:
        b, f = base.get(name), fresh.get(name)
        if b is None or not b:
            # Not in the baseline yet: the gate only compares keys present
            # on both sides, so a freshly added gated case rides ungated
            # until the committed baseline is refreshed.
            print(f"skip {name}: not in baseline (refresh the baseline to gate it)")
            continue
        if f is None:
            # In the baseline but gone from the fresh run: a renamed or
            # dropped case must not silently escape the gate.
            failures.append(f"{name}: missing from fresh run")
            continue
        gated_compared += 1
        ratio = f / b
        marker = "FAIL" if ratio > 1.0 + threshold else "ok"
        print(f"{marker:4} {name}: {b:.0f} ns -> {f:.0f} ns ({ratio:+.1%})".replace("+", ""))
        if ratio > 1.0 + threshold:
            failures.append(f"{name}: {ratio - 1.0:.1%} slower (threshold {threshold:.0%})")

    ungated = sorted(set(base) & set(fresh) - set(GATED))
    for name in ungated:
        b, f = base[name], fresh[name]
        if b:
            print(f"info {name}: {b:.0f} ns -> {f:.0f} ns ({f / b - 1.0:+.1%})")

    added = sorted(set(fresh) - set(base))
    removed = sorted(set(base) - set(fresh) - set(GATED))
    for name in added:
        print(f"info {name}: added since baseline ({fresh[name]:.0f} ns)")
    for name in removed:
        print(f"info {name}: removed since baseline")

    # Allocation deltas: informational by default; with --alloc-threshold
    # the ALLOC_GATED kernel cases' minor-word growth becomes a failure.
    base_alloc = base_doc.get("alloc", {})
    fresh_alloc = fresh_doc.get("alloc", {})
    alloc_gated_compared = 0
    for name in sorted(set(base_alloc) & set(fresh_alloc)):
        hard = alloc_threshold is not None and name in ALLOC_GATED
        if hard:
            alloc_gated_compared += 1
        for kind in ("minor_words", "major_words"):
            b = base_alloc[name].get(kind)
            f = fresh_alloc[name].get(kind)
            if b is None or f is None:
                continue
            if hard and kind == "minor_words" and b and f > b * (1.0 + alloc_threshold):
                print(
                    f"FAIL {name}: {kind} allocation up "
                    f"{b:.0f} -> {f:.0f} words ({f / b - 1.0:+.1%})"
                )
                failures.append(
                    f"{name}: {kind} {f / b - 1.0:.1%} more allocation "
                    f"(alloc threshold {alloc_threshold:.0%})"
                )
            elif b and f > b * 1.10:
                print(
                    f"info {name}: {kind} allocation up "
                    f"{b:.0f} -> {f:.0f} words ({f / b - 1.0:+.1%})"
                )
    if alloc_threshold is not None:
        missing = [n for n in ALLOC_GATED if n in base_alloc and n not in fresh_alloc]
        for name in missing:
            failures.append(f"{name}: alloc entry missing from fresh run")
        print(
            f"alloc gate: {alloc_gated_compared} kernel cases within "
            f"{alloc_threshold:.0%} minor-word growth"
            if not any("allocation" in f or "alloc entry" in f for f in failures)
            else "alloc gate: FAILED"
        )

    if failures:
        print("\nbench_gate: regression over threshold:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(
        f"\nbench_gate: all {gated_compared} gated cases within {threshold:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
