(* Integration tests: the Verify pipeline end to end, and the experiment
   suite's paper-vs-measured rows. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let conclusion_of rt = (Verify.analyze ~quick:true rt).Verify.conclusion

let test_verify_acyclic_algorithms () =
  List.iter
    (fun (name, rt) ->
      match conclusion_of rt with
      | Verify.Deadlock_free why ->
        check cb (name ^ " via acyclicity") true
          (String.length why > 0 && String.sub why 0 7 = "acyclic")
      | c -> Alcotest.failf "%s: %s" name (Format.asprintf "%a" Verify.pp_conclusion c))
    [
      ("xy", Dimension_order.mesh (Builders.mesh [ 4; 4 ]));
      ("west-first", Turn_model.west_first (Builders.mesh [ 4; 4 ]));
      ("hypercube", Dimension_order.hypercube (Builders.hypercube 3));
      ("dateline ring", Ring_routing.dateline (Builders.ring ~unidirectional:true ~vcs:2 6));
    ]

let test_verify_deadlocking_algorithms () =
  List.iter
    (fun (name, rt) ->
      match conclusion_of rt with
      | Verify.Deadlocks _ -> ()
      | c -> Alcotest.failf "%s: %s" name (Format.asprintf "%a" Verify.pp_conclusion c))
    [
      ("ring clockwise", Ring_routing.clockwise (Builders.ring ~unidirectional:true 4));
      ("torus novc", Dimension_order.torus (Builders.torus [ 4; 4 ]));
    ]

let test_verify_cd_algorithm () =
  (* THE headline: cyclic CDG, deadlock-free anyway *)
  let rt = Cd_algorithm.of_net (Paper_nets.figure1 ()) in
  let report = Verify.analyze ~quick:true rt in
  check cb "cyclic" false report.Verify.acyclic;
  check ci "one cycle" 1 (List.length report.Verify.cycles);
  (match report.Verify.cycles with
  | [ cr ] ->
    check cb "searched" true cr.Verify.cr_searched;
    check cb "no witness" true (cr.Verify.cr_witness = None);
    check cb "many runs" true (cr.Verify.cr_search_runs > 1000)
  | _ -> Alcotest.fail "expected one cycle report");
  match report.Verify.conclusion with
  | Verify.Deadlock_free _ -> ()
  | c -> Alcotest.failf "expected deadlock-free: %s" (Format.asprintf "%a" Verify.pp_conclusion c)

let test_verify_figure3_split () =
  let verdict case =
    let rt = Cd_algorithm.of_net (Paper_nets.figure3 case) in
    conclusion_of rt
  in
  (match verdict `A with
  | Verify.Deadlock_free _ -> ()
  | c -> Alcotest.failf "a: %s" (Format.asprintf "%a" Verify.pp_conclusion c));
  match verdict `D with
  | Verify.Deadlocks _ -> ()
  | c -> Alcotest.failf "d: %s" (Format.asprintf "%a" Verify.pp_conclusion c)

let test_verify_no_search_mode () =
  let rt = Cd_algorithm.of_net (Paper_nets.figure1 ()) in
  let report = Verify.analyze ~use_search:false rt in
  match report.Verify.conclusion with
  | Verify.Unknown _ -> ()
  | c -> Alcotest.failf "expected unknown: %s" (Format.asprintf "%a" Verify.pp_conclusion c)

let test_verify_report_renders () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let report = Verify.analyze ~quick:true rt in
  let s = Format.asprintf "%a" Verify.pp_report report in
  check cb "mentions conclusion" true (String.length s > 50)

(* ---- experiment rows ---- *)

let all_ok name rows =
  List.iter
    (fun (r : Experiments.row) ->
      if not r.Experiments.x_ok then
        Alcotest.failf "%s: claim %s failed: %s" name r.x_id r.x_measured)
    rows;
  check cb (name ^ " nonempty") true (rows <> [])

let test_exp_t2 () = all_ok "exp-t2" (Experiments.exp_t2 ~quick:true null_ppf)
let test_exp_t3 () = all_ok "exp-t3" (Experiments.exp_t3 ~quick:true null_ppf)
let test_exp_t4 () = all_ok "exp-t4" (Experiments.exp_t4 ~quick:true null_ppf)
let test_exp_s1 () = all_ok "exp-s1" (Experiments.exp_s1 ~quick:true null_ppf)
let test_exp_s2 () = all_ok "exp-s2" (Experiments.exp_s2 ~quick:true null_ppf)
let test_exp_f1 () = all_ok "exp-f1" (Experiments.exp_f1 ~quick:true null_ppf)
let test_exp_t5 () = all_ok "exp-t5" (Experiments.exp_t5 ~quick:true null_ppf)
let test_exp_g () = all_ok "exp-g" (Experiments.exp_g ~quick:true ~max_p:1 null_ppf)
let test_exp_corollaries () = all_ok "exp-c" (Experiments.exp_corollaries ~quick:true null_ppf)
let test_exp_fault () = all_ok "exp-fr" (Experiments.exp_fault ~quick:true null_ppf)

let test_summary_table () =
  let rows = Experiments.exp_t2 ~quick:true null_ppf in
  let s = Experiments.summary_table rows in
  check cb "table renders" true (String.length s > 40)

let () =
  Alcotest.run "integration"
    [
      ( "verify",
        [
          Alcotest.test_case "acyclic suite" `Quick test_verify_acyclic_algorithms;
          Alcotest.test_case "deadlocking suite" `Quick test_verify_deadlocking_algorithms;
          Alcotest.test_case "cd algorithm headline" `Slow test_verify_cd_algorithm;
          Alcotest.test_case "figure3 split" `Slow test_verify_figure3_split;
          Alcotest.test_case "no-search mode" `Quick test_verify_no_search_mode;
          Alcotest.test_case "report renders" `Quick test_verify_report_renders;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "exp-t2" `Quick test_exp_t2;
          Alcotest.test_case "exp-t3" `Quick test_exp_t3;
          Alcotest.test_case "exp-t4" `Quick test_exp_t4;
          Alcotest.test_case "exp-s1" `Quick test_exp_s1;
          Alcotest.test_case "exp-s2" `Quick test_exp_s2;
          Alcotest.test_case "exp-f1" `Slow test_exp_f1;
          Alcotest.test_case "exp-t5" `Slow test_exp_t5;
          Alcotest.test_case "exp-g" `Slow test_exp_g;
          Alcotest.test_case "exp-corollaries" `Slow test_exp_corollaries;
          Alcotest.test_case "exp-fault" `Quick test_exp_fault;
          Alcotest.test_case "summary table" `Quick test_summary_table;
        ] );
    ]
