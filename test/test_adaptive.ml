(* Tests for the adaptive routing extension: option functions, validation,
   the Duato escape-channel condition, and the adaptive engine. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let mesh2 = Builders.mesh ~vcs:2 [ 4; 4 ]
let mesh1 = Builders.mesh [ 4; 4 ]

(* ---- option functions and validation ---- *)

let test_of_oblivious_roundtrip () =
  let rt = Dimension_order.mesh mesh1 in
  let ad = Adaptive.of_oblivious rt in
  (match Adaptive.validate ad with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* singleton options equal the oblivious decision everywhere *)
  Routing.iter_realized rt (fun input dest c ->
      check (Alcotest.list ci) "singleton" [ c ] (Adaptive.options ad input dest));
  (* restrict_to_first gives back the same paths *)
  let rt' = Adaptive.restrict_to_first ad in
  for s = 0 to 15 do
    for d = 0 to 15 do
      if s <> d then
        check (Alcotest.list ci) "same path" (Routing.path_exn rt s d) (Routing.path_exn rt' s d)
    done
  done

let test_fully_adaptive_options () =
  let ad = Adaptive.fully_adaptive_minimal mesh1 in
  (match Adaptive.validate ad with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* from a corner toward the opposite corner both productive channels are
     offered *)
  let src = mesh1.node_at [| 0; 0 |] and dst = mesh1.node_at [| 3; 3 |] in
  check ci "two options" 2 (List.length (Adaptive.options ad (Routing.Inject src) dst));
  (* aligned in one dimension: only one productive channel *)
  let dst2 = mesh1.node_at [| 0; 3 |] in
  check ci "one option" 1 (List.length (Adaptive.options ad (Routing.Inject src) dst2))

let test_duato_mesh_validates () =
  let ad = Adaptive.duato_mesh mesh2 in
  match Adaptive.validate ad with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_west_first_adaptive_validates () =
  let ad = Adaptive.west_first_adaptive mesh1 in
  (match Adaptive.validate ad with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* west destinations get exactly the forced west hop *)
  let src = mesh1.node_at [| 3; 1 |] and dst = mesh1.node_at [| 0; 2 |] in
  check ci "forced west" 1 (List.length (Adaptive.options ad (Routing.Inject src) dst))

let test_validate_rejects_livelock () =
  (* an option function that allows spinning around a ring forever *)
  let r = Builders.ring ~unidirectional:true 4 in
  let ad =
    Adaptive.create ~name:"spin" r.topo (fun input dest ->
        let here = Routing.current_node r.topo input in
        if here = dest then []
        else [ Option.get (Topology.find_channel r.topo here ((here + 1) mod 4)) ])
  in
  (* clockwise ring routing is fine (terminates)... *)
  (match Adaptive.validate ad with Ok () -> () | Error e -> Alcotest.fail e);
  (* ...but offering a continuation past the destination loops *)
  let ad2 =
    Adaptive.create ~name:"overshoot" r.topo (fun input dest ->
        let here = Routing.current_node r.topo input in
        if here = dest then []
        else
          [ Option.get (Topology.find_channel r.topo here ((here + 1) mod 4)) ]
          @
          (* extra nonminimal option that skips the destination *)
          if (here + 1) mod 4 = dest then
            [ Option.get (Topology.find_channel r.topo here ((here + 1) mod 4)) ]
          else [])
  in
  ignore ad2;
  (* a function with an empty option set mid-route is rejected *)
  let ad3 =
    Adaptive.create ~name:"dead-end" r.topo (fun input dest ->
        let here = Routing.current_node r.topo input in
        if here = dest || here = (dest + 2) mod 4 then []
        else [ Option.get (Topology.find_channel r.topo here ((here + 1) mod 4)) ])
  in
  match Adaptive.validate ad3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dead-end function must be rejected"

let test_adaptive_cdg_edges () =
  let ad = Adaptive.fully_adaptive_minimal mesh1 in
  let edges = Adaptive.cdg_edges ad in
  check cb "has dependencies" true (List.length edges > 50);
  (* the adaptive CDG of fully adaptive routing on a mesh has cycles *)
  let nchan = Topology.num_channels mesh1.topo in
  let succs = Array.make nchan [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
  check cb "cyclic" true (Scc.has_cycle ~n:nchan ~succ:(fun c -> succs.(c)))

(* ---- Duato condition ---- *)

let test_duato_certifies_escape_design () =
  let ad = Adaptive.duato_mesh mesh2 in
  let escape = Adaptive.escape_of_duato_mesh mesh2 in
  let r = Duato.check ad ~escape in
  check cb "connected" true r.Duato.escape_connected;
  check cb "extended acyclic" true r.Duato.extended_acyclic;
  check cb "certified" true r.Duato.deadlock_free;
  check cb "has indirect deps" true (r.Duato.indirect_edges > 0)

let test_duato_rejects_fully_adaptive () =
  (* using the whole network as its own escape: cyclic extended CDG *)
  let ad = Adaptive.fully_adaptive_minimal mesh1 in
  let escape = Dimension_order.mesh mesh1 in
  let r = Duato.check ad ~escape in
  (* escape is offered (XY channel is always productive) but the extended
     CDG on vc0 picks up the adaptive cycles *)
  check cb "connected" true r.Duato.escape_connected;
  check cb "extended CDG cyclic" false r.Duato.extended_acyclic;
  check cb "not certified" false r.Duato.deadlock_free

let test_duato_detects_missing_escape () =
  (* an adaptive function that sometimes refuses the escape channel *)
  let ad0 = Adaptive.duato_mesh mesh2 in
  let escape = Adaptive.escape_of_duato_mesh mesh2 in
  let ad =
    Adaptive.create ~name:"broken" (Adaptive.topology ad0) (fun input dest ->
        match Adaptive.options ad0 input dest with
        | [ only ] -> [ only ]
        | adaptive_and_escape -> (
          (* drop the escape (last) option when there is an alternative *)
          match List.rev adaptive_and_escape with
          | _ :: rest -> List.rev rest
          | [] -> []))
  in
  let r = Duato.check ad ~escape in
  check cb "not connected" false r.Duato.escape_connected;
  check cb "witness" true (r.Duato.connected_witness <> None)

(* ---- adaptive engine ---- *)

let test_adaptive_engine_matches_oblivious_for_singletons () =
  let rt = Dimension_order.mesh mesh1 in
  let ad = Adaptive.of_oblivious rt in
  let sched =
    [
      Schedule.message ~length:4 "a" (mesh1.node_at [| 0; 0 |]) (mesh1.node_at [| 3; 3 |]);
      Schedule.message ~length:4 "b" (mesh1.node_at [| 3; 3 |]) (mesh1.node_at [| 0; 0 |]);
      Schedule.message ~length:2 ~at:3 "c" (mesh1.node_at [| 1; 0 |]) (mesh1.node_at [| 1; 3 |]);
    ]
  in
  match (Engine.run rt sched, Adaptive_engine.run ad sched) with
  | ( Engine.All_delivered { finished_at = t1; messages = m1 },
      Adaptive_engine.All_delivered { finished_at = t2; messages = m2 } ) ->
    check ci "same finish" t1 t2;
    check cb "same results" true (m1 = m2)
  | _ -> Alcotest.fail "expected delivery on both engines"

let test_adaptive_avoids_blocked_channel () =
  (* a long message blocks the XY path; the adaptive header routes around *)
  let ad = Adaptive.fully_adaptive_minimal mesh1 in
  let n00 = mesh1.node_at [| 0; 0 |]
  and n20 = mesh1.node_at [| 2; 0 |]
  and n22 = mesh1.node_at [| 2; 2 |] in
  let hog = Schedule.message ~length:40 "hog" n00 n20 in
  let probe = Schedule.message ~length:2 ~at:2 "probe" n00 n22 in
  match Adaptive_engine.run ad [ hog; probe ] with
  | Adaptive_engine.All_delivered { messages; _ } ->
    let p = List.find (fun (r : Engine.message_result) -> r.r_label = "probe") messages in
    (* the probe must not wait for the hog's 40-flit worm to drain: it can
       leave over the Y channel immediately *)
    check cb "probe fast" true (Option.get p.r_delivered_at < 20)
  | o -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" (Engine.pp_outcome mesh1.topo) o)

let test_adaptive_ring_deadlock () =
  (* with no routing freedom the adaptive engine reproduces the ring
     deadlock, wait cycle included *)
  let r = Builders.ring ~unidirectional:true 4 in
  let ad = Adaptive.of_oblivious (Ring_routing.clockwise r) in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:3 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  match Adaptive_engine.run ad sched with
  | Adaptive_engine.Deadlock { d_wait_cycle; d_blocked; _ } ->
    check ci "four blocked" 4 (List.length d_blocked);
    check ci "cycle of four" 4 (List.length d_wait_cycle)
  | o -> Alcotest.failf "expected deadlock: %s" (Format.asprintf "%a" (Engine.pp_outcome r.topo) o)

let test_duato_mesh_survives_stress () =
  (* heavy random traffic on the certified design delivers *)
  let ad = Adaptive.duato_mesh mesh2 in
  let rng = Rng.create 31 in
  let pattern = Traffic.uniform rng mesh2 in
  let sched =
    Traffic.bernoulli_schedule rng pattern ~coords:mesh2 ~rate:0.08 ~length:5 ~horizon:150
  in
  match Adaptive_engine.run ad sched with
  | Adaptive_engine.All_delivered _ -> ()
  | o -> Alcotest.failf "expected delivery: %s" (Format.asprintf "%a" (Engine.pp_outcome mesh2.topo) o)

let test_adaptive_determinism () =
  let ad = Adaptive.duato_mesh mesh2 in
  let rng = Rng.create 5 in
  let pattern = Traffic.uniform rng mesh2 in
  let sched =
    Traffic.bernoulli_schedule rng pattern ~coords:mesh2 ~rate:0.05 ~length:4 ~horizon:80
  in
  check cb "replays identically" true
    (Adaptive_engine.run ad sched = Adaptive_engine.run ad sched)

let () =
  Alcotest.run "adaptive"
    [
      ( "functions",
        [
          Alcotest.test_case "oblivious lift roundtrip" `Quick test_of_oblivious_roundtrip;
          Alcotest.test_case "fully adaptive options" `Quick test_fully_adaptive_options;
          Alcotest.test_case "duato mesh validates" `Quick test_duato_mesh_validates;
          Alcotest.test_case "west-first adaptive validates" `Quick
            test_west_first_adaptive_validates;
          Alcotest.test_case "dead ends rejected" `Quick test_validate_rejects_livelock;
          Alcotest.test_case "adaptive CDG edges" `Quick test_adaptive_cdg_edges;
        ] );
      ( "duato",
        [
          Alcotest.test_case "certifies escape design" `Quick test_duato_certifies_escape_design;
          Alcotest.test_case "rejects fully adaptive" `Quick test_duato_rejects_fully_adaptive;
          Alcotest.test_case "detects missing escape" `Quick test_duato_detects_missing_escape;
        ] );
      ( "engine",
        [
          Alcotest.test_case "singleton = oblivious" `Quick
            test_adaptive_engine_matches_oblivious_for_singletons;
          Alcotest.test_case "routes around blockage" `Quick test_adaptive_avoids_blocked_channel;
          Alcotest.test_case "ring deadlock" `Quick test_adaptive_ring_deadlock;
          Alcotest.test_case "duato mesh stress" `Quick test_duato_mesh_survives_stress;
          Alcotest.test_case "determinism" `Quick test_adaptive_determinism;
        ] );
    ]
