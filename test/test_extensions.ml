(* Tests for the extension modules: the message flow model (Section-2
   discussion), packet wait-for graphs (Dally-Aoki), the Corollary-1
   input-independence checker, and the engine probe. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---- message flow model ---- *)

let test_mfm_proves_xy () =
  let rt = Dimension_order.mesh (Builders.mesh [ 4; 4 ]) in
  let r = Message_flow.analyze rt in
  check cb "proves" true (Message_flow.proves_deadlock_free r);
  check cb "no stuck channels" true (r.Message_flow.stuck = []);
  check cb "needs several rounds" true (r.Message_flow.rounds > 1)

let test_mfm_proves_dateline () =
  let rt = Ring_routing.dateline (Builders.ring ~unidirectional:true ~vcs:2 6) in
  check cb "proves" true (Message_flow.proves_deadlock_free (Message_flow.analyze rt))

let test_mfm_stuck_on_ring () =
  (* genuinely deadlocking algorithm: correctly not proven *)
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let r = Message_flow.analyze rt in
  check cb "not proven" false (Message_flow.proves_deadlock_free r);
  check ci "all ring channels stuck" 4 (List.length r.Message_flow.stuck)

let test_mfm_incomplete_on_figure1 () =
  (* the paper's Section-2 point: the model cannot prove the CD algorithm
     although it is deadlock-free; the ring channels are all stuck *)
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let r = Message_flow.analyze rt in
  check cb "not proven" false (Message_flow.proves_deadlock_free r);
  Array.iter
    (fun c -> check cb "ring channel stuck" true (List.mem c r.Message_flow.stuck))
    net.ring_channels;
  (* direct hub channels N*->v are immune: every message using them is
     consumed right after *)
  let direct = Option.get (Topology.find_channel net.topo net.hub net.source) in
  check cb "hub->Src immune" true r.Message_flow.immune.(direct)

let test_mfm_used_flags () =
  let rt = Dimension_order.mesh (Builders.mesh [ 2; 2 ]) in
  let r = Message_flow.analyze rt in
  (* on a 2x2 mesh with XY routing every channel carries some message *)
  check cb "all used" true (Array.for_all Fun.id r.Message_flow.used)

let test_mfm_pp () =
  let rt = Dimension_order.mesh (Builders.mesh [ 2; 2 ]) in
  let r = Message_flow.analyze rt in
  let s = Format.asprintf "%a" (Message_flow.pp (Routing.topology rt)) r in
  check cb "renders" true (String.length s > 20)

(* ---- packet wait-for graph ---- *)

let test_pwfg_acyclic_on_mesh () =
  let coords = Builders.mesh [ 4; 4 ] in
  let rt = Dimension_order.mesh coords in
  let rng = Rng.create 21 in
  let pattern = Traffic.uniform rng coords in
  let sched =
    Traffic.bernoulli_schedule rng pattern ~coords ~rate:0.05 ~length:4 ~horizon:100
  in
  let probe, first_cyclic = Pwfg.monitor () in
  (match Engine.run ~probe rt sched with
  | Engine.All_delivered _ -> ()
  | _ -> Alcotest.fail "expected delivery");
  check (Alcotest.option ci) "wait-for graph stays acyclic" None (first_cyclic ())

let test_pwfg_cyclic_at_deadlock () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let sched =
    List.init 4 (fun i -> Schedule.message ~length:3 (Printf.sprintf "m%d" i) i ((i + 2) mod 4))
  in
  let probe, first_cyclic = Pwfg.monitor () in
  match Engine.run ~probe rt sched with
  | Engine.Deadlock d ->
    (match first_cyclic () with
    | Some t -> check cb "cycle appears no later than detection" true (t <= d.Engine.d_cycle)
    | None -> Alcotest.fail "wait-for graph never became cyclic")
  | _ -> Alcotest.fail "expected deadlock"

let test_pwfg_of_snapshot () =
  let snap =
    {
      Engine.s_cycle = 0;
      s_occupancy = [];
      s_waiting = [ ("a", 0, Some "b"); ("b", 1, Some "a"); ("c", 2, None) ];
      s_moved = false;
    }
  in
  let g = Pwfg.of_snapshot snap in
  check ci "two edges" 2 (List.length g.Pwfg.edges);
  check cb "cyclic" true g.Pwfg.cyclic;
  let snap2 = { snap with Engine.s_waiting = [ ("a", 0, Some "b"); ("c", 2, Some "b") ] } in
  check cb "chain acyclic" false (Pwfg.of_snapshot snap2).Pwfg.cyclic

(* ---- input independence (Corollary 1) ---- *)

let test_input_independent_xy () =
  let rt = Dimension_order.mesh (Builders.mesh [ 4; 4 ]) in
  check cb "xy input-independent" true
    (Properties.is_holds (Properties.input_independent rt))

let test_input_dependent_cd () =
  let rt = Cd_algorithm.of_net (Paper_nets.figure1 ()) in
  (* Corollary 1: an N x N -> C algorithm has no unreachable cycles, so the
     CD algorithm must be input-dependent *)
  check cb "cd input-dependent" false
    (Properties.is_holds (Properties.input_independent rt))

let test_input_dependent_dateline () =
  (* the dateline discipline consults the input channel's vc *)
  let rt = Ring_routing.dateline (Builders.ring ~unidirectional:true ~vcs:2 6) in
  check cb "dateline input-dependent" false
    (Properties.is_holds (Properties.input_independent rt))

let test_summary_includes_new_property () =
  let rt = Dimension_order.mesh (Builders.mesh [ 2; 2 ]) in
  check cb "summary has input-independent" true
    (List.mem_assoc "input-independent" (Properties.summary rt))

(* ---- engine probe ---- *)

let test_probe_sees_every_cycle () =
  let rt = Dimension_order.mesh (Builders.mesh [ 3; 3 ]) in
  let cycles = ref [] in
  let probe (s : Engine.snapshot) = cycles := s.Engine.s_cycle :: !cycles in
  (match Engine.run ~probe rt [ Schedule.message ~length:4 "m" 0 8 ] with
  | Engine.All_delivered { finished_at; _ } ->
    check ci "one snapshot per cycle" (finished_at + 1) (List.length !cycles);
    check (Alcotest.list ci) "in order" (List.init (finished_at + 1) Fun.id) (List.rev !cycles)
  | _ -> Alcotest.fail "expected delivery")

let test_probe_occupancy_consistent () =
  let rt = Dimension_order.mesh (Builders.mesh [ 3; 3 ]) in
  let max_flits = ref 0 in
  let probe (s : Engine.snapshot) =
    let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 s.Engine.s_occupancy in
    if total > !max_flits then max_flits := total;
    (* per-queue occupancy never exceeds the buffer capacity (1) *)
    List.iter (fun (_, _, n) -> if n > 1 then Alcotest.fail "overfull queue") s.Engine.s_occupancy
  in
  ignore (Engine.run ~probe rt [ Schedule.message ~length:4 "m" 0 8 ]);
  check cb "some flits in flight" true (!max_flits >= 1);
  check cb "bounded by length" true (!max_flits <= 4)

(* ---- trace ---- *)

let test_trace_collects_and_renders () =
  let coords = Builders.mesh [ 3; 3 ] in
  let rt = Dimension_order.mesh coords in
  let get, probe = Trace.collector () in
  (match Engine.run ~probe rt [ Schedule.message ~length:3 "a" 0 8 ] with
  | Engine.All_delivered { finished_at; _ } ->
    let trace = get () in
    check ci "one snapshot per cycle" (finished_at + 1) (List.length trace);
    let s = Trace.render coords.Builders.topo trace in
    check cb "renders rows" true (String.length s > 80);
    (* the first channel of the path appears in the rendering *)
    let first = List.hd (Routing.path_exn rt 0 8) in
    let name = Topology.channel_name coords.Builders.topo first in
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
      scan 0
    in
    check cb "mentions first channel" true (contains name s)
  | _ -> Alcotest.fail "expected delivery")

let test_trace_occupancy_of () =
  let coords = Builders.mesh [ 3; 3 ] in
  let rt = Dimension_order.mesh coords in
  let get, probe = Trace.collector () in
  ignore (Engine.run ~probe rt [ Schedule.message ~length:4 "a" 0 8 ]);
  let first = List.hd (Routing.path_exn rt 0 8) in
  let hist = Trace.occupancy_of (get ()) first in
  check cb "occupied for length cycles" true (List.length hist >= 4);
  List.iter (fun (_, owner, n) ->
      check Alcotest.string "owner" "a" owner;
      check cb "capacity respected" true (n = 1))
    hist

let test_trace_truncation () =
  let coords = Builders.mesh [ 3; 3 ] in
  let rt = Dimension_order.mesh coords in
  let get, probe = Trace.collector () in
  ignore (Engine.run ~probe rt [ Schedule.message ~length:30 "a" 0 8 ]);
  let trace = get () in
  let s = Trace.render ~max_cycles:5 coords.Builders.topo trace in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  check cb "notes exact truncated cycle count" true
    (contains (Printf.sprintf "… +%d cycles" (List.length trace - 5)) s)

let () =
  Alcotest.run "extensions"
    [
      ( "message_flow",
        [
          Alcotest.test_case "proves xy" `Quick test_mfm_proves_xy;
          Alcotest.test_case "proves dateline" `Quick test_mfm_proves_dateline;
          Alcotest.test_case "stuck on deadlocking ring" `Quick test_mfm_stuck_on_ring;
          Alcotest.test_case "incomplete on figure 1" `Quick test_mfm_incomplete_on_figure1;
          Alcotest.test_case "used flags" `Quick test_mfm_used_flags;
          Alcotest.test_case "pp" `Quick test_mfm_pp;
        ] );
      ( "pwfg",
        [
          Alcotest.test_case "acyclic on mesh traffic" `Quick test_pwfg_acyclic_on_mesh;
          Alcotest.test_case "cyclic at deadlock" `Quick test_pwfg_cyclic_at_deadlock;
          Alcotest.test_case "of_snapshot" `Quick test_pwfg_of_snapshot;
        ] );
      ( "input_independence",
        [
          Alcotest.test_case "xy independent" `Quick test_input_independent_xy;
          Alcotest.test_case "cd dependent" `Quick test_input_dependent_cd;
          Alcotest.test_case "dateline dependent" `Quick test_input_dependent_dateline;
          Alcotest.test_case "summary row" `Quick test_summary_includes_new_property;
        ] );
      ( "probe",
        [
          Alcotest.test_case "every cycle" `Quick test_probe_sees_every_cycle;
          Alcotest.test_case "occupancy consistent" `Quick test_probe_occupancy_consistent;
        ] );
      ( "trace",
        [
          Alcotest.test_case "collect and render" `Quick test_trace_collects_and_renders;
          Alcotest.test_case "occupancy_of" `Quick test_trace_occupancy_of;
          Alcotest.test_case "truncation" `Quick test_trace_truncation;
        ] );
    ]
