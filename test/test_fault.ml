(* Unit tests for fault plans (construction, compiled queries, parsing) and
   for the engines' recovery semantics: deadlock reporting with recovery off,
   stall delays, watchdog abort/retry, drops, degraded-routing reroute, and
   the arbitration-seniority regression after an abort. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let line3 () =
  (* a -> b -> c -> d directed line, as in test_sim *)
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let c = Topology.add_node t "c" in
  let d = Topology.add_node t "d" in
  let ab = Topology.add_channel t a b in
  let bc = Topology.add_channel t b c in
  let cd = Topology.add_channel t c d in
  let rt =
    Routing.create ~name:"line" t (fun input _dest ->
        match input with
        | Routing.Inject n -> if n = a then Some ab else None
        | Routing.From ch -> if ch = ab then Some bc else if ch = bc then Some cd else None)
  in
  (rt, a, d, ab, bc, cd)

let fail_outcome rt o =
  Alcotest.failf "unexpected outcome: %s"
    (Format.asprintf "%a" (Engine.pp_outcome (Routing.topology rt)) o)

let stat_of label = function
  | Engine.Recovered { stats; _ } -> (
    match List.find_opt (fun (s : Engine.retry_stat) -> s.t_label = label) stats with
    | Some s -> s
    | None -> Alcotest.failf "no retry stat for %s" label)
  | _ -> Alcotest.fail "expected Recovered outcome"

let result_of label = function
  | Engine.All_delivered { messages; _ }
  | Engine.Cutoff { messages; _ }
  | Engine.Recovered { messages; _ } ->
    List.find (fun (r : Engine.message_result) -> r.r_label = label) messages
  | Engine.Deadlock _ -> Alcotest.fail "expected messages"

(* ---- plans and compiled queries ---- *)

let test_make_and_queries () =
  let rt, _, _, ab, bc, _ = line3 () in
  let topo = Routing.topology rt in
  let plan =
    Fault.make
      [
        Fault.Link_failure { channel = ab; at = 5 };
        Fault.Transient_stall { channel = bc; at = 2; duration = 3 };
        Fault.Message_drop { label = "m"; at = 4 };
      ]
  in
  check cb "empty is empty" true (Fault.is_empty Fault.empty);
  check cb "plan not empty" false (Fault.is_empty plan);
  check (Alcotest.list ci) "failed channels" [ ab ] (Fault.failed_channels plan);
  let c = Fault.compile ~nchan:(Topology.num_channels topo) plan in
  (* permanent failure: down from its cycle onward *)
  check cb "ab up before" false (Fault.down c ab 4);
  check cb "ab down at failure" true (Fault.down c ab 5);
  check cb "ab down forever" true (Fault.down c ab 1000);
  check cb "ab perm" true (Fault.perm_failed c ab 5);
  (* stall: a half-open window *)
  check cb "bc up before stall" false (Fault.down c bc 1);
  check cb "bc down at start" true (Fault.down c bc 2);
  check cb "bc down at end" true (Fault.down c bc 4);
  check cb "bc up after stall" false (Fault.down c bc 5);
  check cb "bc never perm" false (Fault.perm_failed c bc 1000);
  (* drops fire at exactly their cycle *)
  check cb "drop fires" true (Fault.dropped_now c "m" 4);
  check cb "drop only then" false (Fault.dropped_now c "m" 3);
  check cb "other labels safe" false (Fault.dropped_now c "x" 4);
  (* last boundary is the failure at 5 / stall end at 5 *)
  check cb "change after 4" true (Fault.change_after c 4);
  check cb "quiet after 5" false (Fault.change_after c 5)

let test_make_rejects () =
  let _, _, _, ab, _, _ = line3 () in
  Alcotest.check_raises "negative failure time"
    (Invalid_argument "Fault.make: failure time < 0") (fun () ->
      ignore (Fault.make [ Fault.Link_failure { channel = ab; at = -1 } ]));
  Alcotest.check_raises "zero stall duration"
    (Invalid_argument "Fault.make: stall duration < 1") (fun () ->
      ignore (Fault.make [ Fault.Transient_stall { channel = ab; at = 0; duration = 0 } ]));
  Alcotest.check_raises "negative drop time" (Invalid_argument "Fault.make: drop time < 0")
    (fun () -> ignore (Fault.make [ Fault.Message_drop { label = "m"; at = -2 } ]))

let test_parse_roundtrip () =
  let rt, _, _, ab, bc, _ = line3 () in
  let topo = Routing.topology rt in
  let plan =
    match Fault.parse topo "fail:b>c@10, stall:a>b@5+8, drop:m1@0" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  check cb "parsed events" true
    (Fault.events plan
    = [
        Fault.Link_failure { channel = bc; at = 10 };
        Fault.Transient_stall { channel = ab; at = 5; duration = 8 };
        Fault.Message_drop { label = "m1"; at = 0 };
      ]);
  (* the printed form (src->dst names) parses back to the same plan *)
  let printed = Format.asprintf "%a" (Fault.pp topo) plan in
  match Fault.parse topo printed with
  | Ok p2 -> check cb "round trip" true (Fault.events p2 = Fault.events plan)
  | Error e -> Alcotest.failf "re-parse of %S failed: %s" printed e

let test_parse_mesh_channel_names () =
  (* mesh node names contain commas -- "n(0,1)" -- so the event splitter
     must not break inside parentheses *)
  let coords = Builders.mesh [ 2; 2 ] in
  let topo = coords.Builders.topo in
  match Fault.parse topo "fail:n(0,0)>n(0,1)@2, stall:n(0,1)>n(1,1)@0+4" with
  | Ok p -> (
    match Fault.events p with
    | [ Fault.Link_failure { at = 2; _ }; Fault.Transient_stall { at = 0; duration = 4; _ } ]
      ->
      check ci "one failed channel" 1 (List.length (Fault.failed_channels p))
    | _ -> Alcotest.fail "wrong events")
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  let rt, _, _, _, _, _ = line3 () in
  let topo = Routing.topology rt in
  List.iter
    (fun spec ->
      match Fault.parse topo spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" spec)
    [
      "fail:a>z@3" (* unknown node *);
      "fail:a@3" (* no channel *);
      "wedge:a>b@3" (* unknown kind *);
      "stall:a>b@3" (* missing duration *);
      "fail:a>b" (* missing time *);
      "fail:a>b@-2" (* negative time *);
      "stall:a>b@3+0" (* empty window *);
    ]

(* ---- engine semantics ---- *)

let test_failure_is_deadlock_without_recovery () =
  (* a permanently failed channel wedges the message; with the paper's model
     (no recovery) that is reported exactly like a deadlock *)
  let rt, a, d, _, bc, _ = line3 () in
  let config =
    {
      Engine.default_config with
      faults = Fault.make [ Fault.Link_failure { channel = bc; at = 0 } ];
    }
  in
  match Engine.run ~config rt [ Schedule.message ~length:2 "m" a d ] with
  | Engine.Deadlock dl -> (
    match dl.Engine.d_blocked with
    | [ b ] ->
      check cb "blocked message" true (b.Engine.b_label = "m");
      check cb "waiting on the dead channel" true (b.Engine.b_wants = [ bc ]);
      check cb "nobody holds it" true (b.Engine.b_holder = None)
    | _ -> Alcotest.fail "expected exactly one blocked message")
  | o -> fail_outcome rt o

let test_stall_delays_delivery () =
  let rt, a, d, _, bc, _ = line3 () in
  let sched = [ Schedule.message ~length:2 "m" a d ] in
  let base =
    match Engine.run rt sched with
    | Engine.All_delivered { finished_at; _ } -> finished_at
    | o -> fail_outcome rt o
  in
  (* the header wants bc at cycle 1; a stall over cycles 1..5 delays the
     whole worm by exactly the remaining window *)
  let config =
    {
      Engine.default_config with
      faults = Fault.make [ Fault.Transient_stall { channel = bc; at = 1; duration = 5 } ];
    }
  in
  match Engine.run ~config rt sched with
  | Engine.All_delivered { finished_at; _ } ->
    check ci "delayed by the stall" (base + 5) finished_at
  | o -> fail_outcome rt o

let test_watchdog_gives_up_on_permanent_failure () =
  let rt, a, d, _, bc, _ = line3 () in
  let config =
    {
      Engine.default_config with
      faults = Fault.make [ Fault.Link_failure { channel = bc; at = 0 } ];
      recovery =
        Some { Engine.default_recovery with trigger = Engine.Watchdog 4; retry_limit = 2; backoff = 1 };
    }
  in
  let out = Engine.run ~config rt [ Schedule.message ~length:2 "m" a d ] in
  let s = stat_of "m" out in
  check cb "gave up" true (s.Engine.t_fate = Engine.Gave_up);
  check ci "used the whole retry budget" 3 s.Engine.t_retries;
  check cb "never delivered" true ((result_of "m" out).Engine.r_delivered_at = None)

let test_drop_without_recovery () =
  (* m2 is still queued behind m1 at its drop cycle, so the drop kills it *)
  let rt, a, d, _, _, _ = line3 () in
  let sched =
    [ Schedule.message ~length:4 "m1" a d; Schedule.message ~length:4 "m2" a d ]
  in
  let config =
    {
      Engine.default_config with
      faults = Fault.make [ Fault.Message_drop { label = "m2"; at = 2 } ];
    }
  in
  let out = Engine.run ~config rt sched in
  let s = stat_of "m2" out in
  check cb "dropped" true (s.Engine.t_fate = Engine.Dropped);
  check cb "never entered the network" true
    ((result_of "m2" out).Engine.r_injected_at = None);
  check cb "m1 unaffected" true
    ((stat_of "m1" out).Engine.t_fate = Engine.Delivered)

let test_drop_with_recovery_retries () =
  (* the same drop under a recovery policy costs one retry, then delivers *)
  let rt, a, d, _, _, _ = line3 () in
  let sched =
    [ Schedule.message ~length:4 "m1" a d; Schedule.message ~length:4 "m2" a d ]
  in
  let config =
    {
      Engine.default_config with
      faults = Fault.make [ Fault.Message_drop { label = "m2"; at = 2 } ];
      recovery =
        Some { Engine.default_recovery with trigger = Engine.Watchdog 8; retry_limit = 2; backoff = 2 };
    }
  in
  let out = Engine.run ~config rt sched in
  let s = stat_of "m2" out in
  check cb "delivered after retry" true (s.Engine.t_fate = Engine.Delivered);
  check ci "one retry" 1 s.Engine.t_retries;
  check cb "delivery time recorded" true
    ((result_of "m2" out).Engine.r_delivered_at <> None)

let test_reroute_restores_delivery () =
  (* mesh with one failed channel: Degrade certifies an avoiding routing and
     the engine delivers over it after the watchdog abort *)
  let coords = Builders.mesh [ 4; 4 ] in
  let rt = Dimension_order.mesh coords in
  let failed = [ List.hd (Routing.path_exn rt 0 15) ] in
  let d =
    match Degrade.reroute ~quick:true ~failed rt with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  check cb "certified" true (Degrade.certified d);
  (match d.Degrade.certification with
  | Degrade.Acyclic _ -> ()
  | c -> Alcotest.failf "expected acyclic certificate, got %s" (Format.asprintf "%a" Degrade.pp { d with Degrade.certification = c }));
  let config =
    {
      Engine.default_config with
      faults =
        Fault.make [ Fault.Link_failure { channel = List.hd failed; at = 0 } ];
      recovery =
        Some
          {
            Engine.trigger = Engine.Watchdog 8;
            retry_limit = 3;
            backoff = 2;
            reroute = Some d.Degrade.routing;
          };
    }
  in
  let out = Engine.run ~config rt [ Schedule.message ~length:2 "m" 0 15 ] in
  let s = stat_of "m" out in
  check cb "delivered via detour" true (s.Engine.t_fate = Engine.Delivered);
  check cb "after at least one abort" true (s.Engine.t_retries >= 1)

let test_reroute_rejects_disconnection () =
  (* failing the only b->c link disconnects a from d: reroute must refuse *)
  let rt, _, _, _, bc, _ = line3 () in
  match Degrade.reroute ~failed:[ bc ] rt with
  | Error _ -> ()
  | Ok d -> Alcotest.failf "expected error, got %s" (Format.asprintf "%a" Degrade.pp d)

let test_abort_resets_wait_seniority () =
  (* regression for the stale wait_since bookkeeping: after m1 aborts and
     backs off, m2 (waiting since cycle 3) must beat m1's fresh re-request
     for the injection channel.  With stale entries m1 would keep its
     cycle-0 seniority and win again. *)
  let rt, a, d, _, bc, _ = line3 () in
  let config =
    {
      Engine.default_config with
      faults = Fault.make [ Fault.Transient_stall { channel = bc; at = 0; duration = 9 } ];
      recovery =
        Some { Engine.default_recovery with trigger = Engine.Watchdog 4; retry_limit = 5; backoff = 1 };
    }
  in
  let sched =
    [ Schedule.message ~length:1 "m1" a d; Schedule.message ~length:1 ~at:3 "m2" a d ]
  in
  let out = Engine.run ~config rt sched in
  let m1 = result_of "m1" out and m2 = result_of "m2" out in
  check cb "both delivered" true
    (m1.Engine.r_delivered_at <> None && m2.Engine.r_delivered_at <> None);
  check cb "waiter outranks the re-injection" true
    (Option.get m2.Engine.r_injected_at < Option.get m1.Engine.r_injected_at)

let test_adaptive_recovery_terminates () =
  (* fully adaptive minimal routing can deadlock on its own; with recovery
     the faulted run still terminates, deterministically *)
  let coords = Builders.mesh [ 3; 3 ] in
  let ad = Adaptive.fully_adaptive_minimal coords in
  let sched =
    [
      Schedule.message ~length:3 "ne" 0 8;
      Schedule.message ~length:3 "sw" 8 0;
      Schedule.message ~length:3 "nw" 2 6;
      Schedule.message ~length:3 "se" 6 2;
    ]
  in
  let topo = coords.Builders.topo in
  let config =
    {
      Engine.default_config with
      faults =
        Fault.make
          [
            Fault.Transient_stall
              { channel = List.hd (Topology.channels topo); at = 0; duration = 6 };
          ];
      recovery =
        Some { Engine.default_recovery with trigger = Engine.Watchdog 8; retry_limit = 3; backoff = 2 };
    }
  in
  let run () = Adaptive_engine.run ~config ad sched in
  let out = run () in
  (match out with
  | Adaptive_engine.All_delivered _ | Adaptive_engine.Recovered _ -> ()
  | o ->
    Alcotest.failf "expected termination, got %s"
      (Format.asprintf "%a" (Engine.pp_outcome topo) o));
  check cb "deterministic" true (run () = out)

let () =
  Alcotest.run "fault"
    [
      ( "plans",
        [
          Alcotest.test_case "make and compiled queries" `Quick test_make_and_queries;
          Alcotest.test_case "make rejects bad events" `Quick test_make_rejects;
          Alcotest.test_case "parse round trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse mesh channel names" `Quick test_parse_mesh_channel_names;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "failure is deadlock without recovery" `Quick
            test_failure_is_deadlock_without_recovery;
          Alcotest.test_case "stall delays delivery" `Quick test_stall_delays_delivery;
          Alcotest.test_case "watchdog gives up" `Quick
            test_watchdog_gives_up_on_permanent_failure;
          Alcotest.test_case "drop without recovery" `Quick test_drop_without_recovery;
          Alcotest.test_case "drop with recovery retries" `Quick
            test_drop_with_recovery_retries;
          Alcotest.test_case "abort resets wait seniority" `Quick
            test_abort_resets_wait_seniority;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "reroute restores delivery" `Quick test_reroute_restores_delivery;
          Alcotest.test_case "reroute rejects disconnection" `Quick
            test_reroute_rejects_disconnection;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "recovery terminates" `Quick test_adaptive_recovery_terminates;
        ] );
    ]
