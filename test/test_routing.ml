(* Unit tests for the routing layer: algorithms, path computation, property
   checkers and the table-backed compiler. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let holds = Properties.is_holds

(* ---- path walking and validation ---- *)

let test_validate_suite () =
  let validate name rt =
    match Routing.validate rt with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  validate "xy mesh" (Dimension_order.mesh (Builders.mesh [ 4; 4 ]));
  validate "xy mesh 3d" (Dimension_order.mesh (Builders.mesh [ 3; 3; 3 ]));
  validate "west-first" (Turn_model.west_first (Builders.mesh [ 5; 3 ]));
  validate "hypercube" (Dimension_order.hypercube (Builders.hypercube 4));
  validate "torus" (Dimension_order.torus (Builders.torus [ 4; 5 ]));
  validate "torus dateline" (Dimension_order.torus ~datelines:true (Builders.torus ~vcs:2 [ 4; 4 ]));
  validate "ring clockwise" (Ring_routing.clockwise (Builders.ring ~unidirectional:true 5));
  validate "ring dateline" (Ring_routing.dateline (Builders.ring ~unidirectional:true ~vcs:2 5));
  validate "cd figure1" (Cd_algorithm.of_net (Paper_nets.figure1 ()))

let test_xy_path_shape () =
  let m = Builders.mesh [ 4; 4 ] in
  let rt = Dimension_order.mesh m in
  let p = Routing.path_exn rt (m.node_at [| 0; 3 |]) (m.node_at [| 2; 0 |]) in
  check ci "manhattan hops" 5 (List.length p);
  (* dimension 0 is fully corrected before dimension 1 moves *)
  let dims_of_hop c =
    let a = m.coord (Topology.src m.topo c) and b = m.coord (Topology.dst m.topo c) in
    if a.(0) <> b.(0) then 0 else 1
  in
  let dims = List.map dims_of_hop p in
  check (Alcotest.list ci) "x then y" [ 0; 0; 1; 1; 1 ] dims

let test_west_first_shape () =
  let m = Builders.mesh [ 4; 4 ] in
  let rt = Turn_model.west_first m in
  (* destination is west: all west hops happen first *)
  let p = Routing.path_exn rt (m.node_at [| 3; 0 |]) (m.node_at [| 0; 3 |]) in
  let moves =
    List.map
      (fun c ->
        let a = m.coord (Topology.src m.topo c) and b = m.coord (Topology.dst m.topo c) in
        if b.(0) < a.(0) then `West else if b.(0) > a.(0) then `East else `Vert)
      p
  in
  let rec no_west_after_other seen_other = function
    | [] -> true
    | `West :: rest -> (not seen_other) && no_west_after_other false rest
    | _ :: rest -> no_west_after_other true rest
  in
  check cb "west hops first" true (no_west_after_other false moves);
  (* east destinations route vertical before east *)
  let p2 = Routing.path_exn rt (m.node_at [| 0; 0 |]) (m.node_at [| 2; 2 |]) in
  let moves2 =
    List.map
      (fun c ->
        let a = m.coord (Topology.src m.topo c) and b = m.coord (Topology.dst m.topo c) in
        if b.(0) > a.(0) then `East else `Vert)
      p2
  in
  check (Alcotest.list cb) "vertical then east"
    [ true; true; false; false ]
    (List.map (fun m -> m = `Vert) moves2)

let test_torus_shortest_direction () =
  let t = Builders.torus [ 5 ] in
  let rt = Dimension_order.torus t in
  (* 0 -> 4 is one hop backward through the wrap, not four forward *)
  check ci "wrap shortcut" 1 (List.length (Routing.path_exn rt 0 4));
  check ci "forward" 2 (List.length (Routing.path_exn rt 0 2));
  (* ties (distance k/2) go the positive way *)
  let t4 = Builders.torus [ 4 ] in
  let rt4 = Dimension_order.torus t4 in
  let p = Routing.path_exn rt4 0 2 in
  check ci "tie length" 2 (List.length p);
  check ci "tie first hop positive" 1 (Topology.dst t4.topo (List.hd p))

let test_torus_dateline_vcs () =
  let t = Builders.torus ~vcs:2 [ 5 ] in
  let rt = Dimension_order.torus ~datelines:true t in
  (* a path crossing the wrap switches to vc 1 at the wrap hop and stays *)
  let p = Routing.path_exn rt 3 0 in
  let vcs = List.map (Topology.vc t.topo) p in
  check (Alcotest.list ci) "vc pattern" [ 0; 1 ] vcs;
  (* a path not crossing the wrap stays on vc 0 *)
  let p2 = Routing.path_exn rt 1 3 in
  check (Alcotest.list ci) "vc0 only" [ 0; 0 ] (List.map (Topology.vc t.topo) p2)

let test_ring_routing () =
  let r = Builders.ring ~unidirectional:true 6 in
  let rt = Ring_routing.clockwise r in
  check ci "around" 5 (List.length (Routing.path_exn rt 0 5));
  let r2 = Builders.ring ~unidirectional:true ~vcs:2 6 in
  let rt2 = Ring_routing.dateline r2 in
  let p = Routing.path_exn rt2 4 1 in
  let vcs = List.map (Topology.vc r2.topo) p in
  check (Alcotest.list ci) "dateline vcs" [ 0; 1; 1 ] vcs

let test_north_last_shape () =
  let m = Builders.mesh [ 4; 4 ] in
  let rt = Turn_model.north_last m in
  (match Routing.validate rt with Ok () -> () | Error e -> Alcotest.fail e);
  (* a path needing north hops finishes with them *)
  let p = Routing.path_exn rt (m.node_at [| 0; 0 |]) (m.node_at [| 2; 3 |]) in
  let moves =
    List.map
      (fun c ->
        let a = m.coord (Topology.src m.topo c) and b = m.coord (Topology.dst m.topo c) in
        if b.(1) > a.(1) then `North else `Other)
      p
  in
  let rec only_north_after_first = function
    | [] -> true
    | `North :: rest -> List.for_all (fun x -> x = `North) rest && only_north_after_first []
    | `Other :: rest -> only_north_after_first rest
  in
  check cb "north hops last" true (only_north_after_first moves);
  check cb "acyclic CDG" true (Cdg.is_acyclic (Cdg.build rt));
  check cb "minimal" true (holds (Properties.minimal rt))

let test_negative_first_shape () =
  let m = Builders.mesh [ 4; 4 ] in
  let rt = Turn_model.negative_first m in
  (match Routing.validate rt with Ok () -> () | Error e -> Alcotest.fail e);
  (* every negative hop precedes every positive hop *)
  let p = Routing.path_exn rt (m.node_at [| 3; 0 |]) (m.node_at [| 1; 3 |]) in
  let signs =
    List.map
      (fun c ->
        let a = m.coord (Topology.src m.topo c) and b = m.coord (Topology.dst m.topo c) in
        if b.(0) < a.(0) || b.(1) < a.(1) then `Neg else `Pos)
      p
  in
  let rec no_neg_after_pos seen_pos = function
    | [] -> true
    | `Neg :: rest -> (not seen_pos) && no_neg_after_pos false rest
    | `Pos :: rest -> no_neg_after_pos true rest
  in
  check cb "negative first" true (no_neg_after_pos false signs);
  check cb "acyclic CDG" true (Cdg.is_acyclic (Cdg.build rt));
  check cb "coherent" true (holds (Properties.coherent rt))

(* ---- property checkers ---- *)

let test_xy_properties () =
  let rt = Dimension_order.mesh (Builders.mesh [ 4; 4 ]) in
  check cb "minimal" true (holds (Properties.minimal rt));
  check cb "coherent" true (holds (Properties.coherent rt));
  check cb "prefix" true (holds (Properties.prefix_closed rt));
  check cb "suffix" true (holds (Properties.suffix_closed rt));
  check cb "no repeats" true (holds (Properties.no_repeated_nodes rt))

let test_west_first_properties () =
  let rt = Turn_model.west_first (Builders.mesh [ 4; 4 ]) in
  check cb "minimal" true (holds (Properties.minimal rt));
  check cb "coherent" true (holds (Properties.coherent rt))

let test_torus_properties () =
  let rt = Dimension_order.torus (Builders.torus [ 5; 5 ]) in
  check cb "minimal" true (holds (Properties.minimal rt));
  check cb "suffix-closed" true (holds (Properties.suffix_closed rt))

let test_cd_properties () =
  let rt = Cd_algorithm.of_net (Paper_nets.figure1 ()) in
  (* the paper's example is necessarily nonminimal, non-prefix-closed,
     non-suffix-closed and incoherent -- otherwise Corollaries 2-3 or
     Theorem 3 would forbid its false resource cycle *)
  check cb "not minimal" false (holds (Properties.minimal rt));
  check cb "not prefix" false (holds (Properties.prefix_closed rt));
  check cb "not suffix" false (holds (Properties.suffix_closed rt));
  check cb "not coherent" false (holds (Properties.coherent rt));
  check cb "no repeated nodes" true (holds (Properties.no_repeated_nodes rt))

let test_property_witness_strings () =
  let rt = Cd_algorithm.of_net (Paper_nets.figure1 ()) in
  match Properties.minimal rt with
  | Properties.Holds -> Alcotest.fail "expected failure with witness"
  | Properties.Fails w -> check cb "witness mentions hops" true (String.length w > 10)

(* ---- table-backed routing ---- *)

let tiny_topo () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let c = Topology.add_node t "c" in
  let ab = Topology.add_channel t a b in
  let bc = Topology.add_channel t b c in
  let ba = Topology.add_channel t b a in
  let cb_ = Topology.add_channel t c b in
  (t, a, b, c, ab, bc, ba, cb_)

let test_table_routing_of_paths () =
  let t, a, _, c, ab, bc, ba, cb_ = tiny_topo () in
  let default input dest =
    let here = Routing.current_node t input in
    if here = dest then None
    else
      (* direct channel if present, otherwise via the middle node b *)
      match
        Topology.out_channels t here
        |> List.find_opt (fun ch -> Topology.dst t ch = dest)
      with
      | Some ch -> Some ch
      | None ->
        Topology.out_channels t here
        |> List.find_opt (fun ch -> Topology.dst t ch <> dest)
  in
  let rt = Table_routing.of_paths ~name:"tiny" ~default t [ (a, c, [ ab; bc ]) ] in
  check (Alcotest.list ci) "explicit path" [ ab; bc ] (Routing.path_exn rt a c);
  check (Alcotest.list ci) "default path" [ cb_; ba ] (Routing.path_exn rt c a)

let test_table_routing_conflict () =
  let t, a, _, c, ab, bc, _, _ = tiny_topo () in
  Alcotest.check_raises "disconnected chain"
    (Invalid_argument "Table_routing: path is not a connected channel chain") (fun () ->
      ignore (Table_routing.of_paths ~name:"bad" ~default:(fun _ _ -> None) t [ (a, c, [ bc ]) ]));
  Alcotest.check_raises "wrong end"
    (Invalid_argument "Table_routing: path does not end at its destination") (fun () ->
      ignore (Table_routing.of_paths ~name:"bad" ~default:(fun _ _ -> None) t [ (a, c, [ ab ]) ]))

let test_routing_error_reporting () =
  (* a routing function that ping-pongs forever must be diagnosed *)
  let t, a, _, c, ab, _, ba, _ = tiny_topo () in
  let rt =
    Routing.create ~name:"pingpong" t (fun input _ ->
        match input with
        | Routing.Inject _ -> Some ab
        | Routing.From ch -> if ch = ab then Some ba else Some ab)
  in
  (match Routing.path rt a c with
  | Error { Routing.e_kind = Routing.Livelock _; _ } as r -> (
    match r with
    | Error e -> check cb "mentions livelock" true (String.length (Routing.error_message e) > 0)
    | Ok _ -> ())
  | Error e -> Alcotest.fail ("wrong error kind: " ^ Routing.error_message e)
  | Ok _ -> Alcotest.fail "expected livelock detection");
  (* consuming at the wrong node must be diagnosed, with the typed kind *)
  let rt2 = Routing.create ~name:"early" t (fun _ _ -> None) in
  (match Routing.path rt2 a c with
  | Error { Routing.e_kind = Routing.Consumed_early { at }; _ } ->
    check ci "consumed at source" a at
  | Error e -> Alcotest.fail ("wrong error kind: " ^ Routing.error_message e)
  | Ok _ -> Alcotest.fail "expected consumption error");
  (* path_exn raises the typed exception *)
  match Routing.path_exn rt2 a c with
  | exception Routing.Route_error e ->
    check cb "exception carries source" true (e.Routing.e_src = a && e.Routing.e_dst = c)
  | _ -> Alcotest.fail "expected Route_error"

let test_iter_realized () =
  let rt = Dimension_order.mesh (Builders.mesh [ 3; 3 ]) in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  Routing.iter_realized rt (fun input dest c ->
      incr count;
      if Hashtbl.mem seen (input, dest) then Alcotest.fail "duplicate decision";
      Hashtbl.add seen (input, dest) c);
  check cb "many decisions" true (!count > 50)

let test_pp_path () =
  let m = Builders.mesh [ 2; 2 ] in
  let rt = Dimension_order.mesh m in
  let p = Routing.path_exn rt (m.node_at [| 0; 0 |]) (m.node_at [| 1; 1 |]) in
  let s = Format.asprintf "%a" (Routing.pp_path rt) p in
  check cb "renders" true (String.length s > 10)

let () =
  Alcotest.run "routing"
    [
      ( "algorithms",
        [
          Alcotest.test_case "validate suite" `Quick test_validate_suite;
          Alcotest.test_case "xy path shape" `Quick test_xy_path_shape;
          Alcotest.test_case "west-first shape" `Quick test_west_first_shape;
          Alcotest.test_case "north-last shape" `Quick test_north_last_shape;
          Alcotest.test_case "negative-first shape" `Quick test_negative_first_shape;
          Alcotest.test_case "torus shortest direction" `Quick test_torus_shortest_direction;
          Alcotest.test_case "torus dateline vcs" `Quick test_torus_dateline_vcs;
          Alcotest.test_case "ring routing" `Quick test_ring_routing;
        ] );
      ( "properties",
        [
          Alcotest.test_case "xy coherent+minimal" `Quick test_xy_properties;
          Alcotest.test_case "west-first coherent" `Quick test_west_first_properties;
          Alcotest.test_case "torus suffix-closed" `Quick test_torus_properties;
          Alcotest.test_case "cd algorithm incoherent" `Quick test_cd_properties;
          Alcotest.test_case "failure witnesses" `Quick test_property_witness_strings;
        ] );
      ( "table_routing",
        [
          Alcotest.test_case "of_paths + default" `Quick test_table_routing_of_paths;
          Alcotest.test_case "malformed paths rejected" `Quick test_table_routing_conflict;
        ] );
      ( "walking",
        [
          Alcotest.test_case "error reporting" `Quick test_routing_error_reporting;
          Alcotest.test_case "iter_realized dedup" `Quick test_iter_realized;
          Alcotest.test_case "pp_path" `Quick test_pp_path;
        ] );
    ]
