(* Observability-layer tests.

   - Sink purity: attaching any sink (explicit or installed) never changes
     an engine outcome -- the central contract of the event bus, as a QCheck
     property over random schedules on an acyclic mesh and a deadlock-prone
     ring, with and without recovery.
   - Metrics registry laws and exact Prometheus/JSON rendering.
   - Golden-file exporters: the figure-1 false-resource-cycle run and the
     figure-2 explorer-witness deadlock replay must reproduce the captured
     wormsim outputs byte-for-byte (the files under test/golden).
   - Deadlock post-mortem: the figure-2 knot names its channels, the
     expanded cycle is a genuine CDG cycle, and classification says
     Theorem-reachable; figure 1 has no knot.
   - Trace truncation markers, pool claim coverage, the Obs pool bridge,
     and exact cancelled-run accounting across domain counts. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string
let qtest = QCheck_alcotest.to_alcotest ~long:false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- sink purity (same schedule generator family as test_qcheck) ---- *)

let schedule_gen coords =
  let n = Topology.num_nodes coords.Builders.topo in
  QCheck.make
    QCheck.Gen.(
      let msg i =
        let* s = 0 -- (n - 1) in
        let* d = 0 -- (n - 1) in
        let* len = 1 -- 6 in
        let* at = 0 -- 10 in
        return
          (Schedule.message ~length:len ~at
             (Printf.sprintf "m%d" i)
             s
             (if d = s then (d + 1) mod n else d))
      in
      let* k = 1 -- 6 in
      let rec build i acc =
        if i = k then return (List.rev acc)
        else
          let* m = msg i in
          build (i + 1) (m :: acc)
      in
      build 0 [])

let mesh3 = Builders.mesh [ 3; 3 ]
let mesh3_rt = Dimension_order.mesh mesh3
let ring5 = Builders.ring ~unidirectional:true 5
let ring5_rt = Ring_routing.clockwise ring5

let observed_run ?config rt sched =
  let sink, _ = Obs.recorder () in
  let reg = Obs.Metrics.create () in
  Engine.run ?config ~obs:(Obs.tee [ sink; Obs.metrics_sink reg; Obs.null ]) rt sched

let prop_sink_purity coords rt name =
  QCheck.Test.make ~name ~count:100 (schedule_gen coords) (fun sched ->
      Engine.run rt sched = observed_run rt sched)

let prop_sink_purity_mesh =
  prop_sink_purity mesh3 mesh3_rt "sinks never change outcomes (mesh, delivery)"

let prop_sink_purity_ring =
  prop_sink_purity ring5 ring5_rt "sinks never change outcomes (ring, deadlocks)"

let prop_sink_purity_recovery =
  (* recovery exercises the Abort/Retry/Gave_up emission sites too *)
  QCheck.Test.make ~name:"sinks never change outcomes (ring, recovery)" ~count:60
    (schedule_gen ring5)
    (fun sched ->
      let config =
        {
          Engine.default_config with
          recovery =
            Some { Engine.default_recovery with trigger = Engine.Watchdog 8; retry_limit = 2; backoff = 4 };
        }
      in
      Engine.run ~config ring5_rt sched = observed_run ~config ring5_rt sched)

let prop_sink_purity_installed =
  (* the process-wide installed sink must be just as invisible as ?obs *)
  QCheck.Test.make ~name:"installed sink never changes outcomes" ~count:60
    (schedule_gen ring5)
    (fun sched ->
      let plain = Engine.run ring5_rt sched in
      let sink, _ = Obs.recorder () in
      Obs.install sink;
      let observed =
        Fun.protect ~finally:Obs.uninstall (fun () -> Engine.run ring5_rt sched)
      in
      plain = observed)

let test_adaptive_sink_purity () =
  let coords = Builders.mesh ~vcs:2 [ 3; 3 ] in
  let ad = Adaptive.duato_mesh coords in
  let sched =
    List.init 6 (fun i -> Schedule.message ~length:3 (Printf.sprintf "m%d" i) i ((i + 4) mod 9))
  in
  let plain = Adaptive_engine.run ad sched in
  let sink, events = Obs.recorder () in
  let observed = Adaptive_engine.run ~obs:sink ad sched in
  check cb "adaptive outcome unchanged under observation" true (plain = observed);
  check cb "adaptive run emitted events" true (events () <> [])

(* ---- metrics registry ---- *)

let test_metrics_basics () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~help:"h" "c_total" in
  Obs.Metrics.inc c;
  Obs.Metrics.add c 4;
  check ci "counter value" 5 (Obs.Metrics.value c);
  (* re-registration returns the same instrument *)
  Obs.Metrics.inc (Obs.Metrics.counter reg "c_total");
  check ci "counter upsert" 6 (Obs.Metrics.value c);
  let g = Obs.Metrics.gauge reg "g" in
  Obs.Metrics.set g 7;
  Obs.Metrics.gauge_add g (-2);
  check ci "gauge value" 5 (List.assoc "g" (Obs.Metrics.snapshot reg));
  let h = Obs.Metrics.histogram reg ~buckets:[ 1; 10 ] "h" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 5; 100 ];
  let snap = Obs.Metrics.snapshot reg in
  check ci "histogram count" 4 (List.assoc "h_count" snap);
  check ci "histogram sum" 106 (List.assoc "h_sum" snap);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check cb "kind clash rejected" true (raises (fun () -> Obs.Metrics.gauge reg "c_total"));
  check cb "negative counter add rejected" true (raises (fun () -> Obs.Metrics.add c (-1)));
  check cb "bad metric name rejected" true
    (raises (fun () -> Obs.Metrics.counter reg "bad name"));
  check cb "unsorted buckets rejected" true
    (raises (fun () -> Obs.Metrics.histogram reg ~buckets:[ 10; 1 ] "h2"));
  check cb "bucket redefinition rejected" true
    (raises (fun () -> Obs.Metrics.histogram reg ~buckets:[ 1; 2 ] "h"))

let small_registry () =
  let reg = Obs.Metrics.create () in
  let a = Obs.Metrics.counter reg ~help:"Requests" ~labels:[ ("kind", "a") ] "req_total" in
  Obs.Metrics.inc a;
  ignore (Obs.Metrics.counter reg ~labels:[ ("kind", "b") ] "req_total");
  let h = Obs.Metrics.histogram reg ~help:"Latency" ~buckets:[ 1; 2 ] "lat" in
  Obs.Metrics.observe h 1;
  Obs.Metrics.observe h 3;
  reg

let test_prometheus_rendering () =
  check cs "prometheus text"
    "# HELP lat Latency\n\
     # TYPE lat histogram\n\
     lat_bucket{le=\"1\"} 1\n\
     lat_bucket{le=\"2\"} 1\n\
     lat_bucket{le=\"+Inf\"} 2\n\
     lat_sum 4\n\
     lat_count 2\n\
     # HELP req_total Requests\n\
     # TYPE req_total counter\n\
     req_total{kind=\"a\"} 1\n\
     req_total{kind=\"b\"} 0\n"
    (Obs.Metrics.to_prometheus (small_registry ()))

let test_json_rendering () =
  check cs "metrics json"
    "{\"schema\":\"wormhole-metrics/1\",\"metrics\":[\
     {\"name\":\"lat\",\"kind\":\"histogram\",\"labels\":{},\
     \"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":0}],\
     \"overflow\":1,\"sum\":4,\"count\":2},\
     {\"name\":\"req_total\",\"kind\":\"counter\",\"labels\":{\"kind\":\"a\"},\"value\":1},\
     {\"name\":\"req_total\",\"kind\":\"counter\",\"labels\":{\"kind\":\"b\"},\"value\":0}]}"
    (Obs.Metrics.to_json (small_registry ()))

let test_metrics_sink_fold () =
  let reg = Obs.Metrics.create () in
  let sink = Obs.metrics_sink reg in
  List.iter sink.Obs.emit
    [
      Obs.Event.Run_start { engine = "oblivious"; algorithm = "x"; messages = 2 };
      Obs.Event.Channel_acquire { cycle = 1; label = "m"; channel = 0; waited = 0 };
      Obs.Event.Wait_add { cycle = 1; label = "m"; channel = 1; holder = None };
      Obs.Event.Channel_acquire { cycle = 2; label = "m"; channel = 1; waited = 3 };
      Obs.Event.Flit { cycle = 2; label = "m"; channel = 1; kind = Obs.Event.Hop };
      Obs.Event.Delivered { cycle = 5; label = "m"; latency = 5 };
      Obs.Event.Task_claim { pool = "wr_pool"; first = 0; last = 4 };
      Obs.Event.Search_end { algorithm = "x"; runs = 7; cancelled = 2; witness = true };
      Obs.Event.Run_end { cycle = 5; outcome = "all-delivered" };
    ];
  let snap = Obs.Metrics.snapshot reg in
  let v k =
    match List.assoc_opt k snap with
    | Some v -> v
    | None -> Alcotest.fail ("missing metric " ^ k)
  in
  check ci "runs" 1 (v "wormhole_runs_total");
  check ci "outcome" 1 (v "wormhole_run_outcomes_total{outcome=\"all-delivered\"}");
  check ci "acquisitions" 2 (v "wormhole_channel_acquisitions_total");
  check ci "wait edges" 1 (v "wormhole_wait_edges_total");
  check ci "wait histogram counts only real waits" 1 (v "wormhole_wait_cycles_count");
  check ci "wait histogram sum" 3 (v "wormhole_wait_cycles_sum");
  check ci "hop flits" 1 (v "wormhole_flits_total{kind=\"hop\"}");
  check ci "inject flits stay zero" 0 (v "wormhole_flits_total{kind=\"inject\"}");
  check ci "delivered" 1 (v "wormhole_messages_delivered_total");
  check ci "latency sum" 5 (v "wormhole_message_latency_cycles_sum");
  check ci "run cycles sum" 5 (v "wormhole_run_cycles_sum");
  check ci "pool claims" 1 (v "wormhole_pool_task_claims_total");
  check ci "pool tasks" 5 (v "wormhole_pool_tasks_claimed_total");
  check ci "search runs" 7 (v "wormhole_search_runs_total");
  check ci "search cancelled" 2 (v "wormhole_search_cancelled_total")

(* ---- golden exporters: figure 1 (false resource cycle, delivers) ---- *)

(* Mirrors wormsim's paper-net branch exactly: default --length 4 intent
   schedule, buffer 1, no faults or recovery, recorder teed with a metrics
   fold. *)
let fig1 =
  lazy
    (let net = Paper_nets.figure1 () in
     let rt = Cd_algorithm.of_net net in
     let sched =
       List.map
         (fun (it : Paper_nets.intent) -> Schedule.message ~length:4 it.i_label it.i_src it.i_dst)
         net.Paper_nets.intents
     in
     let sink, events = Obs.recorder () in
     let reg = Obs.Metrics.create () in
     let config =
       { Engine.default_config with buffer_capacity = 1; faults = Fault.empty; recovery = None }
     in
     let out = Engine.run ~config ~obs:(Obs.tee [ sink; Obs.metrics_sink reg ]) rt sched in
     (net, rt, out, events (), reg))

let test_figure1_delivers () =
  let _, _, out, events, _ = Lazy.force fig1 in
  (match out with
  | Engine.All_delivered _ -> ()
  | o -> Alcotest.fail ("figure1 should deliver, got " ^ Engine.outcome_string o));
  check cb "events recorded" true (events <> [])

let test_figure1_chrome_golden () =
  let net, _, _, events, _ = Lazy.force fig1 in
  check cs "chrome trace matches wormsim --trace-out"
    (read_file "golden/figure1.trace.json")
    (Obs.Chrome.to_json ~topo:net.Paper_nets.topo events)

let test_figure1_metrics_golden () =
  let _, _, _, _, reg = Lazy.force fig1 in
  check cs "prometheus matches wormsim --metrics-out"
    (read_file "golden/figure1.metrics.prom")
    (Obs.Metrics.to_prometheus reg)

let test_figure1_postmortem_no_knot () =
  let _, rt, _, events, _ = Lazy.force fig1 in
  let pm = Obs.Postmortem.analyze ~rt events in
  check cb "no knot" true (pm.Obs.Postmortem.pm_knot = []);
  check cb "no cycle" true (Obs.Postmortem.knot_channels pm = []);
  check cb "no outstanding waits" true (pm.Obs.Postmortem.pm_waits = []);
  (match pm.Obs.Postmortem.pm_outcome with
  | Some "all-delivered" -> ()
  | o -> Alcotest.fail ("unexpected outcome " ^ Option.value ~default:"(none)" o));
  check cb "no verdict without a knot" true (pm.Obs.Postmortem.pm_verdict = None)

(* ---- golden exporters: figure 2 (explorer witness, deadlocks) ---- *)

(* Mirrors wormsim --witness: sweep the intent schedule space (canonical at
   any domain count, so the witness is the same one the goldens captured),
   then replay only the witness under observation. *)
let fig2 =
  lazy
    (let net = Paper_nets.figure2 () in
     let rt = Cd_algorithm.of_net net in
     let templates =
       List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents
     in
     match Explorer.explore rt (Explorer.default_space templates) with
     | Explorer.No_deadlock _ -> Alcotest.fail "figure2: expected a deadlock witness"
     | Explorer.Deadlock_found { witness = w; _ } ->
       let sink, events = Obs.recorder () in
       let reg = Obs.Metrics.create () in
       let out =
         Engine.run ~config:w.Explorer.w_config
           ~obs:(Obs.tee [ sink; Obs.metrics_sink reg ])
           rt w.Explorer.w_schedule
       in
       (net, rt, out, events (), reg))

let test_figure2_witness_deadlocks () =
  let _, _, out, _, _ = Lazy.force fig2 in
  check cb "witness replay deadlocks" true (Engine.is_deadlock out)

let test_figure2_chrome_golden () =
  let net, _, _, events, _ = Lazy.force fig2 in
  check cs "chrome trace matches wormsim --witness --trace-out"
    (read_file "golden/figure2.trace.json")
    (Obs.Chrome.to_json ~topo:net.Paper_nets.topo events)

let test_figure2_metrics_golden () =
  let _, _, _, _, reg = Lazy.force fig2 in
  check cs "prometheus matches wormsim --witness --metrics-out"
    (read_file "golden/figure2.metrics.prom")
    (Obs.Metrics.to_prometheus reg)

let test_figure2_postmortem () =
  let net, rt, _, events, _ = Lazy.force fig2 in
  let pm = Obs.Postmortem.analyze ~rt events in
  check cb "knot found" true (pm.Obs.Postmortem.pm_knot <> []);
  let cycle = Obs.Postmortem.knot_channels pm in
  check cb "cycle expands the knot" true (List.length cycle >= List.length pm.Obs.Postmortem.pm_knot);
  (* the expanded cycle must be a genuine CDG cycle -- that is what makes
     the Theorem 2-5 classification sound *)
  let cdg = Cdg.build rt in
  let rec edges_ok = function
    | a :: (b :: _ as tl) -> List.mem b (Cdg.succ cdg a) && edges_ok tl
    | [ a ] -> List.mem (List.hd cycle) (Cdg.succ cdg a)
    | [] -> false
  in
  check cb "expanded cycle is a CDG cycle" true (edges_ok cycle);
  (match pm.Obs.Postmortem.pm_verdict with
  | Some (_, Cycle_analysis.Deadlock_reachable _) -> ()
  | Some (_, v) ->
    Alcotest.fail (Format.asprintf "expected Deadlock_reachable, got %a" Cycle_analysis.pp_verdict v)
  | None -> Alcotest.fail "expected a classification verdict");
  let rendered = Obs.Postmortem.render ~topo:net.Paper_nets.topo pm in
  check cb "render names a theorem" true (contains rendered "Theorem");
  check cb "render names the knot" true (contains rendered "wait-for knot");
  (* occupancy history must cover every channel the knot waits on *)
  List.iter
    (fun (_, wanted) ->
      check cb "wanted channel has occupancy history" true
        (List.exists (fun o -> o.Obs.Postmortem.oc_channel = wanted) pm.Obs.Postmortem.pm_occupancy))
    pm.Obs.Postmortem.pm_knot

(* ---- trace truncation ---- *)

let test_trace_truncation () =
  let trace, probe = Trace.collector () in
  let sched = [ Schedule.message ~length:6 "a" 0 8 ] in
  (match Engine.run ~probe mesh3_rt sched with
  | Engine.All_delivered _ -> ()
  | _ -> Alcotest.fail "expected delivery");
  let tr = trace () in
  let cycles = List.length tr in
  check cb "run long enough to truncate" true (cycles > 4);
  let truncated = Trace.render ~max_cycles:4 mesh3.Builders.topo tr in
  check cb "explicit cycle-count marker" true
    (contains truncated (Printf.sprintf "… +%d cycles" (cycles - 4)));
  check cb "rows are marked" true (contains truncated " …");
  let full = Trace.render mesh3.Builders.topo tr in
  check cb "no marker when untruncated" false (contains full "… +")

(* ---- pool observation ---- *)

let test_pool_claims_cover_tasks () =
  let lock = Mutex.create () in
  let claims = ref [] in
  Wr_pool.set_observer
    (Some
       (fun ev ->
         Mutex.lock lock;
         (match ev with
         | Wr_pool.Claim { first; last } -> claims := (first, last) :: !claims
         | Wr_pool.Cancel _ -> ());
         Mutex.unlock lock));
  Fun.protect
    ~finally:(fun () -> Wr_pool.set_observer None)
    (fun () ->
      let out = Wr_pool.mapi_array ~domains:2 (fun i () -> i) (Array.make 17 ()) in
      check ci "all tasks ran" 17 (Array.length out);
      Array.iteri (fun i v -> check ci "task identity" i v) out;
      let covered = Array.make 17 0 in
      List.iter (fun (f, l) -> for i = f to l do covered.(i) <- covered.(i) + 1 done) !claims;
      check cb "claims cover every task exactly once" true
        (Array.for_all (fun n -> n = 1) covered))

let test_pool_bridge () =
  let sink, events = Obs.recorder () in
  Obs.install sink;
  Obs.attach_pool ();
  Fun.protect
    ~finally:(fun () ->
      Obs.detach_pool ();
      Obs.uninstall ())
    (fun () -> ignore (Wr_pool.map ~domains:2 (fun x -> x * 2) (List.init 12 Fun.id)));
  let claimed =
    List.fold_left
      (fun acc e ->
        match e with Obs.Event.Task_claim { first; last; _ } -> acc + (last - first + 1) | _ -> acc)
      0 (events ())
  in
  check ci "bridge forwards every claimed task" 12 claimed

(* ---- search events and exact cancelled accounting ---- *)

let fig2_space () =
  let net = Paper_nets.figure2 () in
  let rt = Cd_algorithm.of_net net in
  let templates = List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents in
  (rt, Explorer.default_space templates)

let test_search_events () =
  let rt, space = fig2_space () in
  let sink, events = Obs.recorder () in
  Obs.install sink;
  let verdict =
    Fun.protect ~finally:Obs.uninstall (fun () -> Explorer.explore ~domains:2 rt space)
  in
  let runs =
    match verdict with
    | Explorer.No_deadlock { runs } | Explorer.Deadlock_found { runs; _ } -> runs
  in
  let starts =
    List.filter (function Obs.Event.Search_start _ -> true | _ -> false) (events ())
  in
  check ci "one Search_start" 1 (List.length starts);
  (match starts with
  | [ Obs.Event.Search_start { tasks; _ } ] -> check cb "task count positive" true (tasks > 0)
  | _ -> ());
  match List.filter (function Obs.Event.Search_end _ -> true | _ -> false) (events ()) with
  | [ Obs.Event.Search_end { runs = r; cancelled; witness; _ } ] ->
    check ci "Search_end reports the canonical run count" runs r;
    check cb "cancelled is non-negative" true (cancelled >= 0);
    check cb "witness flag matches verdict" (Explorer.is_deadlock_found verdict) witness
  | evs -> Alcotest.fail (Printf.sprintf "expected one Search_end, got %d" (List.length evs))

let test_cancelled_accounting () =
  let rt, space = fig2_space () in
  let sweep domains =
    let r0 = Engine.run_count () and c0 = Engine.cancelled_count () in
    let verdict = Explorer.explore ~domains rt space in
    let runs =
      match verdict with
      | Explorer.No_deadlock { runs } | Explorer.Deadlock_found { runs; _ } -> runs
    in
    (runs, Engine.run_count () - r0, Engine.cancelled_count () - c0)
  in
  let v1, s1, c1 = sweep 1 in
  let v4, s4, c4 = sweep 4 in
  check ci "verdict runs identical across domain counts" v1 v4;
  check ci "sequential sweep cancels nothing" 0 c1;
  (* every started run is either canonical or cancelled, and confirming the
     witness replays exactly one extra canonical run *)
  check ci "exact canonical tally (domains=1)" (v1 + 1) (s1 - c1);
  check ci "exact canonical tally (domains=4)" (v1 + 1) (s4 - c4)

let () =
  Alcotest.run "obs"
    [
      ( "purity",
        [
          qtest prop_sink_purity_mesh;
          qtest prop_sink_purity_ring;
          qtest prop_sink_purity_recovery;
          qtest prop_sink_purity_installed;
          Alcotest.test_case "adaptive engine" `Quick test_adaptive_sink_purity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry laws" `Quick test_metrics_basics;
          Alcotest.test_case "prometheus rendering" `Quick test_prometheus_rendering;
          Alcotest.test_case "json rendering" `Quick test_json_rendering;
          Alcotest.test_case "event fold" `Quick test_metrics_sink_fold;
        ] );
      ( "golden-figure1",
        [
          Alcotest.test_case "delivers" `Quick test_figure1_delivers;
          Alcotest.test_case "chrome trace" `Quick test_figure1_chrome_golden;
          Alcotest.test_case "prometheus" `Quick test_figure1_metrics_golden;
          Alcotest.test_case "post-mortem: no knot" `Quick test_figure1_postmortem_no_knot;
        ] );
      ( "golden-figure2",
        [
          Alcotest.test_case "witness deadlocks" `Quick test_figure2_witness_deadlocks;
          Alcotest.test_case "chrome trace" `Quick test_figure2_chrome_golden;
          Alcotest.test_case "prometheus" `Quick test_figure2_metrics_golden;
          Alcotest.test_case "post-mortem: knot + theorem" `Quick test_figure2_postmortem;
        ] );
      ( "trace",
        [ Alcotest.test_case "truncation markers" `Quick test_trace_truncation ] );
      ( "pool",
        [
          Alcotest.test_case "claims cover tasks" `Quick test_pool_claims_cover_tasks;
          Alcotest.test_case "event-bus bridge" `Quick test_pool_bridge;
        ] );
      ( "search",
        [
          Alcotest.test_case "search events" `Quick test_search_events;
          Alcotest.test_case "cancelled accounting" `Quick test_cancelled_accounting;
        ] );
    ]
