(* Unit tests for the wr_analysis layer: diagnostic plumbing (constructors,
   ordering, JSON), the lint battery via the seeded-defect corpus and the
   shipped-algorithm registry, fault-plan lints, the Verify diagnostics
   bridge, and the engine sanitizer (collector semantics plus clean
   sanitized runs). *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

(* ---- Diagnostic ---- *)

let test_diag_constructors () =
  let d = Diagnostic.error "E011" (Diagnostic.Pair (0, 1)) "boom" in
  check cs "code kept" "E011" d.Diagnostic.code;
  check cb "is_error" true (Diagnostic.is_error d);
  Alcotest.check_raises "severity must match code letter"
    (Invalid_argument "Diagnostic: code \"W010\" does not match severity error") (fun () ->
      ignore (Diagnostic.error "W010" (Diagnostic.Algorithm "x") "mismatch"));
  let w = Diagnostic.warning "W010" (Diagnostic.Channel 3) "dead" in
  let i = Diagnostic.info "I020" (Diagnostic.Cycle [ 0; 1 ]) "fine" in
  let sorted = Diagnostic.by_severity [ i; w; d ] in
  check ci "errors first"
    (match sorted with e :: _ -> if Diagnostic.is_error e then 1 else 0 | [] -> 0)
    1;
  check ci "count warnings" 1 (Diagnostic.count Diagnostic.Warning sorted);
  check ci "errors extracts" 1 (List.length (Diagnostic.errors sorted))

let test_diag_json () =
  check cs "escaping" "a\\\"b\\\\c\\n" (Diagnostic.json_escape "a\"b\\c\n");
  let d =
    Diagnostic.error "E001" (Diagnostic.Message "m\"1")
      ~context:[ ("algorithm", "x") ]
      "live\"lock"
  in
  let json = Diagnostic.to_json d in
  check cb "code field" true
    (String.length json > 0
    &&
    let re_has needle =
      let n = String.length needle and l = String.length json in
      let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
      go 0
    in
    re_has "\"code\":\"E001\"" && re_has "m\\\"1" && re_has "live\\\"lock"
    && re_has "\"algorithm\":\"x\"");
  let arr = Diagnostic.list_to_json [ d; d ] in
  check cb "array brackets" true (arr.[0] = '[' && arr.[String.length arr - 1] = ']')

(* ---- corpus and registry ---- *)

let test_corpus_all () =
  List.iter
    (fun (name, r) ->
      match r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "corpus %s: %s" name msg)
    (Corpus.check_all ())

let test_corpus_covers_codes () =
  let codes =
    List.sort_uniq compare
      (List.map (fun (c : Corpus.entry) -> c.Corpus.c_expected) (Corpus.entries ()))
  in
  check cb "at least 8 distinct codes" true (List.length codes >= 8)

let test_registry_zero_errors () =
  List.iter
    (fun (e : Registry.entry) ->
      let errs = Diagnostic.errors (Registry.lint e) in
      if errs <> [] then
        Alcotest.failf "%s: %s" e.Registry.r_name
          (Format.asprintf "%a"
             (Diagnostic.pp ~topo:(Registry.topology e) ())
             (List.hd errs)))
    (Registry.entries ())

let test_registry_find () =
  check cb "xy-mesh-4x4 registered" true (Registry.find "xy-mesh-4x4" <> None);
  check cb "unknown not registered" true (Registry.find "no-such-algo" = None);
  check cb "names non-empty" true (List.length (Registry.names ()) >= 15)

(* ---- fault-plan lints ---- *)

let line_topo () = (Builders.line 3).Builders.topo

let test_fault_plan_clean () =
  let topo = line_topo () in
  let plan =
    Fault.make
      [
        Fault.Transient_stall { channel = 0; at = 3; duration = 4 };
        Fault.Link_failure { channel = 1; at = 10 };
      ]
  in
  check ci "no diagnostics on a sane plan" 0
    (List.length (Lint.fault_plan ~labels:[ "m1" ] topo plan))

let test_fault_plan_codes () =
  let topo = line_topo () in
  let code_of d = d.Diagnostic.code in
  let diags plan = List.map code_of (Lint.fault_plan topo plan) in
  check cb "E040 out of range" true
    (List.mem "E040" (diags (Fault.make [ Fault.Link_failure { channel = 99; at = 0 } ])));
  check cb "E041 stall after permanent failure" true
    (List.mem "E041"
       (diags
          (Fault.make
             [
               Fault.Link_failure { channel = 0; at = 2 };
               Fault.Transient_stall { channel = 0; at = 5; duration = 3 };
             ])));
  check cb "W043 duplicate failure" true
    (List.mem "W043"
       (diags
          (Fault.make
             [
               Fault.Link_failure { channel = 1; at = 0 };
               Fault.Link_failure { channel = 1; at = 7 };
             ])));
  let with_labels =
    Lint.fault_plan ~labels:[ "m1" ] topo
      (Fault.make [ Fault.Message_drop { label = "ghost"; at = 1 } ])
  in
  check cb "W042 unknown drop label" true (List.exists (fun d -> code_of d = "W042") with_labels)

(* ---- Verify diagnostics bridge ---- *)

let test_verify_diagnostics_safe () =
  let rt = Dimension_order.mesh (Builders.mesh [ 3; 3 ]) in
  let report = Verify.analyze ~quick:true rt in
  let codes = List.map (fun d -> d.Diagnostic.code) (Verify.diagnostics report) in
  check cb "deadlock-free mesh reports I053" true (List.mem "I053" codes);
  check cb "no E-severity" true
    (Diagnostic.errors (Verify.diagnostics report) = [])

let test_verify_diagnostics_deadlock () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let report = Verify.analyze ~quick:true rt in
  let diags = Verify.diagnostics report in
  let codes = List.map (fun d -> d.Diagnostic.code) diags in
  check cb "clockwise ring reports E050" true (List.mem "E050" codes);
  match diags with
  | first :: _ -> check cb "errors sorted first" true (Diagnostic.is_error first)
  | [] -> Alcotest.fail "no diagnostics"

let test_verify_diagnostics_witness () =
  (* the ring deadlock is theorem-certified, so analyze never searches it;
     fetch a witness directly and exercise the E051 mapping on a report
     assembled from it *)
  let ring = Builders.ring ~unidirectional:true 3 in
  let rt = Ring_routing.clockwise ring in
  let templates =
    List.map
      (fun s -> Explorer.minimal_length_template rt (Printf.sprintf "m%d" s) s ((s + 2) mod 3))
      [ 0; 1; 2 ]
  in
  match Explorer.explore rt (Explorer.default_space templates) with
  | Explorer.No_deadlock _ -> Alcotest.fail "expected a ring deadlock witness"
  | Explorer.Deadlock_found { runs; witness } -> (
    let report =
      {
        (Verify.analyze ~use_search:false rt) with
        Verify.cycles =
          [
            {
              Verify.cr_cycle = [ 0; 1; 2 ];
              cr_verdict = Cycle_analysis.Needs_search "synthetic";
              cr_searched = true;
              cr_witness = Some witness;
              cr_search_runs = runs;
            };
          ];
      }
    in
    let diags = Verify.diagnostics report in
    match List.find_opt (fun d -> d.Diagnostic.code = "E051") diags with
    | None -> Alcotest.fail "witnessed cycle must map to E051"
    | Some d ->
      check cb "witness schedule labels recorded" true
        (List.mem_assoc "schedule" d.Diagnostic.context))

let test_verify_diagnostics_searched_clean () =
  let net = Paper_nets.figure1 () in
  let rt = Cd_algorithm.of_net net in
  let report = Verify.analyze ~quick:true rt in
  let codes = List.map (fun d -> d.Diagnostic.code) (Verify.diagnostics report) in
  check cb "figure-1 is deadlock-free (I053)" true (List.mem "I053" codes);
  check cb "its searched-clean cycle maps to I054" true (List.mem "I054" codes)

(* ---- sanitizer ---- *)

let dummy code = Diagnostic.error code (Diagnostic.Message "m") "synthetic"

let test_sanitizer_collector () =
  let s = Sanitizer.create ~limit:2 () in
  check cb "fresh is ok" true (Sanitizer.ok s);
  Sanitizer.record s (dummy "E101");
  Sanitizer.record s (dummy "E102");
  Sanitizer.record s (dummy "E103");
  check ci "all violations counted" 3 (Sanitizer.violation_count s);
  check ci "stored up to the limit" 2 (List.length (Sanitizer.diagnostics s));
  check cb "not ok" false (Sanitizer.ok s);
  Sanitizer.reset s;
  check cb "reset is ok again" true (Sanitizer.ok s);
  check ci "reset clears count" 0 (Sanitizer.violation_count s)

let test_sanitizer_fail_fast () =
  let s = Sanitizer.create ~fail_fast:true () in
  Alcotest.check_raises "fail-fast raises" (Sanitizer.Violation (dummy "E105")) (fun () ->
      Sanitizer.record s (dummy "E105"))

let test_sanitizer_install () =
  (* WORMHOLE_SANITIZE may have installed one at startup; run the check
     from a clean slate and put the previous sanitizer back afterwards *)
  let prev = Sanitizer.current () in
  Fun.protect
    ~finally:(fun () -> match prev with Some p -> Sanitizer.install p | None -> Sanitizer.uninstall ())
    (fun () ->
      Sanitizer.uninstall ();
      check cb "nothing installed" true (Sanitizer.current () = None);
      let s = Sanitizer.create () in
      Sanitizer.install s;
      check cb "installed visible" true (Sanitizer.current () = Some s);
      Sanitizer.uninstall ();
      check cb "uninstalled" true (Sanitizer.current () = None))

let test_sanitized_runs_clean () =
  let s = Sanitizer.create () in
  let rt = Dimension_order.mesh (Builders.mesh [ 3; 3 ]) in
  let topo = Routing.topology rt in
  let sched =
    [
      Schedule.message ~length:4 ~at:0 "m1" 0 (Topology.num_nodes topo - 1);
      Schedule.message ~length:3 ~at:1 "m2" (Topology.num_nodes topo - 1) 0;
      Schedule.message ~length:2 ~at:0 "m3" 1 4;
    ]
  in
  (match Engine.run ~sanitizer:s rt sched with
  | Engine.All_delivered _ -> ()
  | o -> Alcotest.failf "unexpected outcome %s" (Format.asprintf "%a" (Engine.pp_outcome topo) o));
  check cb "oblivious run is clean" true (Sanitizer.ok s);
  check ci "one run checked" 1 (Sanitizer.runs_checked s);
  check cb "cycles were checked" true (Sanitizer.cycles_checked s > 0);
  let ad = Adaptive.fully_adaptive_minimal (Builders.mesh [ 3; 3 ]) in
  (match Adaptive_engine.run ~sanitizer:s ad sched with
  | Adaptive_engine.All_delivered _ -> ()
  | o ->
    Alcotest.failf "unexpected adaptive outcome %s"
      (Format.asprintf "%a" (Engine.pp_outcome topo) o));
  check cb "adaptive run is clean" true (Sanitizer.ok s);
  check ci "second run checked" 2 (Sanitizer.runs_checked s)

let test_sanitized_faulted_run_clean () =
  let s = Sanitizer.create () in
  let ring = Builders.ring ~unidirectional:true 5 in
  let rt = Ring_routing.clockwise ring in
  let topo = ring.Builders.topo in
  let plan =
    match Fault.parse topo "fail:n(1)>n(2)@24, stall:n(0)>n(1)@17+12" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let config =
    {
      Engine.default_config with
      faults = plan;
      recovery = Some { Engine.default_recovery with trigger = Engine.Watchdog 16; retry_limit = 3; backoff = 4 };
    }
  in
  let sched =
    [ Schedule.message ~length:3 ~at:0 "m1" 0 3; Schedule.message ~length:4 ~at:2 "m2" 2 1 ]
  in
  ignore (Engine.run ~config ~sanitizer:s rt sched);
  if not (Sanitizer.ok s) then
    Alcotest.failf "faulted run violated invariants: %s"
      (Format.asprintf "%a" (Diagnostic.pp ~topo ()) (List.hd (Sanitizer.diagnostics s)))

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "constructors and ordering" `Quick test_diag_constructors;
          Alcotest.test_case "json rendering" `Quick test_diag_json;
        ] );
      ( "lint",
        [
          Alcotest.test_case "corpus: every defect flagged once" `Quick test_corpus_all;
          Alcotest.test_case "corpus covers 8+ codes" `Quick test_corpus_covers_codes;
          Alcotest.test_case "registry: zero E-severity" `Quick test_registry_zero_errors;
          Alcotest.test_case "registry lookup" `Quick test_registry_find;
        ] );
      ( "fault-plan",
        [
          Alcotest.test_case "clean plan" `Quick test_fault_plan_clean;
          Alcotest.test_case "defect codes" `Quick test_fault_plan_codes;
        ] );
      ( "verify-bridge",
        [
          Alcotest.test_case "deadlock-free report" `Quick test_verify_diagnostics_safe;
          Alcotest.test_case "deadlocking report" `Quick test_verify_diagnostics_deadlock;
          Alcotest.test_case "witnessed cycle" `Quick test_verify_diagnostics_witness;
          Alcotest.test_case "searched-clean cycle" `Quick test_verify_diagnostics_searched_clean;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "collector semantics" `Quick test_sanitizer_collector;
          Alcotest.test_case "fail-fast raises" `Quick test_sanitizer_fail_fast;
          Alcotest.test_case "install/uninstall" `Quick test_sanitizer_install;
          Alcotest.test_case "clean sanitized runs" `Quick test_sanitized_runs_clean;
          Alcotest.test_case "clean faulted run" `Quick test_sanitized_faulted_run_clean;
        ] );
    ]
