(* Wr_pool determinism contract.

   Property tests check the pool against its sequential specification for
   random task lists and domain counts; the campaign-level tests run whole
   experiments (EXP-F1, EXP-T5) at one and at four domains and require the
   captured output -- claim lines, run counts, witness schedules -- to be
   byte-identical.

   The four-domain campaigns run FIRST: the pool's helper budget is sized on
   first parallel use, so the forced multi-domain passes must come before
   anything collapses the default. *)

let qtest = QCheck_alcotest.to_alcotest

let f x = (x * x) - (3 * x) + 1

let domains_gen = QCheck.int_range 1 4

(* ---- map = List.map ---- *)

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"Wr_pool.map = List.map" ~count:100
    QCheck.(pair domains_gen (list small_int))
    (fun (d, l) -> Wr_pool.map ~domains:d f l = List.map f l)

let prop_mapi_matches_array_mapi =
  QCheck.Test.make ~name:"Wr_pool.mapi_array = Array.mapi" ~count:100
    QCheck.(pair domains_gen (array small_int))
    (fun (d, a) ->
      Wr_pool.mapi_array ~domains:d (fun i x -> (i, f x)) a
      = Array.mapi (fun i x -> (i, f x)) a)

(* ---- map_until = the documented sequential loop ---- *)

let seq_map_until ~hit g tasks =
  let n = Array.length tasks in
  let r = Array.make n None in
  (try
     for i = 0 to n - 1 do
       let v = g i tasks.(i) in
       r.(i) <- Some v;
       if hit v then raise Exit
     done
   with Exit -> ());
  r

let prop_map_until_matches_sequential =
  QCheck.Test.make ~name:"Wr_pool.map_until = sequential loop" ~count:100
    QCheck.(triple domains_gen (int_range 1 20) (array small_int))
    (fun (d, modulus, a) ->
      let hit v = v mod modulus = 0 in
      let g i x = (i * 7) + f x in
      Wr_pool.map_until ~domains:d ~hit (fun ~stop:_ i x -> g i x) a
      = seq_map_until ~hit g a)

let prop_find_mapi_least_index =
  QCheck.Test.make ~name:"Wr_pool.find_mapi finds the least index" ~count:100
    QCheck.(triple domains_gen (int_range 1 20) (array small_int))
    (fun (d, modulus, a) ->
      let g i x = if (f x + i) mod modulus = 0 then Some (i, x) else None in
      let expected =
        let rec scan i =
          if i >= Array.length a then None
          else match g i a.(i) with Some v -> Some (i, v) | None -> scan (i + 1)
        in
        scan 0
      in
      Wr_pool.find_mapi ~domains:d (fun ~stop:_ i x -> g i x) a = expected)

let prop_map_same_for_all_domain_counts =
  QCheck.Test.make ~name:"map identical across domain counts" ~count:50
    QCheck.(list small_int)
    (fun l ->
      let r1 = Wr_pool.map ~domains:1 f l in
      List.for_all (fun d -> Wr_pool.map ~domains:d f l = r1) [ 2; 3; 4 ])

(* ---- whole campaigns: claim output and witness schedules ---- *)

let capture exp =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let rows = exp ppf in
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, rows)

(* one experiment at an explicit domain count; Explorer/Min_delay/
   Model_checker pick the default up from set_default_domains *)
let run_at ~domains exp =
  Wr_pool.set_default_domains domains;
  Fun.protect ~finally:(fun () -> Wr_pool.set_default_domains 1) (fun () -> capture exp)

let check_campaign name exp () =
  let out4, rows4 = run_at ~domains:4 exp in
  let out1, rows1 = run_at ~domains:1 exp in
  Alcotest.(check int)
    (name ^ ": same claim count") (List.length rows1) (List.length rows4);
  List.iter2
    (fun (r1 : Experiments.row) (r4 : Experiments.row) ->
      Alcotest.(check string) (name ^ ": claim id") r1.x_id r4.x_id;
      Alcotest.(check string) (name ^ ": measured value") r1.x_measured r4.x_measured;
      Alcotest.(check bool) (name ^ ": verdict") r1.x_ok r4.x_ok)
    rows1 rows4;
  (* the captured output includes run counts and full witness schedules *)
  Alcotest.(check string) (name ^ ": byte-identical output") out1 out4;
  Alcotest.(check bool) (name ^ ": all claims hold") true
    (List.for_all (fun (r : Experiments.row) -> r.x_ok) rows1)

let campaign_tests =
  [
    Alcotest.test_case "exp-f1 identical at 1 and 4 domains" `Slow
      (check_campaign "exp-f1" (Experiments.exp_f1 ~quick:true));
    Alcotest.test_case "exp-t5 identical at 1 and 4 domains" `Quick
      (check_campaign "exp-t5" (Experiments.exp_t5 ~quick:true));
  ]

let () =
  Alcotest.run "pool"
    [
      (* campaigns first: they must size the helper budget while the
         default is still multi-domain (see header comment) *)
      ("campaign-determinism", campaign_tests);
      ( "pool-vs-sequential",
        [
          qtest prop_map_matches_list_map;
          qtest prop_mapi_matches_array_mapi;
          qtest prop_map_until_matches_sequential;
          qtest prop_find_mapi_least_index;
          qtest prop_map_same_for_all_domain_counts;
        ] );
    ]
