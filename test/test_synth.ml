(* Unit tests for the synthesis pass (Wr_analysis.Synth + Synth_cert): the
   existence checker on substrates it must settle both ways, certification
   of every synthesized routing through Verify, machine-checking (and
   tamper-rejection) of impossibility witnesses, the Explorer cross-check
   that an "impossible" network's bounded routing family really has no
   deadlock-free member, determinism, the committed --synth golden file,
   and the registry completeness of the diagnostic-code table. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let witness_string topo w = Format.asprintf "%a" (Synth.pp_witness topo) w

(* ---- existence side: synthesize, audit, certify ---- *)

let expect_certified name topo =
  match Synth.synthesize ~name topo with
  | Error w -> Alcotest.failf "%s: expected exists, got: %s" name (witness_string topo w)
  | Ok (rt, plan) ->
    (match Routing.validate rt with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: synthesized routing invalid: %s" name e);
    let m = Topology.num_channels topo in
    let seen = Array.make (max 1 m) false in
    Array.iter (fun r -> seen.(r) <- true) plan.Synth.p_order;
    check cb (name ^ ": rank order is a permutation") true
      (Array.length plan.Synth.p_order = m && Array.for_all Fun.id seen);
    let dist = Topology.distance_matrix topo in
    let multi_hop =
      List.exists
        (fun u -> List.exists (fun v -> dist.(u).(v) > 1 && dist.(u).(v) < max_int) (Topology.nodes topo))
        (Topology.nodes topo)
    in
    check cb (name ^ ": dependencies audited") true
      ((not multi_hop) || plan.Synth.p_dependencies > 0);
    let report = Verify.analyze ~quick:true rt in
    (match report.Verify.conclusion with
    | Verify.Deadlock_free _ -> ()
    | c ->
      Alcotest.failf "%s: Verify did not certify: %s" name
        (Format.asprintf "%a" Verify.pp_conclusion c));
    check ci (name ^ ": zero E-severity Verify diagnostics") 0
      (List.length (Diagnostic.errors (Verify.diagnostics report)));
    plan

let test_exists_substrates () =
  List.iter
    (fun (name, coords) -> ignore (expect_certified name coords.Builders.topo))
    [
      ("mesh-4x4", Builders.mesh [ 4; 4 ]);
      ("mesh-3x3x3", Builders.mesh [ 3; 3; 3 ]);
      ("torus-4x4", Builders.torus [ 4; 4 ]);
      ("torus-3x3", Builders.torus [ 3; 3 ]);
      ("hypercube-3", Builders.hypercube 3);
      ("line-5", Builders.line 5);
      ("ring-8-bidi", Builders.ring 8);
      ("complete-4", Builders.complete 4);
      ("star-5", Builders.star 5);
      ("ring-6-uni-vc2", Builders.ring ~unidirectional:true ~vcs:2 6);
    ]

let test_exists_paper_nets () =
  List.iter
    (fun (name, net) ->
      let plan = expect_certified name net.Paper_nets.topo in
      check cb (name ^ ": all channels used") true (plan.Synth.p_unused = []))
    [
      ("figure1", Paper_nets.figure1 ());
      ("figure2", Paper_nets.figure2 ());
      ("figure3a", Paper_nets.figure3 `A);
      ("figure3c", Paper_nets.figure3 `C);
      ("figure3f", Paper_nets.figure3 `F);
      ("family-2", Paper_nets.family 2);
      ("family-3", Paper_nets.family 3);
    ]

(* The checker answers an existence question about the *network*; the
   figure networks that deadlock under the CD algorithm still admit a
   deadlock-free routing (route through the hub), so the verdict must be
   Exists even where the registry's algorithm deadlocks. *)
let test_exists_even_where_cd_deadlocks () =
  let net = Paper_nets.figure2 () in
  match Synth.check net.Paper_nets.topo with
  | Synth.Exists _ -> ()
  | Synth.Impossible w ->
    Alcotest.failf "figure2 network wrongly impossible: %s"
      (witness_string net.Paper_nets.topo w)

(* ---- impossibility side ---- *)

let expect_impossible name topo =
  match Synth.synthesize ~name topo with
  | Ok (_, plan) ->
    Alcotest.failf "%s: expected impossible, synthesized via %s" name plan.Synth.p_strategy
  | Error w ->
    check cb (name ^ ": witness machine-checks") true (Synth.check_witness topo w);
    (match Synth.diagnostics ~name topo (Error w) with
    | [ d ] ->
      check cs (name ^ ": E060 emitted") "E060" d.Diagnostic.code;
      check cb (name ^ ": witness context attached") true
        (List.mem_assoc "witness" d.Diagnostic.context)
    | ds -> Alcotest.failf "%s: expected exactly one diagnostic, got %d" name (List.length ds));
    w

let test_impossible_rings () =
  List.iter
    (fun n ->
      let topo = (Builders.ring ~unidirectional:true n).Builders.topo in
      match expect_impossible (Printf.sprintf "ring-uni-%d" n) topo with
      | Synth.Forced_corner_cycle { w_cycle; w_pairs } ->
        check ci (Printf.sprintf "ring-uni-%d: cycle spans the ring" n) n
          (List.length w_cycle);
        check ci (Printf.sprintf "ring-uni-%d: one forcing pair per corner" n) n
          (List.length w_pairs)
      | w ->
        Alcotest.failf "ring-uni-%d: expected a forced corner cycle, got: %s" n
          (witness_string topo w))
    [ 3; 4; 5; 6 ]

let test_impossible_disconnected () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let _ab = Topology.add_channel t a b in
  match expect_impossible "one-way-pair" t with
  | Synth.Not_strongly_connected { w_src; w_dst } ->
    check ci "unreachable pair src" b w_src;
    check ci "unreachable pair dst" a w_dst
  | w -> Alcotest.failf "expected not-strongly-connected, got: %s" (witness_string t w)

let test_witness_rejects_tampering () =
  let topo = (Builders.ring ~unidirectional:true 4).Builders.topo in
  match Synth.check topo with
  | Synth.Exists _ -> Alcotest.fail "ring-uni-4 wrongly exists"
  | Synth.Impossible (Synth.Forced_corner_cycle { w_cycle; w_pairs }) ->
    (* break the cycle: drop one channel so a corner no longer closes *)
    let broken = Synth.Forced_corner_cycle { w_cycle = List.tl w_cycle; w_pairs = List.tl w_pairs } in
    check cb "broken cycle rejected" false (Synth.check_witness topo broken);
    (* claim a forcing pair that the corner does not actually disconnect:
       rotating the pair list misaligns corners and evidence *)
    let rotated = match w_pairs with p :: rest -> rest @ [ p ] | [] -> [] in
    let misaligned = Synth.Forced_corner_cycle { w_cycle; w_pairs = rotated } in
    check cb "misaligned forcing pairs rejected" false (Synth.check_witness topo misaligned)
  | Synth.Impossible w ->
    Alcotest.failf "expected a forced corner cycle, got: %s" (witness_string topo w)

(* Satellite cross-check: on an impossible network, an exhaustive Explorer
   sweep over the bounded routing family (every valid greedy minimal
   next-hop routing) finds no deadlock-free member.  On the unidirectional
   ring the family has exactly one member -- clockwise -- and the sweep
   must confirm its deadlock. *)
let test_impossible_family_sweep () =
  let topo = (Builders.ring ~unidirectional:true 4).Builders.topo in
  (match Synth.check topo with
  | Synth.Impossible _ -> ()
  | Synth.Exists _ -> Alcotest.fail "ring-uni-4 wrongly exists");
  let family = Synth.greedy_family topo in
  check ci "the 4-ring family has exactly one valid member" 1 (List.length family);
  List.iter
    (fun rt ->
      let templates =
        List.init 4 (fun s ->
            Explorer.minimal_length_template rt (Printf.sprintf "m%d" s) s ((s + 3) mod 4))
      in
      match Explorer.explore rt (Explorer.default_space templates) with
      | Explorer.Deadlock_found _ -> ()
      | Explorer.No_deadlock { runs } ->
        Alcotest.failf "%s: no deadlock in %d runs on an impossible network"
          (Routing.name rt) runs)
    family

(* ---- restriction (W062) ---- *)

let test_restricted_doubled_vcs () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let _ = Topology.add_channel t a b in
  let _ = Topology.add_channel ~vc:1 t a b in
  let _ = Topology.add_channel t b a in
  let _ = Topology.add_channel ~vc:1 t b a in
  match Synth.synthesize t with
  | Error w -> Alcotest.failf "2-node doubled VCs: %s" (witness_string t w)
  | Ok (_, plan) ->
    check ci "two channels left unused" 2 (List.length plan.Synth.p_unused);
    let codes = List.map (fun d -> d.Diagnostic.code) (Synth.diagnostics t (Synth.synthesize t)) in
    check cb "I061 present" true (List.mem "I061" codes);
    check cb "W062 present" true (List.mem "W062" codes)

let test_square_uses_every_channel () =
  let topo = (Builders.ring 4).Builders.topo in
  match Synth.synthesize topo with
  | Error w -> Alcotest.failf "square: %s" (witness_string topo w)
  | Ok (_, plan) ->
    check cb "no unused channels on the bidirectional square" true
      (plan.Synth.p_unused = [])

(* ---- determinism and the golden file ---- *)

let test_deterministic () =
  let run () =
    match Synth.check (Builders.torus [ 4; 4 ]).Builders.topo with
    | Synth.Exists plan -> (plan.Synth.p_strategy, Array.to_list plan.Synth.p_order)
    | Synth.Impossible _ -> Alcotest.fail "torus-4x4 wrongly impossible"
  in
  let s1, o1 = run () and s2, o2 = run () in
  check cs "strategy stable" s1 s2;
  check cb "order stable" true (o1 = o2)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_registry_json () =
  let got = Synth_cert.registry_json () ^ "\n" in
  let want = read_file "golden/wormlint-synth.json" in
  if got <> want then
    Alcotest.failf
      "wormlint --synth JSON drifted from test/golden/wormlint-synth.json; regenerate with: \
       dune exec bin/wormlint.exe -- --synth --json > test/golden/wormlint-synth.json"

let test_synth_cert_verdicts () =
  List.iter
    (fun (t : Synth_cert.t) ->
      match t.Synth_cert.sc_network with
      | "ring-uni-4" ->
        check cb "ring-uni-4 impossible" true (Result.is_error t.Synth_cert.sc_result)
      | name -> check cb (name ^ " certified") true (Synth_cert.certified t))
    (Synth_cert.run_all ())

(* ---- registry completeness of the diagnostic-code table ---- *)

(* Scan the library sources for quoted code literals ("E011", "W062", ...)
   and require exact agreement with Registry.diagnostic_codes in both
   directions.  registry.ml itself is excluded: it quotes every code by
   definition and would make the reverse check vacuous. *)
let scan_codes_in_file path =
  let s = read_file path in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let codes = ref [] in
  for i = 0 to n - 6 do
    if
      s.[i] = '"'
      && (s.[i + 1] = 'E' || s.[i + 1] = 'W' || s.[i + 1] = 'I')
      && is_digit s.[i + 2]
      && is_digit s.[i + 3]
      && is_digit s.[i + 4]
      && s.[i + 5] = '"'
    then codes := String.sub s (i + 1) 4 :: !codes
  done;
  !codes

let source_dirs =
  [
    "../lib/analysis";
    "../lib/core";
    "../lib/sim";
    "../lib/search";
    (* the observability and fault layers emit through Diagnostic too (the
       detector's lint pass, fault-plan parse errors): any code literal
       they grow must be registered, and a registered code must not
       survive its last emitter anywhere in these trees either *)
    "../lib/obs";
    "../lib/fault";
  ]

let scan_emitted_codes () =
  List.concat_map
    (fun dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ml" && f <> "registry.ml")
      |> List.concat_map (fun f -> scan_codes_in_file (Filename.concat dir f)))
    source_dirs
  |> List.sort_uniq compare

let test_registry_code_completeness () =
  let emitted = scan_emitted_codes () in
  check cb "the scan found a plausible code population" true (List.length emitted >= 30);
  List.iter
    (fun code ->
      match Registry.find_code code with
      | None ->
        Alcotest.failf "code %s is emitted in the sources but missing from \
                        Registry.diagnostic_codes" code
      | Some (_, sev, _) ->
        let letter =
          match sev with Diagnostic.Error -> 'E' | Diagnostic.Warning -> 'W' | Diagnostic.Info -> 'I'
        in
        if code.[0] <> letter then
          Alcotest.failf "code %s is registered with severity %s" code
            (Diagnostic.severity_string sev))
    emitted;
  List.iter
    (fun (code, _, _) ->
      if not (List.mem code emitted) then
        Alcotest.failf "code %s is in Registry.diagnostic_codes but emitted nowhere" code)
    Registry.diagnostic_codes

let () =
  Alcotest.run "synth"
    [
      ( "exists",
        [
          Alcotest.test_case "substrates" `Quick test_exists_substrates;
          Alcotest.test_case "paper networks" `Quick test_exists_paper_nets;
          Alcotest.test_case "exists despite CD deadlock" `Quick
            test_exists_even_where_cd_deadlocks;
          Alcotest.test_case "square uses every channel" `Quick test_square_uses_every_channel;
        ] );
      ( "impossible",
        [
          Alcotest.test_case "unidirectional rings" `Quick test_impossible_rings;
          Alcotest.test_case "disconnected pair" `Quick test_impossible_disconnected;
          Alcotest.test_case "witness tamper-rejection" `Quick test_witness_rejects_tampering;
          Alcotest.test_case "family sweep finds no DF member" `Quick
            test_impossible_family_sweep;
        ] );
      ( "restriction",
        [ Alcotest.test_case "doubled VCs" `Quick test_restricted_doubled_vcs ] );
      ( "plumbing",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "golden registry json" `Quick test_golden_registry_json;
          Alcotest.test_case "synth_cert verdicts" `Quick test_synth_cert_verdicts;
          Alcotest.test_case "registry code completeness" `Quick
            test_registry_code_completeness;
        ] );
    ]
