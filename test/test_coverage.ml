(* Coverage addendum: corner cases not exercised by the per-module suites. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---- Cdg enumeration bounds ---- *)

let test_cycle_enumeration_bounds () =
  let rt = Dimension_order.torus (Builders.torus [ 5; 5 ]) in
  let cdg = Cdg.build rt in
  check ci "cap respected" 3 (List.length (Cdg.elementary_cycles ~max_cycles:3 cdg));
  (* ring cycles have length 5; a tighter length bound prunes them all *)
  check ci "length bound" 0 (List.length (Cdg.elementary_cycles ~max_len:4 cdg));
  check ci "length bound admits" 20 (List.length (Cdg.elementary_cycles ~max_len:5 cdg))

let test_pp_cycle () =
  let rt = Ring_routing.clockwise (Builders.ring ~unidirectional:true 4) in
  let cdg = Cdg.build rt in
  let cycle = List.hd (Cdg.elementary_cycles cdg) in
  let s = Format.asprintf "%a" (Cdg.pp_cycle cdg) cycle in
  check cb "arrow-separated" true (String.length s > 20)

(* ---- Theorem-5 condition 5: parkable Mmin with a non-sharing predecessor ---- *)

let test_theorem5_cond5_parking () =
  let sharer label access entry span =
    { Theorem5.sh_label = label; sh_access = access; sh_entry = entry; sh_span = span }
  in
  let input =
    {
      Theorem5.cycle_len = 12;
      (* Mmin (access 2, entry 6) has span 2 <= access and its immediate
         cyclic predecessor (the non-sharer at entry 4) does not use cs:
         condition 5 must fire *)
      sharers = [ sharer "max" 4 0 5; sharer "mid" 3 8 5; sharer "min" 2 6 2 ];
      others = [ { Theorem5.ot_entry = 4; ot_span = 2; ot_uses_shared = false } ];
    }
  in
  let conds, _ = Theorem5.check input in
  let c5 = List.find (fun (c : Theorem5.condition) -> c.c_index = 5) conds in
  check cb "cond5 violated" false c5.Theorem5.c_holds

(* ---- Verify: numbering exposure and quick mode ---- *)

let test_verify_numbering_exposed () =
  let rt = Dimension_order.mesh (Builders.mesh [ 3; 3 ]) in
  let report = Verify.analyze rt in
  match report.Verify.numbering with
  | Some f -> check ci "one number per channel" 24 (Array.length f)
  | None -> Alcotest.fail "expected numbering"

(* ---- adaptive engine cutoff ---- *)

let test_adaptive_cutoff () =
  let coords = Builders.mesh [ 3; 3 ] in
  let ad = Adaptive.fully_adaptive_minimal coords in
  let config = { Engine.default_config with max_cycles = 2 } in
  match Adaptive_engine.run ~config ad [ Schedule.message ~length:30 "m" 0 8 ] with
  | Adaptive_engine.Cutoff { at; _ } -> check ci "cutoff" 2 at
  | o -> Alcotest.failf "expected cutoff: %s"
           (Format.asprintf "%a" (Engine.pp_outcome coords.Builders.topo) o)

(* ---- min-delay witness replays ---- *)

let test_min_delay_witness_replays () =
  let net = Paper_nets.family 1 in
  let r = Min_delay.search ~max_h:2 net in
  match r.Min_delay.md_witness with
  | Some w ->
    let rt = Cd_algorithm.of_net net in
    (match Engine.run ~config:w.Explorer.w_config rt w.Explorer.w_schedule with
    | Engine.Deadlock _ -> ()
    | _ -> Alcotest.fail "witness does not replay");
    (* the witness uses at least one adversarial hold *)
    check cb "uses holds" true
      (List.exists
         (fun (m : Schedule.message_spec) -> m.ms_holds <> [])
         w.Explorer.w_schedule)
  | None -> Alcotest.fail "expected a witness"

(* ---- explorer wide space ---- *)

let test_wide_space () =
  let net = Paper_nets.figure2 () in
  let templates = List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents in
  let narrow = Explorer.default_space templates in
  let wide = Explorer.wide_space templates in
  check cb "wide is larger" true (Explorer.space_size wide > Explorer.space_size narrow)

(* ---- paper-net helper values on figure 2 ---- *)

let test_figure2_helper_values () =
  let net = Paper_nets.figure2 () in
  let accesses = List.map (Paper_nets.access_channel_count net) net.Paper_nets.intents in
  check (Alcotest.list ci) "accesses 2/3" [ 2; 3 ] accesses;
  let spans =
    List.map
      (fun i -> List.length (Paper_nets.in_cycle_channels net i))
      net.Paper_nets.intents
  in
  check (Alcotest.list ci) "spans 4/4" [ 4; 4 ] spans

(* ---- model checker on the dateline ring (acyclic: must be safe) ---- *)

let test_mc_dateline_safe () =
  let coords = Builders.ring ~unidirectional:true ~vcs:2 5 in
  let rt = Ring_routing.dateline coords in
  let msgs =
    List.init 5 (fun i ->
        { Model_checker.mc_label = Printf.sprintf "m%d" i; mc_src = i; mc_dst = (i + 2) mod 5;
          mc_length = 2 })
  in
  match Model_checker.check rt msgs with
  | Model_checker.Safe _ -> ()
  | v -> Alcotest.failf "expected safe: %s" (Format.asprintf "%a" Model_checker.pp v)

(* ---- engine: message longer than its path, deep buffers ---- *)

let test_long_message_short_path () =
  let coords = Builders.ring ~unidirectional:true 4 in
  let rt = Ring_routing.clockwise coords in
  let config = { Engine.default_config with buffer_capacity = 3 } in
  match Engine.run ~config rt [ Schedule.message ~length:12 "m" 0 1 ] with
  | Engine.All_delivered { finished_at; _ } ->
    (* single channel, 12 flits, one consumed per cycle after arrival *)
    check cb "takes at least 12 cycles" true (finished_at >= 12)
  | o ->
    Alcotest.failf "expected delivery: %s"
      (Format.asprintf "%a" (Engine.pp_outcome coords.Builders.topo) o)

(* ---- multi-vc paths through the engine ---- *)

let test_dateline_traffic_heavy () =
  let coords = Builders.ring ~unidirectional:true ~vcs:2 6 in
  let rt = Ring_routing.dateline coords in
  let sched =
    List.concat_map
      (fun round ->
        List.init 6 (fun i ->
            Schedule.message ~length:3 ~at:(round * 2)
              (Printf.sprintf "m%d-%d" round i) i ((i + 3) mod 6)))
      [ 0; 1; 2 ]
  in
  match Engine.run rt sched with
  | Engine.All_delivered { messages; _ } -> check ci "all 18" 18 (List.length messages)
  | o ->
    Alcotest.failf "expected delivery: %s"
      (Format.asprintf "%a" (Engine.pp_outcome coords.Builders.topo) o)

(* ---- duato adaptive routing respects vc classes ---- *)

let test_duato_options_include_escape () =
  let coords = Builders.mesh ~vcs:2 [ 3; 3 ] in
  let ad = Adaptive.duato_mesh coords in
  let escape = Adaptive.escape_of_duato_mesh coords in
  let src = coords.node_at [| 0; 0 |] and dst = coords.node_at [| 2; 2 |] in
  let opts = Adaptive.options ad (Routing.Inject src) dst in
  (* two adaptive vc-1 channels plus the vc-0 escape *)
  check ci "three options" 3 (List.length opts);
  let esc = Option.get (Routing.next escape (Routing.Inject src) dst) in
  check cb "escape offered" true (List.mem esc opts);
  check ci "escape is vc0" 0 (Topology.vc coords.Builders.topo esc)

let () =
  Alcotest.run "coverage"
    [
      ( "cdg",
        [
          Alcotest.test_case "enumeration bounds" `Quick test_cycle_enumeration_bounds;
          Alcotest.test_case "pp_cycle" `Quick test_pp_cycle;
          Alcotest.test_case "theorem5 cond5 parking" `Quick test_theorem5_cond5_parking;
        ] );
      ( "verify",
        [ Alcotest.test_case "numbering exposed" `Quick test_verify_numbering_exposed ] );
      ( "engines",
        [
          Alcotest.test_case "adaptive cutoff" `Quick test_adaptive_cutoff;
          Alcotest.test_case "long message short path" `Quick test_long_message_short_path;
          Alcotest.test_case "heavy dateline traffic" `Quick test_dateline_traffic_heavy;
        ] );
      ( "search",
        [
          Alcotest.test_case "min-delay witness replays" `Slow test_min_delay_witness_replays;
          Alcotest.test_case "wide space" `Quick test_wide_space;
          Alcotest.test_case "mc dateline safe" `Quick test_mc_dateline_safe;
        ] );
      ( "paper_nets",
        [ Alcotest.test_case "figure2 helpers" `Quick test_figure2_helper_values ] );
      ( "adaptive",
        [ Alcotest.test_case "duato escape option" `Quick test_duato_options_include_escape ] );
    ]
