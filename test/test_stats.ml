(* Telemetry-plane tests (PR 9).

   The counters-first stats accumulator must be pure observation: run
   outcomes are structurally identical with stats off, with an explicit
   accumulator threaded, and with process-wide arming -- in both kernel
   modes.  Campaign reductions merge per-run accumulators in task-index
   order, so the --latency section is byte-identical at any domain count.
   The renderers must match what wormsim --stats-out writes byte for byte
   (the goldens under test/golden; regenerate with WORMHOLE_STATS_REGEN=1
   and copy the files out of _build).  And a stats-armed steady cycle must
   hold the same allocation bound the bare kernel does. *)

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let regen =
  match Sys.getenv_opt "WORMHOLE_STATS_REGEN" with
  | Some v when v <> "0" -> true
  | Some _ | None -> false

let check_golden name path got =
  if regen then begin
    let oc = open_out path in
    output_string oc got;
    close_out oc
  end
  else check cs name (read_file path) got

(* ---- fixtures: mirror the wormsim --stats-out code paths exactly ---- *)

(* wormsim --topology figure2 --witness --stats-out: sweep the intent
   schedule space (canonical at any domain count, so the witness is the
   one the goldens captured), then thread stats through the witness replay
   only. *)
let fig2 =
  lazy
    (let net = Paper_nets.figure2 () in
     let rt = Cd_algorithm.of_net net in
     let templates =
       List.map (fun i -> Explorer.intent_template net i) net.Paper_nets.intents
     in
     match Explorer.explore rt (Explorer.default_space templates) with
     | Explorer.No_deadlock _ -> Alcotest.fail "figure2: expected a deadlock witness"
     | Explorer.Deadlock_found { witness = w; _ } ->
       let st =
         Obs_stats.create ~nchan:(Topology.num_channels net.Paper_nets.topo)
       in
       let out = Engine.run ~config:w.Explorer.w_config ~stats:st rt w.Explorer.w_schedule in
       (net, out, st))

(* wormsim --topology mesh --dims 8x8 --pattern uniform --seed 11
   --horizon 300 --stats-out: default config, Bernoulli uniform traffic,
   stats threaded through the measured run. *)
let mesh8x8 =
  lazy
    (let coords = Builders.mesh [ 8; 8 ] in
     let rt = Dimension_order.mesh coords in
     let rng = Rng.create 11 in
     let pat = Traffic.uniform rng coords in
     let sched =
       Traffic.bernoulli_schedule rng pat ~coords ~rate:0.02 ~length:4 ~horizon:300
     in
     let st = Obs_stats.create ~nchan:(Topology.num_channels coords.Builders.topo) in
     let report = Measure.run ~stats:st rt sched in
     (coords, report, st))

let test_fig2_deadlocks () =
  let _, out, st = Lazy.force fig2 in
  check cb "witness replay deadlocks" true (Engine.is_deadlock out);
  check cb "blocking recorded" true (st.Obs_stats.st_blocked > 0);
  check cb "a head-of-line blocker attributed" true (Obs_stats.top_blocking st <> [])

let test_fig2_prometheus_golden () =
  let net, _, st = Lazy.force fig2 in
  check_golden "prometheus matches wormsim --witness --stats-out"
    "golden/figure2.stats.prom"
    (Obs_stats.to_prometheus ~topo:net.Paper_nets.topo st)

let test_fig2_json_golden () =
  let net, _, st = Lazy.force fig2 in
  check_golden "json matches wormsim --witness --stats-out x.json"
    "golden/figure2.stats.json"
    (Obs_stats.to_json ~topo:net.Paper_nets.topo st)

let test_fig2_heatmap_golden () =
  let net, _, st = Lazy.force fig2 in
  check_golden "heatmap matches wormsim --witness --stats-out stdout"
    "golden/figure2.stats-heatmap.txt"
    (Obs_stats.heatmap ~topo:net.Paper_nets.topo st)

let test_mesh_delivers () =
  let _, (report : Measure.report), st = Lazy.force mesh8x8 in
  check cb "mesh run clean" false report.Measure.deadlocked;
  check cb "deliveries recorded" true (st.Obs_stats.st_delivered > 0);
  check Alcotest.int "stats delivered matches the measured report"
    report.Measure.delivered st.Obs_stats.st_delivered

let test_mesh_prometheus_golden () =
  let coords, _, st = Lazy.force mesh8x8 in
  check_golden "prometheus matches wormsim --stats-out"
    "golden/mesh8x8.stats.prom"
    (Obs_stats.to_prometheus ~topo:coords.Builders.topo st)

let test_mesh_json_golden () =
  let coords, _, st = Lazy.force mesh8x8 in
  check_golden "json matches wormsim --stats-out x.json"
    "golden/mesh8x8.stats.json"
    (Obs_stats.to_json ~topo:coords.Builders.topo st)

let test_mesh_heatmap_golden () =
  let coords, _, st = Lazy.force mesh8x8 in
  check_golden "heatmap matches wormsim --stats-out stdout"
    "golden/mesh8x8.stats-heatmap.txt"
    (Obs_stats.heatmap ~topo:coords.Builders.topo st)

(* ---- purity: stats are observation, never perturbation ---- *)

let mesh3 = Builders.mesh [ 3; 3 ]
let mesh3_rt = Dimension_order.mesh mesh3
let mesh3_ad = Adaptive.of_oblivious mesh3_rt
let nchan3 = Topology.num_channels mesh3.Builders.topo

let schedule_gen =
  let n = Topology.num_nodes mesh3.Builders.topo in
  QCheck.make
    QCheck.Gen.(
      let msg i =
        let* s = 0 -- (n - 1) in
        let* d = 0 -- (n - 1) in
        let* len = 1 -- 6 in
        let* at = 0 -- 10 in
        return
          (Schedule.message ~length:len ~at
             (Printf.sprintf "m%d" i)
             s
             (if d = s then (d + 1) mod n else d))
      in
      let* k = 1 -- 6 in
      let rec build i acc =
        if i = k then return (List.rev acc)
        else
          let* m = msg i in
          build (i + 1) (m :: acc)
      in
      build 0 [])

(* outcomes are plain data (records, lists, ints, strings), so structural
   equality is exactly "byte-identical outcome" *)
let prop_stats_pure_oblivious =
  QCheck.Test.make ~name:"oblivious: stats-on outcome = stats-off outcome" ~count:80
    schedule_gen
    (fun sched ->
      let off = Engine.run mesh3_rt sched in
      let st = Obs_stats.create ~nchan:nchan3 in
      Engine.run ~stats:st mesh3_rt sched = off)

let prop_stats_pure_adaptive =
  QCheck.Test.make ~name:"adaptive: stats-on outcome = stats-off outcome" ~count:80
    schedule_gen
    (fun sched ->
      let off = Adaptive_engine.run mesh3_ad sched in
      let st = Obs_stats.create ~nchan:nchan3 in
      Adaptive_engine.run ~stats:st mesh3_ad sched = off)

let prop_armed_pure =
  QCheck.Test.make ~name:"process-wide arming changes no outcome" ~count:40 schedule_gen
    (fun sched ->
      let off = Engine.run mesh3_rt sched in
      Obs_stats.arm ();
      let on =
        Fun.protect ~finally:Obs_stats.disarm (fun () -> Engine.run mesh3_rt sched)
      in
      on = off)

(* merging two per-run accumulators equals threading one accumulator
   through both runs: the law the campaign's task-index-order reduction
   (Wr_pool.map_reduce) relies on for domain-count invariance *)
let prop_merge_law =
  QCheck.Test.make ~name:"merge a b = accumulate a then b" ~count:40
    QCheck.(pair schedule_gen schedule_gen)
    (fun (s1, s2) ->
      let a = Obs_stats.create ~nchan:nchan3 in
      let b = Obs_stats.create ~nchan:nchan3 in
      ignore (Engine.run ~stats:a mesh3_rt s1);
      ignore (Engine.run ~stats:b mesh3_rt s2);
      let seq = Obs_stats.create ~nchan:nchan3 in
      ignore (Engine.run ~stats:seq mesh3_rt s1);
      ignore (Engine.run ~stats:seq mesh3_rt s2);
      Obs_stats.merge ~into:a b;
      a = seq)

let prop_percentiles =
  QCheck.Test.make ~name:"percentiles monotone, max exact, delivered counted" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 5000))
    (fun lats ->
      let st = Obs_stats.create ~nchan:1 in
      List.iter (Obs_stats.observe_latency st) lats;
      let p50 = Obs_stats.percentile st 50.0 in
      let p90 = Obs_stats.percentile st 90.0 in
      let p99 = Obs_stats.percentile st 99.0 in
      p50 <= p90 && p90 <= p99
      && st.Obs_stats.st_delivered = List.length lats
      && st.Obs_stats.st_lat_max = List.fold_left max 0 lats
      && st.Obs_stats.st_lat_sum = List.fold_left ( + ) 0 lats)

(* ---- campaign reduction: byte-identical at any domain count ---- *)

let test_latency_report_domain_invariant () =
  let run_at domains =
    Wr_pool.set_default_domains domains;
    Fun.protect
      ~finally:(fun () -> Wr_pool.set_default_domains 1)
      (fun () ->
        let buf = Buffer.create 4096 in
        let ppf = Format.formatter_of_buffer buf in
        Experiments.latency_report ~quick:true ppf;
        Format.pp_print_flush ppf ();
        Buffer.contents buf)
  in
  let out4 = run_at 4 in
  let out1 = run_at 1 in
  check cb "report is nonempty" true (String.length out1 > 0);
  check cs "latency report byte-identical at 1 and 4 domains" out1 out4

(* ---- allocation: a stats-armed steady cycle stays allocation-free ---- *)

(* Same workload and bound as test_kernel's stats-off assertion: long worms
   down a 4-node line, thousands of cycles, <1.5 minor words per cycle
   amortized.  The accumulator is created once outside the measured run, so
   the bound only passes when the per-cycle accumulation sweep itself
   allocates nothing.  WORMHOLE_SANITIZE's per-cycle sweep allocates by
   design, so the bound is not meaningful under it. *)
let sanitize_on =
  match Sys.getenv_opt "WORMHOLE_SANITIZE" with
  | Some v when v <> "0" -> true
  | Some _ | None -> false

let line4 = Builders.line 4
let line4_rt = Dimension_order.mesh line4

let long_sched () =
  [ Schedule.message ~length:8000 "w1" 0 3; Schedule.message ~length:8000 "w2" 0 3 ]

let test_stats_steady_cycle_allocation () =
  if sanitize_on then ()
  else begin
    let st = Obs_stats.create ~nchan:(Topology.num_channels line4.Builders.topo) in
    ignore (Engine.run ~stats:st line4_rt (long_sched ()));
    let before = Gc.minor_words () in
    let outcome = Engine.run ~stats:st line4_rt (long_sched ()) in
    let delta = Gc.minor_words () -. before in
    (match outcome with
    | Engine.All_delivered _ -> ()
    | o -> Alcotest.failf "expected all-delivered, got %s" (Engine.outcome_string o));
    if delta > 25_000.0 then
      Alcotest.failf "stats-armed steady cycle allocates: %.0f minor words per ~16k-cycle run"
        delta
  end

let () =
  Alcotest.run "stats"
    [
      ( "golden-figure2",
        [
          Alcotest.test_case "witness replay deadlocks" `Quick test_fig2_deadlocks;
          Alcotest.test_case "prometheus" `Quick test_fig2_prometheus_golden;
          Alcotest.test_case "json" `Quick test_fig2_json_golden;
          Alcotest.test_case "heatmap" `Quick test_fig2_heatmap_golden;
        ] );
      ( "golden-mesh8x8",
        [
          Alcotest.test_case "measured run delivers" `Quick test_mesh_delivers;
          Alcotest.test_case "prometheus" `Quick test_mesh_prometheus_golden;
          Alcotest.test_case "json" `Quick test_mesh_json_golden;
          Alcotest.test_case "heatmap" `Quick test_mesh_heatmap_golden;
        ] );
      ( "purity",
        [
          QCheck_alcotest.to_alcotest prop_stats_pure_oblivious;
          QCheck_alcotest.to_alcotest prop_stats_pure_adaptive;
          QCheck_alcotest.to_alcotest prop_armed_pure;
          QCheck_alcotest.to_alcotest prop_merge_law;
          QCheck_alcotest.to_alcotest prop_percentiles;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "latency report domain-invariant" `Quick
            test_latency_report_domain_invariant;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "stats-armed steady cycle allocation bound" `Quick
            test_stats_steady_cycle_allocation;
        ] );
    ]
