(* Kernel-equivalence pins for the struct-of-arrays Switch_core (PR 8).

   A deterministic matrix of seeded runs -- paper figure networks and
   mesh/torus substrates, oblivious and adaptive, with holds, priorities,
   store-and-forward, faults, watchdog and online-detection recovery -- is
   fingerprinted (full outcome payload plus a digest of every per-cycle
   probe snapshot) and compared against the verdicts captured from the
   pre-refactor record-based kernel in test/golden/kernel-pins.txt.  The
   data-oriented kernel must not change a single decision: not an award,
   not a wait edge, not a witness.

   Regenerate the pins ONLY when kernel semantics change deliberately:

     dune build test/test_kernel.exe && \
       WORMHOLE_KERNEL_PIN_REGEN=$PWD/test/golden/kernel-pins.txt \
       ./_build/default/test/test_kernel.exe

   The steady-cycle allocation tests at the bottom pin the other half of
   the PR-8 contract: once a run is past setup, simulated cycles allocate
   nothing (no closures, no option lists, no boxed options). *)

let check = Alcotest.check

(* ---- fingerprinting ---- *)

let digest_add d (s : string) =
  (* djb2, folded into 30 bits: stable across OCaml versions, unlike
     Hashtbl.hash on arbitrary structure *)
  String.iter (fun ch -> d := ((!d lsl 5) + !d + Char.code ch) land 0x3FFFFFFF) s

let fp_messages (ms : Switch_core.message_result list) =
  String.concat ","
    (List.map
       (fun (r : Switch_core.message_result) ->
         Printf.sprintf "%s:%s:%s" r.r_label
           (match r.r_injected_at with Some t -> string_of_int t | None -> "-")
           (match r.r_delivered_at with Some t -> string_of_int t | None -> "-"))
       ms)

let fp_stats (ss : Switch_core.retry_stat list) =
  String.concat ","
    (List.map
       (fun (s : Switch_core.retry_stat) ->
         Printf.sprintf "%s:%d:%s" s.t_label s.t_retries
           (match s.t_fate with
           | Switch_core.Delivered -> "d"
           | Switch_core.Dropped -> "x"
           | Switch_core.Gave_up -> "g"))
       ss)

let fp_occupancy topo occ =
  String.concat ","
    (List.map
       (fun (c, l, n) -> Printf.sprintf "%s=%s*%d" (Topology.channel_name topo c) l n)
       occ)

let fp_outcome topo (o : Switch_core.outcome) =
  match o with
  | Switch_core.All_delivered { finished_at; messages } ->
    Printf.sprintf "all-delivered@%d[%s]" finished_at (fp_messages messages)
  | Switch_core.Cutoff { at; messages } ->
    Printf.sprintf "cutoff@%d[%s]" at (fp_messages messages)
  | Switch_core.Recovered { finished_at; messages; stats } ->
    Printf.sprintf "recovered@%d[%s][%s]" finished_at (fp_messages messages)
      (fp_stats stats)
  | Switch_core.Deadlock d ->
    let blocked =
      String.concat ";"
        (List.map
           (fun (b : Switch_core.blocked_info) ->
             Printf.sprintf "%s>{%s}%s" b.b_label
               (String.concat "," (List.map (Topology.channel_name topo) b.b_wants))
               (match b.b_holder with Some h -> "@" ^ h | None -> ""))
           d.d_blocked)
    in
    Printf.sprintf "deadlock@%d wait=[%s] blocked=[%s] occ=[%s]" d.d_cycle
      (String.concat ">" d.d_wait_cycle)
      blocked
      (fp_occupancy topo d.d_occupancy)

let run_fingerprint topo ?config policy sched =
  let snap = ref 5381 in
  let probe (s : Switch_core.snapshot) =
    digest_add snap (Printf.sprintf "#%d%b" s.s_cycle s.s_moved);
    digest_add snap (fp_occupancy topo s.s_occupancy);
    List.iter
      (fun (l, c, h) ->
        digest_add snap
          (Printf.sprintf "%s?%s%s" l (Topology.channel_name topo c)
             (match h with Some x -> "@" ^ x | None -> "")))
      s.s_waiting
  in
  let outcome = Switch_core.run ?config ~probe policy sched in
  Printf.sprintf "%s snap=%08x" (fp_outcome topo outcome) !snap

(* ---- the seeded case matrix ---- *)

(* A seeded schedule over routable pairs.  [path_of] (oblivious only)
   supplies the fixed route so adversarial holds can name an on-path
   channel; adaptive families pass [None] and generate no holds. *)
let gen_sched rng topo ~routable ~path_of =
  let n = Topology.num_nodes topo in
  let nmsg = 4 + Rng.int rng 6 in
  let rec pick_pair tries =
    if tries > 200 then None
    else
      let s = Rng.int rng n and d = Rng.int rng n in
      if s <> d && routable s d then Some (s, d) else pick_pair (tries + 1)
  in
  List.filter_map
    (fun i ->
      match pick_pair 0 with
      | None -> None
      | Some (s, d) ->
        let length = 1 + Rng.int rng 5 in
        let at = Rng.int rng 8 in
        let holds =
          match path_of with
          | Some path_fn when Rng.int rng 3 = 0 -> (
            match path_fn s d with
            | [] -> []
            | path ->
              let c = List.nth path (Rng.int rng (List.length path)) in
              [ (c, 1 + Rng.int rng 3) ])
          | Some _ | None -> []
        in
        Some (Schedule.message ~length ~at ~holds (Printf.sprintf "m%d" i) s d))
    (List.init nmsg (fun i -> i))

let gen_config rng topo labels =
  let store_forward = Rng.int rng 5 = 0 in
  let buffer_capacity = if store_forward then 8 else 1 + Rng.int rng 2 in
  let arbitration =
    if Rng.bool rng then Switch_core.Fifo
    else begin
      let arr = Array.of_list labels in
      Rng.shuffle rng arr;
      let k = 1 + Rng.int rng (Array.length arr) in
      Switch_core.Priority (Array.to_list (Array.sub arr 0 k))
    end
  in
  let faults =
    if Rng.int rng 3 = 0 then
      Fault.random ~link_failures:1 ~stalls:1 ~max_stall:6
        ~drops:(match labels with l :: _ when Rng.bool rng -> [ l ] | _ -> [])
        ~horizon:40 rng topo
    else Fault.empty
  in
  let recovery =
    if Rng.bool rng then
      Some
        {
          Switch_core.trigger = Switch_core.Watchdog (16 + Rng.int rng 32);
          retry_limit = 1 + Rng.int rng 2;
          backoff = 2 + Rng.int rng 4;
          reroute = None;
        }
    else None
  in
  {
    Switch_core.default_config with
    buffer_capacity;
    arbitration;
    discipline = (if store_forward then Switch_core.Store_and_forward else Switch_core.Wormhole);
    faults;
    recovery;
  }

type case = { id : string; fp : unit -> string }

let oblivious_family name base topo rt ~store_forward_ok ~seeds =
  List.init seeds (fun seed ->
      {
        id = Printf.sprintf "obl/%s/%d" name seed;
        fp =
          (fun () ->
            let rng = Rng.create (0x5EED + (7919 * base) + seed) in
            let routable s d =
              match Routing.path rt s d with Ok _ -> true | Error _ -> false
            in
            let path_of s d =
              match Routing.path rt s d with Ok p -> p | Error _ -> []
            in
            let sched = gen_sched rng topo ~routable ~path_of:(Some path_of) in
            let labels = List.map (fun (m : Schedule.message_spec) -> m.ms_label) sched in
            let config = gen_config rng topo labels in
            let config =
              if store_forward_ok then config
              else { config with discipline = Switch_core.Wormhole }
            in
            run_fingerprint topo ~config (Switch_core.Oblivious rt) sched);
      })

let adaptive_family name base topo ad ~routable ~seeds =
  List.init seeds (fun seed ->
      {
        id = Printf.sprintf "adp/%s/%d" name seed;
        fp =
          (fun () ->
            let rng = Rng.create (0xADA0 + (104729 * base) + seed) in
            let sched = gen_sched rng topo ~routable ~path_of:None in
            let labels = List.map (fun (m : Schedule.message_spec) -> m.ms_label) sched in
            let config = gen_config rng topo labels in
            (* adaptive runs switch wormhole; SF is rejected only for
               oblivious, but keep the matrix uniform *)
            let config = { config with discipline = Switch_core.Wormhole } in
            run_fingerprint topo ~config (Switch_core.Adaptive ad) sched);
      })

(* Discipline families (PR 10): the same seeded schedules re-run under
   virtual cut-through and store-and-forward.  These pin the new
   disciplines' decisions the same way the oblivious/adaptive families pin
   wormhole's; the wormhole pins above them must never move.  SAF runs
   raise the buffer capacity to the longest scheduled message (the engine
   rejects under-provisioned store-and-forward outright). *)
let discipline_family name base topo rt disc tag ~seeds =
  List.init seeds (fun seed ->
      {
        id = Printf.sprintf "%s/%s/%d" tag name seed;
        fp =
          (fun () ->
            let rng = Rng.create (0xD15C + (7919 * base) + seed) in
            let routable s d =
              match Routing.path rt s d with Ok _ -> true | Error _ -> false
            in
            let path_of s d =
              match Routing.path rt s d with Ok p -> p | Error _ -> []
            in
            let sched = gen_sched rng topo ~routable ~path_of:(Some path_of) in
            let labels = List.map (fun (m : Schedule.message_spec) -> m.ms_label) sched in
            let config = gen_config rng topo labels in
            let buffer_capacity =
              match disc with
              | Switch_core.Store_and_forward ->
                List.fold_left
                  (fun acc (m : Schedule.message_spec) -> max acc m.ms_length)
                  config.Switch_core.buffer_capacity sched
              | _ -> config.Switch_core.buffer_capacity
            in
            let config = { config with Switch_core.discipline = disc; buffer_capacity } in
            run_fingerprint topo ~config (Switch_core.Oblivious rt) sched);
      })

let mesh4 = Builders.mesh [ 4; 4 ]
let mesh4_rt = Dimension_order.mesh mesh4
let torus4 = Builders.torus [ 4; 4 ]
let torus4_rt = Dimension_order.torus torus4
let torus5 = Builders.torus [ 5; 5 ]
let torus5_rt = Dimension_order.torus torus5
let mesh2vc = Builders.mesh ~vcs:2 [ 4; 4 ]
let fig1 = Paper_nets.figure1 ()
let fig1_rt = Cd_algorithm.of_net fig1
let fig2 = Paper_nets.figure2 ()
let fig2_rt = Cd_algorithm.of_net fig2
let fig3c = Paper_nets.figure3 `C
let fig3c_rt = Cd_algorithm.of_net fig3c

(* the exact engine-hotpath / mesh8x8 bench workload: the perf target of
   the refactor must keep its verdict and its cycle-by-cycle snapshots *)
let mesh8 = Builders.mesh [ 8; 8 ]
let mesh8_rt = Dimension_order.mesh mesh8

let mesh8_schedule () =
  let rng = Rng.create 11 in
  let pattern = Traffic.uniform rng mesh8 in
  Traffic.bernoulli_schedule rng pattern ~coords:mesh8 ~rate:0.02 ~length:4 ~horizon:300

let tornado5 () = Traffic.permutation_schedule (Traffic.tornado torus5) ~coords:torus5 ~length:8

let special_cases =
  [
    {
      id = "obl/mesh8x8-hotpath";
      fp = (fun () -> run_fingerprint mesh8.Builders.topo (Switch_core.Oblivious mesh8_rt)
                        (mesh8_schedule ()));
    };
    {
      id = "adp/mesh8x8-hotpath";
      fp =
        (fun () ->
          run_fingerprint mesh8.Builders.topo
            (Switch_core.Adaptive (Adaptive.of_oblivious mesh8_rt))
            (mesh8_schedule ()));
    };
    {
      id = "obl/torus5-tornado-deadlock";
      fp = (fun () -> run_fingerprint torus5.Builders.topo (Switch_core.Oblivious torus5_rt)
                        (tornado5 ()));
    };
    {
      id = "obl/torus5-tornado-vct";
      fp =
        (fun () ->
          let config =
            { Switch_core.default_config with discipline = Switch_core.Virtual_cut_through }
          in
          run_fingerprint torus5.Builders.topo ~config (Switch_core.Oblivious torus5_rt)
            (tornado5 ()));
    };
    {
      id = "obl/torus5-tornado-saf";
      fp =
        (fun () ->
          let config =
            {
              Switch_core.default_config with
              discipline = Switch_core.Store_and_forward;
              buffer_capacity = 8;
            }
          in
          run_fingerprint torus5.Builders.topo ~config (Switch_core.Oblivious torus5_rt)
            (tornado5 ()));
    };
    {
      id = "obl/torus5-tornado-detect";
      fp =
        (fun () ->
          let config =
            {
              Switch_core.default_config with
              recovery =
                Some
                  {
                    Switch_core.default_recovery with
                    trigger = Switch_core.Detect Obs_detect.default_config;
                  };
            }
          in
          run_fingerprint torus5.Builders.topo ~config (Switch_core.Oblivious torus5_rt)
            (tornado5 ()));
    };
    {
      id = "obl/torus5-tornado-watchdog";
      fp =
        (fun () ->
          let config =
            { Switch_core.default_config with recovery = Some Switch_core.default_recovery }
          in
          run_fingerprint torus5.Builders.topo ~config (Switch_core.Oblivious torus5_rt)
            (tornado5 ()));
    };
  ]

let cases =
  special_cases
  @ oblivious_family "figure1" 1 fig1.Paper_nets.topo fig1_rt ~store_forward_ok:true ~seeds:6
  @ oblivious_family "figure2" 2 fig2.Paper_nets.topo fig2_rt ~store_forward_ok:true ~seeds:6
  @ oblivious_family "figure3c" 3 fig3c.Paper_nets.topo fig3c_rt ~store_forward_ok:true
      ~seeds:6
  @ oblivious_family "mesh4x4" 4 mesh4.Builders.topo mesh4_rt ~store_forward_ok:true ~seeds:8
  @ oblivious_family "torus4x4" 5 torus4.Builders.topo torus4_rt ~store_forward_ok:true
      ~seeds:8
  @ adaptive_family "mesh4x4-minimal" 6 mesh4.Builders.topo
      (Adaptive.fully_adaptive_minimal mesh4)
      ~routable:(fun s d -> s <> d)
      ~seeds:6
  @ adaptive_family "mesh4x4-duato" 7 mesh2vc.Builders.topo (Adaptive.duato_mesh mesh2vc)
      ~routable:(fun s d -> s <> d)
      ~seeds:6
  @ adaptive_family "figure1-singleton" 8 fig1.Paper_nets.topo
      (Adaptive.of_oblivious fig1_rt)
      ~routable:(fun s d ->
        match Routing.path fig1_rt s d with Ok _ -> true | Error _ -> false)
      ~seeds:6
  @ discipline_family "figure2" 2 fig2.Paper_nets.topo fig2_rt
      Switch_core.Virtual_cut_through "vct" ~seeds:4
  @ discipline_family "figure2" 2 fig2.Paper_nets.topo fig2_rt
      Switch_core.Store_and_forward "saf" ~seeds:4
  @ discipline_family "mesh4x4" 4 mesh4.Builders.topo mesh4_rt
      Switch_core.Virtual_cut_through "vct" ~seeds:4
  @ discipline_family "mesh4x4" 4 mesh4.Builders.topo mesh4_rt
      Switch_core.Store_and_forward "saf" ~seeds:4
  @ discipline_family "torus4x4" 5 torus4.Builders.topo torus4_rt
      Switch_core.Virtual_cut_through "vct" ~seeds:4
  @ discipline_family "torus4x4" 5 torus4.Builders.topo torus4_rt
      Switch_core.Store_and_forward "saf" ~seeds:4

(* ---- pins: load, compare, regenerate ---- *)

let pins_path = "golden/kernel-pins.txt"

let compute_pins () = List.map (fun c -> (c.id, c.fp ())) cases

let load_pins () =
  let ic = open_in pins_path in
  let tbl = Hashtbl.create 64 in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line ' ' with
       | Some i ->
         Hashtbl.replace tbl (String.sub line 0 i)
           (String.sub line (i + 1) (String.length line - i - 1))
       | None -> ()
     done
   with End_of_file -> close_in ic);
  tbl

let () =
  match Sys.getenv_opt "WORMHOLE_KERNEL_PIN_REGEN" with
  | Some path when path <> "" && path <> "0" ->
    let oc = open_out path in
    List.iter (fun (id, fp) -> Printf.fprintf oc "%s %s\n" id fp) (compute_pins ());
    close_out oc;
    Printf.printf "kernel pins written to %s (%d cases)\n" path (List.length cases);
    exit 0
  | Some _ | None -> ()

let test_pins_match () =
  let pins = load_pins () in
  List.iter
    (fun c ->
      match Hashtbl.find_opt pins c.id with
      | None ->
        Alcotest.failf "case %s has no pin; regenerate test/golden/kernel-pins.txt" c.id
      | Some expected -> check Alcotest.string c.id expected (c.fp ()))
    cases;
  (* and no stale pins for cases that no longer exist *)
  let ids = List.map (fun c -> c.id) cases in
  Hashtbl.iter
    (fun id _ ->
      if not (List.mem id ids) then
        Alcotest.failf "stale pin %s; regenerate test/golden/kernel-pins.txt" id)
    pins

(* the same equivalence as a sampled qcheck property: any case drawn from
   the matrix reproduces its pinned verdict (catches order-of-evaluation
   drift that a fixed iteration order might mask, and keeps the pins under
   the property-test umbrella that gets run with larger counts) *)
let prop_pins =
  let pins = lazy (load_pins ()) in
  QCheck.Test.make ~name:"sampled case matches pinned verdict" ~count:25
    QCheck.(int_bound (List.length cases - 1))
    (fun i ->
      let c = List.nth cases i in
      match Hashtbl.find_opt (Lazy.force pins) c.id with
      | None -> QCheck.Test.fail_reportf "case %s has no pin" c.id
      | Some expected ->
        let got = c.fp () in
        if got <> expected then
          QCheck.Test.fail_reportf "case %s diverged from pin:\n  pin %s\n  got %s" c.id
            expected got
        else true)

(* ---- steady-cycle allocation bound ---- *)

(* Long worms down a 4-node line: thousands of cycles of request, award,
   hop, cascade and release, with a once-only setup.  The bound (in minor
   words, <1.5 words/cycle amortized) only passes when the steady cycle
   itself allocates nothing; the record-based kernel's per-cycle closures
   alone cost an order of magnitude more.  WORMHOLE_SANITIZE installs a
   process-wide sanitizer whose per-cycle sweep allocates by design, so the
   bound is not meaningful under it. *)
let sanitize_on =
  match Sys.getenv_opt "WORMHOLE_SANITIZE" with
  | Some v when v <> "0" -> true
  | Some _ | None -> false

let line4 = Builders.line 4
let line4_rt = Dimension_order.mesh line4

let long_sched () =
  let a = 0 and d = 3 in
  [
    Schedule.message ~length:8000 "w1" a d;
    Schedule.message ~length:8000 "w2" a d;
  ]

let alloc_per_run policy =
  (* one warm-up run (fills any per-state memo tables), then measure *)
  ignore (Switch_core.run policy (long_sched ()));
  let before = Gc.minor_words () in
  let outcome = Switch_core.run policy (long_sched ()) in
  let delta = Gc.minor_words () -. before in
  (match outcome with
  | Switch_core.All_delivered _ -> ()
  | o -> Alcotest.failf "expected all-delivered, got %s" (Switch_core.outcome_string o));
  delta

let test_steady_cycle_allocation_oblivious () =
  if sanitize_on then ()
  else begin
    let words = alloc_per_run (Switch_core.Oblivious line4_rt) in
    if words > 25_000.0 then
      Alcotest.failf "oblivious steady cycle allocates: %.0f minor words per ~16k-cycle run"
        words
  end

let test_steady_cycle_allocation_adaptive () =
  if sanitize_on then ()
  else begin
    let ad = Adaptive.of_oblivious line4_rt in
    let words = alloc_per_run (Switch_core.Adaptive ad) in
    if words > 25_000.0 then
      Alcotest.failf "adaptive steady cycle allocates: %.0f minor words per ~16k-cycle run"
        words
  end

let () =
  Alcotest.run "kernel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "all pinned verdicts reproduced" `Quick test_pins_match;
          QCheck_alcotest.to_alcotest prop_pins;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "oblivious steady cycle allocation bound" `Quick
            test_steady_cycle_allocation_oblivious;
          Alcotest.test_case "adaptive steady cycle allocation bound" `Quick
            test_steady_cycle_allocation_adaptive;
        ] );
    ]
